package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/serve"
)

// replayOnce stands up a journaled quorumd-shaped server seeded for the
// workload, replays the workload through run() at high speedup, and
// returns the manager plus its journal path.
func replayOnce(t *testing.T, workload string, seed int64, journal string) *deploy.Manager {
	t.Helper()
	spec, err := scenario.LibraryByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := scenario.RunConfig{Seed: seed, Reproducible: true}
	p, err := scenario.TimelinePlanner(spec, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	m, replayed, err := deploy.Recover(p, deploy.Config{}, journal)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("fresh journal replayed %d batches", replayed)
	}
	reg := serve.NewRegistry(serve.Options{})
	if _, err := reg.Open(serve.DefaultTenant, m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	cfg := genConfig{
		target:   srv.URL + "/v1/deltas",
		workload: workload,
		interval: time.Millisecond,
		speedup:  60,
		seed:     seed,
	}
	if err := run(context.Background(), cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestReplayMatchesEngineTable is the loop-closing assertion: quorumgen
// driving a live journaled quorumd leaves a version history whose
// response/net-delay/load per step matches the scenario engine's
// timeline table — the wire replay and the in-process engine tell the
// same story, cell for cell.
func TestReplayMatchesEngineTable(t *testing.T) {
	const workload = "flash-crowd"
	spec, err := scenario.LibraryByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := scenario.RunConfig{Seed: 1, Reproducible: true}
	table, err := scenario.Run(spec, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	m := replayOnce(t, workload, 1, filepath.Join(dir, "a.journal"))
	hist := m.History()
	if len(hist) != len(table.Rows) {
		t.Fatalf("deployment published %d versions, table has %d rows", len(hist), len(table.Rows))
	}
	f2 := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
	f3 := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for i, e := range hist {
		row := table.Rows[i]
		snap := e.Snapshot
		got := []string{strconv.Itoa(snap.Topology.Size()), f2(snap.Response), f2(snap.NetDelay), f3(snap.MaxLoad)}
		want := row[1:5]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("step %q (version %d): deployment %v, table %v", row[0], snap.Version, got, want)
		}
	}
}

// TestReplayIsDeterministic replays the same workload and seed twice
// into separate journals: the journals must be byte-identical, and both
// deployments must publish the same versions with the same placements
// and strategies per step.
func TestReplayIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	ja, jb := filepath.Join(dir, "a.journal"), filepath.Join(dir, "b.journal")
	ma := replayOnce(t, "flash-crowd", 1, ja)
	mb := replayOnce(t, "flash-crowd", 1, jb)

	ha, hb := ma.History(), mb.History()
	if len(ha) != len(hb) {
		t.Fatalf("replays published %d vs %d versions", len(ha), len(hb))
	}
	for i := range ha {
		sa, sb := ha[i].Snapshot, hb[i].Snapshot
		if sa.Version != sb.Version {
			t.Fatalf("entry %d: versions %d vs %d", i, sa.Version, sb.Version)
		}
		if !reflect.DeepEqual(sa.Placement.Targets(), sb.Placement.Targets()) {
			t.Errorf("version %d: placements differ", sa.Version)
		}
		if sa.Response != sb.Response || sa.NetDelay != sb.NetDelay || sa.MaxLoad != sb.MaxLoad {
			t.Errorf("version %d: evaluations differ: (%v,%v,%v) vs (%v,%v,%v)",
				sa.Version, sa.Response, sa.NetDelay, sa.MaxLoad, sb.Response, sb.NetDelay, sb.MaxLoad)
		}
	}

	ba, err := os.ReadFile(ja)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(jb)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatal("journals of identical replays differ")
	}
}

// TestReplayJournalRecovers replays a workload, then recovers a fresh
// planner from the journal alone — the crash-restart path — and
// expects the exact version history back.
func TestReplayJournalRecovers(t *testing.T) {
	dir := t.TempDir()
	j := filepath.Join(dir, "crash.journal")
	m := replayOnce(t, "flash-crowd", 1, j)
	want := m.Current().Snapshot

	spec, err := scenario.LibraryByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	p, err := scenario.TimelinePlanner(spec, scenario.RunConfig{Seed: 1, Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	m2, replayed, err := deploy.Recover(p, deploy.Config{}, j)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	got := m2.Current().Snapshot
	if got.Version != want.Version || got.Response != want.Response ||
		!reflect.DeepEqual(got.Placement.Targets(), want.Placement.Targets()) {
		t.Fatalf("recovered (v%d, %.4f) != original (v%d, %.4f)",
			got.Version, got.Response, want.Version, want.Response)
	}
}

func TestListAndDryRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), genConfig{list: true}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flash-crowd", "diurnal-demand", "rtt-drift", "regional-outage"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}

	buf.Reset()
	if err := run(context.Background(), genConfig{workload: "flash-crowd", seed: 1, speedup: 1, dryRun: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crowd-peak") || !strings.Contains(buf.String(), "\"weights\"") {
		t.Errorf("dry-run output lacks expected steps:\n%s", buf.String())
	}

	buf.Reset()
	if err := run(context.Background(), genConfig{workload: "flash-crowd", seed: 1, speedup: 1, describe: true}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "grid:4") {
		t.Errorf("describe output lacks the system spec:\n%s", buf.String())
	}

	if err := run(context.Background(), genConfig{workload: "seed-scale-study", speedup: 1}, io.Discard); err == nil {
		t.Error("non-timeline workload accepted")
	}
	if err := run(context.Background(), genConfig{speedup: 1}, io.Discard); err == nil {
		t.Error("missing workload accepted")
	}
}
