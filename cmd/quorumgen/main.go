// Command quorumgen replays library workloads against a live quorumd
// as timed delta streams — the load generator of the telemetry loop.
// It compiles a timeline scenario (flash crowd, diurnal demand, RTT
// drift, regional outage, ...) into the exact delta batches the
// scenario engine would apply to its own planner
// (scenario.TimelineStream), then posts them to a deployment's deltas
// endpoint on the timeline's cadence. Because the stream is a pure
// function of (workload, seed), a journaled quorumd driven by quorumgen
// ends with a version history that matches the engine's table row for
// row — the replay harness asserts exactly that.
//
// Usage:
//
//	quorumgen -list
//	quorumgen -workload flash-crowd -dry-run
//	quorumgen -workload flash-crowd -target http://127.0.0.1:8080/v1/deltas \
//	          -interval 10s -speedup 60
//
// The target quorumd must be seeded with the workload's deployment
// (same topology, system, strategy, and demand — see -describe), or the
// stream's site names will not resolve. -speedup divides the step
// interval: 60 replays a 10s-cadence day in seconds. -seed feeds the
// scenario engine; two runs with the same workload and seed post
// byte-identical batches in the same order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/quorumnet/quorumnet/internal/probe"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

type genConfig struct {
	target   string
	workload string
	interval time.Duration
	speedup  float64
	seed     int64
	dryRun   bool
	describe bool
	list     bool
}

func main() {
	var cfg genConfig
	flag.StringVar(&cfg.target, "target", "http://127.0.0.1:8080/v1/deltas", "quorumd deltas endpoint to post to")
	flag.StringVar(&cfg.workload, "workload", "", "library timeline workload to replay (see -list)")
	flag.DurationVar(&cfg.interval, "interval", 10*time.Second, "wall-clock spacing between timeline steps before speedup")
	flag.Float64Var(&cfg.speedup, "speedup", 1, "replay acceleration: the step interval is divided by this")
	flag.Int64Var(&cfg.seed, "seed", 1, "scenario seed; same workload + seed = identical delta stream")
	flag.BoolVar(&cfg.dryRun, "dry-run", false, "print the compiled delta stream as JSON instead of posting")
	flag.BoolVar(&cfg.describe, "describe", false, "print the workload's deployment requirements and exit")
	flag.BoolVar(&cfg.list, "list", false, "list replayable timeline workloads and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quorumgen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg genConfig, out io.Writer) error {
	if cfg.list {
		for _, spec := range scenario.Library() {
			if spec.Kind == scenario.KindTimeline {
				fmt.Fprintf(out, "%-22s %s\n", spec.Name, spec.Title)
			}
		}
		return nil
	}
	if cfg.workload == "" {
		return fmt.Errorf("-workload is required (try -list)")
	}
	spec, err := scenario.LibraryByName(cfg.workload)
	if err != nil {
		return err
	}
	if spec.Kind != scenario.KindTimeline {
		return fmt.Errorf("workload %q is a %s scenario, not a replayable timeline", cfg.workload, spec.Kind)
	}
	if cfg.speedup <= 0 {
		return fmt.Errorf("-speedup must be positive, got %v", cfg.speedup)
	}

	// Reproducible planning mirrors a journaled quorumd: the replay
	// assertion compares version histories, which only line up when both
	// sides plan deterministically.
	rcfg := scenario.RunConfig{Seed: cfg.seed, Reproducible: true}

	if cfg.describe {
		return describe(spec, rcfg, out)
	}

	steps, err := scenario.TimelineStream(spec, rcfg)
	if err != nil {
		return err
	}
	if cfg.dryRun {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(steps)
	}

	pause := time.Duration(float64(cfg.interval) / cfg.speedup)
	poster := &probe.HTTPPoster{URL: cfg.target}
	log.Printf("quorumgen: replaying %s (%d steps, seed %d) against %s, %s per step",
		spec.Name, len(steps), cfg.seed, cfg.target, pause)
	for i, step := range steps {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(pause):
			}
		}
		start := time.Now()
		if err := poster.Post(ctx, step.Deltas); err != nil {
			return fmt.Errorf("step %q: %w", step.Label, err)
		}
		log.Printf("quorumgen: step %d/%d %q: posted %d deltas in %s",
			i+1, len(steps), step.Label, len(step.Deltas), time.Since(start).Round(time.Millisecond))
	}
	log.Printf("quorumgen: replay complete")
	return nil
}

// describe prints what the target deployment must look like for the
// stream's deltas to resolve, derived from the same planner the
// scenario engine would build.
func describe(spec *scenario.Spec, rcfg scenario.RunConfig, out io.Writer) error {
	p, err := scenario.TimelinePlanner(spec, rcfg)
	if err != nil {
		return err
	}
	strat := "closest"
	if len(spec.Strategies) > 0 {
		strat = spec.Strategies[0]
	}
	demand := 0.0
	if len(spec.Demands) > 0 {
		demand = spec.Demands[0]
	}
	fmt.Fprintf(out, "workload:  %s (%s)\n", spec.Name, spec.Title)
	fmt.Fprintf(out, "topology:  %s (%d sites)\n", spec.Topology.Source, p.Size())
	fmt.Fprintf(out, "strategy:  %s\n", strat)
	fmt.Fprintf(out, "demand:    %g\n", demand)
	fmt.Fprintf(out, "steps:     %d\n", len(spec.Timeline))
	fmt.Fprintf(out, "\nquorumd must be seeded to match, e.g.:\n")
	fmt.Fprintf(out, "  quorumd -topology %s -system %s -strategy %s -demand %g\n",
		spec.Topology.Source, systemArg(spec), strat, demand)
	return nil
}

func systemArg(spec *scenario.Spec) string {
	if len(spec.Systems) == 0 {
		return "grid:5"
	}
	a := spec.Systems[0]
	if len(a.Params) == 0 {
		return a.Family
	}
	return fmt.Sprintf("%s:%d", a.Family, a.Params[0])
}
