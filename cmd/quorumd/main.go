// Command quorumd is the plan-serving daemon: a registry of named
// quorum deployments in one process, each owning a staged planner
// wrapped in a deployment manager. It accepts world deltas (RTT
// probes, capacity changes, demand telemetry) over HTTP per tenant,
// adapts each plan online with placement-move hysteresis, and serves
// the current versioned snapshots to any number of concurrent readers
// — reads come from per-publish cached bytes, and long-polls ride a
// per-tenant epoch broadcast, so one publish wakes every watcher with
// a single channel close.
//
// Usage:
//
//	quorumd -addr :8080 -topology planetlab50 -system grid:5 -strategy lp -demand 8000
//	quorumd -topology wan.txt -system majority:2 -move-cost 10
//	quorumd -deployment "edge:system=grid:4,demand=12000" \
//	        -deployment "core:topology=daxlist161,system=majority:3" \
//	        -journal-dir /var/lib/quorumd -debug-addr 127.0.0.1:8081
//
// API (see internal/serve):
//
//	GET  /v1/deployments                              tenant roster
//	GET  /v1/deployments/<name>/plan                  current snapshot (ETag = version)
//	GET  /v1/deployments/<name>/plan?after=3&timeout=30s  long-poll (timeout=0: don't wait)
//	POST /v1/deployments/<name>/deltas                {"deltas":[{"kind":"demand","value":16000}, ...]}
//	GET  /v1/deployments/<name>/history?limit=10      recent re-plans with provenance
//	GET  /v1/plan, POST /v1/deltas, GET /v1/history   legacy aliases of the default tenant
//
// Each -deployment flag declares one named tenant as
// "name:key=value,...". Keys topology, seed, system, algorithm,
// strategy, demand, move-cost, history override the same-named global
// flags, which act as defaults; the first -deployment is the default
// tenant behind the legacy routes. Without -deployment, the daemon
// serves one tenant named "default" built from the global flags.
//
// -move-cost is the hysteresis threshold in milliseconds of predicted
// average response time: placement moves are taken only when they are
// predicted to win at least that much; strategy-only re-plans are
// always taken. 0 disables hysteresis.
//
// -journal (single-tenant) or -journal-dir (any tenant count) makes
// deployments durable: every applied delta batch is fsynced to the
// tenant's journal, and a daemon restarted with the same flags replays
// each tenant to its exact pre-crash version/ETag history.
//
// -debug-addr starts a second listener with net/http/pprof and
// /debug/vars (expvar), where the per-tenant serving counters — reads,
// 304s, long-poll parks/wakeups, delta batches, re-plan durations —
// are published under "quorumd", so serving regressions are
// diagnosable on a live daemon.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/serve"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// tenantSpec is one -deployment declaration after parsing: a name plus
// the per-tenant overrides of the global defaults.
type tenantSpec struct {
	name     string
	topo     string
	seed     int64
	system   string
	algo     string
	strat    string
	demand   float64
	moveCost float64
	history  int
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr = flag.String("debug-addr", "", "debug listen address: net/http/pprof + /debug/vars with per-tenant serving counters")
		topoArg   = flag.String("topology", "planetlab50", "topology: planetlab50, daxlist161, or a quorumnet-format file path")
		seed      = flag.Int64("seed", topology.DefaultSeed, "topology synthesis seed")
		system    = flag.String("system", "grid:5", "quorum system family:param (e.g. grid:5, majority:2, qumajority:1)")
		algo      = flag.String("algorithm", "one-to-one", "placement algorithm: one-to-one, singleton, many-to-one")
		strat     = flag.String("strategy", "lp", "access strategy: closest, balanced, lp")
		demand    = flag.Float64("demand", 8000, "initial per-client demand (requests)")
		moveCost  = flag.Float64("move-cost", 5, "placement-move hysteresis threshold (ms of predicted response time; 0 disables)")
		history   = flag.Int("history", 64, "re-plan history entries retained")
		maxWait   = flag.Duration("max-wait", 30*time.Second, "long-poll timeout cap")
		maxWatch  = flag.Int("max-watchers", 0, "parked long-poll watchers allowed per tenant before 503 (0 = default cap)")
		workers   = flag.Int("workers", 0, "placement search workers per tenant (0 = GOMAXPROCS)")
		jpath     = flag.String("journal", "", "durable delta journal for the single default tenant (restart with the same flags; incompatible with -deployment)")
		jdir      = flag.String("journal-dir", "", "directory of per-tenant delta journals (<dir>/<name>.journal), replayed on restart")
	)
	var deployments []string
	flag.Func("deployment", `named tenant as "name:key=value,..." (keys: topology, seed, system, algorithm, strategy, demand, move-cost, history); repeatable, first one is the legacy-route default`, func(s string) error {
		deployments = append(deployments, s)
		return nil
	})
	flag.Parse()

	if *jpath != "" && len(deployments) > 0 {
		fatal(fmt.Errorf("-journal names one tenant's journal; with -deployment use -journal-dir"))
	}
	if *jpath != "" && *jdir != "" {
		fatal(fmt.Errorf("-journal and -journal-dir are exclusive"))
	}

	defaults := tenantSpec{
		name: serve.DefaultTenant, topo: *topoArg, seed: *seed, system: *system,
		algo: *algo, strat: *strat, demand: *demand, moveCost: *moveCost, history: *history,
	}
	specs := []tenantSpec{defaults}
	if len(deployments) > 0 {
		specs = specs[:0]
		for _, arg := range deployments {
			spec, err := parseTenantSpec(arg, defaults)
			if err != nil {
				fatal(err)
			}
			specs = append(specs, spec)
		}
	}

	journaled := *jpath != "" || *jdir != ""
	reg := serve.NewRegistry(serve.Options{MaxWait: *maxWait, MaxWatchers: *maxWatch})
	for _, spec := range specs {
		start := time.Now()
		m, replayed, err := buildTenant(spec, *workers, journalPath(spec.name, *jpath, *jdir))
		if err != nil {
			fatal(fmt.Errorf("deployment %q: %w", spec.name, err))
		}
		if _, err := reg.Open(spec.name, m); err != nil {
			fatal(err)
		}
		snap := m.Current().Snapshot
		if replayed > 0 {
			log.Printf("quorumd: %s: replayed %d journaled delta batches to version %d",
				spec.name, replayed, snap.Version)
		}
		log.Printf("quorumd: %s: planned %s on %s (%d sites) in %s: response %.2fms, net delay %.2fms",
			spec.name, snap.System.Name(), snap.Topology.Name(), snap.Topology.Size(),
			time.Since(start).Round(time.Millisecond), snap.Response, snap.NetDelay)
	}

	if *debugAddr != "" {
		expvar.Publish("quorumd", expvar.Func(func() interface{} { return reg.Stats() }))
		dmux := http.NewServeMux()
		dmux.Handle("/debug/vars", expvar.Handler())
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("quorumd: debug listener: %v", err)
			}
		}()
		log.Printf("quorumd: debug listener on %s (pprof + expvar)", *debugAddr)
	}

	mode := ""
	if journaled {
		mode = ", journaled"
	}
	log.Printf("quorumd: serving %d deployment(s) %v on %s (default %q%s)",
		len(specs), reg.Names(), *addr, reg.Default().Name(), mode)
	if err := http.ListenAndServe(*addr, reg.Handler()); err != nil {
		fatal(err)
	}
}

// journalPath resolves one tenant's journal path: the explicit
// single-tenant -journal, or <journal-dir>/<name>.journal, or none.
func journalPath(name, jpath, jdir string) string {
	switch {
	case jpath != "":
		return jpath
	case jdir != "":
		return filepath.Join(jdir, name+".journal")
	}
	return ""
}

// buildTenant constructs one tenant's planner and manager, recovering
// from its journal when one is configured.
func buildTenant(spec tenantSpec, workers int, journal string) (*deploy.Manager, int, error) {
	topo, err := buildTopology(spec.topo, spec.seed)
	if err != nil {
		return nil, 0, err
	}
	sys, err := parseSystem(spec.system)
	if err != nil {
		return nil, 0, err
	}
	p, err := plan.New(topo, plan.Config{
		System:    sys,
		Algorithm: plan.Algorithm(spec.algo),
		Strategy:  plan.StrategyKind(spec.strat),
		Demand:    spec.demand,
		Workers:   workers,
		// Journal replay reproduces history by re-running the planner, so
		// a journaled daemon must plan reproducibly (cold LP solves).
		Reproducible: journal != "",
	})
	if err != nil {
		return nil, 0, err
	}
	dcfg := deploy.Config{MoveCost: spec.moveCost, HistoryLimit: spec.history}
	if journal == "" {
		m, err := deploy.New(p, dcfg)
		return m, 0, err
	}
	if dir := filepath.Dir(journal); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, 0, err
		}
	}
	return deploy.Recover(p, dcfg, journal)
}

// parseTenantSpec parses one -deployment argument
// ("name:key=value,...") over the global-flag defaults.
func parseTenantSpec(arg string, defaults tenantSpec) (tenantSpec, error) {
	bad := func(format string, args ...interface{}) (tenantSpec, error) {
		return tenantSpec{}, fmt.Errorf("-deployment %q: %s", arg, fmt.Sprintf(format, args...))
	}
	name, rest, _ := strings.Cut(arg, ":")
	if !serve.ValidTenantName(name) {
		return bad("invalid name %q (want 1-64 of [a-zA-Z0-9._-])", name)
	}
	spec := defaults
	spec.name = name
	if rest == "" {
		return spec, nil
	}
	for _, kv := range splitTenantOpts(rest) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok || val == "" {
			return bad("option %q: want key=value", kv)
		}
		var err error
		switch key {
		case "topology":
			spec.topo = val
		case "seed":
			spec.seed, err = strconv.ParseInt(val, 10, 64)
		case "system":
			spec.system = val
		case "algorithm":
			spec.algo = val
		case "strategy":
			spec.strat = val
		case "demand":
			spec.demand, err = strconv.ParseFloat(val, 64)
		case "move-cost":
			spec.moveCost, err = strconv.ParseFloat(val, 64)
		case "history":
			spec.history, err = strconv.Atoi(val)
		default:
			return bad("unknown key %q (want topology, seed, system, algorithm, strategy, demand, move-cost, history)", key)
		}
		if err != nil {
			return bad("option %q: %v", kv, err)
		}
	}
	return spec, nil
}

// splitTenantOpts splits "key=value,key=value" on commas, except
// commas inside a system spec never occur — a plain split suffices
// because every accepted value is comma-free.
func splitTenantOpts(s string) []string {
	return strings.Split(s, ",")
}

func buildTopology(arg string, seed int64) (*topology.Topology, error) {
	switch arg {
	case "planetlab50":
		return topology.PlanetLab50(seed), nil
	case "daxlist161":
		return topology.Daxlist161(seed), nil
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, fmt.Errorf("topology %q is neither built-in nor a readable file: %w", arg, err)
		}
		defer f.Close()
		return topology.Load(f)
	}
}

func parseSystem(arg string) (plan.SystemSpec, error) {
	fam, paramStr, found := strings.Cut(arg, ":")
	if fam == "singleton" {
		return plan.SystemSpec{Family: "singleton"}, nil
	}
	if !found {
		return plan.SystemSpec{}, fmt.Errorf("system %q: want family:param (e.g. grid:5) or threshold:q:n", arg)
	}
	if fam == "threshold" {
		qStr, nStr, ok := strings.Cut(paramStr, ":")
		if !ok {
			return plan.SystemSpec{}, fmt.Errorf("system %q: want threshold:q:n", arg)
		}
		q, err := strconv.Atoi(qStr)
		if err != nil {
			return plan.SystemSpec{}, fmt.Errorf("system %q: bad q: %w", arg, err)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			return plan.SystemSpec{}, fmt.Errorf("system %q: bad n: %w", arg, err)
		}
		return plan.SystemSpec{Family: "threshold", Q: q, N: n}, nil
	}
	param, err := strconv.Atoi(paramStr)
	if err != nil {
		return plan.SystemSpec{}, fmt.Errorf("system %q: bad parameter: %w", arg, err)
	}
	return plan.SystemSpec{Family: fam, Param: param}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quorumd:", err)
	os.Exit(1)
}
