// Command quorumd serves one quorum deployment: it owns a staged
// planner wrapped in a deployment manager, accepts world deltas (RTT
// probes, capacity changes, demand telemetry) over HTTP, adapts the
// plan online with placement-move hysteresis, and serves the current
// versioned plan snapshot to any number of concurrent readers.
//
// Usage:
//
//	quorumd -addr :8080 -topology planetlab50 -system grid:5 -strategy lp -demand 8000
//	quorumd -topology wan.txt -system majority:2 -move-cost 10
//
// API (see internal/serve):
//
//	GET  /v1/plan                     current snapshot (ETag = version)
//	GET  /v1/plan?after=3&timeout=30s long-poll for a newer version
//	POST /v1/deltas                   {"deltas":[{"kind":"demand","value":16000}, ...]}
//	GET  /v1/history?limit=10         recent re-plans with provenance
//
// -move-cost is the hysteresis threshold in milliseconds of predicted
// average response time: placement moves are taken only when they are
// predicted to win at least that much; strategy-only re-plans are
// always taken. 0 disables hysteresis.
//
// -journal makes the deployment durable: every applied delta batch is
// fsynced to the journal, and a daemon restarted with the same flags
// and -journal path replays it to the exact pre-crash version/ETag
// history before serving.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/serve"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		topoArg  = flag.String("topology", "planetlab50", "topology: planetlab50, daxlist161, or a quorumnet-format file path")
		seed     = flag.Int64("seed", topology.DefaultSeed, "topology synthesis seed")
		system   = flag.String("system", "grid:5", "quorum system family:param (e.g. grid:5, majority:2, qumajority:1)")
		algo     = flag.String("algorithm", "one-to-one", "placement algorithm: one-to-one, singleton, many-to-one")
		strat    = flag.String("strategy", "lp", "access strategy: closest, balanced, lp")
		demand   = flag.Float64("demand", 8000, "initial per-client demand (requests)")
		moveCost = flag.Float64("move-cost", 5, "placement-move hysteresis threshold (ms of predicted response time; 0 disables)")
		history  = flag.Int("history", 64, "re-plan history entries retained")
		maxWait  = flag.Duration("max-wait", 30*time.Second, "long-poll timeout cap")
		workers  = flag.Int("workers", 0, "placement search workers (0 = GOMAXPROCS)")
		jpath    = flag.String("journal", "", "durable delta journal: applied batches are logged here and replayed on restart (restart with the same flags)")
	)
	flag.Parse()

	topo, err := buildTopology(*topoArg, *seed)
	if err != nil {
		fatal(err)
	}
	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}
	p, err := plan.New(topo, plan.Config{
		System:    sys,
		Algorithm: plan.Algorithm(*algo),
		Strategy:  plan.StrategyKind(*strat),
		Demand:    *demand,
		Workers:   *workers,
		// Journal replay reproduces history by re-running the planner, so
		// a journaled daemon must plan reproducibly (cold LP solves).
		Reproducible: *jpath != "",
	})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	dcfg := deploy.Config{MoveCost: *moveCost, HistoryLimit: *history}
	var m *deploy.Manager
	if *jpath != "" {
		var replayed int
		m, replayed, err = deploy.Recover(p, dcfg, *jpath)
		if err == nil && replayed > 0 {
			log.Printf("quorumd: replayed %d journaled delta batches from %s to version %d",
				replayed, *jpath, m.Current().Snapshot.Version)
		}
	} else {
		m, err = deploy.New(p, dcfg)
	}
	if err != nil {
		fatal(err)
	}
	snap := m.Current().Snapshot
	log.Printf("quorumd: planned %s on %s (%d sites) in %s: response %.2fms, net delay %.2fms",
		snap.System.Name(), snap.Topology.Name(), snap.Topology.Size(),
		time.Since(start).Round(time.Millisecond), snap.Response, snap.NetDelay)

	srv := serve.New(m, serve.Options{MaxWait: *maxWait})
	log.Printf("quorumd: serving on %s (move-cost %.2fms)", *addr, *moveCost)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func buildTopology(arg string, seed int64) (*topology.Topology, error) {
	switch arg {
	case "planetlab50":
		return topology.PlanetLab50(seed), nil
	case "daxlist161":
		return topology.Daxlist161(seed), nil
	default:
		f, err := os.Open(arg)
		if err != nil {
			return nil, fmt.Errorf("topology %q is neither built-in nor a readable file: %w", arg, err)
		}
		defer f.Close()
		return topology.Load(f)
	}
}

func parseSystem(arg string) (plan.SystemSpec, error) {
	fam, paramStr, found := strings.Cut(arg, ":")
	if fam == "singleton" {
		return plan.SystemSpec{Family: "singleton"}, nil
	}
	if !found {
		return plan.SystemSpec{}, fmt.Errorf("system %q: want family:param (e.g. grid:5) or threshold:q:n", arg)
	}
	if fam == "threshold" {
		qStr, nStr, ok := strings.Cut(paramStr, ":")
		if !ok {
			return plan.SystemSpec{}, fmt.Errorf("system %q: want threshold:q:n", arg)
		}
		q, err := strconv.Atoi(qStr)
		if err != nil {
			return plan.SystemSpec{}, fmt.Errorf("system %q: bad q: %w", arg, err)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			return plan.SystemSpec{}, fmt.Errorf("system %q: bad n: %w", arg, err)
		}
		return plan.SystemSpec{Family: "threshold", Q: q, N: n}, nil
	}
	param, err := strconv.Atoi(paramStr)
	if err != nil {
		return plan.SystemSpec{}, fmt.Errorf("system %q: bad parameter: %w", arg, err)
	}
	return plan.SystemSpec{Family: fam, Param: param}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quorumd:", err)
	os.Exit(1)
}
