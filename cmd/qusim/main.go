// Command qusim runs the §3 Q/U protocol simulation directly: it places
// n = 5t+1 servers on the synthetic PlanetLab-50 topology, selects 10
// representative client sites, and reports average response time and
// network delay for a chosen client population.
//
// Usage:
//
//	qusim -t 4 -clients 100
//	qusim -t 2 -clients 40 -duration 30000 -runs 5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/protocol"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() {
	var (
		t        = flag.Int("t", 4, "faults tolerated (servers n = 5t+1, quorums 4t+1)")
		clients  = flag.Int("clients", 100, "total clients, spread over 10 sites")
		duration = flag.Float64("duration", 20000, "simulated run length (ms)")
		runs     = flag.Int("runs", 5, "runs to average")
		seed     = flag.Int64("seed", topology.DefaultSeed, "seed")
		service  = flag.Float64("service", 1, "per-request service time (ms)")
	)
	flag.Parse()

	topo := topology.PlanetLab50(*seed)
	sys, err := quorum.QUMajority(*t)
	if err != nil {
		fatal(err)
	}
	f, err := placement.MajorityOneToOne(topo, sys, placement.Options{})
	if err != nil {
		fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		fatal(err)
	}

	// Ten representative client sites, matching the experiment setup.
	sites, err := experiments.RepresentativeClients(e, 10)
	if err != nil {
		fatal(err)
	}
	clientSites := make([]int, 0, *clients)
	for i := 0; i < *clients; i++ {
		clientSites = append(clientSites, sites[i%len(sites)])
	}

	cfg := protocol.Config{
		Topo:          topo,
		ServerSites:   f.Targets(),
		QuorumSize:    sys.QuorumSize(),
		ClientSites:   clientSites,
		ServiceTimeMS: *service,
		DurationMS:    *duration,
		Seed:          *seed,
	}
	m, err := protocol.RunSimAveraged(cfg, *runs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("Q/U t=%d: n=%d servers, quorum size %d, %d clients on %d sites\n",
		*t, sys.UniverseSize(), sys.QuorumSize(), *clients, len(sites))
	fmt.Printf("completed requests:   %d (per run, averaged over %d runs)\n", m.Requests, *runs)
	fmt.Printf("avg response time:    %.2f ms\n", m.AvgResponseMS)
	fmt.Printf("avg network delay:    %.2f ms\n", m.AvgNetDelayMS)
	fmt.Printf("max queueing delay:   %.2f ms\n", m.MaxServerQueueMS)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qusim:", err)
	os.Exit(1)
}
