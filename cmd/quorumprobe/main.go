// Command quorumprobe runs the RTT ping mesh: one UDP echo responder
// and one probe agent per declared site, all in one process, feeding a
// shared batcher that posts coalesced rtt deltas to a quorumd deltas
// endpoint on a fixed cadence. Each agent measures its row of the N×N
// mesh (windowed median, MAD spike rejection, emission hysteresis — see
// internal/probe), so a healthy stationary mesh posts nothing after the
// warmup baselines, and only genuine drift reaches the planner.
//
// Usage:
//
//	quorumprobe -target http://127.0.0.1:8080/v1/deltas \
//	            -site plab-us-east-00=127.0.0.1:9001 \
//	            -site plab-us-west-01=127.0.0.1:9002 \
//	            -site plab-europe-02=127.0.0.1:9003 \
//	            -interval 1s -cadence 5s
//
// Site names must match the target deployment's topology. Running every
// agent in one process is the single-host drill shape (CI, demos); in a
// real mesh each host runs quorumprobe with one -site for itself and
// the full roster in -peer flags of the others. A dead peer degrades
// only its own pairs: measurement errors are counted, logged once per
// transition, and never stop the mesh.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/quorumnet/quorumnet/internal/probe"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080/v1/deltas", "quorumd deltas endpoint")
		interval = flag.Duration("interval", time.Second, "probe round interval per agent")
		cadence  = flag.Duration("cadence", 5*time.Second, "delta post cadence (coalesced per window)")
		window   = flag.Int("window", 0, "smoothing window length (0 = default 9)")
		noise    = flag.Float64("noise", 0, "relative emission hysteresis band (0 = default 5%)")
		raw      = flag.Bool("raw", false, "disable smoothing and hysteresis (debugging; every sample posts)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-measurement timeout")
	)
	var sites []string
	flag.Func("site", `mesh member as "name=udpaddr"; repeatable, at least two`, func(s string) error {
		sites = append(sites, s)
		return nil
	})
	flag.Parse()

	roster := make(map[string]string, len(sites))
	var names []string
	for _, arg := range sites {
		name, addr, ok := strings.Cut(arg, "=")
		if !ok || name == "" || addr == "" {
			fatal(fmt.Errorf("-site %q: want name=udpaddr", arg))
		}
		if _, dup := roster[name]; dup {
			fatal(fmt.Errorf("-site %q: duplicate site name", arg))
		}
		roster[name] = addr
		names = append(names, name)
	}
	if len(names) < 2 {
		fatal(fmt.Errorf("need at least two -site flags to form a mesh"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Echo responders first: every agent's peers must answer before the
	// first round. Binding resolves :0-style addresses, so transports are
	// built from the bound addresses, not the flag values.
	bound := make(map[string]string, len(names))
	for _, name := range names {
		echo, err := probe.ListenEcho(roster[name])
		if err != nil {
			fatal(fmt.Errorf("site %s: %w", name, err))
		}
		defer echo.Close()
		bound[name] = echo.Addr()
	}

	batcher := probe.NewBatcher(&probe.HTTPPoster{URL: *target})
	batcher.OnFlush = func(n int, err error) {
		if err != nil {
			log.Printf("quorumprobe: post of %d deltas failed: %v", n, err)
			return
		}
		log.Printf("quorumprobe: posted %d deltas", n)
	}

	scfg := probe.SmootherConfig{Window: *window, Noise: *noise, Raw: *raw}
	var wg sync.WaitGroup
	for _, name := range names {
		peers := make(map[string]string, len(names)-1)
		var order []string
		for _, p := range names {
			if p != name {
				peers[p] = bound[p]
				order = append(order, p)
			}
		}
		agent, err := probe.NewAgent(probe.AgentConfig{
			Site:      name,
			Peers:     order,
			Transport: probe.NewUDPTransport(peers, *timeout),
			Smoother:  scfg,
			Timeout:   *timeout,
		})
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			agent.Run(ctx, *interval, batcher)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		batcher.Run(ctx, *cadence)
	}()

	log.Printf("quorumprobe: %d-site mesh (%d pairs) probing every %s, posting to %s every %s",
		len(names), len(names)*(len(names)-1)/2, *interval, *target, *cadence)
	<-ctx.Done()
	wg.Wait()
	log.Printf("quorumprobe: mesh stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quorumprobe:", err)
	os.Exit(1)
}
