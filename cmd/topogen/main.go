// Command topogen generates the synthetic wide-area topologies used by
// the experiments and writes them in the quorumnet text format, or prints
// statistics about an existing topology file.
//
// Usage:
//
//	topogen -name planetlab-50 -o planetlab50.topo
//	topogen -name daxlist-161 -seed 7 -o daxlist161.topo
//	topogen -as-sites 1000 -o as1k.topo
//	topogen -stats planetlab50.topo
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() {
	var (
		name    = flag.String("name", "planetlab-50", "topology to generate: planetlab-50 or daxlist-161")
		asSites = flag.Int("as-sites", 0, "generate a power-law AS graph with this many sites instead (sparse parallel closure)")
		seed    = flag.Int64("seed", topology.DefaultSeed, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.String("stats", "", "print statistics for an existing topology file and exit")
	)
	flag.Parse()

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		t, err := topology.Load(f)
		if err != nil {
			fatal(err)
		}
		printStats(t)
		return
	}

	var t *topology.Topology
	if *asSites > 0 {
		var err error
		t, err = topology.Generate(topology.GenConfig{
			Name: fmt.Sprintf("as-%d", *asSites),
			AS:   &topology.ASGraphSpec{Sites: *asSites},
		}, *seed)
		if err != nil {
			fatal(err)
		}
	} else {
		switch *name {
		case "planetlab-50":
			t = topology.PlanetLab50(*seed)
		case "daxlist-161":
			t = topology.Daxlist161(*seed)
		default:
			fatal(fmt.Errorf("unknown topology %q (want planetlab-50, daxlist-161, or -as-sites N)", *name))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := topology.Save(w, t); err != nil {
		fatal(err)
	}
}

func printStats(t *topology.Topology) {
	st := t.Stats()
	fmt.Printf("name:        %s\n", t.Name())
	fmt.Printf("sites:       %d\n", st.Sites)
	fmt.Printf("avg RTT:     %.1f ms\n", st.AvgRTT)
	fmt.Printf("RTT range:   %.1f – %.1f ms\n", st.MinRTT, st.MaxRTT)
	fmt.Printf("median site: %d (%s), avg RTT to it %.1f ms\n",
		st.MedianSite, t.Site(st.MedianSite).Name, st.MedianAvgRTT)
	regions := make([]string, 0, len(st.Regions))
	for r := range st.Regions {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		fmt.Printf("  region %-12s %d sites\n", r, st.Regions[r])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
