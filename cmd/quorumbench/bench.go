package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// The bench mode (-bench-out) times the planning pipeline stage by stage
// on synthetic AS-graph topologies and writes the timings as JSON, so the
// repo carries a machine-readable perf trajectory (BENCH_plan.json)
// instead of numbers buried in prose. Stages:
//
//	closure   — AS-graph generation + sparse parallel metric closure
//	            (closure-dominated; edge construction is O(n)). At small
//	            scales the dense Floyd–Warshall is timed too, for the
//	            sparse-vs-dense speedup the sparse closure exists to win.
//	placement — ball-based one-to-one construction with the pruned
//	            anchor search (SearchAuto).
//	strategy  — access-strategy LP (partial pricing) on the -bench-system
//	            threshold system, solver-selected by size: below
//	            strategy.DefaultColgenThreshold the dense simplex runs;
//	            at or above it the column-generation path runs AND the
//	            dense simplex is timed as the baseline it must beat, with
//	            the two objectives cross-checked to 1e-9.
//
// -bench-clients adds a client axis: each listed count becomes one bench
// point per site scale, with that many clients stride-sampled from the
// sites (counts above the site count are skipped). The default is every
// site acting as a client, like the planner's default demand model.
//
// Floyd–Warshall's cost is input-independent (always n³ relaxations), so
// timing it on the already-closed matrix is a fair dense baseline without
// rebuilding the raw edge matrix.
const (
	// benchDenseMax caps the dense Floyd–Warshall baseline: n³ at 10k
	// sites is ~20 minutes of single-core arithmetic for a number the
	// 1k point already establishes.
	benchDenseMax = 2000
	// benchStrategyMax caps the LP stage by client count: both the dense
	// simplex workspace and the colgen restricted master hold a dense
	// basis inverse quadratic in the client/super-client count, which at
	// 10k clients is ~800MB.
	benchStrategyMax = 2000
)

// benchPoint is one (site count, client count) measurement. Durations are
// wall-clock milliseconds on whatever machine ran the bench; the ratios,
// not the absolute numbers, are the regression signal.
type benchPoint struct {
	Sites           int                   `json:"sites"`
	Clients         int                   `json:"clients,omitempty"`
	Quorums         int                   `json:"quorums,omitempty"`
	ClosureMS       float64               `json:"closure_ms"`
	ClosureDenseMS  float64               `json:"closure_dense_ms,omitempty"`
	ClosureSpeedup  float64               `json:"closure_speedup,omitempty"`
	PlacementMS     float64               `json:"placement_ms"`
	StrategyMS      float64               `json:"strategy_ms,omitempty"`
	StrategyDenseMS float64               `json:"strategy_dense_ms,omitempty"`
	StrategySpeedup float64               `json:"strategy_speedup,omitempty"`
	LPMethod        string                `json:"lp_method,omitempty"`
	LPIterations    int                   `json:"lp_iterations,omitempty"`
	Colgen          *strategy.ColgenStats `json:"colgen,omitempty"`
	AvgNetDelayMS   float64               `json:"avg_net_delay_ms,omitempty"`
	TotalMS         float64               `json:"total_ms"`
	StrategySkipped bool                  `json:"strategy_skipped,omitempty"`
}

// benchReport is the file schema for -bench-out.
type benchReport struct {
	Tool       string       `json:"tool"`
	Seed       int64        `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	System     string       `json:"system"`
	CapScale   float64      `json:"cap_scale,omitempty"`
	Points     []benchPoint `json:"points"`
}

// runBenchOut executes the scale bench for each requested site count and
// writes the report to path.
func runBenchOut(path, sitesArg, clientsArg, systemArg string, caps float64, baselines bool, seed int64) int {
	sizes, err := parseBenchSites(sitesArg)
	if err != nil {
		return fail(err)
	}
	clientCounts, err := parseBenchClients(clientsArg)
	if err != nil {
		return fail(err)
	}
	sys, sysLabel, err := parseBenchSystem(systemArg)
	if err != nil {
		return fail(err)
	}
	if caps <= 0 || math.IsNaN(caps) || math.IsInf(caps, 0) {
		return fail(fmt.Errorf("quorumbench: -bench-caps must be a positive multiplier, got %v", caps))
	}
	rep := benchReport{
		Tool:       "quorumbench -bench-out",
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		System:     sysLabel,
	}
	if caps != 1 {
		rep.CapScale = caps
	}
	for _, n := range sizes {
		counts := clientCounts
		if counts == nil {
			counts = []int{n}
		}
		for _, nc := range counts {
			if nc > n {
				fmt.Fprintf(os.Stderr, "bench: skipping %d clients at %d sites (more clients than sites)\n", nc, n)
				continue
			}
			pt, err := benchPlanPoint(n, nc, sys, caps, baselines, seed)
			if err != nil {
				return fail(fmt.Errorf("bench at %d sites, %d clients: %w", n, nc, err))
			}
			line := fmt.Sprintf("bench: %5d sites, %5d clients: closure %.1fms", n, nc, pt.ClosureMS)
			if pt.ClosureDenseMS > 0 {
				line += fmt.Sprintf(" (dense %.1fms, %.1fx)", pt.ClosureDenseMS, pt.ClosureSpeedup)
			}
			line += fmt.Sprintf(", placement %.1fms", pt.PlacementMS)
			if !pt.StrategySkipped {
				line += fmt.Sprintf(", strategy %.1fms (%s, %d iters)", pt.StrategyMS, pt.LPMethod, pt.LPIterations)
				if pt.StrategyDenseMS > 0 {
					line += fmt.Sprintf(" vs dense %.1fms (%.1fx)", pt.StrategyDenseMS, pt.StrategySpeedup)
				}
			}
			fmt.Fprintf(os.Stderr, "%s, total %.1fms\n", line, pt.TotalMS)
			rep.Points = append(rep.Points, pt)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d points)\n", path, len(rep.Points))
	return 0
}

// benchPlanPoint runs the pipeline once at one (site, client) scale.
// capScale multiplies every site capacity: below 1 the capacity rows
// bind, which is what forces the colgen master to actually grow columns
// instead of certifying its closest-quorum seeds in one pricing round.
// baselines=false skips the dense Floyd–Warshall and dense-simplex
// reference timings (and their objective cross-check) — the committed
// BENCH_plan.json keeps them, CI smoke runs without them.
func benchPlanPoint(n, nc int, sys quorum.System, capScale float64, baselines bool, seed int64) (benchPoint, error) {
	pt := benchPoint{Sites: n, Clients: nc, Quorums: sys.NumQuorums()}

	start := time.Now()
	topo, err := topology.Generate(topology.GenConfig{
		Name: fmt.Sprintf("as-bench-%d", n),
		AS:   &topology.ASGraphSpec{Sites: n},
	}, seed)
	if err != nil {
		return pt, err
	}
	pt.ClosureMS = toMS(time.Since(start))

	if baselines && n <= benchDenseMax {
		m := topo.Distances().Clone()
		t0 := time.Now()
		m.MetricClosure()
		pt.ClosureDenseMS = toMS(time.Since(t0))
		if pt.ClosureMS > 0 {
			pt.ClosureSpeedup = pt.ClosureDenseMS / pt.ClosureMS
		}
	}

	t0 := time.Now()
	f, err := placement.OneToOne(topo, sys, placement.Options{})
	if err != nil {
		return pt, err
	}
	pt.PlacementMS = toMS(time.Since(t0))

	if nc <= benchStrategyMax {
		eval, err := core.NewEval(topo, sys, f, 0)
		if err != nil {
			return pt, err
		}
		if nc < n {
			// Stride-sample so the client set spans the whole graph
			// instead of clustering in the low generation indices.
			clients := make([]int, nc)
			for i := range clients {
				clients[i] = i * n / nc
			}
			if err := eval.SetClients(clients); err != nil {
				return pt, err
			}
		}
		caps := topo.Capacities()
		if capScale != 1 {
			caps = append([]float64(nil), caps...)
			for i := range caps {
				caps[i] *= capScale
			}
		}
		t0 = time.Now()
		opt, err := strategy.NewOptimizer(eval, strategy.Config{
			LP: lp.Options{Pricing: lp.PricingPartial},
		})
		if err != nil {
			return pt, err
		}
		res, err := opt.Optimize(caps)
		if err != nil {
			return pt, err
		}
		pt.StrategyMS = toMS(time.Since(t0))
		pt.LPMethod = res.LPMethod
		pt.LPIterations = res.Iterations
		pt.AvgNetDelayMS = res.AvgNetDelay
		pt.Colgen = res.Colgen

		if baselines && res.Colgen != nil {
			// Auto picked column generation: time the dense simplex it
			// replaced as the baseline, and cross-check the objectives —
			// the bench doubles as an end-to-end equivalence test.
			t0 = time.Now()
			dopt, err := strategy.NewOptimizer(eval, strategy.Config{
				LP:     lp.Options{Pricing: lp.PricingPartial},
				Solver: strategy.SolverDense,
			})
			if err != nil {
				return pt, err
			}
			dres, err := dopt.Optimize(caps)
			if err != nil {
				return pt, err
			}
			pt.StrategyDenseMS = toMS(time.Since(t0))
			if pt.StrategyMS > 0 {
				pt.StrategySpeedup = pt.StrategyDenseMS / pt.StrategyMS
			}
			if diff := math.Abs(res.AvgNetDelay - dres.AvgNetDelay); diff > 1e-9*(1+math.Abs(dres.AvgNetDelay)) {
				return pt, fmt.Errorf("colgen objective %v disagrees with dense %v (diff %g)",
					res.AvgNetDelay, dres.AvgNetDelay, diff)
			}
		}
	} else {
		pt.StrategySkipped = true
	}

	pt.TotalMS = pt.ClosureMS + pt.PlacementMS + pt.StrategyMS
	return pt, nil
}

func parseBenchSites(arg string) ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(arg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 5 {
			return nil, fmt.Errorf("quorumbench: bad -bench-sites entry %q (want integers ≥ 5)", s)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("quorumbench: -bench-sites is empty")
	}
	return sizes, nil
}

// parseBenchClients parses the -bench-clients axis. Empty means "every
// site is a client" (nil), matching the planner's default demand model.
func parseBenchClients(arg string) ([]int, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	var counts []int
	for _, s := range strings.Split(arg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("quorumbench: bad -bench-clients entry %q (want integers ≥ 1)", s)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("quorumbench: -bench-clients has no entries")
	}
	return counts, nil
}

// parseBenchSystem parses the -bench-system "k-of-n" threshold spec.
func parseBenchSystem(arg string) (quorum.System, string, error) {
	parts := strings.Split(strings.TrimSpace(arg), "-of-")
	if len(parts) == 2 {
		k, errK := strconv.Atoi(parts[0])
		n, errN := strconv.Atoi(parts[1])
		if errK == nil && errN == nil {
			sys, err := quorum.NewThreshold(k, n)
			if err != nil {
				return nil, "", fmt.Errorf("quorumbench: -bench-system %q: %w", arg, err)
			}
			return sys, fmt.Sprintf("threshold-%d-of-%d", k, n), nil
		}
	}
	return nil, "", fmt.Errorf("quorumbench: bad -bench-system %q (want k-of-n, e.g. 3-of-5 or 8-of-15)", arg)
}

func toMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
