package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// The bench mode (-bench-out) times the planning pipeline stage by stage
// on synthetic AS-graph topologies and writes the timings as JSON, so the
// repo carries a machine-readable perf trajectory (BENCH_plan.json)
// instead of numbers buried in prose. Stages:
//
//	closure   — AS-graph generation + sparse parallel metric closure
//	            (closure-dominated; edge construction is O(n)). At small
//	            scales the dense Floyd–Warshall is timed too, for the
//	            sparse-vs-dense speedup the sparse closure exists to win.
//	placement — ball-based one-to-one construction with the pruned
//	            anchor search (SearchAuto).
//	strategy  — access-strategy LP (partial pricing, cold) on the
//	            majority-3-of-5 system used throughout the bench.
//
// Floyd–Warshall's cost is input-independent (always n³ relaxations), so
// timing it on the already-closed matrix is a fair dense baseline without
// rebuilding the raw edge matrix.
const (
	// benchDenseMax caps the dense Floyd–Warshall baseline: n³ at 10k
	// sites is ~20 minutes of single-core arithmetic for a number the
	// 1k point already establishes.
	benchDenseMax = 2000
	// benchStrategyMax caps the LP stage: the simplex workspace holds a
	// dense (nc+support)² basis inverse, which at 10k clients is ~800MB.
	benchStrategyMax = 2000
)

// benchPoint is one site-scale measurement. Durations are wall-clock
// milliseconds on whatever machine ran the bench; the ratios, not the
// absolute numbers, are the regression signal.
type benchPoint struct {
	Sites           int     `json:"sites"`
	ClosureMS       float64 `json:"closure_ms"`
	ClosureDenseMS  float64 `json:"closure_dense_ms,omitempty"`
	ClosureSpeedup  float64 `json:"closure_speedup,omitempty"`
	PlacementMS     float64 `json:"placement_ms"`
	StrategyMS      float64 `json:"strategy_ms,omitempty"`
	LPMethod        string  `json:"lp_method,omitempty"`
	LPIterations    int     `json:"lp_iterations,omitempty"`
	AvgNetDelayMS   float64 `json:"avg_net_delay_ms,omitempty"`
	TotalMS         float64 `json:"total_ms"`
	StrategySkipped bool    `json:"strategy_skipped,omitempty"`
}

// benchReport is the file schema for -bench-out.
type benchReport struct {
	Tool       string       `json:"tool"`
	Seed       int64        `json:"seed"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	System     string       `json:"system"`
	Points     []benchPoint `json:"points"`
}

// runBenchOut executes the scale bench for each requested site count and
// writes the report to path.
func runBenchOut(path, sitesArg string, seed int64) int {
	sizes, err := parseBenchSites(sitesArg)
	if err != nil {
		return fail(err)
	}
	rep := benchReport{
		Tool:       "quorumbench -bench-out",
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		System:     "majority-3-of-5",
	}
	for _, n := range sizes {
		pt, err := benchPlanPoint(n, seed)
		if err != nil {
			return fail(fmt.Errorf("bench at %d sites: %w", n, err))
		}
		line := fmt.Sprintf("bench: %5d sites: closure %.1fms", n, pt.ClosureMS)
		if pt.ClosureDenseMS > 0 {
			line += fmt.Sprintf(" (dense %.1fms, %.1fx)", pt.ClosureDenseMS, pt.ClosureSpeedup)
		}
		line += fmt.Sprintf(", placement %.1fms", pt.PlacementMS)
		if !pt.StrategySkipped {
			line += fmt.Sprintf(", strategy %.1fms (%s, %d iters)", pt.StrategyMS, pt.LPMethod, pt.LPIterations)
		}
		fmt.Fprintf(os.Stderr, "%s, total %.1fms\n", line, pt.TotalMS)
		rep.Points = append(rep.Points, pt)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d points)\n", path, len(rep.Points))
	return 0
}

// benchPlanPoint runs the pipeline once at one site scale.
func benchPlanPoint(n int, seed int64) (benchPoint, error) {
	pt := benchPoint{Sites: n}

	start := time.Now()
	topo, err := topology.Generate(topology.GenConfig{
		Name: fmt.Sprintf("as-bench-%d", n),
		AS:   &topology.ASGraphSpec{Sites: n},
	}, seed)
	if err != nil {
		return pt, err
	}
	pt.ClosureMS = toMS(time.Since(start))

	if n <= benchDenseMax {
		m := topo.Distances().Clone()
		t0 := time.Now()
		m.MetricClosure()
		pt.ClosureDenseMS = toMS(time.Since(t0))
		if pt.ClosureMS > 0 {
			pt.ClosureSpeedup = pt.ClosureDenseMS / pt.ClosureMS
		}
	}

	sys, err := quorum.NewThreshold(3, 5)
	if err != nil {
		return pt, err
	}
	t0 := time.Now()
	f, err := placement.OneToOne(topo, sys, placement.Options{})
	if err != nil {
		return pt, err
	}
	pt.PlacementMS = toMS(time.Since(t0))

	if n <= benchStrategyMax {
		eval, err := core.NewEval(topo, sys, f, 0)
		if err != nil {
			return pt, err
		}
		t0 = time.Now()
		opt, err := strategy.NewOptimizer(eval, strategy.Config{
			LP: lp.Options{Pricing: lp.PricingPartial},
		})
		if err != nil {
			return pt, err
		}
		res, err := opt.Optimize(topo.Capacities())
		if err != nil {
			return pt, err
		}
		pt.StrategyMS = toMS(time.Since(t0))
		pt.LPMethod = res.LPMethod
		pt.LPIterations = res.Iterations
		pt.AvgNetDelayMS = res.AvgNetDelay
	} else {
		pt.StrategySkipped = true
	}

	pt.TotalMS = pt.ClosureMS + pt.PlacementMS + pt.StrategyMS
	return pt, nil
}

func parseBenchSites(arg string) ([]int, error) {
	var sizes []int
	for _, s := range strings.Split(arg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 5 {
			return nil, fmt.Errorf("quorumbench: bad -bench-sites entry %q (want integers ≥ 5)", s)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("quorumbench: -bench-sites is empty")
	}
	return sizes, nil
}

func toMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
