// Command quorumbench regenerates the paper's figures as text tables.
//
// Usage:
//
//	quorumbench -list
//	quorumbench -fig 6.3
//	quorumbench -all
//	quorumbench -all -markdown > results.md
//	quorumbench -fig 3.1 -seed 7 -runs 3 -duration 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure or ablation to regenerate (e.g. 6.3, fig6.3, abl-dedup)")
		all       = flag.Bool("all", false, "regenerate every paper figure")
		ablations = flag.Bool("ablations", false, "regenerate the ablation studies")
		list      = flag.Bool("list", false, "list available figures and ablations")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		quick     = flag.Bool("quick", false, "reduced scale (for smoke testing)")
		seed      = flag.Int64("seed", topology.DefaultSeed, "topology/protocol seed")
		runs      = flag.Int("runs", 5, "protocol simulation runs per point")
		duration  = flag.Float64("duration", 20000, "protocol simulation length (ms)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	params := experiments.Params{
		Seed:         *seed,
		QURuns:       *runs,
		QUDurationMS: *duration,
		Quick:        *quick,
	}

	var todo []experiments.Experiment
	switch {
	case *all:
		todo = experiments.All()
	case *ablations:
		todo = experiments.Ablations()
	case *fig != "":
		id := *fig
		if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "abl") {
			id = "fig" + id
		}
		e, err := experiments.ByID(id)
		if err != nil {
			fatal(err)
		}
		todo = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig <id>, -all, -ablations, or -list")
		os.Exit(2)
	}

	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(params)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if *markdown {
			if err := tb.FormatMarkdown(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := tb.Format(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quorumbench:", err)
	os.Exit(1)
}
