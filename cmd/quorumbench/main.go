// Command quorumbench regenerates the paper's figures as text tables and
// runs declarative scenarios through the scenario engine.
//
// Usage:
//
//	quorumbench -list
//	quorumbench -fig 6.3
//	quorumbench -all
//	quorumbench -all -markdown > results.md
//	quorumbench -fig 3.1 -seed 7 -runs 3 -duration 10000
//	quorumbench -fig 7.6 -cpuprofile fig76.prof
//	quorumbench -all -reproducible
//	quorumbench -scenario list
//	quorumbench -scenario diurnal-demand
//	quorumbench -scenario my-workload.json
//
// -scenario runs a workload scenario: "list" prints the built-in
// library, a library name runs that scenario, and anything else is
// loaded as a JSON spec file (see the quorumnet.Scenario type for the
// schema).
//
// By default the LP-heavy figures run on the fast path (warm-started,
// partially priced, parallel solves); -reproducible regenerates the
// tables bit-for-bit as the original serial harness did (see
// EXPERIMENTS.md). -cpuprofile/-memprofile write pprof profiles of the
// figure runs so performance work does not need throwaway harnesses.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() { os.Exit(run()) }

// run carries the real main body so deferred profile writers execute
// before the process exits, even on figure errors — a failing run is
// exactly the one worth profiling.
func run() int {
	var (
		fig       = flag.String("fig", "", "figure or ablation to regenerate (e.g. 6.3, fig6.3, abl-dedup)")
		all       = flag.Bool("all", false, "regenerate every paper figure")
		ablations = flag.Bool("ablations", false, "regenerate the ablation studies")
		list      = flag.Bool("list", false, "list available figures and ablations")
		markdown  = flag.Bool("markdown", false, "emit markdown tables")
		quick     = flag.Bool("quick", false, "reduced scale (for smoke testing)")
		seed      = flag.Int64("seed", topology.DefaultSeed, "topology/protocol seed")
		runs      = flag.Int("runs", 5, "protocol simulation runs per point")
		duration  = flag.Float64("duration", 20000, "protocol simulation length (ms)")
		repro     = flag.Bool("reproducible", false, "bit-reproduce the original serial harness's tables (slower)")
		scen      = flag.String("scenario", "", "run a scenario: 'list', a built-in name, or a JSON spec file")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile after the figure runs to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprof)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	params := experiments.Params{
		Seed:         *seed,
		QURuns:       *runs,
		QUDurationMS: *duration,
		Quick:        *quick,
		Reproducible: *repro,
	}

	if *scen != "" {
		return runScenario(*scen, scenario.RunConfig{
			Seed:         *seed,
			Reproducible: *repro,
			QURuns:       *runs,
			QUDurationMS: *duration,
		}, *markdown)
	}

	var todo []experiments.Experiment
	switch {
	case *all:
		todo = experiments.All()
	case *ablations:
		todo = experiments.Ablations()
	case *fig != "":
		id := *fig
		if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "abl") {
			id = "fig" + id
		}
		e, err := experiments.ByID(id)
		if err != nil {
			return fail(err)
		}
		todo = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig <id>, -all, -ablations, or -list")
		return 2
	}

	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(params)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		if *markdown {
			if err := tb.FormatMarkdown(os.Stdout); err != nil {
				return fail(err)
			}
		} else {
			if err := tb.Format(os.Stdout); err != nil {
				return fail(err)
			}
			fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	return 0
}

// runScenario resolves the -scenario argument: "list", a built-in
// library name, or a JSON spec file path.
func runScenario(arg string, cfg scenario.RunConfig, markdown bool) int {
	if arg == "list" {
		for _, s := range scenario.Library() {
			fmt.Printf("%-21s %-9s %s\n", s.Name, s.Kind, s.Title)
		}
		return 0
	}
	spec, err := scenario.LibraryByName(arg)
	if err != nil {
		f, ferr := os.Open(arg)
		if ferr != nil {
			return fail(fmt.Errorf("%q is neither a built-in scenario nor a readable spec file: %w", arg, ferr))
		}
		defer f.Close()
		spec, err = scenario.Load(f)
		if err != nil {
			return fail(err)
		}
	}
	start := time.Now()
	tb, err := scenario.Run(spec, cfg)
	if err != nil {
		return fail(err)
	}
	if markdown {
		if err := tb.FormatMarkdown(os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if err := tb.Format(os.Stdout); err != nil {
		return fail(err)
	}
	fmt.Printf("(%s in %.1fs)\n", spec.Name, time.Since(start).Seconds())
	return 0
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "quorumbench:", err)
	return 1
}
