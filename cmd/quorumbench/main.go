// Command quorumbench regenerates the paper's figures as text tables and
// runs declarative scenarios through the scenario engine — locally,
// sharded across processes, or coordinated over a worker fleet.
//
// Usage:
//
//	quorumbench -list
//	quorumbench -fig 6.3
//	quorumbench -all
//	quorumbench -all -markdown > results.md
//	quorumbench -fig 3.1 -seed 7 -runs 3 -duration 10000
//	quorumbench -fig 7.6 -cpuprofile fig76.prof
//	quorumbench -all -reproducible
//	quorumbench -scenario list
//	quorumbench -scenario diurnal-demand
//	quorumbench -scenario my-workload.json
//	quorumbench -fig 6.3 -format csv
//
// Sharded execution (the merged output is byte-identical to the
// unsharded run, whatever the shard count or completion order):
//
//	quorumbench -fig 6.3 -shards 4                  # all shards locally, merged
//	quorumbench -fig 6.3 -shards 4 -shard 1 > p1.json   # one shard's partial
//	quorumbench -fig 6.3 -shards 4 -merge p0.json,p1.json,p2.json,p3.json
//	quorumbench -fleet-worker -addr :9190           # serve shards for a fleet
//	quorumbench -fig 6.3 -fleet host1:9190,host2:9190   # static worker list
//
// Elastic fleet (workers self-register and heartbeat; a worker that
// dies mid-shard has its shard re-dispatched immediately, and workers
// may join mid-run):
//
//	quorumbench -fleet-worker -addr :9190 -join coordinator-host:9200
//	quorumbench -scenario seed-scale-study -fleet-registry :9200 -min-workers 3 -shards 12
//
// -scenario runs a workload scenario: "list" prints the built-in
// library, a library name runs that scenario, and anything else is
// loaded as a JSON spec file (see the quorumnet.Scenario type for the
// schema). -shards/-shard/-merge/-fleet/-fleet-registry apply to
// -scenario exactly as they do to -fig; -progress logs per-point
// completions — and, for fleet runs, worker joins/deaths, re-dispatch
// events, and live/dead counts — to stderr so long parameter studies
// are debuggable from the log alone.
//
// By default the LP-heavy figures run on the fast path (warm-started,
// partially priced, parallel solves); -reproducible regenerates the
// tables bit-for-bit as the original serial harness did (see
// EXPERIMENTS.md). -cpuprofile/-memprofile write pprof profiles of the
// figure runs so performance work does not need throwaway harnesses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/fleet"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() { os.Exit(run()) }

// run carries the real main body so deferred profile writers execute
// before the process exits, even on figure errors — a failing run is
// exactly the one worth profiling.
func run() int {
	var (
		fig       = flag.String("fig", "", "figure or ablation to regenerate (e.g. 6.3, fig6.3, abl-dedup)")
		all       = flag.Bool("all", false, "regenerate every paper figure")
		ablations = flag.Bool("ablations", false, "regenerate the ablation studies")
		list      = flag.Bool("list", false, "list available figures and ablations")
		markdown  = flag.Bool("markdown", false, "emit markdown tables (same as -format markdown)")
		format    = flag.String("format", "", "output format: text (default), markdown, csv, json")
		quick     = flag.Bool("quick", false, "reduced scale (for smoke testing)")
		seed      = flag.Int64("seed", topology.DefaultSeed, "topology/protocol seed")
		runs      = flag.Int("runs", 5, "protocol simulation runs per point")
		duration  = flag.Float64("duration", 20000, "protocol simulation length (ms)")
		repro     = flag.Bool("reproducible", false, "bit-reproduce the original serial harness's tables (slower)")
		scen      = flag.String("scenario", "", "run a scenario: 'list', a built-in name, or a JSON spec file")
		shards    = flag.Int("shards", 0, "split the figure/scenario point-space into this many shards")
		shard     = flag.Int("shard", -1, "execute only this shard (0-based, with -shards) and print its partial as JSON")
		mergeArg  = flag.String("merge", "", "comma-separated partial JSON files to merge into the full table")
		fleetArg  = flag.String("fleet", "", "comma-separated fleet worker addresses to run the shards on")
		fleetReg  = flag.String("fleet-registry", "", "listen address for an elastic fleet registry; shards run on self-registered workers (see -join)")
		minWork   = flag.Int("min-workers", 1, "workers that must be live before an elastic run dispatches")
		worker    = flag.Bool("fleet-worker", false, "serve shard jobs for fleet coordinators (see -addr)")
		addr      = flag.String("addr", "127.0.0.1:9190", "listen address for -fleet-worker")
		join      = flag.String("join", "", "registry address a -fleet-worker self-registers with (elastic fleet)")
		advertise = flag.String("advertise", "", "address the worker advertises to the registry (default: -addr with 127.0.0.1 for an empty host)")
		progress  = flag.Bool("progress", false, "log per-shard/per-point completion counts to stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile after the figure runs to this file")
	)
	flag.Parse()

	outFormat := *format
	if outFormat == "" {
		outFormat = "text"
		if *markdown {
			outFormat = "markdown"
		}
	}
	switch outFormat {
	case "text", "markdown", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "quorumbench: unknown format %q (text, markdown, csv, json)\n", outFormat)
		return 2
	}

	if *worker {
		return runFleetWorker(*addr, *join, *advertise)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprof)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	params := experiments.Params{
		Seed:         *seed,
		QURuns:       *runs,
		QUDurationMS: *duration,
		Quick:        *quick,
		Reproducible: *repro,
	}

	// Sharded, fleet, and merge modes operate on one spec's point-space.
	if *shards > 0 || *shard >= 0 || *mergeArg != "" || *fleetArg != "" || *fleetReg != "" {
		if *fleetArg != "" && *fleetReg != "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -fleet and -fleet-registry are exclusive")
			return 2
		}
		spec, cfg, code := resolveSpec(*fig, *scen, params)
		if code != 0 {
			return code
		}
		if *progress {
			cfg.Progress = logProgress
		}
		return runSharded(spec, cfg, shardedOptions{
			shards:     *shards,
			shard:      *shard,
			mergeArg:   *mergeArg,
			fleetArg:   *fleetArg,
			registry:   *fleetReg,
			minWorkers: *minWork,
			format:     outFormat,
			progress:   *progress,
		})
	}

	if *scen != "" {
		cfg := scenario.RunConfig{
			Seed:         *seed,
			Reproducible: *repro,
			QURuns:       *runs,
			QUDurationMS: *duration,
		}
		if *progress {
			cfg.Progress = logProgress
		}
		return runScenario(*scen, cfg, outFormat)
	}

	var todo []experiments.Experiment
	switch {
	case *all:
		todo = experiments.All()
	case *ablations:
		todo = experiments.Ablations()
	case *fig != "":
		e, err := experiments.ByID(normalizeFigID(*fig))
		if err != nil {
			return fail(err)
		}
		todo = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig <id>, -all, -ablations, -scenario, -fleet-worker, or -list")
		return 2
	}

	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(params)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		if code := emit(tb, outFormat, e.ID, start, "\n\n"); code != 0 {
			return code
		}
	}
	return 0
}

func normalizeFigID(id string) string {
	if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "abl") {
		id = "fig" + id
	}
	return id
}

// resolveSpec finds the declarative spec sharded modes partition: a
// figure's (-fig) or a scenario's (-scenario). Returns a non-zero exit
// code on failure.
func resolveSpec(fig, scen string, params experiments.Params) (*scenario.Spec, scenario.RunConfig, int) {
	switch {
	case fig != "" && scen != "":
		fmt.Fprintln(os.Stderr, "quorumbench: sharded runs take -fig or -scenario, not both")
		return nil, scenario.RunConfig{}, 2
	case fig != "":
		e, err := experiments.ByID(normalizeFigID(fig))
		if err != nil {
			return nil, scenario.RunConfig{}, fail(err)
		}
		if e.Spec == nil {
			return nil, scenario.RunConfig{}, fail(fmt.Errorf("%s is a bespoke runner without a declarative spec; it cannot shard", e.ID))
		}
		return e.Spec(params), params.RunConfig(), 0
	case scen != "" && scen != "list":
		spec, code := loadSpec(scen)
		if code != 0 {
			return nil, scenario.RunConfig{}, code
		}
		return spec, scenario.RunConfig{
			Seed:         params.Seed,
			Reproducible: params.Reproducible,
			QURuns:       params.QURuns,
			QUDurationMS: params.QUDurationMS,
		}, 0
	default:
		fmt.Fprintln(os.Stderr, "quorumbench: sharded runs need -fig <id> or -scenario <name|file>")
		return nil, scenario.RunConfig{}, 2
	}
}

// shardedOptions carries the sharded/fleet/merge mode selection.
type shardedOptions struct {
	shards     int
	shard      int
	mergeArg   string
	fleetArg   string
	registry   string
	minWorkers int
	format     string
	progress   bool
}

// fleetLogf returns the coordinator/registry log sink: stderr under
// -progress, silent otherwise.
func fleetLogf(progress bool) func(string, ...interface{}) {
	if !progress {
		return nil
	}
	return func(f string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}
}

// runSharded executes the sharded/fleet/merge modes over one spec.
func runSharded(spec *scenario.Spec, cfg scenario.RunConfig, opts shardedOptions) int {
	start := time.Now()
	shards, shard := opts.shards, opts.shard
	mergeArg, fleetArg, format, progress := opts.mergeArg, opts.fleetArg, opts.format, opts.progress
	switch {
	case mergeArg != "":
		var partials []*scenario.Partial
		for _, path := range strings.Split(mergeArg, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				return fail(err)
			}
			var p scenario.Partial
			if err := json.Unmarshal(data, &p); err != nil {
				return fail(fmt.Errorf("%s: %w", path, err))
			}
			partials = append(partials, &p)
		}
		tb, err := scenario.Merge(spec, cfg, partials)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")

	case opts.registry != "":
		// Elastic fleet: serve the registry, wait for -min-workers
		// self-registrations, dispatch over whoever is live.
		reg := fleet.NewRegistry(fleet.RegistryOptions{Logf: fleetLogf(progress)})
		srv := &http.Server{Addr: opts.registry, Handler: reg.Handler()}
		ln, err := net.Listen("tcp", opts.registry)
		if err != nil {
			return fail(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "quorumbench: fleet registry listening on %s\n", ln.Addr())
		coord, err := fleet.New(fleet.Config{
			Registry:   reg,
			MinWorkers: opts.minWorkers,
			Shards:     shards,
			Logf:       fleetLogf(progress),
		})
		if err != nil {
			return fail(err)
		}
		tb, err := coord.Run(spec, cfg)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")

	case fleetArg != "":
		coord, err := fleet.New(fleet.Config{
			Workers: strings.Split(fleetArg, ","),
			Shards:  shards,
			Logf:    fleetLogf(progress),
		})
		if err != nil {
			return fail(err)
		}
		tb, err := coord.Run(spec, cfg)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")

	case shard >= 0:
		if shards <= 0 {
			fmt.Fprintln(os.Stderr, "quorumbench: -shard needs -shards")
			return 2
		}
		space, err := scenario.NewSpace(spec, cfg)
		if err != nil {
			return fail(err)
		}
		part, err := space.Shard(shard, shards)
		if err != nil {
			return fail(err)
		}
		partial, err := part.Execute()
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(partial); err != nil {
			return fail(err)
		}
		return 0

	default:
		// All shards in this process, merged — the smoke-testable proof
		// that sharding preserves bytes.
		space, err := scenario.NewSpace(spec, cfg)
		if err != nil {
			return fail(err)
		}
		partials := make([]*scenario.Partial, shards)
		for si := 0; si < shards; si++ {
			part, err := space.Shard(si, shards)
			if err != nil {
				return fail(err)
			}
			if partials[si], err = part.Execute(); err != nil {
				return fail(err)
			}
		}
		tb, err := space.Merge(partials)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")
	}
}

// runFleetWorker serves shard jobs until the process is killed. With
// -join it also keeps a registration lease with an elastic fleet
// registry, heartbeating so coordinators dispatch to it — and re-assign
// its shards the moment it stops answering.
func runFleetWorker(addr, join, advertise string) int {
	logf := func(f string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}
	w := fleet.NewWorker(fleet.WorkerOptions{Logf: logf})
	if join != "" {
		if advertise == "" {
			advertise = addr
			if strings.HasPrefix(advertise, ":") {
				advertise = "127.0.0.1" + advertise
			}
		}
		lease, err := fleet.Join(join, advertise, fleet.LeaseOptions{Logf: logf})
		if err != nil {
			return fail(err)
		}
		defer lease.Stop()
		fmt.Fprintf(os.Stderr, "quorumbench: fleet worker joining %s as %s\n", join, advertise)
	}
	fmt.Fprintf(os.Stderr, "quorumbench: fleet worker listening on %s\n", addr)
	return fail(http.ListenAndServe(addr, w.Handler()))
}

// logProgress is the -progress handler: per-point completion counts
// with elapsed time.
func logProgress(ev scenario.Progress) {
	fmt.Fprintf(os.Stderr, "progress: %s shard %d/%d: point %d/%d done (%s, %.1fs)\n",
		ev.Scenario, ev.Shard, ev.Shards, ev.Done, ev.Total, ev.Point.Label, ev.Elapsed.Seconds())
}

// emit writes one table in the selected format; text appends the timing
// line the classic paths printed (trailer is its tail: "\n" after
// figures, "" after scenarios keeps historic spacing).
func emit(tb *scenario.Table, format, id string, start time.Time, trailer string) int {
	switch format {
	case "markdown":
		if err := tb.FormatMarkdown(os.Stdout); err != nil {
			return fail(err)
		}
	case "csv":
		if err := tb.WriteCSV(os.Stdout); err != nil {
			return fail(err)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tb); err != nil {
			return fail(err)
		}
	default:
		if err := tb.Format(os.Stdout); err != nil {
			return fail(err)
		}
		fmt.Printf("(%s in %.1fs)%s", id, time.Since(start).Seconds(), trailer)
	}
	return 0
}

// loadSpec resolves a -scenario argument to a spec: a built-in library
// name or a JSON spec file path.
func loadSpec(arg string) (*scenario.Spec, int) {
	spec, err := scenario.LibraryByName(arg)
	if err == nil {
		return spec, 0
	}
	f, ferr := os.Open(arg)
	if ferr != nil {
		return nil, fail(fmt.Errorf("%q is neither a built-in scenario nor a readable spec file: %w", arg, ferr))
	}
	defer f.Close()
	spec, err = scenario.Load(f)
	if err != nil {
		return nil, fail(err)
	}
	return spec, 0
}

// runScenario resolves the -scenario argument: "list", a built-in
// library name, or a JSON spec file path.
func runScenario(arg string, cfg scenario.RunConfig, format string) int {
	if arg == "list" {
		for _, s := range scenario.Library() {
			fmt.Printf("%-21s %-9s %s\n", s.Name, s.Kind, s.Title)
		}
		return 0
	}
	spec, code := loadSpec(arg)
	if code != 0 {
		return code
	}
	start := time.Now()
	tb, err := scenario.Run(spec, cfg)
	if err != nil {
		return fail(err)
	}
	return emit(tb, format, spec.Name, start, "\n")
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "quorumbench:", err)
	return 1
}
