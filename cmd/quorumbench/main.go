// Command quorumbench regenerates the paper's figures as text tables and
// runs declarative scenarios through the scenario engine — locally,
// sharded across processes, or coordinated over a worker fleet.
//
// Usage:
//
//	quorumbench -list
//	quorumbench -fig 6.3
//	quorumbench -all
//	quorumbench -all -markdown > results.md
//	quorumbench -fig 3.1 -seed 7 -runs 3 -duration 10000
//	quorumbench -fig 7.6 -cpuprofile fig76.prof
//	quorumbench -all -reproducible
//	quorumbench -scenario list
//	quorumbench -scenario diurnal-demand
//	quorumbench -scenario my-workload.json
//	quorumbench -fig 6.3 -format csv
//	quorumbench -bench-out BENCH_plan.json -bench-sites 100,1000,10000
//	quorumbench -bench-out BENCH_plan.json -bench-sites 1000 -bench-clients 1000 -bench-system 8-of-15
//
// Sharded execution (the merged output is byte-identical to the
// unsharded run, whatever the shard count or completion order):
//
//	quorumbench -fig 6.3 -shards 4                  # all shards locally, merged
//	quorumbench -fig 6.3 -shards 4 -shard 1 > p1.json   # one shard's partial
//	quorumbench -fig 6.3 -shards 4 -merge p0.json,p1.json,p2.json,p3.json
//	quorumbench -fleet-worker -addr :9190           # serve shards for a fleet
//	quorumbench -fig 6.3 -fleet host1:9190,host2:9190   # static worker list
//
// Elastic fleet (workers self-register and heartbeat; a worker that
// dies mid-shard has its shard re-dispatched immediately, and workers
// may join mid-run):
//
//	quorumbench -fleet-worker -addr :9190 -join coordinator-host:9200
//	quorumbench -fleet-worker -addr :9190 -join host:9200 -slots 4 -cores 8
//	quorumbench -scenario seed-scale-study -fleet-registry :9200 -min-workers 3 -shards 12
//
// Durable runs (crash recovery): -journal records every dispatch and
// completed shard to an append-only file; -resume reloads it, verifies
// the spec hash, and dispatches only the shards without a recorded
// result — the merged output is byte-identical to an uninterrupted run.
// -standby tails a journal and takes over automatically when the
// primary coordinator's lease goes stale:
//
//	quorumbench -fig 6.3 -fleet host1:9190,host2:9190 -shards 8 -journal run.journal
//	quorumbench -resume run.journal -fleet host1:9190,host2:9190
//	quorumbench -standby -journal run.journal -fleet-registry :9201
//
// -scenario runs a workload scenario: "list" prints the built-in
// library, a library name runs that scenario, and anything else is
// loaded as a JSON spec file (see the quorumnet.Scenario type for the
// schema). -shards/-shard/-merge/-fleet/-fleet-registry apply to
// -scenario exactly as they do to -fig; -progress logs per-point
// completions — and, for fleet runs, worker joins/deaths, re-dispatch
// events, and live/dead counts — to stderr so long parameter studies
// are debuggable from the log alone.
//
// By default the LP-heavy figures run on the fast path (warm-started,
// partially priced, parallel solves); -reproducible regenerates the
// tables bit-for-bit as the original serial harness did (see
// EXPERIMENTS.md). -cpuprofile/-memprofile write pprof profiles of the
// figure runs so performance work does not need throwaway harnesses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/fleet"
	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func main() { os.Exit(run()) }

// run carries the real main body so deferred profile writers execute
// before the process exits, even on figure errors — a failing run is
// exactly the one worth profiling.
func run() int {
	var (
		fig       = flag.String("fig", "", "figure or ablation to regenerate (e.g. 6.3, fig6.3, abl-dedup)")
		all       = flag.Bool("all", false, "regenerate every paper figure")
		ablations = flag.Bool("ablations", false, "regenerate the ablation studies")
		list      = flag.Bool("list", false, "list available figures and ablations")
		markdown  = flag.Bool("markdown", false, "emit markdown tables (same as -format markdown)")
		format    = flag.String("format", "", "output format: text (default), markdown, csv, json")
		quick     = flag.Bool("quick", false, "reduced scale (for smoke testing)")
		seed      = flag.Int64("seed", topology.DefaultSeed, "topology/protocol seed")
		runs      = flag.Int("runs", 5, "protocol simulation runs per point")
		duration  = flag.Float64("duration", 20000, "protocol simulation length (ms)")
		repro     = flag.Bool("reproducible", false, "bit-reproduce the original serial harness's tables (slower)")
		scen      = flag.String("scenario", "", "run a scenario: 'list', a built-in name, or a JSON spec file")
		shards    = flag.Int("shards", 0, "split the figure/scenario point-space into this many shards")
		shard     = flag.Int("shard", -1, "execute only this shard (0-based, with -shards) and print its partial as JSON")
		mergeArg  = flag.String("merge", "", "comma-separated partial JSON files to merge into the full table")
		fleetArg  = flag.String("fleet", "", "comma-separated fleet worker addresses to run the shards on")
		fleetReg  = flag.String("fleet-registry", "", "listen address for an elastic fleet registry; shards run on self-registered workers (see -join)")
		minWork   = flag.Int("min-workers", 1, "workers that must be live before an elastic run dispatches")
		worker    = flag.Bool("fleet-worker", false, "serve shard jobs for fleet coordinators (see -addr)")
		addr      = flag.String("addr", "127.0.0.1:9190", "listen address for -fleet-worker")
		join      = flag.String("join", "", "registry address a -fleet-worker self-registers with (elastic fleet)")
		advertise = flag.String("advertise", "", "address the worker advertises to the registry (default: -addr with 127.0.0.1 for an empty host)")
		slots     = flag.Int("slots", 1, "shard slots a -fleet-worker advertises; coordinators weight dispatch by free slots")
		cores     = flag.Int("cores", 0, "cores a -fleet-worker advertises (informational; shown in the registry roster)")
		jpath     = flag.String("journal", "", "record this fleet run's dispatch/completion protocol to an append-only journal file")
		resumeArg = flag.String("resume", "", "resume a crashed fleet run from its journal, dispatching only the unrecorded shards")
		standby   = flag.Bool("standby", false, "tail -journal as a standby coordinator and take over when the primary's lease goes stale")
		leaseTTL  = flag.Duration("lease-ttl", 5*time.Second, "journal lease staleness a -standby waits for before taking over")
		progress  = flag.Bool("progress", false, "log per-shard/per-point completion counts to stderr")
		benchOut  = flag.String("bench-out", "", "time the planning pipeline per stage on AS-graph topologies and write the JSON report here (see BENCH_plan.json)")
		benchSite = flag.String("bench-sites", "100,1000", "comma-separated site counts for -bench-out")
		benchCli  = flag.String("bench-clients", "", "comma-separated client counts for the -bench-out strategy stage (default: every site is a client)")
		benchSys  = flag.String("bench-system", "3-of-5", "threshold system for the -bench-out strategy stage, as k-of-n (8-of-15 is the colgen showcase)")
		benchCaps = flag.Float64("bench-caps", 1, "multiplier on every site capacity for the -bench-out strategy stage; below 1 the capacity rows bind")
		benchBase = flag.Bool("bench-baselines", true, "time the dense Floyd–Warshall and dense-simplex baselines alongside the fast paths (false: fast paths only, for smoke runs)")
		benchSrv  = flag.String("bench-serve", "", "load-test the multi-tenant serving plane in-process (long-poll watcher fan-out, cached-read allocs) and write the JSON report here (see BENCH_serve.json)")
		benchWtch = flag.String("bench-watchers", "10000,100000,1000000", "comma-separated watcher counts for -bench-serve")
		benchTen  = flag.String("bench-serve-tenants", "1,4,16", "comma-separated tenant counts for -bench-serve")
		benchRnds = flag.Int("bench-serve-rounds", 4, "publish rounds per -bench-serve point")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile after the figure runs to this file")
	)
	flag.Parse()

	outFormat := *format
	if outFormat == "" {
		outFormat = "text"
		if *markdown {
			outFormat = "markdown"
		}
	}
	switch outFormat {
	case "text", "markdown", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "quorumbench: unknown format %q (text, markdown, csv, json)\n", outFormat)
		return 2
	}

	// Contradictory-flag rejection: each message names the conflict and
	// the fix, so a bad invocation never half-runs.
	if *worker && (*jpath != "" || *resumeArg != "" || *standby) {
		fmt.Fprintln(os.Stderr, "quorumbench: -journal/-resume/-standby are coordinator flags; a -fleet-worker serves shards and keeps no journal — drop them or drop -fleet-worker")
		return 2
	}
	if *shard >= 0 && *shards > 0 && *shard >= *shards {
		fmt.Fprintf(os.Stderr, "quorumbench: -shard %d is out of range for -shards %d (shards are 0-based: 0..%d)\n", *shard, *shards, *shards-1)
		return 2
	}
	if *fleetArg != "" && *fleetReg != "" {
		fmt.Fprintln(os.Stderr, "quorumbench: -fleet and -fleet-registry are exclusive; pick a static worker list or an elastic registry")
		return 2
	}
	if *resumeArg != "" {
		if *standby {
			fmt.Fprintln(os.Stderr, "quorumbench: -resume and -standby are exclusive: a standby resumes by itself when the primary's lease goes stale")
			return 2
		}
		if *jpath != "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -resume continues the journal it loads; -journal only starts a new run — drop one of them")
			return 2
		}
		if *fleetArg == "" && *fleetReg == "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -resume needs workers to dispatch the remaining shards to; add -fleet <addr,...> or -fleet-registry <addr>")
			return 2
		}
		if *shard >= 0 || *mergeArg != "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -resume re-runs a whole fleet run; it cannot combine with -shard or -merge")
			return 2
		}
	}
	if *jpath != "" && !*standby {
		if *fleetArg == "" && *fleetReg == "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -journal records a fleet run; add -fleet <addr,...> or -fleet-registry <addr> (or -standby to tail an existing journal)")
			return 2
		}
		if *shards <= 0 {
			fmt.Fprintln(os.Stderr, "quorumbench: -journal needs an explicit -shards count so a -resume knows the partition")
			return 2
		}
	}
	if *standby {
		if *jpath == "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -standby tails a run journal; name it with -journal <file>")
			return 2
		}
		if *fleetArg == "" && *fleetReg == "" {
			fmt.Fprintln(os.Stderr, "quorumbench: -standby needs takeover workers; add -fleet <addr,...> or -fleet-registry <addr>")
			return 2
		}
	}

	if *worker {
		return runFleetWorker(*addr, *join, *advertise, *slots, *cores)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprof)

	if *benchOut != "" {
		return runBenchOut(*benchOut, *benchSite, *benchCli, *benchSys, *benchCaps, *benchBase, *seed)
	}

	if *benchSrv != "" {
		return runBenchServe(*benchSrv, *benchWtch, *benchTen, *benchRnds, *seed)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	params := experiments.Params{
		Seed:         *seed,
		QURuns:       *runs,
		QUDurationMS: *duration,
		Quick:        *quick,
		Reproducible: *repro,
	}

	// Sharded, fleet, merge, resume, and standby modes operate on one
	// spec's point-space.
	if *shards > 0 || *shard >= 0 || *mergeArg != "" || *fleetArg != "" || *fleetReg != "" || *resumeArg != "" || *standby {
		opts := shardedOptions{
			shards:     *shards,
			shard:      *shard,
			mergeArg:   *mergeArg,
			fleetArg:   *fleetArg,
			registry:   *fleetReg,
			minWorkers: *minWork,
			format:     outFormat,
			progress:   *progress,
			journal:    *jpath,
			leaseTTL:   *leaseTTL,
		}
		if *standby {
			return runStandby(opts)
		}
		if *resumeArg != "" {
			return runResume(*fig, *scen, params, *resumeArg, opts)
		}
		spec, cfg, code := resolveSpec(*fig, *scen, params)
		if code != 0 {
			return code
		}
		if *progress {
			cfg.Progress = logProgress
		}
		return runSharded(spec, cfg, opts)
	}

	if *scen != "" {
		cfg := scenario.RunConfig{
			Seed:         *seed,
			Reproducible: *repro,
			QURuns:       *runs,
			QUDurationMS: *duration,
		}
		if *progress {
			cfg.Progress = logProgress
		}
		return runScenario(*scen, cfg, outFormat)
	}

	var todo []experiments.Experiment
	switch {
	case *all:
		todo = experiments.All()
	case *ablations:
		todo = experiments.Ablations()
	case *fig != "":
		e, err := experiments.ByID(normalizeFigID(*fig))
		if err != nil {
			return fail(err)
		}
		todo = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig <id>, -all, -ablations, -scenario, -fleet-worker, or -list")
		return 2
	}

	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(params)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", e.ID, err))
		}
		if code := emit(tb, outFormat, e.ID, start, "\n\n"); code != 0 {
			return code
		}
	}
	return 0
}

func normalizeFigID(id string) string {
	if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "abl") {
		id = "fig" + id
	}
	return id
}

// resolveSpec finds the declarative spec sharded modes partition: a
// figure's (-fig) or a scenario's (-scenario). Returns a non-zero exit
// code on failure.
func resolveSpec(fig, scen string, params experiments.Params) (*scenario.Spec, scenario.RunConfig, int) {
	switch {
	case fig != "" && scen != "":
		fmt.Fprintln(os.Stderr, "quorumbench: sharded runs take -fig or -scenario, not both")
		return nil, scenario.RunConfig{}, 2
	case fig != "":
		e, err := experiments.ByID(normalizeFigID(fig))
		if err != nil {
			return nil, scenario.RunConfig{}, fail(err)
		}
		if e.Spec == nil {
			return nil, scenario.RunConfig{}, fail(fmt.Errorf("%s is a bespoke runner without a declarative spec; it cannot shard", e.ID))
		}
		return e.Spec(params), params.RunConfig(), 0
	case scen != "" && scen != "list":
		spec, code := loadSpec(scen)
		if code != 0 {
			return nil, scenario.RunConfig{}, code
		}
		return spec, scenario.RunConfig{
			Seed:         params.Seed,
			Reproducible: params.Reproducible,
			QURuns:       params.QURuns,
			QUDurationMS: params.QUDurationMS,
		}, 0
	default:
		fmt.Fprintln(os.Stderr, "quorumbench: sharded runs need -fig <id> or -scenario <name|file>")
		return nil, scenario.RunConfig{}, 2
	}
}

// shardedOptions carries the sharded/fleet/merge mode selection.
type shardedOptions struct {
	shards     int
	shard      int
	mergeArg   string
	fleetArg   string
	registry   string
	minWorkers int
	format     string
	progress   bool
	journal    string
	leaseTTL   time.Duration
}

// fleetConfig builds the coordinator Config for the selected fleet mode
// — a static worker list, or an elastic registry whose HTTP server it
// starts (the returned cleanup stops it).
func fleetConfig(opts shardedOptions) (fleet.Config, func(), int) {
	logf := fleetLogf(opts.progress)
	if opts.registry != "" {
		reg := fleet.NewRegistry(fleet.RegistryOptions{Logf: logf})
		srv := &http.Server{Handler: reg.Handler()}
		ln, err := net.Listen("tcp", opts.registry)
		if err != nil {
			return fleet.Config{}, nil, fail(err)
		}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "quorumbench: fleet registry listening on %s\n", ln.Addr())
		return fleet.Config{
			Registry:   reg,
			MinWorkers: opts.minWorkers,
			Shards:     opts.shards,
			Logf:       logf,
		}, func() { srv.Close() }, 0
	}
	return fleet.Config{
		Workers: strings.Split(opts.fleetArg, ","),
		Shards:  opts.shards,
		Logf:    logf,
	}, func() {}, 0
}

// runResume continues a crashed fleet run from its journal: load the
// recorded state, cross-check the spec hash when -fig/-scenario is also
// given, reopen the journal at the next epoch, and dispatch only the
// shards without a recorded result. The merged output is byte-identical
// to the run the dead coordinator would have produced.
func runResume(fig, scen string, params experiments.Params, path string, opts shardedOptions) int {
	start := time.Now()
	st, err := runjournal.Load(path)
	if err != nil {
		return fail(err)
	}
	if fig != "" || scen != "" {
		spec, _, code := resolveSpec(fig, scen, params)
		if code != 0 {
			return code
		}
		h, err := spec.Hash()
		if err != nil {
			return fail(err)
		}
		if h != st.SpecHash {
			return fail(fmt.Errorf("journal %s records spec %q (hash %.12s…) but the requested spec hashes %.12s…; resume without -fig/-scenario to use the journal's spec",
				path, st.Spec.Name, st.SpecHash, h))
		}
	}
	if st.Torn {
		fmt.Fprintf(os.Stderr, "quorumbench: journal %s ends mid-record (crash during an append); discarding the torn line\n", path)
	}
	fmt.Fprintf(os.Stderr, "quorumbench: resuming %q from %s: %d/%d shards recorded under %s, continuing at epoch %d\n",
		st.Spec.Name, path, len(st.Completed), st.Shards, st.LeaseOwner, st.Epoch+1)
	jr, err := runjournal.Continue(path, st, runjournal.Options{Owner: "resume"})
	if err != nil {
		return fail(err)
	}
	defer jr.Close()

	opts.shards = st.Shards
	fcfg, cleanup, code := fleetConfig(opts)
	if code != 0 {
		return code
	}
	defer cleanup()
	fcfg.Journal = jr
	coord, err := fleet.New(fcfg)
	if err != nil {
		return fail(err)
	}
	cfg := st.Config.RunConfig()
	if opts.progress {
		cfg.Progress = logProgress
	}
	tb, err := coord.Resume(st.Spec, cfg, st.Completed)
	if err != nil {
		return fail(err)
	}
	return emit(tb, opts.format, st.Spec.Name, start, "\n")
}

// runStandby tails a run journal until the primary coordinator's lease
// goes stale, then takes the run over on this process's workers. If the
// primary merges the run itself, the standby exits 0 without output.
func runStandby(opts shardedOptions) int {
	start := time.Now()
	fcfg, cleanup, code := fleetConfig(opts)
	if code != 0 {
		return code
	}
	defer cleanup()
	fcfg.Logf = func(f string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}
	sb, err := fleet.NewStandby(fleet.StandbyOptions{
		Journal:     opts.journal,
		LeaseTTL:    opts.leaseTTL,
		Coordinator: fcfg,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "quorumbench: standby tailing %s (takeover after %s without journal activity)\n", opts.journal, opts.leaseTTL)
	tb, err := sb.Run(context.Background())
	if err != nil {
		return fail(err)
	}
	if tb == nil {
		return 0 // the primary finished on its own
	}
	name := "run"
	if st, err := runjournal.Load(opts.journal); err == nil && st.Spec != nil {
		name = st.Spec.Name
	}
	return emit(tb, opts.format, name, start, "\n")
}

// fleetLogf returns the coordinator/registry log sink: stderr under
// -progress, silent otherwise.
func fleetLogf(progress bool) func(string, ...interface{}) {
	if !progress {
		return nil
	}
	return func(f string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}
}

// runSharded executes the sharded/fleet/merge modes over one spec.
func runSharded(spec *scenario.Spec, cfg scenario.RunConfig, opts shardedOptions) int {
	start := time.Now()
	shards, shard := opts.shards, opts.shard
	mergeArg, fleetArg, format := opts.mergeArg, opts.fleetArg, opts.format
	switch {
	case mergeArg != "":
		var partials []*scenario.Partial
		for _, path := range strings.Split(mergeArg, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				return fail(err)
			}
			var p scenario.Partial
			if err := json.Unmarshal(data, &p); err != nil {
				return fail(fmt.Errorf("%s: %w", path, err))
			}
			partials = append(partials, &p)
		}
		tb, err := scenario.Merge(spec, cfg, partials)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")

	case opts.registry != "" || fleetArg != "":
		// Fleet run: static worker list, or an elastic registry waiting
		// for -min-workers self-registrations. With -journal every
		// dispatch and completed shard is made durable for -resume.
		fcfg, cleanup, code := fleetConfig(opts)
		if code != 0 {
			return code
		}
		defer cleanup()
		if opts.journal != "" {
			jr, err := runjournal.Create(opts.journal, spec, cfg.Settings(), shards, runjournal.Options{})
			if err != nil {
				return fail(err)
			}
			defer jr.Close()
			fcfg.Journal = jr
			fmt.Fprintf(os.Stderr, "quorumbench: journaling run to %s\n", opts.journal)
		}
		coord, err := fleet.New(fcfg)
		if err != nil {
			return fail(err)
		}
		tb, err := coord.Run(spec, cfg)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")

	case shard >= 0:
		if shards <= 0 {
			fmt.Fprintln(os.Stderr, "quorumbench: -shard needs -shards")
			return 2
		}
		space, err := scenario.NewSpace(spec, cfg)
		if err != nil {
			return fail(err)
		}
		part, err := space.Shard(shard, shards)
		if err != nil {
			return fail(err)
		}
		partial, err := part.Execute()
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(partial); err != nil {
			return fail(err)
		}
		return 0

	default:
		// All shards in this process, merged — the smoke-testable proof
		// that sharding preserves bytes.
		space, err := scenario.NewSpace(spec, cfg)
		if err != nil {
			return fail(err)
		}
		partials := make([]*scenario.Partial, shards)
		for si := 0; si < shards; si++ {
			part, err := space.Shard(si, shards)
			if err != nil {
				return fail(err)
			}
			if partials[si], err = part.Execute(); err != nil {
				return fail(err)
			}
		}
		tb, err := space.Merge(partials)
		if err != nil {
			return fail(err)
		}
		return emit(tb, format, spec.Name, start, "\n")
	}
}

// runFleetWorker serves shard jobs until the process is killed. With
// -join it also keeps a registration lease with an elastic fleet
// registry, heartbeating so coordinators dispatch to it — and re-assign
// its shards the moment it stops answering.
func runFleetWorker(addr, join, advertise string, slots, cores int) int {
	logf := func(f string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, f+"\n", args...)
	}
	w := fleet.NewWorker(fleet.WorkerOptions{Logf: logf})
	if join != "" {
		if advertise == "" {
			advertise = addr
			if strings.HasPrefix(advertise, ":") {
				advertise = "127.0.0.1" + advertise
			}
		}
		lease, err := fleet.Join(join, advertise, fleet.LeaseOptions{Logf: logf, Slots: slots, Cores: cores})
		if err != nil {
			return fail(err)
		}
		defer lease.Stop()
		fmt.Fprintf(os.Stderr, "quorumbench: fleet worker joining %s as %s (%d slots)\n", join, advertise, slots)
	}
	fmt.Fprintf(os.Stderr, "quorumbench: fleet worker listening on %s\n", addr)
	return fail(http.ListenAndServe(addr, w.Handler()))
}

// logProgress is the -progress handler: per-point completion counts
// with elapsed time.
func logProgress(ev scenario.Progress) {
	fmt.Fprintf(os.Stderr, "progress: %s shard %d/%d: point %d/%d done (%s, %.1fs)\n",
		ev.Scenario, ev.Shard, ev.Shards, ev.Done, ev.Total, ev.Point.Label, ev.Elapsed.Seconds())
}

// emit writes one table in the selected format; text appends the timing
// line the classic paths printed (trailer is its tail: "\n" after
// figures, "" after scenarios keeps historic spacing).
func emit(tb *scenario.Table, format, id string, start time.Time, trailer string) int {
	switch format {
	case "markdown":
		if err := tb.FormatMarkdown(os.Stdout); err != nil {
			return fail(err)
		}
	case "csv":
		if err := tb.WriteCSV(os.Stdout); err != nil {
			return fail(err)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tb); err != nil {
			return fail(err)
		}
	default:
		if err := tb.Format(os.Stdout); err != nil {
			return fail(err)
		}
		fmt.Printf("(%s in %.1fs)%s", id, time.Since(start).Seconds(), trailer)
	}
	return 0
}

// loadSpec resolves a -scenario argument to a spec: a built-in library
// name or a JSON spec file path.
func loadSpec(arg string) (*scenario.Spec, int) {
	spec, err := scenario.LibraryByName(arg)
	if err == nil {
		return spec, 0
	}
	f, ferr := os.Open(arg)
	if ferr != nil {
		return nil, fail(fmt.Errorf("%q is neither a built-in scenario nor a readable spec file: %w", arg, ferr))
	}
	defer f.Close()
	spec, err = scenario.Load(f)
	if err != nil {
		return nil, fail(err)
	}
	return spec, 0
}

// runScenario resolves the -scenario argument: "list", a built-in
// library name, or a JSON spec file path.
func runScenario(arg string, cfg scenario.RunConfig, format string) int {
	if arg == "list" {
		for _, s := range scenario.Library() {
			fmt.Printf("%-21s %-9s %s\n", s.Name, s.Kind, s.Title)
		}
		return 0
	}
	spec, code := loadSpec(arg)
	if code != 0 {
		return code
	}
	start := time.Now()
	tb, err := scenario.Run(spec, cfg)
	if err != nil {
		return fail(err)
	}
	return emit(tb, format, spec.Name, start, "\n")
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "quorumbench:", err)
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "quorumbench:", err)
	return 1
}
