package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/serve"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// The serve bench (-bench-serve) proves the serving plane's fan-out
// claim in-process: for each (watcher count × tenant count) point it
// builds a serve.Registry of small deployments, parks the watchers on
// the tenants' epoch channels exactly like the HTTP long-poll path
// does, then drives publish rounds through concurrent per-tenant delta
// writers and measures
//
//   - plan-read latency (p50/p99) against the per-publish encoding
//     cache, and allocations/bytes per read vs the per-request-marshal
//     baseline the cache replaced (the bench fails if the improvement
//     is under 10×),
//   - publication→watcher-wakeup latency: every parked watcher is
//     woken by the publish's single channel close; the last-watcher
//     latency is the fan-out cost of one re-plan.
//
// Watchers are goroutines parked on Tenant.Notify() — the same
// channels, cache, and wake protocol the HTTP handlers use, minus the
// sockets, which is what makes 1M concurrent watchers measurable in
// one process (à la the in-process fleet tests).

// serveBenchPoint is one (watchers, tenants) measurement.
type serveBenchPoint struct {
	Watchers int `json:"watchers"`
	Tenants  int `json:"tenants"`
	Rounds   int `json:"rounds"`
	// SpawnMS is the time to spawn and park all watchers.
	SpawnMS float64 `json:"spawn_ms"`
	// BodyBytes is the cached plan body size (per tenant 0).
	BodyBytes int `json:"body_bytes"`
	// Read latency percentiles over ReadSamples cached reads, measured
	// while every watcher is parked.
	ReadSamples int     `json:"read_samples"`
	ReadP50US   float64 `json:"read_p50_us"`
	ReadP99US   float64 `json:"read_p99_us"`
	// Allocations and bytes per cached read vs the per-request-marshal
	// baseline; AllocImprovement is baseline/cached (clamped at the
	// baseline count when the cached path does not allocate at all).
	AllocsPerRead         float64 `json:"allocs_per_read"`
	BytesPerRead          float64 `json:"bytes_per_read"`
	BaselineAllocsPerRead float64 `json:"baseline_allocs_per_read"`
	BaselineBytesPerRead  float64 `json:"baseline_bytes_per_read"`
	AllocImprovement      float64 `json:"alloc_improvement"`
	// ApplyMSAvg is the mean delta-apply (re-plan + publish) time per
	// tenant per round, stamped inside the writer goroutine. At large
	// watcher counts on few cores the tail of an Apply competes with the
	// fan-out it triggered, so this is an upper bound on re-plan time.
	ApplyMSAvg float64 `json:"apply_ms_avg"`
	// Wake latencies: from the tenant's delta post (stamped in the
	// writer immediately before Apply — before any watcher can wake, so
	// scheduler preemption cannot reorder the reference after the wakes)
	// to each watcher recording its wakeup. Includes the sub-millisecond
	// re-plan; see ApplyMSAvg. WakeLastMS* track the LAST watcher woken
	// per round — the full fan-out cost of one publish.
	WakeP50MS     float64 `json:"wake_p50_ms"`
	WakeP99MS     float64 `json:"wake_p99_ms"`
	WakeLastMSAvg float64 `json:"wake_last_ms_avg"`
	WakeLastMSMax float64 `json:"wake_last_ms_max"`
	// HeapMB and Goroutines snapshot the parked steady state.
	HeapMB     float64 `json:"heap_mb"`
	Goroutines int     `json:"goroutines"`
}

type serveBenchReport struct {
	Tool       string            `json:"tool"`
	Seed       int64             `json:"seed"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Points     []serveBenchPoint `json:"points"`
}

// runBenchServe executes the serving-plane bench over the watcher ×
// tenant grid and writes the JSON report to path.
func runBenchServe(path, watchersArg, tenantsArg string, rounds int, seed int64) int {
	watcherCounts, err := parsePositiveList("-bench-watchers", watchersArg)
	if err != nil {
		return fail(err)
	}
	tenantCounts, err := parsePositiveList("-bench-serve-tenants", tenantsArg)
	if err != nil {
		return fail(err)
	}
	if rounds < 1 {
		return fail(fmt.Errorf("quorumbench: -bench-serve-rounds must be >= 1, got %d", rounds))
	}
	rep := serveBenchReport{
		Tool:       "quorumbench -bench-serve",
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, nw := range watcherCounts {
		for _, nt := range tenantCounts {
			if nw < nt {
				fmt.Fprintf(os.Stderr, "bench-serve: skipping %d watchers across %d tenants (fewer watchers than tenants)\n", nw, nt)
				continue
			}
			pt, err := benchServePoint(nw, nt, rounds, seed)
			if err != nil {
				return fail(fmt.Errorf("bench-serve at %d watchers, %d tenants: %w", nw, nt, err))
			}
			fmt.Fprintf(os.Stderr,
				"bench-serve: %8d watchers, %2d tenants: read p50 %.2fus p99 %.2fus, %.2f allocs/read (baseline %.0f, %.0fx), wake p99 %.1fms last %.1fms, spawn %.0fms, heap %.0fMB\n",
				nw, nt, pt.ReadP50US, pt.ReadP99US, pt.AllocsPerRead, pt.BaselineAllocsPerRead,
				pt.AllocImprovement, pt.WakeP99MS, pt.WakeLastMSMax, pt.SpawnMS, pt.HeapMB)
			rep.Points = append(rep.Points, pt)
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "bench-serve: wrote %s (%d points)\n", path, len(rep.Points))
	return 0
}

// serveBenchManager builds one tenant's deployment: a small two-region
// WAN with the closest-quorum strategy, so demand deltas re-plan in
// well under a millisecond and the bench measures fan-out, not LP
// solves.
func serveBenchManager(label string, seed int64) (*deploy.Manager, error) {
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "serve-bench-" + label,
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
		},
	}, seed)
	if err != nil {
		return nil, err
	}
	p, err := plan.New(topo, plan.Config{
		System:   plan.SystemSpec{Family: "grid", Param: 3},
		Strategy: plan.StratClosest,
		Demand:   8000,
	})
	if err != nil {
		return nil, err
	}
	return deploy.New(p, deploy.Config{})
}

func benchServePoint(nw, nt, rounds int, seed int64) (serveBenchPoint, error) {
	pt := serveBenchPoint{Watchers: nw, Tenants: nt, Rounds: rounds}

	reg := serve.NewRegistry(serve.Options{})
	tenants := make([]*serve.Tenant, nt)
	mgrs := make([]*deploy.Manager, nt)
	for i := 0; i < nt; i++ {
		m, err := serveBenchManager(strconv.Itoa(i), seed+int64(i))
		if err != nil {
			return pt, err
		}
		tenant, err := reg.Open(fmt.Sprintf("t%d", i), m)
		if err != nil {
			return pt, err
		}
		tenants[i], mgrs[i] = tenant, m
	}
	pt.BodyBytes = len(tenants[0].Encoded().Body)

	// Spawn the watchers, round-robin across tenants, and wait until
	// every one holds the epoch channel of its tenant's current version
	// — the parked state a publish broadcasts into.
	tenantOf := make([]int8, nw) // tenant index per watcher slot (nt <= 127)
	wake := make([]int64, nw)    // wakeup timestamps, one slot per watcher
	rwg := make([]sync.WaitGroup, rounds)
	for r := range rwg {
		rwg[r].Add(nw)
	}
	var readyWG, doneWG sync.WaitGroup
	readyWG.Add(nw)
	doneWG.Add(nw)
	spawnStart := time.Now()
	for s := 0; s < nw; s++ {
		tenantOf[s] = int8(s % nt)
		go func(s int, t *serve.Tenant) {
			defer doneWG.Done()
			ch := t.Notify()
			readyWG.Done()
			for r := 0; r < rounds; r++ {
				<-ch
				wake[s] = time.Now().UnixNano()
				enc := t.Encoded() // the post-wake read, from the publish's cached bytes
				_ = enc.Version
				ch = t.Notify() // re-arm before reporting, so no publish is lost
				rwg[r].Done()
			}
		}(s, tenants[s%nt])
	}
	readyWG.Wait()
	pt.SpawnMS = toMS(time.Since(spawnStart))
	pt.Goroutines = runtime.NumGoroutine()

	// Read phase, with every watcher parked: cached-read latency
	// percentiles, then allocs/bytes per read vs the per-request-marshal
	// baseline.
	const readSamples = 200_000
	pt.ReadSamples = readSamples
	lat := make([]float64, readSamples)
	t0 := tenants[0]
	inm := t0.Encoded().ETag
	var sink int
	for i := range lat {
		start := time.Now()
		enc := t0.Encoded()
		if enc.ETag != inm { // the handler's If-None-Match compare
			sink++
		}
		sink += len(enc.Body)
		lat[i] = float64(time.Since(start)) / float64(time.Microsecond)
	}
	_ = sink
	pt.ReadP50US, pt.ReadP99US = percentile(lat, 50), percentile(lat, 99)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < readSamples; i++ {
		enc := t0.Encoded()
		sink += len(enc.Body)
	}
	runtime.ReadMemStats(&ms1)
	pt.AllocsPerRead = float64(ms1.Mallocs-ms0.Mallocs) / readSamples
	pt.BytesPerRead = float64(ms1.TotalAlloc-ms0.TotalAlloc) / readSamples
	pt.HeapMB = float64(ms1.HeapAlloc) / (1 << 20)

	const baseSamples = 2_000
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < baseSamples; i++ {
		sink += len(t0.EncodeBaseline())
	}
	runtime.ReadMemStats(&ms1)
	pt.BaselineAllocsPerRead = float64(ms1.Mallocs-ms0.Mallocs) / baseSamples
	pt.BaselineBytesPerRead = float64(ms1.TotalAlloc-ms0.TotalAlloc) / baseSamples
	// The cached path routinely measures 0 allocs/read; floor it at the
	// measurement resolution (one alloc across all samples) so the
	// reported ratio is a defensible lower bound rather than infinity.
	cached := pt.AllocsPerRead
	if cached < 1.0/readSamples {
		cached = 1.0 / readSamples
	}
	pt.AllocImprovement = pt.BaselineAllocsPerRead / cached
	if pt.AllocImprovement < 10 {
		return pt, fmt.Errorf("cached read path allocates too much: %.2f allocs/read vs baseline %.2f (%.1fx < 10x)",
			pt.AllocsPerRead, pt.BaselineAllocsPerRead, pt.AllocImprovement)
	}

	// Publish rounds: concurrent per-tenant delta writers, each publish
	// waking that tenant's parked watchers with one channel close. The
	// wake reference is stamped in the writer BEFORE its Apply: a
	// timestamp taken after Apply returns can land after a million
	// already-woken watchers' timestamps when the scheduler preempts the
	// writer at the publish (seen at 1M watchers on one core).
	applyPost := make([]int64, nt)
	var applyTotalNS atomic.Int64
	wakeLat := make([]float64, 0, rounds*nw)
	var wakeLastSum, wakeLastMax float64
	demand := 8000.0
	for r := 0; r < rounds; r++ {
		demand += 1000
		var writers sync.WaitGroup
		var applyErr error
		var applyMu sync.Mutex
		for ti := 0; ti < nt; ti++ {
			writers.Add(1)
			go func(ti int) {
				defer writers.Done()
				start := time.Now()
				applyPost[ti] = start.UnixNano()
				_, err := mgrs[ti].Apply([]deploy.Delta{{Kind: deploy.KindDemand, Value: demand}})
				applyTotalNS.Add(int64(time.Since(start)))
				if err != nil {
					applyMu.Lock()
					applyErr = err
					applyMu.Unlock()
				}
			}(ti)
		}
		writers.Wait()
		if applyErr != nil {
			return pt, applyErr
		}
		rwg[r].Wait() // every watcher woken and re-armed
		var last float64
		for s := 0; s < nw; s++ {
			l := float64(wake[s]-applyPost[tenantOf[s]]) / float64(time.Millisecond)
			if l < 0 {
				l = 0
			}
			wakeLat = append(wakeLat, l)
			if l > last {
				last = l
			}
		}
		wakeLastSum += last
		if last > wakeLastMax {
			wakeLastMax = last
		}
		// Every tenant must have advanced exactly one version.
		for ti, t := range tenants {
			if v := t.Encoded().Version; v != uint64(r+2) {
				return pt, fmt.Errorf("round %d: tenant %d at version %d, want %d", r, ti, v, r+2)
			}
		}
	}
	doneWG.Wait()
	pt.ApplyMSAvg = toMS(time.Duration(applyTotalNS.Load())) / float64(rounds*nt)
	pt.WakeP50MS, pt.WakeP99MS = percentile(wakeLat, 50), percentile(wakeLat, 99)
	pt.WakeLastMSAvg = wakeLastSum / float64(rounds)
	pt.WakeLastMSMax = wakeLastMax
	return pt, nil
}

// percentile returns the p-th percentile of values (sorted in place).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	idx := int(p / 100 * float64(len(values)-1))
	return values[idx]
}

func parsePositiveList(flagName, arg string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(arg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("quorumbench: bad %s entry %q (want integers >= 1)", flagName, s)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("quorumbench: %s is empty", flagName)
	}
	return out, nil
}
