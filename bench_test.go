// Benchmarks regenerating every figure of the paper's evaluation at full
// scale. Each benchmark runs the corresponding experiment end to end
// (topology synthesis, placement, strategy optimization or protocol
// simulation, and table assembly), so `go test -bench=.` reproduces the
// complete evaluation; see EXPERIMENTS.md for the recorded outputs.
package quorumnet_test

import (
	"testing"

	quorumnet "github.com/quorumnet/quorumnet"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	exp, err := quorumnet.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	params := quorumnet.DefaultExperimentParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, err := exp.Run(params)
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// §3: the Q/U protocol simulation (discrete-event, 5-run averages).

func BenchmarkFig31(b *testing.B)  { benchFigure(b, "fig3.1") }
func BenchmarkFig32a(b *testing.B) { benchFigure(b, "fig3.2a") }
func BenchmarkFig32b(b *testing.B) { benchFigure(b, "fig3.2b") }

// §6: low client demand — one-to-one placements, closest access.

func BenchmarkFig63(b *testing.B) { benchFigure(b, "fig6.3") }

// §7: high client demand — strategies, capacity sweeps, the heuristic.

func BenchmarkFig64(b *testing.B) { benchFigure(b, "fig6.4") }
func BenchmarkFig65(b *testing.B) { benchFigure(b, "fig6.5") }
func BenchmarkFig76(b *testing.B) { benchFigure(b, "fig7.6") }
func BenchmarkFig77(b *testing.B) { benchFigure(b, "fig7.7") }
func BenchmarkFig78(b *testing.B) { benchFigure(b, "fig7.8") }

// §8: the iterative many-to-one algorithm.

func BenchmarkFig89(b *testing.B) { benchFigure(b, "fig8.9") }

// Ablation studies (beyond the paper; see DESIGN.md §6).

func BenchmarkAblDedup(b *testing.B)     { benchFigure(b, "abl-dedup") }
func BenchmarkAblAnchor(b *testing.B)    { benchFigure(b, "abl-anchor") }
func BenchmarkAblFailures(b *testing.B)  { benchFigure(b, "abl-failures") }
func BenchmarkAblSweep(b *testing.B)     { benchFigure(b, "abl-sweep") }
func BenchmarkAblBaselines(b *testing.B) { benchFigure(b, "abl-baselines") }
