// Package quorumnet places quorum systems on wide-area networks and tunes
// client access strategies to minimize average response time, implementing
// Oprea & Reiter, "Minimizing Response Time for Quorum-System Protocols
// over Wide-Area Networks" (DSN 2007).
//
// The library models a WAN as a round-trip-time metric over sites
// (Topology), a quorum system over logical elements (System), a placement
// of elements onto sites (Placement), and per-client access strategies
// (Strategy). Response time follows the paper's model:
//
//	ρ(v, Q) = max_{w ∈ f(Q)} ( d(v, w) + α·load(w) )
//
// averaged over clients and quorum choices. With α = 0 this is pure
// network delay (light demand); α = 0.007·client_demand models processing
// delay under load.
//
// # Quickstart
//
//	topo := quorumnet.PlanetLab50(1)
//	sys, _ := quorumnet.NewGrid(5)
//	f, _ := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
//	e, _ := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(4000))
//	fmt.Println(e.AvgResponseTime(quorumnet.Closest))
//
// Subsystems: synthetic WAN topology generation and serialization; the
// Majority and Grid quorum constructions with closed-form balanced-
// strategy evaluation; one-to-one, singleton, and many-to-one placement
// algorithms (the latter via an LP relaxation, Lin–Vitter filtering and
// Shmoys–Tardos rounding over the built-in simplex solver); the
// access-strategy LP; capacity tuning; the §4.2 iterative algorithm; and
// a discrete-event Q/U protocol simulator. The staged Planner re-plans
// deployments incrementally as conditions drift (demand shifts, RTT
// drift, capacity changes, site churn), and the declarative Scenario
// engine executes whole workloads — including every figure of the paper,
// exposed through Experiments and the quorumbench command — from specs.
package quorumnet

import (
	"io"
	"time"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/experiments"
	"github.com/quorumnet/quorumnet/internal/faults"
	"github.com/quorumnet/quorumnet/internal/fleet"
	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/probe"
	"github.com/quorumnet/quorumnet/internal/protocol"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/serve"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Topology is a set of wide-area sites with an RTT metric (milliseconds)
// and per-site capacities.
type Topology = topology.Topology

// Site describes one wide-area location.
type Site = topology.Site

// TopologyConfig parameterizes the synthetic WAN generator.
type TopologyConfig = topology.GenConfig

// RegionSpec is one geographic cluster of a TopologyConfig.
type RegionSpec = topology.RegionSpec

// ASGraphSpec switches a TopologyConfig to the power-law AS-graph
// generator for 1k–10k-site internet-scale topologies (closed by the
// sparse parallel closure; see DESIGN.md §13).
type ASGraphSpec = topology.ASGraphSpec

// DefaultSeed reproduces the topologies used in EXPERIMENTS.md.
const DefaultSeed = topology.DefaultSeed

// PlanetLab50 synthesizes the 50-site PlanetLab-like topology of the
// paper's evaluation.
func PlanetLab50(seed int64) *Topology { return topology.PlanetLab50(seed) }

// Daxlist161 synthesizes the 161-site web-server topology of the paper's
// evaluation.
func Daxlist161(seed int64) *Topology { return topology.Daxlist161(seed) }

// GenerateTopology builds a topology from a custom cluster configuration.
func GenerateTopology(cfg TopologyConfig, seed int64) (*Topology, error) {
	return topology.Generate(cfg, seed)
}

// LoadTopology reads a topology in the quorumnet text format, repairing
// asymmetry and triangle violations by metric closure.
func LoadTopology(r io.Reader) (*Topology, error) { return topology.Load(r) }

// SaveTopology writes a topology in the quorumnet text format.
func SaveTopology(w io.Writer, t *Topology) error { return topology.Save(w, t) }

// System is a quorum system over a universe of logical elements.
type System = quorum.System

// Threshold is the Majority (voting) quorum system family.
type Threshold = quorum.Threshold

// Grid is the k×k grid quorum system (quorum = one row plus one column).
type Grid = quorum.Grid

// SingletonSystem is the one-element baseline system.
type SingletonSystem = quorum.Singleton

// NewThreshold returns the threshold system with quorums of size q over n
// elements (requires 2q > n).
func NewThreshold(q, n int) (Threshold, error) { return quorum.NewThreshold(q, n) }

// SimpleMajority returns the (t+1, 2t+1) Majority.
func SimpleMajority(t int) (Threshold, error) { return quorum.SimpleMajority(t) }

// ByzantineMajority returns the (2t+1, 3t+1) Majority.
func ByzantineMajority(t int) (Threshold, error) { return quorum.ByzantineMajority(t) }

// QUMajority returns the (4t+1, 5t+1) Majority used by Q/U.
func QUMajority(t int) (Threshold, error) { return quorum.QUMajority(t) }

// NewGrid returns the k×k Grid system.
func NewGrid(k int) (Grid, error) { return quorum.NewGrid(k) }

// ExplicitSystem is a quorum system given by an explicit quorum list,
// for user-defined constructions.
type ExplicitSystem = quorum.Explicit

// NewExplicitSystem builds a quorum system from explicit quorums over
// {0..n-1}, verifying the pairwise-intersection property.
func NewExplicitSystem(name string, n int, quorums [][]int) (*ExplicitSystem, error) {
	return quorum.NewExplicit(name, n, quorums)
}

// FailureResilience returns the largest f such that the system survives
// every failure of f elements (n − q for thresholds, k − 1 for grids).
func FailureResilience(sys System) int { return quorum.FailureResilience(sys) }

// ErrNoQuorumSurvives reports that a failure kills every quorum.
var ErrNoQuorumSurvives = quorum.ErrNoQuorumSurvives

// Placement maps universe elements to topology sites.
type Placement = core.Placement

// NewPlacement builds a placement from an element→site table.
func NewPlacement(target []int, topo *Topology) (Placement, error) {
	return core.NewPlacement(target, topo)
}

// PlacementOptions tunes the placement search.
type PlacementOptions = placement.Options

// ManyToOneConfig parameterizes the §4.1.2 many-to-one placement.
type ManyToOneConfig = placement.ManyToOneConfig

// IterateConfig parameterizes the §4.2 iterative algorithm.
type IterateConfig = placement.IterateConfig

// IterResult is the outcome of the iterative algorithm.
type IterResult = placement.IterResult

// OneToOne computes the delay-minimizing one-to-one placement for the
// system (ball construction for Majorities, shell construction for
// Grids).
func OneToOne(topo *Topology, sys System, opts PlacementOptions) (Placement, error) {
	return placement.OneToOne(topo, sys, opts)
}

// SingletonPlacement places an n-element universe on the topology median.
func SingletonPlacement(topo *Topology, n int) (Placement, error) {
	return placement.Singleton(topo, n)
}

// ManyToOne computes the almost-capacity-respecting many-to-one placement
// (LP relaxation → Lin–Vitter filtering → Shmoys–Tardos rounding).
func ManyToOne(topo *Topology, sys System, cfg ManyToOneConfig) (Placement, error) {
	return placement.ManyToOne(topo, sys, cfg)
}

// Iterate runs the §4.2 iterative placement/strategy algorithm.
func Iterate(topo *Topology, sys System, cfg IterateConfig) (*IterResult, error) {
	return placement.Iterate(topo, sys, cfg)
}

// Eval evaluates (topology, system, placement) triples under the response
// time model.
type Eval = core.Eval

// Strategy is a family of per-client quorum-access distributions.
type Strategy = core.Strategy

// ExplicitStrategy is a per-client distribution over enumerated quorums.
type ExplicitStrategy = core.ExplicitStrategy

// LoadMode selects the node-load accounting model.
type LoadMode = core.LoadMode

// Load accounting models: the paper's multiplicity model and the §8
// future-work dedup model.
const (
	LoadMultiplicity = core.LoadMultiplicity
	LoadDedup        = core.LoadDedup
)

// Built-in strategies.
var (
	// Closest is §6's deterministic closest-quorum strategy.
	Closest Strategy = core.ClosestStrategy{}
	// Balanced is the uniform (load-dispersing) strategy.
	Balanced Strategy = core.BalancedStrategy{}
)

// NewEval validates and builds an evaluator; alpha converts load into
// milliseconds of processing delay.
func NewEval(topo *Topology, sys System, f Placement, alpha float64) (*Eval, error) {
	return core.NewEval(topo, sys, f, alpha)
}

// AlphaForDemand returns alpha = 0.007 ms × clientDemand, the paper's §7
// setting.
func AlphaForDemand(clientDemand float64) float64 { return core.AlphaForDemand(clientDemand) }

// Heterogeneous client demand (an extension; the paper weighs clients
// equally) is configured per evaluation with (*Eval).SetClientWeights;
// loads, response-time averages, and the strategy LP all honor the
// weights.

// OptimizeResult carries LP-optimized strategies.
type OptimizeResult = strategy.Result

// SweepPoint is one capacity setting's outcome in a sweep.
type SweepPoint = strategy.SweepPoint

// LPOptions tunes the built-in simplex solver. The zero value — cold
// Dantzig pricing — is fully deterministic and reproduces the solver's
// original pivot sequence; PricingPartial is markedly faster on the wide
// LPs this library generates but may return a different (equally
// optimal) vertex on degenerate instances. LPOptions threads through
// PlacementOptions-style configs: ManyToOneConfig.LP, IterateConfig.LP,
// and OptimizerConfig.LP.
type LPOptions = lp.Options

// Pricing rules for LPOptions.
const (
	PricingDantzig = lp.PricingDantzig
	PricingPartial = lp.PricingPartial
)

// OptimizerConfig tunes a StrategyOptimizer: solver options, whether
// successive solves warm-start from the previous optimal basis, and the
// Solver selection (auto/dense/colgen) — auto switches to the
// column-generation path above strategy.DefaultColgenThreshold nc·m
// variables, which solves the same LP to the same optimum while only
// materializing the columns that price attractively.
type OptimizerConfig = strategy.Config

// StrategyOptimizer re-solves the access-strategy LP for one evaluation
// under varying capacities, building the LP skeleton once and mutating
// only the capacity right-hand sides between solves — the workhorse
// behind fast capacity sweeps. It is not safe for concurrent use.
type StrategyOptimizer = strategy.Optimizer

// NewStrategyOptimizer builds the reusable LP workspace for an
// evaluation.
func NewStrategyOptimizer(e *Eval, cfg OptimizerConfig) (*StrategyOptimizer, error) {
	return strategy.NewOptimizer(e, cfg)
}

// SweepConfig tunes capacity-sweep execution: the worker-pool bound and
// whether to trade the fast warm-started path for bit-reproducibility of
// the original serial sweep. Results are always deterministic and
// independent of the worker count.
type SweepConfig = strategy.SweepConfig

// OptimizeStrategies solves the access-strategy LP (4.3)–(4.6) under the
// given per-site capacities (cold, with deterministic Dantzig pricing;
// use a StrategyOptimizer for repeated or warm-started solves).
func OptimizeStrategies(e *Eval, caps []float64) (*OptimizeResult, error) {
	return strategy.Optimize(e, caps)
}

// SweepValues returns the capacity grid c_i = Lopt + i·(1−Lopt)/count.
func SweepValues(lopt float64, count int) []float64 { return strategy.SweepValues(lopt, count) }

// UniformCapacitySweep optimizes strategies at each uniform capacity
// value on a bounded worker pool, warm-starting within chunks of
// consecutive points.
func UniformCapacitySweep(e *Eval, values []float64) ([]SweepPoint, error) {
	return strategy.UniformSweep(e, values)
}

// UniformCapacitySweepCfg is UniformCapacitySweep with explicit
// execution options.
func UniformCapacitySweepCfg(e *Eval, values []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return strategy.UniformSweepCfg(e, values, cfg)
}

// NonUniformCapacitySweep uses the §7 heuristic (capacity inversely
// proportional to client distance) over intervals [lopt, c].
func NonUniformCapacitySweep(e *Eval, lopt float64, values []float64) ([]SweepPoint, error) {
	return strategy.NonUniformSweep(e, lopt, values)
}

// NonUniformCapacitySweepCfg is NonUniformCapacitySweep with explicit
// execution options.
func NonUniformCapacitySweepCfg(e *Eval, lopt float64, values []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return strategy.NonUniformSweepCfg(e, lopt, values, cfg)
}

// NonUniformCaps computes the heuristic capacities for [beta, gamma].
func NonUniformCaps(e *Eval, beta, gamma float64) ([]float64, error) {
	return strategy.NonUniformCaps(e, beta, gamma)
}

// BestSweepPoint returns the feasible sweep point minimizing response time.
func BestSweepPoint(points []SweepPoint) (SweepPoint, error) { return strategy.Best(points) }

// ApplyFailures restricts an evaluation to the survivors of node
// failures: elements on failed nodes die, the quorum system shrinks to
// the surviving quorums, and failed nodes leave the client set. Returns
// ErrNoQuorumSurvives (wrapped) when the service becomes unavailable.
func ApplyFailures(e *Eval, failedNodes []int) (*Eval, error) {
	return faults.Apply(e, failedNodes)
}

// Availability estimates by Monte Carlo the probability that some quorum
// survives when each node fails independently with probability pFail.
func Availability(e *Eval, pFail float64, trials int, seed int64) (float64, error) {
	return faults.Availability(e, pFail, trials, seed)
}

// ThresholdAvailability is the exact binomial availability of a
// one-to-one placed threshold system.
func ThresholdAvailability(q, n int, pFail float64) (float64, error) {
	return faults.ThresholdAvailabilityExact(q, n, pFail)
}

// WorstCaseFailure returns a deterministic adversarial choice of f
// support nodes to fail (most elements hosted, then closest to clients).
func WorstCaseFailure(e *Eval, f int) []int { return faults.WorstCaseFailure(e, f) }

// Slowdown models degraded nodes: delays through them are multiplied by
// factor and the metric re-closed (traffic may route around them).
func Slowdown(e *Eval, slowNodes []int, factor float64) (*Eval, error) {
	return faults.Slowdown(e, slowNodes, factor)
}

// ProtocolConfig configures a Q/U-style protocol run.
type ProtocolConfig = protocol.Config

// ProtocolMetrics summarizes a protocol run.
type ProtocolMetrics = protocol.Metrics

// RunProtocol executes the single-round quorum protocol on a fresh
// discrete-event simulator.
func RunProtocol(cfg ProtocolConfig) (*ProtocolMetrics, error) { return protocol.RunSim(cfg) }

// RunProtocolAveraged averages several runs with consecutive seeds, as
// the paper does.
func RunProtocolAveraged(cfg ProtocolConfig, runs int) (*ProtocolMetrics, error) {
	return protocol.RunSimAveraged(cfg, runs)
}

// Planner owns the staged pipeline — topology → system → placement →
// strategy → evaluation — with dirty-tracking: deltas (SetRTT,
// SetSiteCapacity, SetDemand, AddSite, RemoveSite, …) invalidate only
// the stages they affect, so a re-plan after a demand-only delta re-runs
// just the evaluation and a capacity-only delta re-solves the strategy
// LP warm-started from the previous basis. A Planner is one logical
// deployment being re-tuned over time; it is not safe for concurrent
// use.
type Planner = plan.Planner

// PlannerConfig fixes a planner's pipeline shape: the quorum system,
// placement algorithm, access-strategy kind, demand, and solver options.
type PlannerConfig = plan.Config

// PlanSnapshot is the immutable, versioned outcome of one Planner.Plan
// call: deep-copied stage artifacts, the evaluation measures, and a
// provenance recording which stages re-ran and why. Snapshots may be
// shared with concurrent readers.
type PlanSnapshot = plan.Snapshot

// PlanProvenance explains a snapshot: recomputed stages, the deltas
// that drove them, and whether the placement was pinned.
type PlanProvenance = plan.Provenance

// PlanStage identifies one pipeline stage in
// PlanProvenance.Recomputed.
type PlanStage = plan.Stage

// SystemSpec names a quorum-system family and parameter declaratively
// (for PlannerConfig and scenario specs).
type SystemSpec = plan.SystemSpec

// Placement algorithms for PlannerConfig.Algorithm.
const (
	AlgoOneToOne  = plan.AlgoOneToOne
	AlgoSingleton = plan.AlgoSingleton
	AlgoManyToOne = plan.AlgoManyToOne
)

// Access-strategy kinds for PlannerConfig.Strategy.
const (
	StratClosest  = plan.StratClosest
	StratBalanced = plan.StratBalanced
	StratLP       = plan.StratLP
)

// NewPlanner builds a staged planner over a starting topology. The
// topology is deep-copied; later deltas mutate only the planner's state.
func NewPlanner(topo *Topology, cfg PlannerConfig) (*Planner, error) {
	return plan.New(topo, cfg)
}

// Deployment is the online-adaptation layer over one Planner: it
// serializes delta ingestion (RTT probes, capacity changes, demand
// telemetry) through a single apply loop, publishes every re-plan as an
// immutable PlanSnapshot readers load without blocking, and gates
// placement moves behind the DeployConfig.MoveCost hysteresis threshold
// (strategy-only re-plans are always taken).
type Deployment = deploy.Manager

// DeployConfig tunes a Deployment: the placement-move hysteresis
// threshold, history retention, and delta-log recording.
type DeployConfig = deploy.Config

// DeployDelta is one typed world change posted to a Deployment: an RTT
// probe, a capacity change, demand telemetry, or per-site demand
// weights.
type DeployDelta = deploy.Delta

// DeployEntry is one published re-plan: the snapshot plus the
// adaptation decision ("adopt …", "move …", "hold …") that produced it.
type DeployEntry = deploy.Entry

// Delta kinds for DeployDelta.Kind.
const (
	DeltaRTT             = deploy.KindRTT
	DeltaCapacity        = deploy.KindCapacity
	DeltaUniformCapacity = deploy.KindUniformCapacity
	DeltaDemand          = deploy.KindDemand
	DeltaWeights         = deploy.KindWeights
	DeltaAddSite         = deploy.KindAddSite
	DeltaRemoveSite      = deploy.KindRemoveSite
)

// NewDeployment wraps a planner (which must not be used elsewhere
// afterwards), runs the initial plan, and publishes it as version 1.
func NewDeployment(p *Planner, cfg DeployConfig) (*Deployment, error) {
	return deploy.New(p, cfg)
}

// CoalesceDeltas collapses a delta batch, dropping every delta whose
// effect a later one overwrites.
func CoalesceDeltas(ds []DeployDelta) []DeployDelta { return deploy.Coalesce(ds) }

// RecoverDeployment builds a Deployment whose applied delta batches are
// durable in an append-only journal at path, replaying any batches
// already recorded there. The planner must be built exactly as it was
// for the journal's original deployment (the daemon restarted with the
// same flags, planning reproducibly): after replay the snapshot history
// — versions, decisions, ETags — is identical to the pre-crash
// deployment's. Returns the number of batches replayed.
func RecoverDeployment(p *Planner, cfg DeployConfig, path string) (*Deployment, int, error) {
	return deploy.Recover(p, cfg, path)
}

// PlanServer exposes a Deployment over HTTP: GET /v1/plan (versioned
// snapshot, ETag, long-poll), POST /v1/deltas, GET /v1/history — the
// transport behind the quorumd daemon.
type PlanServer = serve.Server

// PlanServerOptions tunes a PlanServer (long-poll cap).
type PlanServerOptions = serve.Options

// NewPlanServer wraps a deployment for serving; mount Handler() on any
// http server.
func NewPlanServer(m *Deployment, opts PlanServerOptions) *PlanServer {
	return serve.New(m, opts)
}

// ServeRegistry multiplexes named Deployments behind one HTTP handler:
// GET /v1/deployments (roster), /v1/deployments/<name>/{plan,deltas,
// history} per tenant, with the legacy single-tenant routes aliasing
// the default (first-opened) deployment byte-identically. Tenants
// share the process — one planner pool, one deadline wheel — and each
// serves its plan from a per-publish encoding cache, waking parked
// long-poll watchers with a single epoch-channel close per publish.
type ServeRegistry = serve.Registry

// ServeTenant is one named deployment inside a ServeRegistry, with its
// cached current-plan encoding and serving counters.
type ServeTenant = serve.Tenant

// NewServeRegistry builds an empty multi-tenant serving plane; add
// deployments with OpenDeployment and mount Handler().
func NewServeRegistry(opts PlanServerOptions) *ServeRegistry {
	return serve.NewRegistry(opts)
}

// OpenDeployment registers a deployment under name in the registry.
// The first deployment opened becomes the default the legacy
// single-tenant routes alias.
func OpenDeployment(r *ServeRegistry, name string, m *Deployment) (*ServeTenant, error) {
	return r.Open(name, m)
}

// EvalUnreplanned evaluates a deployment that does not re-plan around a
// node failure: the placement stays fixed, explicit strategies are
// renormalized over the surviving quorums, and the returned evaluator
// and strategy measure the response time the deployment pays for
// keeping its pre-failure plan.
func EvalUnreplanned(e *Eval, s Strategy, failedNodes []int) (*Eval, Strategy, error) {
	return faults.Unreplanned(e, s, failedNodes)
}

// Scenario is a declarative workload: a topology source, quorum-system
// axes, placement algorithm, demand/strategy/measure axes, capacity
// sweeps, fault injections, protocol grids, or a timeline of deltas
// driven through a Planner. The engine validates it, expands its axes
// into plan points, and executes them on a bounded worker pool.
type Scenario = scenario.Spec

// ScenarioConfig carries execution settings a scenario does not fix:
// seed, reproducibility, and protocol-simulation scale.
type ScenarioConfig = scenario.RunConfig

// ScenarioSettings is the serializable identity of a scenario run: the
// ScenarioConfig fields that determine its output bytes (seed,
// reproducibility, protocol scale), without the process-local callbacks.
// It is what run journals and fleet shard requests carry.
type ScenarioSettings = scenario.Settings

// ScenarioTopology names a scenario's WAN source (built-in topology,
// file, or synthesis config).
type ScenarioTopology = scenario.TopologySpec

// ScenarioSystemAxis expands into a sequence of quorum systems (explicit
// parameters or every parameter fitting a universe bound).
type ScenarioSystemAxis = scenario.SystemAxis

// ScenarioStep is one timeline entry: the deltas applied before a
// re-plan.
type ScenarioStep = scenario.Step

// ScenarioFaults injects failures and slowdowns into eval scenarios.
type ScenarioFaults = scenario.FaultSpec

// RunScenario executes a scenario and returns its table.
func RunScenario(spec *Scenario, cfg ScenarioConfig) (*ResultTable, error) {
	return scenario.Run(spec, cfg)
}

// LoadScenario reads and validates a JSON scenario spec.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// ScenarioLibrary lists the built-in workload scenarios: regional
// outage, diurnal demand shift, RTT drift, site churn, flash crowd,
// heterogeneous demand, correlated failure (a region outage with
// same-epoch RTT degradation on the survivors), and the multi-seed
// scaled parameter study (seed-scale-study).
func ScenarioLibrary() []Scenario { return scenario.Library() }

// ScenarioScale multiplies a scenario's study axes in place: Sites
// scales synthetic region counts, Clients scales every demand-bearing
// knob. With the Seeds axis (run the same study over N generated
// topologies, each an independently shardable sub-space), it puts the
// ~100x parameter studies in one spec file.
type ScenarioScale = scenario.ScaleSpec

// ScenarioSpace is a scenario's enumerated point-space: the
// deterministic, ordered list of work units an unsharded run executes.
// Partition it with Shard, execute partitions anywhere, and Merge the
// partials — the merged table is byte-identical to RunScenario.
type ScenarioSpace = scenario.Space

// Partition is one shard's slice of a scenario's point-space: the unit
// of work a fleet worker executes. Execute returns a ScenarioPartial.
type Partition = scenario.Partition

// ScenarioPoint is one self-describing work unit of a point-space.
type ScenarioPoint = scenario.Point

// ScenarioPartial is an executed partition's tagged table fragment —
// the fleet wire format (it serializes through the Table's stable JSON
// encoding).
type ScenarioPartial = scenario.Partial

// StreamStep is one timeline step exported as a replayable delta batch
// — what quorumgen posts to a live deployment per step.
type StreamStep = scenario.StreamStep

// TimelineStream compiles a timeline scenario's steps into delta
// batches: applying each batch to a deployment seeded with
// TimelinePlanner drives it through exactly the states the scenario
// engine's table records, row for row (asserted by test for every
// library timeline). It is the bridge between declarative workloads and
// live deployments — the quorumgen replayer is a thin CLI over it.
func TimelineStream(spec *Scenario, cfg ScenarioConfig) ([]StreamStep, error) {
	return scenario.TimelineStream(spec, cfg)
}

// TimelinePlanner builds the planner a timeline scenario starts from,
// so a Deployment created around it begins in the state the scenario's
// "initial" row reports.
func TimelinePlanner(spec *Scenario, cfg ScenarioConfig) (*Planner, error) {
	return scenario.TimelinePlanner(spec, cfg)
}

// ProbeAgent measures one row of an N×N RTT ping mesh: each round it
// probes its peers over its transport, feeds each sample through a
// per-pair smoother (windowed median, MAD spike rejection, emission
// hysteresis), and emits rtt deltas only when a link's smoothed value
// genuinely moves — so a noisy-but-stationary mesh emits nothing after
// its warmup baselines, and measurement noise never reaches the
// planner (asserted by test: 0 placement moves over 100 noisy rounds
// with smoothing on, >0 with it off).
type ProbeAgent = probe.Agent

// ProbeAgentConfig configures a ProbeAgent: local site, peer roster,
// transport, smoothing, and per-measurement timeout.
type ProbeAgentConfig = probe.AgentConfig

// ProbeSmoother tunes the per-pair sample filter of a ProbeAgent
// (window length, MAD gate, level-shift recovery, hysteresis band).
type ProbeSmoother = probe.SmootherConfig

// ProbeTransport measures one peer's RTT; implementations are the UDP
// echo transport (NewUDPProbeTransport) and the deterministic fake
// mesh (NewFakeMesh) for tests and simulations.
type ProbeTransport = probe.Transport

// NewProbeAgent validates the configuration and builds an agent.
func NewProbeAgent(cfg ProbeAgentConfig) (*ProbeAgent, error) { return probe.NewAgent(cfg) }

// NewUDPProbeTransport measures peers by round-tripping nonce-tagged
// datagrams against their UDP echo responders (ListenProbeEcho).
func NewUDPProbeTransport(peers map[string]string, timeout time.Duration) *probe.UDPTransport {
	return probe.NewUDPTransport(peers, timeout)
}

// ListenProbeEcho starts a UDP echo responder for the probe mesh.
func ListenProbeEcho(addr string) (*probe.EchoServer, error) { return probe.ListenEcho(addr) }

// NewFakeMesh builds a deterministic in-process probe transport with
// programmable pair RTTs, noise, and failures — the unit under the
// hysteresis regression tests.
func NewFakeMesh(seed int64) *probe.FakeMesh { return probe.NewFakeMesh(seed) }

// DemandReporter aggregates per-site client request counts into
// windowed demand/weights deltas with relative-change hysteresis:
// steady traffic emits nothing, an empty window emits nothing (missing
// telemetry is not zero demand), and silent sites keep a positive
// floor weight.
type DemandReporter = probe.Reporter

// DemandReporterConfig tunes a DemandReporter.
type DemandReporterConfig = probe.ReporterConfig

// NewDemandReporter builds a reporter.
func NewDemandReporter(cfg DemandReporterConfig) *DemandReporter { return probe.NewReporter(cfg) }

// DeltaBatcher is the client-side debouncer between delta producers
// (probe agents, demand reporters) and a deployment: it coalesces
// added deltas locally (CoalesceDeltas semantics) and posts one batch
// per cadence window — never mid-window — re-queueing batches on
// transient failures so newer values still supersede them.
type DeltaBatcher = probe.Batcher

// DeltaPoster posts one coalesced batch to a deployment; HTTPDeltaPoster
// targets a quorumd deltas endpoint with bounded retry/backoff honoring
// Retry-After, and ManagerDeltaPoster applies in-process.
type DeltaPoster = probe.Poster

// ManagerDeltaPoster applies delta batches straight to an in-process
// Deployment — the no-HTTP path for simulations and embedded use.
type ManagerDeltaPoster = probe.ManagerPoster

// DeltaPostFunc adapts a function to the DeltaPoster interface.
type DeltaPostFunc = probe.PostFunc

// HTTPDeltaPoster posts delta batches to a quorumd deltas endpoint
// with bounded retry and exponential backoff; 429/503 backpressure
// re-coalesces locally instead of hammering a busy apply loop.
type HTTPDeltaPoster = probe.HTTPPoster

// NewDeltaBatcher builds a batcher over the given poster.
func NewDeltaBatcher(p DeltaPoster) *DeltaBatcher { return probe.NewBatcher(p) }

// ScenarioProgress is one point-completion event delivered to
// ScenarioConfig.Progress.
type ScenarioProgress = scenario.Progress

// PartitionScenario enumerates a scenario's point-space for sharded
// execution.
func PartitionScenario(spec *Scenario, cfg ScenarioConfig) (*ScenarioSpace, error) {
	return scenario.NewSpace(spec, cfg)
}

// MergeScenario recombines executed partials into the full table,
// asserting every point of the spec's space appears exactly once.
func MergeScenario(spec *Scenario, cfg ScenarioConfig, partials []*ScenarioPartial) (*ResultTable, error) {
	return scenario.Merge(spec, cfg, partials)
}

// Fleet coordinates sharded scenario execution across worker processes
// over HTTP: it partitions the spec, dispatches shards, retries
// failures on other workers, and merges the results byte-identically
// to a local run. With a FleetRegistry it is elastic: workers join and
// leave mid-run, and a worker that misses heartbeats while holding a
// shard has the shard re-dispatched immediately.
type Fleet = fleet.Coordinator

// FleetConfig tunes a Fleet: a static worker list or an elastic
// Registry, shard count, retry attempts, backoff, and poll timeouts.
type FleetConfig = fleet.Config

// FleetEvent is one dispatch lifecycle observation (dispatch,
// worker-join, worker-dead, redispatch, backoff, shard-done,
// late-discard, abandon) delivered to FleetConfig.OnEvent.
type FleetEvent = fleet.Event

// NewFleet validates the configuration and builds a coordinator.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// FleetRegistry tracks an elastic fleet's workers: self-registration
// (POST /v1/workers), heartbeats, and liveness expiry after missed
// beats. Mount Handler() next to the coordinator; workers keep a
// registration Lease against it with JoinFleet.
type FleetRegistry = fleet.Registry

// FleetRegistryOptions tunes liveness tracking (heartbeat cadence and
// the missed-beat budget).
type FleetRegistryOptions = fleet.RegistryOptions

// NewFleetRegistry builds a worker registry.
func NewFleetRegistry(opts FleetRegistryOptions) *FleetRegistry { return fleet.NewRegistry(opts) }

// FleetLease keeps one worker registered with a registry: it
// registers, heartbeats at the advertised cadence, and re-registers
// under a fresh id whenever the registry stops recognizing it.
type FleetLease = fleet.Lease

// FleetLeaseOptions tunes a lease's retry cadence and logging.
type FleetLeaseOptions = fleet.LeaseOptions

// JoinFleet starts a lease registering the advertise address (where
// coordinators dispatch shards) with the registry.
func JoinFleet(registryAddr, advertise string, opts FleetLeaseOptions) (*FleetLease, error) {
	return fleet.Join(registryAddr, advertise, opts)
}

// FleetWorker executes shard jobs for coordinators; mount Handler() on
// any http server (quorumbench -fleet-worker does exactly this).
type FleetWorker = fleet.Worker

// FleetWorkerOptions tunes a FleetWorker (long-poll cap, job
// concurrency, logging).
type FleetWorkerOptions = fleet.WorkerOptions

// NewFleetWorker builds a shard-executing worker.
func NewFleetWorker(opts FleetWorkerOptions) *FleetWorker { return fleet.NewWorker(opts) }

// RunJournal is the durable protocol log of one fleet run: a header
// binding the journal to its spec (by hash), then one fsynced record
// per dispatch, completed shard (partial inlined), and the final merge.
// Attach one to FleetConfig.Journal to record; load it after a crash to
// resume with only the missing shards re-dispatched — the merged output
// stays byte-identical to an uninterrupted run.
type RunJournal = runjournal.Run

// RunJournalOptions names the journal's writer and overrides its clock.
type RunJournalOptions = runjournal.Options

// RunJournalState is a loaded journal: spec, settings, shard count,
// recovered partials, epoch, lease owner and freshness, and whether the
// run already merged.
type RunJournalState = runjournal.State

// CreateRunJournal starts a journal for a fresh run (the path must not
// exist).
func CreateRunJournal(path string, spec *Scenario, cfg ScenarioSettings, shards int, opts RunJournalOptions) (*RunJournal, error) {
	return runjournal.Create(path, spec, cfg, shards, opts)
}

// LoadRunJournal reads a journal back, discarding a torn final record
// (the artifact of a crash mid-append) and keeping the first recorded
// result per shard.
func LoadRunJournal(path string) (*RunJournalState, error) { return runjournal.Load(path) }

// ContinueRunJournal reopens a journal at the next epoch, fencing the
// new coordinator's attempts from the dead one's.
func ContinueRunJournal(path string, st *RunJournalState, opts RunJournalOptions) (*RunJournal, error) {
	return runjournal.Continue(path, st, opts)
}

// FleetStandby tails a run journal and takes the run over when the
// primary coordinator's lease goes stale, re-adopting the surviving
// workers and re-dispatching only the shards without a journaled
// result.
type FleetStandby = fleet.Standby

// FleetStandbyOptions tunes a standby: journal path, lease TTL, poll
// cadence, and the takeover coordinator template.
type FleetStandbyOptions = fleet.StandbyOptions

// NewFleetStandby validates the options.
func NewFleetStandby(opts FleetStandbyOptions) (*FleetStandby, error) {
	return fleet.NewStandby(opts)
}

// Experiment regenerates one of the paper's figures.
type Experiment = experiments.Experiment

// ExperimentParams scales the experiment harness.
type ExperimentParams = experiments.Params

// ResultTable is a regenerated figure.
type ResultTable = experiments.Table

// Experiments lists every figure runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up a figure runner ("fig6.3", "fig8.9", …).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// DefaultExperimentParams mirrors the paper's configuration.
func DefaultExperimentParams() ExperimentParams { return experiments.DefaultParams() }
