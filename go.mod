module github.com/quorumnet/quorumnet

go 1.24
