package quorumnet_test

import (
	"fmt"
	"log"

	quorumnet "github.com/quorumnet/quorumnet"
)

// Evaluate a Grid quorum system placement under low and high demand.
func Example() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	sys, err := quorumnet.NewGrid(5)
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := quorumnet.NewEval(topo, sys, f, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sites: %d, network delay with closest access: %.0f ms\n",
		topo.Size(), e.AvgNetworkDelay(quorumnet.Closest))
	// Output:
	// sites: 50, network delay with closest access: 96 ms
}

// Optimize per-client access strategies with the LP of §4.2 under a
// uniform capacity limit.
func ExampleOptimizeStrategies() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	sys, err := quorumnet.NewGrid(4)
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := quorumnet.NewEval(topo, sys, f, quorumnet.AlphaForDemand(16000))
	if err != nil {
		log.Fatal(err)
	}
	caps := make([]float64, topo.Size())
	for w := range caps {
		caps[w] = 0.6
	}
	res, err := quorumnet.OptimizeStrategies(e, caps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized network delay: %.0f ms\n", res.AvgNetDelay)
	// Output:
	// optimized network delay: 89 ms
}

// Restrict an evaluation to the survivors of a node failure.
func ExampleApplyFailures() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	sys, err := quorumnet.SimpleMajority(3) // majority(4,7)
	if err != nil {
		log.Fatal(err)
	}
	f, err := quorumnet.OneToOne(topo, sys, quorumnet.PlacementOptions{})
	if err != nil {
		log.Fatal(err)
	}
	e, err := quorumnet.NewEval(topo, sys, f, 0)
	if err != nil {
		log.Fatal(err)
	}
	failed := quorumnet.WorstCaseFailure(e, 2)
	fe, err := quorumnet.ApplyFailures(e, failed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivors: %d of %d elements\n",
		fe.Sys.UniverseSize(), sys.UniverseSize())
	// Output:
	// survivors: 5 of 7 elements
}

// Simulate the Q/U protocol's single-round path over the discrete-event
// WAN model.
func ExampleRunProtocol() {
	topo := quorumnet.PlanetLab50(quorumnet.DefaultSeed)
	m, err := quorumnet.RunProtocol(quorumnet.ProtocolConfig{
		Topo:          topo,
		ServerSites:   []int{0, 1, 2, 3, 4, 5},
		QuorumSize:    5,
		ClientSites:   []int{10, 20, 30},
		ServiceTimeMS: 1,
		DurationMS:    5000,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response at least network delay: %v\n",
		m.AvgResponseMS >= m.AvgNetDelayMS)
	// Output:
	// response at least network delay: true
}
