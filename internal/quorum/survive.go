package quorum

import (
	"fmt"
)

// Survivor is a quorum system restricted to the elements that outlive a
// failure, re-indexed over the compacted survivor universe. AliveIndex
// maps survivor-universe elements back to the original universe, so
// placements and cost vectors can be projected.
type Survivor struct {
	// Sub is the surviving quorum system over universe
	// {0..len(AliveIndex)-1}.
	Sub System
	// AliveIndex[i] is the original element id of survivor element i.
	AliveIndex []int
}

// ErrNoQuorumSurvives reports that the failure kills every quorum — the
// service is unavailable.
var ErrNoQuorumSurvives = fmt.Errorf("quorum: no quorum survives the failure")

// Survive restricts a system to the quorums untouched by the dead
// elements. Threshold systems survive as (smaller) threshold systems, so
// their closed forms remain available even when non-enumerable;
// enumerable systems survive as Explicit systems. It returns
// ErrNoQuorumSurvives when every quorum hits a dead element.
func Survive(s System, dead []int) (*Survivor, error) {
	isDead := make([]bool, s.UniverseSize())
	for _, u := range dead {
		if u < 0 || u >= s.UniverseSize() {
			return nil, fmt.Errorf("quorum: dead element %d out of range [0,%d)", u, s.UniverseSize())
		}
		isDead[u] = true
	}
	var alive []int
	for u := 0; u < s.UniverseSize(); u++ {
		if !isDead[u] {
			alive = append(alive, u)
		}
	}

	if t, ok := s.(Threshold); ok {
		if len(alive) < t.QuorumSize() {
			return nil, fmt.Errorf("%d of %d elements alive, need %d: %w",
				len(alive), t.UniverseSize(), t.QuorumSize(), ErrNoQuorumSurvives)
		}
		// Quorums of the original threshold system that avoid the dead
		// elements are exactly the q-subsets of the survivors; the
		// intersection property is inherited (2q > n ≥ |alive|).
		sub, err := NewThreshold(t.QuorumSize(), len(alive))
		if err != nil {
			return nil, err
		}
		return &Survivor{Sub: sub, AliveIndex: alive}, nil
	}

	if !s.Enumerable() {
		return nil, fmt.Errorf("quorum: cannot restrict non-enumerable system %s", s.Name())
	}
	// Re-index the surviving quorums onto the survivor universe.
	newID := make([]int, s.UniverseSize())
	for i := range newID {
		newID[i] = -1
	}
	for i, u := range alive {
		newID[u] = i
	}
	var surviving [][]int
	for i := 0; i < s.NumQuorums(); i++ {
		q := s.Quorum(i)
		ok := true
		for _, u := range q {
			if isDead[u] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mapped := make([]int, len(q))
		for j, u := range q {
			mapped[j] = newID[u]
		}
		surviving = append(surviving, mapped)
	}
	if len(surviving) == 0 {
		return nil, fmt.Errorf("%s with %d dead elements: %w", s.Name(), len(dead), ErrNoQuorumSurvives)
	}
	sub, err := NewExplicit(fmt.Sprintf("%s\\%d", s.Name(), len(dead)), len(alive), surviving)
	if err != nil {
		return nil, err
	}
	return &Survivor{Sub: sub, AliveIndex: alive}, nil
}

// FailureResilience returns the largest f such that the system survives
// every failure of f elements (the system's fault tolerance). For a
// threshold system this is n − q; for enumerable systems it is computed
// by checking minimal transversals up to the quorum size.
func FailureResilience(s System) int {
	if t, ok := s.(Threshold); ok {
		return t.UniverseSize() - t.QuorumSize()
	}
	if !s.Enumerable() {
		return -1 // unknown
	}
	// f is one less than the size of the smallest hitting set of the
	// quorum family. Quorum systems here are small (m, q ≤ a few hundred),
	// so a branch-and-bound search is fine.
	m := s.NumQuorums()
	quorums := make([][]int, m)
	for i := range quorums {
		quorums[i] = s.Quorum(i)
	}
	best := s.UniverseSize() + 1
	var search func(chosen map[int]bool, next int)
	search = func(chosen map[int]bool, idx int) {
		if len(chosen) >= best {
			return
		}
		// Find the first quorum not hit.
		hitAll := true
		var unhit []int
		for i := idx; i < m; i++ {
			hit := false
			for _, u := range quorums[i] {
				if chosen[u] {
					hit = true
					break
				}
			}
			if !hit {
				hitAll = false
				unhit = quorums[i]
				idx = i
				break
			}
		}
		if hitAll {
			if len(chosen) < best {
				best = len(chosen)
			}
			return
		}
		for _, u := range unhit {
			chosen[u] = true
			search(chosen, idx)
			delete(chosen, u)
		}
	}
	search(map[int]bool{}, 0)
	return best - 1
}
