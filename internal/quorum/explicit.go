package quorum

import (
	"fmt"
	"math"
	"sort"
)

// Explicit is a quorum system given by an explicit list of quorums. It
// backs user-defined constructions and the survivor systems produced by
// Survive when a structured system (like Grid) loses elements.
type Explicit struct {
	name    string
	n       int
	quorums [][]int
}

var _ System = (*Explicit)(nil)

// NewExplicit builds a quorum system from explicit quorums over the
// universe {0..n-1}. Every quorum must be non-empty with in-range,
// distinct elements, and every pair of quorums must intersect.
func NewExplicit(name string, n int, quorums [][]int) (*Explicit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("quorum: universe size %d must be positive", n)
	}
	if len(quorums) == 0 {
		return nil, fmt.Errorf("quorum: explicit system %q has no quorums", name)
	}
	if len(quorums) > maxEnumerable {
		return nil, fmt.Errorf("quorum: explicit system %q has %d quorums (max %d)",
			name, len(quorums), maxEnumerable)
	}
	cleaned := make([][]int, len(quorums))
	for i, q := range quorums {
		if len(q) == 0 {
			return nil, fmt.Errorf("quorum: quorum %d is empty", i)
		}
		c := append([]int(nil), q...)
		sort.Ints(c)
		for j, u := range c {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("quorum: quorum %d element %d out of range [0,%d)", i, u, n)
			}
			if j > 0 && c[j-1] == u {
				return nil, fmt.Errorf("quorum: quorum %d repeats element %d", i, u)
			}
		}
		cleaned[i] = c
	}
	for a := range cleaned {
		for b := a + 1; b < len(cleaned); b++ {
			if !sortedIntersect(cleaned[a], cleaned[b]) {
				return nil, fmt.Errorf("quorum: quorums %d and %d do not intersect", a, b)
			}
		}
	}
	return &Explicit{name: name, n: n, quorums: cleaned}, nil
}

// Name implements System.
func (s *Explicit) Name() string { return s.name }

// UniverseSize implements System.
func (s *Explicit) UniverseSize() int { return s.n }

// QuorumSize implements System: the maximum quorum cardinality (explicit
// systems need not be uniform).
func (s *Explicit) QuorumSize() int {
	maxQ := 0
	for _, q := range s.quorums {
		if len(q) > maxQ {
			maxQ = len(q)
		}
	}
	return maxQ
}

// Enumerable implements System.
func (s *Explicit) Enumerable() bool { return true }

// NumQuorums implements System.
func (s *Explicit) NumQuorums() int { return len(s.quorums) }

// Quorum implements System.
func (s *Explicit) Quorum(i int) []int {
	return append([]int(nil), s.quorums[i]...)
}

// ClosestQuorum implements System by scanning all quorums.
func (s *Explicit) ClosestQuorum(cost []float64) ([]int, float64) {
	s.checkCost(cost)
	best, bestCost := 0, math.Inf(1)
	for i, q := range s.quorums {
		maxC := math.Inf(-1)
		for _, u := range q {
			if cost[u] > maxC {
				maxC = cost[u]
			}
		}
		if maxC < bestCost {
			best, bestCost = i, maxC
		}
	}
	return s.Quorum(best), bestCost
}

// UniformElementLoad implements System. Explicit systems need not be
// element-symmetric; this returns the maximum per-element membership
// frequency (the system load of the uniform strategy, which is what the
// capacity sweeps consume). Use ElementLoads for the full vector.
func (s *Explicit) UniformElementLoad() float64 {
	maxL := 0.0
	for _, l := range s.ElementLoads() {
		if l > maxL {
			maxL = l
		}
	}
	return maxL
}

// ElementLoads returns each element's membership frequency under the
// uniform strategy.
func (s *Explicit) ElementLoads() []float64 {
	loads := make([]float64, s.n)
	for _, q := range s.quorums {
		for _, u := range q {
			loads[u]++
		}
	}
	inv := 1 / float64(len(s.quorums))
	for u := range loads {
		loads[u] *= inv
	}
	return loads
}

// ExpectedMaxUniform implements System by enumeration.
func (s *Explicit) ExpectedMaxUniform(cost []float64) float64 {
	s.checkCost(cost)
	sum := 0.0
	for _, q := range s.quorums {
		maxC := math.Inf(-1)
		for _, u := range q {
			if cost[u] > maxC {
				maxC = cost[u]
			}
		}
		sum += maxC
	}
	return sum / float64(len(s.quorums))
}

// OptimalLoad implements System with the uniform strategy's load — an
// upper bound on Lopt, exact for symmetric systems.
func (s *Explicit) OptimalLoad() float64 { return s.UniformElementLoad() }

// UniformTouchProbability implements System by enumeration.
func (s *Explicit) UniformTouchProbability(elems []int) float64 {
	in := make(map[int]bool, len(elems))
	for _, u := range elems {
		in[u] = true
	}
	count := 0
	for _, q := range s.quorums {
		for _, u := range q {
			if in[u] {
				count++
				break
			}
		}
	}
	return float64(count) / float64(len(s.quorums))
}

func (s *Explicit) checkCost(cost []float64) {
	if len(cost) != s.n {
		panic(fmt.Sprintf("quorum: cost vector length %d, want %d", len(cost), s.n))
	}
}
