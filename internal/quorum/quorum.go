// Package quorum implements the quorum systems evaluated in the paper: the
// three Majority (threshold) families — (t+1, 2t+1), (2t+1, 3t+1) and
// (4t+1, 5t+1) — the k×k Grid, and the degenerate Singleton.
//
// A quorum system over a universe U = {0, …, n−1} of logical elements is a
// set of subsets (quorums) of U such that any two quorums intersect.
// Threshold systems have astronomically many quorums (C(n, q)), so the
// System interface exposes closed-form operations — closest quorum,
// uniform-strategy element load, expected max cost under the uniform
// (balanced) strategy — that do not require enumeration, alongside
// enumeration for the families where it is tractable (Grid, small
// thresholds), which the access-strategy LP requires.
package quorum

import (
	"math"
	"sort"
)

// System is a quorum system over universe {0..UniverseSize()-1}.
type System interface {
	// Name identifies the system, e.g. "majority(3,5)" or "grid(3x3)".
	Name() string
	// UniverseSize returns n, the number of logical elements.
	UniverseSize() int
	// QuorumSize returns the (uniform) quorum cardinality. All systems in
	// this package have uniform quorum sizes.
	QuorumSize() int
	// Enumerable reports whether the quorums can be listed explicitly
	// (required by the access-strategy LP).
	Enumerable() bool
	// NumQuorums returns the number of quorums m. For non-enumerable
	// systems it returns 0; use the closed-form methods instead.
	NumQuorums() int
	// Quorum returns the elements of quorum i, for 0 <= i < NumQuorums().
	// The returned slice is fresh and sorted ascending.
	Quorum(i int) []int
	// ClosestQuorum returns the quorum minimizing the maximum of cost[u]
	// over its elements u, together with that minimal max cost. cost must
	// have length UniverseSize(). Ties break deterministically.
	ClosestQuorum(cost []float64) (elements []int, maxCost float64)
	// UniformElementLoad returns load(u) under the uniform (balanced)
	// access strategy: the probability that element u belongs to a
	// uniformly sampled quorum. All systems here are element-symmetric, so
	// the value is independent of u.
	UniformElementLoad() float64
	// ExpectedMaxUniform returns E[max_{u in Q} cost[u]] for Q sampled
	// uniformly from the quorums. Exact (no sampling), even for
	// non-enumerable threshold systems.
	ExpectedMaxUniform(cost []float64) float64
	// OptimalLoad returns Lopt, the best achievable system load (Naor &
	// Wool), used as the lower end of the capacity sweeps in §7.
	OptimalLoad() float64
	// UniformTouchProbability returns the probability that a uniformly
	// sampled quorum contains at least one element of elems. It powers
	// the deduplicated load model (§8 future work), where a node hosting
	// several universe elements processes a request once.
	UniformTouchProbability(elems []int) float64
}

// maxEnumerable bounds the number of quorums we are willing to enumerate.
// The paper's LP experiments use Grid (m = k² ≤ 169); thresholds with
// C(n, q) at most this bound also qualify.
const maxEnumerable = 200000

// Verify checks the defining property — every pair of quorums intersects —
// for an enumerable system. It reports the first offending pair, or
// (-1, -1) if the property holds. Intended for tests.
func Verify(s System) (i, j int) {
	if !s.Enumerable() {
		return -1, -1
	}
	m := s.NumQuorums()
	sets := make([][]int, m)
	for q := 0; q < m; q++ {
		sets[q] = s.Quorum(q)
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if !sortedIntersect(sets[a], sets[b]) {
				return a, b
			}
		}
	}
	return -1, -1
}

func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// binomial returns C(n, k) saturating at maxEnumerable+1 to avoid overflow;
// callers only need to know whether the count is within the enumeration
// budget.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1
	for i := 1; i <= k; i++ {
		// result * (n-k+i) cannot overflow before the saturation check
		// because result <= maxEnumerable+1 and n is small (< 1000).
		result = result * (n - k + i) / i
		if result > maxEnumerable {
			return maxEnumerable + 1
		}
	}
	return result
}

// smallestK returns the indices of the k smallest values (ties broken by
// index) and the largest value among them.
func smallestK(cost []float64, k int) ([]int, float64) {
	idx := make([]int, len(cost))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if cost[idx[a]] != cost[idx[b]] {
			return cost[idx[a]] < cost[idx[b]]
		}
		return idx[a] < idx[b]
	})
	sel := idx[:k]
	out := make([]int, k)
	copy(out, sel)
	sort.Ints(out)
	maxC := math.Inf(-1)
	for _, u := range out {
		if cost[u] > maxC {
			maxC = cost[u]
		}
	}
	return out, maxC
}
