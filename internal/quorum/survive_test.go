package quorum

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNewExplicitValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		quorums [][]int
		wantErr bool
	}{
		{name: "valid pair", n: 3, quorums: [][]int{{0, 1}, {1, 2}}, wantErr: false},
		{name: "single quorum", n: 2, quorums: [][]int{{0}}, wantErr: false},
		{name: "no quorums", n: 3, quorums: nil, wantErr: true},
		{name: "empty quorum", n: 3, quorums: [][]int{{}}, wantErr: true},
		{name: "out of range", n: 2, quorums: [][]int{{0, 5}}, wantErr: true},
		{name: "duplicate element", n: 3, quorums: [][]int{{1, 1}}, wantErr: true},
		{name: "disjoint quorums", n: 4, quorums: [][]int{{0, 1}, {2, 3}}, wantErr: true},
		{name: "zero universe", n: 0, quorums: [][]int{{0}}, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewExplicit("x", tc.n, tc.quorums)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewExplicit error = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestExplicitMatchesGrid(t *testing.T) {
	// An Explicit copy of a grid must agree with the structured
	// implementation on every System method.
	g := mustGrid(t, 3)
	quorums := make([][]int, g.NumQuorums())
	for i := range quorums {
		quorums[i] = g.Quorum(i)
	}
	e, err := NewExplicit("grid-copy", g.UniverseSize(), quorums)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		cost := randomCosts(rng, g.UniverseSize())
		_, gc := g.ClosestQuorum(cost)
		_, ec := e.ClosestQuorum(cost)
		if math.Abs(gc-ec) > 1e-12 {
			t.Fatalf("closest: grid %v, explicit %v", gc, ec)
		}
		if d := math.Abs(g.ExpectedMaxUniform(cost) - e.ExpectedMaxUniform(cost)); d > 1e-9 {
			t.Fatalf("expected max differs by %v", d)
		}
	}
	if math.Abs(g.UniformElementLoad()-e.UniformElementLoad()) > 1e-12 {
		t.Error("uniform load differs")
	}
	elems := []int{0, 4, 8}
	if math.Abs(g.UniformTouchProbability(elems)-e.UniformTouchProbability(elems)) > 1e-12 {
		t.Error("touch probability differs")
	}
}

func TestSurviveThreshold(t *testing.T) {
	s := mustThreshold(t, 3, 5)
	sv, err := Survive(s, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := sv.Sub.(Threshold)
	if !ok {
		t.Fatalf("survivor of threshold is %T, want Threshold", sv.Sub)
	}
	if sub.UniverseSize() != 3 || sub.QuorumSize() != 3 {
		t.Errorf("survivor dims (%d,%d), want (3,3)", sub.QuorumSize(), sub.UniverseSize())
	}
	if !equalInts(sv.AliveIndex, []int{0, 2, 4}) {
		t.Errorf("AliveIndex = %v", sv.AliveIndex)
	}
}

func TestSurviveThresholdUnavailable(t *testing.T) {
	s := mustThreshold(t, 3, 5)
	_, err := Survive(s, []int{0, 1, 2}) // 2 survivors < q=3
	if !errors.Is(err, ErrNoQuorumSurvives) {
		t.Errorf("err = %v, want ErrNoQuorumSurvives", err)
	}
}

func TestSurviveNonEnumerableThreshold(t *testing.T) {
	// Closed forms keep working after failures of a non-enumerable system.
	s := mustThreshold(t, 25, 49)
	sv, err := Survive(s, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Sub.UniverseSize() != 44 {
		t.Errorf("survivor universe = %d, want 44", sv.Sub.UniverseSize())
	}
	if got := sv.Sub.UniformElementLoad(); math.Abs(got-25.0/44.0) > 1e-12 {
		t.Errorf("survivor load = %v, want 25/44", got)
	}
}

func TestSurviveGrid(t *testing.T) {
	g := mustGrid(t, 3)
	// Kill element 4 (center cell, row 1 col 1): quorums using row 1 or
	// column 1 die → surviving (r,c) pairs avoid r=1 and c=1 → 2×2 = 4.
	sv, err := Survive(g, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if got := sv.Sub.NumQuorums(); got != 4 {
		t.Errorf("surviving quorums = %d, want 4", got)
	}
	if got := sv.Sub.UniverseSize(); got != 8 {
		t.Errorf("survivor universe = %d, want 8", got)
	}
	// The survivor system must still be a quorum system.
	if i, j := Verify(sv.Sub); i != -1 {
		t.Errorf("survivor quorums %d and %d do not intersect", i, j)
	}
}

func TestSurviveGridUnavailable(t *testing.T) {
	g := mustGrid(t, 2)
	// Killing one full row and one cell of the other row leaves no
	// complete row+column pair.
	if _, err := Survive(g, []int{0, 3}); !errors.Is(err, ErrNoQuorumSurvives) {
		t.Errorf("err = %v, want ErrNoQuorumSurvives", err)
	}
}

func TestSurviveValidation(t *testing.T) {
	g := mustGrid(t, 2)
	if _, err := Survive(g, []int{-1}); err == nil {
		t.Error("negative dead element accepted")
	}
	if _, err := Survive(g, []int{99}); err == nil {
		t.Error("out-of-range dead element accepted")
	}
}

func TestSurviveNoFailures(t *testing.T) {
	g := mustGrid(t, 3)
	sv, err := Survive(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Sub.NumQuorums() != g.NumQuorums() {
		t.Errorf("no-failure survivor lost quorums: %d vs %d",
			sv.Sub.NumQuorums(), g.NumQuorums())
	}
}

func TestFailureResilience(t *testing.T) {
	tests := []struct {
		sys  System
		want int
	}{
		{sys: mustThreshold(t, 3, 5), want: 2},
		{sys: mustThreshold(t, 9, 11), want: 2},
		{sys: Singleton{}, want: 0},
		// Grid k×k: killing any single element kills only quorums through
		// its row or column; a diagonal of k dead cells hits every
		// (row, column) pair, and nothing smaller can, so resilience k−1.
		{sys: mustGrid(t, 2), want: 1},
		{sys: mustGrid(t, 3), want: 2},
		{sys: mustGrid(t, 4), want: 3},
	}
	for _, tc := range tests {
		if got := FailureResilience(tc.sys); got != tc.want {
			t.Errorf("%s resilience = %d, want %d", tc.sys.Name(), got, tc.want)
		}
	}
}

func TestFailureResilienceMatchesSurvive(t *testing.T) {
	// Property: for f = resilience, every f-subset of dead elements leaves
	// a survivor; some (f+1)-subset does not.
	sys := mustGrid(t, 3)
	f := FailureResilience(sys)
	n := sys.UniverseSize()

	var foundKill bool
	var check func(dead []int, next, budget int)
	check = func(dead []int, next, budget int) {
		if budget == 0 {
			if _, err := Survive(sys, dead); err != nil {
				t.Fatalf("resilience %d but %v kills the system", f, dead)
			}
			return
		}
		for u := next; u < n; u++ {
			check(append(dead, u), u+1, budget-1)
		}
	}
	check(nil, 0, f)

	var hunt func(dead []int, next, budget int)
	hunt = func(dead []int, next, budget int) {
		if foundKill {
			return
		}
		if budget == 0 {
			if _, err := Survive(sys, dead); err != nil {
				foundKill = true
			}
			return
		}
		for u := next; u < n; u++ {
			hunt(append(dead, u), u+1, budget-1)
		}
	}
	hunt(nil, 0, f+1)
	if !foundKill {
		t.Errorf("no (f+1)=%d failure kills the system; resilience too low", f+1)
	}
}

func TestExplicitNonUniformLoads(t *testing.T) {
	e, err := NewExplicit("star", 3, [][]int{{0, 1}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	loads := e.ElementLoads()
	if loads[0] != 1 || loads[1] != 0.5 || loads[2] != 0.5 {
		t.Errorf("loads = %v, want [1 0.5 0.5]", loads)
	}
	if e.UniformElementLoad() != 1 {
		t.Errorf("UniformElementLoad = %v, want max 1", e.UniformElementLoad())
	}
	if e.QuorumSize() != 2 {
		t.Errorf("QuorumSize = %d, want 2", e.QuorumSize())
	}
}
