package quorum

import (
	"fmt"
	"math"
	"sort"
)

// Threshold is the threshold (a.k.a. Majority or voting) quorum system:
// every subset of size q of an n-element universe is a quorum. The paper's
// three Majority families are threshold systems:
//
//	(t+1, 2t+1)   — simple majority, tolerates t crash faults
//	(2t+1, 3t+1)  — Byzantine dissemination majority
//	(4t+1, 5t+1)  — the Q/U construction
//
// Threshold systems are element-symmetric, so balanced-strategy loads and
// expected max costs have closed forms (order statistics), used whenever
// C(n, q) is too large to enumerate.
type Threshold struct {
	n int
	q int
}

var _ System = Threshold{}

// NewThreshold returns the threshold system with quorum size q over n
// elements. It errors unless 0 < q <= n and 2q > n (the intersection
// property for set systems closed under size-q subsets).
func NewThreshold(q, n int) (Threshold, error) {
	switch {
	case n <= 0:
		return Threshold{}, fmt.Errorf("quorum: universe size %d must be positive", n)
	case q <= 0 || q > n:
		return Threshold{}, fmt.Errorf("quorum: quorum size %d out of range [1,%d]", q, n)
	case 2*q <= n:
		return Threshold{}, fmt.Errorf("quorum: size-%d subsets of %d elements do not all intersect", q, n)
	}
	return Threshold{n: n, q: q}, nil
}

// SimpleMajority returns the (t+1, 2t+1) system.
func SimpleMajority(t int) (Threshold, error) { return NewThreshold(t+1, 2*t+1) }

// ByzantineMajority returns the (2t+1, 3t+1) system.
func ByzantineMajority(t int) (Threshold, error) { return NewThreshold(2*t+1, 3*t+1) }

// QUMajority returns the (4t+1, 5t+1) system used by the Q/U protocol.
func QUMajority(t int) (Threshold, error) { return NewThreshold(4*t+1, 5*t+1) }

// Name implements System.
func (s Threshold) Name() string { return fmt.Sprintf("majority(%d,%d)", s.q, s.n) }

// UniverseSize implements System.
func (s Threshold) UniverseSize() int { return s.n }

// QuorumSize implements System.
func (s Threshold) QuorumSize() int { return s.q }

// Enumerable implements System.
func (s Threshold) Enumerable() bool { return binomial(s.n, s.q) <= maxEnumerable }

// NumQuorums implements System.
func (s Threshold) NumQuorums() int {
	if !s.Enumerable() {
		return 0
	}
	return binomial(s.n, s.q)
}

// Quorum implements System. Quorums are ordered lexicographically by their
// sorted element lists (the combinatorial number system).
func (s Threshold) Quorum(i int) []int {
	m := s.NumQuorums()
	if i < 0 || i >= m {
		panic(fmt.Sprintf("quorum: index %d out of range [0,%d)", i, m))
	}
	out := make([]int, 0, s.q)
	rank := i
	elem := 0
	for r := s.q; r > 0; r-- {
		// Choose the smallest next element e such that the number of
		// combinations starting with e covers rank.
		for {
			c := binomial(s.n-elem-1, r-1)
			if rank < c {
				out = append(out, elem)
				elem++
				break
			}
			rank -= c
			elem++
		}
	}
	return out
}

// ClosestQuorum implements System: the q cheapest elements.
func (s Threshold) ClosestQuorum(cost []float64) ([]int, float64) {
	s.checkCost(cost)
	return smallestK(cost, s.q)
}

// UniformElementLoad implements System: by symmetry each element is in a
// q/n fraction of the quorums.
func (s Threshold) UniformElementLoad() float64 { return float64(s.q) / float64(s.n) }

// ExpectedMaxUniform implements System using order statistics. Sorting the
// costs in decreasing order c(1) >= … >= c(n), the max of a uniformly
// random q-subset equals c(i) with probability C(n−i, q−1)/C(n, q); the
// probabilities follow the stable recurrence
//
//	P(1)   = q/n
//	P(i+1) = P(i) · (n−i−q+1)/(n−i)
//
// which avoids forming the (astronomical) binomials.
func (s Threshold) ExpectedMaxUniform(cost []float64) float64 {
	s.checkCost(cost)
	desc := make([]float64, len(cost))
	copy(desc, cost)
	sort.Sort(sort.Reverse(sort.Float64Slice(desc)))

	n, q := s.n, s.q
	p := float64(q) / float64(n)
	expect := 0.0
	for i := 1; i <= n-q+1; i++ {
		expect += p * desc[i-1]
		p *= float64(n-i-q+1) / float64(n-i)
	}
	return expect
}

// OptimalLoad implements System: Lopt = q/n, achieved by the uniform
// strategy (threshold systems are load-symmetric).
func (s Threshold) OptimalLoad() float64 { return float64(s.q) / float64(s.n) }

// UniformTouchProbability implements System. For a threshold system the
// probability depends only on k = |elems|:
//
//	P(Q ∩ elems ≠ ∅) = 1 − C(n−k, q)/C(n, q) = 1 − Π_{j<q} (n−k−j)/(n−j)
//
// computed with the stable product form.
func (s Threshold) UniformTouchProbability(elems []int) float64 {
	k := countDistinctValid(elems, s.n)
	if k == 0 {
		return 0
	}
	if k+s.q > s.n {
		return 1 // too few remaining elements to avoid the set
	}
	pAvoid := 1.0
	for j := 0; j < s.q; j++ {
		pAvoid *= float64(s.n-k-j) / float64(s.n-j)
	}
	return 1 - pAvoid
}

// countDistinctValid counts distinct element ids within [0, n).
func countDistinctValid(elems []int, n int) int {
	seen := make(map[int]bool, len(elems))
	for _, u := range elems {
		if u >= 0 && u < n {
			seen[u] = true
		}
	}
	return len(seen)
}

func (s Threshold) checkCost(cost []float64) {
	if len(cost) != s.n {
		panic(fmt.Sprintf("quorum: cost vector length %d, want %d", len(cost), s.n))
	}
	for _, c := range cost {
		if math.IsNaN(c) {
			panic("quorum: NaN cost")
		}
	}
}
