package quorum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewThresholdValidation(t *testing.T) {
	tests := []struct {
		name    string
		q, n    int
		wantErr bool
	}{
		{name: "simple majority 3 of 5", q: 3, n: 5, wantErr: false},
		{name: "all of n", q: 4, n: 4, wantErr: false},
		{name: "singleton threshold", q: 1, n: 1, wantErr: false},
		{name: "non-intersecting half", q: 2, n: 4, wantErr: true},
		{name: "zero quorum", q: 0, n: 3, wantErr: true},
		{name: "quorum exceeds universe", q: 5, n: 4, wantErr: true},
		{name: "empty universe", q: 1, n: 0, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewThreshold(tc.q, tc.n)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewThreshold(%d,%d) error = %v, wantErr %v", tc.q, tc.n, err, tc.wantErr)
			}
		})
	}
}

func TestMajorityFamilies(t *testing.T) {
	tests := []struct {
		name       string
		mk         func(int) (Threshold, error)
		t          int
		wantQ      int
		wantN      int
		wantFamily string
	}{
		{name: "simple", mk: SimpleMajority, t: 2, wantQ: 3, wantN: 5},
		{name: "byzantine", mk: ByzantineMajority, t: 2, wantQ: 5, wantN: 7},
		{name: "qu", mk: QUMajority, t: 2, wantQ: 9, wantN: 11},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.mk(tc.t)
			if err != nil {
				t.Fatalf("constructor: %v", err)
			}
			if s.QuorumSize() != tc.wantQ || s.UniverseSize() != tc.wantN {
				t.Errorf("got (%d,%d), want (%d,%d)", s.QuorumSize(), s.UniverseSize(), tc.wantQ, tc.wantN)
			}
		})
	}
}

func TestThresholdEnumeration(t *testing.T) {
	s, err := NewThreshold(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enumerable() {
		t.Fatal("majority(3,5) should be enumerable")
	}
	if got := s.NumQuorums(); got != 10 {
		t.Fatalf("NumQuorums = %d, want C(5,3)=10", got)
	}
	seen := map[[3]int]bool{}
	for i := 0; i < 10; i++ {
		q := s.Quorum(i)
		if len(q) != 3 {
			t.Fatalf("Quorum(%d) size = %d, want 3", i, len(q))
		}
		for j := 1; j < len(q); j++ {
			if q[j] <= q[j-1] {
				t.Errorf("Quorum(%d) = %v not strictly sorted", i, q)
			}
		}
		var key [3]int
		copy(key[:], q)
		if seen[key] {
			t.Errorf("Quorum(%d) = %v duplicated", i, q)
		}
		seen[key] = true
	}
}

func TestThresholdNotEnumerable(t *testing.T) {
	s, err := NewThreshold(25, 49) // C(49,25) is astronomically large
	if err != nil {
		t.Fatal(err)
	}
	if s.Enumerable() {
		t.Error("majority(25,49) reported enumerable")
	}
	if got := s.NumQuorums(); got != 0 {
		t.Errorf("NumQuorums = %d, want 0 for non-enumerable", got)
	}
}

func TestVerifyIntersectionSmallSystems(t *testing.T) {
	systems := []System{
		mustThreshold(t, 3, 5),
		mustThreshold(t, 5, 7),
		mustThreshold(t, 5, 6),
		mustThreshold(t, 2, 3),
		mustGrid(t, 2),
		mustGrid(t, 3),
		mustGrid(t, 4),
		Singleton{},
	}
	for _, s := range systems {
		if i, j := Verify(s); i != -1 {
			t.Errorf("%s: quorums %d and %d do not intersect", s.Name(), i, j)
		}
	}
}

func TestThresholdClosestQuorum(t *testing.T) {
	s := mustThreshold(t, 3, 5)
	cost := []float64{50, 10, 30, 20, 40}
	q, maxC := s.ClosestQuorum(cost)
	want := []int{1, 2, 3}
	if !equalInts(q, want) {
		t.Errorf("ClosestQuorum = %v, want %v", q, want)
	}
	if maxC != 30 {
		t.Errorf("max cost = %v, want 30", maxC)
	}
}

func TestThresholdClosestQuorumTies(t *testing.T) {
	s := mustThreshold(t, 2, 3)
	cost := []float64{5, 5, 5}
	q, maxC := s.ClosestQuorum(cost)
	if !equalInts(q, []int{0, 1}) || maxC != 5 {
		t.Errorf("ClosestQuorum with ties = %v max %v, want [0 1] max 5", q, maxC)
	}
}

func TestGridQuorumShape(t *testing.T) {
	s := mustGrid(t, 3)
	if s.UniverseSize() != 9 || s.QuorumSize() != 5 || s.NumQuorums() != 9 {
		t.Fatalf("grid(3) dims: n=%d q=%d m=%d", s.UniverseSize(), s.QuorumSize(), s.NumQuorums())
	}
	// Quorum for (row 1, col 2) = index 1*3+2 = 5.
	q := s.Quorum(5)
	want := []int{2, 3, 4, 5, 8} // row 1 = {3,4,5}; col 2 = {2,5,8}
	if !equalInts(q, want) {
		t.Errorf("Quorum(5) = %v, want %v", q, want)
	}
}

func TestGridClosestQuorumExhaustive(t *testing.T) {
	s := mustGrid(t, 4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		cost := randomCosts(rng, s.UniverseSize())
		_, got := s.ClosestQuorum(cost)
		want := math.Inf(1)
		for i := 0; i < s.NumQuorums(); i++ {
			if c := maxOver(cost, s.Quorum(i)); c < want {
				want = c
			}
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: ClosestQuorum cost = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestThresholdClosestQuorumIsOptimal(t *testing.T) {
	// Against brute force on an enumerable instance.
	s := mustThreshold(t, 4, 7)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		cost := randomCosts(rng, 7)
		_, got := s.ClosestQuorum(cost)
		want := math.Inf(1)
		for i := 0; i < s.NumQuorums(); i++ {
			if c := maxOver(cost, s.Quorum(i)); c < want {
				want = c
			}
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestUniformElementLoadMatchesEnumeration(t *testing.T) {
	systems := []System{
		mustThreshold(t, 3, 5),
		mustThreshold(t, 5, 7),
		mustGrid(t, 3),
		mustGrid(t, 5),
		Singleton{},
	}
	for _, s := range systems {
		m := s.NumQuorums()
		n := s.UniverseSize()
		counts := make([]int, n)
		for i := 0; i < m; i++ {
			for _, u := range s.Quorum(i) {
				counts[u]++
			}
		}
		want := s.UniformElementLoad()
		for u := 0; u < n; u++ {
			got := float64(counts[u]) / float64(m)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s: element %d load %v, want %v", s.Name(), u, got, want)
			}
		}
	}
}

func TestExpectedMaxUniformMatchesEnumeration(t *testing.T) {
	systems := []System{
		mustThreshold(t, 3, 5),
		mustThreshold(t, 4, 7),
		mustThreshold(t, 7, 9),
		mustGrid(t, 3),
		mustGrid(t, 4),
	}
	rng := rand.New(rand.NewSource(13))
	for _, s := range systems {
		for trial := 0; trial < 20; trial++ {
			cost := randomCosts(rng, s.UniverseSize())
			got := s.ExpectedMaxUniform(cost)
			sum := 0.0
			for i := 0; i < s.NumQuorums(); i++ {
				sum += maxOver(cost, s.Quorum(i))
			}
			want := sum / float64(s.NumQuorums())
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s trial %d: ExpectedMaxUniform = %v, enumeration = %v", s.Name(), trial, got, want)
			}
		}
	}
}

func TestExpectedMaxUniformNonEnumerable(t *testing.T) {
	// For a non-enumerable threshold, validate the order-statistics
	// formula against Monte Carlo sampling.
	s := mustThreshold(t, 17, 33)
	rng := rand.New(rand.NewSource(14))
	cost := randomCosts(rng, 33)
	got := s.ExpectedMaxUniform(cost)

	const samples = 200000
	sum := 0.0
	for i := 0; i < samples; i++ {
		perm := rng.Perm(33)
		maxC := math.Inf(-1)
		for _, u := range perm[:17] {
			if cost[u] > maxC {
				maxC = cost[u]
			}
		}
		sum += maxC
	}
	mc := sum / samples
	if math.Abs(got-mc) > 0.5 { // costs are in [0,100]; MC noise is small at 200k samples
		t.Errorf("ExpectedMaxUniform = %v, Monte Carlo = %v", got, mc)
	}
}

func TestExpectedMaxUniformEdgeCases(t *testing.T) {
	// q = n: expectation is exactly the max.
	all := mustThreshold(t, 5, 5)
	cost := []float64{3, 9, 1, 7, 5}
	if got := all.ExpectedMaxUniform(cost); got != 9 {
		t.Errorf("q=n: got %v, want 9", got)
	}
	// q = 1 with n = 1.
	single := mustThreshold(t, 1, 1)
	if got := single.ExpectedMaxUniform([]float64{4}); got != 4 {
		t.Errorf("q=n=1: got %v, want 4", got)
	}
	// Constant costs: expectation equals the constant for any system.
	s := mustThreshold(t, 9, 17)
	flat := make([]float64, 17)
	for i := range flat {
		flat[i] = 42
	}
	if got := s.ExpectedMaxUniform(flat); math.Abs(got-42) > 1e-9 {
		t.Errorf("constant costs: got %v, want 42", got)
	}
}

func TestExpectedMaxProbabilitiesSumToOne(t *testing.T) {
	// Property: with cost ≡ 1 the expectation must be exactly 1, which
	// verifies the order-statistic probabilities sum to 1 for random (q,n).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		q := n/2 + 1 + rng.Intn(n-n/2)
		if q > n {
			q = n
		}
		s, err := NewThreshold(q, n)
		if err != nil {
			return true // skip invalid draws
		}
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		return math.Abs(s.ExpectedMaxUniform(ones)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridQuorumsPairwiseIntersectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		s, err := NewGrid(k)
		if err != nil {
			return false
		}
		i, j := Verify(s)
		return i == -1 && j == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOptimalLoad(t *testing.T) {
	tests := []struct {
		s    System
		want float64
	}{
		{s: mustThreshold(t, 3, 5), want: 0.6},
		{s: mustGrid(t, 5), want: 9.0 / 25.0},
		{s: Singleton{}, want: 1},
	}
	for _, tc := range tests {
		if got := tc.s.OptimalLoad(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s OptimalLoad = %v, want %v", tc.s.Name(), got, tc.want)
		}
	}
}

func TestSingleton(t *testing.T) {
	s := Singleton{}
	if s.UniverseSize() != 1 || s.NumQuorums() != 1 || s.QuorumSize() != 1 {
		t.Error("singleton dimensions wrong")
	}
	q, c := s.ClosestQuorum([]float64{17})
	if !equalInts(q, []int{0}) || c != 17 {
		t.Errorf("ClosestQuorum = %v, %v", q, c)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0); err == nil {
		t.Error("NewGrid(0) succeeded")
	}
	if _, err := NewGrid(-2); err == nil {
		t.Error("NewGrid(-2) succeeded")
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k, want int
	}{
		{5, 3, 10}, {5, 0, 1}, {5, 5, 1}, {0, 0, 1},
		{5, 6, 0}, {5, -1, 0}, {10, 4, 210}, {20, 10, 184756},
	}
	for _, tc := range tests {
		if got := binomial(tc.n, tc.k); got != tc.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
	if got := binomial(161, 80); got <= maxEnumerable {
		t.Errorf("binomial(161,80) = %d, want saturation above %d", got, maxEnumerable)
	}
}

func mustThreshold(t *testing.T, q, n int) Threshold {
	t.Helper()
	s, err := NewThreshold(q, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustGrid(t *testing.T, k int) Grid {
	t.Helper()
	s, err := NewGrid(k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randomCosts(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 100
	}
	return out
}

func maxOver(cost []float64, elems []int) float64 {
	m := math.Inf(-1)
	for _, u := range elems {
		if cost[u] > m {
			m = cost[u]
		}
	}
	return m
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUniformTouchProbabilityMatchesEnumeration(t *testing.T) {
	systems := []System{
		mustThreshold(t, 3, 5),
		mustThreshold(t, 4, 7),
		mustGrid(t, 3),
		mustGrid(t, 4),
		Singleton{},
	}
	rng := rand.New(rand.NewSource(77))
	for _, s := range systems {
		n := s.UniverseSize()
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(n + 1)
			elems := rng.Perm(n)[:k]
			got := s.UniformTouchProbability(elems)
			inSet := make(map[int]bool, k)
			for _, u := range elems {
				inSet[u] = true
			}
			count := 0
			for i := 0; i < s.NumQuorums(); i++ {
				for _, u := range s.Quorum(i) {
					if inSet[u] {
						count++
						break
					}
				}
			}
			want := float64(count) / float64(s.NumQuorums())
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s k=%d: touch prob = %v, enumeration = %v", s.Name(), k, got, want)
			}
		}
	}
}

func TestUniformTouchProbabilityEdges(t *testing.T) {
	s := mustThreshold(t, 17, 33) // non-enumerable
	if got := s.UniformTouchProbability(nil); got != 0 {
		t.Errorf("empty set: %v, want 0", got)
	}
	all := make([]int, 33)
	for i := range all {
		all[i] = i
	}
	if got := s.UniformTouchProbability(all); got != 1 {
		t.Errorf("full set: %v, want 1", got)
	}
	// Duplicates must not change the result.
	a := s.UniformTouchProbability([]int{0, 1, 2})
	b := s.UniformTouchProbability([]int{0, 1, 2, 2, 1})
	if a != b {
		t.Errorf("duplicates changed result: %v vs %v", a, b)
	}
	// Out-of-range ids are ignored.
	c := s.UniformTouchProbability([]int{0, 1, 2, 99, -4})
	if a != c {
		t.Errorf("out-of-range ids changed result: %v vs %v", a, c)
	}
}
