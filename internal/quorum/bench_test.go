package quorum

import (
	"math/rand"
	"testing"
)

func benchCosts(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 200
	}
	return out
}

func BenchmarkThresholdClosestQuorum161(b *testing.B) {
	s, err := NewThreshold(81, 161)
	if err != nil {
		b.Fatal(err)
	}
	cost := benchCosts(161)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClosestQuorum(cost)
	}
}

func BenchmarkThresholdExpectedMax161(b *testing.B) {
	s, err := NewThreshold(81, 161)
	if err != nil {
		b.Fatal(err)
	}
	cost := benchCosts(161)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExpectedMaxUniform(cost)
	}
}

func BenchmarkGridClosestQuorum12(b *testing.B) {
	s, err := NewGrid(12)
	if err != nil {
		b.Fatal(err)
	}
	cost := benchCosts(144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ClosestQuorum(cost)
	}
}

func BenchmarkGridExpectedMax12(b *testing.B) {
	s, err := NewGrid(12)
	if err != nil {
		b.Fatal(err)
	}
	cost := benchCosts(144)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExpectedMaxUniform(cost)
	}
}

func BenchmarkSurviveGrid7(b *testing.B) {
	s, err := NewGrid(7)
	if err != nil {
		b.Fatal(err)
	}
	dead := []int{0, 8, 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Survive(s, dead); err != nil {
			b.Fatal(err)
		}
	}
}
