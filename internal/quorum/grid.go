package quorum

import (
	"fmt"
	"math"
)

// Grid is the k×k grid quorum system: the universe is arranged in a k×k
// grid (element u at row u/k, column u%k) and each quorum is the union of
// one full row and one full column (2k−1 elements). Any two quorums
// intersect because every row crosses every column. There are m = k²
// quorums, indexed by (row, column) pairs, which keeps the system
// enumerable for the access-strategy LP even at n = 169.
type Grid struct {
	k int
}

var _ System = Grid{}

// NewGrid returns the k×k grid system.
func NewGrid(k int) (Grid, error) {
	if k <= 0 {
		return Grid{}, fmt.Errorf("quorum: grid dimension %d must be positive", k)
	}
	return Grid{k: k}, nil
}

// Name implements System.
func (s Grid) Name() string { return fmt.Sprintf("grid(%dx%d)", s.k, s.k) }

// Dim returns k.
func (s Grid) Dim() int { return s.k }

// UniverseSize implements System.
func (s Grid) UniverseSize() int { return s.k * s.k }

// QuorumSize implements System.
func (s Grid) QuorumSize() int { return 2*s.k - 1 }

// Enumerable implements System.
func (s Grid) Enumerable() bool { return true }

// NumQuorums implements System.
func (s Grid) NumQuorums() int { return s.k * s.k }

// Quorum implements System. Quorum i corresponds to row i/k and column
// i%k; its elements are that row's cells plus that column's cells, sorted.
func (s Grid) Quorum(i int) []int {
	k := s.k
	if i < 0 || i >= k*k {
		panic(fmt.Sprintf("quorum: index %d out of range [0,%d)", i, k*k))
	}
	r, c := i/k, i%k
	out := make([]int, 0, 2*k-1)
	for row := 0; row < k; row++ {
		if row == r {
			// The whole row, including the (r, c) corner.
			for col := 0; col < k; col++ {
				out = append(out, row*k+col)
			}
		} else {
			out = append(out, row*k+c)
		}
	}
	return out
}

// ClosestQuorum implements System: evaluate all k² (row, column) pairs
// using precomputed per-row and per-column maxima.
func (s Grid) ClosestQuorum(cost []float64) ([]int, float64) {
	s.checkCost(cost)
	rowMax, colMax := s.lineMaxima(cost)
	k := s.k
	bestIdx, bestCost := 0, math.Inf(1)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			qc := math.Max(rowMax[r], colMax[c])
			if qc < bestCost {
				bestCost = qc
				bestIdx = r*k + c
			}
		}
	}
	return s.Quorum(bestIdx), bestCost
}

// UniformElementLoad implements System. Element (a, b) is in quorum (r, c)
// iff r = a or c = b, so its probability under a uniform quorum is
// 1/k + 1/k − 1/k² = (2k−1)/k², identical for every element.
func (s Grid) UniformElementLoad() float64 {
	k := float64(s.k)
	return (2*k - 1) / (k * k)
}

// ExpectedMaxUniform implements System: averages max(rowMax[r], colMax[c])
// over all k² quorums.
func (s Grid) ExpectedMaxUniform(cost []float64) float64 {
	s.checkCost(cost)
	rowMax, colMax := s.lineMaxima(cost)
	k := s.k
	sum := 0.0
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			sum += math.Max(rowMax[r], colMax[c])
		}
	}
	return sum / float64(k*k)
}

// OptimalLoad implements System: the uniform strategy achieves
// (2k−1)/k², which is optimal for the grid (its quorum size is 2k−1 and
// load is at least QuorumSize/n for any strategy by Naor & Wool).
func (s Grid) OptimalLoad() float64 { return s.UniformElementLoad() }

// UniformTouchProbability implements System. Quorum (r, c) touches the
// element set iff r is one of the set's occupied rows or c one of its
// occupied columns: P = (|R|·k + |C|·k − |R|·|C|)/k².
func (s Grid) UniformTouchProbability(elems []int) float64 {
	k := s.k
	rows := make(map[int]bool, len(elems))
	cols := make(map[int]bool, len(elems))
	for _, u := range elems {
		if u < 0 || u >= k*k {
			continue
		}
		rows[u/k] = true
		cols[u%k] = true
	}
	nr, nc := float64(len(rows)), float64(len(cols))
	fk := float64(k)
	return (nr*fk + nc*fk - nr*nc) / (fk * fk)
}

func (s Grid) lineMaxima(cost []float64) (rowMax, colMax []float64) {
	k := s.k
	rowMax = make([]float64, k)
	colMax = make([]float64, k)
	for i := range rowMax {
		rowMax[i] = math.Inf(-1)
		colMax[i] = math.Inf(-1)
	}
	for u, cu := range cost {
		r, c := u/k, u%k
		if cu > rowMax[r] {
			rowMax[r] = cu
		}
		if cu > colMax[c] {
			colMax[c] = cu
		}
	}
	return rowMax, colMax
}

func (s Grid) checkCost(cost []float64) {
	if len(cost) != s.k*s.k {
		panic(fmt.Sprintf("quorum: cost vector length %d, want %d", len(cost), s.k*s.k))
	}
	for _, c := range cost {
		if math.IsNaN(c) {
			panic("quorum: NaN cost")
		}
	}
}

// Singleton is the one-element quorum system: a single quorum containing
// the single universe element. It models the "one server" baseline whose
// placement at the graph median is a 2-approximation to the best possible
// network delay of any quorum system (Lin).
type Singleton struct{}

var _ System = Singleton{}

// Name implements System.
func (Singleton) Name() string { return "singleton" }

// UniverseSize implements System.
func (Singleton) UniverseSize() int { return 1 }

// QuorumSize implements System.
func (Singleton) QuorumSize() int { return 1 }

// Enumerable implements System.
func (Singleton) Enumerable() bool { return true }

// NumQuorums implements System.
func (Singleton) NumQuorums() int { return 1 }

// Quorum implements System.
func (Singleton) Quorum(i int) []int {
	if i != 0 {
		panic(fmt.Sprintf("quorum: index %d out of range [0,1)", i))
	}
	return []int{0}
}

// ClosestQuorum implements System.
func (Singleton) ClosestQuorum(cost []float64) ([]int, float64) {
	if len(cost) != 1 {
		panic(fmt.Sprintf("quorum: cost vector length %d, want 1", len(cost)))
	}
	return []int{0}, cost[0]
}

// UniformElementLoad implements System.
func (Singleton) UniformElementLoad() float64 { return 1 }

// ExpectedMaxUniform implements System.
func (Singleton) ExpectedMaxUniform(cost []float64) float64 {
	if len(cost) != 1 {
		panic(fmt.Sprintf("quorum: cost vector length %d, want 1", len(cost)))
	}
	return cost[0]
}

// OptimalLoad implements System: the lone element absorbs all demand.
func (Singleton) OptimalLoad() float64 { return 1 }

// UniformTouchProbability implements System.
func (Singleton) UniformTouchProbability(elems []int) float64 {
	for _, u := range elems {
		if u == 0 {
			return 1
		}
	}
	return 0
}
