package gap

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quorumnet/quorumnet/internal/lp"
)

func uniformCosts(nj, nm int, fn func(u, w int) float64) [][]float64 {
	out := make([][]float64, nj)
	for u := range out {
		out[u] = make([]float64, nm)
		for w := range out[u] {
			out[u][w] = fn(u, w)
		}
	}
	return out
}

func TestValidate(t *testing.T) {
	ok := &Instance{
		Sizes:      []float64{1, 1},
		Capacities: []float64{2, 2},
		Cost:       uniformCosts(2, 2, func(u, w int) float64 { return 1 }),
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	tests := []struct {
		name string
		ins  Instance
	}{
		{name: "empty", ins: Instance{}},
		{name: "cost rows", ins: Instance{Sizes: []float64{1}, Capacities: []float64{1}, Cost: nil}},
		{name: "negative size", ins: Instance{Sizes: []float64{-1}, Capacities: []float64{1}, Cost: uniformCosts(1, 1, func(u, w int) float64 { return 1 })}},
		{name: "nan cost", ins: Instance{Sizes: []float64{1}, Capacities: []float64{1}, Cost: [][]float64{{math.NaN()}}}},
		{name: "negative capacity", ins: Instance{Sizes: []float64{1}, Capacities: []float64{-2}, Cost: uniformCosts(1, 1, func(u, w int) float64 { return 1 })}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ins.Validate(); err == nil {
				t.Error("Validate succeeded, want error")
			}
		})
	}
}

func TestSolveLPTrivial(t *testing.T) {
	// Two jobs, two machines, capacities force the split.
	ins := &Instance{
		Sizes:      []float64{1, 1},
		Capacities: []float64{1, 1},
		Cost: [][]float64{
			{0, 10},
			{0, 10},
		},
	}
	x, err := SolveLP(ins)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	// Each job fully assigned; machine 0 can hold only one.
	load0 := x[0][0] + x[1][0]
	if load0 > 1+1e-6 {
		t.Errorf("machine 0 fractional load = %v > 1", load0)
	}
	for u := 0; u < 2; u++ {
		sum := x[u][0] + x[u][1]
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("job %d total fraction = %v, want 1", u, sum)
		}
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	ins := &Instance{
		Sizes:      []float64{1, 1, 1},
		Capacities: []float64{1, 1}, // total capacity 2 < 3
		Cost:       uniformCosts(3, 2, func(u, w int) float64 { return 1 }),
	}
	if _, err := SolveLP(ins); !errors.Is(err, lp.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveLPForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	ins := &Instance{
		Sizes:      []float64{1},
		Capacities: []float64{5, 5},
		Cost:       [][]float64{{inf, 3}},
	}
	x, err := SolveLP(ins)
	if err != nil {
		t.Fatalf("SolveLP: %v", err)
	}
	if x[0][0] != 0 {
		t.Errorf("forbidden pair got mass %v", x[0][0])
	}
	if math.Abs(x[0][1]-1) > 1e-6 {
		t.Errorf("x[0][1] = %v, want 1", x[0][1])
	}
}

func TestSolveLPAllForbidden(t *testing.T) {
	inf := math.Inf(1)
	ins := &Instance{
		Sizes:      []float64{1},
		Capacities: []float64{5},
		Cost:       [][]float64{{inf}},
	}
	if _, err := SolveLP(ins); !errors.Is(err, lp.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestFilterDropsExpensive(t *testing.T) {
	ins := &Instance{
		Sizes:      []float64{1},
		Capacities: []float64{1, 1, 1},
		Cost:       [][]float64{{1, 1, 100}},
	}
	x := Fractional{{0.45, 0.45, 0.1}}
	// C_u = 0.45 + 0.45 + 10 = 10.9; limit with eps=1 is 21.8 < 100.
	out, err := Filter(ins, x, 1)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if out[0][2] != 0 {
		t.Errorf("expensive assignment survived: %v", out[0][2])
	}
	if math.Abs(out[0][0]+out[0][1]-1) > 1e-9 {
		t.Errorf("renormalization failed: %v", out[0])
	}
}

func TestFilterZeroCost(t *testing.T) {
	// All support at cost 0: filtering must keep everything.
	ins := &Instance{
		Sizes:      []float64{1},
		Capacities: []float64{1, 1},
		Cost:       [][]float64{{0, 0}},
	}
	x := Fractional{{0.5, 0.5}}
	out, err := Filter(ins, x, 1)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if math.Abs(out[0][0]-0.5) > 1e-9 || math.Abs(out[0][1]-0.5) > 1e-9 {
		t.Errorf("Filter changed zero-cost solution: %v", out[0])
	}
}

func TestFilterBadEps(t *testing.T) {
	ins := &Instance{Sizes: []float64{1}, Capacities: []float64{1}, Cost: [][]float64{{1}}}
	if _, err := Filter(ins, Fractional{{1}}, 0); err == nil {
		t.Error("Filter with eps=0 succeeded")
	}
}

func TestRoundIntegralInput(t *testing.T) {
	// Already-integral fractional solution must round to itself.
	ins := &Instance{
		Sizes:      []float64{1, 1},
		Capacities: []float64{1, 1},
		Cost:       uniformCosts(2, 2, func(u, w int) float64 { return float64(u + w) }),
	}
	x := Fractional{{1, 0}, {0, 1}}
	assign, err := Round(ins, x)
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Errorf("assign = %v, want [0 1]", assign)
	}
}

func TestRoundSplitJob(t *testing.T) {
	// One job split across two machines must end on exactly one.
	ins := &Instance{
		Sizes:      []float64{1},
		Capacities: []float64{1, 1},
		Cost:       [][]float64{{2, 2}},
	}
	x := Fractional{{0.5, 0.5}}
	assign, err := Round(ins, x)
	if err != nil {
		t.Fatalf("Round: %v", err)
	}
	if assign[0] != 0 && assign[0] != 1 {
		t.Errorf("assign = %v", assign)
	}
}

func TestSolvePipelineSmall(t *testing.T) {
	// 4 jobs, 2 machines; optimum is checkable: capacities 2 and 2 force
	// a 2/2 split; cheapest split puts jobs {0,1} on machine 0.
	ins := &Instance{
		Sizes:      []float64{1, 1, 1, 1},
		Capacities: []float64{2, 2},
		Cost: [][]float64{
			{1, 5},
			{1, 5},
			{5, 1},
			{5, 1},
		},
	}
	a, err := Solve(ins, 1)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if a.MachineOf[0] != 0 || a.MachineOf[1] != 0 || a.MachineOf[2] != 1 || a.MachineOf[3] != 1 {
		t.Errorf("MachineOf = %v, want [0 0 1 1]", a.MachineOf)
	}
	if math.Abs(a.Cost-4) > 1e-9 {
		t.Errorf("Cost = %v, want 4", a.Cost)
	}
	if a.LPCost > a.Cost+1e-9 {
		t.Errorf("LP cost %v exceeds integral cost %v", a.LPCost, a.Cost)
	}
}

func TestSolveCapacityViolationBound(t *testing.T) {
	// Property (Shmoys–Tardos with Lin–Vitter eps=1): every machine load
	// is at most (1+eps)/eps × capacity + max job size = 2·cap + maxSize.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nj := 2 + rng.Intn(8)
		nm := 2 + rng.Intn(4)
		ins := &Instance{
			Sizes:      make([]float64, nj),
			Capacities: make([]float64, nm),
			Cost:       uniformCosts(nj, nm, func(u, w int) float64 { return rng.Float64() * 10 }),
		}
		maxSize := 0.0
		total := 0.0
		for u := range ins.Sizes {
			ins.Sizes[u] = 0.1 + rng.Float64()
			total += ins.Sizes[u]
			if ins.Sizes[u] > maxSize {
				maxSize = ins.Sizes[u]
			}
		}
		// Capacities sum to ~1.5× total size so the LP is feasible.
		for w := range ins.Capacities {
			ins.Capacities[w] = total * 1.5 / float64(nm) * (0.5 + rng.Float64())
		}
		a, err := Solve(ins, 1)
		if errors.Is(err, lp.ErrInfeasible) {
			return true // capacities happened to be too tight; fine
		}
		if err != nil {
			return false
		}
		for w, load := range a.Loads {
			if load > 2*ins.Capacities[w]+maxSize+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveCostNeverBelowLP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nj := 2 + rng.Intn(6)
		nm := 2 + rng.Intn(4)
		ins := &Instance{
			Sizes:      make([]float64, nj),
			Capacities: make([]float64, nm),
			Cost:       uniformCosts(nj, nm, func(u, w int) float64 { return rng.Float64() * 10 }),
		}
		for u := range ins.Sizes {
			ins.Sizes[u] = 1
		}
		for w := range ins.Capacities {
			ins.Capacities[w] = float64(nj) // generous: LP integral anyway
		}
		a, err := Solve(ins, 1)
		if err != nil {
			return false
		}
		return a.Cost >= a.LPCost-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveAssignsEveryJob(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		nj := 5 + rng.Intn(15)
		nm := 3 + rng.Intn(5)
		ins := &Instance{
			Sizes:      make([]float64, nj),
			Capacities: make([]float64, nm),
			Cost:       uniformCosts(nj, nm, func(u, w int) float64 { return rng.Float64() * 50 }),
		}
		total := 0.0
		for u := range ins.Sizes {
			ins.Sizes[u] = 0.5 + rng.Float64()
			total += ins.Sizes[u]
		}
		for w := range ins.Capacities {
			ins.Capacities[w] = 2 * total / float64(nm)
		}
		a, err := Solve(ins, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for u, w := range a.MachineOf {
			if w < 0 || w >= nm {
				t.Fatalf("trial %d: job %d assigned to %d", trial, u, w)
			}
		}
	}
}

func TestRoundRespectsSlotBound(t *testing.T) {
	// Direct check of the slot-rounding guarantee: machine load after
	// rounding <= fractional machine load + max job size.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		nj := 3 + rng.Intn(10)
		nm := 2 + rng.Intn(4)
		ins := &Instance{
			Sizes:      make([]float64, nj),
			Capacities: make([]float64, nm),
			Cost:       uniformCosts(nj, nm, func(u, w int) float64 { return rng.Float64() * 10 }),
		}
		maxSize := 0.0
		for u := range ins.Sizes {
			ins.Sizes[u] = 0.1 + rng.Float64()
			if ins.Sizes[u] > maxSize {
				maxSize = ins.Sizes[u]
			}
		}
		// Random fractional assignment with rows summing to 1.
		x := make(Fractional, nj)
		for u := range x {
			x[u] = make([]float64, nm)
			sum := 0.0
			for w := range x[u] {
				x[u][w] = rng.Float64()
				sum += x[u][w]
			}
			for w := range x[u] {
				x[u][w] /= sum
			}
		}
		assign, err := Round(ins, x)
		if err != nil {
			t.Fatalf("trial %d: Round: %v", trial, err)
		}
		fracLoad := make([]float64, nm)
		intLoad := make([]float64, nm)
		for u := 0; u < nj; u++ {
			for w := 0; w < nm; w++ {
				fracLoad[w] += ins.Sizes[u] * x[u][w]
			}
			intLoad[assign[u]] += ins.Sizes[u]
		}
		for w := 0; w < nm; w++ {
			if intLoad[w] > fracLoad[w]+maxSize+1e-6 {
				t.Fatalf("trial %d: machine %d load %v > fractional %v + max %v",
					trial, w, intLoad[w], fracLoad[w], maxSize)
			}
		}
	}
}
