// Package gap solves the generalized assignment problem instances arising
// in the paper's many-to-one quorum placement (§4.1.2): assign each job
// (universe element) to one machine (network node) minimizing total cost,
// subject to machine capacities, allowing the bounded capacity violation
// of the Shmoys–Tardos approximation.
//
// The pipeline mirrors the paper's description:
//
//  1. solve the LP relaxation (package lp),
//  2. apply Lin–Vitter filtering so no job stays fractionally assigned to
//     a machine much costlier than its fractional average, and
//  3. round via the Shmoys–Tardos slot construction: split each machine
//     into unit-capacity slots ordered by decreasing job size and solve
//     the resulting bipartite matching LP, whose vertices are integral.
//
// The rounded assignment's cost never exceeds the filtered LP cost, and
// each machine's load exceeds its filtered fractional load by at most one
// maximal job size — the "capacity exceeded by a small constant factor"
// the paper reports.
package gap

import (
	"fmt"
	"math"
	"sort"

	"github.com/quorumnet/quorumnet/internal/lp"
)

// Instance is a GAP instance. Cost[u][w] is the cost of placing job u on
// machine w; math.Inf(1) forbids the pair.
type Instance struct {
	Sizes      []float64   // job sizes (load), length = #jobs
	Capacities []float64   // machine capacities, length = #machines
	Cost       [][]float64 // #jobs × #machines
}

// Validate checks dimensions and value ranges.
func (ins *Instance) Validate() error {
	nj, nm := len(ins.Sizes), len(ins.Capacities)
	if nj == 0 || nm == 0 {
		return fmt.Errorf("gap: empty instance (%d jobs, %d machines)", nj, nm)
	}
	if len(ins.Cost) != nj {
		return fmt.Errorf("gap: cost has %d rows, want %d", len(ins.Cost), nj)
	}
	for u, row := range ins.Cost {
		if len(row) != nm {
			return fmt.Errorf("gap: cost row %d has %d entries, want %d", u, len(row), nm)
		}
		for w, c := range row {
			if math.IsNaN(c) || c < 0 {
				return fmt.Errorf("gap: invalid cost %v at (%d,%d)", c, u, w)
			}
		}
	}
	for u, s := range ins.Sizes {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("gap: invalid size %v for job %d", s, u)
		}
	}
	for w, c := range ins.Capacities {
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("gap: invalid capacity %v for machine %d", c, w)
		}
	}
	return nil
}

// Fractional is a fractional assignment: x[u][w] is the fraction of job u
// on machine w (rows sum to 1 over finite-cost machines).
type Fractional [][]float64

// SolveLP solves the LP relaxation:
//
//	min  Σ cost[u][w]·x[u][w]
//	s.t. Σ_w x[u][w] = 1          for every job u
//	     Σ_u size[u]·x[u][w] ≤ cap[w]  for every machine w
//	     x ≥ 0, x[u][w] = 0 where cost is infinite
//
// It returns lp.ErrInfeasible (wrapped) when capacities cannot host the
// jobs.
func SolveLP(ins *Instance) (Fractional, error) { return SolveLPWith(ins, lp.Options{}) }

// SolveLPWith is SolveLP with explicit solver options (e.g. partial
// pricing for speed where bit-reproducibility is not required).
func SolveLPWith(ins *Instance, opts lp.Options) (Fractional, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	nj, nm := len(ins.Sizes), len(ins.Capacities)

	// Map finite-cost pairs to LP variables.
	varID := make([][]int, nj)
	nVars := 0
	for u := 0; u < nj; u++ {
		varID[u] = make([]int, nm)
		for w := 0; w < nm; w++ {
			if math.IsInf(ins.Cost[u][w], 1) {
				varID[u][w] = -1
				continue
			}
			varID[u][w] = nVars
			nVars++
		}
	}
	if nVars == 0 {
		return nil, fmt.Errorf("gap: no admissible job-machine pairs: %w", lp.ErrInfeasible)
	}

	p := lp.NewProblem(nVars)
	for u := 0; u < nj; u++ {
		var idx []int
		var coef []float64
		for w := 0; w < nm; w++ {
			if id := varID[u][w]; id >= 0 {
				if err := p.SetObjectiveCoeff(id, ins.Cost[u][w]); err != nil {
					return nil, err
				}
				idx = append(idx, id)
				coef = append(coef, 1)
			}
		}
		if len(idx) == 0 {
			return nil, fmt.Errorf("gap: job %d has no admissible machine: %w", u, lp.ErrInfeasible)
		}
		if err := p.AddConstraint(idx, coef, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	for w := 0; w < nm; w++ {
		var idx []int
		var coef []float64
		for u := 0; u < nj; u++ {
			if id := varID[u][w]; id >= 0 && ins.Sizes[u] > 0 {
				idx = append(idx, id)
				coef = append(coef, ins.Sizes[u])
			}
		}
		if len(idx) == 0 {
			continue
		}
		if err := p.AddConstraint(idx, coef, lp.LE, ins.Capacities[w]); err != nil {
			return nil, err
		}
	}

	sol, err := p.SolveWith(opts)
	if err != nil {
		return nil, fmt.Errorf("gap: LP relaxation: %w", err)
	}

	x := make(Fractional, nj)
	for u := 0; u < nj; u++ {
		x[u] = make([]float64, nm)
		for w := 0; w < nm; w++ {
			if id := varID[u][w]; id >= 0 {
				v := sol.X[id]
				if v < 1e-9 {
					v = 0
				}
				x[u][w] = v
			}
		}
	}
	return x, nil
}

// Filter applies Lin–Vitter filtering with parameter eps > 0: for each
// job u with fractional average cost C_u, assignments to machines costing
// more than (1+eps)·C_u are dropped and the remainder renormalized. At
// least an eps/(1+eps) fraction of the mass survives, so renormalization
// inflates machine loads by at most (1+eps)/eps.
func Filter(ins *Instance, x Fractional, eps float64) (Fractional, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("gap: filter eps %v must be positive", eps)
	}
	nj, nm := len(ins.Sizes), len(ins.Capacities)
	out := make(Fractional, nj)
	for u := 0; u < nj; u++ {
		cu := 0.0
		for w := 0; w < nm; w++ {
			if x[u][w] > 0 {
				cu += x[u][w] * ins.Cost[u][w]
			}
		}
		limit := (1 + eps) * cu
		out[u] = make([]float64, nm)
		mass := 0.0
		for w := 0; w < nm; w++ {
			if x[u][w] > 0 && ins.Cost[u][w] <= limit+1e-12 {
				out[u][w] = x[u][w]
				mass += x[u][w]
			}
		}
		if mass <= 0 {
			return nil, fmt.Errorf("gap: filtering removed all assignments for job %d", u)
		}
		for w := 0; w < nm; w++ {
			out[u][w] /= mass
		}
	}
	return out, nil
}

// Round converts a fractional assignment into an integral one using the
// Shmoys–Tardos slot construction. The returned slice maps each job to
// its machine. Machine loads exceed the fractional loads of x by at most
// the largest job size assigned fractionally to that machine.
func Round(ins *Instance, x Fractional) ([]int, error) { return RoundWith(ins, x, lp.Options{}) }

// RoundWith is Round with explicit solver options.
func RoundWith(ins *Instance, x Fractional, opts lp.Options) ([]int, error) {
	nj, nm := len(ins.Sizes), len(ins.Capacities)

	type slotRef struct {
		machine int
		slot    int
	}
	// Build slots per machine: jobs sorted by decreasing size are packed
	// into consecutive unit-capacity slots; a job-slot edge exists for
	// every slot its interval overlaps.
	type edge struct {
		job  int
		slot int // global slot id
		cost float64
	}
	var edges []edge
	var slots []slotRef
	for w := 0; w < nm; w++ {
		var jobs []int
		for u := 0; u < nj; u++ {
			if x[u][w] > 1e-12 {
				jobs = append(jobs, u)
			}
		}
		sort.Slice(jobs, func(a, b int) bool {
			if ins.Sizes[jobs[a]] != ins.Sizes[jobs[b]] {
				return ins.Sizes[jobs[a]] > ins.Sizes[jobs[b]]
			}
			return jobs[a] < jobs[b]
		})
		pos := 0.0
		base := len(slots)
		slotCount := 0
		ensure := func(s int) {
			for slotCount <= s {
				slots = append(slots, slotRef{machine: w, slot: slotCount})
				slotCount++
			}
		}
		for _, u := range jobs {
			f := x[u][w]
			start := pos
			end := pos + f
			firstSlot := int(start + 1e-12)
			lastSlot := int(end - 1e-12)
			if lastSlot < firstSlot {
				lastSlot = firstSlot
			}
			ensure(lastSlot)
			for s := firstSlot; s <= lastSlot; s++ {
				edges = append(edges, edge{job: u, slot: base + s, cost: ins.Cost[u][w]})
			}
			pos = end
		}
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("gap: fractional assignment has empty support: %w", lp.ErrInfeasible)
	}

	// Bipartite matching LP: integral at vertices, so simplex yields a
	// 0/1 solution.
	p := lp.NewProblem(len(edges))
	jobEdges := make([][]int, nj)
	slotEdges := make([][]int, len(slots))
	for id, e := range edges {
		if err := p.SetObjectiveCoeff(id, e.cost); err != nil {
			return nil, err
		}
		jobEdges[e.job] = append(jobEdges[e.job], id)
		slotEdges[e.slot] = append(slotEdges[e.slot], id)
	}
	ones := func(k int) []float64 {
		o := make([]float64, k)
		for i := range o {
			o[i] = 1
		}
		return o
	}
	for u := 0; u < nj; u++ {
		if len(jobEdges[u]) == 0 {
			return nil, fmt.Errorf("gap: job %d lost all assignments during rounding", u)
		}
		if err := p.AddConstraint(jobEdges[u], ones(len(jobEdges[u])), lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	for s := range slots {
		if len(slotEdges[s]) == 0 {
			continue
		}
		if err := p.AddConstraint(slotEdges[s], ones(len(slotEdges[s])), lp.LE, 1); err != nil {
			return nil, err
		}
	}
	sol, err := p.SolveWith(opts)
	if err != nil {
		return nil, fmt.Errorf("gap: matching LP: %w", err)
	}

	assign := make([]int, nj)
	for u := range assign {
		assign[u] = -1
	}
	for id, e := range edges {
		if sol.X[id] > 0.5 {
			if assign[e.job] != -1 && assign[e.job] != slots[e.slot].machine {
				return nil, fmt.Errorf("gap: job %d matched to two machines (non-integral vertex?)", e.job)
			}
			assign[e.job] = slots[e.slot].machine
		}
	}
	for u, w := range assign {
		if w == -1 {
			return nil, fmt.Errorf("gap: job %d unassigned after rounding", u)
		}
	}
	return assign, nil
}

// Assignment is the result of the full pipeline.
type Assignment struct {
	// MachineOf maps each job to its machine.
	MachineOf []int
	// Cost is the total assignment cost.
	Cost float64
	// Loads is the per-machine load of the integral assignment.
	Loads []float64
	// LPCost is the cost of the (unfiltered) LP relaxation, a lower bound
	// on the optimal integral cost.
	LPCost float64
}

// Solve runs LP → filter(eps) → round and summarizes the result.
func Solve(ins *Instance, eps float64) (*Assignment, error) {
	return SolveWith(ins, eps, lp.Options{})
}

// SolveWith is Solve with explicit solver options, threaded through both
// the relaxation and the matching LP.
func SolveWith(ins *Instance, eps float64, opts lp.Options) (*Assignment, error) {
	x, err := SolveLPWith(ins, opts)
	if err != nil {
		return nil, err
	}
	lpCost := 0.0
	for u := range x {
		for w, v := range x[u] {
			if v > 0 {
				lpCost += v * ins.Cost[u][w]
			}
		}
	}
	filtered, err := Filter(ins, x, eps)
	if err != nil {
		return nil, err
	}
	assign, err := RoundWith(ins, filtered, opts)
	if err != nil {
		return nil, err
	}
	out := &Assignment{
		MachineOf: assign,
		Loads:     make([]float64, len(ins.Capacities)),
		LPCost:    lpCost,
	}
	for u, w := range assign {
		out.Cost += ins.Cost[u][w]
		out.Loads[w] += ins.Sizes[u]
	}
	return out, nil
}
