package graph

import (
	"math/rand"
	"testing"
)

// randSparse builds a connected random graph with n nodes and roughly
// n*deg/2 undirected edges: a random spanning tree plus random extras.
func randSparse(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if err := g.AddEdge(u, v, 1+rng.Float64()*99); err != nil {
			panic(err)
		}
	}
	extra := n * (deg - 2) / 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := g.AddEdge(u, v, 1+rng.Float64()*99); err != nil {
			panic(err)
		}
	}
	return g
}

// BenchmarkShortestFrom counts allocations of a single-source Dijkstra on
// a 1024-node sparse graph. The container/heap baseline allocated on every
// push (interface boxing); the indexed 4-ary heap should allocate only the
// returned distance slice plus its one-time workspace.
func BenchmarkShortestFrom(b *testing.B) {
	g := randSparse(1024, 6, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ShortestFrom(i % g.NumNodes())
	}
}

// BenchmarkClosure compares the parallel sparse closure against the dense
// Floyd–Warshall fallback on a 1k-node AS-scale sparse graph. The ratio of
// the two is the closure speedup BENCH_plan.json tracks.
func BenchmarkClosure(b *testing.B) {
	g := randSparse(1000, 6, 2)
	b.Run("sparse-1k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.sparseClosure(0)
		}
	})
	b.Run("dense-fw-1k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := g.edgeMatrix()
			m.MetricClosure()
		}
	})
}
