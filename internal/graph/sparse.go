package graph

import (
	"sync"

	"github.com/quorumnet/quorumnet/internal/par"
)

// csr is a compressed-sparse-row view of the adjacency lists: one flat
// half-edge array indexed by per-node offsets. Dijkstra's inner loop walks
// it with sequential loads instead of chasing per-node slice headers, which
// is where most of the cache misses in the slice-of-slices layout came
// from. It is built once per closure and shared read-only by all workers.
type csr struct {
	ptr []int32   // node -> first half-edge index; len n+1
	to  []int32   // half-edge target
	w   []float64 // half-edge length
}

func newCSR(g *Graph) *csr {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	c := &csr{
		ptr: make([]int32, g.n+1),
		to:  make([]int32, total),
		w:   make([]float64, total),
	}
	k := 0
	for u, es := range g.adj {
		c.ptr[u] = int32(k)
		for _, e := range es {
			c.to[k] = int32(e.to)
			c.w[k] = e.length
			k++
		}
	}
	c.ptr[g.n] = int32(k)
	return c
}

// heapEntry is one slot of the 4-ary heap: the tentative distance is
// embedded next to the node id so sibling comparisons during sift-down are
// sequential loads (four children share a cache line) instead of random
// accesses into the distance slice — which profiling showed was where half
// the closure time went.
type heapEntry struct {
	key  float64
	node int32
}

// dijkstra is a reusable single-source shortest-path workspace: an
// index-addressed 4-ary min-heap with a node->slot position table for
// decrease-key. A run performs no heap allocations, so the all-pairs
// closure can fan thousands of sources across a worker pool without
// garbage-collector pressure. The 4-ary layout trades slightly more
// comparisons per sift-down for half the tree depth and better cache
// locality than a binary heap.
type dijkstra struct {
	c    *csr
	heap []heapEntry
	pos  []int32 // node -> slot in heap, or -1 when not enqueued
}

func newDijkstra(c *csr, n int) *dijkstra {
	d := &dijkstra{c: c, heap: make([]heapEntry, 0, n), pos: make([]int32, n)}
	for i := range d.pos {
		d.pos[i] = -1
	}
	return d
}

// run fills dist (length n) with shortest-path distances from src.
// Unreachable nodes get Inf. Every node that enters the heap leaves it,
// with pos reset to -1 on pop, so the workspace is clean for the next run.
func (d *dijkstra) run(src int, dist []float64) {
	for i := range dist {
		dist[i] = Inf
	}
	d.heap = d.heap[:0]
	dist[src] = 0
	d.push(heapEntry{key: 0, node: int32(src)})
	ptr, to, w := d.c.ptr, d.c.to, d.c.w
	for len(d.heap) > 0 {
		top := d.popMin()
		du := top.key
		for k, end := ptr[top.node], ptr[top.node+1]; k < end; k++ {
			if nd := du + w[k]; nd < dist[to[k]] {
				dist[to[k]] = nd
				d.decrease(heapEntry{key: nd, node: to[k]})
			}
		}
	}
}

// runGraph is run over the graph's adjacency lists directly, for
// single-source callers that don't amortize a CSR build across sources.
func (d *dijkstra) runGraph(g *Graph, src int, dist []float64) {
	for i := range dist {
		dist[i] = Inf
	}
	d.heap = d.heap[:0]
	dist[src] = 0
	d.push(heapEntry{key: 0, node: int32(src)})
	for len(d.heap) > 0 {
		top := d.popMin()
		du := top.key
		for _, e := range g.adj[top.node] {
			if nd := du + e.length; nd < dist[e.to] {
				dist[e.to] = nd
				d.decrease(heapEntry{key: nd, node: int32(e.to)})
			}
		}
	}
}

func (d *dijkstra) push(e heapEntry) {
	d.heap = append(d.heap, e)
	d.siftUp(len(d.heap)-1, e)
}

// decrease restores heap order after e.node's key dropped, inserting it if
// not currently enqueued. Keys only ever decrease, so a sift-up suffices.
func (d *dijkstra) decrease(e heapEntry) {
	if p := d.pos[e.node]; p >= 0 {
		d.siftUp(int(p), e)
	} else {
		d.push(e)
	}
}

func (d *dijkstra) popMin() heapEntry {
	h := d.heap
	min := h[0]
	d.pos[min.node] = -1
	last := h[len(h)-1]
	d.heap = h[:len(h)-1]
	if len(d.heap) > 0 {
		d.siftDown(0, last)
	}
	return min
}

func (d *dijkstra) siftUp(i int, e heapEntry) {
	h := d.heap
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if p.key <= e.key {
			break
		}
		h[i] = p
		d.pos[p.node] = int32(i)
		i = parent
	}
	h[i] = e
	d.pos[e.node] = int32(i)
}

func (d *dijkstra) siftDown(i int, e heapEntry) {
	h := d.heap
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		var mc int
		var md float64
		if c+3 < n {
			// Full fan of four children: a two-level min tree keeps the
			// four key loads and the first two comparisons independent,
			// which matters because mispredicted child comparisons are
			// what dominates pop cost on sparse graphs.
			d0, d1, d2, d3 := h[c].key, h[c+1].key, h[c+2].key, h[c+3].key
			m01, i01 := d0, c
			if d1 < d0 {
				m01, i01 = d1, c+1
			}
			m23, i23 := d2, c+2
			if d3 < d2 {
				m23, i23 = d3, c+3
			}
			mc, md = i01, m01
			if m23 < m01 {
				mc, md = i23, m23
			}
		} else {
			mc, md = c, h[c].key
			for k := c + 1; k < n; k++ {
				if dk := h[k].key; dk < md {
					mc, md = k, dk
				}
			}
		}
		if md >= e.key {
			break
		}
		h[i] = h[mc]
		d.pos[h[i].node] = int32(i)
		i = mc
	}
	h[i] = e
	d.pos[e.node] = int32(i)
}

// dial is Dijkstra over a cyclic bucket queue (Dial's algorithm): with
// bucket width δ = the minimum edge length, a node popped from the lowest
// nonempty bucket is settled — any edge out of the current bucket lands at
// least one bucket later (du + w ≥ du + δ), so no intra-bucket improvement
// is possible and entries may pop in any order within a bucket. All queue
// operations are array pushes/pops plus integer arithmetic; profiling
// showed the comparison-based heap spends most of the closure in branch
// mispredictions on random keys, which this structure avoids entirely
// (~2× per source on AS-like graphs). Improved nodes are re-pushed
// lazily; stale entries are skipped on pop.
//
// The active key range at any time spans at most the maximum edge length,
// so ceil(cmax/δ)+2 cyclic buckets never collide. Eligibility (positive
// minimum length, bounded cmax/cmin ratio) is checked by dialEligible;
// ineligible graphs use the 4-ary heap instead.
type dial struct {
	c       *csr
	buckets [][]heapEntry // cyclic, indexed by floor(dist/δ) mod len
	inv     float64       // 1/δ
	count   int
	curAbs  int64 // absolute bucket index of the sweep position
}

// maxDialBuckets caps the bucket array; graphs whose edge-length ratio
// exceeds it fall back to the heap-based engine.
const maxDialBuckets = 1 << 14

// edgeLengthRange returns the minimum and maximum edge length (0, 0 for an
// edgeless graph).
func (c *csr) edgeLengthRange() (cmin, cmax float64) {
	if len(c.w) == 0 {
		return 0, 0
	}
	cmin, cmax = c.w[0], c.w[0]
	for _, w := range c.w[1:] {
		if w < cmin {
			cmin = w
		}
		if w > cmax {
			cmax = w
		}
	}
	return cmin, cmax
}

func dialEligible(cmin, cmax float64) bool {
	return cmin > 0 && cmax/cmin <= maxDialBuckets-2
}

func newDial(c *csr, cmin, cmax float64) *dial {
	nb := int(cmax/cmin) + 3
	return &dial{c: c, buckets: make([][]heapEntry, nb), inv: 1 / cmin}
}

func (q *dial) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.count = 0
	q.curAbs = 0
}

func (q *dial) push(d float64, node int32) {
	b := int(int64(d*q.inv) % int64(len(q.buckets)))
	q.buckets[b] = append(q.buckets[b], heapEntry{key: d, node: node})
	q.count++
}

func (q *dial) pop() heapEntry {
	b := int(q.curAbs % int64(len(q.buckets)))
	for len(q.buckets[b]) == 0 {
		q.curAbs++
		b = int(q.curAbs % int64(len(q.buckets)))
	}
	bk := q.buckets[b]
	e := bk[len(bk)-1]
	q.buckets[b] = bk[:len(bk)-1]
	q.count--
	return e
}

// run fills dist (length n) with shortest-path distances from src, exactly
// like (*dijkstra).run but over the bucket queue.
func (q *dial) run(src int, dist []float64) {
	for i := range dist {
		dist[i] = Inf
	}
	q.reset()
	dist[src] = 0
	q.push(0, int32(src))
	ptr, to, w := q.c.ptr, q.c.to, q.c.w
	for q.count > 0 {
		top := q.pop()
		if top.key > dist[top.node] {
			continue // stale: improved after this entry was queued
		}
		du := top.key
		for k, end := ptr[top.node], ptr[top.node+1]; k < end; k++ {
			if nd := du + w[k]; nd < dist[to[k]] {
				dist[to[k]] = nd
				q.push(nd, to[k])
			}
		}
	}
}

// closureDense selects between the sparse all-pairs-Dijkstra path
// and the dense Floyd–Warshall fallback: with m edges, n Dijkstra runs cost
// O(n·m·log n) versus Floyd–Warshall's O(n³), so the sparse path wins
// whenever m is well below n². The factor 8 keeps small dense graphs (where
// the fused FW loop is fastest) on the dense path.
func closureDense(n, edges int) bool { return n > 0 && 8*edges >= n*n }

// Closure returns the shortest-path distance matrix (metric closure) of the
// graph. Sparse graphs run Dijkstra from every source, fanned out across a
// worker pool (workers <= 0 means GOMAXPROCS); dense graphs fall back to
// MetricClosure's Floyd–Warshall, which is faster when most pairs are
// already edges. Both paths symmetrize with the minimum of the two
// directions, so the result is exactly symmetric with a zero diagonal.
// Disconnected pairs are Inf.
func (g *Graph) Closure(workers int) *Matrix {
	if closureDense(g.n, g.NumEdges()) {
		m := g.edgeMatrix()
		m.MetricClosure()
		return m
	}
	return g.sparseClosure(workers)
}

// edgeMatrix returns the direct-edge distance matrix: 0 on the diagonal,
// the minimum parallel-edge length where an edge exists, Inf elsewhere.
func (g *Graph) edgeMatrix() *Matrix {
	m := NewMatrix(g.n)
	for i := 0; i < g.n; i++ {
		row := m.rows[i]
		for j := range row {
			row[j] = Inf
		}
		row[i] = 0
	}
	for u := 0; u < g.n; u++ {
		row := m.rows[u]
		for _, e := range g.adj[u] {
			if e.length < row[e.to] {
				row[e.to] = e.length
			}
		}
	}
	return m
}

// ssspRunner is a single-source shortest-path engine over a shared CSR:
// either the bucket-queue dial (preferred when the edge-length ratio is
// bounded) or the 4-ary-heap dijkstra (always valid).
type ssspRunner interface {
	run(src int, dist []float64)
}

// sparseClosure runs Dijkstra from every source in parallel, each worker
// reusing a pooled workspace and writing straight into its matrix row, then
// symmetrizes in two triangle passes (read-lower/write-upper, then
// read-upper/write-lower) so no two goroutines touch the same cell.
func (g *Graph) sparseClosure(workers int) *Matrix {
	m := NewMatrix(g.n)
	c := newCSR(g)
	cmin, cmax := c.edgeLengthRange()
	newRunner := func() ssspRunner { return newDijkstra(c, g.n) }
	if dialEligible(cmin, cmax) {
		newRunner = func() ssspRunner { return newDial(c, cmin, cmax) }
	}
	pool := sync.Pool{New: func() any { return newRunner() }}
	par.For(g.n, workers, func(src int) {
		d := pool.Get().(ssspRunner)
		d.run(src, m.rows[src])
		pool.Put(d)
	})
	par.For(g.n, workers, func(i int) {
		ri := m.rows[i]
		for j := i + 1; j < g.n; j++ {
			if d := m.rows[j][i]; d < ri[j] {
				ri[j] = d
			}
		}
	})
	par.For(g.n, workers, func(j int) {
		rj := m.rows[j]
		for i := 0; i < j; i++ {
			rj[i] = m.rows[i][j]
		}
	})
	return m
}

// Connected reports whether every node is reachable from node 0 (true for
// the empty graph). It is a single O(n + m) traversal, used to reject
// topologies whose closure would contain Inf distances.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := make([]int32, 0, g.n)
	seen[0] = true
	stack = append(stack, 0)
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, int32(e.to))
			}
		}
	}
	return count == g.n
}
