// Package graph provides the weighted-graph substrate used to model
// wide-area networks: an undirected graph with non-negative edge lengths,
// all-pairs shortest paths, metric closure, graph medians, and distance
// balls.
//
// The paper models the network as an undirected graph G = (V, E) with a
// positive length on each edge, inducing a distance function d(v, w) equal
// to the length of the shortest path between v and w. Everything downstream
// (placement, strategies, response-time evaluation) consumes only that
// metric, which this package computes.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Inf is the distance reported between disconnected nodes.
var Inf = math.Inf(1)

// Graph is an undirected graph with non-negative edge lengths. The zero
// value is an empty graph; add nodes with AddNodes and edges with AddEdge.
// Parallel edges are permitted; shortest-path computations use the minimum
// length among them. Self-loops are ignored for distance purposes.
type Graph struct {
	n   int
	adj [][]halfEdge
}

type halfEdge struct {
	to     int
	length float64
}

// New returns a graph with n nodes, numbered 0..n-1, and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of undirected edges added to the graph.
func (g *Graph) NumEdges() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// AddNodes appends k nodes to the graph and returns the index of the first
// new node.
func (g *Graph) AddNodes(k int) int {
	if k < 0 {
		panic("graph: negative node count")
	}
	first := g.n
	g.n += k
	g.adj = append(g.adj, make([][]halfEdge, k)...)
	return first
}

// AddEdge adds an undirected edge between u and v with the given length.
// It returns an error if either endpoint is out of range or the length is
// negative or NaN. Adding a self-loop is an error: self-distances are
// always zero.
func (g *Graph) AddEdge(u, v int, length float64) error {
	switch {
	case u < 0 || u >= g.n:
		return fmt.Errorf("graph: node %d out of range [0,%d)", u, g.n)
	case v < 0 || v >= g.n:
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, g.n)
	case u == v:
		return errors.New("graph: self-loop edges are not allowed")
	case math.IsNaN(length) || length < 0:
		return fmt.Errorf("graph: invalid edge length %v", length)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: v, length: length})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, length: length})
	return nil
}

// Neighbors calls fn for every half-edge leaving u.
func (g *Graph) Neighbors(u int, fn func(v int, length float64)) {
	for _, e := range g.adj[u] {
		fn(e.to, e.length)
	}
}

// ShortestFrom computes single-source shortest-path distances from src to
// every node using Dijkstra's algorithm over an index-addressed 4-ary heap
// (see sparse.go). Unreachable nodes get Inf.
func (g *Graph) ShortestFrom(src int) []float64 {
	if src < 0 || src >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range [0,%d)", src, g.n))
	}
	dist := make([]float64, g.n)
	newDijkstra(nil, g.n).runGraph(g, src, dist)
	return dist
}

// AllPairs computes the full shortest-path distance matrix serially. It
// runs Dijkstra from every node, reusing one workspace. The result is
// exactly symmetric: the two directions of each pair can accumulate
// floating-point error in different orders, so the minimum of the two is
// used. Closure is the parallel, auto-selecting variant.
func (g *Graph) AllPairs() *Matrix {
	m := NewMatrix(g.n)
	d := newDijkstra(newCSR(g), g.n)
	for v := 0; v < g.n; v++ {
		d.run(v, m.rows[v])
	}
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			d := math.Min(m.rows[i][j], m.rows[j][i])
			m.rows[i][j] = d
			m.rows[j][i] = d
		}
	}
	return m
}

// Matrix is a symmetric distance matrix: the metric d(v, w) induced by a
// graph, or loaded directly from measurements.
type Matrix struct {
	n    int
	rows [][]float64
}

// NewMatrix returns an n×n matrix of zero distances.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("graph: negative matrix size")
	}
	rows := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range rows {
		rows[i], backing = backing[:n:n], backing[n:]
	}
	return &Matrix{n: n, rows: rows}
}

// Size returns the number of nodes the matrix covers.
func (m *Matrix) Size() int { return m.n }

// At returns d(u, v).
func (m *Matrix) At(u, v int) float64 { return m.rows[u][v] }

// Set assigns d(u, v) and d(v, u).
func (m *Matrix) Set(u, v int, d float64) {
	m.rows[u][v] = d
	m.rows[v][u] = d
}

// Row returns the distances from u to every node. The returned slice is a
// copy; mutating it does not affect the matrix.
func (m *Matrix) Row(u int) []float64 {
	out := make([]float64, m.n)
	copy(out, m.rows[u])
	return out
}

// RowView returns the internal row for u. Callers must not mutate it; use
// Row for a safe copy. It exists to avoid per-call allocation in the inner
// loops of evaluators.
func (m *Matrix) RowView(u int) []float64 { return m.rows[u] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		copy(out.rows[i], m.rows[i])
	}
	return out
}

// MetricClosure replaces the matrix with the shortest-path metric it
// induces: treating each finite entry as an edge, it runs Floyd–Warshall so
// that the result satisfies the triangle inequality. Diagonal entries are
// forced to zero and the matrix is symmetrized (using the min of the two
// directions) first, so slightly asymmetric measured data is accepted.
func (m *Matrix) MetricClosure() {
	n := m.n
	for i := 0; i < n; i++ {
		m.rows[i][i] = 0
		for j := i + 1; j < n; j++ {
			d := math.Min(m.rows[i][j], m.rows[j][i])
			m.rows[i][j] = d
			m.rows[j][i] = d
		}
	}
	for k := 0; k < n; k++ {
		rk := m.rows[k]
		for i := 0; i < n; i++ {
			ri := m.rows[i]
			dik := ri[k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + rk[j]; nd < ri[j] {
					ri[j] = nd
				}
			}
		}
	}
}

// IsMetric reports whether the matrix is symmetric with a zero diagonal and
// satisfies the triangle inequality to within tol.
func (m *Matrix) IsMetric(tol float64) bool {
	n := m.n
	for i := 0; i < n; i++ {
		if m.rows[i][i] != 0 {
			return false
		}
		for j := 0; j < n; j++ {
			if math.Abs(m.rows[i][j]-m.rows[j][i]) > tol {
				return false
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.rows[i][j] > m.rows[i][k]+m.rows[k][j]+tol {
					return false
				}
			}
		}
	}
	return true
}

// Median returns the node minimizing the sum of distances from every node
// to it (the 1-median of the metric), along with that average distance.
// Ties are broken toward the lower node index, so results are
// deterministic. The paper's singleton placement targets this node.
func (m *Matrix) Median() (node int, avgDist float64) {
	if m.n == 0 {
		panic("graph: median of empty matrix")
	}
	best, bestSum := 0, Inf
	for w := 0; w < m.n; w++ {
		sum := 0.0
		for v := 0; v < m.n; v++ {
			sum += m.rows[v][w]
		}
		if sum < bestSum {
			best, bestSum = w, sum
		}
	}
	return best, bestSum / float64(m.n)
}

// Ball returns the k nodes closest to center (including center itself),
// ordered by increasing distance with ties broken by node index. It panics
// if k exceeds the node count. This is the ball B(v0, k) used by the
// one-to-one Majority placement.
func (m *Matrix) Ball(center, k int) []int {
	if k < 0 || k > m.n {
		panic(fmt.Sprintf("graph: ball size %d out of range [0,%d]", k, m.n))
	}
	idx := make([]int, m.n)
	for i := range idx {
		idx[i] = i
	}
	row := m.rows[center]
	// Stable selection by (distance, index): a full sort keeps the code
	// simple at these sizes.
	sortByDist(idx, row)
	return idx[:k]
}

// AvgDistanceTo returns the average distance from all nodes to w.
func (m *Matrix) AvgDistanceTo(w int) float64 {
	sum := 0.0
	for v := 0; v < m.n; v++ {
		sum += m.rows[v][w]
	}
	return sum / float64(m.n)
}

// sortByDist sorts idx by (dist[idx], idx) ascending.
func sortByDist(idx []int, dist []float64) {
	sort.Slice(idx, func(a, b int) bool {
		if dist[idx[a]] != dist[idx[b]] {
			return dist[idx[a]] < dist[idx[b]]
		}
		return idx[a] < idx[b]
	})
}
