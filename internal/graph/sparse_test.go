package graph

import (
	"math"
	"math/rand"
	"testing"
)

// refClosure is the trusted oracle: the direct-edge matrix run through the
// dense Floyd–Warshall MetricClosure.
func refClosure(g *Graph) *Matrix {
	m := g.edgeMatrix()
	m.MetricClosure()
	return m
}

func matricesEqual(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("size mismatch: got %d, want %d", got.Size(), want.Size())
	}
	for i := 0; i < got.Size(); i++ {
		for j := 0; j < got.Size(); j++ {
			a, b := got.At(i, j), want.At(i, j)
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("d(%d,%d): got %v, want %v", i, j, a, b)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > tol {
				t.Fatalf("d(%d,%d): got %v, want %v (|diff| > %v)", i, j, a, b, tol)
			}
		}
	}
}

// TestSparseClosureMatchesMetricClosure is the tentpole property test:
// the parallel all-pairs-Dijkstra closure must agree with Floyd–Warshall
// on random sparse graphs, at every worker count.
func TestSparseClosureMatchesMetricClosure(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		deg := 2 + rng.Intn(4)
		g := randSparse(n, deg, seed+100)
		want := refClosure(g)
		for _, workers := range []int{1, 2, 7, 0} {
			matricesEqual(t, g.sparseClosure(workers), want, 1e-9)
		}
		// The public entry point must agree regardless of which branch
		// the density heuristic picks.
		matricesEqual(t, g.Closure(0), want, 1e-9)
	}
}

// TestSSSPEnginesAgree runs both single-source engines (bucket-queue dial
// and 4-ary-heap dijkstra) over the same CSR and demands identical
// distances, including on graphs whose edge-length ratio would normally
// disqualify dial.
func TestSSSPEnginesAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randSparse(120, 4, seed)
		c := newCSR(g)
		cmin, cmax := c.edgeLengthRange()
		if !dialEligible(cmin, cmax) {
			t.Fatalf("seed %d: randSparse weights should be dial-eligible", seed)
		}
		q := newDial(c, cmin, cmax)
		d := newDijkstra(c, g.NumNodes())
		got := make([]float64, g.NumNodes())
		want := make([]float64, g.NumNodes())
		for src := 0; src < g.NumNodes(); src += 11 {
			q.run(src, got)
			d.run(src, want)
			for v := range got {
				if math.Abs(got[v]-want[v]) > 1e-12 {
					t.Fatalf("seed %d src %d node %d: dial %v, heap %v", seed, src, v, got[v], want[v])
				}
			}
		}
	}
}

// TestSparseClosureHugeWeightRatio forces the heap fallback inside
// sparseClosure: one near-zero edge makes cmax/cmin exceed the dial bucket
// cap, and the closure must still match Floyd–Warshall.
func TestSparseClosureHugeWeightRatio(t *testing.T) {
	g := randSparse(40, 3, 3)
	if err := g.AddEdge(0, 39, 1e-9); err != nil {
		t.Fatal(err)
	}
	c := newCSR(g)
	cmin, cmax := c.edgeLengthRange()
	if dialEligible(cmin, cmax) {
		t.Fatalf("ratio %v should not be dial-eligible", cmax/cmin)
	}
	matricesEqual(t, g.sparseClosure(2), refClosure(g), 1e-9)
}

// TestSparseClosureDisconnected checks +Inf handling: pairs in different
// components must be Inf on both the sparse and dense paths.
func TestSparseClosureDisconnected(t *testing.T) {
	g := New(7)
	// Component {0,1,2}, component {3,4}, isolated {5}, {6}.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	want := refClosure(g)
	got := g.sparseClosure(3)
	matricesEqual(t, got, want, 0)
	if !math.IsInf(got.At(0, 3), 1) || !math.IsInf(got.At(5, 6), 1) {
		t.Fatalf("cross-component distances not Inf: %v, %v", got.At(0, 3), got.At(5, 6))
	}
	if got.At(0, 2) != 2 || got.At(3, 4) != 1 {
		t.Fatalf("in-component distances wrong: %v, %v", got.At(0, 2), got.At(3, 4))
	}
	if g.Connected() {
		t.Fatal("Connected() = true for a 4-component graph")
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() {
		t.Error("empty graph should be connected")
	}
	if !New(1).Connected() {
		t.Error("single node should be connected")
	}
	if New(2).Connected() {
		t.Error("two isolated nodes should not be connected")
	}
	g := randSparse(40, 3, 9)
	if !g.Connected() {
		t.Error("randSparse embeds a spanning tree; must be connected")
	}
}

// TestClosureDenseSelection pins the density heuristic: a complete graph
// takes the Floyd–Warshall branch, a tree the Dijkstra branch, and both
// produce identical metrics anyway.
func TestClosureDenseSelection(t *testing.T) {
	n := 24
	complete := New(n)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := complete.AddEdge(i, j, 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !closureDense(n, complete.NumEdges()) {
		t.Error("complete graph should select the dense path")
	}
	tree := randSparse(200, 2, 5)
	if closureDense(tree.NumNodes(), tree.NumEdges()) {
		t.Error("tree should select the sparse path")
	}
	matricesEqual(t, complete.Closure(2), refClosure(complete), 1e-9)
	matricesEqual(t, tree.Closure(2), refClosure(tree), 1e-9)
}

// TestShortestFromMatchesClosure ties the single-source entry point to the
// all-pairs oracle, exercising the 4-ary heap's decrease-key path on
// graphs with many parallel edges and duplicate lengths.
func TestShortestFromMatchesClosure(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randSparse(50, 5, seed)
		// Parallel edges: re-add some with different lengths.
		rng := rand.New(rand.NewSource(seed + 77))
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(50), rng.Intn(50)
			if u != v {
				if err := g.AddEdge(u, v, 1+rng.Float64()*50); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := refClosure(g)
		for src := 0; src < g.NumNodes(); src += 7 {
			dist := g.ShortestFrom(src)
			for v, dv := range dist {
				// Single-direction Dijkstra may differ from the
				// symmetrized matrix only by float rounding.
				if math.Abs(dv-want.At(src, v)) > 1e-9 {
					t.Fatalf("seed %d: dist(%d,%d) = %v, want %v", seed, src, v, dv, want.At(src, v))
				}
			}
		}
	}
}
