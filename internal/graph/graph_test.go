package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraph(t *testing.T) {
	g := New(5)
	if got := g.NumNodes(); got != 5 {
		t.Errorf("NumNodes() = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Errorf("NumEdges() = %d, want 0", got)
	}
}

func TestNewGraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddNodes(t *testing.T) {
	g := New(2)
	first := g.AddNodes(3)
	if first != 2 {
		t.Errorf("AddNodes(3) = %d, want 2", first)
	}
	if got := g.NumNodes(); got != 5 {
		t.Errorf("NumNodes() = %d, want 5", got)
	}
	if err := g.AddEdge(0, 4, 1); err != nil {
		t.Errorf("AddEdge to appended node: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    int
		length  float64
		wantErr bool
	}{
		{name: "valid", u: 0, v: 1, length: 2.5, wantErr: false},
		{name: "zero length valid", u: 1, v: 2, length: 0, wantErr: false},
		{name: "u out of range", u: -1, v: 1, length: 1, wantErr: true},
		{name: "v out of range", u: 0, v: 3, length: 1, wantErr: true},
		{name: "self loop", u: 1, v: 1, length: 1, wantErr: true},
		{name: "negative length", u: 0, v: 2, length: -1, wantErr: true},
		{name: "nan length", u: 0, v: 2, length: math.NaN(), wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.length)
			if (err != nil) != tc.wantErr {
				t.Errorf("AddEdge(%d,%d,%v) error = %v, wantErr %v", tc.u, tc.v, tc.length, err, tc.wantErr)
			}
		})
	}
}

func TestShortestFromLine(t *testing.T) {
	// 0 -1- 1 -2- 2 -3- 3
	g := New(4)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	mustEdge(t, g, 2, 3, 3)
	d := g.ShortestFrom(0)
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("d[%d] = %v, want %v", i, d[i], w)
		}
	}
}

func TestShortestFromPrefersCheaperPath(t *testing.T) {
	// Direct edge 0-2 costs 10; path through 1 costs 3.
	g := New(3)
	mustEdge(t, g, 0, 2, 10)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 2)
	d := g.ShortestFrom(0)
	if d[2] != 3 {
		t.Errorf("d[2] = %v, want 3", d[2])
	}
}

func TestShortestFromParallelEdges(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 0, 1, 2)
	d := g.ShortestFrom(0)
	if d[1] != 2 {
		t.Errorf("d[1] = %v, want 2 (min of parallel edges)", d[1])
	}
}

func TestShortestFromDisconnected(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	d := g.ShortestFrom(0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("d[2] = %v, want +Inf", d[2])
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(1)), 20, 0.3)
	m := g.AllPairs()
	for i := 0; i < m.Size(); i++ {
		if m.At(i, i) != 0 {
			t.Errorf("At(%d,%d) = %v, want 0", i, i, m.At(i, i))
		}
		for j := 0; j < m.Size(); j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric: At(%d,%d)=%v At(%d,%d)=%v", i, j, m.At(i, j), j, i, m.At(j, i))
			}
		}
	}
}

func TestAllPairsIsMetric(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(2)), 15, 0.4)
	m := g.AllPairs()
	if !m.IsMetric(1e-9) {
		t.Error("shortest-path matrix violates metric properties")
	}
}

func TestMetricClosureFixesViolations(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(0, 2, 10) // violates triangle inequality
	m.MetricClosure()
	if got := m.At(0, 2); got != 2 {
		t.Errorf("At(0,2) after closure = %v, want 2", got)
	}
	if !m.IsMetric(1e-9) {
		t.Error("matrix not metric after closure")
	}
}

func TestMetricClosureSymmetrizes(t *testing.T) {
	m := NewMatrix(2)
	m.rows[0][1] = 5
	m.rows[1][0] = 3 // asymmetric input
	m.MetricClosure()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("closure did not symmetrize to min: got %v, %v", m.At(0, 1), m.At(1, 0))
	}
}

func TestMetricClosureProperty(t *testing.T) {
	// Property: closure of any random non-negative symmetric matrix is a
	// metric, and never increases any entry.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()*100)
			}
		}
		before := m.Clone()
		m.MetricClosure()
		if !m.IsMetric(1e-9) {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) > before.At(i, j)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMedianSimple(t *testing.T) {
	// Line metric 0-1-2 with unit edges: node 1 is the median.
	g := New(3)
	mustEdge(t, g, 0, 1, 1)
	mustEdge(t, g, 1, 2, 1)
	m := g.AllPairs()
	node, avg := m.Median()
	if node != 1 {
		t.Errorf("Median() node = %d, want 1", node)
	}
	if want := 2.0 / 3.0; math.Abs(avg-want) > 1e-12 {
		t.Errorf("Median() avg = %v, want %v", avg, want)
	}
}

func TestMedianIsArgmin(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(3)), 25, 0.3)
	m := g.AllPairs()
	node, avg := m.Median()
	for w := 0; w < m.Size(); w++ {
		if got := m.AvgDistanceTo(w); got < avg-1e-12 {
			t.Errorf("node %d has avg dist %v < median node %d's %v", w, got, node, avg)
		}
	}
}

func TestBallOrderingAndContents(t *testing.T) {
	m := NewMatrix(5)
	dists := []float64{0, 4, 1, 3, 2} // from node 0
	for j, d := range dists {
		if j != 0 {
			m.Set(0, j, d)
		}
	}
	ball := m.Ball(0, 3)
	want := []int{0, 2, 4}
	if len(ball) != len(want) {
		t.Fatalf("Ball size = %d, want %d", len(ball), len(want))
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Errorf("ball[%d] = %d, want %d", i, ball[i], want[i])
		}
	}
}

func TestBallIncludesCenterFirst(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(4)), 12, 0.5)
	m := g.AllPairs()
	for c := 0; c < m.Size(); c++ {
		ball := m.Ball(c, 5)
		if ball[0] != c {
			t.Errorf("Ball(%d, 5)[0] = %d, want center %d", c, ball[0], c)
		}
	}
}

func TestBallProperty(t *testing.T) {
	// Property: Ball(c, k) returns exactly the k closest nodes — every
	// excluded node is at least as far as every included node.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomConnectedGraph(rng, n, 0.4)
		m := g.AllPairs()
		c := rng.Intn(n)
		k := 1 + rng.Intn(n)
		ball := m.Ball(c, k)
		in := make(map[int]bool, len(ball))
		maxIn := 0.0
		for _, v := range ball {
			in[v] = true
			if m.At(c, v) > maxIn {
				maxIn = m.At(c, v)
			}
		}
		for v := 0; v < n; v++ {
			if !in[v] && m.At(c, v) < maxIn {
				return false
			}
		}
		return len(ball) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRowIsCopy(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 7)
	row := m.Row(0)
	row[1] = 99
	if m.At(0, 1) != 7 {
		t.Error("mutating Row() result changed the matrix")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 7)
	c := m.Clone()
	c.Set(0, 1, 3)
	if m.At(0, 1) != 7 {
		t.Error("mutating clone changed the original")
	}
}

func TestNeighbors(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 1.5)
	mustEdge(t, g, 0, 2, 2.5)
	seen := map[int]float64{}
	g.Neighbors(0, func(v int, l float64) { seen[v] = l })
	if len(seen) != 2 || seen[1] != 1.5 || seen[2] != 2.5 {
		t.Errorf("Neighbors(0) = %v", seen)
	}
}

// mustEdge adds an edge or fails the test.
func mustEdge(t *testing.T, g *Graph, u, v int, l float64) {
	t.Helper()
	if err := g.AddEdge(u, v, l); err != nil {
		t.Fatalf("AddEdge(%d,%d,%v): %v", u, v, l, err)
	}
}

// randomConnectedGraph builds a random graph that is guaranteed connected:
// a random spanning path plus extra edges with probability p.
func randomConnectedGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(perm[i-1], perm[i], 1+rng.Float64()*99); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(i, j, 1+rng.Float64()*99); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// TestDijkstraMatchesFloydWarshall cross-checks AllPairs (repeated
// Dijkstra) against an independent Floyd–Warshall implementation.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := randomConnectedGraph(rng, n, 0.3)
		got := g.AllPairs()

		// Independent Floyd–Warshall on the same edges.
		fw := make([][]float64, n)
		for i := range fw {
			fw[i] = make([]float64, n)
			for j := range fw[i] {
				if i != j {
					fw[i][j] = math.Inf(1)
				}
			}
		}
		for u := 0; u < n; u++ {
			g.Neighbors(u, func(v int, l float64) {
				if l < fw[u][v] {
					fw[u][v] = l
					fw[v][u] = l
				}
			})
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := fw[i][k] + fw[k][j]; d < fw[i][j] {
						fw[i][j] = d
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got.At(i, j)-fw[i][j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatrixSizeAndAccessors(t *testing.T) {
	m := NewMatrix(3)
	if m.Size() != 3 {
		t.Errorf("Size = %d", m.Size())
	}
	m.Set(1, 2, 4.5)
	if m.At(2, 1) != 4.5 {
		t.Error("Set did not mirror")
	}
	rv := m.RowView(1)
	if rv[2] != 4.5 {
		t.Error("RowView wrong")
	}
}

func TestBallFullGraph(t *testing.T) {
	g := randomConnectedGraph(rand.New(rand.NewSource(9)), 8, 0.5)
	m := g.AllPairs()
	ball := m.Ball(3, 8)
	if len(ball) != 8 {
		t.Fatalf("full ball size %d", len(ball))
	}
	seen := map[int]bool{}
	for _, v := range ball {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Error("ball has duplicates")
	}
}
