package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickParams() Params {
	p := DefaultParams()
	p.Quick = true
	p.QUDurationMS = 2000
	p.QURuns = 1
	return p
}

// TestAllExperimentsRunQuick smoke-tests every figure runner at reduced
// scale and validates table structure.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := exp.Run(quickParams())
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", exp.ID)
			}
			for i, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("%s row %d: %d cells for %d columns", exp.ID, i, len(row), len(tb.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tb.Format(&buf); err != nil {
				t.Fatalf("Format: %v", err)
			}
			if !strings.Contains(buf.String(), exp.ID) {
				t.Error("formatted output missing figure id")
			}
			buf.Reset()
			if err := tb.FormatMarkdown(&buf); err != nil {
				t.Fatalf("FormatMarkdown: %v", err)
			}
			if !strings.Contains(buf.String(), "|") {
				t.Error("markdown output has no table")
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig6.3"); err != nil {
		t.Errorf("ByID(fig6.3): %v", err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID(fig99) succeeded")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := &Table{ID: "x", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2.5")
	if v, err := tb.Cell(0, 1); err != nil || v != 2.5 {
		t.Errorf("Cell = %v, %v", v, err)
	}
	if _, err := tb.Cell(1, 0); err == nil {
		t.Error("out-of-range Cell succeeded")
	}
	if i, err := tb.Col("b"); err != nil || i != 1 {
		t.Errorf("Col(b) = %d, %v", i, err)
	}
	if _, err := tb.Col("z"); err == nil {
		t.Error("Col(z) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	tb.AddRow("only-one")
}

// TestFig63SingletonIsLowest: on the quick run, the singleton baseline
// must not be beaten by any placed quorum system (Lin's 2-approximation
// argument says nothing can do better than half; in practice singleton
// wins outright at alpha=0).
func TestFig63SingletonIsLowest(t *testing.T) {
	tb, err := Fig63(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	respCol, err := tb.Col("response_ms")
	if err != nil {
		t.Fatal(err)
	}
	single, err := tb.Cell(0, respCol)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(tb.Rows); r++ {
		v, err := tb.Cell(r, respCol)
		if err != nil {
			t.Fatal(err)
		}
		if v < single-1e-9 {
			t.Errorf("row %d response %v beats singleton %v", r, v, single)
		}
	}
}

// TestFig65BalancedResponseDecreases: the headline shape of Figure 6.5 —
// with demand 16000, the balanced strategy's response time falls as the
// universe grows (more servers share the load).
func TestFig65BalancedResponseDecreases(t *testing.T) {
	p := quickParams()
	p.Quick = false // need several universe sizes; this runner is cheap
	tb, err := Fig65(p)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tb.Col("resp_balanced")
	if err != nil {
		t.Fatal(err)
	}
	first, err := tb.Cell(0, col)
	if err != nil {
		t.Fatal(err)
	}
	last, err := tb.Cell(len(tb.Rows)-1, col)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("balanced response did not decrease: first %v, last %v", first, last)
	}
}

// TestAblationsRunQuick smoke-tests every ablation study at reduced scale.
func TestAblationsRunQuick(t *testing.T) {
	for _, exp := range Ablations() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := exp.Run(quickParams())
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", exp.ID)
			}
		})
	}
}

// TestAblDedupNeverWorse: the §8 dedup model must never increase response
// time relative to the multiplicity model at the same capacity.
func TestAblDedupNeverWorse(t *testing.T) {
	tb, err := AblDedup(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	gain, err := tb.Col("dedup_gain_ms")
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		v, err := tb.Cell(r, gain)
		if err != nil {
			t.Fatal(err)
		}
		if v < -1e-6 {
			t.Errorf("row %d: dedup made response worse by %v ms", r, -v)
		}
	}
}

// TestAblFailuresSingletonDies: the singleton must be 'down' after its
// single node fails, while the quorum systems keep serving.
func TestAblFailuresSingletonDies(t *testing.T) {
	tb, err := AblFailures(quickParams())
	if err != nil {
		t.Fatal(err)
	}
	f1, err := tb.Col("resp_f1")
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Rows[0][f1]; got != "down" {
		t.Errorf("singleton after 1 failure = %q, want down", got)
	}
	for r := 1; r < len(tb.Rows); r++ {
		if tb.Rows[r][f1] == "down" {
			t.Errorf("row %d (%s) down after a single failure", r, tb.Rows[r][0])
		}
	}
}
