// Package experiments regenerates every figure of the paper's evaluation
// (there are no numbered tables): the Q/U protocol measurements of §3,
// the low-demand placement comparison of §6, the high-demand strategy and
// capacity studies of §7, and the iterative-algorithm study of §8.
// Every figure is declared as a scenario spec — the runners in this
// package only choose the axis values (full or Quick scale) and hand the
// spec to the scenario engine, which expands and executes it; the
// ablation studies keep bespoke runners. cmd/quorumbench prints the
// tables and the benchmarks in the repository root regenerate them under
// `go test -bench`.
package experiments

import (
	"fmt"
	"strconv"

	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Params controls experiment scale. DefaultParams reproduces the paper's
// settings; Quick shrinks everything for fast integration tests.
type Params struct {
	// Seed drives topology synthesis and protocol randomness.
	Seed int64
	// QURuns is how many simulation runs are averaged per point (the
	// paper uses 5).
	QURuns int
	// QUDurationMS is the simulated length of each protocol run.
	QUDurationMS float64
	// Quick trims universe sizes and sweep resolution for tests.
	Quick bool
	// Reproducible forces cold, Dantzig-priced, serial-equivalent LP
	// solves throughout, bit-for-bit reproducing the tables the original
	// (pre-optimization) harness generated. The default fast path —
	// warm-started, partially priced, parallel solves — reaches the same
	// LP optima (objective-derived columns are identical), but on
	// degenerate instances it may return a different optimal vertex,
	// which can shift vertex-dependent columns (e.g. response time of an
	// optimal-delay strategy) within the optimal face.
	Reproducible bool
}

// lpOptions translates the reproducibility setting into solver options.
func (p Params) lpOptions() lp.Options {
	if p.Reproducible {
		return lp.Options{}
	}
	return lp.Options{Pricing: lp.PricingPartial}
}

// sweepConfig translates the reproducibility setting into sweep options.
func (p Params) sweepConfig() strategy.SweepConfig {
	return strategy.SweepConfig{Reproducible: p.Reproducible}
}

// DefaultParams mirrors the paper's configuration.
func DefaultParams() Params {
	return Params{
		Seed:         topology.DefaultSeed,
		QURuns:       5,
		QUDurationMS: 20000,
	}
}

func (p Params) quRuns() int {
	if p.QURuns <= 0 {
		return 5
	}
	if p.Quick && p.QURuns > 2 {
		return 2
	}
	return p.QURuns
}

func (p Params) quDuration() float64 {
	d := p.QUDurationMS
	if d <= 0 {
		d = 20000
	}
	if p.Quick && d > 3000 {
		d = 3000
	}
	return d
}

// Table is a figure regenerated as rows of formatted cells. It is the
// scenario engine's table type; every figure runner produces one by
// executing its spec.
type Table = scenario.Table

// RunConfig translates experiment parameters into engine settings. It
// is exported so sharded and fleet runs (cmd/quorumbench -shards,
// -fleet) execute a figure's spec under exactly the configuration its
// runner would use.
func (p Params) RunConfig() scenario.RunConfig {
	return scenario.RunConfig{
		Seed:         p.Seed,
		Reproducible: p.Reproducible,
		QURuns:       p.quRuns(),
		QUDurationMS: p.quDuration(),
	}
}

func f2(v float64) string  { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string  { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string    { return strconv.Itoa(v) }
func cell(s string) string { return s }

// Experiment pairs a figure id with its runner and — for figures
// declared as scenario specs — the spec builder sharded runs partition.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (*Table, error)
	// Spec returns the figure's declarative scenario at the given scale,
	// or nil for bespoke runners (the ablations): only spec-declared
	// figures can be sharded across a fleet.
	Spec func(Params) *scenario.Spec
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3.1", Title: "Q/U response time and network delay vs clients × universe size (PlanetLab-50)", Run: Fig31, Spec: SpecFig31},
		{ID: "fig3.2a", Title: "Q/U delay components vs faults t at 100 clients", Run: Fig32a, Spec: SpecFig32a},
		{ID: "fig3.2b", Title: "Q/U delay components vs client count at t=4 (n=21)", Run: Fig32b, Spec: SpecFig32b},
		{ID: "fig6.3", Title: "Response time vs universe size, closest access, alpha=0 (PlanetLab-50)", Run: Fig63, Spec: SpecFig63},
		{ID: "fig6.4", Title: "Grid response: closest vs balanced at demand 1000/4000 (daxlist-161)", Run: Fig64, Spec: SpecFig64},
		{ID: "fig6.5", Title: "Grid delay components: closest vs balanced at demand 16000 (daxlist-161)", Run: Fig65, Spec: SpecFig65},
		{ID: "fig7.6", Title: "Grid response vs universe × uniform capacity, LP strategies, demand 16000 (PlanetLab-50)", Run: Fig76, Spec: SpecFig76},
		{ID: "fig7.7", Title: "Uniform vs non-uniform capacities across universe sizes (PlanetLab-50)", Run: Fig77, Spec: SpecFig77},
		{ID: "fig7.8", Title: "7×7 Grid: response vs capacity, uniform vs non-uniform (PlanetLab-50)", Run: Fig78, Spec: SpecFig78},
		{ID: "fig8.9", Title: "Iterative algorithm network delay vs capacity, 5×5 Grid (PlanetLab-50)", Run: Fig89, Spec: SpecFig89},
	}
}

// ByID returns the experiment (figure or ablation) with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	for _, e := range Ablations() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown figure %q", id)
}
