package experiments

import "github.com/quorumnet/quorumnet/internal/scenario"

func sweepCount(p Params) int {
	if p.Quick {
		return 4
	}
	return 10
}

// capacityAxis is the §7 universe axis: every Grid that fits PlanetLab-50
// (k = 2..7), or the 3×3 alone on quick runs.
func capacityAxis(quick bool) scenario.SystemAxis {
	if quick {
		return scenario.SystemAxis{Family: "grid", Params: []int{3}}
	}
	return scenario.SystemAxis{Family: "grid"}
}

// SpecFig76 declares Figure 7.6: response time and network delay as the
// uniform node capacity c_i = Lopt + i·(1−Lopt)/10 varies, per universe
// size, with LP-optimized access strategies.
func SpecFig76(p Params) *scenario.Spec {
	return &scenario.Spec{
		Name:  "fig7.6",
		Title: "Grid on PlanetLab-50, demand 16000: LP strategies under uniform capacities",
		Kind:  scenario.KindSweep,
		Notes: []string{
			"paper: higher capacity lets clients use closer quorums (lower network delay) but concentrates load, raising response time at high demand",
		},
		Topology: scenario.TopologySpec{Source: "planetlab50"},
		Systems:  []scenario.SystemAxis{capacityAxis(p.Quick)},
		Sweep:    &scenario.SweepSpec{Points: sweepCount(p), Demand: 16000},
		Columns:  []string{"universe", "capacity", "net_delay_ms", "response_ms"},
	}
}

// Fig76 regenerates Figure 7.6.
func Fig76(p Params) (*Table, error) {
	return scenario.Run(SpecFig76(p), p.RunConfig())
}

// SpecFig77 declares Figure 7.7: the uniform sweep against the
// non-uniform capacity heuristic with [β, γ] = [Lopt, c_i].
func SpecFig77(p Params) *scenario.Spec {
	return &scenario.Spec{
		Name:  "fig7.7",
		Title: "Grid on PlanetLab-50, demand 16000: uniform vs non-uniform capacities",
		Kind:  scenario.KindSweep,
		Notes: []string{
			"paper: the two match at small capacities (interval length ≈ 0) and non-uniform wins as capacities grow",
		},
		Topology: scenario.TopologySpec{Source: "planetlab50"},
		Systems:  []scenario.SystemAxis{capacityAxis(p.Quick)},
		Sweep: &scenario.SweepSpec{
			Points:   sweepCount(p),
			Demand:   16000,
			Variants: []string{"uniform", "nonuniform"},
		},
		Columns: []string{"universe", "capacity",
			"net_uniform", "resp_uniform", "net_nonuniform", "resp_nonuniform"},
	}
}

// Fig77 regenerates Figure 7.7.
func Fig77(p Params) (*Table, error) {
	return scenario.Run(SpecFig77(p), p.RunConfig())
}

// SpecFig78 declares Figure 7.8: the k=7 (n=49) slice of the comparison.
func SpecFig78(p Params) *scenario.Spec {
	k := 7
	if p.Quick {
		k = 4
	}
	return &scenario.Spec{
		Name:  "fig7.8",
		Title: "7x7 Grid on PlanetLab-50, demand 16000: response vs capacity",
		Kind:  scenario.KindSweep,
		Notes: []string{
			"paper: response time grows with capacity for both, but more slowly for the non-uniform heuristic",
		},
		Topology:   scenario.TopologySpec{Source: "planetlab50"},
		Systems:    []scenario.SystemAxis{{Family: "grid", Params: []int{k}}},
		RowColumns: []string{"capacity"},
		Sweep: &scenario.SweepSpec{
			Points:   sweepCount(p),
			Demand:   16000,
			Variants: []string{"uniform", "nonuniform"},
		},
		Columns: []string{"capacity",
			"net_uniform", "resp_uniform", "net_nonuniform", "resp_nonuniform"},
	}
}

// Fig78 regenerates Figure 7.8.
func Fig78(p Params) (*Table, error) {
	return scenario.Run(SpecFig78(p), p.RunConfig())
}
