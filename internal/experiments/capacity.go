package experiments

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// capacityEval builds the k×k grid evaluation on PlanetLab-50 at demand
// 16000 used throughout §7.
func capacityEval(topo *topology.Topology, k int) (*core.Eval, error) {
	sys, err := quorum.NewGrid(k)
	if err != nil {
		return nil, err
	}
	f, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		return nil, fmt.Errorf("grid %dx%d placement: %w", k, k, err)
	}
	return core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
}

func sweepCount(p Params) int {
	if p.Quick {
		return 4
	}
	return 10
}

func capacityDims(topo *topology.Topology, quick bool) []int {
	if quick {
		return []int{3}
	}
	return gridDims(topo, false) // k = 2..7 on PlanetLab-50
}

// Fig76 regenerates Figure 7.6: response time and network delay as the
// uniform node capacity c_i = Lopt + i·(1−Lopt)/10 varies, per universe
// size, with LP-optimized access strategies.
func Fig76(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "fig7.6",
		Title:   "Grid on PlanetLab-50, demand 16000: LP strategies under uniform capacities",
		Columns: []string{"universe", "capacity", "net_delay_ms", "response_ms"},
		Notes: []string{
			"paper: higher capacity lets clients use closer quorums (lower network delay) but concentrates load, raising response time at high demand",
		},
	}
	for _, k := range capacityDims(topo, p.Quick) {
		e, err := capacityEval(topo, k)
		if err != nil {
			return nil, err
		}
		values := strategy.SweepValues(e.Sys.OptimalLoad(), sweepCount(p))
		pts, err := strategy.UniformSweepCfg(e, values, p.sweepConfig())
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			if pt.Infeasible {
				tb.AddRow(itoa(k*k), f3(pt.Cap), "infeasible", "infeasible")
				continue
			}
			tb.AddRow(itoa(k*k), f3(pt.Cap), f2(pt.NetDelay), f2(pt.Response))
		}
	}
	return tb, nil
}

// Fig77 regenerates Figure 7.7: the uniform sweep against the non-uniform
// capacity heuristic with [β, γ] = [Lopt, c_i].
func Fig77(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:    "fig7.7",
		Title: "Grid on PlanetLab-50, demand 16000: uniform vs non-uniform capacities",
		Columns: []string{"universe", "capacity",
			"net_uniform", "resp_uniform", "net_nonuniform", "resp_nonuniform"},
		Notes: []string{
			"paper: the two match at small capacities (interval length ≈ 0) and non-uniform wins as capacities grow",
		},
	}
	for _, k := range capacityDims(topo, p.Quick) {
		e, err := capacityEval(topo, k)
		if err != nil {
			return nil, err
		}
		lopt := e.Sys.OptimalLoad()
		values := strategy.SweepValues(lopt, sweepCount(p))
		uni, err := strategy.UniformSweepCfg(e, values, p.sweepConfig())
		if err != nil {
			return nil, err
		}
		non, err := strategy.NonUniformSweepCfg(e, lopt, values, p.sweepConfig())
		if err != nil {
			return nil, err
		}
		for i := range values {
			cells := []string{itoa(k * k), f3(values[i])}
			cells = append(cells, sweepCells(uni[i])...)
			cells = append(cells, sweepCells(non[i])...)
			tb.AddRow(cells...)
		}
	}
	return tb, nil
}

// Fig78 regenerates Figure 7.8: the k=7 (n=49) slice of the comparison.
func Fig78(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:    "fig7.8",
		Title: "7x7 Grid on PlanetLab-50, demand 16000: response vs capacity",
		Columns: []string{"capacity",
			"net_uniform", "resp_uniform", "net_nonuniform", "resp_nonuniform"},
		Notes: []string{
			"paper: response time grows with capacity for both, but more slowly for the non-uniform heuristic",
		},
	}
	k := 7
	if p.Quick {
		k = 4
	}
	e, err := capacityEval(topo, k)
	if err != nil {
		return nil, err
	}
	lopt := e.Sys.OptimalLoad()
	values := strategy.SweepValues(lopt, sweepCount(p))
	uni, err := strategy.UniformSweepCfg(e, values, p.sweepConfig())
	if err != nil {
		return nil, err
	}
	non, err := strategy.NonUniformSweepCfg(e, lopt, values, p.sweepConfig())
	if err != nil {
		return nil, err
	}
	for i := range values {
		cells := []string{f3(values[i])}
		cells = append(cells, sweepCells(uni[i])...)
		cells = append(cells, sweepCells(non[i])...)
		tb.AddRow(cells...)
	}
	return tb, nil
}

func sweepCells(pt strategy.SweepPoint) []string {
	if pt.Infeasible {
		return []string{"infeasible", "infeasible"}
	}
	return []string{f2(pt.NetDelay), f2(pt.Response)}
}
