package experiments

import (
	"errors"
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/faults"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Ablations lists the studies that go beyond the paper's figures: the §8
// future-work load model, design choices DESIGN.md calls out, and the
// failure behaviour §6 argues about but defers.
func Ablations() []Experiment {
	return []Experiment{
		{ID: "abl-dedup", Title: "§8 future work: deduplicated load model vs the paper's multiplicity model", Run: AblDedup},
		{ID: "abl-anchor", Title: "placement anchor scoring: uniform vs closest strategy", Run: AblAnchor},
		{ID: "abl-failures", Title: "response time and availability under node failures (§6 fault-tolerance argument)", Run: AblFailures},
		{ID: "abl-sweep", Title: "capacity sweep resolution vs best response found", Run: AblSweep},
		{ID: "abl-baselines", Title: "paper's placement constructions vs naive baselines", Run: AblBaselines},
	}
}

// AblBaselines calibrates the value of the paper's placement algorithms
// against what an operator would do without them: random one-to-one
// placement and the "greedy best-average-RTT nodes" heuristic.
func AblBaselines(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "abl-baselines",
		Title:   "Placement algorithm vs baselines on PlanetLab-50 (closest-strategy delay, ms, alpha=0)",
		Columns: []string{"system", "universe", "paper_construction", "greedy_median", "random_mean"},
		Notes: []string{
			"random_mean averages 10 seeded random one-to-one placements",
			"greedy-median ignores inter-node distances, which quorum access latency punishes",
		},
	}
	var systems []quorum.System
	if p.Quick {
		g, err := quorum.NewGrid(3)
		if err != nil {
			return nil, err
		}
		systems = append(systems, g)
	} else {
		for _, k := range []int{3, 5, 7} {
			g, err := quorum.NewGrid(k)
			if err != nil {
				return nil, err
			}
			systems = append(systems, g)
		}
		for _, t := range []int{4, 12} {
			m, err := quorum.SimpleMajority(t)
			if err != nil {
				return nil, err
			}
			systems = append(systems, m)
		}
	}
	for _, sys := range systems {
		delay := func(f core.Placement) (float64, error) {
			e, err := core.NewEval(topo, sys, f, 0)
			if err != nil {
				return 0, err
			}
			return e.AvgNetworkDelay(core.ClosestStrategy{}), nil
		}
		paper, err := placement.OneToOne(topo, sys, placement.Options{})
		if err != nil {
			return nil, err
		}
		dPaper, err := delay(paper)
		if err != nil {
			return nil, err
		}
		greedy, err := placement.GreedyMedian(topo, sys, placement.Options{})
		if err != nil {
			return nil, err
		}
		dGreedy, err := delay(greedy)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		const randTrials = 10
		for s := int64(0); s < randTrials; s++ {
			rnd, err := placement.Random(topo, sys, p.Seed+s)
			if err != nil {
				return nil, err
			}
			d, err := delay(rnd)
			if err != nil {
				return nil, err
			}
			sum += d
		}
		tb.AddRow(sys.Name(), itoa(sys.UniverseSize()),
			f2(dPaper), f2(dGreedy), f2(sum/randTrials))
	}
	return tb, nil
}

// AblDedup quantifies the paper's §8 conjecture: "a variation of our
// model, in which a server hosting multiple universe elements would
// execute a request only once, can clearly improve the performance."
// A many-to-one placement of a 5×5 Grid is evaluated at demand 16000
// under both load models, with LP-optimized strategies per capacity.
func AblDedup(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	k := 5
	if p.Quick {
		k = 3
	}
	sys, err := quorum.NewGrid(k)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "abl-dedup",
		Title:   fmt.Sprintf("%dx%d Grid many-to-one on PlanetLab-50, demand 16000: load models", k, k),
		Columns: []string{"capacity", "resp_multiplicity", "resp_dedup", "dedup_gain_ms"},
		Notes: []string{
			"multiplicity: a node is charged once per hosted element in the accessed quorum (paper's model)",
			"dedup: a node executes each request once (§8 future work); response can only improve",
		},
	}
	var candidates []int
	if p.Quick {
		candidates = []int{0, 5, 10, 15}
	}
	alpha := core.AlphaForDemand(16000)
	for _, c := range strategy.SweepValues(sys.OptimalLoad(), sweepCount(p)) {
		tp := topo.Clone()
		if err := tp.SetUniformCapacity(c); err != nil {
			return nil, err
		}
		f, err := placement.ManyToOne(tp, sys, placement.ManyToOneConfig{Candidates: candidates, LP: p.lpOptions()})
		if err != nil {
			return nil, err
		}
		e, err := core.NewEval(tp, sys, f, alpha)
		if err != nil {
			return nil, err
		}
		caps := make([]float64, tp.Size())
		for w := range caps {
			// The rounding can exceed c; cap the LP at the achieved loads
			// so both modes optimize over the same feasible region scale.
			caps[w] = c * 2
		}
		respOf := func(mode core.LoadMode) (float64, error) {
			e.Mode = mode
			// The load mode changes the LP coefficients, so each mode
			// needs its own optimizer workspace.
			opt, err := strategy.NewOptimizer(e, strategy.Config{LP: p.lpOptions()})
			if err != nil {
				return 0, err
			}
			res, err := opt.Optimize(caps)
			if err != nil {
				return 0, err
			}
			return e.AvgResponseTime(res.Strategy), nil
		}
		mult, err := respOf(core.LoadMultiplicity)
		if err != nil {
			if errors.Is(err, lp.ErrInfeasible) {
				continue // capacity too tight for this placement's loads
			}
			return nil, err
		}
		dedup, err := respOf(core.LoadDedup)
		if err != nil {
			return nil, err
		}
		tb.AddRow(f3(c), f2(mult), f2(dedup), f2(mult-dedup))
	}
	return tb, nil
}

// AblAnchor compares the two natural scorings for the one-to-one anchor
// search: the uniform (balanced) strategy the paper prescribes in §4.1,
// and the closest strategy the §6 experiments evaluate with.
func AblAnchor(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "abl-anchor",
		Title:   "One-to-one placement anchor scoring on PlanetLab-50 (closest-strategy response, alpha=0)",
		Columns: []string{"system", "universe", "resp_uniform_scored", "resp_closest_scored"},
		Notes: []string{
			"scoring by the evaluation strategy (closest) can only help the evaluated measure;",
			"the gap shows how much the paper's uniform-scored placements leave on the table in §6",
		},
	}
	type combo struct {
		sys quorum.System
	}
	var combos []combo
	if p.Quick {
		g, err := quorum.NewGrid(3)
		if err != nil {
			return nil, err
		}
		combos = append(combos, combo{sys: g})
	} else {
		g, err := quorum.NewGrid(5)
		if err != nil {
			return nil, err
		}
		m1, err := quorum.SimpleMajority(12) // (13,25)
		if err != nil {
			return nil, err
		}
		m2, err := quorum.ByzantineMajority(8) // (17,25)
		if err != nil {
			return nil, err
		}
		m3, err := quorum.QUMajority(5) // (21,26)
		if err != nil {
			return nil, err
		}
		combos = append(combos, combo{sys: g}, combo{sys: m1}, combo{sys: m2}, combo{sys: m3})
	}
	for _, c := range combos {
		delayFor := func(score core.Strategy) (float64, error) {
			f, err := placement.OneToOne(topo, c.sys, placement.Options{ScoreBy: score})
			if err != nil {
				return 0, err
			}
			e, err := core.NewEval(topo, c.sys, f, 0)
			if err != nil {
				return 0, err
			}
			return e.AvgNetworkDelay(core.ClosestStrategy{}), nil
		}
		uni, err := delayFor(core.BalancedStrategy{})
		if err != nil {
			return nil, err
		}
		clo, err := delayFor(core.ClosestStrategy{})
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.sys.Name(), itoa(c.sys.UniverseSize()), f2(uni), f2(clo))
	}
	return tb, nil
}

// AblFailures extends §6's fault-tolerance argument with measurements the
// paper defers to future work: closest-strategy response time as
// worst-case node failures accumulate, and Monte Carlo availability under
// independent node failures. The singleton wins on response time but dies
// with its one node; quorum systems degrade gracefully.
func AblFailures(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	maxF := 4
	if p.Quick {
		maxF = 2
	}
	cols := []string{"system", "universe"}
	for f := 0; f <= maxF; f++ {
		cols = append(cols, fmt.Sprintf("resp_f%d", f))
	}
	cols = append(cols, "avail_p05", "avail_p10")
	tb := &Table{
		ID:      "abl-failures",
		Title:   "Worst-case node failures: response time (ms, closest, alpha=0) and availability",
		Columns: cols,
		Notes: []string{
			"failures target the support node hosting the most elements, closest to clients",
			"'down' marks failure sets that kill every quorum",
			"availability: Monte Carlo (50k trials) with each support node failing independently",
		},
	}

	systems := []quorum.System{quorum.Singleton{}}
	if p.Quick {
		g, err := quorum.NewGrid(3)
		if err != nil {
			return nil, err
		}
		systems = append(systems, g)
	} else {
		g, err := quorum.NewGrid(5)
		if err != nil {
			return nil, err
		}
		m1, err := quorum.SimpleMajority(12)
		if err != nil {
			return nil, err
		}
		m2, err := quorum.ByzantineMajority(8)
		if err != nil {
			return nil, err
		}
		systems = append(systems, g, m1, m2)
	}

	for _, sys := range systems {
		f, err := placement.OneToOne(topo, sys, placement.Options{})
		if err != nil {
			return nil, err
		}
		e, err := core.NewEval(topo, sys, f, 0)
		if err != nil {
			return nil, err
		}
		cells := []string{sys.Name(), itoa(sys.UniverseSize())}
		for nf := 0; nf <= maxF; nf++ {
			failed := faults.WorstCaseFailure(e, nf)
			fe, err := faults.Apply(e, failed)
			if err != nil {
				if errors.Is(err, quorum.ErrNoQuorumSurvives) {
					cells = append(cells, "down")
					continue
				}
				return nil, err
			}
			cells = append(cells, f2(fe.AvgNetworkDelay(core.ClosestStrategy{})))
		}
		for _, pf := range []float64{0.05, 0.10} {
			a, err := faults.Availability(e, pf, 50000, p.Seed)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f3(a))
		}
		tb.AddRow(cells...)
	}
	return tb, nil
}

// AblSweep measures how the capacity-sweep resolution (the paper fixes 10
// points, eq. 7.7) trades optimization effort for the best response found.
func AblSweep(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	k := 7
	if p.Quick {
		k = 3
	}
	sys, err := quorum.NewGrid(k)
	if err != nil {
		return nil, err
	}
	f, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		return nil, err
	}
	e, err := core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "abl-sweep",
		Title:   fmt.Sprintf("Capacity sweep resolution, %dx%d Grid on PlanetLab-50, demand 16000", k, k),
		Columns: []string{"sweep_points", "best_capacity", "best_response_ms", "lp_pivots_total"},
		Notes: []string{
			"the paper uses 10 points; diminishing returns set in quickly",
		},
	}
	counts := []int{3, 5, 10, 20}
	if p.Quick {
		counts = []int{3, 5}
	}
	for _, count := range counts {
		pts, err := strategy.UniformSweepCfg(e, strategy.SweepValues(sys.OptimalLoad(), count), p.sweepConfig())
		if err != nil {
			return nil, err
		}
		best, err := strategy.Best(pts)
		if err != nil {
			return nil, err
		}
		pivots := 0
		for _, pt := range pts {
			if pt.Result != nil {
				pivots += pt.Result.Iterations
			}
		}
		tb.AddRow(itoa(count), f3(best.Cap), f2(best.Response), itoa(pivots))
	}
	return tb, nil
}
