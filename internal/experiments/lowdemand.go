package experiments

import "github.com/quorumnet/quorumnet/internal/scenario"

// fig63Systems lists the §6 system families in figure order — the
// singleton baseline first, then the three Majorities and the Grid, each
// auto-expanded to every parameter whose universe fits.
func fig63Systems(maxUniverse int) []scenario.SystemAxis {
	return []scenario.SystemAxis{
		{Family: "singleton"},
		{Family: "majority", MaxUniverse: maxUniverse},
		{Family: "bmajority", MaxUniverse: maxUniverse},
		{Family: "qumajority", MaxUniverse: maxUniverse},
		{Family: "grid", MaxUniverse: maxUniverse},
	}
}

// SpecFig63 declares Figure 6.3: average response time (alpha = 0, i.e.
// network delay) of one-to-one placements under the closest access
// strategy, as the universe grows, for all four systems plus the
// singleton baseline.
func SpecFig63(p Params) *scenario.Spec {
	maxUniverse := 0 // topology size − 1
	if p.Quick {
		maxUniverse = 16
	}
	return &scenario.Spec{
		Name:  "fig6.3",
		Title: "Response time (ms) on PlanetLab-50, alpha=0, closest access strategy",
		Kind:  scenario.KindEval,
		Notes: []string{
			"paper: singleton is flat and lowest; smaller-quorum systems win at fixed universe size",
			"paper: grid < (t+1,2t+1) < (2t+1,3t+1) < (4t+1,5t+1) in most of the range",
			"paper: larger majorities degrade gracefully then sharply (critical point)",
		},
		Topology:   scenario.TopologySpec{Source: "planetlab50"},
		Systems:    fig63Systems(maxUniverse),
		RowColumns: []string{"system", "param", "universe"},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
		Columns:    []string{"system", "param", "universe", "response_ms"},
	}
}

// Fig63 regenerates Figure 6.3.
func Fig63(p Params) (*Table, error) {
	return scenario.Run(SpecFig63(p), p.RunConfig())
}
