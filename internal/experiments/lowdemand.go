package experiments

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// family enumerates the quorum-system families of Figure 6.3 with their
// universe sizes on a graph of |V| nodes.
type family struct {
	name string
	mk   func(param int) (quorum.System, error)
	// params yields the family parameter values whose universe fits.
	params func(maxUniverse int) []int
}

func majorityFamily(name string, mk func(int) (quorum.Threshold, error), universeOf func(int) int) family {
	return family{
		name: name,
		mk: func(t int) (quorum.System, error) {
			s, err := mk(t)
			return s, err
		},
		params: func(maxUniverse int) []int {
			var out []int
			for t := 1; universeOf(t) <= maxUniverse; t++ {
				out = append(out, t)
			}
			return out
		},
	}
}

func allFamilies() []family {
	return []family{
		majorityFamily("majority(t+1,2t+1)", quorum.SimpleMajority, func(t int) int { return 2*t + 1 }),
		majorityFamily("majority(2t+1,3t+1)", quorum.ByzantineMajority, func(t int) int { return 3*t + 1 }),
		majorityFamily("majority(4t+1,5t+1)", quorum.QUMajority, func(t int) int { return 5*t + 1 }),
		{
			name: "grid",
			mk: func(k int) (quorum.System, error) {
				s, err := quorum.NewGrid(k)
				return s, err
			},
			params: func(maxUniverse int) []int {
				var out []int
				for k := 2; k*k <= maxUniverse; k++ {
					out = append(out, k)
				}
				return out
			},
		},
	}
}

// Fig63 regenerates Figure 6.3: average response time (alpha = 0, i.e.
// network delay) of one-to-one placements under the closest access
// strategy, as the universe grows, for all four systems plus the
// singleton baseline.
func Fig63(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "fig6.3",
		Title:   "Response time (ms) on PlanetLab-50, alpha=0, closest access strategy",
		Columns: []string{"system", "param", "universe", "response_ms"},
		Notes: []string{
			"paper: singleton is flat and lowest; smaller-quorum systems win at fixed universe size",
			"paper: grid < (t+1,2t+1) < (2t+1,3t+1) < (4t+1,5t+1) in most of the range",
			"paper: larger majorities degrade gracefully then sharply (critical point)",
		},
	}
	maxUniverse := topo.Size() - 1
	if p.Quick {
		maxUniverse = 16
	}

	// Singleton baseline.
	single, err := placement.Singleton(topo, 1)
	if err != nil {
		return nil, err
	}
	eS, err := core.NewEval(topo, quorum.Singleton{}, single, 0)
	if err != nil {
		return nil, err
	}
	singleDelay := eS.AvgNetworkDelay(core.ClosestStrategy{})
	tb.AddRow("singleton", "-", "1", f2(singleDelay))

	for _, fam := range allFamilies() {
		for _, param := range fam.params(maxUniverse) {
			sys, err := fam.mk(param)
			if err != nil {
				return nil, err
			}
			f, err := placement.OneToOne(topo, sys, placement.Options{})
			if err != nil {
				return nil, fmt.Errorf("fig6.3 %s param %d: %w", fam.name, param, err)
			}
			e, err := core.NewEval(topo, sys, f, 0)
			if err != nil {
				return nil, err
			}
			resp := e.AvgNetworkDelay(core.ClosestStrategy{})
			tb.AddRow(fam.name, itoa(param), itoa(sys.UniverseSize()), f2(resp))
		}
	}
	return tb, nil
}
