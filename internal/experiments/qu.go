package experiments

import (
	"fmt"
	"math"
	"sort"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/protocol"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// quSetup holds the per-t server placement and client sites of the §3
// experiment.
type quSetup struct {
	sys         quorum.Threshold
	serverSites []int
	clientSites []int // the 10 representative locations
}

// quPlace reproduces §3's setup for fault threshold t: n = 5t+1 servers
// placed one-to-one by the delay-minimizing algorithm (uniform access
// scoring), and 10 client locations whose average network delay to the
// placement approximates the all-nodes average.
func quPlace(topo *topology.Topology, t int) (*quSetup, error) {
	sys, err := quorum.QUMajority(t)
	if err != nil {
		return nil, err
	}
	f, err := placement.MajorityOneToOne(topo, sys, placement.Options{})
	if err != nil {
		return nil, err
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		return nil, err
	}
	clients, err := RepresentativeClients(e, 10)
	if err != nil {
		return nil, err
	}
	return &quSetup{sys: sys, serverSites: f.Targets(), clientSites: clients}, nil
}

// RepresentativeClients picks the k nodes whose expected network delay to
// the placement (under uniform access) is closest to the all-nodes
// average.
func RepresentativeClients(e *core.Eval, k int) ([]int, error) {
	n := e.Topo.Size()
	if k > n {
		return nil, fmt.Errorf("experiments: want %d client sites from %d nodes", k, n)
	}
	delays := make([]float64, n)
	sum := 0.0
	for v := 0; v < n; v++ {
		delays[v] = e.ClientResponseTime(core.BalancedStrategy{}, v)
		sum += delays[v]
	}
	avg := sum / float64(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := math.Abs(delays[idx[a]] - avg)
		db := math.Abs(delays[idx[b]] - avg)
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out, nil
}

// quRun executes the protocol with c clients per client site.
func quRun(p Params, topo *topology.Topology, setup *quSetup, perSite int) (*protocol.Metrics, error) {
	var clients []int
	for _, site := range setup.clientSites {
		for i := 0; i < perSite; i++ {
			clients = append(clients, site)
		}
	}
	cfg := protocol.Config{
		Topo:          topo,
		ServerSites:   setup.serverSites,
		QuorumSize:    setup.sys.QuorumSize(),
		ClientSites:   clients,
		ServiceTimeMS: 1, // §3: "application processing delay per client request ... was 1 ms"
		// Emulated access links (ModelNet) serialize each site's message
		// bursts; 0.8 ms/message ≈ 1 KB Q/U messages (payload +
		// authenticators) on a 10 Mbit/s emulated access link, which puts
		// the per-site uplink near saturation around 100 clients — the
		// knee Figure 3.2b shows past ~50 clients.
		LinkTxMS:   0.8,
		DurationMS: p.quDuration(),
		Seed:       p.Seed,
	}
	return protocol.RunSimAveraged(cfg, p.quRuns())
}

// Fig31 regenerates Figure 3.1: the response-time and network-delay
// surface over (number of clients, universe size).
func Fig31(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "fig3.1",
		Title:   "Q/U avg response time & network delay (ms) vs clients and universe size",
		Columns: []string{"t", "universe", "clients", "net_delay_ms", "response_ms"},
		Notes: []string{
			"paper: response time grows with client count (processing delay) and with universe size (network delay)",
			"paper: network delay is flat in client count for fixed universe",
		},
	}
	ts := []int{1, 2, 3, 4, 5}
	perSites := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p.Quick {
		ts = []int{1, 3}
		perSites = []int{1, 5}
	}
	for _, t := range ts {
		setup, err := quPlace(topo, t)
		if err != nil {
			return nil, err
		}
		for _, c := range perSites {
			m, err := quRun(p, topo, setup, c)
			if err != nil {
				return nil, err
			}
			tb.AddRow(itoa(t), itoa(setup.sys.UniverseSize()), itoa(10*c),
				f2(m.AvgNetDelayMS), f2(m.AvgResponseMS))
		}
	}
	return tb, nil
}

// Fig32a regenerates Figure 3.2a: components at 100 clients while t (and
// hence the universe size n = 5t+1) grows.
func Fig32a(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "fig3.2a",
		Title:   "Q/U delay components at 100 clients vs faults tolerated",
		Columns: []string{"t", "universe", "net_delay_ms", "response_ms"},
		Notes: []string{
			"paper: network delay increases with universe size (quorums spread apart)",
			"paper: processing share shrinks slightly as more servers share the load",
		},
	}
	ts := []int{1, 2, 3, 4, 5}
	perSite := 10
	if p.Quick {
		ts = []int{1, 3}
		perSite = 4
	}
	for _, t := range ts {
		setup, err := quPlace(topo, t)
		if err != nil {
			return nil, err
		}
		m, err := quRun(p, topo, setup, perSite)
		if err != nil {
			return nil, err
		}
		tb.AddRow(itoa(t), itoa(setup.sys.UniverseSize()), f2(m.AvgNetDelayMS), f2(m.AvgResponseMS))
	}
	return tb, nil
}

// Fig32b regenerates Figure 3.2b: components at t = 4 (n = 21) while the
// client count grows.
func Fig32b(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	tb := &Table{
		ID:      "fig3.2b",
		Title:   "Q/U delay components at t=4 (n=21) vs number of clients",
		Columns: []string{"clients", "net_delay_ms", "response_ms"},
		Notes: []string{
			"paper: below ~50 clients network delay dominates; beyond that processing delay grows",
		},
	}
	setup, err := quPlace(topo, 4)
	if err != nil {
		return nil, err
	}
	perSites := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if p.Quick {
		perSites = []int{1, 6}
	}
	for _, c := range perSites {
		m, err := quRun(p, topo, setup, c)
		if err != nil {
			return nil, err
		}
		tb.AddRow(itoa(10*c), f2(m.AvgNetDelayMS), f2(m.AvgResponseMS))
	}
	return tb, nil
}
