package experiments

import (
	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// RepresentativeClients picks the k nodes whose expected network delay to
// the placement (under uniform access) is closest to the all-nodes
// average — the §3 client-site selection, kept here for callers like
// cmd/qusim.
func RepresentativeClients(e *core.Eval, k int) ([]int, error) {
	return scenario.RepresentativeClients(e, k)
}

// quProtocol fixes the §3 simulation constants: 10 representative client
// locations, 1 ms of application processing per request, and 0.8
// ms/message of access-link serialization (≈ 1 KB Q/U messages on the
// emulated 10 Mbit/s links, which puts per-site uplinks near saturation
// around 100 clients — the knee Figure 3.2b shows past ~50 clients).
func quProtocol(ts, perSite []int) *scenario.ProtocolSpec {
	return &scenario.ProtocolSpec{
		Ts:            ts,
		PerSite:       perSite,
		ClientSites:   10,
		ServiceTimeMS: 1,
		LinkTxMS:      0.8,
	}
}

// SpecFig31 declares Figure 3.1 — the response-time and network-delay
// surface over (number of clients, universe size) — at the given scale.
func SpecFig31(p Params) *scenario.Spec {
	ts := []int{1, 2, 3, 4, 5}
	perSites := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p.Quick {
		ts = []int{1, 3}
		perSites = []int{1, 5}
	}
	return &scenario.Spec{
		Name:  "fig3.1",
		Title: "Q/U avg response time & network delay (ms) vs clients and universe size",
		Kind:  scenario.KindProtocol,
		Notes: []string{
			"paper: response time grows with client count (processing delay) and with universe size (network delay)",
			"paper: network delay is flat in client count for fixed universe",
		},
		Topology:   scenario.TopologySpec{Source: "planetlab50"},
		RowColumns: []string{"t", "universe", "clients"},
		Protocol:   quProtocol(ts, perSites),
		Columns:    []string{"t", "universe", "clients", "net_delay_ms", "response_ms"},
	}
}

// Fig31 regenerates Figure 3.1.
func Fig31(p Params) (*Table, error) {
	return scenario.Run(SpecFig31(p), p.RunConfig())
}

// SpecFig32a declares Figure 3.2a: components at 100 clients while t
// (and hence the universe size n = 5t+1) grows.
func SpecFig32a(p Params) *scenario.Spec {
	ts := []int{1, 2, 3, 4, 5}
	perSite := 10
	if p.Quick {
		ts = []int{1, 3}
		perSite = 4
	}
	return &scenario.Spec{
		Name:  "fig3.2a",
		Title: "Q/U delay components at 100 clients vs faults tolerated",
		Kind:  scenario.KindProtocol,
		Notes: []string{
			"paper: network delay increases with universe size (quorums spread apart)",
			"paper: processing share shrinks slightly as more servers share the load",
		},
		Topology:   scenario.TopologySpec{Source: "planetlab50"},
		RowColumns: []string{"t", "universe"},
		Protocol:   quProtocol(ts, []int{perSite}),
		Columns:    []string{"t", "universe", "net_delay_ms", "response_ms"},
	}
}

// Fig32a regenerates Figure 3.2a.
func Fig32a(p Params) (*Table, error) {
	return scenario.Run(SpecFig32a(p), p.RunConfig())
}

// SpecFig32b declares Figure 3.2b: components at t = 4 (n = 21) while
// the client count grows.
func SpecFig32b(p Params) *scenario.Spec {
	perSites := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if p.Quick {
		perSites = []int{1, 6}
	}
	return &scenario.Spec{
		Name:  "fig3.2b",
		Title: "Q/U delay components at t=4 (n=21) vs number of clients",
		Kind:  scenario.KindProtocol,
		Notes: []string{
			"paper: below ~50 clients network delay dominates; beyond that processing delay grows",
		},
		Topology:   scenario.TopologySpec{Source: "planetlab50"},
		RowColumns: []string{"clients"},
		Protocol:   quProtocol([]int{4}, perSites),
		Columns:    []string{"clients", "net_delay_ms", "response_ms"},
	}
}

// Fig32b regenerates Figure 3.2b.
func Fig32b(p Params) (*Table, error) {
	return scenario.Run(SpecFig32b(p), p.RunConfig())
}
