package experiments

import (
	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/par"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Fig89 regenerates Figure 8.9: network delay achieved by the iterative
// algorithm (after its first and second iterations) on a 5×5 Grid as the
// uniform node capacity varies, against the one-to-one placement
// baseline.
func Fig89(p Params) (*Table, error) {
	topo := topology.PlanetLab50(p.Seed)
	k := 5
	if p.Quick {
		k = 3
	}
	sys, err := quorum.NewGrid(k)
	if err != nil {
		return nil, err
	}

	// One-to-one baseline (balanced access, matching the iterative
	// algorithm's uniform starting strategy).
	oto, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		return nil, err
	}
	eOto, err := core.NewEval(topo, sys, oto, 0)
	if err != nil {
		return nil, err
	}
	otoDelay := eOto.AvgNetworkDelay(core.BalancedStrategy{})

	tb := &Table{
		ID:      "fig8.9",
		Title:   "Iterative algorithm network delay (ms), 5x5 Grid on PlanetLab-50",
		Columns: []string{"capacity", "iter1_net_delay", "iter2_net_delay", "one_to_one"},
		Notes: []string{
			"paper: the big improvement lands after phase 1 of iteration 1; phase 2 adds 2–5 ms",
			"paper: most runs terminate after the first iteration",
			"paper: the iterative (many-to-one) delay beats one-to-one at every capacity",
		},
	}

	values := strategy.SweepValues(sys.OptimalLoad(), sweepCount(p))
	// Limit anchors on quick runs to keep tests fast.
	var candidates []int
	if p.Quick {
		candidates = []int{0, 5, 10, 15}
	}
	// Each capacity value runs the full iterative algorithm independently
	// (on its own topology clone), so the sweep fans out over a bounded
	// worker pool; results land in value order regardless of scheduling.
	type point struct {
		iter1, iter2 float64
		err          error
	}
	pts := make([]point, len(values))
	runPoint := func(i int) {
		c := values[i]
		tp := topo.Clone()
		if err := tp.SetUniformCapacity(c); err != nil {
			pts[i].err = err
			return
		}
		res, err := placement.Iterate(tp, sys, placement.IterateConfig{
			Alpha:         0,
			MaxIterations: 2,
			Candidates:    candidates,
			LP:            p.lpOptions(),
			// The capacity points already saturate the worker pool;
			// nesting the anchor search's pool on top would multiply
			// live LP workspaces to GOMAXPROCS².
			Workers: 1,
		})
		if err != nil {
			pts[i].err = err
			return
		}
		pts[i].iter1 = res.History[0].Phase2NetDelay
		pts[i].iter2 = pts[i].iter1
		if len(res.History) > 1 {
			pts[i].iter2 = res.History[1].Phase2NetDelay
		}
	}
	par.For(len(values), 0, runPoint)
	for i, c := range values {
		if pts[i].err != nil {
			return nil, pts[i].err
		}
		tb.AddRow(f3(c), f2(pts[i].iter1), f2(pts[i].iter2), f2(otoDelay))
	}
	return tb, nil
}
