package experiments

import "github.com/quorumnet/quorumnet/internal/scenario"

// SpecFig89 declares Figure 8.9: network delay achieved by the
// iterative algorithm (after its first and second iterations) on a 5×5
// Grid as the uniform node capacity varies, against the one-to-one
// placement baseline.
func SpecFig89(p Params) *scenario.Spec {
	k := 5
	var candidates []int
	if p.Quick {
		k = 3
		// Limit anchors on quick runs to keep tests fast.
		candidates = []int{0, 5, 10, 15}
	}
	return &scenario.Spec{
		Name:  "fig8.9",
		Title: "Iterative algorithm network delay (ms), 5x5 Grid on PlanetLab-50",
		Kind:  scenario.KindIterate,
		Notes: []string{
			"paper: the big improvement lands after phase 1 of iteration 1; phase 2 adds 2–5 ms",
			"paper: most runs terminate after the first iteration",
			"paper: the iterative (many-to-one) delay beats one-to-one at every capacity",
		},
		Topology: scenario.TopologySpec{Source: "planetlab50"},
		Systems:  []scenario.SystemAxis{{Family: "grid", Params: []int{k}}},
		Iterate: &scenario.IterateSpec{
			Points:        sweepCount(p),
			MaxIterations: 2,
			Candidates:    candidates,
		},
	}
}

// Fig89 regenerates Figure 8.9.
func Fig89(p Params) (*Table, error) {
	return scenario.Run(SpecFig89(p), p.RunConfig())
}
