package experiments

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// gridOnDaxlist places a k×k grid one-to-one on the daxlist topology and
// returns evaluators for the requested alphas.
func gridEvals(topo *topology.Topology, k int, alphas []float64) ([]*core.Eval, error) {
	sys, err := quorum.NewGrid(k)
	if err != nil {
		return nil, err
	}
	f, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		return nil, fmt.Errorf("grid %dx%d placement: %w", k, k, err)
	}
	out := make([]*core.Eval, len(alphas))
	for i, a := range alphas {
		e, err := core.NewEval(topo, sys, f, a)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func gridDims(topo *topology.Topology, quick bool) []int {
	var out []int
	maxK := 2
	for k := 2; k*k <= topo.Size()-1; k++ {
		maxK = k
	}
	step := 1
	if quick {
		step = 3
	}
	for k := 2; k <= maxK; k += step {
		out = append(out, k)
	}
	return out
}

// Fig64 regenerates Figure 6.4: Grid response times under the closest and
// balanced strategies at client demands 1000 and 4000 on daxlist-161.
func Fig64(p Params) (*Table, error) {
	topo := topology.Daxlist161(p.Seed)
	tb := &Table{
		ID:    "fig6.4",
		Title: "Grid response time (ms) on daxlist-161, closest vs balanced, demand 1000/4000",
		Columns: []string{"universe",
			"closest_d1000", "balanced_d1000", "closest_d4000", "balanced_d4000"},
		Notes: []string{
			"paper: closest wins at demand 1000 (especially at large universes); balanced wins at 4000",
			"paper: the demand-1000 lines cross repeatedly (gray zone between the strategies)",
		},
	}
	alphas := []float64{core.AlphaForDemand(1000), core.AlphaForDemand(4000)}
	for _, k := range gridDims(topo, p.Quick) {
		evals, err := gridEvals(topo, k, alphas)
		if err != nil {
			return nil, err
		}
		c1 := evals[0].AvgResponseTime(core.ClosestStrategy{})
		b1 := evals[0].AvgResponseTime(core.BalancedStrategy{})
		c4 := evals[1].AvgResponseTime(core.ClosestStrategy{})
		b4 := evals[1].AvgResponseTime(core.BalancedStrategy{})
		tb.AddRow(itoa(k*k), f2(c1), f2(b1), f2(c4), f2(b4))
	}
	return tb, nil
}

// Fig65 regenerates Figure 6.5: network delay and response time for both
// strategies at client demand 16000.
func Fig65(p Params) (*Table, error) {
	topo := topology.Daxlist161(p.Seed)
	tb := &Table{
		ID:    "fig6.5",
		Title: "Grid delay components (ms) on daxlist-161 at demand 16000",
		Columns: []string{"universe",
			"net_closest", "resp_closest", "net_balanced", "resp_balanced"},
		Notes: []string{
			"paper: balanced response time decreases with universe size (load spreads); closest does not",
			"paper: network delay increases with universe size for both strategies",
		},
	}
	alpha := core.AlphaForDemand(16000)
	for _, k := range gridDims(topo, p.Quick) {
		evals, err := gridEvals(topo, k, []float64{alpha})
		if err != nil {
			return nil, err
		}
		e := evals[0]
		tb.AddRow(itoa(k*k),
			f2(e.AvgNetworkDelay(core.ClosestStrategy{})),
			f2(e.AvgResponseTime(core.ClosestStrategy{})),
			f2(e.AvgNetworkDelay(core.BalancedStrategy{})),
			f2(e.AvgResponseTime(core.BalancedStrategy{})))
	}
	return tb, nil
}
