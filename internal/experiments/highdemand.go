package experiments

import "github.com/quorumnet/quorumnet/internal/scenario"

// gridAxis expands the k×k Grid over every k that fits the topology,
// striding by 3 on quick runs.
func gridAxis(quick bool) scenario.SystemAxis {
	a := scenario.SystemAxis{Family: "grid"}
	if quick {
		a.Step = 3
	}
	return a
}

// SpecFig64 declares Figure 6.4: Grid response times under the closest
// and balanced strategies at client demands 1000 and 4000 on daxlist-161.
func SpecFig64(p Params) *scenario.Spec {
	return &scenario.Spec{
		Name:  "fig6.4",
		Title: "Grid response time (ms) on daxlist-161, closest vs balanced, demand 1000/4000",
		Kind:  scenario.KindEval,
		Notes: []string{
			"paper: closest wins at demand 1000 (especially at large universes); balanced wins at 4000",
			"paper: the demand-1000 lines cross repeatedly (gray zone between the strategies)",
		},
		Topology:   scenario.TopologySpec{Source: "daxlist161"},
		Systems:    []scenario.SystemAxis{gridAxis(p.Quick)},
		RowColumns: []string{"universe"},
		Demands:    []float64{1000, 4000},
		Strategies: []string{"closest", "balanced"},
		Measures:   []string{"response"},
		Columns: []string{"universe",
			"closest_d1000", "balanced_d1000", "closest_d4000", "balanced_d4000"},
	}
}

// Fig64 regenerates Figure 6.4.
func Fig64(p Params) (*Table, error) {
	return scenario.Run(SpecFig64(p), p.RunConfig())
}

// SpecFig65 declares Figure 6.5: network delay and response time for
// both strategies at client demand 16000.
func SpecFig65(p Params) *scenario.Spec {
	return &scenario.Spec{
		Name:  "fig6.5",
		Title: "Grid delay components (ms) on daxlist-161 at demand 16000",
		Kind:  scenario.KindEval,
		Notes: []string{
			"paper: balanced response time decreases with universe size (load spreads); closest does not",
			"paper: network delay increases with universe size for both strategies",
		},
		Topology:   scenario.TopologySpec{Source: "daxlist161"},
		Systems:    []scenario.SystemAxis{gridAxis(p.Quick)},
		RowColumns: []string{"universe"},
		Demands:    []float64{16000},
		Strategies: []string{"closest", "balanced"},
		Measures:   []string{"net", "response"},
		Columns: []string{"universe",
			"net_closest", "resp_closest", "net_balanced", "resp_balanced"},
	}
}

// Fig65 regenerates Figure 6.5.
func Fig65(p Params) (*Table, error) {
	return scenario.Run(SpecFig65(p), p.RunConfig())
}
