package experiments

import (
	"bytes"
	"testing"

	"github.com/quorumnet/quorumnet/internal/scenario"
)

// TestFigureSpecsShardedByteIdentical is the sharding acceptance
// criterion: for every one of the ten figure specs in Reproducible
// mode, the merged sharded table — any shard count 1..8, partials
// merged in an order different from shard order — is byte-identical to
// the unsharded Run output.
func TestFigureSpecsShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("executes every figure spec 9 times")
	}
	p := quickParams()
	p.Reproducible = true
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			if exp.Spec == nil {
				t.Fatalf("%s: figure has no declarative spec", exp.ID)
			}
			spec := exp.Spec(p)
			cfg := p.RunConfig()
			base, err := scenario.Run(spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var baseText bytes.Buffer
			if err := base.Format(&baseText); err != nil {
				t.Fatal(err)
			}
			for shards := 1; shards <= 8; shards++ {
				space, err := scenario.NewSpace(spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				partials := make([]*scenario.Partial, 0, shards)
				// Execute shards in reverse and merge them in that order:
				// the merged output must not depend on completion order.
				for si := shards - 1; si >= 0; si-- {
					part, err := space.Shard(si, shards)
					if err != nil {
						t.Fatal(err)
					}
					partial, err := part.Execute()
					if err != nil {
						t.Fatalf("shard %d/%d: %v", si, shards, err)
					}
					partials = append(partials, partial)
				}
				merged, err := space.Merge(partials)
				if err != nil {
					t.Fatalf("merge %d shards: %v", shards, err)
				}
				var mergedText bytes.Buffer
				if err := merged.Format(&mergedText); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseText.Bytes(), mergedText.Bytes()) {
					t.Fatalf("%d-shard merged table differs from unsharded run:\n%s\nvs\n%s",
						shards, baseText.String(), mergedText.String())
				}
			}
		})
	}
}

// TestSeedScaleStudyShardedByteIdentical is the seed/scale-axis
// acceptance criterion: the library's multi-seed scaled study — the
// one-spec form of the paper's ~100x parameter studies — merges
// byte-identically to its unsharded run at every shard count 1..8, in
// Reproducible mode AND in the default fast mode (warm-started,
// partially priced solves), with partials merged out of shard order.
func TestSeedScaleStudyShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("executes the study 18 times")
	}
	spec := scenario.SeedScaleStudy()
	for _, mode := range []struct {
		name string
		cfg  scenario.RunConfig
	}{
		{"reproducible", scenario.RunConfig{Reproducible: true}},
		{"fast", scenario.RunConfig{}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			base, err := scenario.Run(&spec, mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var baseText bytes.Buffer
			if err := base.Format(&baseText); err != nil {
				t.Fatal(err)
			}
			for shards := 1; shards <= 8; shards++ {
				space, err := scenario.NewSpace(&spec, mode.cfg)
				if err != nil {
					t.Fatal(err)
				}
				partials := make([]*scenario.Partial, 0, shards)
				for si := shards - 1; si >= 0; si-- {
					part, err := space.Shard(si, shards)
					if err != nil {
						t.Fatal(err)
					}
					partial, err := part.Execute()
					if err != nil {
						t.Fatalf("shard %d/%d: %v", si, shards, err)
					}
					partials = append(partials, partial)
				}
				merged, err := space.Merge(partials)
				if err != nil {
					t.Fatalf("merge %d shards: %v", shards, err)
				}
				var mergedText bytes.Buffer
				if err := merged.Format(&mergedText); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseText.Bytes(), mergedText.Bytes()) {
					t.Fatalf("%s mode, %d shards: merged study differs from unsharded run:\n%s\nvs\n%s",
						mode.name, shards, mergedText.String(), baseText.String())
				}
			}
		})
	}
}
