package protocol

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/topology"
)

func BenchmarkRunSimQU(b *testing.B) {
	topo := topology.PlanetLab50(1)
	cfg := Config{
		Topo:          topo,
		ServerSites:   []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		QuorumSize:    9,
		ClientSites:   []int{12, 14, 16, 18, 20, 22, 24, 26, 28, 30},
		ServiceTimeMS: 1,
		LinkTxMS:      0.8,
		DurationMS:    5000,
		Seed:          1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSim(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
