// Package protocol implements a Q/U-style single-round quorum RPC
// protocol and the machinery to run it over simulated or real transports,
// reproducing the motivating experiment of §3.
//
// Q/U (Abd-El-Malek et al., SOSP 2005) is a Byzantine fault-tolerant
// protocol with n = 5t+1 servers and quorums of 4t+1; in the common case
// an operation completes in a single round trip to one quorum. The paper's
// experiment exercises exactly that path: closed-loop clients repeatedly
// pick a uniformly random quorum, send the request to every member, each
// server processes requests serially (FIFO) with a fixed service time,
// and the operation completes when the slowest quorum member's reply
// arrives. This package models those delays faithfully; it does not
// implement Q/U's versioning or repair machinery, which the experiment
// never exercises (see DESIGN.md).
package protocol

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/quorumnet/quorumnet/internal/des"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Transport delivers scheduled actions between sites after a delay, and
// exposes a clock. Implementations: SimTransport (discrete-event,
// deterministic) and RealTransport (goroutines and wall-clock timers).
type Transport interface {
	// Deliver runs action after delayMS milliseconds of simulated (or
	// scaled real) time. Actions are executed serially.
	Deliver(delayMS float64, action func()) error
	// Now returns the transport's current time in milliseconds.
	Now() float64
}

// SimTransport runs actions on a discrete-event simulator.
type SimTransport struct {
	Sim *des.Simulator
}

var _ Transport = (*SimTransport)(nil)

// Deliver implements Transport.
func (t *SimTransport) Deliver(delayMS float64, action func()) error {
	return t.Sim.Schedule(delayMS, action)
}

// Now implements Transport.
func (t *SimTransport) Now() float64 { return t.Sim.Now() }

// Config describes one protocol run.
type Config struct {
	// Topo provides the RTT metric; one-way delay is RTT/2.
	Topo *topology.Topology
	// ServerSites lists the node hosting each server (the placement's
	// support; one server per universe element for one-to-one
	// placements).
	ServerSites []int
	// QuorumSize q: each request goes to a uniformly random q-subset of
	// servers (4t+1 for Q/U).
	QuorumSize int
	// ClientSites lists the node of each client; duplicate a node to run
	// several clients there.
	ClientSites []int
	// ServiceTimeMS is the per-request processing time at a server (1 ms
	// in §3).
	ServiceTimeMS float64
	// LinkTxMS is the transmission (serialization) time of one message on
	// a site's access link. The ModelNet emulation the paper used gives
	// every site a finite-bandwidth access link, so a client's burst of
	// 4t+1 requests — and the co-located clients' bursts — serialize
	// before entering the wide area; this is the dominant source of the
	// client-count-dependent delay in Figures 3.1/3.2. Zero disables link
	// modeling (infinite bandwidth).
	LinkTxMS float64
	// ThinkTimeMS is the pause between a client's operation completing
	// and its next request (0 = the paper's back-to-back closed loop).
	ThinkTimeMS float64
	// DurationMS is how long clients keep issuing requests.
	DurationMS float64
	// WarmupMS excludes initial requests from the metrics (defaults to
	// 10% of DurationMS).
	WarmupMS float64
	// Seed drives quorum selection.
	Seed int64
}

func (c *Config) validate() error {
	switch {
	case c.Topo == nil:
		return fmt.Errorf("protocol: nil topology")
	case len(c.ServerSites) == 0:
		return fmt.Errorf("protocol: no servers")
	case c.QuorumSize <= 0 || c.QuorumSize > len(c.ServerSites):
		return fmt.Errorf("protocol: quorum size %d out of range [1,%d]", c.QuorumSize, len(c.ServerSites))
	case len(c.ClientSites) == 0:
		return fmt.Errorf("protocol: no clients")
	case c.ServiceTimeMS < 0:
		return fmt.Errorf("protocol: negative service time")
	case c.LinkTxMS < 0:
		return fmt.Errorf("protocol: negative link transmission time")
	case c.ThinkTimeMS < 0:
		return fmt.Errorf("protocol: negative think time")
	case c.DurationMS <= 0:
		return fmt.Errorf("protocol: non-positive duration")
	}
	for _, s := range c.ServerSites {
		if s < 0 || s >= c.Topo.Size() {
			return fmt.Errorf("protocol: server site %d out of range", s)
		}
	}
	for _, v := range c.ClientSites {
		if v < 0 || v >= c.Topo.Size() {
			return fmt.Errorf("protocol: client site %d out of range", v)
		}
	}
	return nil
}

// Metrics summarizes a run. Averages are taken per client first and then
// across clients ("the average response time over all the clients", §3),
// so slow, distant clients are not underweighted by completing fewer
// closed-loop operations.
type Metrics struct {
	// Requests counts completed operations inside the measurement window.
	Requests int
	// AvgResponseMS is the client-averaged operation latency: network +
	// queueing + service, to the slowest quorum member.
	AvgResponseMS float64
	// AvgNetDelayMS is the client-averaged maximum RTT to the accessed
	// quorums — the load-free component of response time.
	AvgNetDelayMS float64
	// MaxServerQueueMS is the largest queueing delay any request saw.
	MaxServerQueueMS float64
}

// cluster is the protocol state machine, driven by a Transport.
type cluster struct {
	cfg  Config
	tr   Transport
	rng  *rand.Rand
	half [][]float64 // one-way delays client-site × server index

	busyUntil []float64 // per server
	upBusy    []float64 // per site: access-link uplink busy-until

	maxQueue float64
}

type clientState struct {
	idx     int
	site    int
	pending int     // outstanding replies for current request
	started float64 // request start time
	netMax  float64 // max RTT to the chosen quorum

	// per-client accumulators for the macro-averaged metrics
	sumResp float64
	sumNet  float64
	count   int
}

// Run executes the protocol on the given transport until DurationMS, then
// drains in-flight requests and reports metrics. With a SimTransport the
// run is fully deterministic for a fixed seed.
func Run(cfg Config, tr Transport) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	warmup := cfg.WarmupMS
	if warmup == 0 {
		warmup = cfg.DurationMS / 10
	}

	c := &cluster{
		cfg:       cfg,
		tr:        tr,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		busyUntil: make([]float64, len(cfg.ServerSites)),
		upBusy:    make([]float64, cfg.Topo.Size()),
	}
	// Precompute one-way client-site → server delays.
	c.half = make([][]float64, len(cfg.ClientSites))
	for i, v := range cfg.ClientSites {
		row := cfg.Topo.RTTRow(v)
		c.half[i] = make([]float64, len(cfg.ServerSites))
		for j, s := range cfg.ServerSites {
			c.half[i][j] = row[s] / 2
		}
	}

	clients := make([]*clientState, len(cfg.ClientSites))
	for i, v := range cfg.ClientSites {
		clients[i] = &clientState{idx: i, site: v}
	}

	var issue func(cl *clientState) error
	issue = func(cl *clientState) error {
		if c.tr.Now() >= cfg.DurationMS {
			return nil // run over; stop the closed loop
		}
		quorum := c.sampleQuorum()
		cl.pending = len(quorum)
		cl.started = c.tr.Now()
		cl.netMax = 0
		for _, srv := range quorum {
			oneWay := c.half[cl.idx][srv]
			if rtt := 2 * oneWay; rtt > cl.netMax {
				cl.netMax = rtt
			}
			srv := srv
			// The request serializes onto the client site's uplink, then
			// travels to the server.
			txDone := c.sendOnLink(cl.site, c.tr.Now())
			err := c.tr.Deliver(txDone-c.tr.Now()+oneWay, func() {
				arrival := c.tr.Now()
				start := arrival
				if c.busyUntil[srv] > start {
					start = c.busyUntil[srv]
				}
				if wait := start - arrival; wait > c.maxQueue {
					c.maxQueue = wait
				}
				done := start + cfg.ServiceTimeMS
				c.busyUntil[srv] = done
				// The reply serializes onto the server site's uplink and
				// travels back.
				replyTxDone := c.sendOnLink(cfg.ServerSites[srv], done)
				replyDelay := (replyTxDone - arrival) + oneWay
				if err := c.tr.Deliver(replyDelay, func() {
					cl.pending--
					if cl.pending > 0 {
						return
					}
					// Operation complete at the slowest quorum member.
					resp := c.tr.Now() - cl.started
					if cl.started >= warmup {
						cl.sumResp += resp
						cl.sumNet += cl.netMax
						cl.count++
					}
					next := func() {
						if err := issue(cl); err != nil {
							panic(err) // unreachable: issue only errs via Deliver
						}
					}
					if cfg.ThinkTimeMS > 0 {
						if err := c.tr.Deliver(cfg.ThinkTimeMS, next); err != nil {
							panic(err)
						}
					} else {
						next()
					}
				}); err != nil {
					panic(err)
				}
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	for _, cl := range clients {
		if err := issue(cl); err != nil {
			return nil, err
		}
	}
	if sim, ok := tr.(*SimTransport); ok {
		sim.Sim.Run()
	} else if waiter, ok := tr.(interface{ Wait() }); ok {
		waiter.Wait()
	}

	m := &Metrics{MaxServerQueueMS: c.maxQueue}
	active := 0
	for _, cl := range clients {
		m.Requests += cl.count
		if cl.count > 0 {
			m.AvgResponseMS += cl.sumResp / float64(cl.count)
			m.AvgNetDelayMS += cl.sumNet / float64(cl.count)
			active++
		}
	}
	if active > 0 {
		m.AvgResponseMS /= float64(active)
		m.AvgNetDelayMS /= float64(active)
	}
	return m, nil
}

// sendOnLink serializes one message onto a site's uplink starting no
// earlier than ready, returning the time transmission completes. With
// LinkTxMS = 0 the link is transparent.
func (c *cluster) sendOnLink(site int, ready float64) float64 {
	tx := c.cfg.LinkTxMS
	if tx == 0 {
		return ready
	}
	start := ready
	if c.upBusy[site] > start {
		start = c.upBusy[site]
	}
	done := start + tx
	c.upBusy[site] = done
	return done
}

// sampleQuorum draws a uniformly random q-subset of server indices.
func (c *cluster) sampleQuorum() []int {
	n := len(c.cfg.ServerSites)
	q := c.cfg.QuorumSize
	perm := c.rng.Perm(n)[:q]
	sort.Ints(perm)
	return perm
}

// RunSim is the common case: execute on a fresh discrete-event simulator.
func RunSim(cfg Config) (*Metrics, error) {
	return Run(cfg, &SimTransport{Sim: &des.Simulator{}})
}

// RunSimAveraged repeats RunSim with seeds seed, seed+1, … and averages
// the metrics, as the paper does ("running each experiment 5 times and
// then taking the mean").
func RunSimAveraged(cfg Config, runs int) (*Metrics, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("protocol: non-positive run count %d", runs)
	}
	var agg Metrics
	for r := 0; r < runs; r++ {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		m, err := RunSim(c)
		if err != nil {
			return nil, err
		}
		agg.Requests += m.Requests
		agg.AvgResponseMS += m.AvgResponseMS
		agg.AvgNetDelayMS += m.AvgNetDelayMS
		if m.MaxServerQueueMS > agg.MaxServerQueueMS {
			agg.MaxServerQueueMS = m.MaxServerQueueMS
		}
	}
	agg.Requests /= runs
	agg.AvgResponseMS /= float64(runs)
	agg.AvgNetDelayMS /= float64(runs)
	return &agg, nil
}
