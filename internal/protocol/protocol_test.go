package protocol

import (
	"math"
	"math/rand"
	"testing"

	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// flatTopo builds a topology where every pair of distinct sites has the
// same RTT, making expected delays analytically checkable.
func flatTopo(t *testing.T, n int, rtt float64) *topology.Topology {
	t.Helper()
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rtt)
		}
	}
	tp, err := topology.New("flat", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func baseConfig(t *testing.T) Config {
	t.Helper()
	topo := flatTopo(t, 12, 40)
	return Config{
		Topo:          topo,
		ServerSites:   []int{0, 1, 2, 3, 4, 5},
		QuorumSize:    5,
		ClientSites:   []int{6, 7},
		ServiceTimeMS: 1,
		DurationMS:    2000,
		Seed:          1,
	}
}

func TestConfigValidation(t *testing.T) {
	ok := baseConfig(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil topo", mutate: func(c *Config) { c.Topo = nil }},
		{name: "no servers", mutate: func(c *Config) { c.ServerSites = nil }},
		{name: "bad quorum", mutate: func(c *Config) { c.QuorumSize = 7 }},
		{name: "zero quorum", mutate: func(c *Config) { c.QuorumSize = 0 }},
		{name: "no clients", mutate: func(c *Config) { c.ClientSites = nil }},
		{name: "bad server site", mutate: func(c *Config) { c.ServerSites = []int{99} }},
		{name: "bad client site", mutate: func(c *Config) { c.ClientSites = []int{-1} }},
		{name: "negative service", mutate: func(c *Config) { c.ServiceTimeMS = -1 }},
		{name: "zero duration", mutate: func(c *Config) { c.DurationMS = 0 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ok
			tc.mutate(&cfg)
			if _, err := RunSim(cfg); err == nil {
				t.Error("RunSim accepted invalid config")
			}
		})
	}
}

func TestSingleClientLightLoad(t *testing.T) {
	// One client on a flat topology, negligible load: response time must
	// equal RTT + service time exactly, and network delay must equal RTT.
	cfg := baseConfig(t)
	cfg.ClientSites = []int{6}
	m, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if math.Abs(m.AvgNetDelayMS-40) > 1e-9 {
		t.Errorf("AvgNetDelayMS = %v, want 40", m.AvgNetDelayMS)
	}
	if math.Abs(m.AvgResponseMS-41) > 1e-9 {
		t.Errorf("AvgResponseMS = %v, want 41 (RTT + 1ms service)", m.AvgResponseMS)
	}
	if m.MaxServerQueueMS != 0 {
		t.Errorf("MaxServerQueueMS = %v, want 0 under a single client", m.MaxServerQueueMS)
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	// A single client completes one op per 41 ms; over 2050 ms (with 10%
	// warmup = 205 ms) roughly (2050-205)/41 ≈ 45 requests land in the
	// window.
	cfg := baseConfig(t)
	cfg.ClientSites = []int{6}
	cfg.DurationMS = 2050
	m, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests < 40 || m.Requests > 50 {
		t.Errorf("Requests = %d, want ≈45", m.Requests)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := baseConfig(t)
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.AvgResponseMS != b.AvgResponseMS {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 2
	c, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Requests == a.Requests && c.AvgResponseMS == a.AvgResponseMS && c.AvgNetDelayMS == a.AvgNetDelayMS {
		t.Log("different seed produced identical metrics (possible on a flat topology)")
	}
}

func TestLoadIncreasesResponseTime(t *testing.T) {
	// Many clients on few servers: queueing must push response time well
	// above the light-load level, while network delay stays flat.
	cfg := baseConfig(t)
	light, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := cfg
	heavy.ClientSites = manyClients(6, 11, 8) // 48 clients
	hm, err := RunSim(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hm.AvgResponseMS <= light.AvgResponseMS {
		t.Errorf("heavy load response %v not above light load %v", hm.AvgResponseMS, light.AvgResponseMS)
	}
	if math.Abs(hm.AvgNetDelayMS-light.AvgNetDelayMS) > 1e-6 {
		t.Errorf("network delay changed with load: %v vs %v", hm.AvgNetDelayMS, light.AvgNetDelayMS)
	}
	if hm.MaxServerQueueMS == 0 {
		t.Error("no queueing under 48 clients")
	}
}

func TestResponseAtLeastNetworkPlusService(t *testing.T) {
	// Under any load, response ≥ network delay + service time.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		topo := randomTopo(t, 10, rng.Int63())
		cfg := Config{
			Topo:          topo,
			ServerSites:   []int{0, 1, 2, 3, 4},
			QuorumSize:    4,
			ClientSites:   manyClients(5, 9, 1+rng.Intn(5)),
			ServiceTimeMS: 1,
			DurationMS:    1500,
			Seed:          rng.Int63(),
		}
		m, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.AvgResponseMS < m.AvgNetDelayMS+cfg.ServiceTimeMS-1e-9 {
			t.Errorf("trial %d: response %v < net %v + service", trial, m.AvgResponseMS, m.AvgNetDelayMS)
		}
	}
}

func TestBiggerQuorumSlowerResponse(t *testing.T) {
	// On a topology with varied distances, larger quorums reach farther
	// servers: average network delay must be non-decreasing in q.
	topo := randomTopo(t, 10, 42)
	prev := 0.0
	for _, q := range []int{2, 4, 6} {
		cfg := Config{
			Topo:          topo,
			ServerSites:   []int{0, 1, 2, 3, 4, 5},
			QuorumSize:    q,
			ClientSites:   []int{7},
			ServiceTimeMS: 1,
			DurationMS:    3000,
			Seed:          5,
		}
		m, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.AvgNetDelayMS < prev-1e-6 {
			t.Errorf("q=%d: network delay %v below q-2's %v", q, m.AvgNetDelayMS, prev)
		}
		prev = m.AvgNetDelayMS
	}
}

func TestRunSimAveraged(t *testing.T) {
	cfg := baseConfig(t)
	m, err := RunSimAveraged(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.AvgResponseMS <= 0 {
		t.Errorf("averaged metrics empty: %+v", m)
	}
	if _, err := RunSimAveraged(cfg, 0); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestRealTransportProtocolCorrectness(t *testing.T) {
	// The engine must behave identically (in protocol terms) over the
	// goroutine transport: requests complete, response ≥ network delay.
	cfg := baseConfig(t)
	cfg.DurationMS = 300
	// 1 simulated ms = 0.02 real ms → the run lasts ~6 real ms.
	tr, err := NewRealTransport(0.02)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("no requests completed on real transport")
	}
	if m.AvgResponseMS < m.AvgNetDelayMS {
		t.Errorf("response %v below network delay %v", m.AvgResponseMS, m.AvgNetDelayMS)
	}
}

func TestRealTransportValidation(t *testing.T) {
	if _, err := NewRealTransport(0); err == nil {
		t.Error("zero scale accepted")
	}
	tr, err := NewRealTransport(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Deliver(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func manyClients(from, to, per int) []int {
	var out []int
	for site := from; site <= to; site++ {
		for c := 0; c < per; c++ {
			out = append(out, site)
		}
	}
	return out
}

func randomTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 5+rng.Float64()*95)
		}
	}
	m.MetricClosure()
	tp, err := topology.New("rand", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestLinkSerializationAddsDelay(t *testing.T) {
	// With link modeling on, a burst of q requests serializes on the
	// client uplink: the last request departs (q-1)*tx late, so response
	// time rises accordingly while the pure network-delay measure stays
	// put.
	cfg := baseConfig(t)
	cfg.ClientSites = []int{6}
	base, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LinkTxMS = 0.5
	linked, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if linked.AvgResponseMS <= base.AvgResponseMS {
		t.Errorf("link tx did not increase response: %v vs %v",
			linked.AvgResponseMS, base.AvgResponseMS)
	}
	if math.Abs(linked.AvgNetDelayMS-base.AvgNetDelayMS) > 1e-9 {
		t.Errorf("link tx changed network-delay measure: %v vs %v",
			linked.AvgNetDelayMS, base.AvgNetDelayMS)
	}
	// Flat topology: every quorum member is 40 ms away. The q-th request
	// finishes transmitting at q·tx = 2.5 ms, and its reply adds one more
	// tx slot, so the exact single-client response is
	// RTT + service + q·tx + tx = 40 + 1 + 2.5 + 0.5 = 44.
	if math.Abs(linked.AvgResponseMS-44) > 1e-9 {
		t.Errorf("linked response = %v, want 44", linked.AvgResponseMS)
	}
}

func TestLinkContentionGrowsWithClients(t *testing.T) {
	// Co-located clients share the uplink. Closed-loop flows stagger
	// themselves at low utilization, so contention only surfaces near
	// link saturation: 30 clients × 5 messages × 0.3 ms ≈ 45 ms of
	// transmission per ~43 ms cycle pushes the uplink past capacity and
	// must inflate response time.
	cfg := baseConfig(t)
	cfg.LinkTxMS = 0.3
	cfg.ClientSites = manyClients(6, 6, 2)
	few, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ClientSites = manyClients(6, 6, 30)
	many, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if many.AvgResponseMS <= few.AvgResponseMS+1 {
		t.Errorf("response did not grow with co-located clients: %v vs %v",
			many.AvgResponseMS, few.AvgResponseMS)
	}
}

func TestNegativeLinkTxRejected(t *testing.T) {
	cfg := baseConfig(t)
	cfg.LinkTxMS = -1
	if _, err := RunSim(cfg); err == nil {
		t.Error("negative LinkTxMS accepted")
	}
}

func TestThinkTimeReducesThroughputAndLoad(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ClientSites = manyClients(6, 11, 8)
	busy, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ThinkTimeMS = 100
	idle, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idle.Requests >= busy.Requests {
		t.Errorf("think time did not reduce throughput: %d vs %d", idle.Requests, busy.Requests)
	}
	if idle.AvgResponseMS > busy.AvgResponseMS+1e-9 {
		t.Errorf("think time increased response: %v vs %v", idle.AvgResponseMS, busy.AvgResponseMS)
	}
}

func TestNegativeThinkTimeRejected(t *testing.T) {
	cfg := baseConfig(t)
	cfg.ThinkTimeMS = -1
	if _, err := RunSim(cfg); err == nil {
		t.Error("negative think time accepted")
	}
}
