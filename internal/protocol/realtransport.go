package protocol

import (
	"fmt"
	"sync"
	"time"
)

// RealTransport runs the protocol over real goroutines and wall-clock
// timers, scaled so that one simulated millisecond takes Scale real
// milliseconds. It exists to demonstrate the protocol engine is not tied
// to the discrete-event simulator; tests use small scales and assert
// protocol correctness rather than exact timing.
type RealTransport struct {
	scale float64
	start time.Time

	mu sync.Mutex // serializes actions, as Transport requires
	wg sync.WaitGroup
}

var _ Transport = (*RealTransport)(nil)

// NewRealTransport returns a transport where each simulated millisecond
// lasts scale real milliseconds (e.g. 0.05 compresses time 20×).
func NewRealTransport(scale float64) (*RealTransport, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("protocol: non-positive time scale %v", scale)
	}
	return &RealTransport{scale: scale, start: time.Now()}, nil
}

// Deliver implements Transport. Every action is tracked; Wait blocks
// until all deliveries (including ones scheduled by running actions)
// complete, so no goroutine outlives the run.
func (t *RealTransport) Deliver(delayMS float64, action func()) error {
	if delayMS < 0 {
		return fmt.Errorf("protocol: negative delay %v", delayMS)
	}
	t.wg.Add(1)
	real := time.Duration(delayMS * t.scale * float64(time.Millisecond))
	time.AfterFunc(real, func() {
		defer t.wg.Done()
		t.mu.Lock()
		defer t.mu.Unlock()
		action()
	})
	return nil
}

// Now implements Transport, reporting elapsed simulated milliseconds.
func (t *RealTransport) Now() float64 {
	return float64(time.Since(t.start)) / (t.scale * float64(time.Millisecond))
}

// Wait blocks until every outstanding delivery has run. Actions that
// schedule further deliveries extend the wait (the closed-loop clients
// stop issuing once Now() passes the configured duration).
func (t *RealTransport) Wait() { t.wg.Wait() }
