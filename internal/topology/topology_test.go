package topology

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/quorumnet/quorumnet/internal/graph"
)

func line3() *Topology {
	m := graph.NewMatrix(3)
	m.Set(0, 1, 10)
	m.Set(1, 2, 10)
	m.Set(0, 2, 20)
	t, err := New("line3", []Site{{Name: "a"}, {Name: "b"}, {Name: "c"}}, m)
	if err != nil {
		panic(err)
	}
	return t
}

func TestNewRejectsSizeMismatch(t *testing.T) {
	m := graph.NewMatrix(2)
	if _, err := New("bad", []Site{{Name: "a"}}, m); err == nil {
		t.Error("New with mismatched sizes succeeded, want error")
	}
}

func TestNewRejectsNonMetric(t *testing.T) {
	m := graph.NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	m.Set(0, 2, 100) // triangle violation
	if _, err := New("bad", make([]Site, 3), m); err == nil {
		t.Error("New with non-metric matrix succeeded, want error")
	}
}

func TestDefaultCapacityIsOne(t *testing.T) {
	tp := line3()
	for i := 0; i < tp.Size(); i++ {
		if tp.Capacity(i) != 1 {
			t.Errorf("Capacity(%d) = %v, want 1", i, tp.Capacity(i))
		}
	}
}

func TestSetCapacityValidation(t *testing.T) {
	tp := line3()
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := tp.SetCapacity(0, bad); err == nil {
			t.Errorf("SetCapacity(0, %v) succeeded, want error", bad)
		}
	}
	if err := tp.SetCapacity(0, 0.5); err != nil {
		t.Errorf("SetCapacity(0, 0.5): %v", err)
	}
	if tp.Capacity(0) != 0.5 {
		t.Errorf("Capacity(0) = %v, want 0.5", tp.Capacity(0))
	}
}

func TestCloneCapacityIsolation(t *testing.T) {
	tp := line3()
	cl := tp.Clone()
	if err := cl.SetCapacity(1, 0.25); err != nil {
		t.Fatal(err)
	}
	if tp.Capacity(1) != 1 {
		t.Error("mutating clone capacity changed original")
	}
}

func TestMedianOfLine(t *testing.T) {
	tp := line3()
	site, avg := tp.Median()
	if site != 1 {
		t.Errorf("Median() = %d, want 1", site)
	}
	if want := 20.0 / 3.0; math.Abs(avg-want) > 1e-12 {
		t.Errorf("Median avg = %v, want %v", avg, want)
	}
}

func TestPlanetLab50Shape(t *testing.T) {
	tp := PlanetLab50(DefaultSeed)
	if tp.Size() != 50 {
		t.Fatalf("Size() = %d, want 50", tp.Size())
	}
	if !tp.Distances().IsMetric(1e-6) {
		t.Error("PlanetLab50 matrix is not a metric")
	}
	st := tp.Stats()
	// WAN sanity: intercontinental pairs exist (>120 ms) and intra-cluster
	// pairs exist (<20 ms).
	if st.MaxRTT < 120 {
		t.Errorf("MaxRTT = %v, want >= 120 (intercontinental RTTs expected)", st.MaxRTT)
	}
	if st.MinRTT > 20 {
		t.Errorf("MinRTT = %v, want <= 20 (intra-cluster RTTs expected)", st.MinRTT)
	}
	if st.AvgRTT < 40 || st.AvgRTT > 250 {
		t.Errorf("AvgRTT = %v, outside plausible WAN band [40, 250]", st.AvgRTT)
	}
}

func TestDaxlist161Shape(t *testing.T) {
	tp := Daxlist161(DefaultSeed)
	if tp.Size() != 161 {
		t.Fatalf("Size() = %d, want 161", tp.Size())
	}
	if !tp.Distances().IsMetric(1e-6) {
		t.Error("Daxlist161 matrix is not a metric")
	}
	pl := PlanetLab50(DefaultSeed)
	// The web-server topology is better connected than PlanetLab: its
	// median node should see lower average delay.
	_, dAvg := tp.Median()
	_, pAvg := pl.Median()
	if dAvg >= pAvg {
		t.Errorf("daxlist median avg RTT %v >= planetlab %v; want denser topology", dAvg, pAvg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := PlanetLab50(7)
	b := PlanetLab50(7)
	for i := 0; i < a.Size(); i++ {
		for j := 0; j < a.Size(); j++ {
			if a.RTT(i, j) != b.RTT(i, j) {
				t.Fatalf("same seed differs at (%d,%d): %v vs %v", i, j, a.RTT(i, j), b.RTT(i, j))
			}
		}
	}
	c := PlanetLab50(8)
	same := true
	for i := 0; i < a.Size() && same; i++ {
		for j := i + 1; j < a.Size(); j++ {
			if a.RTT(i, j) != c.RTT(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical topologies")
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  GenConfig
	}{
		{name: "no regions", cfg: GenConfig{Name: "x", Inflation: 1.5}},
		{name: "negative count", cfg: GenConfig{Name: "x", Inflation: 1.5, Regions: []RegionSpec{{Name: "r", Count: -1}}}},
		{name: "zero inflation", cfg: GenConfig{Name: "x", Regions: []RegionSpec{{Name: "r", Count: 2}}}},
		{name: "bad jitter", cfg: GenConfig{Name: "x", Inflation: 1.5, JitterFrac: 1.5, Regions: []RegionSpec{{Name: "r", Count: 2}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Generate(tc.cfg, 1); err == nil {
				t.Error("Generate succeeded, want error")
			}
		})
	}
}

func TestGreatCircle(t *testing.T) {
	// New York (40.7, -74.0) to London (51.5, -0.1) is about 5570 km.
	ny := Site{Lat: 40.7, Lon: -74.0}
	ldn := Site{Lat: 51.5, Lon: -0.1}
	km := greatCircleKM(ny, ldn)
	if km < 5400 || km > 5750 {
		t.Errorf("greatCircleKM(NY, London) = %v, want ~5570", km)
	}
	if d := greatCircleKM(ny, ny); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestGenerateRTTProperty(t *testing.T) {
	// Property: all RTTs are positive off the diagonal, zero on it, for
	// arbitrary seeds.
	f := func(seed int64) bool {
		tp := PlanetLab50(seed)
		for i := 0; i < tp.Size(); i++ {
			if tp.RTT(i, i) != 0 {
				return false
			}
			for j := 0; j < tp.Size(); j++ {
				if i != j && tp.RTT(i, j) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestEstimateRTTSymmetry(t *testing.T) {
	// Property: the estimate is exactly symmetric under swapping the two
	// sites along with their access delays. Probe agents fill in missing
	// pairs from either end, so even a one-ULP asymmetry would poison the
	// metric-closure assumptions.
	f := func(latA, lonA, latB, lonB, accA, accB, infl uint16) bool {
		a := Site{Name: "a", Lat: float64(latA)/400 - 80, Lon: float64(lonA)/200 - 160}
		b := Site{Name: "b", Lat: float64(latB)/400 - 80, Lon: float64(lonB)/200 - 160}
		inflation := 1 + float64(infl)/65536 // [1, 2)
		accessA := float64(accA) / 4096      // [0, 16)
		accessB := float64(accB) / 4096
		ab := EstimateRTT(a, b, inflation, accessA, accessB)
		ba := EstimateRTT(b, a, inflation, accessB, accessA)
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Pin one concrete regression pair: distinct access delays whose sum
	// order used to change the low bits of the result.
	a := Site{Name: "ny", Lat: 40.7, Lon: -74.0}
	b := Site{Name: "ldn", Lat: 51.5, Lon: -0.1}
	if ab, ba := EstimateRTT(a, b, 1.4, 1.3, 5.7), EstimateRTT(b, a, 1.4, 5.7, 1.3); ab != ba {
		t.Errorf("EstimateRTT asymmetric: %v != %v", ab, ba)
	}
}

func TestStatsRegions(t *testing.T) {
	tp := PlanetLab50(DefaultSeed)
	st := tp.Stats()
	total := 0
	for _, c := range st.Regions {
		total += c
	}
	if total != 50 {
		t.Errorf("region counts sum to %d, want 50", total)
	}
	if st.Regions["europe"] != 15 {
		t.Errorf("europe count = %d, want 15", st.Regions["europe"])
	}
}
