package topology

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := PlanetLab50(42)
	if err := orig.SetCapacity(3, 0.5); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(&buf, orig); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if got.Name() != orig.Name() {
		t.Errorf("Name = %q, want %q", got.Name(), orig.Name())
	}
	if got.Size() != orig.Size() {
		t.Fatalf("Size = %d, want %d", got.Size(), orig.Size())
	}
	for i := 0; i < orig.Size(); i++ {
		if got.Site(i).Name != orig.Site(i).Name {
			t.Errorf("site %d name = %q, want %q", i, got.Site(i).Name, orig.Site(i).Name)
		}
		if math.Abs(got.Capacity(i)-orig.Capacity(i)) > 1e-9 {
			t.Errorf("site %d capacity = %v, want %v", i, got.Capacity(i), orig.Capacity(i))
		}
		for j := 0; j < orig.Size(); j++ {
			if math.Abs(got.RTT(i, j)-orig.RTT(i, j)) > 1e-3 {
				t.Errorf("RTT(%d,%d) = %v, want %v", i, j, got.RTT(i, j), orig.RTT(i, j))
			}
		}
	}
}

func TestLoadRepairsAsymmetry(t *testing.T) {
	// Hand-written file with asymmetric measurements.
	input := `quorumnet-topology v1
tiny
# a comment
3
a r 0 0 1
b r 0 1 1
c r 0 2 1
0 10 30
12 0 10
30 10 0
`
	tp, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := tp.RTT(0, 1); got != 10 {
		t.Errorf("RTT(0,1) = %v, want 10 (min of 10 and 12)", got)
	}
	// Triangle repair: 0->2 direct is 30, via 1 is 20.
	if got := tp.RTT(0, 2); got != 20 {
		t.Errorf("RTT(0,2) = %v, want 20 after closure", got)
	}
}

func TestLoadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
		want  string // substring the error must contain ("" = any error)
	}{
		{name: "empty", input: ""},
		{name: "bad header", input: "not-a-topology\nx\n1\na r 0 0 1\n0\n"},
		{name: "bad count", input: "quorumnet-topology v1\nx\nzero\n"},
		{name: "negative count", input: "quorumnet-topology v1\nx\n-3\n"},
		{name: "short site line", input: "quorumnet-topology v1\nx\n1\na r 0\n0\n"},
		{name: "bad site number", input: "quorumnet-topology v1\nx\n1\na r 0 zero 1\n0\n"},
		{name: "short matrix row", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 5\n5\n"},
		{name: "negative distance", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 -5\n-5 0\n"},
		{name: "truncated matrix", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 5\n"},
		{name: "zero capacity", input: "quorumnet-topology v1\nx\n2\na r 0 0 0\nb r 0 1 1\n0 5\n5 0\n"},
		{name: "negative capacity", input: "quorumnet-topology v1\nx\n2\na r 0 0 -1\nb r 0 1 1\n0 5\n5 0\n", want: "invalid capacity"},
		{name: "NaN capacity", input: "quorumnet-topology v1\nx\n2\na r 0 0 NaN\nb r 0 1 1\n0 5\n5 0\n", want: "invalid capacity"},
		{name: "Inf capacity", input: "quorumnet-topology v1\nx\n2\na r 0 0 +Inf\nb r 0 1 1\n0 5\n5 0\n", want: "invalid capacity"},
		{name: "duplicate site name", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\na r 0 1 1\n0 5\n5 0\n", want: "duplicate site name"},
		{name: "NaN RTT", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 NaN\nNaN 0\n", want: "RTT entry (a,b) invalid"},
		{name: "Inf RTT", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 Inf\nInf 0\n", want: "RTT entry (a,b) invalid"},
		{name: "non-numeric RTT", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n0 fast\nfast 0\n", want: "RTT entry (a,b) invalid"},
		{name: "nonzero self-RTT", input: "quorumnet-topology v1\nx\n2\na r 0 0 1\nb r 0 1 1\n3 5\n5 0\n", want: "self-RTT"},
		{name: "NaN latitude", input: "quorumnet-topology v1\nx\n2\na r NaN 0 1\nb r 0 1 1\n0 5\n5 0\n", want: "non-finite coordinates"},
		{name: "Inf longitude", input: "quorumnet-topology v1\nx\n2\na r 0 Inf 1\nb r 0 1 1\n0 5\n5 0\n", want: "non-finite coordinates"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("Load succeeded, want error")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
