package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"github.com/quorumnet/quorumnet/internal/graph"
)

// The text format is line-oriented so real measurement datasets (for
// example PlanetLab ping matrices) can be converted with a few lines of
// awk:
//
//	quorumnet-topology v1
//	<name>
//	<n>
//	<site-name> <region> <lat> <lon> <capacity>      × n
//	<n space-separated RTTs>                          × n
//
// Comment lines start with '#' and blank lines are ignored.

const formatHeader = "quorumnet-topology v1"

// Save writes the topology in the text format.
func Save(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintln(bw, t.Name())
	fmt.Fprintln(bw, t.Size())
	for i := 0; i < t.Size(); i++ {
		s := t.Site(i)
		fmt.Fprintf(bw, "%s %s %.6f %.6f %.9g\n", s.Name, s.Region, s.Lat, s.Lon, t.Capacity(i))
	}
	for i := 0; i < t.Size(); i++ {
		for j := 0; j < t.Size(); j++ {
			if j > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%.6f", t.RTT(i, j))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Load reads a topology in the text format. The distance matrix is
// metric-closed on load, so mildly inconsistent measured data (asymmetry,
// triangle violations) is accepted and repaired.
func Load(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	next := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, nil
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("topology: reading header: %w", err)
	}
	if header != formatHeader {
		return nil, fmt.Errorf("topology: unsupported format %q", header)
	}
	name, err := next()
	if err != nil {
		return nil, fmt.Errorf("topology: reading name: %w", err)
	}
	countLine, err := next()
	if err != nil {
		return nil, fmt.Errorf("topology: reading site count: %w", err)
	}
	n, err := strconv.Atoi(countLine)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("topology: invalid site count %q", countLine)
	}

	sites := make([]Site, n)
	caps := make([]float64, n)
	seen := make(map[string]int, n)
	for i := 0; i < n; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("topology: reading site %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("topology: site line %d has %d fields, want 5: %q", i, len(fields), line)
		}
		lat, err1 := strconv.ParseFloat(fields[2], 64)
		lon, err2 := strconv.ParseFloat(fields[3], 64)
		capacity, err3 := strconv.ParseFloat(fields[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("topology: site line %d has invalid numbers: %q", i, line)
		}
		name := fields[0]
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("topology: duplicate site name %q (sites %d and %d)", name, prev, i)
		}
		seen[name] = i
		if !isFinite(lat) || !isFinite(lon) {
			return nil, fmt.Errorf("topology: site %q has non-finite coordinates (%v, %v)", name, lat, lon)
		}
		if capacity <= 0 || !isFinite(capacity) {
			return nil, fmt.Errorf("topology: site %q has invalid capacity %v (must be positive and finite)", name, capacity)
		}
		sites[i] = Site{Name: name, Region: fields[1], Lat: lat, Lon: lon}
		caps[i] = capacity
	}

	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		line, err := next()
		if err != nil {
			return nil, fmt.Errorf("topology: reading matrix row %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != n {
			return nil, fmt.Errorf("topology: matrix row %d has %d entries, want %d", i, len(fields), n)
		}
		for j, f := range fields {
			d, err := strconv.ParseFloat(f, 64)
			if err != nil || d < 0 || !isFinite(d) {
				return nil, fmt.Errorf("topology: RTT entry (%s,%s) invalid: %q (must be a finite non-negative number)",
					sites[i].Name, sites[j].Name, f)
			}
			if i == j && d != 0 {
				return nil, fmt.Errorf("topology: site %q has non-zero self-RTT %q", sites[i].Name, f)
			}
			// Row-major assignment; symmetry is restored by the closure.
			if j >= i {
				m.Set(i, j, d)
			} else if m.At(i, j) == 0 {
				m.Set(i, j, d)
			} else if d < m.At(i, j) {
				m.Set(i, j, d)
			}
		}
	}
	m.MetricClosure()

	// The closure output is a metric by construction, so the O(n³)
	// IsMetric validation in New is redundant here.
	t, err := NewMetric(name, sites, m)
	if err != nil {
		return nil, err
	}
	for i, c := range caps {
		if err := t.SetCapacity(i, c); err != nil {
			return nil, fmt.Errorf("topology: site %d: %w", i, err)
		}
	}
	return t, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
