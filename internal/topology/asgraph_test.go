package topology

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/graph"
)

func asConfig(n int) GenConfig {
	return GenConfig{Name: "as-test", AS: &ASGraphSpec{Sites: n}}
}

func TestGenerateASBasics(t *testing.T) {
	topo, err := Generate(asConfig(120), 7)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != 120 {
		t.Fatalf("Size() = %d, want 120", topo.Size())
	}
	st := topo.Stats()
	if st.Regions[tierCore] < 3 || st.Regions[tierTransit] == 0 || st.Regions[tierEdge] == 0 {
		t.Fatalf("tier counts look wrong: %v", st.Regions)
	}
	for i := 0; i < topo.Size(); i++ {
		for j := 0; j < topo.Size(); j++ {
			d := topo.RTT(i, j)
			if i == j && d != 0 {
				t.Fatalf("self-RTT %v at %d", d, i)
			}
			if i != j && (d <= 0 || d > 1e6) {
				t.Fatalf("RTT(%d,%d) = %v out of range", i, j, d)
			}
		}
	}
	// The sparse closure must produce a true metric — this is what lets
	// FromGraph skip IsMetric at scale.
	if !topo.Distances().IsMetric(1e-6) {
		t.Fatal("AS-graph metric violates the triangle inequality")
	}
}

func TestGenerateASDeterministic(t *testing.T) {
	a, err := Generate(asConfig(80), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(asConfig(80), 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Size(); i++ {
		if a.Site(i) != b.Site(i) {
			t.Fatalf("site %d differs: %+v vs %+v", i, a.Site(i), b.Site(i))
		}
		for j := 0; j < a.Size(); j++ {
			if a.RTT(i, j) != b.RTT(i, j) {
				t.Fatalf("RTT(%d,%d) differs: %v vs %v", i, j, a.RTT(i, j), b.RTT(i, j))
			}
		}
	}
	c, err := Generate(asConfig(80), 12)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := 1; j < c.Size() && same; j++ {
		same = a.RTT(0, j) == c.RTT(0, j)
	}
	if same {
		t.Fatal("different seeds produced an identical metric row")
	}
}

func TestGenerateASPowerLaw(t *testing.T) {
	// Not a statistical test — just that preferential attachment produced
	// the expected hub structure: the max degree is far above the median.
	cfg := asConfig(500)
	topo, err := Generate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := topo.Stats()
	if st.Regions[tierCore] != 5 { // 500/100
		t.Fatalf("core count = %d, want 5", st.Regions[tierCore])
	}
	if st.Regions[tierTransit] != 50 {
		t.Fatalf("transit count = %d, want 50", st.Regions[tierTransit])
	}
}

// TestGenerateASClientStubs checks the two properties the stub knob
// promises: stubs never perturb the AS core (same seed, same AS-to-AS
// metric with or without stubs), and co-attached same-class stubs have
// byte-identical RTT rows over the non-stub sites — the invariant the
// access-strategy client aggregation keys on.
func TestGenerateASClientStubs(t *testing.T) {
	const n, stubs = 20, 200
	base, err := Generate(asConfig(n), 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GenConfig{Name: "as-test", AS: &ASGraphSpec{Sites: n, ClientStubs: stubs}}
	topo, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Size() != n+stubs {
		t.Fatalf("Size() = %d, want %d", topo.Size(), n+stubs)
	}
	if got := topo.Stats().Regions[tierStub]; got != stubs {
		t.Fatalf("stub region count = %d, want %d", got, stubs)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if topo.RTT(i, j) != base.RTT(i, j) {
				t.Fatalf("stubs perturbed AS metric at (%d,%d): %v vs %v", i, j, topo.RTT(i, j), base.RTT(i, j))
			}
		}
	}
	// A stub's only link is its access link, so its nearest AS is its
	// parent and that distance is the (quantized) class latency. Group by
	// (parent, latency) and demand identical rows within each group.
	type attach struct {
		parent int
		lat    float64
	}
	groups := make(map[attach][]int)
	for s := n; s < n+stubs; s++ {
		best := attach{parent: -1}
		for v := 0; v < n; v++ {
			if d := topo.RTT(s, v); best.parent < 0 || d < best.lat {
				best = attach{parent: v, lat: d}
			}
		}
		if best.lat != 1 && best.lat != 3 && best.lat != 5 && best.lat != 7 {
			t.Fatalf("stub %d access latency %v not in the quantized class set", s, best.lat)
		}
		groups[best] = append(groups[best], s)
	}
	collided := 0
	for at, members := range groups {
		if len(members) < 2 {
			continue
		}
		collided++
		for _, s := range members[1:] {
			for v := 0; v < n; v++ {
				if topo.RTT(s, v) != topo.RTT(members[0], v) {
					t.Fatalf("co-attached stubs %d and %d (parent %d, class %v) differ at AS %d",
						members[0], s, at.parent, at.lat, v)
				}
			}
		}
	}
	if collided == 0 { // 200 stubs over 20x4 attachments must collide
		t.Fatal("no co-attached stub pair generated; test lost its teeth")
	}
	if _, err := Generate(GenConfig{Name: "x", AS: &ASGraphSpec{Sites: 10, ClientStubs: -1}}, 1); err == nil {
		t.Error("negative ClientStubs should be rejected")
	}
}

func TestGenerateASValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Name: "x", AS: &ASGraphSpec{Sites: 2}}, 1); err == nil {
		t.Error("too-small AS graph should fail")
	}
	if _, err := Generate(GenConfig{Name: "x", AS: &ASGraphSpec{Sites: 10, PeerDegree: 10}}, 1); err == nil {
		t.Error("peer degree >= sites should fail")
	}
	bad := GenConfig{
		Name:    "x",
		AS:      &ASGraphSpec{Sites: 10},
		Regions: []RegionSpec{{Name: "r", Count: 1}},
	}
	if _, err := Generate(bad, 1); err == nil {
		t.Error("Regions+AS should be rejected")
	}
}

func TestFromGraphValidation(t *testing.T) {
	g := graph.New(3)
	sites := []Site{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	if _, err := FromGraph("x", sites, g, 1); err == nil {
		t.Error("disconnected graph should be rejected")
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	topo, err := FromGraph("x", sites, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.RTT(0, 2); got != 3 {
		t.Fatalf("RTT(0,2) = %v, want 3 (path through b)", got)
	}
	if _, err := FromGraph("x", sites[:2], g, 1); err == nil {
		t.Error("site/node count mismatch should be rejected")
	}
}
