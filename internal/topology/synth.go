package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/quorumnet/quorumnet/internal/graph"
)

// RegionSpec describes a geographic cluster for the synthetic generators:
// a bounding box in which sites are placed uniformly at random, the number
// of sites, and the range of per-site access-link delay (one-way,
// milliseconds) modeling the site's local connectivity.
type RegionSpec struct {
	Name      string
	Count     int
	LatMin    float64
	LatMax    float64
	LonMin    float64
	LonMax    float64
	AccessMin float64
	AccessMax float64
}

// GenConfig parameterizes the synthetic WAN generator.
type GenConfig struct {
	Name    string
	Regions []RegionSpec
	// Inflation multiplies great-circle propagation delay to account for
	// indirect routing; terrestrial Internet paths typically see 1.3–2.0.
	Inflation float64
	// JitterFrac is the half-width of the multiplicative jitter applied to
	// each pairwise delay (for example 0.1 means ×U[0.9, 1.1]).
	JitterFrac float64
	// AS switches the generator to random-internet-AS mode: a sparse
	// power-law link graph with tiered latencies whose metric is computed
	// by the parallel sparse closure (see ASGraphSpec). Mutually exclusive
	// with Regions; Inflation and JitterFrac are unused in this mode.
	AS *ASGraphSpec `json:"as,omitempty"`
}

const (
	earthRadiusKM = 6371.0
	// Light in fiber covers roughly 200 km per millisecond.
	fiberKMPerMS = 200.0
)

// Generate builds a topology from the configuration using the given seed.
// The same (config, seed) pair always yields the same topology. Pairwise
// RTT = 2 × (great-circle/fiber speed × inflation) + access(u) + access(v),
// jittered, then metric-closed so the triangle inequality holds.
func Generate(cfg GenConfig, seed int64) (*Topology, error) {
	if cfg.AS != nil {
		if len(cfg.Regions) > 0 {
			return nil, fmt.Errorf("topology %q: Regions and AS modes are mutually exclusive", cfg.Name)
		}
		return generateAS(cfg, seed)
	}
	total := 0
	for _, r := range cfg.Regions {
		if r.Count < 0 {
			return nil, fmt.Errorf("topology: region %q has negative count", r.Name)
		}
		total += r.Count
	}
	if total == 0 {
		return nil, fmt.Errorf("topology %q: no sites configured", cfg.Name)
	}
	if cfg.Inflation <= 0 {
		return nil, fmt.Errorf("topology %q: inflation must be positive, got %v", cfg.Name, cfg.Inflation)
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("topology %q: jitter fraction %v out of [0,1)", cfg.Name, cfg.JitterFrac)
	}

	rng := rand.New(rand.NewSource(seed))
	sites := make([]Site, 0, total)
	access := make([]float64, 0, total)
	for _, r := range cfg.Regions {
		for i := 0; i < r.Count; i++ {
			sites = append(sites, Site{
				Name:   fmt.Sprintf("%s-%02d", r.Name, i),
				Region: r.Name,
				Lat:    r.LatMin + rng.Float64()*(r.LatMax-r.LatMin),
				Lon:    r.LonMin + rng.Float64()*(r.LonMax-r.LonMin),
			})
			access = append(access, r.AccessMin+rng.Float64()*(r.AccessMax-r.AccessMin))
		}
	}

	m := newDistMatrix(sites, access, cfg, rng)
	m.MetricClosure()
	// The closure output is a metric by construction; NewMetric skips the
	// redundant O(n³) validation.
	return NewMetric(cfg.Name, sites, m)
}

// newDistMatrix computes the raw (pre-closure) pairwise RTTs.
func newDistMatrix(sites []Site, access []float64, cfg GenConfig, rng *rand.Rand) *graph.Matrix {
	n := len(sites)
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			km := greatCircleKM(sites[i], sites[j])
			oneWay := km / fiberKMPerMS * cfg.Inflation
			rtt := 2*oneWay + access[i] + access[j]
			if cfg.JitterFrac > 0 {
				rtt *= 1 + (rng.Float64()*2-1)*cfg.JitterFrac
			}
			// Even co-located sites are separated by a LAN hop.
			if rtt < 0.1 {
				rtt = 0.1
			}
			m.Set(i, j, rtt)
		}
	}
	return m
}

// EstimateRTT synthesizes a plausible round-trip time between two sites
// from their coordinates, the same way the generators do but without
// jitter: great-circle propagation at fiber speed inflated for indirect
// routing, plus the per-site access delay at both ends. It lets callers
// splice new sites into an existing topology (site churn) when no
// measurement is available. inflation ≤ 0 defaults to 1.4.
//
// The estimate is exactly symmetric: EstimateRTT(a, b, i, accessA,
// accessB) == EstimateRTT(b, a, i, accessB, accessA) bit for bit.
// Probe agents and churn tooling fill in missing pairs from whichever
// end they run on; an asymmetric estimate would silently violate the
// IsMetric/closure assumptions downstream. The haversine term is
// symmetric by construction, and the access delays are summed inside
// parentheses so IEEE addition order does not depend on argument
// order.
func EstimateRTT(a, b Site, inflation, accessA, accessB float64) float64 {
	if inflation <= 0 {
		inflation = 1.4
	}
	rtt := 2*greatCircleKM(a, b)/fiberKMPerMS*inflation + (accessA + accessB)
	if rtt < 0.1 {
		rtt = 0.1
	}
	return rtt
}

// greatCircleKM returns the haversine distance between two sites.
func greatCircleKM(a, b Site) float64 {
	const degToRad = math.Pi / 180
	lat1, lon1 := a.Lat*degToRad, a.Lon*degToRad
	lat2, lon2 := b.Lat*degToRad, b.Lon*degToRad
	dLat, dLon := lat2-lat1, lon2-lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PlanetLab50 synthesizes the stand-in for the paper's "Planetlab-50"
// topology: 50 sites dominated by North American and European academic
// hosts with a tail in Asia, South America, and Oceania, and academic
// access-link delays.
func PlanetLab50(seed int64) *Topology {
	cfg := GenConfig{
		Name:      "planetlab-50",
		Inflation: 1.4,
		// PlanetLab RTT measurements fluctuate across months; ±12% jitter
		// models measurement spread without destroying cluster structure.
		JitterFrac: 0.12,
		Regions: []RegionSpec{
			{Name: "na-east", Count: 12, LatMin: 35, LatMax: 45, LonMin: -80, LonMax: -70, AccessMin: 1, AccessMax: 6},
			{Name: "na-west", Count: 8, LatMin: 33, LatMax: 48, LonMin: -123, LonMax: -115, AccessMin: 1, AccessMax: 6},
			{Name: "europe", Count: 15, LatMin: 42, LatMax: 58, LonMin: -5, LonMax: 20, AccessMin: 1, AccessMax: 6},
			{Name: "east-asia", Count: 7, LatMin: 22, LatMax: 40, LonMin: 105, LonMax: 140, AccessMin: 2, AccessMax: 8},
			{Name: "s-america", Count: 3, LatMin: -35, LatMax: -10, LonMin: -70, LonMax: -45, AccessMin: 3, AccessMax: 10},
			{Name: "oceania", Count: 3, LatMin: -40, LatMax: -28, LonMin: 140, LonMax: 155, AccessMin: 2, AccessMax: 8},
			{Name: "africa", Count: 2, LatMin: -30, LatMax: 0, LonMin: 15, LonMax: 35, AccessMin: 5, AccessMax: 15},
		},
	}
	t, err := Generate(cfg, seed)
	if err != nil {
		// The configuration above is statically valid; an error here is a
		// programming bug, not a runtime condition.
		panic(err)
	}
	return t
}

// Daxlist161 synthesizes the stand-in for the paper's "daxlist-161"
// topology: 161 well-connected web servers concentrated in North America
// and Europe with low access delays, yielding a denser, lower-latency
// metric than PlanetLab50.
func Daxlist161(seed int64) *Topology {
	cfg := GenConfig{
		Name:       "daxlist-161",
		Inflation:  1.35,
		JitterFrac: 0.10,
		Regions: []RegionSpec{
			{Name: "na-east", Count: 45, LatMin: 33, LatMax: 46, LonMin: -85, LonMax: -70, AccessMin: 0.5, AccessMax: 3},
			{Name: "na-central", Count: 20, LatMin: 30, LatMax: 45, LonMin: -100, LonMax: -88, AccessMin: 0.5, AccessMax: 3},
			{Name: "na-west", Count: 25, LatMin: 33, LatMax: 48, LonMin: -123, LonMax: -112, AccessMin: 0.5, AccessMax: 3},
			{Name: "europe", Count: 48, LatMin: 40, LatMax: 58, LonMin: -8, LonMax: 22, AccessMin: 0.5, AccessMax: 3},
			{Name: "east-asia", Count: 15, LatMin: 22, LatMax: 40, LonMin: 105, LonMax: 140, AccessMin: 1, AccessMax: 4},
			{Name: "oceania", Count: 4, LatMin: -40, LatMax: -28, LonMin: 140, LonMax: 155, AccessMin: 1, AccessMax: 4},
			{Name: "s-america", Count: 4, LatMin: -30, LatMax: -15, LonMin: -65, LonMax: -45, AccessMin: 2, AccessMax: 6},
		},
	}
	t, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// DefaultSeed is the seed used by the experiment harness so that published
// EXPERIMENTS.md numbers are reproducible.
const DefaultSeed = 20070625 // DSN'07 conference date
