package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/quorumnet/quorumnet/internal/graph"
)

// ASGraphSpec parameterizes the random-internet-AS generator: a
// preferential-attachment graph (power-law degree distribution, like the
// autonomous-system graph) whose nodes are classified into core / transit /
// edge tiers by degree, with per-tier-pair link latencies. Unlike the
// region-based generator, the RTT metric is the shortest-path closure of
// the sparse link graph — computed by the parallel Dijkstra path, never the
// O(n³) dense closure — which is what makes 1k–10k-site topologies
// tractable.
type ASGraphSpec struct {
	// Sites is the number of ASes (minimum 4).
	Sites int `json:"sites"`
	// PeerDegree is how many existing ASes each new AS links to during
	// preferential attachment (Barabási–Albert m). Default 2.
	PeerDegree int `json:"peer_degree,omitempty"`
	// ExtraPeerFrac adds ExtraPeerFrac×Sites random peering links on top of
	// the attachment tree, modeling IXP shortcuts. Default 0.05; set
	// negative to disable.
	ExtraPeerFrac float64 `json:"extra_peer_frac,omitempty"`
	// Workers bounds the closure fan-out; <= 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// ClientStubs appends this many degree-1 "stub" sites after the AS
	// core, each attached to one random AS by a single access link whose
	// latency is quantized into StubClasses fixed values. Stubs model
	// client populations hanging off the AS graph: every stub attached to
	// the same AS with the same latency class has a byte-identical RTT row
	// over the non-stub sites, so the access-strategy client aggregation
	// collapses them into one super-client exactly. Default 0 (no stubs;
	// existing topologies are unchanged byte for byte).
	ClientStubs int `json:"client_stubs,omitempty"`
	// StubClasses is the number of distinct access-latency classes for
	// stub links; class c gets a fixed 1+2c ms latency. Default 4.
	StubClasses int `json:"stub_classes,omitempty"`
}

// Tier names double as the sites' Region, so region-based scenario
// features (regional outages, per-region stats) work on AS topologies.
const (
	tierCore    = "core"
	tierTransit = "transit"
	tierEdge    = "edge"
	tierStub    = "stub"
)

// asLatRange gives the [min,max) one-link RTT in milliseconds by tier pair
// (0=core, 1=transit, 2=edge). Core links span continents; edge links are
// local. The floor of 1ms and ceiling of 120ms keep the edge-length ratio
// small enough for the bucket-queue closure engine.
var asLatRange = [3][3][2]float64{
	{{30, 120}, {10, 60}, {5, 40}},
	{{10, 60}, {8, 50}, {2, 25}},
	{{5, 40}, {2, 25}, {1, 10}},
}

// generateAS builds the AS-mode topology. Same (config, seed) pairs yield
// identical topologies.
func generateAS(cfg GenConfig, seed int64) (*Topology, error) {
	spec := cfg.AS
	n := spec.Sites
	if n < 4 {
		return nil, fmt.Errorf("topology %q: AS graph needs at least 4 sites, got %d", cfg.Name, n)
	}
	deg := spec.PeerDegree
	if deg <= 0 {
		deg = 2
	}
	if deg >= n {
		return nil, fmt.Errorf("topology %q: peer degree %d must be below site count %d", cfg.Name, deg, n)
	}
	frac := spec.ExtraPeerFrac
	if frac == 0 {
		frac = 0.05
	}
	if frac < 0 {
		frac = 0
	}
	if spec.ClientStubs < 0 {
		return nil, fmt.Errorf("topology %q: client stubs must be >= 0, got %d", cfg.Name, spec.ClientStubs)
	}
	stubClasses := spec.StubClasses
	if stubClasses <= 0 {
		stubClasses = 4
	}

	rng := rand.New(rand.NewSource(seed))

	// Preferential attachment: seed with a (deg+1)-clique, then each new AS
	// links to deg distinct existing ASes sampled proportional to degree
	// (uniform draws from the half-edge endpoint multiset).
	type link struct{ u, v int32 }
	m0 := deg + 1
	edges := make([]link, 0, n*deg)
	targets := make([]int32, 0, 2*n*deg)
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			edges = append(edges, link{int32(i), int32(j)})
			targets = append(targets, int32(i), int32(j))
		}
	}
	chosen := make([]int32, 0, deg)
	for v := m0; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < deg {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, u := range chosen {
			edges = append(edges, link{u, int32(v)})
			targets = append(targets, u, int32(v))
		}
	}
	for i := int(frac * float64(n)); i > 0; i-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			// Parallel links are fine: shortest paths take the minimum.
			edges = append(edges, link{int32(u), int32(v)})
		}
	}

	// Classify by final degree: top ~1% core (at least 3), next ~9%
	// transit, rest edge. Ties break toward the lower node index so the
	// classification is deterministic.
	degCount := make([]int, n)
	for _, e := range edges {
		degCount[e.u]++
		degCount[e.v]++
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if degCount[order[a]] != degCount[order[b]] {
			return degCount[order[a]] > degCount[order[b]]
		}
		return order[a] < order[b]
	})
	nCore := n / 100
	if nCore < 3 {
		nCore = 3
	}
	nTransit := n / 10
	if nTransit < nCore {
		nTransit = nCore
	}
	tier := make([]int, n)
	for rank, node := range order {
		switch {
		case rank < nCore:
			tier[node] = 0
		case rank < nCore+nTransit:
			tier[node] = 1
		default:
			tier[node] = 2
		}
	}

	total := n + spec.ClientStubs
	g := graph.New(total)
	for _, e := range edges {
		r := asLatRange[tier[e.u]][tier[e.v]]
		if err := g.AddEdge(int(e.u), int(e.v), r[0]+rng.Float64()*(r[1]-r[0])); err != nil {
			return nil, fmt.Errorf("topology %q: %w", cfg.Name, err)
		}
	}

	tierName := [3]string{tierCore, tierTransit, tierEdge}
	sites := make([]Site, total)
	for i := 0; i < n; i++ {
		sites[i] = Site{Name: fmt.Sprintf("as-%04d", i), Region: tierName[tier[i]]}
	}

	// Stub sites draw from the rng strictly after every AS draw, so
	// ClientStubs == 0 reproduces pre-stub topologies exactly. The access
	// latency is a fixed per-class constant — not a random draw — which is
	// what guarantees co-attached same-class stubs identical RTT rows.
	for s := 0; s < spec.ClientStubs; s++ {
		parent := rng.Intn(n)
		class := rng.Intn(stubClasses)
		if err := g.AddEdge(n+s, parent, 1+2*float64(class)); err != nil {
			return nil, fmt.Errorf("topology %q: %w", cfg.Name, err)
		}
		sites[n+s] = Site{Name: fmt.Sprintf("stub-%04d", s), Region: tierStub}
	}
	return FromGraph(cfg.Name, sites, g, spec.Workers)
}
