package topology

import "testing"

func BenchmarkPlanetLab50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PlanetLab50(int64(i))
	}
}

func BenchmarkDaxlist161(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Daxlist161(int64(i))
	}
}
