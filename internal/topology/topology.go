// Package topology models wide-area network topologies: a set of named
// sites, a round-trip-time metric between them, and per-site capacities.
//
// The paper evaluates on two topologies built from measurements: RTTs
// between 50 PlanetLab sites ("Planetlab-50") and king-estimated delays
// between 161 web servers ("daxlist-161"). Those datasets are not
// redistributable, so this package synthesizes equivalents with the same
// structure: sites clustered into geographic regions, great-circle
// propagation delay with path inflation, per-site access delay, and seeded
// jitter, followed by a metric closure. See DESIGN.md for the substitution
// rationale. Real measurements can be used instead via Load.
package topology

import (
	"fmt"
	"math"

	"github.com/quorumnet/quorumnet/internal/graph"
)

// Site describes one wide-area location.
type Site struct {
	Name   string
	Region string
	Lat    float64 // degrees, positive north
	Lon    float64 // degrees, positive east
}

// Topology is a set of sites with a round-trip delay metric (milliseconds)
// and a capacity per site. Capacities are in load units — the fraction of
// total client demand a site may absorb — and default to 1 (unconstrained).
type Topology struct {
	name  string
	sites []Site
	dist  *graph.Matrix
	caps  []float64
}

// New assembles a topology from sites and a distance matrix. The matrix
// must match the site count; it is not copied. It returns an error if the
// matrix is not a metric (symmetric, zero diagonal, triangle inequality):
// callers with raw measured data should call (*graph.Matrix).MetricClosure
// first, as the generators in this package do.
func New(name string, sites []Site, dist *graph.Matrix) (*Topology, error) {
	if dist.Size() != len(sites) {
		return nil, fmt.Errorf("topology: %d sites but %d×%d matrix", len(sites), dist.Size(), dist.Size())
	}
	if !dist.IsMetric(1e-6) {
		return nil, fmt.Errorf("topology %q: distance matrix is not a metric; apply MetricClosure first", name)
	}
	return newTrusted(name, sites, dist), nil
}

// NewMetric assembles a topology from a matrix the caller guarantees is
// already a metric — for example the output of (*graph.Matrix).MetricClosure
// or (*graph.Graph).Closure, which satisfy symmetry and the triangle
// inequality by construction. It skips New's O(n³) IsMetric validation,
// which at internet scale (1k–10k sites) costs more than computing the
// closure itself.
func NewMetric(name string, sites []Site, dist *graph.Matrix) (*Topology, error) {
	if dist.Size() != len(sites) {
		return nil, fmt.Errorf("topology: %d sites but %d×%d matrix", len(sites), dist.Size(), dist.Size())
	}
	return newTrusted(name, sites, dist), nil
}

// FromGraph builds a topology whose RTT metric is the shortest-path closure
// of an edge graph, computed on the sparse parallel path (workers <= 0
// means GOMAXPROCS). The graph must be connected: a disconnected graph
// would put +Inf RTTs in the metric, which every downstream consumer
// (placement balls, LP coefficients) would silently corrupt on.
func FromGraph(name string, sites []Site, g *graph.Graph, workers int) (*Topology, error) {
	if g.NumNodes() != len(sites) {
		return nil, fmt.Errorf("topology: %d sites but %d graph nodes", len(sites), g.NumNodes())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topology %q: edge graph is disconnected", name)
	}
	return newTrusted(name, sites, g.Closure(workers)), nil
}

func newTrusted(name string, sites []Site, dist *graph.Matrix) *Topology {
	caps := make([]float64, len(sites))
	for i := range caps {
		caps[i] = 1
	}
	return &Topology{name: name, sites: append([]Site(nil), sites...), dist: dist, caps: caps}
}

// Name returns the topology's name (e.g. "planetlab-50").
func (t *Topology) Name() string { return t.name }

// Size returns the number of sites.
func (t *Topology) Size() int { return len(t.sites) }

// Site returns the i-th site's metadata.
func (t *Topology) Site(i int) Site { return t.sites[i] }

// RTT returns the round-trip delay between sites u and v in milliseconds.
func (t *Topology) RTT(u, v int) float64 { return t.dist.At(u, v) }

// Distances exposes the underlying metric. Callers must treat it as
// read-only.
func (t *Topology) Distances() *graph.Matrix { return t.dist }

// RTTRow returns the RTTs from site v to all sites. The slice is shared
// with the topology and must not be mutated; it exists for hot loops.
func (t *Topology) RTTRow(v int) []float64 { return t.dist.RowView(v) }

// Capacity returns the capacity of site v.
func (t *Topology) Capacity(v int) float64 { return t.caps[v] }

// Capacities returns a copy of all site capacities.
func (t *Topology) Capacities() []float64 {
	out := make([]float64, len(t.caps))
	copy(out, t.caps)
	return out
}

// SetCapacity sets the capacity of site v. Capacities must be positive.
func (t *Topology) SetCapacity(v int, c float64) error {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("topology: invalid capacity %v for site %d", c, v)
	}
	t.caps[v] = c
	return nil
}

// SetUniformCapacity sets every site's capacity to c.
func (t *Topology) SetUniformCapacity(c float64) error {
	for v := range t.caps {
		if err := t.SetCapacity(v, c); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy; mutating the clone's capacities does not
// affect the original. The distance matrix is shared (it is immutable by
// convention).
func (t *Topology) Clone() *Topology {
	caps := make([]float64, len(t.caps))
	copy(caps, t.caps)
	return &Topology{
		name:  t.name,
		sites: append([]Site(nil), t.sites...),
		dist:  t.dist,
		caps:  caps,
	}
}

// Median returns the site minimizing average distance from all sites, and
// that average. This is the singleton placement target.
func (t *Topology) Median() (site int, avgRTT float64) { return t.dist.Median() }

// Ball returns the k sites closest to center, including center, ordered by
// distance.
func (t *Topology) Ball(center, k int) []int { return t.dist.Ball(center, k) }

// AvgRTT returns the mean off-diagonal RTT, a summary statistic used in
// reports.
func (t *Topology) AvgRTT() float64 {
	n := t.Size()
	if n < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				sum += t.dist.At(i, j)
			}
		}
	}
	return sum / float64(n*(n-1))
}

// Stats summarizes a topology for reports and the topogen tool.
type Stats struct {
	Sites        int
	Regions      map[string]int
	AvgRTT       float64
	MedianSite   int
	MedianAvgRTT float64
	MinRTT       float64
	MaxRTT       float64
}

// Stats computes summary statistics.
func (t *Topology) Stats() Stats {
	s := Stats{
		Sites:   t.Size(),
		Regions: map[string]int{},
		AvgRTT:  t.AvgRTT(),
		MinRTT:  math.Inf(1),
		MaxRTT:  math.Inf(-1),
	}
	s.MedianSite, s.MedianAvgRTT = t.Median()
	for _, site := range t.sites {
		s.Regions[site.Region]++
	}
	for i := 0; i < t.Size(); i++ {
		for j := i + 1; j < t.Size(); j++ {
			d := t.dist.At(i, j)
			if d < s.MinRTT {
				s.MinRTT = d
			}
			if d > s.MaxRTT {
				s.MaxRTT = d
			}
		}
	}
	if t.Size() < 2 {
		s.MinRTT, s.MaxRTT = 0, 0
	}
	return s
}
