// Package par holds the one concurrency primitive the library needs: a
// bounded parallel index loop. Sweeps, placement anchor searches, and
// experiment fan-outs all follow the same pattern — n independent units
// of work whose results land in index-addressed slots, so the outcome
// never depends on scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) on at most `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns when all calls have
// finished. With workers == 1 (or n == 1) it degenerates to a plain
// loop on the calling goroutine. fn receives each index exactly once;
// it must confine its writes to index-addressed slots (or synchronize
// otherwise).
//
// Callers that are themselves inside a For worker should pass
// workers = 1 to the nested loop: nesting two GOMAXPROCS-wide pools
// multiplies the live goroutines (and their workspaces) to the product
// of the two widths.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
