package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 64} {
			counts := make([]atomic.Int32, n)
			For(n, workers, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForSerialWhenOneWorker(t *testing.T) {
	// With one worker the calls must arrive in index order on the
	// calling goroutine.
	var order []int
	For(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("order %v not sequential", order)
		}
	}
}
