package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/scenario"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// testSpec is a small eval scenario with enough points (5) to spread
// across workers.
func testSpec() *scenario.Spec {
	return &scenario.Spec{
		Name: "fleet-test",
		Kind: scenario.KindEval,
		Topology: scenario.TopologySpec{
			Source: "synth",
			Seed:   11,
			Synth: &topology.GenConfig{
				Name:      "fleet-test-12",
				Inflation: 1.4,
				Regions: []topology.RegionSpec{
					{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
					{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
				},
			},
		},
		Systems:    []scenario.SystemAxis{{Family: "singleton"}, {Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1, 2}}},
		Demands:    []float64{0, 4000},
		Strategies: []string{"closest", "lp"},
		Measures:   []string{"response"},
	}
}

func testCfg() scenario.RunConfig {
	return scenario.RunConfig{Reproducible: true}
}

func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerOptions{MaxWait: time.Second}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestFleetRunByteIdentical: a two-worker fleet run merges to the exact
// bytes of a local unsharded run, with more shards than workers.
func TestFleetRunByteIdentical(t *testing.T) {
	spec, cfg := testSpec(), testCfg()
	base, err := scenario.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := startWorker(t), startWorker(t)
	coord, err := New(Config{
		Workers: []string{w1.URL, w2.URL},
		Shards:  3,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("fleet table differs:\n%v\nvs\n%v", base.Rows, got.Rows)
	}
	var baseText, gotText bytes.Buffer
	if err := base.Format(&baseText); err != nil {
		t.Fatal(err)
	}
	if err := got.Format(&gotText); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseText.Bytes(), gotText.Bytes()) {
		t.Fatal("fleet formatted output differs from local run")
	}
}

// TestFleetRetriesDeadWorker: shards assigned to an unreachable worker
// are retried on the live one and the run still merges correctly.
func TestFleetRetriesDeadWorker(t *testing.T) {
	spec, cfg := testSpec(), testCfg()
	base, err := scenario.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // now refuses connections
	live := startWorker(t)
	coord, err := New(Config{
		Workers:  []string{dead.URL, live.URL},
		Shards:   2,
		Attempts: 2,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Rows, got.Rows) {
		t.Fatal("retried fleet run differs from local run")
	}
}

// TestFleetSurfacesJobErrors: a spec that enumerates but cannot execute
// (its topology file is missing) fails the run with the worker's error.
func TestFleetSurfacesJobErrors(t *testing.T) {
	spec := testSpec()
	spec.Topology = scenario.TopologySpec{Source: "file", Path: "/nonexistent/topo.txt"}
	live := startWorker(t)
	coord, err := New(Config{Workers: []string{live.URL}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(spec, testCfg())
	if err == nil {
		t.Fatal("missing topology file did not fail the run")
	}
	if !strings.Contains(err.Error(), "no such file") {
		t.Errorf("error %q does not carry the worker-side cause", err)
	}
}

// TestStaticSingleWorkerRetryBacksOff: with a static one-worker fleet,
// every retry wraps back onto the worker that just failed — the
// coordinator must wait RetryBackoff between attempts instead of
// hot-looping through its whole attempt budget in microseconds.
func TestStaticSingleWorkerRetryBacksOff(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(nil))
	dead.Close() // now refuses connections
	var mu sync.Mutex
	var events []Event
	coord, err := New(Config{
		Workers:      []string{dead.URL},
		Attempts:     3,
		RetryBackoff: 30 * time.Millisecond,
		Logf:         t.Logf,
		OnEvent: func(ev Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = coord.Run(testSpec(), testCfg())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run against a dead fleet succeeded")
	}
	mu.Lock()
	defer mu.Unlock()
	backoffs := 0
	for _, ev := range events {
		if ev.Kind == EventBackoff {
			backoffs++
		}
	}
	// Attempts 2 and 3 both re-try the already-failed worker.
	if backoffs != 2 {
		t.Errorf("backoff events: %d, want 2 (events: %+v)", backoffs, events)
	}
	if elapsed < 60*time.Millisecond {
		t.Errorf("3 attempts finished in %s: retries cannot have backed off 30ms each", elapsed)
	}
}

// TestWorkerHTTPValidation covers the protocol edges: malformed
// submissions, unknown jobs, bad shard ranges, long-poll running
// status, and the job list.
func TestWorkerHTTPValidation(t *testing.T) {
	srv := startWorker(t)
	post := func(body string) (*http.Response, error) {
		return http.Post(srv.URL+"/v1/shards", "application/json", strings.NewReader(body))
	}

	resp, err := post(`{"bogus": 1}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	specJSON, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err = post(`{"spec": ` + string(specJSON) + `, "shard": 5, "shards": 2}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range shard: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/shards/job-99/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}

	// A valid submission long-polled with a tiny timeout may report
	// "running"; polling until done must produce the partial.
	resp, err = post(`{"spec": ` + string(specJSON) + `, "config": {"reproducible": true}, "shard": 0, "shards": 2}`)
	if err != nil {
		t.Fatal(err)
	}
	var sub ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: HTTP %d, id %q", resp.StatusCode, sub.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Get(srv.URL + "/v1/shards/" + sub.ID + "/result?timeout=50ms")
		if err != nil {
			t.Fatal(err)
		}
		var res ResultResponse
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if res.Status == StatusDone {
			if res.Partial == nil || len(res.Partial.Points) == 0 {
				t.Fatalf("done result without partial: %+v", res)
			}
			break
		}
		if res.Status != StatusRunning {
			t.Fatalf("unexpected status %q (%s)", res.Status, res.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
	}

	// Delivered jobs are evicted: the list is empty again and a second
	// result fetch is a 404 (a coordinator that lost the response
	// re-dispatches the shard instead).
	resp, err = http.Get(srv.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 0 {
		t.Errorf("delivered job not evicted: %+v", list.Jobs)
	}
	resp, err = http.Get(srv.URL + "/v1/shards/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("re-fetch of delivered job: HTTP %d, want 404", resp.StatusCode)
	}
}
