package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists static worker addresses ("host:port" or full http://
	// URLs). Leave empty when Registry is set.
	Workers []string
	// Registry switches the coordinator to elastic dispatch: shards run
	// on the live self-registered workers instead of a static list,
	// workers may join mid-run, and a worker that misses heartbeats
	// while holding a shard triggers an immediate re-dispatch on another
	// worker (the dead one excluded, so the shard doesn't bounce back)
	// instead of burning a ShardTimeout.
	Registry *Registry
	// MinWorkers delays the first dispatch until this many workers are
	// live (elastic mode; default 1).
	MinWorkers int
	// Shards is the partition count (0 = one shard per worker). More
	// shards than workers is fine — workers pick up the next shard as
	// they finish — and often better for load balance.
	Shards int
	// Attempts bounds how many workers one shard is tried on before the
	// run fails (static default: min(3, len(Workers)); elastic default:
	// 5). Retries move to another worker, excluding the ones that
	// already failed the shard.
	Attempts int
	// RetryBackoff is the pause before a shard retries on a worker that
	// already failed it — the single-live-worker case, where excluding
	// the failed worker would otherwise starve the shard and not
	// excluding it would hot-loop (0 = 250ms).
	RetryBackoff time.Duration
	// DrainGrace is how long the dispatcher waits, after the run
	// completes, for superseded attempts to deliver naturally before
	// canceling them (0 = cancel immediately). Late results are
	// discarded by shard-attempt id either way.
	DrainGrace time.Duration
	// PollTimeout is the long-poll duration of each result request
	// (0 = 30s).
	PollTimeout time.Duration
	// ShardTimeout bounds one shard attempt end to end, dispatch through
	// result (0 = 10m). A worker that accepted a job but hangs — while
	// still heartbeating — charges one attempt when it expires; a worker
	// that stops heartbeating is handled far sooner by re-dispatch.
	ShardTimeout time.Duration
	// Journal, when set, records every dispatch/complete/merge transition
	// of the run (see internal/fleet/journal): a crashed coordinator's
	// run resumes from the journal alone, and attempt ids carry the
	// journal's epoch so takeover generations are distinguishable. A
	// journal write failure aborts the run — an unjournaled run that
	// claims to be journaled is worse than a loud failure.
	Journal *runjournal.Run
	// LeaseInterval is the cadence of journal lease renewals during
	// quiet stretches (0 = 1s). Irrelevant without Journal.
	LeaseInterval time.Duration
	// Client overrides the HTTP client (nil = a default without global
	// timeout; per-request contexts bound every call).
	Client *http.Client
	// Logf, when set, receives dispatch/retry/completion logs.
	Logf func(format string, args ...interface{})
	// OnEvent, when set, observes dispatch lifecycle events (progress
	// UIs, fault-injection tests). Called from the dispatcher goroutine;
	// keep handlers fast.
	OnEvent func(Event)
}

// Event is one dispatch lifecycle observation.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string
	// Shard is the shard index (-1 for fleet-wide events).
	Shard int
	// Attempt is the 1-based attempt number — for backoff events, the
	// attempt the backoff delays (0 when not attempt-scoped).
	Attempt int
	// AttemptID is the shard-attempt id ("e<epoch>-s<shard>-a<attempt>")
	// — the same id recorded in the run journal, so a -progress stream
	// greps against journal records and across takeover epochs.
	AttemptID string
	// Worker is the worker id (elastic) or address (static); empty for
	// events not tied to one worker (an elastic backoff excludes them
	// all).
	Worker string
	// Detail carries the reason or error text.
	Detail string
}

// Dispatch lifecycle event kinds.
const (
	// EventDispatch: a shard attempt was sent to a worker.
	EventDispatch = "dispatch"
	// EventWorkerJoin: a worker became live (elastic).
	EventWorkerJoin = "worker-join"
	// EventWorkerDead: a worker missed its heartbeats while holding a
	// shard; the shard is re-enqueued immediately (elastic).
	EventWorkerDead = "worker-dead"
	// EventRedispatch: a shard attempt failed and the shard was
	// re-enqueued on the remaining workers.
	EventRedispatch = "redispatch"
	// EventBackoff: every live worker already failed the shard; the
	// retry waits RetryBackoff before clearing the exclusions.
	EventBackoff = "backoff"
	// EventShardDone: a shard's first valid result was accepted.
	EventShardDone = "shard-done"
	// EventLateDiscard: a superseded attempt delivered a result after
	// the shard completed; it was discarded by shard-attempt id.
	EventLateDiscard = "late-discard"
	// EventAbandon: a superseded attempt ended without a usable result.
	EventAbandon = "abandon"
)

func (c Config) pollTimeout() time.Duration {
	if c.PollTimeout <= 0 {
		return 30 * time.Second
	}
	return c.PollTimeout
}

func (c Config) shardTimeout() time.Duration {
	if c.ShardTimeout <= 0 {
		return 10 * time.Minute
	}
	return c.ShardTimeout
}

func (c Config) retryBackoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.RetryBackoff
}

func (c Config) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	if c.Registry != nil {
		return 5
	}
	if len(c.Workers) < 3 {
		return len(c.Workers)
	}
	return 3
}

// Coordinator runs scenarios across a fleet of workers: partition,
// dispatch, retry, merge — over a static address list or, with a
// Registry, over an elastic roster with mid-job re-dispatch. Safe for
// sequential reuse across runs.
type Coordinator struct {
	cfg    Config
	addrs  []string
	client *http.Client
}

// New validates the configuration and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Registry != nil && len(cfg.Workers) > 0 {
		return nil, fmt.Errorf("fleet: Registry and a static worker list are exclusive")
	}
	if cfg.Registry == nil && len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers")
	}
	addrs := make([]string, len(cfg.Workers))
	for i, a := range cfg.Workers {
		a = normalizeAddr(a)
		if a == "" {
			return nil, fmt.Errorf("fleet: empty worker address")
		}
		addrs[i] = a
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{cfg: cfg, addrs: addrs, client: client}, nil
}

// normalizeAddr canonicalizes a worker or registry address: trimmed, no
// trailing slash, http:// scheme added when missing ("" stays "").
func normalizeAddr(a string) string {
	a = strings.TrimSuffix(strings.TrimSpace(a), "/")
	if a == "" {
		return ""
	}
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return a
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) event(ev Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// Run partitions the spec, executes every shard on the fleet, and
// merges the partials. The merged table is byte-identical to a local
// unsharded scenario.Run of the same spec and config, whatever order
// the shards complete in and whichever workers end up executing them.
func (c *Coordinator) Run(spec *scenario.Spec, cfg scenario.RunConfig) (*scenario.Table, error) {
	return c.run(spec, cfg, nil)
}

// Resume runs only the shards missing from completed — the partials a
// run journal recorded before the previous coordinator died — and
// merges recorded and fresh partials together. Because every shard is
// deterministic under the journaled settings, the merged table is
// byte-identical to an uninterrupted run, and Merge's exact point-cover
// check turns any duplicated or dropped shard into a hard error rather
// than silent row duplication.
func (c *Coordinator) Resume(spec *scenario.Spec, cfg scenario.RunConfig, completed map[int]*scenario.Partial) (*scenario.Table, error) {
	return c.run(spec, cfg, completed)
}

// epoch is the coordinator generation stamped into attempt ids: the
// journal's epoch when journaling, 1 otherwise.
func (c *Coordinator) epoch() int {
	if c.cfg.Journal != nil {
		return c.cfg.Journal.Epoch()
	}
	return 1
}

func attemptID(epoch, shard, attempt int) string {
	return fmt.Sprintf("e%d-s%d-a%d", epoch, shard, attempt)
}

// startLeaseTicker renews the journal lease during quiet stretches (a
// long shard with no completes must not look like a dead coordinator to
// a standby). Returns a stop function; no-op without a journal.
func (c *Coordinator) startLeaseTicker() func() {
	if c.cfg.Journal == nil {
		return func() {}
	}
	interval := c.cfg.LeaseInterval
	if interval <= 0 {
		interval = time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := c.cfg.Journal.RenewLease(interval); err != nil {
					c.logf("fleet: journal lease renewal failed: %v", err)
				}
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

func (c *Coordinator) run(spec *scenario.Spec, cfg scenario.RunConfig, completed map[int]*scenario.Partial) (*scenario.Table, error) {
	stopLease := c.startLeaseTicker()
	defer stopLease()
	if c.cfg.Registry != nil {
		return c.runElastic(spec, cfg, completed)
	}
	space, err := scenario.NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = len(c.addrs)
	}
	c.logf("fleet: %s: %d points across %d shards on %d workers (%d recovered)",
		spec.Name, space.NumPoints(), shards, len(c.addrs), len(completed))

	start := time.Now()
	partials := make([]*scenario.Partial, shards)
	errs := make([]error, shards)
	var done sync.WaitGroup
	var completedN int32
	var mu sync.Mutex
	for j := 0; j < shards; j++ {
		if p := completed[j]; p != nil {
			partials[j] = p
			continue
		}
		done.Add(1)
		go func(j int) {
			defer done.Done()
			partials[j], errs[j] = c.runShard(spec, cfg, j, shards)
			if errs[j] == nil {
				mu.Lock()
				completedN++
				n := completedN
				mu.Unlock()
				c.logf("fleet: %s: shard %d/%d done (%d/%d, %d rows, %.1fs)",
					spec.Name, j, shards, n, shards, len(partials[j].Table.Rows), time.Since(start).Seconds())
			}
		}(j)
	}
	done.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: %s: shard %d/%d: %w", spec.Name, j, shards, err)
		}
	}
	table, err := space.Merge(partials)
	if err != nil {
		return nil, err
	}
	if c.cfg.Journal != nil {
		if jerr := c.cfg.Journal.Merged(len(table.Rows)); jerr != nil {
			return nil, fmt.Errorf("fleet: %s: recording merge: %w", spec.Name, jerr)
		}
	}
	return table, nil
}

// runShard tries one shard on successive workers until one returns a
// partial. Wrapping back onto a worker that already failed the shard —
// inevitable with a single worker — waits RetryBackoff first, so
// retries never hot-loop.
func (c *Coordinator) runShard(spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) (*scenario.Partial, error) {
	attempts := c.cfg.attempts()
	tried := make(map[string]bool, attempts)
	var lastErr error
	for a := 0; a < attempts; a++ {
		addr := c.addrs[(shard+a)%len(c.addrs)]
		id := attemptID(c.epoch(), shard, a+1)
		if tried[addr] {
			c.event(Event{Kind: EventBackoff, Shard: shard, Attempt: a + 1, AttemptID: id, Worker: addr, Detail: c.cfg.retryBackoff().String()})
			c.logf("fleet: %s: shard %d/%d: retrying %s after %s backoff",
				spec.Name, shard, shards, addr, c.cfg.retryBackoff())
			time.Sleep(c.cfg.retryBackoff())
		}
		tried[addr] = true
		c.event(Event{Kind: EventDispatch, Shard: shard, Attempt: a + 1, AttemptID: id, Worker: addr})
		if c.cfg.Journal != nil {
			if err := c.cfg.Journal.Dispatch(shard, id, addr); err != nil {
				return nil, fmt.Errorf("journaling dispatch %s: %w", id, err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.shardTimeout())
		partial, err := c.attemptShard(ctx, addr, spec, cfg, shard, shards)
		cancel()
		if err == nil {
			if c.cfg.Journal != nil {
				if jerr := c.cfg.Journal.Complete(shard, id, addr, partial); jerr != nil {
					return nil, fmt.Errorf("journaling completion %s: %w", id, jerr)
				}
			}
			return partial, nil
		}
		lastErr = fmt.Errorf("worker %s (attempt %s): %w", addr, id, err)
		c.event(Event{Kind: EventRedispatch, Shard: shard, Attempt: a + 1, AttemptID: id, Worker: addr, Detail: err.Error()})
		c.logf("fleet: %s: shard %d/%d attempt %s on %s failed: %v",
			spec.Name, shard, shards, id, addr, err)
	}
	return nil, fmt.Errorf("all %d attempts failed, last: %w", attempts, lastErr)
}

// attemptShard dispatches one shard to one worker and long-polls for
// its result until ctx expires.
func (c *Coordinator) attemptShard(ctx context.Context, addr string, spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) (*scenario.Partial, error) {
	body, err := json.Marshal(&ShardRequest{Spec: spec, Config: Settings(cfg), Shard: shard, Shards: shards})
	if err != nil {
		return nil, err
	}
	var sub ShardResponse
	if err := c.doJSON(ctx, http.MethodPost, addr+"/v1/shards", body, &sub); err != nil {
		return nil, fmt.Errorf("submitting: %w", err)
	}
	if sub.ID == "" {
		return nil, fmt.Errorf("worker returned no job id")
	}

	url := fmt.Sprintf("%s/v1/shards/%s/result?timeout=%s", addr, sub.ID, c.cfg.pollTimeout())
	for {
		var res ResultResponse
		if err := c.doJSON(ctx, http.MethodGet, url, nil, &res); err != nil {
			return nil, fmt.Errorf("polling %s: %w", sub.ID, err)
		}
		switch res.Status {
		case StatusRunning:
			continue
		case StatusDone:
			if res.Partial == nil || res.Partial.Table == nil {
				return nil, fmt.Errorf("job %s done without a partial table", sub.ID)
			}
			return res.Partial, nil
		case StatusError:
			return nil, fmt.Errorf("job %s: %s", sub.ID, res.Error)
		default:
			return nil, fmt.Errorf("job %s: unknown status %q", sub.ID, res.Status)
		}
	}
}

// doJSON performs one request and decodes the JSON reply, surfacing
// {"error": ...} bodies as errors.
func (c *Coordinator) doJSON(ctx context.Context, method, url string, body []byte, out interface{}) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
