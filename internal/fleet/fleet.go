package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/quorumnet/quorumnet/internal/scenario"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists worker addresses ("host:port" or full http:// URLs).
	Workers []string
	// Shards is the partition count (0 = one shard per worker). More
	// shards than workers is fine — workers pick up the next shard as
	// they finish — and often better for load balance.
	Shards int
	// Attempts bounds how many workers one shard is tried on before the
	// run fails (0 = min(3, len(Workers))). Retries move to the next
	// worker round-robin, so a dead worker costs one failed attempt per
	// shard, not the run.
	Attempts int
	// PollTimeout is the long-poll duration of each result request
	// (0 = 30s).
	PollTimeout time.Duration
	// ShardTimeout bounds one shard attempt end to end, dispatch through
	// result (0 = 10m). A worker that accepted a job but hangs charges
	// one attempt when it expires.
	ShardTimeout time.Duration
	// Client overrides the HTTP client (nil = a default without global
	// timeout; per-request contexts bound every call).
	Client *http.Client
	// Logf, when set, receives dispatch/retry/completion logs.
	Logf func(format string, args ...interface{})
}

func (c Config) pollTimeout() time.Duration {
	if c.PollTimeout <= 0 {
		return 30 * time.Second
	}
	return c.PollTimeout
}

func (c Config) shardTimeout() time.Duration {
	if c.ShardTimeout <= 0 {
		return 10 * time.Minute
	}
	return c.ShardTimeout
}

func (c Config) attempts() int {
	if c.Attempts > 0 {
		return c.Attempts
	}
	if len(c.Workers) < 3 {
		return len(c.Workers)
	}
	return 3
}

// Coordinator runs scenarios across a fleet of workers: partition,
// dispatch, retry, merge. Safe for sequential reuse across runs.
type Coordinator struct {
	cfg    Config
	addrs  []string
	client *http.Client
}

// New validates the worker list and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers")
	}
	addrs := make([]string, len(cfg.Workers))
	for i, a := range cfg.Workers {
		a = strings.TrimSuffix(strings.TrimSpace(a), "/")
		if a == "" {
			return nil, fmt.Errorf("fleet: empty worker address")
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		addrs[i] = a
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{cfg: cfg, addrs: addrs, client: client}, nil
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run partitions the spec, executes every shard on the fleet, and
// merges the partials. The merged table is byte-identical to a local
// unsharded scenario.Run of the same spec and config, whatever order
// the shards complete in.
func (c *Coordinator) Run(spec *scenario.Spec, cfg scenario.RunConfig) (*scenario.Table, error) {
	space, err := scenario.NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}
	shards := c.cfg.Shards
	if shards <= 0 {
		shards = len(c.addrs)
	}
	c.logf("fleet: %s: %d points across %d shards on %d workers",
		spec.Name, space.NumPoints(), shards, len(c.addrs))

	start := time.Now()
	partials := make([]*scenario.Partial, shards)
	errs := make([]error, shards)
	var done sync.WaitGroup
	var completed int32
	var mu sync.Mutex
	for j := 0; j < shards; j++ {
		done.Add(1)
		go func(j int) {
			defer done.Done()
			partials[j], errs[j] = c.runShard(spec, cfg, j, shards)
			if errs[j] == nil {
				mu.Lock()
				completed++
				n := completed
				mu.Unlock()
				c.logf("fleet: %s: shard %d/%d done (%d/%d, %d rows, %.1fs)",
					spec.Name, j, shards, n, shards, len(partials[j].Table.Rows), time.Since(start).Seconds())
			}
		}(j)
	}
	done.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: %s: shard %d/%d: %w", spec.Name, j, shards, err)
		}
	}
	return space.Merge(partials)
}

// runShard tries one shard on successive workers until one returns a
// partial.
func (c *Coordinator) runShard(spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) (*scenario.Partial, error) {
	attempts := c.cfg.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		addr := c.addrs[(shard+a)%len(c.addrs)]
		partial, err := c.attemptShard(addr, spec, cfg, shard, shards)
		if err == nil {
			return partial, nil
		}
		lastErr = fmt.Errorf("worker %s: %w", addr, err)
		c.logf("fleet: %s: shard %d/%d attempt %d on %s failed: %v",
			spec.Name, shard, shards, a+1, addr, err)
	}
	return nil, fmt.Errorf("all %d attempts failed, last: %w", attempts, lastErr)
}

// attemptShard dispatches one shard to one worker and long-polls for
// its result.
func (c *Coordinator) attemptShard(addr string, spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) (*scenario.Partial, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.shardTimeout())
	defer cancel()

	body, err := json.Marshal(&ShardRequest{Spec: spec, Config: Settings(cfg), Shard: shard, Shards: shards})
	if err != nil {
		return nil, err
	}
	var sub ShardResponse
	if err := c.doJSON(ctx, http.MethodPost, addr+"/v1/shards", body, &sub); err != nil {
		return nil, fmt.Errorf("submitting: %w", err)
	}
	if sub.ID == "" {
		return nil, fmt.Errorf("worker returned no job id")
	}

	url := fmt.Sprintf("%s/v1/shards/%s/result?timeout=%s", addr, sub.ID, c.cfg.pollTimeout())
	for {
		var res ResultResponse
		if err := c.doJSON(ctx, http.MethodGet, url, nil, &res); err != nil {
			return nil, fmt.Errorf("polling %s: %w", sub.ID, err)
		}
		switch res.Status {
		case StatusRunning:
			continue
		case StatusDone:
			if res.Partial == nil || res.Partial.Table == nil {
				return nil, fmt.Errorf("job %s done without a partial table", sub.ID)
			}
			return res.Partial, nil
		case StatusError:
			return nil, fmt.Errorf("job %s: %s", sub.ID, res.Error)
		default:
			return nil, fmt.Errorf("job %s: unknown status %q", sub.ID, res.Status)
		}
	}
}

// doJSON performs one request and decodes the JSON reply, surfacing
// {"error": ...} bodies as errors.
func (c *Coordinator) doJSON(ctx context.Context, method, url string, body []byte, out interface{}) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
