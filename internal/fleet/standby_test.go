package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// executeShardLocally computes one shard's partial in-process — exactly
// the partial a worker would have returned, since execution is
// deterministic under Reproducible settings.
func executeShardLocally(t *testing.T, spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) *scenario.Partial {
	t.Helper()
	space, err := scenario.NewSpace(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := space.Shard(shard, shards)
	if err != nil {
		t.Fatal(err)
	}
	p, err := part.Execute()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// deadPrimaryJournal writes the journal of a primary that died between
// protocol points: shard 0 dispatched and completed, shard 1 dispatched
// but never finished. All records carry the harness's fake clock.
func deadPrimaryJournal(t *testing.T, h *elasticHarness) string {
	t.Helper()
	spec, cfg := testSpec(), testCfg()
	path := filepath.Join(t.TempDir(), "run.journal")
	jr, err := runjournal.Create(path, spec, cfg.Settings(), 2, runjournal.Options{Owner: "primary", Now: h.clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Dispatch(0, "e1-s0-a1", "w-dead"); err != nil {
		t.Fatal(err)
	}
	if err := jr.Complete(0, "e1-s0-a1", "w-dead", executeShardLocally(t, spec, cfg, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Dispatch(1, "e1-s1-a1", "w-dead"); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStandbyTakeoverByteIdentical is the takeover acceptance test: the
// primary dies holding shard 1 (its journal stops renewing, its
// dispatched job still running on a surviving worker), the standby
// detects the stale lease on the fake clock, takes over at epoch 2
// through the registry's surviving workers, and merges bytes identical
// to an uninterrupted run — with exactly one complete record per shard,
// the orphaned duplicate fenced out by its epoch-1 job id.
func TestStandbyTakeoverByteIdentical(t *testing.T) {
	h := newElasticHarness(t)
	spec, cfg := testSpec(), testCfg()
	path := deadPrimaryJournal(t, h)

	// The primary is dead: the fake clock moves past the lease TTL with
	// no journal activity.
	h.clock.Advance(10 * time.Second)

	// A surviving worker re-adopted through the registry — registered
	// after the advance so its heartbeat window is fresh.
	survivor := h.addWorker()

	// The dead primary's in-flight duplicate: its dispatch of shard 1
	// reached this worker and is still executing. The new epoch never
	// polls this job id, so its result can only be orphaned.
	body, err := json.Marshal(&ShardRequest{Spec: spec, Config: Settings(cfg), Shard: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(survivor.Addr+"/v1/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("orphan dispatch status %d", resp.StatusCode)
	}

	sb, err := NewStandby(StandbyOptions{
		Journal:  path,
		Owner:    "standby-1",
		LeaseTTL: 5 * time.Second,
		Now:      h.clock.Now,
		Coordinator: Config{
			Registry: h.reg,
			Logf:     t.Logf,
			OnEvent:  h.log.record,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, stale, err := sb.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Fatalf("lease %s old not declared stale", h.clock.Now().Sub(st.LastActivity))
	}
	if st.LeaseOwner != "primary" || st.Epoch != 1 || len(st.Completed) != 1 {
		t.Fatalf("pre-takeover state %+v", st)
	}

	table, err := sb.TakeOver(st)
	if err != nil {
		t.Fatal(err)
	}
	h.assertByteIdentical(table)

	// The takeover's dispatches are epoch-2 fenced, on the survivor.
	for _, ev := range h.log.all() {
		if ev.Kind == EventDispatch {
			if !strings.HasPrefix(ev.AttemptID, "e2-") {
				t.Fatalf("takeover dispatch %+v not epoch-2 fenced", ev)
			}
			if ev.Worker != survivor.ID {
				t.Fatalf("takeover dispatched to %q, want surviving worker %s", ev.Worker, survivor.ID)
			}
		}
	}
	if n := h.log.count(EventDispatch); n != 1 {
		t.Fatalf("takeover made %d dispatches, want 1 (only shard 1 was missing)", n)
	}

	// The journal holds exactly one complete record per shard: shard 0
	// from the dead primary, shard 1 from epoch 2. The orphan's result
	// never reached it.
	records, torn, err := journal.ReadAll(path)
	if err != nil || torn {
		t.Fatalf("post-takeover journal: torn=%v err=%v", torn, err)
	}
	completesPerShard := map[int]int{}
	for _, raw := range records {
		var rec runjournal.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type != runjournal.TypeComplete {
			continue
		}
		completesPerShard[rec.Shard]++
		switch rec.Shard {
		case 0:
			if rec.Epoch != 1 || rec.Worker != "w-dead" {
				t.Fatalf("shard 0 complete %+v, want the primary's record untouched", rec)
			}
		case 1:
			if rec.Epoch != 2 || !strings.HasPrefix(rec.AttemptID, "e2-") || rec.Worker != survivor.ID {
				t.Fatalf("shard 1 complete %+v, want an epoch-2 record from %s", rec, survivor.ID)
			}
		}
	}
	if completesPerShard[0] != 1 || completesPerShard[1] != 1 {
		t.Fatalf("complete records per shard %v, want exactly one each", completesPerShard)
	}

	st2, err := runjournal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Merged || st2.Epoch != 2 || st2.LeaseOwner != "standby-1" {
		t.Fatalf("post-takeover state %+v", st2)
	}
}

// TestStandbyTakeoverFromEveryRecordBoundary: the primary killed
// immediately after any journal append (every record-boundary prefix
// of a real run journal) leaves a state the standby can take over —
// declared stale, resumed at the next epoch, merged byte-identical.
// The complete journal instead sends the standby home un-fenced.
func TestStandbyTakeoverFromEveryRecordBoundary(t *testing.T) {
	path, want := journaledRun(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []int
	for off, b := range data {
		if b == '\n' {
			boundaries = append(boundaries, off+1)
		}
	}
	// The journal's timestamps are wall-clock (journaledRun uses the
	// default clock); an hour-ahead standby clock makes every unmerged
	// prefix stale without sleeping.
	farFuture := func() time.Time { return time.Now().Add(time.Hour) }

	for i, end := range boundaries {
		prefix := filepath.Join(t.TempDir(), "crash.journal")
		if err := os.WriteFile(prefix, data[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		w1, w2 := startWorker(t), startWorker(t)
		sb, err := NewStandby(StandbyOptions{
			Journal:     prefix,
			LeaseTTL:    5 * time.Second,
			Now:         farFuture,
			Coordinator: Config{Workers: []string{w1.URL, w2.URL}, Logf: t.Logf},
		})
		if err != nil {
			t.Fatal(err)
		}
		st, stale, err := sb.Check()
		if err != nil {
			t.Fatalf("prefix of %d records: %v", i+1, err)
		}
		if st.Merged {
			if stale {
				t.Fatalf("prefix of %d records: merged run declared stale", i+1)
			}
			continue // the full journal: the standby stands down
		}
		if !stale {
			t.Fatalf("prefix of %d records: dead primary not declared stale", i+1)
		}
		table, err := sb.TakeOver(st)
		if err != nil {
			t.Fatalf("prefix of %d records: takeover: %v", i+1, err)
		}
		if got := formatTable(t, table); !bytes.Equal(got, want) {
			t.Fatalf("takeover from %d-record prefix: merged bytes differ from uninterrupted run", i+1)
		}
	}
}

// TestStandbyHealthyPrimaryNotStale: a lease within TTL is never
// stale, so a live primary is not fenced.
func TestStandbyHealthyPrimaryNotStale(t *testing.T) {
	h := newElasticHarness(t)
	path := deadPrimaryJournal(t, h)
	h.clock.Advance(2 * time.Second) // within the 5s TTL

	sb, err := NewStandby(StandbyOptions{
		Journal:     path,
		LeaseTTL:    5 * time.Second,
		Now:         h.clock.Now,
		Coordinator: Config{Registry: h.reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, stale, err := sb.Check(); err != nil || stale {
		t.Fatalf("healthy primary: stale=%v err=%v", stale, err)
	}
}

// TestStandbyStandsDownWhenMerged: a journal whose run already merged
// sends the standby home with (nil, nil) — no takeover, no dispatch.
func TestStandbyStandsDownWhenMerged(t *testing.T) {
	h := newElasticHarness(t)
	path, _ := journaledRun(t, 2)
	sb, err := NewStandby(StandbyOptions{
		Journal:     path,
		Now:         h.clock.Now,
		Coordinator: Config{Registry: h.reg, Logf: t.Logf},
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := sb.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if table != nil {
		t.Fatal("standby took over a merged run")
	}
}

func TestStandbyValidation(t *testing.T) {
	if _, err := NewStandby(StandbyOptions{Coordinator: Config{Workers: []string{"w"}}}); err == nil {
		t.Fatal("standby without a journal path accepted")
	}
	if _, err := NewStandby(StandbyOptions{Journal: "x.journal"}); err == nil {
		t.Fatal("standby without workers or registry accepted")
	}
}
