package fleet

import (
	"context"
	"fmt"
	"time"

	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// StandbyOptions configures a standby coordinator.
type StandbyOptions struct {
	// Journal is the path of the run journal to tail. Required.
	Journal string
	// Owner identifies this standby in the lease records it writes after
	// taking over (default "standby").
	Owner string
	// LeaseTTL is how stale the primary's newest journal record may be
	// before the standby declares it dead and takes over (default 5s).
	// Must comfortably exceed the primary's LeaseInterval, or a healthy
	// primary gets fenced mid-run.
	LeaseTTL time.Duration
	// PollInterval is the journal re-read cadence while the primary is
	// healthy (default 1s).
	PollInterval time.Duration
	// Now overrides the clock used for staleness checks; tests drive
	// takeovers with fake clocks instead of sleeping. Journal timestamps
	// compare against this clock, so primary and standby clocks must be
	// roughly synchronized — with one LeaseTTL of skew budget.
	Now func() time.Time
	// Coordinator is the Config template for the takeover coordinator:
	// its Registry (the surviving workers re-adopted) or Workers list,
	// retry policy, Logf, OnEvent. Shards and Journal are overwritten
	// from the journal itself.
	Coordinator Config
}

func (o StandbyOptions) owner() string {
	if o.Owner == "" {
		return "standby"
	}
	return o.Owner
}

func (o StandbyOptions) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return 5 * time.Second
	}
	return o.LeaseTTL
}

func (o StandbyOptions) pollInterval() time.Duration {
	if o.PollInterval <= 0 {
		return time.Second
	}
	return o.PollInterval
}

func (o StandbyOptions) now() time.Time {
	if o.Now == nil {
		return time.Now()
	}
	return o.Now()
}

// Standby tails a run journal and takes over the run when the primary
// coordinator's lease goes stale: it reopens the journal at the next
// epoch (fencing its dispatches from the dead primary's), re-adopts the
// surviving workers through the registry, re-dispatches only the shards
// without a journaled result, and merges — byte-identical to the run
// the primary would have produced. The dead primary's in-flight
// attempts are harmless: their job ids are never polled by the new
// epoch, and the journal keeps the first complete record per shard.
type Standby struct {
	opts StandbyOptions
}

// NewStandby validates the options.
func NewStandby(opts StandbyOptions) (*Standby, error) {
	if opts.Journal == "" {
		return nil, fmt.Errorf("fleet: standby needs a journal path")
	}
	if opts.Coordinator.Registry == nil && len(opts.Coordinator.Workers) == 0 {
		return nil, fmt.Errorf("fleet: standby needs a coordinator Registry or worker list to take over with")
	}
	return &Standby{opts: opts}, nil
}

func (s *Standby) logf(format string, args ...interface{}) {
	if s.opts.Coordinator.Logf != nil {
		s.opts.Coordinator.Logf(format, args...)
	}
}

// Check loads the journal and reports whether the primary's lease is
// stale — no stamped record within LeaseTTL of now and the run not yet
// merged. The returned state is what TakeOver resumes from.
func (s *Standby) Check() (st *runjournal.State, stale bool, err error) {
	st, err = runjournal.Load(s.opts.Journal)
	if err != nil {
		return nil, false, err
	}
	if st.Merged {
		return st, false, nil
	}
	return st, s.opts.now().Sub(st.LastActivity) >= s.opts.leaseTTL(), nil
}

// TakeOver assumes the run: continue the journal at the next epoch and
// resume dispatch of the unfinished shards on the template coordinator.
func (s *Standby) TakeOver(st *runjournal.State) (*scenario.Table, error) {
	run, err := runjournal.Continue(s.opts.Journal, st, runjournal.Options{
		Owner: s.opts.owner(),
		Now:   s.opts.Now,
	})
	if err != nil {
		return nil, err
	}
	defer run.Close()
	cfg := s.opts.Coordinator
	cfg.Shards = st.Shards
	cfg.Journal = run
	coord, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.logf("fleet standby: %s taking over %s at epoch %d (%d/%d shards recorded, last activity %s by %s)",
		s.opts.owner(), s.opts.Journal, run.Epoch(), len(st.Completed), st.Shards,
		st.LastActivity.Format(time.RFC3339), st.LeaseOwner)
	return coord.Resume(st.Spec, st.Config.RunConfig(), st.Completed)
}

// Run is the production loop: poll the journal until the primary's
// lease goes stale, then take over and return the merged table. If the
// primary finishes the run itself, Run returns (nil, nil) — the standby
// was never needed. ctx cancellation also returns (nil, ctx.Err()).
func (s *Standby) Run(ctx context.Context) (*scenario.Table, error) {
	for {
		st, stale, err := s.Check()
		if err != nil {
			return nil, err
		}
		if st.Merged {
			s.logf("fleet standby: run in %s merged under %s; standing down", s.opts.Journal, st.LeaseOwner)
			return nil, nil
		}
		if stale {
			return s.TakeOver(st)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.opts.pollInterval()):
		}
	}
}
