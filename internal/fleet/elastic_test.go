package fleet

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/fleet/faultinject"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// eventLog records dispatcher events for post-run assertions and lets
// scripts hook exact lifecycle moments.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	hooks  []func(Event)
}

func (l *eventLog) record(ev Event) {
	l.mu.Lock()
	hooks := append([]func(Event){}, l.hooks...)
	l.events = append(l.events, ev)
	l.mu.Unlock()
	for _, h := range hooks {
		h(ev)
	}
}

func (l *eventLog) hook(h func(Event)) {
	l.mu.Lock()
	l.hooks = append(l.hooks, h)
	l.mu.Unlock()
}

func (l *eventLog) all() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

func (l *eventLog) count(kind string) int {
	n := 0
	for _, ev := range l.all() {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

func (l *eventLog) first(kind string) (Event, bool) {
	for _, ev := range l.all() {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

// elasticHarness wires a fake-clock registry, workers (optionally
// behind fault-injection proxies), and an event log: the scaffolding
// every re-dispatch test shares.
type elasticHarness struct {
	t      *testing.T
	clock  *fakeClock
	reg    *Registry
	log    *eventLog
	base   *scenario.Table
	baseTx []byte
}

func newElasticHarness(t *testing.T) *elasticHarness {
	t.Helper()
	clock := newFakeClock()
	h := &elasticHarness{
		t:     t,
		clock: clock,
		log:   &eventLog{},
		reg: NewRegistry(RegistryOptions{
			HeartbeatInterval: time.Second,
			MissedHeartbeats:  2,
			Now:               clock.Now,
			Logf:              t.Logf,
		}),
	}
	base, err := scenario.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.base = base
	var buf bytes.Buffer
	if err := base.Format(&buf); err != nil {
		t.Fatal(err)
	}
	h.baseTx = buf.Bytes()
	return h
}

// addWorker starts a worker and registers it directly (tests drive
// heartbeats by hand for determinism).
func (h *elasticHarness) addWorker() WorkerRef {
	h.t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerOptions{MaxWait: 100 * time.Millisecond, Logf: h.t.Logf}).Handler())
	h.t.Cleanup(srv.Close)
	return h.reg.Register(srv.URL, 1, 0)
}

// addProxiedWorker starts a worker behind a fault-injection proxy and
// registers the proxy's address.
func (h *elasticHarness) addProxiedWorker() (WorkerRef, *faultinject.Proxy) {
	h.t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerOptions{MaxWait: 100 * time.Millisecond, Logf: h.t.Logf}).Handler())
	h.t.Cleanup(srv.Close)
	proxy, err := faultinject.New(srv.URL)
	if err != nil {
		h.t.Fatal(err)
	}
	front := httptest.NewServer(proxy.Handler())
	h.t.Cleanup(front.Close)
	return h.reg.Register(front.URL, 1, 0), proxy
}

// kill expires the named worker: the clock advances two heartbeat
// intervals (the liveness window), every survivor beats once, and
// expiry runs — exactly what "missed 2 heartbeats" means on the wire.
func (h *elasticHarness) kill(id string) {
	h.t.Helper()
	h.clock.Advance(2 * h.reg.HeartbeatInterval())
	h.reg.mu.Lock()
	for wid, w := range h.reg.workers {
		if wid != id && !w.dead {
			w.lastBeat = h.clock.Now()
		}
	}
	h.reg.mu.Unlock()
	dead := h.reg.ExpireNow()
	if len(dead) != 1 || dead[0].ID != id {
		h.t.Errorf("kill %s: expired %v", id, dead)
	}
}

func (h *elasticHarness) coordinator(cfg Config) *Coordinator {
	h.t.Helper()
	cfg.Registry = h.reg
	cfg.Logf = h.t.Logf
	cfg.OnEvent = h.log.record
	coord, err := New(cfg)
	if err != nil {
		h.t.Fatal(err)
	}
	return coord
}

func (h *elasticHarness) assertByteIdentical(got *scenario.Table) {
	h.t.Helper()
	var buf bytes.Buffer
	if err := got.Format(&buf); err != nil {
		h.t.Fatal(err)
	}
	if !bytes.Equal(h.baseTx, buf.Bytes()) {
		h.t.Fatalf("elastic fleet output differs from unsharded run:\n%s\nvs\n%s",
			buf.String(), string(h.baseTx))
	}
}

// TestElasticFleetByteIdentical: an elastic run over self-registered
// workers — including one that joins mid-run — merges to the exact
// bytes of a local unsharded run.
func TestElasticFleetByteIdentical(t *testing.T) {
	h := newElasticHarness(t)
	h.addWorker()
	var joinOnce sync.Once
	h.log.hook(func(ev Event) {
		if ev.Kind == EventShardDone {
			joinOnce.Do(func() { h.addWorker() })
		}
	})
	coord := h.coordinator(Config{Shards: 4})
	got, err := coord.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.assertByteIdentical(got)
	if n := h.log.count(EventWorkerJoin); n != 2 {
		t.Errorf("worker-join events: %d, want 2 (one initial, one mid-run)", n)
	}
	if n := h.log.count(EventShardDone); n != 4 {
		t.Errorf("shard-done events: %d, want 4", n)
	}
}

// TestMidExecuteDeathRedispatch is the static-address-hang regression
// test: a worker dies mid-execute (its result polls black-hole, its
// heartbeats stop), and the coordinator re-dispatches the shard the
// moment the registry declares it dead — two missed heartbeats on the
// fake clock — instead of burning the 5-minute ShardTimeout the run is
// configured with. The script fires at the exact protocol point: right
// after the worker accepted the shard.
func TestMidExecuteDeathRedispatch(t *testing.T) {
	h := newElasticHarness(t)
	victim, proxy := h.addProxiedWorker()
	survivor := h.addWorker()

	proxy.After(faultinject.PointDispatch, func() {
		// Mid-execute: the job is accepted and running. The worker's
		// polls now hang like a TCP blackhole, and its heartbeats stop —
		// kill advances the clock exactly two intervals.
		proxy.Hold(faultinject.PointPoll)
		h.kill(victim.ID)
	})

	coord := h.coordinator(Config{Shards: 2, ShardTimeout: 5 * time.Minute})
	start := time.Now()
	got, err := coord.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	h.assertByteIdentical(got)

	deadEv, ok := h.log.first(EventWorkerDead)
	if !ok {
		t.Fatal("no worker-dead event: the shard was not re-dispatched on heartbeat death")
	}
	if deadEv.Worker != victim.ID || deadEv.Shard != 0 {
		t.Errorf("worker-dead event %+v, want victim %s shard 0", deadEv, victim.ID)
	}
	// The re-dispatched shard completed on the survivor, as attempt 2.
	var doneOnSurvivor bool
	for _, ev := range h.log.all() {
		if ev.Kind == EventShardDone && ev.Shard == deadEv.Shard {
			if ev.Worker != survivor.ID || ev.Attempt != 2 {
				t.Errorf("re-dispatched shard done %+v, want attempt 2 on %s", ev, survivor.ID)
			}
			doneOnSurvivor = true
		}
	}
	if !doneOnSurvivor {
		t.Fatal("re-dispatched shard never completed")
	}
	// Re-dispatch happened on the heartbeat window, not the ShardTimeout:
	// with the fake clock the whole run must take a fraction of the
	// 5-minute timeout a hung worker would have burned.
	if elapsed > time.Minute {
		t.Fatalf("run took %s; re-dispatch did not preempt the ShardTimeout", elapsed)
	}
}

// TestSingleWorkerRetryBacksOff: when the only live worker fails a
// shard (a dropped dispatch), the retry waits RetryBackoff and then
// re-tries the same worker with a clean exclusion slate — it neither
// hot-loops nor starves.
func TestSingleWorkerRetryBacksOff(t *testing.T) {
	h := newElasticHarness(t)
	_, proxy := h.addProxiedWorker()
	proxy.DropNext(faultinject.PointDispatch, 1)

	coord := h.coordinator(Config{Shards: 1, RetryBackoff: 30 * time.Millisecond})
	start := time.Now()
	got, err := coord.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.assertByteIdentical(got)
	if n := h.log.count(EventBackoff); n != 1 {
		t.Errorf("backoff events: %d, want exactly 1", n)
	}
	if ev, _ := h.log.first(EventShardDone); ev.Attempt != 2 {
		t.Errorf("shard completed as attempt %d, want 2 (one retry)", ev.Attempt)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("run finished in %s: the retry cannot have waited the 30ms backoff", elapsed)
	}
}

// TestPreResultSeverRedispatch: the worker executes the shard but the
// response delivering the finished result is dropped (pre-result
// fault); the coordinator retries the shard on the other worker,
// excluding the one that failed it.
func TestPreResultSeverRedispatch(t *testing.T) {
	h := newElasticHarness(t)
	victim, proxy := h.addProxiedWorker()
	survivor := h.addWorker()
	proxy.DropNext(faultinject.PointResult, 1)

	coord := h.coordinator(Config{Shards: 2})
	got, err := coord.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.assertByteIdentical(got)
	re, ok := h.log.first(EventRedispatch)
	if !ok {
		t.Fatal("dropped result produced no redispatch")
	}
	if re.Worker != victim.ID || re.Shard != 0 {
		t.Errorf("redispatch %+v, want shard 0 off %s", re, victim.ID)
	}
	for _, ev := range h.log.all() {
		if ev.Kind == EventShardDone && ev.Shard == re.Shard && ev.Worker != survivor.ID {
			t.Errorf("retried shard completed on %s, want excluded retry on %s", ev.Worker, survivor.ID)
		}
	}
}

// TestLateDuplicateResultDiscarded: a worker declared dead mid-execute
// later delivers its result anyway (it was only partitioned); by then
// the re-dispatched attempt has completed the shard, and the stale
// result is discarded by shard-attempt id — observable as exactly one
// late-discard event — leaving the merge byte-identical.
func TestLateDuplicateResultDiscarded(t *testing.T) {
	h := newElasticHarness(t)
	victim, proxy := h.addProxiedWorker()
	h.addWorker()

	// Park the victim's finished result at the proxy, kill the victim's
	// heartbeats the moment it accepts the shard, and release the parked
	// result only once the re-dispatched attempt has won the shard.
	releaseResult := proxy.Hold(faultinject.PointResult)
	proxy.After(faultinject.PointDispatch, func() { h.kill(victim.ID) })
	h.log.hook(func(ev Event) {
		if ev.Kind == EventShardDone && ev.Shard == 0 && ev.Worker != victim.ID {
			releaseResult()
		}
	})

	coord := h.coordinator(Config{Shards: 1, DrainGrace: 10 * time.Second})
	got, err := coord.Run(testSpec(), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.assertByteIdentical(got)
	if n := h.log.count(EventLateDiscard); n != 1 {
		t.Fatalf("late-discard events: %d, want exactly 1 (events: %+v)", n, h.log.all())
	}
	disc, _ := h.log.first(EventLateDiscard)
	if disc.Worker != victim.ID || disc.Attempt != 1 {
		t.Errorf("late discard %+v, want attempt 1 on %s", disc, victim.ID)
	}
	if ev, _ := h.log.first(EventShardDone); ev.Attempt != 2 {
		t.Errorf("shard won by attempt %d, want the re-dispatched attempt 2", ev.Attempt)
	}
}

// TestElasticRunFailsAfterMaxAttempts: a shard no worker can execute
// exhausts Attempts and fails the run with the shard named.
func TestElasticRunFailsAfterMaxAttempts(t *testing.T) {
	h := newElasticHarness(t)
	_, proxy := h.addProxiedWorker()
	proxy.Sever()

	coord := h.coordinator(Config{Shards: 1, Attempts: 2, RetryBackoff: 5 * time.Millisecond})
	_, err := coord.Run(testSpec(), testCfg())
	if err == nil {
		t.Fatal("run against a severed fleet succeeded")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempts") {
		t.Errorf("error %q does not name the attempt budget", err)
	}
}
