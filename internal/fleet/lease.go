package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// LeaseOptions tunes a worker's registration lease.
type LeaseOptions struct {
	// RetryDelay is the pause between failed registration attempts
	// (default 500ms) — the registry may simply not be up yet, so a
	// worker can start before its coordinator.
	RetryDelay time.Duration
	// Slots advertises the worker's concurrent-shard capacity with every
	// (re-)registration (<= 0 means 1). Dispatch weights load by it.
	Slots int
	// Cores advertises the worker's CPU count (informational).
	Cores int
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when set, receives lease lifecycle logs.
	Logf func(format string, args ...interface{})
}

func (o LeaseOptions) retryDelay() time.Duration {
	if o.RetryDelay <= 0 {
		return 500 * time.Millisecond
	}
	return o.RetryDelay
}

// Lease keeps one worker registered with a registry: it registers
// (retrying until the registry exists), heartbeats at the cadence the
// registration reply dictates, and re-registers under a fresh id
// whenever the registry stops recognizing the current one (expiry,
// registry restart). Stop ends the lease; the registry then declares
// the worker dead after MissedHeartbeats intervals.
type Lease struct {
	registry  string
	advertise string
	opts      LeaseOptions
	client    *http.Client

	mu   sync.Mutex
	id   string
	stop chan struct{}
	done chan struct{}
}

// Join starts a lease registering advertise (the address coordinators
// dispatch shards to) with the registry at registryAddr.
func Join(registryAddr, advertise string, opts LeaseOptions) (*Lease, error) {
	registryAddr = normalizeAddr(registryAddr)
	if registryAddr == "" {
		return nil, fmt.Errorf("fleet: empty registry address")
	}
	if strings.TrimSpace(advertise) == "" {
		return nil, fmt.Errorf("fleet: empty advertise address")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	l := &Lease{
		registry:  registryAddr,
		advertise: strings.TrimSpace(advertise),
		opts:      opts,
		client:    client,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go l.run()
	return l, nil
}

func (l *Lease) logf(format string, args ...interface{}) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// ID returns the current worker id ("" until the first registration
// lands).
func (l *Lease) ID() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.id
}

// Stop ends the lease and waits for its goroutine.
func (l *Lease) Stop() {
	l.mu.Lock()
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	l.mu.Unlock()
	<-l.done
}

func (l *Lease) run() {
	defer close(l.done)
	for {
		resp, ok := l.register()
		if !ok {
			return // stopped
		}
		l.mu.Lock()
		l.id = resp.ID
		l.mu.Unlock()
		interval := time.Duration(resp.HeartbeatMS) * time.Millisecond
		if interval <= 0 {
			interval = time.Second
		}
		l.logf("fleet lease: registered as %s (heartbeat every %s)", resp.ID, interval)
		if !l.beat(resp.ID, interval) {
			return // stopped
		}
		l.logf("fleet lease: %s no longer recognized; re-registering", resp.ID)
	}
}

// register retries until a registration lands or the lease stops.
func (l *Lease) register() (*RegisterResponse, bool) {
	for {
		body, _ := json.Marshal(&RegisterRequest{Addr: l.advertise, Slots: l.opts.Slots, Cores: l.opts.Cores})
		resp, err := l.client.Post(l.registry+"/v1/workers", "application/json", bytes.NewReader(body))
		if err == nil {
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusCreated {
				var reg RegisterResponse
				if json.Unmarshal(data, &reg) == nil && reg.ID != "" {
					return &reg, true
				}
				err = fmt.Errorf("malformed registration reply")
			} else if rerr == nil {
				err = fmt.Errorf("HTTP %d", resp.StatusCode)
			} else {
				err = rerr
			}
		}
		l.logf("fleet lease: registration failed (%v); retrying in %s", err, l.opts.retryDelay())
		select {
		case <-l.stop:
			return nil, false
		case <-time.After(l.opts.retryDelay()):
		}
	}
}

// beat heartbeats until the registry rejects the id (returns true: the
// caller re-registers) or the lease stops (returns false).
func (l *Lease) beat(id string, interval time.Duration) bool {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return false
		case <-ticker.C:
		}
		resp, err := l.client.Post(l.registry+"/v1/workers/"+id+"/heartbeat", "application/json", nil)
		if err != nil {
			// The registry may be restarting; keep beating. If it comes
			// back having forgotten us, the next beat's 404 re-registers.
			l.logf("fleet lease: heartbeat failed: %v", err)
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNoContent:
		case resp.StatusCode == http.StatusNotFound:
			return true
		default:
			l.logf("fleet lease: heartbeat HTTP %d", resp.StatusCode)
		}
	}
}
