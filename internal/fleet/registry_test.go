package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable registry clock: fault tests drive liveness
// by advancing it and calling ExpireNow, never by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestRegistryLifecycle drives registration, heartbeats, expiry, and
// re-registration through the Go API with a fake clock.
func TestRegistryLifecycle(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(RegistryOptions{
		HeartbeatInterval: time.Second,
		MissedHeartbeats:  2,
		Now:               clock.Now,
		Logf:              t.Logf,
	})

	a := reg.Register("127.0.0.1:1001", 1, 0)
	b := reg.Register("127.0.0.1:1002", 1, 0)
	if a.ID == b.ID {
		t.Fatalf("duplicate worker ids: %s", a.ID)
	}
	if live := reg.Live(); len(live) != 2 {
		t.Fatalf("want 2 live workers, got %v", live)
	}

	// One missed interval is not death.
	clock.Advance(1500 * time.Millisecond)
	if err := reg.Heartbeat(b.ID); err != nil {
		t.Fatal(err)
	}
	if dead := reg.ExpireNow(); len(dead) != 0 {
		t.Fatalf("1.5 intervals of silence already dead: %v", dead)
	}

	// Two missed intervals kill a (b kept beating).
	clock.Advance(500 * time.Millisecond)
	dead := reg.ExpireNow()
	if len(dead) != 1 || dead[0].ID != a.ID {
		t.Fatalf("want %s dead, got %v", a.ID, dead)
	}
	if live := reg.Live(); len(live) != 1 || live[0].ID != b.ID {
		t.Fatalf("want only %s live, got %v", b.ID, live)
	}
	liveN, deadN := reg.Counts()
	if liveN != 1 || deadN != 1 {
		t.Fatalf("counts live=%d dead=%d, want 1/1", liveN, deadN)
	}

	// A dead id's heartbeat is rejected — the lease must re-register.
	if err := reg.Heartbeat(a.ID); err == nil {
		t.Fatal("dead worker heartbeat accepted")
	}

	// Re-registration at the same address drops the dead entry and
	// issues a fresh id.
	a2 := reg.Register("127.0.0.1:1001", 1, 0)
	if a2.ID == a.ID {
		t.Fatalf("re-registration reused dead id %s", a.ID)
	}
	liveN, deadN = reg.Counts()
	if liveN != 2 || deadN != 0 {
		t.Fatalf("after re-registration: live=%d dead=%d, want 2/0", liveN, deadN)
	}
}

// TestRegistryChangedWakesOnEveryTransition: Changed fires on register
// and on expiry.
func TestRegistryChangedWakesOnEveryTransition(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(RegistryOptions{Now: clock.Now})

	ch := reg.Changed()
	w := reg.Register("127.0.0.1:1001", 1, 0)
	select {
	case <-ch:
	default:
		t.Fatal("registration did not fire Changed")
	}

	ch = reg.Changed()
	clock.Advance(2 * time.Second)
	if dead := reg.ExpireNow(); len(dead) != 1 || dead[0].ID != w.ID {
		t.Fatalf("want %s dead, got %v", w.ID, dead)
	}
	select {
	case <-ch:
	default:
		t.Fatal("expiry did not fire Changed")
	}
}

// TestRegistryHTTP exercises the wire protocol: registration replies
// carry the heartbeat contract, beats 204, unknown ids 404, and the
// roster lists live and dead.
func TestRegistryHTTP(t *testing.T) {
	clock := newFakeClock()
	reg := NewRegistry(RegistryOptions{
		HeartbeatInterval: 250 * time.Millisecond,
		MissedHeartbeats:  2,
		Now:               clock.Now,
	})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/workers", "application/json",
		strings.NewReader(`{"addr": "127.0.0.1:9190"}`))
	if err != nil {
		t.Fatal(err)
	}
	var regResp RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&regResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || regResp.ID == "" {
		t.Fatalf("register: HTTP %d, id %q", resp.StatusCode, regResp.ID)
	}
	if regResp.HeartbeatMS != 250 || regResp.Missed != 2 {
		t.Fatalf("heartbeat contract %+v, want 250ms x2", regResp)
	}

	resp, err = http.Post(srv.URL+"/v1/workers/"+regResp.ID+"/heartbeat", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("heartbeat: HTTP %d, want 204", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/workers/w-999/heartbeat", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown heartbeat: HTTP %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/workers", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	clock.Advance(time.Second)
	reg.ExpireNow()
	resp, err = http.Get(srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var roster struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(roster.Workers) != 1 || roster.Workers[0].Alive {
		t.Fatalf("roster %+v, want one dead worker", roster.Workers)
	}
}

// TestLeaseRegistersAndReRegisters: a lease registers (retrying until
// the registry exists), heartbeats on the advertised cadence, and
// re-registers under a fresh id after the registry forgets it.
func TestLeaseRegistersAndReRegisters(t *testing.T) {
	reg := NewRegistry(RegistryOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		MissedHeartbeats:  2,
		Logf:              t.Logf,
	})
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	lease, err := Join(srv.URL, "127.0.0.1:9190", LeaseOptions{
		RetryDelay: 10 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Stop()

	waitLive := func(what string) WorkerRef {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if live := reg.Live(); len(live) == 1 {
				return live[0]
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: lease never became live", what)
			}
			select {
			case <-reg.Changed():
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	first := waitLive("initial registration")
	// The registry records the id a beat before the lease stores it.
	for d := time.Now().Add(5 * time.Second); lease.ID() != first.ID; {
		if time.Now().After(d) {
			t.Fatalf("lease id %q never caught up to registry id %q", lease.ID(), first.ID)
		}
		time.Sleep(time.Millisecond)
	}

	// Forcibly expire the lease (as a long partition would); the next
	// heartbeat is rejected and the lease re-registers with a fresh id.
	deadline := time.Now().Add(5 * time.Second)
	for {
		reg.mu.Lock()
		if w := reg.workers[first.ID]; w != nil {
			w.lastBeat = w.lastBeat.Add(-time.Minute)
		}
		reg.mu.Unlock()
		reg.ExpireNow()
		second := waitLive("re-registration")
		if second.ID != first.ID {
			if lease.ID() != second.ID {
				// The lease may not have stored the fresh id yet; the
				// registry's roster is the source of truth here.
				t.Logf("lease id %q lagging registry id %q", lease.ID(), second.ID)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never re-registered with a fresh id")
		}
	}
}
