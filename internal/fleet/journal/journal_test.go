package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/scenario"
)

func jSpec() *scenario.Spec {
	return &scenario.Spec{
		Name:       "journal-test",
		Kind:       scenario.KindEval,
		Systems:    []scenario.SystemAxis{{Family: "grid", Params: []int{2}}},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
	}
}

func jSettings() scenario.Settings {
	return scenario.Settings{Reproducible: true}
}

func jPartial(shard, shards int) *scenario.Partial {
	return &scenario.Partial{
		Scenario: "journal-test",
		Config:   jSettings(),
		Shard:    shard,
		Shards:   shards,
		Points:   []int{shard},
		Tags:     []scenario.RowTag{{Point: shard, Seq: 0}},
	}
}

// tick is a manual clock for deterministic lease timestamps.
type tick struct{ t time.Time }

func newTick() *tick                    { return &tick{t: time.Unix(1000, 0)} }
func (c *tick) Now() time.Time          { return c.t }
func (c *tick) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRunJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	clk := newTick()
	r, err := Create(path, jSpec(), jSettings(), 3, Options{Owner: "primary", Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("fresh journal epoch %d, want 1", r.Epoch())
	}
	clk.Advance(time.Second)
	if err := r.Dispatch(0, "e1-s0-a1", "w-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Dispatch(1, "e1-s1-a1", "w-2"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := r.Complete(1, "e1-s1-a1", "w-2", jPartial(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wantHash, _ := jSpec().Hash()
	if st.SpecHash != wantHash {
		t.Fatalf("spec hash %s, want %s", st.SpecHash, wantHash)
	}
	if st.Shards != 3 || st.Epoch != 1 || st.Merged || st.Torn {
		t.Fatalf("state %+v", st)
	}
	if st.Config != jSettings() {
		t.Fatalf("config %+v", st.Config)
	}
	if len(st.Completed) != 1 || !reflect.DeepEqual(st.Completed[1], jPartial(1, 3)) {
		t.Fatalf("completed %+v", st.Completed)
	}
	if st.LeaseOwner != "primary" {
		t.Fatalf("lease owner %q", st.LeaseOwner)
	}
	if want := time.Unix(1002, 0); !st.LastActivity.Equal(want) {
		t.Fatalf("last activity %v, want %v", st.LastActivity, want)
	}
}

func TestContinueAdvancesEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	clk := newTick()
	r, err := Create(path, jSpec(), jSettings(), 2, Options{Owner: "primary", Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Complete(0, "e1-s0-a1", "w-1", jPartial(0, 2)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Second)
	r2, err := Continue(path, st, Options{Owner: "standby", Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Epoch() != 2 {
		t.Fatalf("continued epoch %d, want 2", r2.Epoch())
	}
	if err := r2.Complete(1, "e2-s1-a1", "w-3", jPartial(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r2.Merged(2); err != nil {
		t.Fatal(err)
	}
	r2.Close()

	st2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch != 2 || st2.LeaseOwner != "standby" || !st2.Merged {
		t.Fatalf("state after takeover %+v", st2)
	}
	if len(st2.Completed) != 2 {
		t.Fatalf("completed %d shards, want 2", len(st2.Completed))
	}
}

// TestFirstCompleteWins: a dead primary's duplicate complete landing
// after the new epoch's must not displace the recorded result.
func TestFirstCompleteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	r, err := Create(path, jSpec(), jSettings(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := jPartial(0, 2)
	first.Points = []int{0}
	if err := r.Complete(0, "e1-s0-a1", "w-1", first); err != nil {
		t.Fatal(err)
	}
	dup := jPartial(0, 2)
	dup.Tags = []scenario.RowTag{{Point: 0, Seq: 99}} // distinguishable
	if err := r.Complete(0, "e1-s0-a2", "w-2", dup); err != nil {
		t.Fatal(err)
	}
	r.Close()

	st, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Completed[0]; !reflect.DeepEqual(got, first) {
		t.Fatalf("duplicate complete displaced the first: %+v", got)
	}
}

func TestLoadRejectsTamperedSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	r, err := Create(path, jSpec(), jSettings(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"journal-test"`, `"other-study"`, 1)
	if edited == string(data) {
		t.Fatal("fixture: spec name not found in journal")
	}
	if err := os.WriteFile(path, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "spec hash") {
		t.Fatalf("tampered journal loaded: %v", err)
	}
}

// TestTornFinalRecordEveryOffset is the torn-write satellite at the
// journal layer: truncate the journal mid-line at every byte offset of
// the final record and assert recovery discards only that record —
// the loaded state deep-equals the state of the journal without it.
func TestTornFinalRecordEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal")
	clk := newTick()
	r, err := Create(path, jSpec(), jSettings(), 3, Options{Owner: "primary", Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := r.Dispatch(0, "e1-s0-a1", "w-1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Complete(0, "e1-s0-a1", "w-1", jPartial(0, 3)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := r.Complete(2, "e1-s2-a1", "w-2", jPartial(2, 3)); err != nil {
		t.Fatal(err)
	}
	r.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(string(data), "\n")
	cutAt := strings.LastIndexByte(body, '\n') + 1 // start of the final record
	prefix := data[:cutAt]
	final := data[cutAt:]

	// The reference state: the journal minus its final record.
	ref := filepath.Join(dir, "ref.journal")
	if err := os.WriteFile(ref, prefix, 0o644); err != nil {
		t.Fatal(err)
	}
	want, err := Load(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Completed) != 1 {
		t.Fatalf("reference keeps %d completes, want 1", len(want.Completed))
	}

	for cut := 0; cut < len(final); cut++ {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, append(append([]byte(nil), prefix...), final[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantTorn := cut > 0
		if got.Torn != wantTorn {
			t.Fatalf("cut %d: torn=%v, want %v", cut, got.Torn, wantTorn)
		}
		got.Torn = want.Torn // compare everything else exactly
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: recovered state diverges:\n%+v\nvs\n%+v", cut, got, want)
		}
		if err := os.Remove(torn); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("empty journal loaded")
	}
	noHeader := filepath.Join(dir, "nohdr.journal")
	if err := os.WriteFile(noHeader, []byte(`{"type":"lease","owner":"x","epoch":1,"t":5}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(noHeader); err == nil {
		t.Fatal("headerless journal loaded")
	}
}
