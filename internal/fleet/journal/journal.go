// Package journal is the fleet coordinator's run journal: one
// append-only JSON-lines file (internal/journal format) recording every
// state transition of a sharded study, durable enough that a crashed
// coordinator's run resumes from the journal alone.
//
// Record types, in protocol order:
//
//	header    — spec hash, the spec itself, run settings, shard count.
//	            Written once at Create; everything a resume needs to
//	            rebuild the run is inlined, so -resume takes only the
//	            journal path.
//	lease     — "a coordinator with this owner id and epoch is alive at
//	            t". The primary stamps one at takeover and renews it
//	            during quiet stretches; a standby declares the primary
//	            dead when the newest stamped record is older than its
//	            lease TTL.
//	dispatch  — shard s handed to worker w as attempt id a. Not fsynced:
//	            losing a dispatch record merely costs a re-dispatch.
//	complete  — shard s finished; the scenario.Partial is inlined.
//	            Fsynced: this is the record whose loss costs real work.
//	merged    — the run merged successfully (row count recorded).
//
// Fencing is first-complete-wins: Load keeps the first complete record
// per shard and ignores later ones, so a dead primary's in-flight
// duplicate landing after a takeover cannot displace the result the new
// epoch already recorded. Epochs are generation numbers: Continue opens
// the journal at max-seen-epoch+1, and attempt ids carry the epoch
// ("e2-s1-a1"), making a takeover's dispatches distinguishable from the
// dead primary's in every event stream and error message.
package journal

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

// Record is one journal line. Type selects which fields are meaningful;
// the rest stay at their zero values and are omitted from the JSON.
type Record struct {
	Type string `json:"type"`

	// header fields
	SpecHash string             `json:"spec_hash,omitempty"`
	Spec     *scenario.Spec     `json:"spec,omitempty"`
	Config   *scenario.Settings `json:"config,omitempty"`
	Shards   int                `json:"shards,omitempty"`

	// lease fields (Owner/Epoch also stamp dispatch/complete/merged)
	Owner  string `json:"owner,omitempty"`
	Epoch  int    `json:"epoch,omitempty"`
	TimeNS int64  `json:"t,omitempty"`

	// dispatch/complete fields
	Shard     int               `json:"shard"`
	AttemptID string            `json:"attempt_id,omitempty"`
	Worker    string            `json:"worker,omitempty"`
	Partial   *scenario.Partial `json:"partial,omitempty"`

	// merged fields
	Rows int `json:"rows,omitempty"`
}

// Record types.
const (
	TypeHeader   = "header"
	TypeLease    = "lease"
	TypeDispatch = "dispatch"
	TypeComplete = "complete"
	TypeMerged   = "merged"
)

// Options configures a run journal writer.
type Options struct {
	// Owner identifies the coordinator in lease records (default
	// "coordinator").
	Owner string
	// Now supplies lease timestamps; tests inject fake clocks. Defaults
	// to time.Now.
	Now func() time.Time
}

func (o Options) owner() string {
	if o.Owner == "" {
		return "coordinator"
	}
	return o.Owner
}

func (o Options) now() time.Time {
	if o.Now == nil {
		return time.Now()
	}
	return o.Now()
}

// Run appends a coordinator's state transitions to its journal. Safe
// for concurrent use — the static dispatch path journals from one
// goroutine per shard.
type Run struct {
	w     *journal.Writer
	opts  Options
	epoch int

	mu   sync.Mutex
	last time.Time // newest timestamp stamped by this writer
}

// Create starts a new run journal at path: header (spec inlined + spec
// hash + settings + shard count) and the epoch-1 lease, fsynced before
// returning so the run is resumable from its very first dispatch.
func Create(path string, spec *scenario.Spec, cfg scenario.Settings, shards int, opts Options) (*Run, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	w, err := journal.Create(path)
	if err != nil {
		return nil, err
	}
	r := &Run{w: w, opts: opts, epoch: 1}
	if err := w.Append(Record{
		Type:     TypeHeader,
		SpecHash: hash,
		Spec:     spec,
		Config:   &cfg,
		Shards:   shards,
	}); err != nil {
		w.Close()
		return nil, err
	}
	if err := r.Lease(); err != nil {
		w.Close()
		return nil, err
	}
	return r, nil
}

// Continue reopens an existing run journal for a new coordinator
// generation: any torn tail is truncated, the epoch advances past every
// epoch the journal has seen, and the new generation's lease is fsynced
// before returning — from that record on, the journal's authority is
// the new owner.
func Continue(path string, st *State, opts Options) (*Run, error) {
	w, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Run{w: w, opts: opts, epoch: st.Epoch + 1}
	if err := r.Lease(); err != nil {
		w.Close()
		return nil, err
	}
	return r, nil
}

// Epoch is this writer's coordinator generation.
func (r *Run) Epoch() int { return r.epoch }

func (r *Run) stamp(rec Record) Record {
	rec.Owner = r.opts.owner()
	rec.Epoch = r.epoch
	now := r.opts.now()
	rec.TimeNS = now.UnixNano()
	r.mu.Lock()
	if now.After(r.last) {
		r.last = now
	}
	r.mu.Unlock()
	return rec
}

// Lease renews this coordinator's claim on the run. Fsynced: a lease
// only works as a liveness signal if it is on disk when the standby
// looks.
func (r *Run) Lease() error {
	return r.w.AppendSync(r.stamp(Record{Type: TypeLease}))
}

// RenewLease appends a lease only if at least interval has passed since
// this writer's newest stamped record — every dispatch and complete
// already proves liveness, so quiet stretches are the only time a
// renewal buys anything.
func (r *Run) RenewLease(interval time.Duration) error {
	r.mu.Lock()
	due := r.opts.now().Sub(r.last) >= interval
	r.mu.Unlock()
	if !due {
		return nil
	}
	return r.Lease()
}

// Dispatch records shard handed to worker as attemptID. Not fsynced —
// batched behind the next Complete/Lease; a lost dispatch record costs
// only a redundant re-dispatch on resume.
func (r *Run) Dispatch(shard int, attemptID, worker string) error {
	return r.w.Append(r.stamp(Record{
		Type:      TypeDispatch,
		Shard:     shard,
		AttemptID: attemptID,
		Worker:    worker,
	}))
}

// Complete records a shard's finished Partial. Fsynced: once this
// returns, the shard survives any crash.
func (r *Run) Complete(shard int, attemptID, worker string, p *scenario.Partial) error {
	return r.w.AppendSync(r.stamp(Record{
		Type:      TypeComplete,
		Shard:     shard,
		AttemptID: attemptID,
		Worker:    worker,
		Partial:   p,
	}))
}

// Merged records the run's successful merge. Fsynced.
func (r *Run) Merged(rows int) error {
	return r.w.AppendSync(r.stamp(Record{Type: TypeMerged, Rows: rows}))
}

// Close flushes and closes the journal.
func (r *Run) Close() error { return r.w.Close() }

// State is a run journal read back: everything a resume or standby
// takeover needs.
type State struct {
	SpecHash string
	Spec     *scenario.Spec
	Config   scenario.Settings
	Shards   int
	// Completed holds the first complete record per shard —
	// first-complete-wins is the fencing rule that makes a dead
	// primary's late duplicate harmless.
	Completed map[int]*scenario.Partial
	// Epoch is the highest coordinator generation seen; Continue starts
	// the next generation at Epoch+1.
	Epoch int
	// LeaseOwner is the owner of the newest stamped record.
	LeaseOwner string
	// LastActivity is the newest timestamp stamped on any record — the
	// staleness signal standbys compare against their lease TTL.
	LastActivity time.Time
	// Merged reports whether the run already merged.
	Merged bool
	// Torn reports whether a torn final line was discarded.
	Torn bool
}

// Load reads a run journal back into a State, discarding a torn final
// line and verifying the header's spec hash against the inlined spec.
func Load(path string) (*State, error) {
	raw, torn, err := journal.ReadAll(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("run journal %s: empty (no intact header)", path)
	}
	st := &State{Completed: make(map[int]*scenario.Partial), Torn: torn}
	for i, line := range raw {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("run journal %s: record %d: %w", path, i, err)
		}
		if i == 0 {
			if rec.Type != TypeHeader {
				return nil, fmt.Errorf("run journal %s: first record is %q, want header", path, rec.Type)
			}
			if rec.Spec == nil || rec.Config == nil || rec.Shards <= 0 {
				return nil, fmt.Errorf("run journal %s: malformed header", path)
			}
			hash, err := rec.Spec.Hash()
			if err != nil {
				return nil, fmt.Errorf("run journal %s: %w", path, err)
			}
			if hash != rec.SpecHash {
				return nil, fmt.Errorf("run journal %s: spec hash %s does not match inlined spec (%s) — corrupt or edited journal", path, rec.SpecHash, hash)
			}
			st.SpecHash = rec.SpecHash
			st.Spec = rec.Spec
			st.Config = *rec.Config
			st.Shards = rec.Shards
			continue
		}
		if rec.Epoch > st.Epoch {
			st.Epoch = rec.Epoch
		}
		if rec.TimeNS != 0 {
			at := time.Unix(0, rec.TimeNS)
			if at.After(st.LastActivity) {
				st.LastActivity = at
				st.LeaseOwner = rec.Owner
			}
		}
		switch rec.Type {
		case TypeLease, TypeDispatch:
			// Liveness/progress only; state captured above.
		case TypeComplete:
			if rec.Partial == nil {
				return nil, fmt.Errorf("run journal %s: record %d: complete without partial", path, i)
			}
			if rec.Shard < 0 || rec.Shard >= st.Shards {
				return nil, fmt.Errorf("run journal %s: record %d: shard %d out of range [0,%d)", path, i, rec.Shard, st.Shards)
			}
			if _, dup := st.Completed[rec.Shard]; !dup { // first-complete-wins
				st.Completed[rec.Shard] = rec.Partial
			}
		case TypeMerged:
			st.Merged = true
		case TypeHeader:
			return nil, fmt.Errorf("run journal %s: record %d: duplicate header", path, i)
		default:
			return nil, fmt.Errorf("run journal %s: record %d: unknown type %q", path, i, rec.Type)
		}
	}
	if st.Epoch == 0 {
		st.Epoch = 1 // header-only journal: the creating coordinator was epoch 1
	}
	return st, nil
}
