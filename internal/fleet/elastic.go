package fleet

import (
	"context"
	"fmt"
	"time"

	"github.com/quorumnet/quorumnet/internal/scenario"
)

// elasticTask is one shard waiting for a worker.
type elasticTask struct {
	shard int
	// attempts already consumed by this shard.
	attempts int
	// excluded lists worker ids that already failed or died holding this
	// shard, so a retry never bounces straight back.
	excluded map[string]bool
	// lastErr and lastID describe the most recent failed attempt (worker
	// and shard-attempt id included), so an attempts-exhausted abort
	// names the exact dispatch that sank the run.
	lastErr string
	lastID  string
	// notBefore gates dispatch while a backoff is pending; backedOff
	// marks that the exclusions should be cleared when it expires (with
	// one live worker, keeping them would starve the shard forever).
	notBefore time.Time
	backedOff bool
}

// elasticAttempt is one in-flight dispatch of a shard to a worker.
type elasticAttempt struct {
	key     string
	shard   int
	attempt int
	worker  WorkerRef
	// excluded is the exclusion set the attempt was dispatched under
	// (without its own worker; failure handling adds it).
	excluded map[string]bool
	// superseded marks attempts whose worker died: the shard was already
	// re-enqueued, so this attempt's outcome can only be accepted if it
	// beats the replacement, and is otherwise discarded by attempt key.
	superseded bool
	cancel     context.CancelFunc
}

type attemptOutcome struct {
	key     string
	partial *scenario.Partial
	err     error
}

func copyExcluded(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// pickWorker chooses the live worker outside the exclusion set with the
// lowest load-to-slots ratio, so advertised capacity weights dispatch —
// a 4-slot worker draws four shards for every one a 1-slot worker gets
// — and a recovery onto a heterogeneous surviving fleet doesn't pile
// shards onto its smallest member. Ties break by registration order.
// The ratios compare by cross-multiplication to stay in integers.
func pickWorker(live []WorkerRef, excluded map[string]bool, load map[string]int) (WorkerRef, bool) {
	best := -1
	for i, w := range live {
		if excluded[w.ID] {
			continue
		}
		if best < 0 || load[w.ID]*live[best].slots() < load[live[best].ID]*w.slots() {
			best = i
		}
	}
	if best < 0 {
		return WorkerRef{}, false
	}
	return live[best], true
}

// runElastic dispatches the spec's shards over the registry's live
// workers. Beyond the static path it adds: joins observed mid-run, a
// worker that misses heartbeats while holding a shard triggers an
// immediate re-dispatch (no ShardTimeout burned), excluded tracking so
// re-dispatch never bounces straight back, backoff when every live
// worker already failed a shard, and discard of late duplicate results
// by shard-attempt id.
func (c *Coordinator) runElastic(spec *scenario.Spec, cfg scenario.RunConfig, recovered map[int]*scenario.Partial) (*scenario.Table, error) {
	reg := c.cfg.Registry
	space, err := scenario.NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}

	shards := c.cfg.Shards
	// remaining counts shards that still need a worker (a resume skips
	// recovered ones); -1 while the shard count awaits the roster.
	remaining := -1
	if shards > 0 {
		remaining = shards
		for j := 0; j < shards; j++ {
			if recovered[j] != nil {
				remaining--
			}
		}
	}

	// Wait for the starting quorum of workers; more may join later. A
	// resume with nothing left to dispatch skips the wait — merging
	// recovered partials needs no fleet.
	minWorkers := c.cfg.MinWorkers
	if minWorkers <= 0 {
		minWorkers = 1
	}
	for remaining != 0 {
		ch := reg.Changed()
		live := reg.Live()
		if len(live) >= minWorkers {
			break
		}
		c.logf("fleet: %s: waiting for workers (%d/%d live)", spec.Name, len(live), minWorkers)
		select {
		case <-ch:
		case <-time.After(reg.HeartbeatInterval()):
			reg.ExpireNow()
		}
	}

	if shards <= 0 {
		shards = len(reg.Live())
		if shards == 0 {
			shards = 1
		}
	}
	epoch := c.epoch()
	maxAttempts := c.cfg.attempts()
	start := time.Now()
	c.logf("fleet: %s: %d points across %d shards (elastic, epoch %d, %d workers live, %d recovered)",
		spec.Name, space.NumPoints(), shards, epoch, len(reg.Live()), len(recovered))

	var pending []*elasticTask
	inflight := map[string]*elasticAttempt{}
	perWorker := map[string]int{}
	done := make([]*scenario.Partial, shards)
	completed := 0
	for j := 0; j < shards; j++ {
		if p := recovered[j]; p != nil {
			done[j] = p
			completed++
			continue
		}
		pending = append(pending, &elasticTask{shard: j, excluded: map[string]bool{}})
	}
	redispatches := 0
	known := map[string]bool{}
	// Every spawned attempt reports exactly one outcome; the buffer holds
	// the worst case so no goroutine ever blocks on a finished run.
	results := make(chan attemptOutcome, shards*maxAttempts)

	abort := func(err error) (*scenario.Table, error) {
		for _, att := range inflight {
			att.cancel()
		}
		return nil, err
	}

	// takeOutcome retires one attempt and classifies its outcome. Returns
	// the task to re-enqueue, if any, and a journaling failure, which
	// aborts the run.
	takeOutcome := func(out attemptOutcome) (*elasticTask, error) {
		att := inflight[out.key]
		delete(inflight, out.key)
		att.cancel()
		perWorker[att.worker.ID]--
		switch {
		case out.err == nil && done[att.shard] == nil:
			// First valid result for the shard wins — even from a
			// superseded attempt whose worker was merely partitioned from
			// the registry.
			if c.cfg.Journal != nil {
				if jerr := c.cfg.Journal.Complete(att.shard, att.key, att.worker.ID, out.partial); jerr != nil {
					return nil, fmt.Errorf("fleet: %s: journaling completion %s: %w", spec.Name, att.key, jerr)
				}
			}
			done[att.shard] = out.partial
			completed++
			c.event(Event{Kind: EventShardDone, Shard: att.shard, Attempt: att.attempt, AttemptID: att.key, Worker: att.worker.ID})
			c.logf("fleet: %s: shard %d/%d done (attempt %s on %s, %d/%d, %d rows, %.1fs)",
				spec.Name, att.shard, shards, att.key, att.worker.ID,
				completed, shards, len(out.partial.Table.Rows), time.Since(start).Seconds())
		case out.err == nil:
			c.event(Event{Kind: EventLateDiscard, Shard: att.shard, Attempt: att.attempt, AttemptID: att.key, Worker: att.worker.ID})
			c.logf("fleet: %s: shard %d/%d: discarding late duplicate result (attempt %s on %s)",
				spec.Name, att.shard, shards, att.key, att.worker.ID)
		case att.superseded || done[att.shard] != nil:
			c.event(Event{Kind: EventAbandon, Shard: att.shard, Attempt: att.attempt, AttemptID: att.key, Worker: att.worker.ID, Detail: out.err.Error()})
		default:
			excluded := copyExcluded(att.excluded)
			excluded[att.worker.ID] = true
			redispatches++
			c.event(Event{Kind: EventRedispatch, Shard: att.shard, Attempt: att.attempt, AttemptID: att.key, Worker: att.worker.ID, Detail: out.err.Error()})
			c.logf("fleet: %s: shard %d/%d attempt %s on %s failed: %v",
				spec.Name, att.shard, shards, att.key, att.worker.ID, out.err)
			return &elasticTask{
				shard:    att.shard,
				attempts: att.attempt,
				excluded: excluded,
				lastErr:  out.err.Error(),
				lastID:   fmt.Sprintf("%s on %s", att.key, att.worker.ID),
			}, nil
		}
		return nil, nil
	}

	for completed < shards {
		ch := reg.Changed()
		live := reg.Live()
		liveSet := map[string]bool{}
		for _, w := range live {
			liveSet[w.ID] = true
			if !known[w.ID] {
				known[w.ID] = true
				c.event(Event{Kind: EventWorkerJoin, Shard: -1, Worker: w.ID, Detail: w.Addr})
				c.logf("fleet: %s: worker %s joined at %s (%d live)", spec.Name, w.ID, w.Addr, len(live))
			}
		}

		// Mid-job re-dispatch: an attempt whose worker went dead is
		// superseded and its shard re-enqueued immediately — within the
		// registry's missed-heartbeat window, not a ShardTimeout. The
		// attempt itself keeps polling (the worker may be alive but
		// partitioned from the registry); whichever attempt delivers
		// first wins, the loser is discarded by attempt key.
		for _, att := range inflight {
			if att.superseded || done[att.shard] != nil || liveSet[att.worker.ID] {
				continue
			}
			att.superseded = true
			redispatches++
			excluded := copyExcluded(att.excluded)
			excluded[att.worker.ID] = true
			pending = append(pending, &elasticTask{
				shard:    att.shard,
				attempts: att.attempt,
				excluded: excluded,
				lastErr:  "worker died (missed heartbeats)",
				lastID:   fmt.Sprintf("%s on %s", att.key, att.worker.ID),
			})
			c.event(Event{Kind: EventWorkerDead, Shard: att.shard, Attempt: att.attempt, AttemptID: att.key, Worker: att.worker.ID, Detail: "missed heartbeats"})
			c.logf("fleet: %s: worker %s died holding shard %d/%d (attempt %s); re-dispatching now",
				spec.Name, att.worker.ID, att.shard, shards, att.key)
		}

		// Dispatch every ready task that has an eligible worker.
		now := time.Now()
		var nextWake time.Time
		var still []*elasticTask
		for _, t := range pending {
			if done[t.shard] != nil {
				continue // completed by a superseded attempt meanwhile
			}
			if t.attempts >= maxAttempts {
				detail := ""
				if t.lastErr != "" {
					detail = fmt.Sprintf(" (last: %s: %s)", t.lastID, t.lastErr)
				}
				return abort(fmt.Errorf("fleet: %s: shard %d/%d failed after %d attempts%s",
					spec.Name, t.shard, shards, t.attempts, detail))
			}
			if now.Before(t.notBefore) {
				if nextWake.IsZero() || t.notBefore.Before(nextWake) {
					nextWake = t.notBefore
				}
				still = append(still, t)
				continue
			}
			if t.backedOff {
				t.excluded = map[string]bool{}
				t.backedOff = false
			}
			w, ok := pickWorker(live, t.excluded, perWorker)
			if !ok {
				if len(live) == 0 {
					c.logf("fleet: %s: shard %d/%d waiting: no live workers", spec.Name, t.shard, shards)
					still = append(still, t)
					continue
				}
				// Every live worker already failed this shard: back off,
				// then retry with a clean slate instead of hot-looping.
				t.notBefore = now.Add(c.cfg.retryBackoff())
				t.backedOff = true
				if nextWake.IsZero() || t.notBefore.Before(nextWake) {
					nextWake = t.notBefore
				}
				still = append(still, t)
				c.event(Event{Kind: EventBackoff, Shard: t.shard, Attempt: t.attempts + 1, AttemptID: attemptID(epoch, t.shard, t.attempts+1), Detail: c.cfg.retryBackoff().String()})
				c.logf("fleet: %s: shard %d/%d: all %d live workers excluded; backing off %s",
					spec.Name, t.shard, shards, len(live), c.cfg.retryBackoff())
				continue
			}
			attempt := t.attempts + 1
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.shardTimeout())
			att := &elasticAttempt{
				key:      attemptID(epoch, t.shard, attempt),
				shard:    t.shard,
				attempt:  attempt,
				worker:   w,
				excluded: copyExcluded(t.excluded),
				cancel:   cancel,
			}
			inflight[att.key] = att
			perWorker[w.ID]++
			c.event(Event{Kind: EventDispatch, Shard: t.shard, Attempt: attempt, AttemptID: att.key, Worker: w.ID})
			if c.cfg.Journal != nil {
				if jerr := c.cfg.Journal.Dispatch(t.shard, att.key, w.ID); jerr != nil {
					return abort(fmt.Errorf("fleet: %s: journaling dispatch %s: %w", spec.Name, att.key, jerr))
				}
			}
			c.logf("fleet: %s: shard %d/%d attempt %s -> %s (%s)",
				spec.Name, t.shard, shards, att.key, w.ID, w.Addr)
			go func(att *elasticAttempt, addr string) {
				partial, err := c.attemptShard(ctx, addr, spec, cfg, att.shard, shards)
				results <- attemptOutcome{key: att.key, partial: partial, err: err}
			}(att, w.Addr)
		}
		pending = still

		// Wait for an outcome, a roster change, a backoff expiry, or the
		// liveness tick that drives heartbeat expiry.
		wait := reg.HeartbeatInterval() / 2
		if wait <= 0 {
			wait = 500 * time.Millisecond
		}
		if !nextWake.IsZero() {
			if d := time.Until(nextWake); d < wait {
				wait = d
				if wait < time.Millisecond {
					wait = time.Millisecond
				}
			}
		}
		timer := time.NewTimer(wait)
		select {
		case out := <-results:
			timer.Stop()
			t, err := takeOutcome(out)
			if err != nil {
				return abort(err)
			}
			if t != nil {
				pending = append(pending, t)
			}
		case <-ch:
			timer.Stop()
		case <-timer.C:
			reg.ExpireNow()
		}
	}

	// Drain: superseded attempts may still be polling. Give them
	// DrainGrace to deliver naturally — their results are discarded by
	// attempt key with an observable event — then cancel the rest.
	if len(inflight) > 0 {
		grace := time.NewTimer(c.cfg.DrainGrace)
		draining := true
		for len(inflight) > 0 && draining {
			select {
			case out := <-results:
				if _, err := takeOutcome(out); err != nil {
					return abort(err)
				}
			case <-grace.C:
				draining = false
			}
		}
		grace.Stop()
		for _, att := range inflight {
			att.cancel()
		}
		for len(inflight) > 0 {
			if _, err := takeOutcome(<-results); err != nil {
				return abort(err)
			}
		}
	}

	live, dead := reg.Counts()
	c.logf("fleet: %s: run complete: %d shards, %d re-dispatches, workers live=%d dead=%d (%.1fs)",
		spec.Name, shards, redispatches, live, dead, time.Since(start).Seconds())
	table, err := space.Merge(done)
	if err != nil {
		return nil, err
	}
	if c.cfg.Journal != nil {
		if jerr := c.cfg.Journal.Merged(len(table.Rows)); jerr != nil {
			return nil, fmt.Errorf("fleet: %s: recording merge: %w", spec.Name, jerr)
		}
	}
	return table, nil
}
