package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker answers the fleet worker shapes the proxy classifies:
// submissions accept, result polls report running until the job is
// marked finished.
type fakeWorker struct {
	finished atomic.Bool
	polls    atomic.Int32
}

func (w *fakeWorker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/shards":
		rw.WriteHeader(http.StatusAccepted)
		io.WriteString(rw, `{"id": "job-1"}`)
	case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/result"):
		w.polls.Add(1)
		if w.finished.Load() {
			io.WriteString(rw, `{"id": "job-1", "status": "done"}`)
		} else {
			io.WriteString(rw, `{"id": "job-1", "status": "running"}`)
		}
	default:
		rw.WriteHeader(http.StatusNotFound)
	}
}

func startProxy(t *testing.T) (*fakeWorker, *Proxy, *httptest.Server) {
	t.Helper()
	w := &fakeWorker{}
	backend := httptest.NewServer(w)
	t.Cleanup(backend.Close)
	p, err := New(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p.Handler())
	t.Cleanup(front.Close)
	return w, p, front
}

func post(t *testing.T, url string) (*http.Response, error) {
	t.Helper()
	return http.Post(url+"/v1/shards", "application/json", strings.NewReader(`{}`))
}

func TestProxyPassesAndClassifies(t *testing.T) {
	w, _, front := startProxy(t)
	resp, err := post(t, front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch through proxy: HTTP %d", resp.StatusCode)
	}
	w.finished.Store(true)
	resp, err = http.Get(front.URL + "/v1/shards/job-1/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"done"`) {
		t.Fatalf("result through proxy: %s", body)
	}
}

func TestProxyDropNextAndSever(t *testing.T) {
	_, p, front := startProxy(t)
	p.DropNext(PointDispatch, 1)
	if _, err := post(t, front.URL); err == nil {
		t.Fatal("dropped dispatch still answered")
	}
	// The drop was one-shot.
	resp, err := post(t, front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	p.Sever()
	if _, err := post(t, front.URL); err == nil {
		t.Fatal("severed proxy still answered")
	}
	if _, err := http.Get(front.URL + "/v1/shards/job-1/result"); err == nil {
		t.Fatal("severed proxy still answered polls")
	}
	p.Restore()
	resp, err = post(t, front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestProxyDropsOnlyFinishedResults(t *testing.T) {
	w, p, front := startProxy(t)
	p.DropNext(PointResult, 1)
	// Running polls pass while the fault waits for the real result.
	resp, err := http.Get(front.URL + "/v1/shards/job-1/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	w.finished.Store(true)
	if _, err := http.Get(front.URL + "/v1/shards/job-1/result"); err == nil {
		t.Fatal("finished result was delivered through a pre-result drop")
	}
	// One-shot: the retry gets through.
	resp, err = http.Get(front.URL + "/v1/shards/job-1/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestProxyHoldAndAfterHooks(t *testing.T) {
	w, p, front := startProxy(t)
	w.finished.Store(true)

	fired := make(chan struct{})
	p.After(PointDispatch, func() { close(fired) })
	resp, err := post(t, front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-fired:
	default:
		t.Fatal("After(PointDispatch) hook did not fire before the response was readable")
	}

	release := p.Hold(PointResult)
	got := make(chan error, 1)
	go func() {
		resp, err := http.Get(front.URL + "/v1/shards/job-1/result")
		if err == nil {
			resp.Body.Close()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("held result delivered early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("released result errored: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("released result never delivered")
	}
	release() // idempotent
}
