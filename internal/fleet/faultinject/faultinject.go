// Package faultinject is an in-process fault-injection harness for
// fleet tests: a Proxy fronts one worker's HTTP endpoint and drops,
// holds, or severs traffic at scripted protocol points — pre-dispatch
// (the shard submission), mid-execute (immediately after a submission
// was accepted), and pre-result (the poll response that would deliver
// the finished partial). Scripts hook exact protocol moments instead of
// sleeping, so every coordinator re-dispatch path is exercised
// deterministically.
//
// Faults are connection-shaped, not HTTP-shaped: a dropped or severed
// request aborts the connection (the client sees EOF / connection
// reset), exactly what a crashed or partitioned worker looks like to a
// coordinator.
package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
)

// Point names a protocol moment the proxy can act at.
type Point string

// Scriptable protocol points.
const (
	// PointDispatch is a shard submission (POST /v1/shards) arriving at
	// the worker. Dropping here is a pre-dispatch fault: the worker
	// never hears of the shard.
	PointDispatch Point = "dispatch"
	// PointPoll is a result request (GET /v1/shards/<id>/result)
	// arriving at the worker, whatever its eventual answer.
	PointPoll Point = "poll"
	// PointResult is a poll response that carries the finished result
	// (status done or error). Dropping here is a pre-result fault: the
	// worker executed the shard, the coordinator never learns it.
	PointResult Point = "result"
)

// Proxy is an HTTP fault-injection proxy in front of one worker. Mount
// Handler (e.g. on an httptest.Server) and point the coordinator at it
// instead of the worker. All methods are safe for concurrent use with
// in-flight requests.
type Proxy struct {
	backend *url.URL
	client  *http.Client

	mu       sync.Mutex
	severed  bool
	dropNext map[Point]int
	holdCh   map[Point]chan struct{}
	after    map[Point][]func()
}

// New builds a proxy for the worker at backendURL.
func New(backendURL string) (*Proxy, error) {
	u, err := url.Parse(backendURL)
	if err != nil {
		return nil, err
	}
	return &Proxy{
		backend:  u,
		client:   &http.Client{},
		dropNext: map[Point]int{},
		holdCh:   map[Point]chan struct{}{},
		after:    map[Point][]func(){},
	}, nil
}

// Handler returns the proxying handler.
func (p *Proxy) Handler() http.Handler { return http.HandlerFunc(p.serve) }

// Sever simulates the worker's machine vanishing: every request — and
// every response still in flight through the proxy — aborts at the
// connection level from now on, until Restore.
func (p *Proxy) Sever() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severed = true
}

// Restore undoes Sever.
func (p *Proxy) Restore() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.severed = false
}

// DropNext aborts the next n requests (or, for PointResult, responses)
// classified at the point.
func (p *Proxy) DropNext(pt Point, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropNext[pt] += n
}

// Hold blocks traffic at the point until the returned release function
// is called (idempotent). Holding PointResult parks the response that
// would deliver the finished partial — the worker has executed, the
// coordinator hasn't heard — the window where late-duplicate discard
// and mid-execute death races live.
func (p *Proxy) Hold(pt Point) (release func()) {
	p.mu.Lock()
	ch := make(chan struct{})
	p.holdCh[pt] = ch
	p.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			if p.holdCh[pt] == ch {
				delete(p.holdCh, pt)
			}
			p.mu.Unlock()
			close(ch)
		})
	}
}

// After registers a one-shot hook that fires right after traffic passes
// the point — After(PointDispatch, ...) fires the moment a shard
// submission has been accepted and answered, i.e. the start of
// mid-execute. Hooks run synchronously on the request's goroutine, so a
// script can sever the proxy, stop heartbeats, and advance a fake clock
// at an exact protocol moment.
func (p *Proxy) After(pt Point, f func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.after[pt] = append(p.after[pt], f)
}

// act consults the script for the point; it reports whether to abort,
// after blocking on any hold. A held request whose client gives up
// (context canceled) aborts rather than pinning the server.
func (p *Proxy) act(ctx context.Context, pt Point) (abort bool) {
	p.mu.Lock()
	if p.severed {
		p.mu.Unlock()
		return true
	}
	if p.dropNext[pt] > 0 {
		p.dropNext[pt]--
		p.mu.Unlock()
		return true
	}
	hold := p.holdCh[pt]
	p.mu.Unlock()
	if hold != nil {
		select {
		case <-hold:
		case <-ctx.Done():
			return true
		}
		// The world may have changed while held (severed, new drops).
		return p.act(ctx, pt)
	}
	return false
}

// fireAfter runs and clears the point's one-shot hooks.
func (p *Proxy) fireAfter(pt Point) {
	p.mu.Lock()
	hooks := p.after[pt]
	delete(p.after, pt)
	p.mu.Unlock()
	for _, f := range hooks {
		f()
	}
}

func classify(r *http.Request) Point {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/shards" {
		return PointDispatch
	}
	if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/result") {
		return PointPoll
	}
	return ""
}

// finished reports whether a poll response body carries a terminal
// status — the payload a pre-result fault must intercept.
func finished(body []byte) bool {
	var res struct {
		Status string `json:"status"`
	}
	if json.Unmarshal(body, &res) != nil {
		return false
	}
	return res.Status == "done" || res.Status == "error"
}

func (p *Proxy) serve(rw http.ResponseWriter, r *http.Request) {
	pt := classify(r)
	if pt != "" && p.act(r.Context(), pt) {
		panic(http.ErrAbortHandler)
	}
	if pt == "" {
		p.mu.Lock()
		severed := p.severed
		p.mu.Unlock()
		if severed {
			panic(http.ErrAbortHandler)
		}
	}

	// Forward to the backend.
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	u := *p.backend
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), bytes.NewReader(body))
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		panic(http.ErrAbortHandler)
	}

	// Response-side points: a finished result about to be delivered.
	delivered := pt
	if pt == PointPoll && finished(respBody) {
		delivered = PointResult
		if p.act(r.Context(), PointResult) {
			panic(http.ErrAbortHandler)
		}
	}

	// A sever that landed while the backend worked aborts the delivery.
	p.mu.Lock()
	severed := p.severed
	p.mu.Unlock()
	if severed {
		panic(http.ErrAbortHandler)
	}

	if ct := resp.Header.Get("Content-Type"); ct != "" {
		rw.Header().Set("Content-Type", ct)
	}
	rw.WriteHeader(resp.StatusCode)
	_, _ = rw.Write(respBody)
	if delivered != "" {
		p.fireAfter(delivered)
	}
}
