package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	runjournal "github.com/quorumnet/quorumnet/internal/fleet/journal"
	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/scenario"
)

func formatTable(t *testing.T, table *scenario.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := table.Format(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// journaledRun executes one full journaled static fleet run and returns
// the journal path plus the merged reference bytes.
func journaledRun(t *testing.T, shards int) (string, []byte) {
	t.Helper()
	spec, cfg := testSpec(), testCfg()
	path := filepath.Join(t.TempDir(), "run.journal")
	jr, err := runjournal.Create(path, spec, cfg.Settings(), shards, runjournal.Options{Owner: "primary"})
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := startWorker(t), startWorker(t)
	coord, err := New(Config{Workers: []string{w1.URL, w2.URL}, Shards: shards, Journal: jr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	table, err := coord.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	return path, formatTable(t, table)
}

// resumeFrom loads a journal, continues it at the next epoch, and
// resumes the run on a fresh two-worker fleet, returning the merged
// bytes.
func resumeFrom(t *testing.T, path string) []byte {
	t.Helper()
	st, err := runjournal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := runjournal.Continue(path, st, runjournal.Options{Owner: "resumer"})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	w1, w2 := startWorker(t), startWorker(t)
	coord, err := New(Config{Workers: []string{w1.URL, w2.URL}, Shards: st.Shards, Journal: jr, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	table, err := coord.Resume(st.Spec, st.Config.RunConfig(), st.Completed)
	if err != nil {
		t.Fatal(err)
	}
	return formatTable(t, table)
}

// TestJournaledRunRecordsFullProtocol: an uninterrupted journaled run
// records header, dispatches, completes, and the merge, and its events
// carry epoch-1 attempt ids and worker addresses.
func TestJournaledRunRecordsFullProtocol(t *testing.T) {
	spec, cfg := testSpec(), testCfg()
	base, err := scenario.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseTx := formatTable(t, base)

	path := filepath.Join(t.TempDir(), "run.journal")
	jr, err := runjournal.Create(path, spec, cfg.Settings(), 3, runjournal.Options{Owner: "primary"})
	if err != nil {
		t.Fatal(err)
	}
	log := &eventLog{}
	w1, w2 := startWorker(t), startWorker(t)
	coord, err := New(Config{
		Workers: []string{w1.URL, w2.URL},
		Shards:  3,
		Journal: jr,
		Logf:    t.Logf,
		OnEvent: log.record,
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := coord.Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if got := formatTable(t, table); !bytes.Equal(got, baseTx) {
		t.Fatal("journaled run output differs from unsharded run")
	}

	st, err := runjournal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Merged || st.Torn || st.Epoch != 1 || len(st.Completed) != 3 {
		t.Fatalf("journal state %+v", st)
	}
	for _, ev := range log.all() {
		if ev.Shard < 0 {
			continue
		}
		if !strings.HasPrefix(ev.AttemptID, "e1-s") {
			t.Fatalf("event %+v lacks an epoch-1 attempt id", ev)
		}
		if ev.Worker == "" {
			t.Fatalf("event %+v lacks a worker", ev)
		}
	}
}

// TestResumeFromEveryRecordBoundary is the crash-at-every-protocol-point
// criterion: for each record-boundary prefix of a real run journal —
// i.e. the coordinator killed immediately after any journal append —
// a resume dispatches only the missing shards and merges to bytes
// identical to the uninterrupted run. Merge's exact point-cover check
// makes any duplicated shard row a hard failure, so byte identity also
// proves zero duplicate-shard rows.
func TestResumeFromEveryRecordBoundary(t *testing.T) {
	path, want := journaledRun(t, 3)
	records, torn, err := journal.ReadAll(path)
	if err != nil || torn {
		t.Fatalf("reference journal: torn=%v err=%v", torn, err)
	}
	if len(records) < 5 {
		t.Fatalf("reference journal has only %d records", len(records))
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[i] = byte length of the first i+1 records.
	var boundaries []int
	for off, b := range data {
		if b == '\n' {
			boundaries = append(boundaries, off+1)
		}
	}
	if len(boundaries) != len(records) {
		t.Fatalf("%d boundaries vs %d records", len(boundaries), len(records))
	}

	for i, end := range boundaries {
		// A journal cut before the header can't resume (and Create's
		// fsync makes that window vanishingly small); start at 1 record.
		prefix := filepath.Join(t.TempDir(), "crash.journal")
		if err := os.WriteFile(prefix, data[:end], 0o644); err != nil {
			t.Fatal(err)
		}
		got := resumeFrom(t, prefix)
		if !bytes.Equal(got, want) {
			t.Fatalf("resume from %d-record prefix: merged bytes differ from uninterrupted run", i+1)
		}
	}
}

// TestResumeFromTornFinalRecord: the journal's final record torn
// mid-line (the crash-during-append artifact) is discarded on load and
// the resumed run still merges byte-identical. Per-byte-offset
// equivalence of the recovered state is proven exhaustively in
// internal/fleet/journal; here representative offsets run the actual
// resume.
func TestResumeFromTornFinalRecord(t *testing.T) {
	path, want := journaledRun(t, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body := strings.TrimSuffix(string(data), "\n")
	cutAt := strings.LastIndexByte(body, '\n') + 1
	final := data[cutAt:]

	for _, cut := range []int{0, len(final) / 2, len(final) - 1} {
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, data[:cutAt+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := runjournal.Load(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if st.Torn != (cut > 0) {
			t.Fatalf("cut %d: torn=%v", cut, st.Torn)
		}
		if st.Merged {
			t.Fatalf("cut %d: truncated journal still reports merged", cut)
		}
		if got := resumeFrom(t, torn); !bytes.Equal(got, want) {
			t.Fatalf("resume from journal torn at offset %d diverges", cut)
		}
	}
}

// TestResumeRejectsForeignSpec: resuming with recorded partials under a
// different spec/config must fail loudly in the merge's identity
// checks, not silently mix studies. (The CLI additionally refuses on
// spec-hash mismatch before dispatching anything.)
func TestResumeRejectsForeignSpec(t *testing.T) {
	path, _ := journaledRun(t, 3)
	st, err := runjournal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w := startWorker(t)
	coord, err := New(Config{Workers: []string{w.URL}, Shards: st.Shards, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	cfg := st.Config.RunConfig()
	cfg.Seed = 12345 // a different run identity than the journal recorded
	if _, err := coord.Resume(st.Spec, cfg, st.Completed); err == nil {
		t.Fatal("resume under a different config merged recorded partials")
	}
}

// TestWeightedDispatchHonorsSlots: with a 3-slot and a 1-slot worker,
// sequential picks of pickWorker spread load by capacity — the big
// worker absorbs three dispatches for the small one's single.
func TestWeightedDispatchHonorsSlots(t *testing.T) {
	live := []WorkerRef{
		{ID: "big", Addr: "http://big", Slots: 3},
		{ID: "small", Addr: "http://small", Slots: 1},
	}
	load := map[string]int{}
	var picks []string
	for i := 0; i < 4; i++ {
		w, ok := pickWorker(live, nil, load)
		if !ok {
			t.Fatal("no worker picked")
		}
		picks = append(picks, w.ID)
		load[w.ID]++
	}
	if load["big"] != 3 || load["small"] != 1 {
		t.Fatalf("load split big=%d small=%d (picks %v), want 3/1", load["big"], load["small"], picks)
	}
	// Ties (both at zero load) break by registration order.
	if picks[0] != "big" {
		t.Fatalf("first pick %q, want registration-order tie-break to big", picks[0])
	}

	// An unadvertised worker weighs as one slot.
	legacy := []WorkerRef{{ID: "w", Addr: "http://w"}}
	if w, ok := pickWorker(legacy, nil, map[string]int{}); !ok || w.slots() != 1 {
		t.Fatalf("legacy worker slots %d, want 1", w.Slots)
	}
}

// TestResumeAlreadyMergedJournal: resuming a journal whose run already
// merged re-merges the recorded partials without any dispatch — the
// workers list can even be unreachable.
func TestResumeAlreadyMergedJournal(t *testing.T) {
	path, want := journaledRun(t, 3)
	st, err := runjournal.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Merged {
		t.Fatal("reference journal not merged")
	}
	coord, err := New(Config{Workers: []string{"http://127.0.0.1:1"}, Shards: st.Shards, ShardTimeout: time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	table, err := coord.Resume(st.Spec, st.Config.RunConfig(), st.Completed)
	if err != nil {
		t.Fatal(err)
	}
	if got := formatTable(t, table); !bytes.Equal(got, want) {
		t.Fatal("re-merge of a completed journal diverges")
	}
}
