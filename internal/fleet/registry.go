package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrUnknownWorker is returned for heartbeats from ids the registry no
// longer tracks — expired leases included. The lease reacts by
// re-registering, so a worker that was declared dead while partitioned
// from the coordinator rejoins under a fresh id (and a fresh exclusion
// slate) instead of resurrecting its old one.
var ErrUnknownWorker = fmt.Errorf("fleet: unknown worker")

// RegistryOptions tunes worker liveness tracking.
type RegistryOptions struct {
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 1s). Registration replies carry it, so workers need no
	// matching configuration.
	HeartbeatInterval time.Duration
	// MissedHeartbeats is how many intervals may pass without a beat
	// before a worker is declared dead (default 2). Death is what
	// triggers mid-job shard re-dispatch, so this — not ShardTimeout —
	// bounds how long a crashed worker stalls its shards.
	MissedHeartbeats int
	// Logf, when set, receives registration and expiry logs.
	Logf func(format string, args ...interface{})
	// Now overrides the clock (fault-injection tests drive liveness by
	// advancing a fake clock and calling ExpireNow — no sleeping).
	Now func() time.Time
}

func (o RegistryOptions) interval() time.Duration {
	if o.HeartbeatInterval <= 0 {
		return time.Second
	}
	return o.HeartbeatInterval
}

func (o RegistryOptions) missed() int {
	if o.MissedHeartbeats <= 0 {
		return 2
	}
	return o.MissedHeartbeats
}

// WorkerRef identifies one registered worker.
type WorkerRef struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Slots is the worker's advertised concurrent-shard capacity;
	// dispatch weights load by it so a 4-slot worker draws four times
	// the shards of a 1-slot one.
	Slots int `json:"slots,omitempty"`
	// Cores is the worker's advertised CPU count (informational).
	Cores int `json:"cores,omitempty"`
}

// slots treats unadvertised capacity as 1 — the pre-capacity protocol's
// behavior, and the right weight for a WorkerRef built by hand.
func (w WorkerRef) slots() int {
	if w.Slots <= 0 {
		return 1
	}
	return w.Slots
}

type regWorker struct {
	ref      WorkerRef
	seq      uint64
	lastBeat time.Time
	dead     bool
}

// Registry tracks the fleet's workers by self-registration and
// heartbeat: workers join with POST /v1/workers, beat with
// POST /v1/workers/<id>/heartbeat, and are declared dead after
// MissedHeartbeats silent intervals. The coordinator dispatches over
// Live() and watches Changed() to react to joins and deaths the moment
// they are recorded.
type Registry struct {
	opts RegistryOptions

	mu      sync.Mutex
	seq     uint64
	workers map[string]*regWorker
	changed chan struct{}
}

// NewRegistry builds a registry.
func NewRegistry(opts RegistryOptions) *Registry {
	return &Registry{
		opts:    opts,
		workers: map[string]*regWorker{},
		changed: make(chan struct{}),
	}
}

func (r *Registry) logf(format string, args ...interface{}) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

func (r *Registry) now() time.Time {
	if r.opts.Now != nil {
		return r.opts.Now()
	}
	return time.Now()
}

// HeartbeatInterval is the advertised beat cadence.
func (r *Registry) HeartbeatInterval() time.Duration { return r.opts.interval() }

// broadcastLocked wakes every Changed waiter. Callers hold r.mu.
func (r *Registry) broadcastLocked() {
	close(r.changed)
	r.changed = make(chan struct{})
}

// Changed returns a channel closed at the next membership or liveness
// change. Take the channel before reading Live() so a change between
// the two wakes the select immediately.
func (r *Registry) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.changed
}

// Register adds a worker and returns its reference (the address is
// normalized to a dispatchable http:// URL). Slots is the worker's
// advertised concurrent-shard capacity (<= 0 means 1); cores its CPU
// count (0 = unadvertised). A dead entry at the same address is
// dropped — the worker restarted (or its lease lapsed and
// re-registered); either way the old id never comes back.
func (r *Registry) Register(addr string, slots, cores int) WorkerRef {
	addr = normalizeAddr(addr)
	if slots <= 0 {
		slots = 1
	}
	if cores < 0 {
		cores = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, w := range r.workers {
		if w.dead && w.ref.Addr == addr {
			delete(r.workers, id)
		}
	}
	r.seq++
	w := &regWorker{
		ref:      WorkerRef{ID: fmt.Sprintf("w-%d", r.seq), Addr: addr, Slots: slots, Cores: cores},
		seq:      r.seq,
		lastBeat: r.now(),
	}
	r.workers[w.ref.ID] = w
	r.logf("fleet registry: %s registered at %s (%d slots)", w.ref.ID, addr, slots)
	r.broadcastLocked()
	return w.ref
}

// Heartbeat records a beat. Unknown and expired ids get
// ErrUnknownWorker, telling the lease to re-register.
func (r *Registry) Heartbeat(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[id]
	if w == nil || w.dead {
		return fmt.Errorf("%w %q", ErrUnknownWorker, id)
	}
	w.lastBeat = r.now()
	return nil
}

// expireLocked marks workers silent past the liveness window dead and
// reports the newly dead. Callers hold r.mu.
func (r *Registry) expireLocked(now time.Time) []WorkerRef {
	window := time.Duration(r.opts.missed()) * r.opts.interval()
	var dead []WorkerRef
	for _, w := range r.workers {
		if !w.dead && now.Sub(w.lastBeat) >= window {
			w.dead = true
			dead = append(dead, w.ref)
		}
	}
	if len(dead) > 0 {
		sort.Slice(dead, func(a, b int) bool { return dead[a].ID < dead[b].ID })
		for _, ref := range dead {
			r.logf("fleet registry: %s (%s) missed %d heartbeats, declared dead",
				ref.ID, ref.Addr, r.opts.missed())
		}
		r.broadcastLocked()
	}
	return dead
}

// ExpireNow evaluates liveness against the current clock, returning the
// newly dead workers. The coordinator calls it on a tick; tests call it
// after advancing a fake clock.
func (r *Registry) ExpireNow() []WorkerRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expireLocked(r.now())
}

// Live returns the live workers in registration order (expiring the
// silent ones first).
func (r *Registry) Live() []WorkerRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(r.now())
	var live []*regWorker
	for _, w := range r.workers {
		if !w.dead {
			live = append(live, w)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].seq < live[b].seq })
	out := make([]WorkerRef, len(live))
	for i, w := range live {
		out[i] = w.ref
	}
	return out
}

// Counts returns the live and dead worker counts.
func (r *Registry) Counts() (live, dead int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(r.now())
	for _, w := range r.workers {
		if w.dead {
			dead++
		} else {
			live++
		}
	}
	return live, dead
}

// RegisterRequest is the POST /v1/workers payload.
type RegisterRequest struct {
	// Addr is the address the coordinator should dispatch to
	// ("host:port" or a full http:// URL).
	Addr string `json:"addr"`
	// Slots advertises how many shards the worker runs concurrently
	// (omitted or <= 0 means 1). Dispatch weights load by it.
	Slots int `json:"slots,omitempty"`
	// Cores advertises the worker's CPU count (informational).
	Cores int `json:"cores,omitempty"`
}

// RegisterResponse is the POST /v1/workers reply: the assigned id and
// the heartbeat contract.
type RegisterResponse struct {
	ID          string `json:"id"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	// Missed is how many silent intervals cost the lease.
	Missed int `json:"missed"`
}

// WorkerInfo is one GET /v1/workers list element.
type WorkerInfo struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Slots int    `json:"slots,omitempty"`
	Cores int    `json:"cores,omitempty"`
}

// Handler returns the registry's HTTP routes:
//
//	POST /v1/workers                — {"addr": ...} self-registration,
//	                                  returns the id and heartbeat cadence
//	POST /v1/workers/<id>/heartbeat — liveness beat (404 after expiry:
//	                                  the lease re-registers)
//	GET  /v1/workers                — live/dead roster
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workers", r.handleWorkers)
	mux.HandleFunc("/v1/workers/", r.handleHeartbeat)
	return mux
}

func (r *Registry) handleWorkers(rw http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(rw, req.Body, 1<<20))
		dec.DisallowUnknownFields()
		var reg RegisterRequest
		if err := dec.Decode(&reg); err != nil {
			httpError(rw, http.StatusBadRequest, "decoding registration: "+err.Error())
			return
		}
		if strings.TrimSpace(reg.Addr) == "" {
			httpError(rw, http.StatusBadRequest, "registration has no addr")
			return
		}
		ref := r.Register(strings.TrimSpace(reg.Addr), reg.Slots, reg.Cores)
		writeJSON(rw, http.StatusCreated, &RegisterResponse{
			ID:          ref.ID,
			HeartbeatMS: r.opts.interval().Milliseconds(),
			Missed:      r.opts.missed(),
		})
	case http.MethodGet:
		r.mu.Lock()
		r.expireLocked(r.now())
		infos := make([]WorkerInfo, 0, len(r.workers))
		order := make([]*regWorker, 0, len(r.workers))
		for _, w := range r.workers {
			order = append(order, w)
		}
		sort.Slice(order, func(a, b int) bool { return order[a].seq < order[b].seq })
		for _, w := range order {
			infos = append(infos, WorkerInfo{
				ID:    w.ref.ID,
				Addr:  w.ref.Addr,
				Alive: !w.dead,
				Slots: w.ref.Slots,
				Cores: w.ref.Cores,
			})
		}
		r.mu.Unlock()
		writeJSON(rw, http.StatusOK, map[string]interface{}{"workers": infos})
	default:
		httpError(rw, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (r *Registry) handleHeartbeat(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(rw, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/v1/workers/")
	id, ok := strings.CutSuffix(rest, "/heartbeat")
	if !ok || id == "" || strings.Contains(id, "/") {
		httpError(rw, http.StatusNotFound, "want /v1/workers/<id>/heartbeat")
		return
	}
	if err := r.Heartbeat(id); err != nil {
		httpError(rw, http.StatusNotFound, err.Error())
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}
