// Package fleet distributes scenario execution across worker processes:
// a Coordinator partitions a spec's point-space into shards, dispatches
// them to Workers over HTTP, retries failures on other workers, and
// merges the returned partials into output byte-identical to an
// unsharded run. Workers are addressed either by a static list or —
// elastic mode — through a Registry they self-register with and
// heartbeat; a worker that misses heartbeats while holding a shard has
// that shard re-dispatched immediately (the dead worker excluded),
// and late duplicate results are discarded by shard-attempt id.
//
// The protocol reuses the serving layer's idioms (strict JSON, long
// polls, {"error": ...} bodies). Worker side:
//
//	POST /v1/shards              — {"spec": ..., "config": ..., "shard":
//	                               i, "shards": n} enqueues one shard
//	                               job and returns {"id": ...}.
//	GET  /v1/shards              — lists jobs (id, label, status).
//	GET  /v1/shards/<id>/result  — long-polls (?timeout, capped by the
//	                               worker's MaxWait) until the job
//	                               finishes; replies {"status":
//	                               "running"} on timeout so the caller
//	                               polls again, else the partial or the
//	                               execution error.
//
// Registry side (mounted next to the coordinator; workers drive it
// through a Lease):
//
//	POST /v1/workers                — {"addr": ...} self-registration,
//	                                  returns the id and heartbeat
//	                                  cadence the lease must honor.
//	POST /v1/workers/<id>/heartbeat — liveness beat; 404 after expiry
//	                                  makes the lease re-register.
//	GET  /v1/workers                — the live/dead roster.
//
// Workers are stateless beyond their in-flight jobs: every shard request
// carries the full spec and run settings, and the worker re-enumerates
// the point-space locally (the enumeration is deterministic), so any
// worker can execute any shard — the property retries and mid-job
// re-dispatch rely on.
package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/quorumnet/quorumnet/internal/scenario"
)

// RunSettings is the serializable identity of a scenario.RunConfig —
// the execution settings a coordinator ships with every shard (and the
// fingerprint stamped into every Partial).
type RunSettings = scenario.Settings

// Settings extracts the wire settings from a run configuration
// (Progress handlers stay local to each process).
func Settings(cfg scenario.RunConfig) RunSettings { return cfg.Settings() }

// ShardRequest is the POST /v1/shards payload.
type ShardRequest struct {
	Spec   *scenario.Spec `json:"spec"`
	Config RunSettings    `json:"config"`
	Shard  int            `json:"shard"`
	Shards int            `json:"shards"`
}

// ShardResponse is the POST /v1/shards reply.
type ShardResponse struct {
	ID string `json:"id"`
}

// Job statuses reported by the result and list endpoints.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusError   = "error"
)

// ResultResponse is the GET /v1/shards/<id>/result payload.
type ResultResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Partial is set when Status is "done".
	Partial *scenario.Partial `json:"partial,omitempty"`
	// Error is set when Status is "error".
	Error string `json:"error,omitempty"`
}

// JobInfo is one GET /v1/shards list element.
type JobInfo struct {
	ID     string `json:"id"`
	Label  string `json:"label"`
	Status string `json:"status"`
}

// WorkerOptions tunes a Worker.
type WorkerOptions struct {
	// MaxWait caps a result long-poll's ?timeout (default 30s).
	MaxWait time.Duration
	// Jobs bounds concurrently executing shard jobs (default 1: the
	// engine already fans one job's points across the process's worker
	// pool, so stacking jobs just multiplies live LP workspaces).
	Jobs int
	// MaxJobs bounds the jobs retained at once — queued, running, and
	// finished-but-unfetched (default 64). Submissions beyond it get
	// 503 until slots free up, so abandoned coordinators cannot grow
	// the worker without bound.
	MaxJobs int
	// Retention is how long a finished job waits to be fetched before
	// eviction (default 15m). Delivered jobs are evicted immediately; a
	// coordinator that comes back later re-dispatches the shard.
	Retention time.Duration
	// Logf, when set, receives job lifecycle and progress logs.
	Logf func(format string, args ...interface{})
}

func (o WorkerOptions) maxWait() time.Duration {
	if o.MaxWait <= 0 {
		return 30 * time.Second
	}
	return o.MaxWait
}

func (o WorkerOptions) jobs() int {
	if o.Jobs <= 0 {
		return 1
	}
	return o.Jobs
}

func (o WorkerOptions) maxJobs() int {
	if o.MaxJobs <= 0 {
		return 64
	}
	return o.MaxJobs
}

func (o WorkerOptions) retention() time.Duration {
	if o.Retention <= 0 {
		return 15 * time.Minute
	}
	return o.Retention
}

// Worker executes shard jobs for coordinators. Mount Handler on an HTTP
// server; jobs queue on a bounded executor and results are collected
// with long polls.
type Worker struct {
	opts WorkerOptions
	sem  chan struct{}

	mu   sync.Mutex
	seq  uint64
	jobs map[string]*job
}

type job struct {
	id      string
	label   string
	done    chan struct{} // closed when the job finishes
	doneAt  time.Time     // zero while running; set before done closes
	partial *scenario.Partial
	errMsg  string
}

// sweepLocked evicts finished jobs nobody fetched within the retention
// window. Callers hold w.mu.
func (w *Worker) sweepLocked(now time.Time) {
	for id, j := range w.jobs {
		if !j.doneAt.IsZero() && now.Sub(j.doneAt) > w.opts.retention() {
			delete(w.jobs, id)
			w.logf("fleet worker: %s (%s) evicted unfetched after %s", j.id, j.label, w.opts.retention())
		}
	}
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) *Worker {
	return &Worker{
		opts: opts,
		sem:  make(chan struct{}, opts.jobs()),
		jobs: map[string]*job{},
	}
}

// Handler returns the worker's HTTP routes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/shards", w.handleShards)
	mux.HandleFunc("/v1/shards/", w.handleResult)
	return mux
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

func (w *Worker) handleShards(rw http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		w.handleSubmit(rw, r)
	case http.MethodGet:
		w.handleList(rw)
	default:
		httpError(rw, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (w *Worker) handleSubmit(rw http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	var req ShardRequest
	if err := dec.Decode(&req); err != nil {
		httpError(rw, http.StatusBadRequest, "decoding shard request: "+err.Error())
		return
	}
	if req.Spec == nil {
		httpError(rw, http.StatusBadRequest, "shard request has no spec")
		return
	}
	// Validate what is cheap to validate before accepting the job; the
	// topology build and enumeration happen on the executor.
	if err := req.Spec.Validate(); err != nil {
		httpError(rw, http.StatusBadRequest, err.Error())
		return
	}
	if req.Shards <= 0 || req.Shard < 0 || req.Shard >= req.Shards {
		httpError(rw, http.StatusBadRequest,
			fmt.Sprintf("shard %d outside [0, %d)", req.Shard, req.Shards))
		return
	}

	w.mu.Lock()
	w.sweepLocked(time.Now())
	if len(w.jobs) >= w.opts.maxJobs() {
		w.mu.Unlock()
		httpError(rw, http.StatusServiceUnavailable,
			fmt.Sprintf("worker holds %d jobs; retry later", w.opts.maxJobs()))
		return
	}
	w.seq++
	j := &job{
		id:    fmt.Sprintf("job-%d", w.seq),
		label: fmt.Sprintf("%s shard %d/%d", req.Spec.Name, req.Shard, req.Shards),
		done:  make(chan struct{}),
	}
	w.jobs[j.id] = j
	w.mu.Unlock()

	go w.execute(j, &req)
	writeJSON(rw, http.StatusAccepted, &ShardResponse{ID: j.id})
}

func (w *Worker) execute(j *job, req *ShardRequest) {
	w.sem <- struct{}{}
	defer func() { <-w.sem }()
	w.logf("fleet worker: %s (%s) started", j.id, j.label)
	start := time.Now()

	cfg := req.Config.RunConfig()
	cfg.Progress = func(ev scenario.Progress) {
		w.logf("fleet worker: %s point %d/%d done (%s, %.1fs)",
			j.id, ev.Done, ev.Total, ev.Point.Label, ev.Elapsed.Seconds())
	}
	partial, err := executeShard(req.Spec, cfg, req.Shard, req.Shards)

	w.mu.Lock()
	if err != nil {
		j.errMsg = err.Error()
	} else {
		j.partial = partial
	}
	j.doneAt = time.Now()
	w.mu.Unlock()
	close(j.done)
	if err != nil {
		w.logf("fleet worker: %s failed after %.1fs: %v", j.id, time.Since(start).Seconds(), err)
	} else {
		w.logf("fleet worker: %s done in %.1fs (%d rows)", j.id, time.Since(start).Seconds(), len(partial.Table.Rows))
	}
}

// executeShard enumerates the spec's point-space and executes one shard
// of it — the whole worker-side execution path.
func executeShard(spec *scenario.Spec, cfg scenario.RunConfig, shard, shards int) (*scenario.Partial, error) {
	space, err := scenario.NewSpace(spec, cfg)
	if err != nil {
		return nil, err
	}
	part, err := space.Shard(shard, shards)
	if err != nil {
		return nil, err
	}
	return part.Execute()
}

func (w *Worker) handleList(rw http.ResponseWriter) {
	w.mu.Lock()
	w.sweepLocked(time.Now())
	out := make([]JobInfo, 0, len(w.jobs))
	for _, j := range w.jobs {
		info := JobInfo{ID: j.id, Label: j.label, Status: StatusRunning}
		select {
		case <-j.done:
			if j.errMsg != "" {
				info.Status = StatusError
			} else {
				info.Status = StatusDone
			}
		default:
		}
		out = append(out, info)
	}
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, map[string]interface{}{"jobs": out})
}

func (w *Worker) handleResult(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(rw, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/shards/")
	id, ok := strings.CutSuffix(rest, "/result")
	if !ok || id == "" || strings.Contains(id, "/") {
		httpError(rw, http.StatusNotFound, "want /v1/shards/<id>/result")
		return
	}
	w.mu.Lock()
	w.sweepLocked(time.Now())
	j := w.jobs[id]
	w.mu.Unlock()
	if j == nil {
		httpError(rw, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}

	timeout := w.opts.maxWait()
	if tstr := r.URL.Query().Get("timeout"); tstr != "" {
		d, err := time.ParseDuration(tstr)
		if err != nil || d <= 0 {
			httpError(rw, http.StatusBadRequest, fmt.Sprintf("invalid timeout %q", tstr))
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-j.done:
	case <-timer.C:
		writeJSON(rw, http.StatusOK, &ResultResponse{ID: j.id, Status: StatusRunning})
		return
	case <-r.Context().Done():
		return
	}

	w.mu.Lock()
	resp := &ResultResponse{ID: j.id, Status: StatusDone, Partial: j.partial}
	if j.errMsg != "" {
		resp = &ResultResponse{ID: j.id, Status: StatusError, Error: j.errMsg}
	}
	// The job is delivered exactly once: evict it so a long-lived worker
	// does not retain every completed partial. A coordinator that loses
	// this response re-dispatches the shard (any worker can run any
	// shard), so nothing is owed to later readers.
	delete(w.jobs, id)
	w.mu.Unlock()
	writeJSON(rw, http.StatusOK, resp)
}

func writeJSON(rw http.ResponseWriter, status int, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(rw http.ResponseWriter, status int, msg string) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": msg})
}
