package faults

import (
	"errors"
	"math"
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// unreplannedEval builds a 3×3 grid one-to-one placed on the first nine
// sites of a small synthetic WAN.
func unreplannedEval(t *testing.T, alpha float64) *core.Eval {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "unreplanned-test",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
		},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := quorum.NewGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]int, sys.UniverseSize())
	for u := range targets {
		targets[u] = u
	}
	f, err := core.NewPlacement(targets, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestUnreplannedPassThrough: structural strategies (closest, balanced)
// adapt to the survivor system by definition, so Unreplanned must agree
// with a plain Apply.
func TestUnreplannedPassThrough(t *testing.T) {
	e := unreplannedEval(t, 0)
	fe, s, err := Unreplanned(e, core.BalancedStrategy{}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(core.BalancedStrategy); !ok {
		t.Fatalf("balanced strategy was rewritten to %T", s)
	}
	ref, err := Apply(e, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	got := fe.AvgResponseTime(s)
	want := ref.AvgResponseTime(core.BalancedStrategy{})
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("unreplanned balanced response %v != apply %v", got, want)
	}
}

// TestUnreplannedExplicitRenormalizes: an LP strategy projected onto the
// survivors must still be a distribution for every surviving client, and
// its response time must be at least the re-optimized survivor LP's (the
// un-replanned deployment can never beat a re-plan).
func TestUnreplannedExplicitRenormalizes(t *testing.T) {
	e := unreplannedEval(t, core.AlphaForDemand(8000))
	caps := make([]float64, e.Topo.Size())
	for i := range caps {
		caps[i] = 1
	}
	res, err := strategy.Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}

	failed := []int{0, 4}
	fe, s, err := Unreplanned(e, res.Strategy, failed)
	if err != nil {
		t.Fatal(err)
	}
	es, ok := s.(*core.ExplicitStrategy)
	if !ok {
		t.Fatalf("explicit strategy came back as %T", s)
	}
	if err := es.Validate(fe); err != nil {
		t.Fatalf("projected strategy invalid: %v", err)
	}
	unreplanned := fe.AvgResponseTime(es)

	// Re-optimized survivor strategy (the "re-planned" counterpart at a
	// fixed surviving placement).
	replanRes, err := strategy.Optimize(fe, caps)
	if err != nil {
		t.Fatal(err)
	}
	replanned := fe.AvgNetworkDelay(replanRes.Strategy)
	if fe.AvgNetworkDelay(es) < replanned-1e-9 {
		t.Fatalf("un-replanned net delay %v beats the re-optimized LP %v", fe.AvgNetworkDelay(es), replanned)
	}
	if unreplanned <= 0 {
		t.Fatalf("implausible un-replanned response %v", unreplanned)
	}
}

// TestUnreplannedNoQuorum: a failure that kills every quorum surfaces
// ErrNoQuorumSurvives.
func TestUnreplannedNoQuorum(t *testing.T) {
	e := unreplannedEval(t, 0)
	all := make([]int, 9)
	for i := range all {
		all[i] = i
	}
	if _, _, err := Unreplanned(e, core.ClosestStrategy{}, all); !errors.Is(err, quorum.ErrNoQuorumSurvives) {
		t.Fatalf("err = %v, want ErrNoQuorumSurvives", err)
	}
}

// TestUnreplannedPreservesWeights: surviving clients keep their relative
// demand weights.
func TestUnreplannedPreservesWeights(t *testing.T) {
	e := unreplannedEval(t, 0)
	w := make([]float64, e.Topo.Size())
	for i := range w {
		w[i] = 1
	}
	w[1] = 10 // client 1 dominates
	if err := e.SetClientWeights(w); err != nil {
		t.Fatal(err)
	}
	fe, _, err := Unreplanned(e, core.ClosestStrategy{}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Client 1 survived; its share must stay 10× any unit client's.
	ratio := fe.ClientWeight(1) / fe.ClientWeight(2)
	if math.Abs(ratio-10) > 1e-9 {
		t.Fatalf("weight ratio %v, want 10", ratio)
	}
}
