// Package faults evaluates quorum deployments under node failures,
// quantifying the fault-tolerance argument of §6: the paper accepts a
// response-time cost for one-to-one placements precisely because quorum
// systems stay available when nodes fail, unlike the singleton baseline.
// The paper defers failure studies to future work ("ours is limited in
// considering only 'normal' conditions"); this package provides the
// machinery as an extension: response-time evaluation on the surviving
// system and availability estimation under independent node failures.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Apply restricts an evaluation to the survivors of the given node
// failures: universe elements placed on failed nodes die, the quorum
// system is restricted to quorums of surviving elements, and failed nodes
// leave the client set. It returns quorum.ErrNoQuorumSurvives (wrapped)
// when the failure makes the service unavailable.
func Apply(e *core.Eval, failedNodes []int) (*core.Eval, error) {
	failed := make([]bool, e.Topo.Size())
	for _, w := range failedNodes {
		if w < 0 || w >= e.Topo.Size() {
			return nil, fmt.Errorf("faults: node %d out of range [0,%d)", w, e.Topo.Size())
		}
		failed[w] = true
	}

	var dead []int
	for u := 0; u < e.F.UniverseSize(); u++ {
		if failed[e.F.Node(u)] {
			dead = append(dead, u)
		}
	}
	sv, err := quorum.Survive(e.Sys, dead)
	if err != nil {
		return nil, err
	}

	targets := make([]int, len(sv.AliveIndex))
	for i, orig := range sv.AliveIndex {
		targets[i] = e.F.Node(orig)
	}
	f, err := core.NewPlacement(targets, e.Topo)
	if err != nil {
		return nil, err
	}

	out, err := core.NewEval(e.Topo, sv.Sub, f, e.Alpha)
	if err != nil {
		return nil, err
	}
	out.Mode = e.Mode
	var clients []int
	for _, v := range e.Clients {
		if !failed[v] {
			clients = append(clients, v)
		}
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("faults: every client node failed")
	}
	if err := out.SetClients(clients); err != nil {
		return nil, err
	}
	return out, nil
}

// Slowdown models degraded (rather than crashed) nodes: every path to or
// from a slowed node has its delay multiplied by factor (> 1). The
// returned evaluation uses a fresh topology whose metric is re-closed, so
// traffic may route around the slow nodes, and shares the original's
// system, placement, alpha, load mode, and clients.
func Slowdown(e *core.Eval, slowNodes []int, factor float64) (*core.Eval, error) {
	if factor < 1 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("faults: slowdown factor %v must be >= 1", factor)
	}
	slow := make([]bool, e.Topo.Size())
	for _, w := range slowNodes {
		if w < 0 || w >= e.Topo.Size() {
			return nil, fmt.Errorf("faults: node %d out of range [0,%d)", w, e.Topo.Size())
		}
		slow[w] = true
	}

	n := e.Topo.Size()
	m := graph.NewMatrix(n)
	sites := make([]topology.Site, n)
	for i := 0; i < n; i++ {
		sites[i] = e.Topo.Site(i)
		for j := i + 1; j < n; j++ {
			d := e.Topo.RTT(i, j)
			if slow[i] || slow[j] {
				d *= factor
			}
			m.Set(i, j, d)
		}
	}
	m.MetricClosure()
	topo, err := topology.New(e.Topo.Name()+"-degraded", sites, m)
	if err != nil {
		return nil, err
	}
	for w := 0; w < n; w++ {
		if err := topo.SetCapacity(w, e.Topo.Capacity(w)); err != nil {
			return nil, err
		}
	}

	f, err := core.NewPlacement(e.F.Targets(), topo)
	if err != nil {
		return nil, err
	}
	out, err := core.NewEval(topo, e.Sys, f, e.Alpha)
	if err != nil {
		return nil, err
	}
	out.Mode = e.Mode
	if err := out.SetClients(e.Clients); err != nil {
		return nil, err
	}
	return out, nil
}

// SurvivesElementFailure reports whether some quorum avoids all dead
// elements, without constructing the survivor system (cheap enough for
// Monte Carlo loops).
func SurvivesElementFailure(s quorum.System, dead []bool) bool {
	if t, ok := s.(quorum.Threshold); ok {
		alive := 0
		for u := 0; u < t.UniverseSize(); u++ {
			if !dead[u] {
				alive++
			}
		}
		return alive >= t.QuorumSize()
	}
	if g, ok := s.(quorum.Grid); ok {
		k := g.Dim()
		rowDead := make([]bool, k)
		colDead := make([]bool, k)
		for u := 0; u < k*k; u++ {
			if dead[u] {
				rowDead[u/k] = true
				colDead[u%k] = true
			}
		}
		rowAlive, colAlive := false, false
		for i := 0; i < k; i++ {
			if !rowDead[i] {
				rowAlive = true
			}
			if !colDead[i] {
				colAlive = true
			}
		}
		return rowAlive && colAlive
	}
	if !s.Enumerable() {
		return false
	}
	for i := 0; i < s.NumQuorums(); i++ {
		ok := true
		for _, u := range s.Quorum(i) {
			if dead[u] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Availability estimates, by Monte Carlo with the given seed, the
// probability that some quorum survives when every node fails
// independently with probability pFail. Elements die with the node
// hosting them, so many-to-one placements correctly share fate.
func Availability(e *core.Eval, pFail float64, trials int, seed int64) (float64, error) {
	if pFail < 0 || pFail > 1 || math.IsNaN(pFail) {
		return 0, fmt.Errorf("faults: failure probability %v out of [0,1]", pFail)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("faults: non-positive trial count %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	support := e.F.Support()
	dead := make([]bool, e.Sys.UniverseSize())
	up := 0
	for trial := 0; trial < trials; trial++ {
		for u := range dead {
			dead[u] = false
		}
		for _, w := range support {
			if rng.Float64() < pFail {
				for _, u := range e.F.ElementsOn(w) {
					dead[u] = true
				}
			}
		}
		if SurvivesElementFailure(e.Sys, dead) {
			up++
		}
	}
	return float64(up) / float64(trials), nil
}

// ThresholdAvailabilityExact computes the survival probability of a
// one-to-one placed threshold system under independent node failures:
// P(Binomial(n, 1−p) ≥ q).
func ThresholdAvailabilityExact(q, n int, pFail float64) (float64, error) {
	if q <= 0 || q > n {
		return 0, fmt.Errorf("faults: invalid threshold (%d,%d)", q, n)
	}
	if pFail < 0 || pFail > 1 || math.IsNaN(pFail) {
		return 0, fmt.Errorf("faults: failure probability %v out of [0,1]", pFail)
	}
	switch pFail {
	case 0:
		return 1, nil
	case 1:
		return 0, nil
	}
	// Sum P(alive = k) for k = q..n with a stable multiplicative update.
	pAlive := 1 - pFail
	total := 0.0
	// P(alive = k) = C(n,k) pAlive^k pFail^(n-k); iterate from k = n down.
	logP := float64(n) * math.Log(pAlive+1e-300)
	prob := math.Exp(logP) // P(alive = n)
	for k := n; k >= q; k-- {
		total += prob
		// Move to k-1: multiply by C(n,k-1)/C(n,k) · pFail/pAlive
		//            = k/(n-k+1) · pFail/pAlive.
		if k > 0 {
			prob *= float64(k) / float64(n-k+1) * (pFail / pAlive)
		}
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// WorstCaseFailure returns the f support nodes whose failure maximizes
// damage under a greedy criterion: repeatedly fail the node hosting the
// most still-alive elements (ties toward the node closest to the
// clients, which hurts the closest strategy most). It is a deterministic
// adversary for response-time-under-failure experiments.
func WorstCaseFailure(e *core.Eval, f int) []int {
	type cand struct {
		node   int
		elems  int
		avgRTT float64
	}
	support := e.F.Support()
	var cands []cand
	for _, w := range support {
		s := 0.0
		for _, v := range e.Clients {
			s += e.Topo.RTT(v, w)
		}
		cands = append(cands, cand{
			node:   w,
			elems:  len(e.F.ElementsOn(w)),
			avgRTT: s / float64(len(e.Clients)),
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].elems != cands[b].elems {
			return cands[a].elems > cands[b].elems
		}
		if cands[a].avgRTT != cands[b].avgRTT {
			return cands[a].avgRTT < cands[b].avgRTT
		}
		return cands[a].node < cands[b].node
	})
	if f > len(cands) {
		f = len(cands)
	}
	out := make([]int, f)
	for i := 0; i < f; i++ {
		out[i] = cands[i].node
	}
	sort.Ints(out)
	return out
}
