package faults

import (
	"fmt"
	"sort"

	"github.com/quorumnet/quorumnet/internal/core"
)

// Unreplanned evaluates a deployment that does NOT re-plan around a node
// failure: the placement stays where it was (elements on failed nodes
// simply die), and each surviving client keeps its access strategy,
// renormalized over the quorums that survive. This is the counterfactual
// the planner-level fault comparison reports: the response time a
// deployment pays for keeping its pre-failure plan, side by side with
// the re-planned one.
//
// The closest and balanced strategies adapt to the survivor system by
// definition and pass through unchanged; an explicit (LP-optimized)
// strategy is projected: each client's probability mass on dead quorums
// is redistributed proportionally over its surviving quorums, and a
// client whose entire mass died falls back to the balanced strategy over
// the survivors. Client demand weights carry over to the surviving
// clients. Returns quorum.ErrNoQuorumSurvives (wrapped) when the failure
// kills every quorum.
func Unreplanned(e *core.Eval, s core.Strategy, failedNodes []int) (*core.Eval, core.Strategy, error) {
	fe, err := Apply(e, failedNodes)
	if err != nil {
		return nil, nil, err
	}

	// Carry the surviving clients' demand weights over (Apply resets the
	// client set, which drops positional weights).
	w := make([]float64, len(fe.Clients))
	for k, v := range fe.Clients {
		w[k] = e.ClientWeight(v)
	}
	if err := fe.SetClientWeights(w); err != nil {
		return nil, nil, err
	}

	es, ok := s.(*core.ExplicitStrategy)
	if !ok {
		return fe, s, nil
	}
	rs, err := restrictExplicit(e, es, fe, failedNodes)
	if err != nil {
		return nil, nil, err
	}
	return fe, rs, nil
}

// restrictExplicit projects an explicit strategy from e onto the
// survivor evaluation fe. Quorums are matched by element identity (the
// survivor system re-indexes its universe), so the projection is
// independent of enumeration order.
func restrictExplicit(e *core.Eval, s *core.ExplicitStrategy, fe *core.Eval, failedNodes []int) (*core.ExplicitStrategy, error) {
	if !e.Sys.Enumerable() || !fe.Sys.Enumerable() {
		return nil, fmt.Errorf("faults: cannot project an explicit strategy over non-enumerable system %s", e.Sys.Name())
	}
	failed := make([]bool, e.Topo.Size())
	for _, n := range failedNodes {
		failed[n] = true
	}
	deadElem := make([]bool, e.F.UniverseSize())
	var alive []int // survivor element id → original element id
	for u := 0; u < e.F.UniverseSize(); u++ {
		if failed[e.F.Node(u)] {
			deadElem[u] = true
		} else {
			alive = append(alive, u)
		}
	}

	// Index the original system's surviving quorums by their (sorted)
	// original element sets.
	key := func(elems []int) string {
		sorted := append([]int(nil), elems...)
		sort.Ints(sorted)
		return fmt.Sprint(sorted)
	}
	origIdx := make(map[string]int)
	for i := 0; i < e.Sys.NumQuorums(); i++ {
		q := e.Sys.Quorum(i)
		ok := true
		for _, u := range q {
			if deadElem[u] {
				ok = false
				break
			}
		}
		if ok {
			origIdx[key(q)] = i
		}
	}

	// Map each survivor quorum back to its original index.
	m := fe.Sys.NumQuorums()
	back := make([]int, m)
	for j := 0; j < m; j++ {
		q := fe.Sys.Quorum(j)
		orig := make([]int, len(q))
		for t, u := range q {
			orig[t] = alive[u]
		}
		i, ok := origIdx[key(orig)]
		if !ok {
			return nil, fmt.Errorf("faults: survivor quorum %v has no pre-failure counterpart", orig)
		}
		back[j] = i
	}

	// Project each surviving client's row and renormalize.
	clientPos := make(map[int]int, len(e.Clients))
	for k, v := range e.Clients {
		clientPos[v] = k
	}
	uniform := 1 / float64(m)
	rows := make([][]float64, len(fe.Clients))
	for k, v := range fe.Clients {
		ki, found := clientPos[v]
		if !found {
			return nil, fmt.Errorf("faults: surviving client %d was not a client before the failure", v)
		}
		old := s.Probs[ki]
		row := make([]float64, m)
		sum := 0.0
		for j := 0; j < m; j++ {
			row[j] = old[back[j]]
			sum += row[j]
		}
		if sum <= 1e-12 {
			// The client's entire mass died with the failure: balanced
			// fallback over the survivors.
			for j := range row {
				row[j] = uniform
			}
		} else {
			for j := range row {
				row[j] /= sum
			}
		}
		rows[k] = row
	}
	label := s.Name()
	if label == "" {
		label = "explicit"
	}
	return &core.ExplicitStrategy{Probs: rows, Label: label + "-unreplanned"}, nil
}
