package faults

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func testTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1+rng.Float64()*99)
		}
	}
	m.MetricClosure()
	tp, err := topology.New("test", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func gridEval(t *testing.T, n int, k int, seed int64) *core.Eval {
	t.Helper()
	topo := testTopo(t, n, seed)
	sys, err := quorum.NewGrid(k)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, sys.UniverseSize())
	for u := range target {
		target[u] = u % n
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func thresholdEval(t *testing.T, n, q, nu int, seed int64) *core.Eval {
	t.Helper()
	topo := testTopo(t, n, seed)
	sys, err := quorum.NewThreshold(q, nu)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, nu)
	for u := range target {
		target[u] = u % n
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestApplyNoFailures(t *testing.T) {
	e := gridEval(t, 12, 3, 1)
	fe, err := Apply(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := e.AvgNetworkDelay(core.ClosestStrategy{})
	b := fe.AvgNetworkDelay(core.ClosestStrategy{})
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("no-failure apply changed delay: %v vs %v", a, b)
	}
}

func TestApplyDegradesResponseTime(t *testing.T) {
	// Losing nodes can only shrink the set of available quorums, so the
	// closest-strategy delay is non-decreasing in the failure set.
	e := thresholdEval(t, 15, 5, 9, 2)
	base := e.AvgNetworkDelay(core.ClosestStrategy{})
	fe, err := Apply(e, []int{e.F.Node(0), e.F.Node(1)})
	if err != nil {
		t.Fatal(err)
	}
	after := fe.AvgNetworkDelay(core.ClosestStrategy{})
	if after < base-1e-9 {
		t.Errorf("delay improved after failures: %v vs %v", after, base)
	}
}

func TestApplyUnavailable(t *testing.T) {
	e := thresholdEval(t, 15, 5, 9, 3)
	// Fail the nodes hosting 5 of the 9 elements: only 4 survive < q=5.
	nodes := map[int]bool{}
	for u := 0; u < 5; u++ {
		nodes[e.F.Node(u)] = true
	}
	var failed []int
	for w := range nodes {
		failed = append(failed, w)
	}
	if _, err := Apply(e, failed); !errors.Is(err, quorum.ErrNoQuorumSurvives) {
		t.Errorf("err = %v, want ErrNoQuorumSurvives", err)
	}
}

func TestApplyRemovesFailedClients(t *testing.T) {
	e := gridEval(t, 12, 3, 4)
	fe, err := Apply(e, []int{11}) // node 11 hosts no elements (9 elements on 0..8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fe.Clients {
		if v == 11 {
			t.Error("failed node still a client")
		}
	}
	if len(fe.Clients) != 11 {
		t.Errorf("clients = %d, want 11", len(fe.Clients))
	}
}

func TestApplyValidation(t *testing.T) {
	e := gridEval(t, 12, 3, 5)
	if _, err := Apply(e, []int{99}); err == nil {
		t.Error("out-of-range failed node accepted")
	}
}

func TestSurvivesElementFailureMatchesSurvive(t *testing.T) {
	// The cheap check must agree with the full Survive construction.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sys quorum.System
		if rng.Intn(2) == 0 {
			g, err := quorum.NewGrid(2 + rng.Intn(3))
			if err != nil {
				return false
			}
			sys = g
		} else {
			n := 3 + rng.Intn(8)
			q := n/2 + 1
			th, err := quorum.NewThreshold(q, n)
			if err != nil {
				return false
			}
			sys = th
		}
		n := sys.UniverseSize()
		dead := make([]bool, n)
		var deadList []int
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.3 {
				dead[u] = true
				deadList = append(deadList, u)
			}
		}
		fast := SurvivesElementFailure(sys, dead)
		_, err := quorum.Survive(sys, deadList)
		slow := err == nil
		return fast == slow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestThresholdAvailabilityExact(t *testing.T) {
	// q=1, n=1: availability = 1 − p.
	if got, err := ThresholdAvailabilityExact(1, 1, 0.1); err != nil || math.Abs(got-0.9) > 1e-12 {
		t.Errorf("singleton availability = %v, %v; want 0.9", got, err)
	}
	// q=n: availability = (1−p)^n.
	got, err := ThresholdAvailabilityExact(4, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(0.8, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("all-of-4 availability = %v, want %v", got, want)
	}
	// p=0 → 1; p=1 → 0.
	if got, _ := ThresholdAvailabilityExact(3, 5, 0); got != 1 {
		t.Errorf("availability at p=0 is %v", got)
	}
	if got, _ := ThresholdAvailabilityExact(3, 5, 1); got != 0 {
		t.Errorf("availability at p=1 is %v", got)
	}
	if _, err := ThresholdAvailabilityExact(0, 5, 0.5); err == nil {
		t.Error("invalid threshold accepted")
	}
	if _, err := ThresholdAvailabilityExact(3, 5, 1.5); err == nil {
		t.Error("invalid probability accepted")
	}
}

func TestAvailabilityMonteCarloMatchesExact(t *testing.T) {
	// One-to-one threshold placement: MC must converge to the binomial
	// tail.
	e := thresholdEval(t, 15, 5, 9, 6) // one-to-one: 9 elements on 9 nodes
	for u := 0; u < 9; u++ {
		if e.F.Node(u) != u%15 {
			t.Fatal("placement not one-to-one as expected")
		}
	}
	const p = 0.2
	mc, err := Availability(e, p, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ThresholdAvailabilityExact(5, 9, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("MC availability %v, exact %v", mc, exact)
	}
}

func TestAvailabilityQuorumBeatsSingleton(t *testing.T) {
	// The §6 argument: at equal failure probability, a majority system is
	// more available than the singleton.
	topo := testTopo(t, 15, 8)
	single, err := core.SingletonPlacement(1, 3, topo)
	if err != nil {
		t.Fatal(err)
	}
	eS, err := core.NewEval(topo, quorum.Singleton{}, single, 0)
	if err != nil {
		t.Fatal(err)
	}
	eM := thresholdEval(t, 15, 3, 5, 8)

	const p = 0.2
	aS, err := Availability(eS, p, 100000, 9)
	if err != nil {
		t.Fatal(err)
	}
	aM, err := Availability(eM, p, 100000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if aM <= aS {
		t.Errorf("majority availability %v not above singleton %v", aM, aS)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	e := gridEval(t, 12, 3, 10)
	if _, err := Availability(e, -0.1, 100, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Availability(e, 0.5, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestWorstCaseFailure(t *testing.T) {
	e := gridEval(t, 6, 3, 11) // 9 elements on 6 nodes: nodes 0..2 host 2 each
	got := WorstCaseFailure(e, 2)
	if len(got) != 2 {
		t.Fatalf("got %d nodes, want 2", len(got))
	}
	// The two chosen nodes must host the maximum element counts (2 each).
	for _, w := range got {
		if len(e.F.ElementsOn(w)) != 2 {
			t.Errorf("node %d hosts %d elements, expected a 2-element node",
				w, len(e.F.ElementsOn(w)))
		}
	}
	// Asking for more nodes than the support has returns the support.
	all := WorstCaseFailure(e, 100)
	if len(all) != len(e.F.Support()) {
		t.Errorf("got %d nodes, want full support %d", len(all), len(e.F.Support()))
	}
}

func TestSlowdownInflatesDelay(t *testing.T) {
	e := gridEval(t, 12, 3, 30)
	base := e.AvgNetworkDelay(core.ClosestStrategy{})

	// Slowing every support node must increase the closest delay.
	se, err := Slowdown(e, e.F.Support(), 3)
	if err != nil {
		t.Fatal(err)
	}
	slowed := se.AvgNetworkDelay(core.ClosestStrategy{})
	if slowed <= base {
		t.Errorf("slowdown did not raise delay: %v vs %v", slowed, base)
	}
	if slowed > 3*base+1e-9 {
		t.Errorf("slowdown exceeded factor bound: %v vs 3x%v", slowed, base)
	}
}

func TestSlowdownRoutesAround(t *testing.T) {
	// Slowing a node that hosts nothing and carries no shortest paths
	// must not change quorum delays at all... but with a complete metric
	// graph, paths only improve by avoiding it; delay stays equal.
	e := gridEval(t, 12, 3, 31)
	nonSupport := -1
	inSupport := map[int]bool{}
	for _, w := range e.F.Support() {
		inSupport[w] = true
	}
	for w := 0; w < 12; w++ {
		if !inSupport[w] {
			nonSupport = w
			break
		}
	}
	if nonSupport == -1 {
		t.Skip("all nodes in support")
	}
	se, err := Slowdown(e, []int{nonSupport}, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := e.AvgNetworkDelay(core.ClosestStrategy{})
	slowed := se.AvgNetworkDelay(core.ClosestStrategy{})
	// Paths between healthy nodes never got worse (closure can only
	// reroute), and clients at the slowed node got slower — so the
	// average may rise slightly but per healthy client delays must not.
	for _, v := range se.Clients {
		if v == nonSupport {
			continue
		}
		hb := e.ClientResponseTime(core.ClosestStrategy{}, v)
		hs := se.ClientResponseTime(core.ClosestStrategy{}, v)
		if hs > hb+1e-9 {
			t.Fatalf("healthy client %d got slower: %v vs %v", v, hs, hb)
		}
	}
	_ = base
	_ = slowed
}

func TestSlowdownValidation(t *testing.T) {
	e := gridEval(t, 12, 3, 32)
	if _, err := Slowdown(e, []int{0}, 0.5); err == nil {
		t.Error("factor < 1 accepted")
	}
	if _, err := Slowdown(e, []int{99}, 2); err == nil {
		t.Error("out-of-range node accepted")
	}
}
