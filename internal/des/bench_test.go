package des

import "testing"

func BenchmarkEventThroughput(b *testing.B) {
	b.ReportAllocs()
	var s Simulator
	remaining := b.N
	var pump func()
	pump = func() {
		if remaining == 0 {
			return
		}
		remaining--
		if err := s.Schedule(1, pump); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	pump()
	s.Run()
}

func BenchmarkDeepQueue(b *testing.B) {
	// Heap behaviour with many co-pending events.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var s Simulator
		for j := 0; j < 10000; j++ {
			if err := s.Schedule(float64(10000-j), func() {}); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		s.Run()
	}
}
