// Package des is a small deterministic discrete-event simulation kernel:
// a simulated clock and an event queue ordered by (time, insertion
// sequence). It stands in for the ModelNet emulation testbed the paper
// used for its Q/U experiments (§3): instead of emulating a WAN at packet
// level, the protocol simulation schedules message deliveries and
// processing completions as events on this kernel.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Simulator is a discrete-event simulator. The zero value is ready to
// use with a clock at 0.
type Simulator struct {
	now   float64
	seq   uint64
	queue eventHeap
}

type event struct {
	at  float64
	seq uint64 // FIFO tie-break for equal times → determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated time (milliseconds by convention in
// this library).
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule queues fn to run after delay. Zero delays are allowed (the
// event runs after already-queued events at the same instant).
func (s *Simulator) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("des: invalid delay %v", delay)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event function")
	}
	s.seq++
	heap.Push(&s.queue, event{at: s.now + delay, seq: s.seq, fn: fn})
	return nil
}

// Step runs the next event, if any, advancing the clock to its time. It
// reports whether an event ran.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	e.fn()
	return true
}

// Run processes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil processes all events with time ≤ t, then advances the clock to
// t. Events scheduled during processing are honored if they fall within
// the horizon.
func (s *Simulator) RunUntil(t float64) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}
