package des

import (
	"math"
	"testing"
)

func TestZeroValueUsable(t *testing.T) {
	var s Simulator
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
	if s.Step() {
		t.Error("Step() on empty simulator returned true")
	}
}

func TestScheduleValidation(t *testing.T) {
	var s Simulator
	if err := s.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := s.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
	if err := s.Schedule(math.Inf(1), func() {}); err == nil {
		t.Error("Inf delay accepted")
	}
	if err := s.Schedule(1, nil); err == nil {
		t.Error("nil function accepted")
	}
}

func TestEventOrdering(t *testing.T) {
	var s Simulator
	var order []int
	mustSchedule(t, &s, 5, func() { order = append(order, 2) })
	mustSchedule(t, &s, 1, func() { order = append(order, 1) })
	mustSchedule(t, &s, 9, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 9 {
		t.Errorf("Now() = %v, want 9", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, &s, 3, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var s Simulator
	var times []float64
	mustSchedule(t, &s, 2, func() {
		times = append(times, s.Now())
		mustSchedule(t, &s, 3, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != 2 || times[1] != 5 {
		t.Errorf("times = %v, want [2 5]", times)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var s Simulator
	ran := 0
	mustSchedule(t, &s, 1, func() { ran++ })
	mustSchedule(t, &s, 10, func() { ran++ })
	s.RunUntil(5)
	if ran != 1 {
		t.Errorf("ran = %d events before horizon, want 1", ran)
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %v, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if ran != 2 || s.Now() != 10 {
		t.Errorf("after Run: ran=%d now=%v", ran, s.Now())
	}
}

func TestZeroDelayRunsAfterQueuedSameTime(t *testing.T) {
	var s Simulator
	var order []int
	mustSchedule(t, &s, 0, func() {
		order = append(order, 1)
		mustSchedule(t, &s, 0, func() { order = append(order, 3) })
	})
	mustSchedule(t, &s, 0, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
}

func TestManyEvents(t *testing.T) {
	var s Simulator
	const n = 10000
	count := 0
	for i := 0; i < n; i++ {
		mustSchedule(t, &s, float64(n-i), func() { count++ })
	}
	s.Run()
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
	if s.Now() != n {
		t.Errorf("Now() = %v, want %v", s.Now(), float64(n))
	}
}

func mustSchedule(t *testing.T, s *Simulator, d float64, fn func()) {
	t.Helper()
	if err := s.Schedule(d, fn); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
}
