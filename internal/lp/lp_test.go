package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustConstraint(t *testing.T, p *Problem, idx []int, coef []float64, op Op, rhs float64) {
	t.Helper()
	if err := p.AddConstraint(idx, coef, op, rhs); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSimpleLP(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  → x=2? No:
	// optimum is y=2, x=2 (x+y=4): objective -6.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, -2}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, LE, 4)
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 3)
	mustConstraint(t, p, []int{1}, []float64{1}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-6)) > 1e-7 {
		t.Errorf("objective = %v, want -6", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-2) > 1e-7 {
		t.Errorf("X = %v, want [2 2]", sol.X)
	}
}

func TestEqualityLP(t *testing.T) {
	// min x + 3y s.t. x + y = 10, x <= 4  →  x=4, y=6, obj=22.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, EQ, 10)
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-22) > 1e-7 {
		t.Errorf("objective = %v, want 22", sol.Objective)
	}
}

func TestGEConstraints(t *testing.T) {
	// min 2x + y s.t. x + y >= 3, x >= 1 → x=1, y=2, obj=4.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, GE, 3)
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-4) > 1e-7 {
		t.Errorf("objective = %v, want 4", sol.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5) → x=5.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0}, []float64{-1}, LE, -5)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-5) > 1e-7 {
		t.Errorf("x = %v, want 5", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 1)
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 2)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	// x + y = 1, x + y = 2 is infeasible.
	p := NewProblem(2)
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, EQ, 1)
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, EQ, 2)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 1 → unbounded below.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{-1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 1)
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestUnboundedNoConstraints(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{0, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestNoConstraintsZeroCost(t *testing.T) {
	p := NewProblem(3)
	if err := p.SetObjective([]float64{1, 0, 2}); err != nil {
		t.Fatal(err)
	}
	sol := solveOK(t, p)
	if sol.Objective != 0 {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate equality rows make the basis singular without care.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, EQ, 2)
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, EQ, 2) // redundant
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 0.5)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Errorf("objective = %v, want 2", sol.Objective)
	}
}

func TestDuplicateIndicesSummed(t *testing.T) {
	// 2x (written as x + x) = 4 → x = 2.
	p := NewProblem(1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 0}, []float64{1, 1}, EQ, 4)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-7 {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestDegenerateLP(t *testing.T) {
	// Highly degenerate: many constraints active at the optimum.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, LE, 1)
	}
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 1)
	mustConstraint(t, p, []int{1}, []float64{1}, LE, 1)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-1)) > 1e-7 {
		t.Errorf("objective = %v, want -1", sol.Objective)
	}
}

func TestTransportationProblem(t *testing.T) {
	// 2 sources (supply 3, 4), 3 sinks (demand 2, 2, 3); costs chosen so
	// the optimum is checkable by hand.
	// Var x[s][d] = x[s*3+d].
	cost := []float64{
		1, 5, 9, // source 0
		4, 2, 3, // source 1
	}
	p := NewProblem(6)
	if err := p.SetObjective(cost); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1, 2}, []float64{1, 1, 1}, LE, 3)
	mustConstraint(t, p, []int{3, 4, 5}, []float64{1, 1, 1}, LE, 4)
	mustConstraint(t, p, []int{0, 3}, []float64{1, 1}, EQ, 2)
	mustConstraint(t, p, []int{1, 4}, []float64{1, 1}, EQ, 2)
	mustConstraint(t, p, []int{2, 5}, []float64{1, 1}, EQ, 3)
	sol := solveOK(t, p)
	// Optimal: x00=2 (cost 2), x22=3 from source 1 (cost 9), and demand 1
	// split x11=1 (2) + x01=1 (5) because source 1's supply of 4 is
	// exhausted → total 18.
	if math.Abs(sol.Objective-18) > 1e-7 {
		t.Errorf("objective = %v, want 18", sol.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Error("SetObjective with wrong length succeeded")
	}
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Error("SetObjectiveCoeff out of range succeeded")
	}
	if err := p.AddConstraint([]int{0}, []float64{1, 2}, LE, 1); err == nil {
		t.Error("AddConstraint with mismatched lengths succeeded")
	}
	if err := p.AddConstraint([]int{7}, []float64{1}, LE, 1); err == nil {
		t.Error("AddConstraint with bad index succeeded")
	}
	if err := p.AddConstraint([]int{0}, []float64{math.NaN()}, LE, 1); err == nil {
		t.Error("AddConstraint with NaN coefficient succeeded")
	}
	if err := p.AddConstraint([]int{0}, []float64{1}, Op(9), 1); err == nil {
		t.Error("AddConstraint with bad op succeeded")
	}
	if err := p.AddConstraint([]int{0}, []float64{1}, LE, math.Inf(1)); err == nil {
		t.Error("AddConstraint with Inf rhs succeeded")
	}
}

// TestRandomLPsAgainstBruteForce solves small random LPs and compares with
// brute-force vertex enumeration (all basis subsets of the constraint set
// in standard equality form would be complex; instead we check (a) the
// solution is feasible and (b) no vertex from enumerating constraint
// intersections beats it).
func TestRandomLPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(2) // 2 or 3 vars
		nc := 2 + rng.Intn(4)
		p := NewProblem(nv)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = math.Round((rng.Float64()*4-1)*8) / 8 // mostly positive costs
		}
		if err := p.SetObjective(obj); err != nil {
			t.Fatal(err)
		}
		var rows []testRow
		for i := 0; i < nc; i++ {
			a := make([]float64, nv)
			idx := make([]int, nv)
			for j := range a {
				idx[j] = j
				a[j] = math.Round((rng.Float64()*2-0.5)*8) / 8
			}
			op := LE
			if rng.Intn(3) == 0 {
				op = GE
			}
			rhs := math.Round(rng.Float64()*10*8) / 8
			rows = append(rows, testRow{a: a, op: op, rhs: rhs})
			mustConstraint(t, p, idx, a, op, rhs)
		}
		// Keep the region bounded so minima exist.
		box := make([]float64, nv)
		idx := make([]int, nv)
		for j := range box {
			box[j] = 1
			idx[j] = j
		}
		for j := 0; j < nv; j++ {
			one := []float64{1}
			mustConstraint(t, p, []int{j}, one, LE, 10)
			rows = append(rows, testRow{a: unit(nv, j), op: LE, rhs: 10})
		}
		_ = box
		_ = idx

		sol, err := p.Solve()
		if errors.Is(err, ErrInfeasible) {
			// Verify no feasible point exists on a coarse grid (sanity
			// check, not a proof).
			if pt := gridFeasiblePoint(rows, nv, 0.5); pt != nil {
				t.Fatalf("trial %d: reported infeasible but %v is feasible", trial, pt)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		// (a) Feasibility.
		if !feasible(rows, sol.X, 1e-6) {
			t.Fatalf("trial %d: solution %v infeasible", trial, sol.X)
		}
		// (b) Optimality vs grid search.
		bestGrid := gridBest(rows, obj, nv, 0.25)
		if bestGrid < sol.Objective-1e-6 {
			t.Fatalf("trial %d: grid found %v < simplex %v", trial, bestGrid, sol.Objective)
		}
	}
}

// testRow is a dense constraint used by the brute-force feasibility and
// grid-search helpers.
type testRow struct {
	a   []float64
	op  Op
	rhs float64
}

func unit(n, j int) []float64 {
	a := make([]float64, n)
	a[j] = 1
	return a
}

func feasible(rows []testRow, x []float64, tol float64) bool {
	for _, r := range rows {
		dot := 0.0
		for j := range x {
			dot += r.a[j] * x[j]
		}
		switch r.op {
		case LE:
			if dot > r.rhs+tol {
				return false
			}
		case GE:
			if dot < r.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(dot-r.rhs) > tol {
				return false
			}
		}
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	return true
}

func gridPoints(nv int, step, max float64, fn func(x []float64)) {
	x := make([]float64, nv)
	var rec func(d int)
	rec = func(d int) {
		if d == nv {
			fn(x)
			return
		}
		for v := 0.0; v <= max; v += step {
			x[d] = v
			rec(d + 1)
		}
	}
	rec(0)
}

func gridFeasiblePoint(rows []testRow, nv int, step float64) []float64 {
	var found []float64
	gridPoints(nv, step, 10, func(x []float64) {
		if found == nil && feasible(rows, x, 1e-9) {
			found = append([]float64(nil), x...)
		}
	})
	return found
}

func gridBest(rows []testRow, obj []float64, nv int, step float64) float64 {
	best := math.Inf(1)
	gridPoints(nv, step, 10, func(x []float64) {
		if !feasible(rows, x, 1e-9) {
			return
		}
		v := 0.0
		for j := range x {
			v += obj[j] * x[j]
		}
		if v < best {
			best = v
		}
	})
	return best
}

// TestWeakDualityProperty: for random feasible bounded LPs, the simplex
// objective must equal the max over many random feasible points' lower
// envelope... More directly: any feasible point must have objective >=
// the simplex optimum (minimization).
func TestNoFeasiblePointBeatsOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(3)
		p := NewProblem(nv)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = rng.Float64()*2 - 0.5
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		// x_j <= u_j box plus a couple of random LE rows: always feasible
		// (x = 0) and bounded.
		var rows []testRow
		for j := 0; j < nv; j++ {
			if err := p.AddConstraint([]int{j}, []float64{1}, LE, 5); err != nil {
				return false
			}
			rows = append(rows, testRow{a: unit(nv, j), op: LE, rhs: 5})
		}
		for i := 0; i < 2; i++ {
			a := make([]float64, nv)
			idx := make([]int, nv)
			for j := range a {
				a[j] = rng.Float64()
				idx[j] = j
			}
			rhs := rng.Float64() * 5
			if err := p.AddConstraint(idx, a, LE, rhs); err != nil {
				return false
			}
			rows = append(rows, testRow{a: a, op: LE, rhs: rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Sample random feasible points by rejection.
		for i := 0; i < 200; i++ {
			x := make([]float64, nv)
			for j := range x {
				x[j] = rng.Float64() * 5
			}
			if !feasible(rows, x, 0) {
				continue
			}
			v := 0.0
			for j := range x {
				v += obj[j] * x[j]
			}
			if v < sol.Objective-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLargeStructuredLP(t *testing.T) {
	// A mid-size assignment-like LP to exercise refactorization: 40 jobs,
	// 12 machines, random costs; each job assigned once, machine capacity
	// 4 jobs.
	rng := rand.New(rand.NewSource(5))
	const jobs, machines = 40, 12
	nv := jobs * machines
	p := NewProblem(nv)
	obj := make([]float64, nv)
	for i := range obj {
		obj[i] = rng.Float64() * 10
	}
	if err := p.SetObjective(obj); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < jobs; j++ {
		idx := make([]int, machines)
		coef := make([]float64, machines)
		for m := 0; m < machines; m++ {
			idx[m] = j*machines + m
			coef[m] = 1
		}
		mustConstraint(t, p, idx, coef, EQ, 1)
	}
	for m := 0; m < machines; m++ {
		idx := make([]int, jobs)
		coef := make([]float64, jobs)
		for j := 0; j < jobs; j++ {
			idx[j] = j*machines + m
			coef[j] = 1
		}
		mustConstraint(t, p, idx, coef, LE, 4)
	}
	sol := solveOK(t, p)
	// Verify assignment feasibility.
	for j := 0; j < jobs; j++ {
		sum := 0.0
		for m := 0; m < machines; m++ {
			sum += sol.X[j*machines+m]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("job %d assigned %v total, want 1", j, sum)
		}
	}
	for m := 0; m < machines; m++ {
		sum := 0.0
		for j := 0; j < jobs; j++ {
			sum += sol.X[j*machines+m]
		}
		if sum > 4+1e-6 {
			t.Fatalf("machine %d load %v > 4", m, sum)
		}
	}
	// The LP bound must be at least the trivial per-job minimum.
	lower := 0.0
	for j := 0; j < jobs; j++ {
		minC := math.Inf(1)
		for m := 0; m < machines; m++ {
			if obj[j*machines+m] < minC {
				minC = obj[j*machines+m]
			}
		}
		lower += minC
	}
	if sol.Objective < lower-1e-6 {
		t.Errorf("objective %v below per-job lower bound %v", sol.Objective, lower)
	}
}
