package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// growColumn is one candidate column of the randomized growth tests:
// an objective cost plus one coefficient per constraint row.
type growColumn struct {
	cost float64
	rows []int
	coef []float64
}

// buildFromColumns assembles a fresh Problem containing exactly the given
// columns (in order) over nRows rows with the given ops and rhs.
func buildFromColumns(t *testing.T, cols []growColumn, ops []Op, rhs []float64) *Problem {
	t.Helper()
	p := NewProblem(len(cols))
	for j, c := range cols {
		if err := p.SetObjectiveCoeff(j, c.cost); err != nil {
			t.Fatal(err)
		}
	}
	for i := range ops {
		var idx []int
		var coef []float64
		for j, c := range cols {
			for k, r := range c.rows {
				if r == i {
					idx = append(idx, j)
					coef = append(coef, c.coef[k])
				}
			}
		}
		if err := p.AddConstraint(idx, coef, ops[i], rhs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestAddColumnGrowWarmMatchesCold grows a restricted master column by
// column the way column generation does — AddColumn then SolveWarm from
// the previous basis — and checks at every step that the warm solve (a)
// stays on the primal warm path (the old vertex is still feasible when
// only columns were added) and (b) reaches the same objective as a cold
// solve of a problem built from scratch with the same columns.
func TestAddColumnGrowWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		groups := 2 + rng.Intn(4)
		resources := 1 + rng.Intn(3)
		nRows := groups + resources
		ops := make([]Op, nRows)
		rhs := make([]float64, nRows)
		for g := 0; g < groups; g++ {
			ops[g] = EQ
			rhs[g] = 1
		}
		for r := 0; r < resources; r++ {
			ops[groups+r] = LE
			// Above the worst case (every group at max coefficient 1.1), so
			// every seeded master is feasible.
			rhs[groups+r] = 1.2 * float64(groups)
		}

		newCol := func(g int) growColumn {
			rows := []int{g}
			coef := []float64{1}
			for r := 0; r < resources; r++ {
				if rng.Float64() < 0.7 {
					rows = append(rows, groups+r)
					coef = append(coef, 0.1+rng.Float64())
				}
			}
			return growColumn{cost: rng.Float64() * 10, rows: rows, coef: coef}
		}

		// Seed: one column per group.
		var cols []growColumn
		for g := 0; g < groups; g++ {
			cols = append(cols, newCol(g))
		}
		master := buildFromColumns(t, cols, ops, rhs)
		sol, err := master.SolveWith(Options{})
		if err != nil {
			t.Fatalf("trial %d: seed solve: %v", trial, err)
		}

		for step := 0; step < 6; step++ {
			batch := 1 + rng.Intn(3)
			for b := 0; b < batch; b++ {
				c := newCol(rng.Intn(groups))
				cols = append(cols, c)
				j, err := master.AddColumn(c.cost, c.rows, c.coef)
				if err != nil {
					t.Fatalf("trial %d step %d: AddColumn: %v", trial, step, err)
				}
				if j != len(cols)-1 {
					t.Fatalf("trial %d step %d: AddColumn index %d, want %d", trial, step, j, len(cols)-1)
				}
			}
			warm, err := master.SolveWarm(Options{}, sol.Basis)
			if err != nil {
				t.Fatalf("trial %d step %d: warm solve: %v", trial, step, err)
			}
			if warm.Method != MethodWarmPrimal {
				t.Errorf("trial %d step %d: method %q, want %q (columns only grew)",
					trial, step, warm.Method, MethodWarmPrimal)
			}
			cold, err := buildFromColumns(t, cols, ops, rhs).SolveWith(Options{})
			if err != nil {
				t.Fatalf("trial %d step %d: cold reference: %v", trial, step, err)
			}
			if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-9*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d step %d: warm objective %v, cold %v (diff %g)",
					trial, step, warm.Objective, cold.Objective, diff)
			}
			sol = warm
		}
	}
}

// TestAddColumnThenSetRHS: a basis captured before AddColumn must also
// survive a subsequent RHS tightening — the cross-solve composition the
// colgen capacity path uses (grow columns within one solve, tighten
// capacities between solves).
func TestAddColumnThenSetRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	groups, resources := 3, 2
	nRows := groups + resources
	ops := make([]Op, nRows)
	rhs := make([]float64, nRows)
	for g := 0; g < groups; g++ {
		ops[g], rhs[g] = EQ, 1
	}
	for r := 0; r < resources; r++ {
		ops[groups+r], rhs[groups+r] = LE, 5
	}
	var cols []growColumn
	for g := 0; g < groups; g++ {
		cols = append(cols, growColumn{
			cost: rng.Float64() * 10,
			rows: []int{g, groups, groups + 1},
			coef: []float64{1, 0.5 + rng.Float64(), 0.5 + rng.Float64()},
		})
	}
	master := buildFromColumns(t, cols, ops, rhs)
	sol, err := master.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := growColumn{cost: 0.5, rows: []int{0, groups}, coef: []float64{1, 2.5}}
	cols = append(cols, c)
	if _, err := master.AddColumn(c.cost, c.rows, c.coef); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < resources; r++ {
		rhs[groups+r] = 4.5 // still feasible: per-resource usage ≤ 3 × 1.5
		if err := master.SetRHS(groups+r, rhs[groups+r]); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := master.SolveWarm(Options{}, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := buildFromColumns(t, cols, ops, rhs).SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-9*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective %v after grow+tighten, want %v", warm.Objective, cold.Objective)
	}
	if warm.Method == MethodCold {
		t.Errorf("method %q: basis did not survive AddColumn + SetRHS", warm.Method)
	}
}

// TestAddColumnErrors exercises AddColumn's validation.
func TestAddColumnErrors(t *testing.T) {
	p := NewProblem(1)
	if err := p.AddConstraint([]int{0}, []float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cost float64
		rows []int
		coef []float64
	}{
		{"length mismatch", 1, []int{0}, []float64{1, 2}},
		{"row out of range", 1, []int{1}, []float64{1}},
		{"negative row", 1, []int{-1}, []float64{1}},
		{"nan cost", math.NaN(), []int{0}, []float64{1}},
		{"inf coef", 1, []int{0}, []float64{math.Inf(1)}},
	}
	for _, c := range cases {
		if _, err := p.AddColumn(c.cost, c.rows, c.coef); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if p.NumVars() != 1 {
		t.Fatalf("failed AddColumn mutated nVars: %d", p.NumVars())
	}
	if _, err := p.AddColumn(2, []int{0}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if p.NumVars() != 2 {
		t.Fatalf("NumVars = %d after AddColumn, want 2", p.NumVars())
	}
}

// TestInfeasibleRayCertificate: an infeasible solve must carry a Farkas
// ray y with y·b > 0 and y·A_j ≤ tol for every structural column, with
// the row-operator sign conditions that account for slack directions.
func TestInfeasibleRayCertificate(t *testing.T) {
	// x ≤ 1 and x ≥ 2: plainly infeasible.
	p := NewProblem(1)
	if err := p.AddConstraint([]int{0}, []float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{0}, []float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	ray := InfeasibleRay(err)
	if ray == nil {
		t.Fatal("InfeasibleRay returned nil on an infeasible solve")
	}
	if len(ray) != 2 {
		t.Fatalf("ray length %d, want 2", len(ray))
	}
	const tol = 1e-7
	if yb := ray[0]*1 + ray[1]*2; yb <= tol {
		t.Errorf("y·b = %v, want > 0", yb)
	}
	if ya := ray[0] + ray[1]; ya > tol {
		t.Errorf("y·A_x = %v, want ≤ tol", ya)
	}
	// Slack directions: LE rows need y_i ≤ tol, GE rows y_i ≥ -tol.
	if ray[0] > tol {
		t.Errorf("LE row ray %v, want ≤ tol", ray[0])
	}
	if ray[1] < -tol {
		t.Errorf("GE row ray %v, want ≥ -tol", ray[1])
	}
}

// TestInfeasibleRayAbsent: non-infeasibility errors and the bare sentinel
// yield a nil ray.
func TestInfeasibleRayAbsent(t *testing.T) {
	if ray := InfeasibleRay(ErrInfeasible); ray != nil {
		t.Errorf("bare sentinel carried a ray: %v", ray)
	}
	if ray := InfeasibleRay(fmt.Errorf("wrap: %w", ErrUnbounded)); ray != nil {
		t.Errorf("unbounded error carried a ray: %v", ray)
	}
	if ray := InfeasibleRay(nil); ray != nil {
		t.Errorf("nil error carried a ray: %v", ray)
	}
}

// TestInfeasibleRayThroughSolveWarm: the warm path funnels infeasibility
// verdicts through a cold phase 1, so the ray must be present there too.
func TestInfeasibleRayThroughSolveWarm(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{0, 1}, []float64{1, 1}, EQ, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{0, 1}, []float64{1, 2}, LE, 4); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Tighten the LE row below what the EQ row forces (x0+x1 = 1 needs
	// x0+2x1 ≥ 1 ≥ 0.5... make it impossible: rhs < 1 with coef ≥ 1).
	if err := p.SetRHS(1, 0.5); err != nil {
		t.Fatal(err)
	}
	_, err = p.SolveWarm(Options{}, sol.Basis)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if InfeasibleRay(err) == nil {
		t.Fatal("no ray through the SolveWarm infeasibility path")
	}
}
