package lp

import (
	"math/rand"
	"testing"
)

// assignmentLP builds a jobs×machines assignment relaxation, the LP shape
// the placement pipeline solves most often.
func assignmentLP(b *testing.B, jobs, machines int, seed int64) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(jobs * machines)
	obj := make([]float64, jobs*machines)
	for i := range obj {
		obj[i] = rng.Float64() * 10
	}
	if err := p.SetObjective(obj); err != nil {
		b.Fatal(err)
	}
	ones := make([]float64, machines)
	idx := make([]int, machines)
	for i := range ones {
		ones[i] = 1
	}
	for j := 0; j < jobs; j++ {
		for m := 0; m < machines; m++ {
			idx[m] = j*machines + m
		}
		if err := p.AddConstraint(idx, ones, EQ, 1); err != nil {
			b.Fatal(err)
		}
	}
	jidx := make([]int, jobs)
	jones := make([]float64, jobs)
	for j := range jones {
		jones[j] = 1
	}
	for m := 0; m < machines; m++ {
		for j := 0; j < jobs; j++ {
			jidx[j] = j*machines + m
		}
		if err := p.AddConstraint(jidx, jones, LE, float64(jobs)/float64(machines)*1.3); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

func BenchmarkSolveAssignment25x50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := assignmentLP(b, 25, 50, int64(i))
		b.StartTimer()
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveAssignment144x50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := assignmentLP(b, 144, 50, int64(i))
		b.StartTimer()
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
