package lp

import (
	"math/rand"
	"testing"
)

// assignmentLP builds a jobs×machines assignment relaxation, the LP shape
// the placement pipeline solves most often.
func assignmentLP(b *testing.B, jobs, machines int, seed int64) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewProblem(jobs * machines)
	obj := make([]float64, jobs*machines)
	for i := range obj {
		obj[i] = rng.Float64() * 10
	}
	if err := p.SetObjective(obj); err != nil {
		b.Fatal(err)
	}
	ones := make([]float64, machines)
	idx := make([]int, machines)
	for i := range ones {
		ones[i] = 1
	}
	for j := 0; j < jobs; j++ {
		for m := 0; m < machines; m++ {
			idx[m] = j*machines + m
		}
		if err := p.AddConstraint(idx, ones, EQ, 1); err != nil {
			b.Fatal(err)
		}
	}
	jidx := make([]int, jobs)
	jones := make([]float64, jobs)
	for j := range jones {
		jones[j] = 1
	}
	for m := 0; m < machines; m++ {
		for j := 0; j < jobs; j++ {
			jidx[j] = j*machines + m
		}
		if err := p.AddConstraint(jidx, jones, LE, float64(jobs)/float64(machines)*1.3); err != nil {
			b.Fatal(err)
		}
	}
	return p
}

func BenchmarkSolveAssignment25x50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := assignmentLP(b, 25, 50, int64(i))
		b.StartTimer()
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveAssignment144x50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := assignmentLP(b, 144, 50, int64(i))
		b.StartTimer()
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// strategyLP builds an instance shaped like the §4.2 access-strategy LP
// for nc clients and m quorums over nNodes sites: one convexity row per
// client and one capacity row per node, whose columns couple every
// client's variables for the quorums touching that node.
func strategyLP(b *testing.B, nc, m, nNodes int, seed int64) (*Problem, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Quorum i touches a random handful of nodes with small multiplicities.
	touch := make([][]int, m)
	for i := range touch {
		k := 2 + rng.Intn(4)
		seen := map[int]bool{}
		for len(touch[i]) < k {
			w := rng.Intn(nNodes)
			if !seen[w] {
				seen[w] = true
				touch[i] = append(touch[i], w)
			}
		}
	}
	p := NewProblem(nc * m)
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			if err := p.SetObjectiveCoeff(k*m+i, 10+rng.Float64()*200); err != nil {
				b.Fatal(err)
			}
		}
	}
	idx := make([]int, m)
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			idx[i] = k*m + i
		}
		if err := p.AddConstraint(idx, ones, EQ, 1); err != nil {
			b.Fatal(err)
		}
	}
	capRows := make([]int, 0, nNodes)
	for w := 0; w < nNodes; w++ {
		var cidx []int
		var ccoef []float64
		for i := 0; i < m; i++ {
			hit := false
			for _, tw := range touch[i] {
				if tw == w {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			for k := 0; k < nc; k++ {
				cidx = append(cidx, k*m+i)
				ccoef = append(ccoef, 1)
			}
		}
		if len(cidx) == 0 {
			continue
		}
		if err := p.AddConstraint(cidx, ccoef, LE, float64(nc)); err != nil {
			b.Fatal(err)
		}
		capRows = append(capRows, p.NumConstraints()-1)
	}
	return p, capRows
}

// BenchmarkSolveStrategyShaped measures a cold solve of a strategy-LP
// instance (the per-sweep-point work before warm starts), with
// allocation reporting so kernel regressions show up here rather than
// only in the end-to-end figure harness.
func BenchmarkSolveStrategyShaped(b *testing.B) {
	p, _ := strategyLP(b, 40, 25, 30, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveWith(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveStrategyShapedPartialPricing is the same instance under
// the fast entering rule.
func BenchmarkSolveStrategyShapedPartialPricing(b *testing.B) {
	p, _ := strategyLP(b, 40, 25, 30, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveWith(Options{Pricing: PricingPartial}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWarmStrategyShaped measures the capacity-sweep inner
// loop: mutate the capacity right-hand sides, warm-start from the
// previous basis. This is the allocation-free hot path.
func BenchmarkSolveWarmStrategyShaped(b *testing.B) {
	p, capRows := strategyLP(b, 40, 25, 30, 1)
	opts := Options{Pricing: PricingPartial}
	sol, err := p.SolveWith(opts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scale := 0.9 + 0.2*rng.Float64()
		for _, r := range capRows {
			if err := p.SetRHS(r, 40*scale); err != nil {
				b.Fatal(err)
			}
		}
		sol, err = p.SolveWarm(opts, sol.Basis)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTightenResolve measures the capacity-tightening re-solve both
// ways: a cold two-phase solve of the tightened instance versus a
// dual-simplex warm repair of the loose optimum's basis. The warm path is
// what Planner capacity sweeps run when stepping capacities downward; the
// acceptance bar is that it beats the cold solve.
func BenchmarkTightenResolve(b *testing.B) {
	const loose = 40.0
	setCaps := func(p *Problem, capRows []int, rhs float64) {
		for _, r := range capRows {
			if err := p.SetRHS(r, rhs); err != nil {
				b.Fatal(err)
			}
		}
	}
	opts := Options{Pricing: PricingPartial}

	// Probe for a tightening level that actually violates the loose
	// optimum's basis (small steps can be absorbed by slack and take the
	// warm-primal path, which BenchmarkSolveWarmStrategyShaped covers).
	probe, capRows := strategyLP(b, 40, 25, 30, 1)
	looseSol, err := probe.SolveWith(opts)
	if err != nil {
		b.Fatal(err)
	}
	tight := loose
	for {
		tight *= 0.92
		setCaps(probe, capRows, tight)
		check, err := probe.SolveWarm(opts, looseSol.Basis)
		if err != nil {
			b.Fatalf("hit %v at rhs %v before any tightening step needed dual repair", err, tight)
		}
		if check.Method == MethodWarmDual {
			break
		}
	}

	b.Run("cold", func(b *testing.B) {
		p, rows := strategyLP(b, 40, 25, 30, 1)
		setCaps(p, rows, tight)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveWith(opts); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-dual", func(b *testing.B) {
		p, rows := strategyLP(b, 40, 25, 30, 1)
		sol, err := p.SolveWith(opts)
		if err != nil {
			b.Fatal(err)
		}
		setCaps(p, rows, tight)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveWarm(opts, sol.Basis); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSolveGAPShaped measures the many-to-one placement's LP
// relaxation shape (jobs × machines assignment with capacities), cold,
// with allocation reporting.
func BenchmarkSolveGAPShaped(b *testing.B) {
	p := assignmentLP(b, 25, 50, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveWith(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
