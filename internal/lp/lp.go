// Package lp is a self-contained linear-programming solver: a two-phase
// revised simplex method with a dense basis inverse and sparse constraint
// columns.
//
// It stands in for the GNU MathProg / glpsol toolchain the paper used. The
// LPs this library generates (the access-strategy LP (4.3)–(4.6) and the
// many-to-one placement relaxation) have up to a few hundred rows and a
// few tens of thousands of columns, well within reach of a dense revised
// simplex. Variables are non-negative; upper bounds of the paper's LPs
// (p ≤ 1) are implied by their convexity rows, so bounded-variable pivots
// are not needed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // Σ a·x ≤ b
	GE               // Σ a·x ≥ b
	EQ               // Σ a·x = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Solver failure modes.
var (
	// ErrInfeasible is returned when no assignment satisfies the
	// constraints (for example, node capacities set below the system's
	// optimal load).
	ErrInfeasible = errors.New("lp: problem is infeasible")
	// ErrUnbounded is returned when the objective can decrease without
	// bound.
	ErrUnbounded = errors.New("lp: problem is unbounded")
	// ErrIterationLimit is returned when the simplex fails to converge
	// within the iteration budget.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
)

// infeasibleError carries the phase-1 dual ray that certifies
// infeasibility (a Farkas certificate). It unwraps to ErrInfeasible, so
// errors.Is(err, ErrInfeasible) keeps working for every caller.
type infeasibleError struct{ ray []float64 }

func (e *infeasibleError) Error() string { return ErrInfeasible.Error() }
func (e *infeasibleError) Unwrap() error { return ErrInfeasible }

// InfeasibleRay extracts the infeasibility certificate from a solve
// error, or nil if err carries none (e.g. it is not an infeasibility, or
// it was produced before the certificate existed). The ray y is indexed
// by constraint row in original orientation, like Solution.Duals, and
// satisfies y·b > 0 while y·A_j ≤ tol for every column present in the
// problem. A column-generation caller can therefore price absent columns
// against y: only a candidate column a with y·a > tol can reduce the
// infeasibility, and if no such column exists in the full model, the
// full problem is infeasible — not just the restricted one.
func InfeasibleRay(err error) []float64 {
	var ie *infeasibleError
	if errors.As(err, &ie) {
		return ie.ray
	}
	return nil
}

// Problem is a minimization LP over non-negative variables. The zero value
// is unusable; create with NewProblem. A Problem is not safe for
// concurrent use: it caches a solver workspace across Solve calls so that
// RHS-only re-solves (SetRHS + SolveWarm) reuse the assembled columns.
type Problem struct {
	nVars int
	obj   []float64
	rows  []conRow
	ws    *simplex // cached workspace; nil until first solve, dropped on structural change
}

type conRow struct {
	idx  []int
	coef []float64
	op   Op
	rhs  float64
}

// NewProblem returns a minimization problem with nVars variables
// x_0 … x_{nVars-1}, all constrained to x_j ≥ 0, with zero objective.
func NewProblem(nVars int) *Problem {
	if nVars <= 0 {
		panic(fmt.Sprintf("lp: non-positive variable count %d", nVars))
	}
	return &Problem{nVars: nVars, obj: make([]float64, nVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nVars }

// NumConstraints returns the number of rows added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the full objective coefficient vector (minimized).
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.nVars {
		return fmt.Errorf("lp: objective length %d, want %d", len(c), p.nVars)
	}
	copy(p.obj, c)
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, c float64) error {
	if j < 0 || j >= p.nVars {
		return fmt.Errorf("lp: variable %d out of range [0,%d)", j, p.nVars)
	}
	p.obj[j] = c
	return nil
}

// AddConstraint appends the row Σ coef[k]·x_{idx[k]} (op) rhs. Indices may
// repeat (coefficients are summed). The slices are copied.
func (p *Problem) AddConstraint(idx []int, coef []float64, op Op, rhs float64) error {
	if len(idx) != len(coef) {
		return fmt.Errorf("lp: %d indices but %d coefficients", len(idx), len(coef))
	}
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: invalid op %v", op)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	for k, j := range idx {
		if j < 0 || j >= p.nVars {
			return fmt.Errorf("lp: variable %d out of range [0,%d)", j, p.nVars)
		}
		if math.IsNaN(coef[k]) || math.IsInf(coef[k], 0) {
			return fmt.Errorf("lp: invalid coefficient %v for variable %d", coef[k], j)
		}
	}
	row := conRow{
		idx:  append([]int(nil), idx...),
		coef: append([]float64(nil), coef...),
		op:   op,
		rhs:  rhs,
	}
	p.rows = append(p.rows, row)
	p.ws = nil // column structure changed; rebuild on next solve
	return nil
}

// AddColumn appends a new structural variable x_j ≥ 0 with the given
// objective coefficient and one entry per listed constraint row:
// row rows[k] gains coefficient coef[k]·x_j. Row indices may repeat
// (coefficients are summed). It returns the new variable's index.
//
// This is the growth operation of column generation: solve a restricted
// master, price out absent columns against Solution.Duals, append the
// winners, and re-solve. The workspace is rebuilt on the next solve, but
// a Basis taken before the AddColumn remains valid for SolveWarm on the
// grown problem — basic slack/surplus columns are encoded relative to
// their row, not by absolute column index, so they survive the renumber.
// Since the right-hand sides are unchanged, that basis is still primal
// feasible and the re-solve continues with primal pivots only.
func (p *Problem) AddColumn(cost float64, rows []int, coef []float64) (int, error) {
	if len(rows) != len(coef) {
		return 0, fmt.Errorf("lp: %d row indices but %d coefficients", len(rows), len(coef))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0, fmt.Errorf("lp: invalid column cost %v", cost)
	}
	for k, i := range rows {
		if i < 0 || i >= len(p.rows) {
			return 0, fmt.Errorf("lp: row %d out of range [0,%d)", i, len(p.rows))
		}
		if math.IsNaN(coef[k]) || math.IsInf(coef[k], 0) {
			return 0, fmt.Errorf("lp: invalid coefficient %v for row %d", coef[k], i)
		}
	}
	j := p.nVars
	p.nVars++
	p.obj = append(p.obj, cost)
	for k, i := range rows {
		r := &p.rows[i]
		r.idx = append(r.idx, j)
		r.coef = append(r.coef, coef[k])
	}
	p.ws = nil // column structure changed; rebuild on next solve
	return j, nil
}

// SetRHS replaces the right-hand side of row i (in the order the rows
// were added), leaving its coefficients and operator untouched. This is
// the mutation capacity sweeps perform between solves: combined with
// SolveWarm it re-solves without reassembling any column storage.
func (p *Problem) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.rows) {
		return fmt.Errorf("lp: row %d out of range [0,%d)", i, len(p.rows))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	old := p.rows[i].rhs
	p.rows[i].rhs = rhs
	if (rhs < 0) != (old < 0) {
		// The sign normalization flips the row, changing column signs and
		// the slack/artificial layout: the workspace must be rebuilt.
		p.ws = nil
	} else if p.ws != nil {
		p.ws.b[i] = rhs * p.ws.rowSign[i]
	}
	return nil
}

// RHS returns the current right-hand side of row i.
func (p *Problem) RHS(i int) float64 { return p.rows[i].rhs }

// Basis identifies the set of basic columns of a vertex solution:
// Basis[i] is the column basic in row i. Structural variables are
// recorded by index; basic slack/surplus columns are encoded relative to
// their row (as negative values), so a Basis survives AddColumn — the
// mechanism column generation relies on to warm-start the grown master.
// It is opaque to callers beyond being passed back to SolveWarm on the
// same Problem after RHS-only edits or AddColumn; adding rows or other
// structural change invalidates it (SolveWarm then simply solves cold).
type Basis []int

// Method values reported in Solution.Method: how the solver reached the
// optimum.
const (
	// MethodCold is a full two-phase solve from the all-slack basis.
	MethodCold = "cold"
	// MethodWarmPrimal is a warm re-solve whose starting basis was still
	// primal feasible (e.g. after relaxing right-hand sides).
	MethodWarmPrimal = "warm-primal"
	// MethodWarmDual is a warm re-solve whose starting basis was primal
	// infeasible but dual feasible (e.g. after tightening right-hand
	// sides), repaired by dual-simplex pivots instead of a cold restart.
	MethodWarmDual = "warm-dual"
)

// Solution is the result of a successful Solve.
type Solution struct {
	// X holds the optimal values of the structural variables.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
	// Duals holds the dual value (shadow price) of each constraint row,
	// in the order the rows were added. For a minimization, relaxing the
	// rhs of row i by one unit changes the optimum by approximately
	// -Duals[i] for ≤ rows (and +Duals[i] for ≥ rows under the sign
	// convention y = c_B B⁻¹ on the sign-normalized rows; see the duality
	// tests for the exact contract).
	Duals []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
	// Basis is the optimal basis, suitable for warm-starting a re-solve
	// of the same Problem after RHS-only changes (see SolveWarm). It may
	// reference leftover artificial columns when the constraint rows are
	// linearly dependent; SolveWarm detects that and solves cold.
	Basis Basis
	// Method reports how the optimum was reached: MethodCold,
	// MethodWarmPrimal, or MethodWarmDual. Diagnostic only — capacity
	// sweeps use it to verify that tightening re-solves stay on the warm
	// path.
	Method string
}

// Pricing selects how the simplex chooses entering columns.
type Pricing int

const (
	// PricingDantzig scans every column and enters the most negative
	// reduced cost, breaking ties toward the lowest index. It is the
	// default: fully deterministic and pivot-for-pivot compatible with
	// the original solver, so results (including the particular optimal
	// vertex reached on degenerate problems) are reproducible.
	PricingDantzig Pricing = iota
	// PricingPartial prices a rotating block of columns per pivot and
	// enters the block's most negative reduced cost, falling back to
	// scanning further blocks (a full pass in the worst case) before
	// declaring optimality. Much cheaper per pivot on wide problems; on
	// degenerate problems it may reach a different — equally optimal —
	// vertex than Dantzig pricing.
	PricingPartial
)

// Options tunes the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIterations bounds total pivots; 0 means an automatic limit
	// proportional to problem size.
	MaxIterations int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// Pricing selects the entering-column rule (default PricingDantzig).
	Pricing Pricing
}

// Solve minimizes the objective with default options.
func (p *Problem) Solve() (*Solution, error) { return p.SolveWith(Options{}) }
