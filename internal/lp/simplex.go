package lp

import (
	"errors"
	"fmt"
	"math"
)

// simplex is the solver workspace for one Problem. Columns are stored in
// compressed sparse column (CSC) form; the basis inverse is dense (m×m,
// flattened row-major into one contiguous slice), maintained by pivoting
// and periodically refactorized from scratch to shed accumulated
// floating-point error.
//
// The workspace is cached on the Problem and reused across solves: a
// warm-started re-solve after an RHS-only change (SetRHS) touches no
// column storage and allocates nothing on the pivot path.
type simplex struct {
	m    int // rows
	n    int // total columns: structural + slack/surplus + artificial
	nStr int // structural columns
	nAux int // slack/surplus columns

	// CSC column storage: column j's entries are
	// (rowInd[t], vals[t]) for t in [colPtr[j], colPtr[j+1]).
	colPtr []int
	rowInd []int
	vals   []float64

	b       []float64 // rhs, non-negative after row normalization
	rowSign []float64 // ±1 applied to each input row during normalization

	costPh1 []float64 // phase-1 costs (1 on artificials)
	costPh2 []float64 // phase-2 costs (structural only; aux/artificial = 0)

	firstArtificial int
	initBasis       []int // the all-slack/artificial starting basis

	basis    []int     // basis[i] = column basic in row i
	isBasic  []bool    // by column
	binv     []float64 // m×m row-major basis inverse
	xB       []float64 // current basic values
	tol      float64
	maxIters int

	iters         int
	degenerate    int // consecutive degenerate pivots, triggers Bland's rule
	pricing       Pricing
	explicitIters bool // caller set Options.MaxIterations as a hard budget

	// Scratch buffers reused across pivots (and across solves).
	y   []float64 // dual estimate c_B B⁻¹
	dir []float64 // pivot direction B⁻¹ A_enter
	aug []float64 // m×2m refactorization workspace, allocated on first use

	priceStart int // rotating start of the partial-pricing scan
}

const (
	refactorEvery  = 200
	blandThreshold = 64
	// priceBlockMin is the smallest candidate block scanned by partial
	// pricing; larger problems scan n/8 columns per block.
	priceBlockMin = 128
)

// SolveWith minimizes the objective with the given options.
func (p *Problem) SolveWith(opts Options) (*Solution, error) {
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	if len(p.rows) == 0 {
		// Unconstrained non-negative minimization: each variable sits at 0
		// unless its cost is negative, in which case the LP is unbounded.
		for j, c := range p.obj {
			if c < -tol {
				return nil, fmt.Errorf("variable %d has negative cost and no constraints: %w", j, ErrUnbounded)
			}
		}
		return &Solution{X: make([]float64, p.nVars), Method: MethodCold}, nil
	}
	s := p.workspace()
	s.applyOptions(p, opts, tol)
	return s.coldTagged(p)
}

// SolveWarm re-solves the problem starting phase 2 from a prior basis,
// typically Solution.Basis from an earlier solve of the same Problem
// after only right-hand sides changed (SetRHS). A basis left primal
// infeasible by the edit (RHS tightening) but still dual feasible — the
// optimal basis of the previous solve always is, since reduced costs do
// not depend on the right-hand sides — is repaired in place by
// dual-simplex pivots. If the basis no longer applies at all — wrong
// shape, contains artificials, singular, or dual infeasible because the
// objective changed too — it falls back to a cold two-phase solve, so
// SolveWarm is always safe to call. Solution.Method reports which path
// ran.
func (p *Problem) SolveWarm(opts Options, basis Basis) (*Solution, error) {
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	if len(p.rows) == 0 || basis == nil {
		return p.SolveWith(opts)
	}
	s := p.workspace()
	s.applyOptions(p, opts, tol)
	if !s.tryWarmBasis(basis) {
		return s.coldTagged(p)
	}
	method := MethodWarmPrimal
	if !s.primalFeasible() {
		if !s.dualFeasible(s.costPh2) {
			return s.coldTagged(p)
		}
		if err := s.runDual(s.costPh2); err != nil {
			if err == errDualStuck {
				// The dual ratio test found no pivot, which signals primal
				// infeasibility — but leave that verdict to a cold phase 1
				// so tolerance corner cases cannot misreport ErrInfeasible.
				return s.coldTagged(p)
			}
			if errors.Is(err, ErrIterationLimit) {
				if s.explicitIters {
					return nil, err
				}
				s.iters = 0
				s.degenerate = 0
				s.priceStart = 0
				return s.coldTagged(p)
			}
			return nil, err
		}
		method = MethodWarmDual
	}
	if err := s.run(s.costPh2, s.firstArtificial, false); err != nil {
		if err == errUnboundedInternal {
			return nil, ErrUnbounded
		}
		if errors.Is(err, ErrIterationLimit) {
			// Numeric trouble along the warm path (stall or a singular
			// basis during refactorization). With the automatic pivot
			// limit, retry from scratch with a fresh budget; a
			// caller-specified MaxIterations is a hard compute bound, so
			// honor it and surface the limit instead.
			if s.explicitIters {
				return nil, err
			}
			s.iters = 0
			s.degenerate = 0
			s.priceStart = 0
			return s.coldTagged(p)
		}
		return nil, err
	}
	sol := s.extract(p)
	sol.Method = method
	return sol, nil
}

// coldTagged runs the cold two-phase solve and tags the solution's Method.
func (s *simplex) coldTagged(p *Problem) (*Solution, error) {
	sol, err := s.solveCold(p)
	if sol != nil {
		sol.Method = MethodCold
	}
	return sol, err
}

// workspace returns the cached solver workspace, building it if the
// problem structure changed since the last solve.
func (p *Problem) workspace() *simplex {
	if p.ws == nil {
		p.ws = newSimplex(p)
	}
	return p.ws
}

// applyOptions refreshes per-solve tunables and the phase-2 costs (the
// objective may have been edited between solves).
func (s *simplex) applyOptions(p *Problem, opts Options, tol float64) {
	s.tol = tol
	s.maxIters = opts.MaxIterations
	s.explicitIters = s.maxIters != 0
	if s.maxIters == 0 {
		s.maxIters = 200 * (s.m + s.n)
		if s.maxIters < 20000 {
			s.maxIters = 20000
		}
	}
	copy(s.costPh2, p.obj)
	for j := s.nStr; j < s.n; j++ {
		s.costPh2[j] = 0
	}
	s.iters = 0
	s.degenerate = 0
	s.priceStart = 0
	s.pricing = opts.Pricing
}

// newSimplex builds the canonical-form column storage for the problem:
// sign-normalized rows, structural columns assembled without maps, then
// slack/surplus and artificial columns.
func newSimplex(p *Problem) *simplex {
	m := len(p.rows)
	s := &simplex{m: m, nStr: p.nVars}

	s.b = make([]float64, m)
	s.rowSign = make([]float64, m)
	nnz := 0
	for i, r := range p.rows {
		s.rowSign[i] = 1
		if r.rhs < 0 {
			s.rowSign[i] = -1
		}
		s.b[i] = r.rhs * s.rowSign[i]
		nnz += len(r.idx)
	}

	// Structural columns via counting sort over the (col, row, val)
	// triples of the row-wise input: count entries per column, place each
	// row's entries at its column cursor, then merge duplicates. Rows are
	// scanned in order, so every column comes out sorted by row with
	// duplicate rows adjacent — no maps, no comparison sort.
	colPtr := make([]int, p.nVars+2)
	counts := colPtr[1:] // counts[j] accumulates into colPtr[j+1]
	for _, r := range p.rows {
		for _, j := range r.idx {
			counts[j+1]++
		}
	}
	for j := 1; j <= p.nVars; j++ {
		counts[j] += counts[j-1]
	}
	// counts[j] is now the cursor for column j; colPtr[j] the final start.
	rowInd := make([]int, nnz, nnz+3*m)
	vals := make([]float64, nnz, nnz+3*m)
	for i, r := range p.rows {
		sign := s.rowSign[i]
		for k, j := range r.idx {
			t := counts[j]
			counts[j] = t + 1
			rowInd[t] = i
			vals[t] = r.coef[k] * sign
		}
	}
	// Merge duplicate rows within each column and drop exact zeros,
	// compacting in place.
	w := 0
	start := 0
	for j := 0; j < p.nVars; j++ {
		end := counts[j] // one past column j's last entry
		cstart := w
		for t := start; t < end; {
			row := rowInd[t]
			v := vals[t]
			t++
			for t < end && rowInd[t] == row {
				v += vals[t]
				t++
			}
			if v != 0 {
				rowInd[w] = row
				vals[w] = v
				w++
			}
		}
		start = end
		colPtr[j] = cstart
	}
	colPtr[p.nVars] = w
	rowInd = rowInd[:w]
	vals = vals[:w]
	s.colPtr = colPtr[:p.nVars+1]

	// Slack/surplus columns, then artificials where needed. A row's op
	// flips when its sign was normalized.
	s.initBasis = make([]int, m)
	needArtificial := make([]bool, m)
	nCols := p.nVars
	appendUnit := func(row int, v float64) int {
		s.colPtr = append(s.colPtr, len(rowInd)+1)
		rowInd = append(rowInd, row)
		vals = append(vals, v)
		nCols++
		return nCols - 1
	}
	for i, r := range p.rows {
		op := r.op
		if s.rowSign[i] < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			s.initBasis[i] = appendUnit(i, 1)
		case GE:
			appendUnit(i, -1)
			needArtificial[i] = true
		case EQ:
			needArtificial[i] = true
		}
	}
	s.nAux = nCols - s.nStr
	s.firstArtificial = nCols
	for i := 0; i < m; i++ {
		if needArtificial[i] {
			s.initBasis[i] = appendUnit(i, 1)
		}
	}
	s.n = nCols
	s.rowInd = rowInd
	s.vals = vals

	s.basis = make([]int, m)
	s.isBasic = make([]bool, s.n)
	s.binv = make([]float64, m*m)
	s.xB = make([]float64, m)
	s.costPh2 = make([]float64, s.n)
	if s.firstArtificial < s.n {
		s.costPh1 = make([]float64, s.n)
		for j := s.firstArtificial; j < s.n; j++ {
			s.costPh1[j] = 1
		}
	}
	s.y = make([]float64, m)
	s.dir = make([]float64, m)
	return s
}

// solveCold runs the two-phase simplex from the all-slack/artificial
// starting basis.
func (s *simplex) solveCold(p *Problem) (*Solution, error) {
	copy(s.basis, s.initBasis)
	for j := range s.isBasic {
		s.isBasic[j] = false
	}
	for _, j := range s.basis {
		s.isBasic[j] = true
	}
	for i := range s.binv {
		s.binv[i] = 0
	}
	for i := 0; i < s.m; i++ {
		s.binv[i*s.m+i] = 1
	}
	copy(s.xB, s.b)

	// Phase 1: minimize the sum of artificials.
	if s.firstArtificial < s.n {
		if err := s.run(s.costPh1, s.firstArtificial, true); err != nil {
			if err == errUnboundedInternal {
				// Phase 1 is bounded below by 0; this indicates numeric
				// trouble, surface as iteration trouble.
				return nil, ErrIterationLimit
			}
			return nil, err
		}
		if obj := s.objective(s.costPh1); obj > 1e-7 {
			return nil, &infeasibleError{ray: s.dualRay()}
		}
		s.pivotOutArtificials()
	}

	// Phase 2.
	if err := s.run(s.costPh2, s.firstArtificial, false); err != nil {
		if err == errUnboundedInternal {
			return nil, ErrUnbounded
		}
		return nil, err
	}
	return s.extract(p), nil
}

// tryWarmBasis installs a prior basis and reports whether it is
// structurally usable: right shape, decodable, no artificial columns,
// non-singular. Feasibility under the current right-hand sides is checked
// separately (primalFeasible / dualFeasible) so the caller can pick the
// repair path.
//
// Basis entries use the encoding of extract: structural columns by index,
// slack/surplus columns as ^ordinal (see extract). Decoding resolves the
// ordinal against the current aux layout, so a basis recorded before an
// AddColumn still lands on the same slack columns after the renumber.
// Encoded artificials (ordinal ≥ nAux) decode past firstArtificial and
// are rejected here, preserving the contract that warm starts never
// resurrect artificial columns.
func (s *simplex) tryWarmBasis(basis Basis) bool {
	if len(basis) != s.m {
		return false
	}
	for j := range s.isBasic {
		s.isBasic[j] = false
	}
	for i, enc := range basis {
		j := enc
		if enc < 0 {
			j = s.nStr + ^enc
		} else if enc >= s.nStr {
			// A raw aux index from a workspace with a different structural
			// count; its identity is ambiguous, so fall back to cold.
			return false
		}
		if j >= s.firstArtificial || s.isBasic[j] {
			return false
		}
		s.isBasic[j] = true
		s.basis[i] = j
	}
	return s.refactorize() == nil
}

// primalFeasible reports whether the installed basis satisfies the current
// right-hand sides, clamping tiny negatives to zero when it does.
func (s *simplex) primalFeasible() bool {
	for _, v := range s.xB {
		if v < -1e-7 {
			return false
		}
	}
	for i, v := range s.xB {
		if v < 0 {
			s.xB[i] = 0
		}
	}
	return true
}

// dualFeasible reports whether every non-artificial column prices out
// non-negative under the installed basis, i.e. the basis is optimal for
// the cost vector on its own rows and only the right-hand sides moved.
// The optimal basis of a previous solve always passes when only SetRHS
// ran in between, since reduced costs do not depend on b; an objective
// edit can fail it, in which case the caller must solve cold.
func (s *simplex) dualFeasible(cost []float64) bool {
	m := s.m
	y := s.y
	for k := range y {
		y[k] = 0
	}
	for i := 0; i < m; i++ {
		cb := cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for k, rv := range row {
			y[k] += cb * rv
		}
	}
	for j := 0; j < s.firstArtificial; j++ {
		if s.isBasic[j] {
			continue
		}
		if cost[j]-s.reduceDot(j, y) < -1e-7 {
			return false
		}
	}
	return true
}

// errDualStuck marks a dual-simplex iteration where a basic variable is
// negative but no column can enter: the LP looks primal infeasible, but
// the verdict is left to a cold phase 1 to keep ErrInfeasible authoritative.
var errDualStuck = errors.New("lp: dual simplex found no entering column")

// runDual restores primal feasibility by dual-simplex pivots, starting
// from a dual-feasible basis: pick the most negative basic value as the
// leaving row, then the entering column by the dual ratio test
// min d_j / (−α_j) over columns with α_j < 0 in the leaving row (which
// keeps reduced costs non-negative). Each pivot uses the same basis
// update as run; on success xB ≥ 0 and the basis is still dual feasible,
// so a follow-up primal phase 2 terminates immediately or cheaply.
func (s *simplex) runDual(cost []float64) error {
	m := s.m
	sinceRefactor := 0
	for {
		if s.iters >= s.maxIters {
			return ErrIterationLimit
		}
		if sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return err
			}
			sinceRefactor = 0
		}

		// Leaving row: most negative basic value (Dantzig's dual rule),
		// ties to the lowest row index.
		leave := -1
		worst := -s.tol
		for i := 0; i < m; i++ {
			if v := s.xB[i]; v < worst {
				worst = v
				leave = i
			}
		}
		if leave < 0 {
			for i, v := range s.xB {
				if v < 0 {
					s.xB[i] = 0
				}
			}
			return nil // primal feasible again
		}

		// y = c_B^T · B^{-1} for the reduced costs of the ratio test.
		y := s.y
		for k := range y {
			y[k] = 0
		}
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k, rv := range row {
				y[k] += cb * rv
			}
		}

		// Dual ratio test over the leaving row of B⁻¹A: only columns with
		// α_j < 0 can enter (they raise xB[leave] toward feasibility).
		rowL := s.binv[leave*m : leave*m+m]
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < s.firstArtificial; j++ {
			if s.isBasic[j] {
				continue
			}
			alpha := 0.0
			for t := s.colPtr[j]; t < s.colPtr[j+1]; t++ {
				alpha += rowL[s.rowInd[t]] * s.vals[t]
			}
			if alpha >= -s.tol {
				continue
			}
			d := cost[j] - s.reduceDot(j, y)
			if d < 0 {
				d = 0 // dual feasibility holds up to tolerance
			}
			ratio := d / -alpha
			if ratio < bestRatio-s.tol || (ratio < bestRatio+s.tol && (enter == -1 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return errDualStuck
		}

		// Direction d = B^{-1} A_enter; the pivot element dir[leave] is the
		// α computed above (negative), so θ = xB[leave]/dir[leave] > 0.
		dir := s.dir
		cs, ce := s.colPtr[enter], s.colPtr[enter+1]
		for i := 0; i < m; i++ {
			row := s.binv[i*m : i*m+m]
			sum := 0.0
			for t := cs; t < ce; t++ {
				sum += row[s.rowInd[t]] * s.vals[t]
			}
			dir[i] = sum
		}
		piv := dir[leave]
		theta := s.xB[leave] / piv
		for i := 0; i < m; i++ {
			if i != leave {
				s.xB[i] -= theta * dir[i]
			}
		}
		s.xB[leave] = theta

		inv := 1 / piv
		for k := range rowL {
			rowL[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := dir[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k, rv := range rowL {
				row[k] -= f * rv
			}
		}

		s.isBasic[s.basis[leave]] = false
		s.isBasic[enter] = true
		s.basis[leave] = enter
		s.iters++
		sinceRefactor++
	}
}

// extract assembles the Solution from the optimal workspace state.
func (s *simplex) extract(p *Problem) *Solution {
	x := make([]float64, s.nStr)
	for i, j := range s.basis {
		if j < s.nStr {
			x[j] = s.xB[i]
			if x[j] < 0 && x[j] > -1e-7 {
				x[j] = 0
			}
		}
	}
	obj := 0.0
	for j := 0; j < s.nStr; j++ {
		obj += p.obj[j] * x[j]
	}

	// Dual values: y = c_B B⁻¹ on the sign-normalized system, mapped back
	// to the original row orientation.
	duals := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		cb := s.costPh2[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*s.m : i*s.m+s.m]
		for k, rv := range row {
			duals[k] += cb * rv
		}
	}
	for i := range duals {
		duals[i] *= s.rowSign[i]
	}

	// Encode the basis so it survives column growth: structural columns
	// by index, aux (slack/surplus) and artificial columns as the bitwise
	// complement of their creation ordinal (^0 = -1 for the first aux
	// column, and so on). The ordinal depends only on the row layout, so
	// an AddColumn — which renumbers every aux column — leaves the
	// encoding's meaning intact; tryWarmBasis decodes against the current
	// layout.
	enc := make(Basis, s.m)
	for i, j := range s.basis {
		if j < s.nStr {
			enc[i] = j
		} else {
			enc[i] = ^(j - s.nStr)
		}
	}

	return &Solution{
		X:          x,
		Objective:  obj,
		Duals:      duals,
		Iterations: s.iters,
		Basis:      enc,
	}
}

// dualRay computes the phase-1 dual vector y = c_B^{ph1} B⁻¹ mapped back
// to original row orientation. At a phase-1 optimum with positive
// objective it is a Farkas certificate of infeasibility: y·b equals the
// residual infeasibility (> 0) while every column — structural and
// slack/surplus alike — prices out y·A_j ≤ tol (otherwise phase 1 would
// have pivoted it in to reduce the objective further).
func (s *simplex) dualRay() []float64 {
	ray := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		cb := s.costPh1[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i*s.m : i*s.m+s.m]
		for k, rv := range row {
			ray[k] += cb * rv
		}
	}
	for i := range ray {
		ray[i] *= s.rowSign[i]
	}
	return ray
}

var errUnboundedInternal = fmt.Errorf("lp: internal unbounded marker")

// run performs simplex iterations with the given cost vector until
// optimality. Columns ≥ banFrom are never chosen to enter (used to keep
// artificials out in phase 2).
func (s *simplex) run(cost []float64, banFrom int, phase1 bool) error {
	if phase1 {
		banFrom = s.n // artificials may move during phase 1
	}
	m := s.m
	sinceRefactor := 0
	for {
		if s.iters >= s.maxIters {
			return ErrIterationLimit
		}
		if sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return err
			}
			sinceRefactor = 0
		}

		// y = c_B^T · B^{-1}
		y := s.y
		for k := range y {
			y[k] = 0
		}
		for i := 0; i < m; i++ {
			cb := cost[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k, rv := range row {
				y[k] += cb * rv
			}
		}

		enter := s.price(cost, banFrom, y)
		if enter < 0 {
			return nil // optimal for this cost vector
		}

		// Direction d = B^{-1} A_enter.
		dir := s.dir
		cs, ce := s.colPtr[enter], s.colPtr[enter+1]
		for i := 0; i < m; i++ {
			row := s.binv[i*m : i*m+m]
			sum := 0.0
			for t := cs; t < ce; t++ {
				sum += row[s.rowInd[t]] * s.vals[t]
			}
			dir[i] = sum
		}

		// Ratio test. Basic artificials must never rise above zero: if the
		// pivot would increase one (dir < 0 for a zero-valued artificial),
		// it blocks at θ = 0 and leaves the basis instead.
		leave := -1
		theta := math.Inf(1)
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			if dir[i] > s.tol {
				r := s.xB[i] / dir[i]
				if r < theta-s.tol || (r < theta+s.tol && (leave == -1 || bj < s.basis[leave])) {
					theta = r
					leave = i
				}
			} else if !phase1 && bj >= banFrom && dir[i] < -s.tol && s.xB[i] <= s.tol {
				// Zero-valued artificial would grow; force it out now.
				theta = 0
				leave = i
				break
			}
		}
		if leave < 0 {
			return errUnboundedInternal
		}
		if theta < 0 {
			theta = 0
		}

		if theta <= s.tol {
			s.degenerate++
		} else {
			s.degenerate = 0
		}

		// Update basic values and basis inverse.
		piv := dir[leave]
		for i := 0; i < m; i++ {
			if i != leave {
				s.xB[i] -= theta * dir[i]
				if s.xB[i] < 0 && s.xB[i] > -1e-9 {
					s.xB[i] = 0
				}
			}
		}
		s.xB[leave] = theta

		rowL := s.binv[leave*m : leave*m+m]
		inv := 1 / piv
		for k := range rowL {
			rowL[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := dir[i]
			if f == 0 {
				continue
			}
			row := s.binv[i*m : i*m+m]
			for k, rv := range rowL {
				row[k] -= f * rv
			}
		}

		s.isBasic[s.basis[leave]] = false
		s.isBasic[enter] = true
		s.basis[leave] = enter
		s.iters++
		sinceRefactor++
	}
}

// price selects the entering column, or -1 at optimality.
//
// With PricingDantzig it scans every column and takes the most negative
// reduced cost (ties to the lowest index — the original solver's exact
// behavior). With PricingPartial it scans a rotating block of candidates
// and takes the block's most negative reduced cost; blocks are scanned
// in sequence (wrapping) until one yields a candidate, so a full pass is
// always completed before optimality is declared. Under prolonged
// degeneracy both degrade to Bland's rule (first eligible column by
// index), which guarantees termination.
func (s *simplex) price(cost []float64, banFrom int, y []float64) int {
	limit := banFrom
	if limit > s.n {
		limit = s.n
	}
	if limit == 0 {
		return -1
	}
	if s.degenerate >= blandThreshold {
		for j := 0; j < limit; j++ {
			if s.isBasic[j] {
				continue
			}
			if cost[j]-s.reduceDot(j, y) < -s.tol {
				return j
			}
		}
		return -1
	}
	if s.pricing == PricingDantzig {
		// One fused pass over the CSC arrays. The dot accumulates in row
		// order exactly as the sparse columns are stored, so the computed
		// reduced costs — and therefore the pivot sequence — are
		// bit-identical to the straightforward per-column evaluation.
		bestJ := -1
		best := -s.tol
		colPtr, rowInd, vals, isBasic := s.colPtr, s.rowInd, s.vals, s.isBasic
		start := colPtr[0]
		for j := 0; j < limit; j++ {
			end := colPtr[j+1]
			if isBasic[j] {
				start = end
				continue
			}
			sum := 0.0
			for t := start; t < end; t++ {
				sum += y[rowInd[t]] * vals[t]
			}
			start = end
			if d := cost[j] - sum; d < best {
				best = d
				bestJ = j
			}
		}
		return bestJ
	}
	block := limit / 8
	if block < priceBlockMin {
		block = priceBlockMin
	}
	j := s.priceStart
	if j >= limit {
		j = 0
	}
	scanned := 0
	bestJ := -1
	best := -s.tol
	for scanned < limit {
		blockEnd := scanned + block
		if blockEnd > limit {
			blockEnd = limit
		}
		for ; scanned < blockEnd; scanned++ {
			if !s.isBasic[j] {
				if d := cost[j] - s.reduceDot(j, y); d < best {
					best = d
					bestJ = j
				}
			}
			j++
			if j >= limit {
				j = 0
			}
		}
		if bestJ >= 0 {
			s.priceStart = j
			return bestJ
		}
	}
	return -1
}

// reduceDot is y · A_j over column j's sparse entries.
func (s *simplex) reduceDot(j int, y []float64) float64 {
	sum := 0.0
	for t := s.colPtr[j]; t < s.colPtr[j+1]; t++ {
		sum += y[s.rowInd[t]] * s.vals[t]
	}
	return sum
}

// pivotOutArtificials removes zero-valued artificial variables from the
// basis where possible by degenerate pivots on non-artificial columns.
// Rows whose artificial cannot be pivoted out are linearly dependent; the
// artificial stays basic at zero and the phase-2 ratio-test guard keeps it
// there.
func (s *simplex) pivotOutArtificials() {
	m := s.m
	for i := 0; i < m; i++ {
		if s.basis[i] < s.firstArtificial {
			continue
		}
		row := s.binv[i*m : i*m+m]
		for j := 0; j < s.firstArtificial; j++ {
			if s.isBasic[j] {
				continue
			}
			piv := 0.0
			for t := s.colPtr[j]; t < s.colPtr[j+1]; t++ {
				piv += row[s.rowInd[t]] * s.vals[t]
			}
			if math.Abs(piv) <= 1e-7 {
				continue
			}
			// Degenerate pivot: xB[i] is ~0, so values do not change.
			dir := s.dir
			for r2 := 0; r2 < m; r2++ {
				rw := s.binv[r2*m : r2*m+m]
				sum := 0.0
				for t := s.colPtr[j]; t < s.colPtr[j+1]; t++ {
					sum += rw[s.rowInd[t]] * s.vals[t]
				}
				dir[r2] = sum
			}
			inv := 1 / dir[i]
			for k := range row {
				row[k] *= inv
			}
			for r2 := 0; r2 < m; r2++ {
				if r2 == i {
					continue
				}
				f := dir[r2]
				if f == 0 {
					continue
				}
				rw := s.binv[r2*m : r2*m+m]
				for k, rv := range row {
					rw[k] -= f * rv
				}
			}
			s.isBasic[s.basis[i]] = false
			s.isBasic[j] = true
			s.basis[i] = j
			s.xB[i] = 0
			break
		}
	}
}

// refactorize rebuilds binv from the basis columns by Gauss–Jordan
// elimination with partial pivoting and recomputes xB, discarding drift.
func (s *simplex) refactorize() error {
	m := s.m
	// Assemble dense B augmented with I, rows flattened to width 2m.
	w := 2 * m
	if s.aug == nil {
		s.aug = make([]float64, m*w)
	}
	aug := s.aug
	for i := range aug {
		aug[i] = 0
	}
	for i := 0; i < m; i++ {
		aug[i*w+m+i] = 1
	}
	for colPos, j := range s.basis {
		for t := s.colPtr[j]; t < s.colPtr[j+1]; t++ {
			aug[s.rowInd[t]*w+colPos] = s.vals[t]
		}
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(aug[r*w+c]) > math.Abs(aug[p*w+c]) {
				p = r
			}
		}
		if math.Abs(aug[p*w+c]) < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactorization: %w", ErrIterationLimit)
		}
		if p != c {
			rc, rp := aug[c*w:c*w+w], aug[p*w:p*w+w]
			for k := range rc {
				rc[k], rp[k] = rp[k], rc[k]
			}
		}
		rc := aug[c*w : c*w+w]
		inv := 1 / rc[c]
		for k := c; k < w; k++ {
			rc[k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := aug[r*w+c]
			if f == 0 {
				continue
			}
			rr := aug[r*w : r*w+w]
			for k := c; k < w; k++ {
				rr[k] -= f * rc[k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i*m:i*m+m], aug[i*w+m:i*w+w])
	}
	// xB = B^{-1} b
	for i := 0; i < m; i++ {
		sum := 0.0
		row := s.binv[i*m : i*m+m]
		for k, rv := range row {
			sum += rv * s.b[k]
		}
		if sum < 0 && sum > -1e-9 {
			sum = 0
		}
		s.xB[i] = sum
	}
	return nil
}

func (s *simplex) objective(cost []float64) float64 {
	sum := 0.0
	for i, j := range s.basis {
		sum += cost[j] * s.xB[i]
	}
	return sum
}
