package lp

import (
	"fmt"
	"math"
)

// simplex state for one Solve call. Columns are stored sparsely; the basis
// inverse is dense (m×m), maintained by pivoting and periodically
// refactorized from scratch to shed accumulated floating-point error.
type simplex struct {
	m    int // rows
	n    int // total columns: structural + slack/surplus + artificial
	nStr int // structural columns
	nAux int // slack/surplus columns

	cols []sparseCol
	b    []float64 // rhs, non-negative after row normalization

	costPh2 []float64 // phase-2 costs (structural only; aux/artificial = 0)

	basis    []int  // basis[i] = column basic in row i
	isBasic  []bool // by column
	binv     [][]float64
	xB       []float64 // current basic values
	tol      float64
	maxIters int

	iters      int
	degenerate int // consecutive degenerate pivots, triggers Bland's rule
}

type sparseCol struct {
	idx []int
	val []float64
}

const (
	refactorEvery  = 200
	blandThreshold = 64
)

// SolveWith minimizes the objective with the given options.
func (p *Problem) SolveWith(opts Options) (*Solution, error) {
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-9
	}
	m := len(p.rows)
	if m == 0 {
		// Unconstrained non-negative minimization: each variable sits at 0
		// unless its cost is negative, in which case the LP is unbounded.
		for j, c := range p.obj {
			if c < -tol {
				return nil, fmt.Errorf("variable %d has negative cost and no constraints: %w", j, ErrUnbounded)
			}
		}
		return &Solution{X: make([]float64, p.nVars)}, nil
	}

	s := &simplex{m: m, nStr: p.nVars, tol: tol}

	// Build structural columns from the row-wise input.
	s.cols = make([]sparseCol, p.nVars, p.nVars+2*m)
	s.b = make([]float64, m)
	rowSign := make([]float64, m)
	for i, r := range p.rows {
		rowSign[i] = 1
		if r.rhs < 0 {
			rowSign[i] = -1
		}
		s.b[i] = r.rhs * rowSign[i]
	}
	// Accumulate (possibly duplicated) entries per column.
	colMaps := make([]map[int]float64, p.nVars)
	for i, r := range p.rows {
		for k, j := range r.idx {
			if colMaps[j] == nil {
				colMaps[j] = make(map[int]float64, 4)
			}
			colMaps[j][i] += r.coef[k] * rowSign[i]
		}
	}
	for j := 0; j < p.nVars; j++ {
		col := sparseCol{}
		for i := 0; i < m; i++ {
			if v, ok := colMaps[j][i]; ok && v != 0 {
				col.idx = append(col.idx, i)
				col.val = append(col.val, v)
			}
		}
		s.cols[j] = col
	}

	// Slack/surplus columns, then artificials where needed. A row's op
	// flips when its sign was normalized.
	s.basis = make([]int, m)
	needArtificial := make([]bool, m)
	for i, r := range p.rows {
		op := r.op
		if rowSign[i] < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			s.cols = append(s.cols, sparseCol{idx: []int{i}, val: []float64{1}})
			s.basis[i] = len(s.cols) - 1
		case GE:
			s.cols = append(s.cols, sparseCol{idx: []int{i}, val: []float64{-1}})
			needArtificial[i] = true
		case EQ:
			needArtificial[i] = true
		}
	}
	s.nAux = len(s.cols) - s.nStr
	firstArtificial := len(s.cols)
	for i := 0; i < m; i++ {
		if needArtificial[i] {
			s.cols = append(s.cols, sparseCol{idx: []int{i}, val: []float64{1}})
			s.basis[i] = len(s.cols) - 1
		}
	}
	s.n = len(s.cols)

	s.maxIters = opts.MaxIterations
	if s.maxIters == 0 {
		s.maxIters = 200 * (m + s.n)
		if s.maxIters < 20000 {
			s.maxIters = 20000
		}
	}

	s.isBasic = make([]bool, s.n)
	for _, j := range s.basis {
		s.isBasic[j] = true
	}
	s.binv = identity(m)
	s.xB = append([]float64(nil), s.b...)

	s.costPh2 = make([]float64, s.n)
	copy(s.costPh2, p.obj)

	// Phase 1: minimize the sum of artificials.
	if firstArtificial < s.n {
		costPh1 := make([]float64, s.n)
		for j := firstArtificial; j < s.n; j++ {
			costPh1[j] = 1
		}
		if err := s.run(costPh1, firstArtificial, true); err != nil {
			if err == errUnboundedInternal {
				// Phase 1 is bounded below by 0; this indicates numeric
				// trouble, surface as iteration trouble.
				return nil, ErrIterationLimit
			}
			return nil, err
		}
		if obj := s.objective(costPh1); obj > 1e-7 {
			return nil, ErrInfeasible
		}
		s.pivotOutArtificials(firstArtificial)
	}

	// Phase 2.
	if err := s.run(s.costPh2, firstArtificial, false); err != nil {
		if err == errUnboundedInternal {
			return nil, ErrUnbounded
		}
		return nil, err
	}

	x := make([]float64, s.nStr)
	for i, j := range s.basis {
		if j < s.nStr {
			x[j] = s.xB[i]
			if x[j] < 0 && x[j] > -1e-7 {
				x[j] = 0
			}
		}
	}
	obj := 0.0
	for j := 0; j < s.nStr; j++ {
		obj += p.obj[j] * x[j]
	}

	// Dual values: y = c_B B⁻¹ on the sign-normalized system, mapped back
	// to the original row orientation.
	duals := make([]float64, m)
	for i := 0; i < s.m; i++ {
		cb := s.costPh2[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.binv[i]
		for k := 0; k < s.m; k++ {
			duals[k] += cb * row[k]
		}
	}
	for i := range duals {
		duals[i] *= rowSign[i]
	}

	return &Solution{X: x, Objective: obj, Duals: duals, Iterations: s.iters}, nil
}

var errUnboundedInternal = fmt.Errorf("lp: internal unbounded marker")

// run performs simplex iterations with the given cost vector until
// optimality. Columns ≥ banFrom are never chosen to enter (used to keep
// artificials out in phase 2).
func (s *simplex) run(cost []float64, banFrom int, phase1 bool) error {
	if phase1 {
		banFrom = s.n // artificials may move during phase 1
	}
	sinceRefactor := 0
	for {
		if s.iters >= s.maxIters {
			return ErrIterationLimit
		}
		if sinceRefactor >= refactorEvery {
			if err := s.refactorize(); err != nil {
				return err
			}
			sinceRefactor = 0
		}

		// y = c_B^T · B^{-1}
		y := make([]float64, s.m)
		for i := 0; i < s.m; i++ {
			cb := cost[s.basis[i]]
			if cb == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < s.m; k++ {
				y[k] += cb * row[k]
			}
		}

		useBland := s.degenerate >= blandThreshold
		enter := -1
		best := -s.tol
		for j := 0; j < banFrom && j < s.n; j++ {
			if s.isBasic[j] {
				continue
			}
			d := cost[j] - dotSparse(y, s.cols[j])
			if d < -s.tol {
				if useBland {
					enter = j
					break
				}
				if d < best {
					best = d
					enter = j
				}
			}
		}
		if enter < 0 {
			return nil // optimal for this cost vector
		}

		// Direction d = B^{-1} A_enter.
		dir := make([]float64, s.m)
		col := s.cols[enter]
		for i := 0; i < s.m; i++ {
			row := s.binv[i]
			sum := 0.0
			for k, r := range col.idx {
				sum += row[r] * col.val[k]
			}
			dir[i] = sum
		}

		// Ratio test. Basic artificials must never rise above zero: if the
		// pivot would increase one (dir < 0 for a zero-valued artificial),
		// it blocks at θ = 0 and leaves the basis instead.
		leave := -1
		theta := math.Inf(1)
		for i := 0; i < s.m; i++ {
			bj := s.basis[i]
			if dir[i] > s.tol {
				r := s.xB[i] / dir[i]
				if r < theta-s.tol || (r < theta+s.tol && (leave == -1 || bj < s.basis[leave])) {
					theta = r
					leave = i
				}
			} else if !phase1 && bj >= banFrom && dir[i] < -s.tol && s.xB[i] <= s.tol {
				// Zero-valued artificial would grow; force it out now.
				theta = 0
				leave = i
				break
			}
		}
		if leave < 0 {
			return errUnboundedInternal
		}
		if theta < 0 {
			theta = 0
		}

		if theta <= s.tol {
			s.degenerate++
		} else {
			s.degenerate = 0
		}

		// Update basic values and basis inverse.
		piv := dir[leave]
		for i := 0; i < s.m; i++ {
			if i != leave {
				s.xB[i] -= theta * dir[i]
				if s.xB[i] < 0 && s.xB[i] > -1e-9 {
					s.xB[i] = 0
				}
			}
		}
		s.xB[leave] = theta

		rowL := s.binv[leave]
		inv := 1 / piv
		for k := 0; k < s.m; k++ {
			rowL[k] *= inv
		}
		for i := 0; i < s.m; i++ {
			if i == leave {
				continue
			}
			f := dir[i]
			if f == 0 {
				continue
			}
			row := s.binv[i]
			for k := 0; k < s.m; k++ {
				row[k] -= f * rowL[k]
			}
		}

		s.isBasic[s.basis[leave]] = false
		s.isBasic[enter] = true
		s.basis[leave] = enter
		s.iters++
		sinceRefactor++
	}
}

// pivotOutArtificials removes zero-valued artificial variables from the
// basis where possible by degenerate pivots on non-artificial columns.
// Rows whose artificial cannot be pivoted out are linearly dependent; the
// artificial stays basic at zero and the phase-2 ratio-test guard keeps it
// there.
func (s *simplex) pivotOutArtificials(firstArtificial int) {
	for i := 0; i < s.m; i++ {
		if s.basis[i] < firstArtificial {
			continue
		}
		row := s.binv[i]
		for j := 0; j < firstArtificial; j++ {
			if s.isBasic[j] {
				continue
			}
			col := s.cols[j]
			piv := 0.0
			for k, r := range col.idx {
				piv += row[r] * col.val[k]
			}
			if math.Abs(piv) <= 1e-7 {
				continue
			}
			// Degenerate pivot: xB[i] is ~0, so values do not change.
			dir := make([]float64, s.m)
			for r2 := 0; r2 < s.m; r2++ {
				rw := s.binv[r2]
				sum := 0.0
				for k, r := range col.idx {
					sum += rw[r] * col.val[k]
				}
				dir[r2] = sum
			}
			inv := 1 / dir[i]
			for k := 0; k < s.m; k++ {
				row[k] *= inv
			}
			for r2 := 0; r2 < s.m; r2++ {
				if r2 == i {
					continue
				}
				f := dir[r2]
				if f == 0 {
					continue
				}
				rw := s.binv[r2]
				for k := 0; k < s.m; k++ {
					rw[k] -= f * row[k]
				}
			}
			s.isBasic[s.basis[i]] = false
			s.isBasic[j] = true
			s.basis[i] = j
			s.xB[i] = 0
			break
		}
	}
}

// refactorize rebuilds binv from the basis columns by Gauss–Jordan
// elimination with partial pivoting and recomputes xB, discarding drift.
func (s *simplex) refactorize() error {
	m := s.m
	// Assemble dense B augmented with I.
	aug := make([][]float64, m)
	for i := range aug {
		aug[i] = make([]float64, 2*m)
		aug[i][m+i] = 1
	}
	for colPos, j := range s.basis {
		col := s.cols[j]
		for k, r := range col.idx {
			aug[r][colPos] = col.val[k]
		}
	}
	for c := 0; c < m; c++ {
		// Partial pivot.
		p := c
		for r := c + 1; r < m; r++ {
			if math.Abs(aug[r][c]) > math.Abs(aug[p][c]) {
				p = r
			}
		}
		if math.Abs(aug[p][c]) < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactorization: %w", ErrIterationLimit)
		}
		aug[c], aug[p] = aug[p], aug[c]
		inv := 1 / aug[c][c]
		for k := c; k < 2*m; k++ {
			aug[c][k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == c {
				continue
			}
			f := aug[r][c]
			if f == 0 {
				continue
			}
			for k := c; k < 2*m; k++ {
				aug[r][k] -= f * aug[c][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], aug[i][m:])
	}
	// xB = B^{-1} b
	for i := 0; i < m; i++ {
		sum := 0.0
		row := s.binv[i]
		for k := 0; k < m; k++ {
			sum += row[k] * s.b[k]
		}
		if sum < 0 && sum > -1e-9 {
			sum = 0
		}
		s.xB[i] = sum
	}
	return nil
}

func (s *simplex) objective(cost []float64) float64 {
	sum := 0.0
	for i, j := range s.basis {
		sum += cost[j] * s.xB[i]
	}
	return sum
}

func dotSparse(dense []float64, col sparseCol) float64 {
	sum := 0.0
	for k, r := range col.idx {
		sum += dense[r] * col.val[k]
	}
	return sum
}

func identity(m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		out[i][i] = 1
	}
	return out
}
