package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStrongDuality: at the optimum, the dual objective Σ y_i b_i must
// equal the primal objective (strong duality), and the duals must price
// the columns correctly: c_j − Σ_i y_i a_ij ≥ 0 for every variable
// (dual feasibility / non-negative reduced costs at optimality).
func TestStrongDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		p := NewProblem(nv)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = rng.Float64() * 5 // non-negative costs: bounded LP
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		type row struct {
			a   []float64
			op  Op
			rhs float64
		}
		var rows []row
		// A couple of >= rows force non-trivial optima; box rows keep the
		// region bounded.
		for i := 0; i < 2; i++ {
			a := make([]float64, nv)
			idx := make([]int, nv)
			for j := range a {
				a[j] = 0.2 + rng.Float64()
				idx[j] = j
			}
			rhs := 1 + rng.Float64()*3
			if err := p.AddConstraint(idx, a, GE, rhs); err != nil {
				return false
			}
			rows = append(rows, row{a: a, op: GE, rhs: rhs})
		}
		for j := 0; j < nv; j++ {
			if err := p.AddConstraint([]int{j}, []float64{1}, LE, 10); err != nil {
				return false
			}
			a := make([]float64, nv)
			a[j] = 1
			rows = append(rows, row{a: a, op: LE, rhs: 10})
		}

		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Strong duality.
		dualObj := 0.0
		for i, r := range rows {
			dualObj += sol.Duals[i] * r.rhs
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6 {
			return false
		}
		// Dual feasibility: reduced costs non-negative.
		for j := 0; j < nv; j++ {
			reduced := obj[j]
			for i, r := range rows {
				reduced -= sol.Duals[i] * r.a[j]
			}
			if reduced < -1e-6 {
				return false
			}
		}
		// Dual sign conventions for a minimization: y ≥ 0 on ≥ rows,
		// y ≤ 0 on ≤ rows.
		for i, r := range rows {
			switch r.op {
			case GE:
				if sol.Duals[i] < -1e-7 {
					return false
				}
			case LE:
				if sol.Duals[i] > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestComplementarySlackness: a constraint with nonzero dual must be
// tight at the optimum.
func TestComplementarySlackness(t *testing.T) {
	// min 2x + y s.t. x + y >= 3, x >= 1, x,y <= 10.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, GE, 3)
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 1)
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 10)
	mustConstraint(t, p, []int{1}, []float64{1}, LE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimum x=1, y=2: row 0 tight (dual = 1: raising demand raises cost
	// by 1 via y), row 1 tight (dual = 1: x is costlier than y by 1),
	// rows 2-3 slack → dual 0.
	lhs := []float64{sol.X[0] + sol.X[1], sol.X[0], sol.X[0], sol.X[1]}
	rhs := []float64{3, 1, 10, 10}
	for i := range rhs {
		slack := math.Abs(lhs[i] - rhs[i])
		if slack > 1e-7 && math.Abs(sol.Duals[i]) > 1e-7 {
			t.Errorf("row %d: slack %v but dual %v", i, slack, sol.Duals[i])
		}
	}
	if math.Abs(sol.Duals[0]-1) > 1e-7 || math.Abs(sol.Duals[1]-1) > 1e-7 {
		t.Errorf("duals = %v, want [1 1 0 0]", sol.Duals)
	}
}

// TestDualPredictsSensitivity: perturbing a tight constraint's rhs by eps
// changes the optimum by about dual·eps.
func TestDualPredictsSensitivity(t *testing.T) {
	build := func(demand float64) *Problem {
		p := NewProblem(2)
		if err := p.SetObjective([]float64{3, 5}); err != nil {
			t.Fatal(err)
		}
		mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, GE, demand)
		mustConstraint(t, p, []int{0}, []float64{1}, LE, 4)
		mustConstraint(t, p, []int{1}, []float64{1}, LE, 8)
		return p
	}
	base, err := build(6).Solve()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	bumped, err := build(6 + eps).Solve()
	if err != nil {
		t.Fatal(err)
	}
	predicted := base.Objective + base.Duals[0]*eps
	if math.Abs(bumped.Objective-predicted) > 1e-6 {
		t.Errorf("objective after bump = %v, dual predicted %v", bumped.Objective, predicted)
	}
}
