package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStrongDuality: at the optimum, the dual objective Σ y_i b_i must
// equal the primal objective (strong duality), and the duals must price
// the columns correctly: c_j − Σ_i y_i a_ij ≥ 0 for every variable
// (dual feasibility / non-negative reduced costs at optimality).
func TestStrongDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		p := NewProblem(nv)
		obj := make([]float64, nv)
		for j := range obj {
			obj[j] = rng.Float64() * 5 // non-negative costs: bounded LP
		}
		if err := p.SetObjective(obj); err != nil {
			return false
		}
		type row struct {
			a   []float64
			op  Op
			rhs float64
		}
		var rows []row
		// A couple of >= rows force non-trivial optima; box rows keep the
		// region bounded.
		for i := 0; i < 2; i++ {
			a := make([]float64, nv)
			idx := make([]int, nv)
			for j := range a {
				a[j] = 0.2 + rng.Float64()
				idx[j] = j
			}
			rhs := 1 + rng.Float64()*3
			if err := p.AddConstraint(idx, a, GE, rhs); err != nil {
				return false
			}
			rows = append(rows, row{a: a, op: GE, rhs: rhs})
		}
		for j := 0; j < nv; j++ {
			if err := p.AddConstraint([]int{j}, []float64{1}, LE, 10); err != nil {
				return false
			}
			a := make([]float64, nv)
			a[j] = 1
			rows = append(rows, row{a: a, op: LE, rhs: 10})
		}

		sol, err := p.Solve()
		if err != nil {
			return false
		}
		// Strong duality.
		dualObj := 0.0
		for i, r := range rows {
			dualObj += sol.Duals[i] * r.rhs
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6 {
			return false
		}
		// Dual feasibility: reduced costs non-negative.
		for j := 0; j < nv; j++ {
			reduced := obj[j]
			for i, r := range rows {
				reduced -= sol.Duals[i] * r.a[j]
			}
			if reduced < -1e-6 {
				return false
			}
		}
		// Dual sign conventions for a minimization: y ≥ 0 on ≥ rows,
		// y ≤ 0 on ≤ rows.
		for i, r := range rows {
			switch r.op {
			case GE:
				if sol.Duals[i] < -1e-7 {
					return false
				}
			case LE:
				if sol.Duals[i] > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestComplementarySlackness: a constraint with nonzero dual must be
// tight at the optimum.
func TestComplementarySlackness(t *testing.T) {
	// min 2x + y s.t. x + y >= 3, x >= 1, x,y <= 10.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{2, 1}); err != nil {
		t.Fatal(err)
	}
	mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, GE, 3)
	mustConstraint(t, p, []int{0}, []float64{1}, GE, 1)
	mustConstraint(t, p, []int{0}, []float64{1}, LE, 10)
	mustConstraint(t, p, []int{1}, []float64{1}, LE, 10)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Optimum x=1, y=2: row 0 tight (dual = 1: raising demand raises cost
	// by 1 via y), row 1 tight (dual = 1: x is costlier than y by 1),
	// rows 2-3 slack → dual 0.
	lhs := []float64{sol.X[0] + sol.X[1], sol.X[0], sol.X[0], sol.X[1]}
	rhs := []float64{3, 1, 10, 10}
	for i := range rhs {
		slack := math.Abs(lhs[i] - rhs[i])
		if slack > 1e-7 && math.Abs(sol.Duals[i]) > 1e-7 {
			t.Errorf("row %d: slack %v but dual %v", i, slack, sol.Duals[i])
		}
	}
	if math.Abs(sol.Duals[0]-1) > 1e-7 || math.Abs(sol.Duals[1]-1) > 1e-7 {
		t.Errorf("duals = %v, want [1 1 0 0]", sol.Duals)
	}
}

// TestWarmDualTightenRelax drives randomized tighten/relax chains through
// SolveWarm and pins the dual-simplex contract: every feasible re-solve
// from a valid prior basis stays on a warm path (never a silent cold
// restart), tightening steps that break primal feasibility are repaired
// by dual pivots (Method == MethodWarmDual), and the objective always
// matches an independent cold solve of the same instance.
func TestWarmDualTightenRelax(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dualSteps, primalSteps := 0, 0
	for trial := 0; trial < 8; trial++ {
		ins := newWarmTestInstance(rng, 6+rng.Intn(6), 4+rng.Intn(4))
		warm := ins.build(t)
		sol, err := warm.SolveWith(Options{})
		if err != nil {
			t.Fatalf("trial %d: initial solve: %v", trial, err)
		}
		basis := sol.Basis
		for step := 0; step < 10; step++ {
			tighten := step%3 != 2 // mostly tighten, relax every third step
			for m := range ins.capRHS {
				f := 0.86 + 0.08*rng.Float64()
				if !tighten {
					f = 1.15 + 0.25*rng.Float64()
				}
				ins.capRHS[m] *= f
				if err := warm.SetRHS(ins.jobs+m, ins.capRHS[m]); err != nil {
					t.Fatal(err)
				}
			}
			warmSol, warmErr := warm.SolveWarm(Options{}, basis)
			coldSol, coldErr := ins.build(t).SolveWith(Options{})
			if coldErr != nil {
				if !errors.Is(coldErr, ErrInfeasible) {
					t.Fatalf("trial %d step %d: cold: %v", trial, step, coldErr)
				}
				if !errors.Is(warmErr, ErrInfeasible) {
					t.Fatalf("trial %d step %d: cold infeasible but warm: %v", trial, step, warmErr)
				}
				continue // keep the last good basis; relaxing may recover
			}
			if warmErr != nil {
				t.Fatalf("trial %d step %d: warm: %v (cold solved fine)", trial, step, warmErr)
			}
			ins.checkFeasible(t, warmSol.X)
			if diff := math.Abs(warmSol.Objective - coldSol.Objective); diff > 1e-6 {
				t.Fatalf("trial %d step %d: warm objective %v vs cold %v (diff %v)",
					trial, step, warmSol.Objective, coldSol.Objective, diff)
			}
			switch warmSol.Method {
			case MethodWarmDual:
				dualSteps++
			case MethodWarmPrimal:
				primalSteps++
			default:
				t.Fatalf("trial %d step %d: feasible re-solve from a valid basis took Method=%q",
					trial, step, warmSol.Method)
			}
			basis = warmSol.Basis
		}
	}
	// The chains must actually exercise both repair paths, or the test
	// proves nothing about the dual simplex.
	if dualSteps == 0 || primalSteps == 0 {
		t.Fatalf("repair paths not both exercised: %d dual steps, %d primal steps", dualSteps, primalSteps)
	}
	t.Logf("warm re-solves: %d dual-repaired, %d primal-feasible", dualSteps, primalSteps)
}

// TestDualPredictsSensitivity: perturbing a tight constraint's rhs by eps
// changes the optimum by about dual·eps.
func TestDualPredictsSensitivity(t *testing.T) {
	build := func(demand float64) *Problem {
		p := NewProblem(2)
		if err := p.SetObjective([]float64{3, 5}); err != nil {
			t.Fatal(err)
		}
		mustConstraint(t, p, []int{0, 1}, []float64{1, 1}, GE, demand)
		mustConstraint(t, p, []int{0}, []float64{1}, LE, 4)
		mustConstraint(t, p, []int{1}, []float64{1}, LE, 8)
		return p
	}
	base, err := build(6).Solve()
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	bumped, err := build(6 + eps).Solve()
	if err != nil {
		t.Fatal(err)
	}
	predicted := base.Objective + base.Duals[0]*eps
	if math.Abs(bumped.Objective-predicted) > 1e-6 {
		t.Errorf("objective after bump = %v, dual predicted %v", bumped.Objective, predicted)
	}
}
