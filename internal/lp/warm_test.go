package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// warmTestInstance describes a randomized assignment-with-capacities LP
// that can be rebuilt identically (for an independent cold reference
// solve) and re-solved under perturbed capacity right-hand sides.
type warmTestInstance struct {
	jobs, machines int
	obj            []float64
	capRHS         []float64 // capacity row rhs, mutated between solves
}

func newWarmTestInstance(rng *rand.Rand, jobs, machines int) *warmTestInstance {
	ins := &warmTestInstance{
		jobs:     jobs,
		machines: machines,
		obj:      make([]float64, jobs*machines),
		capRHS:   make([]float64, machines),
	}
	for i := range ins.obj {
		ins.obj[i] = rng.Float64() * 10
	}
	for w := range ins.capRHS {
		// Loose enough to start feasible: total demand is `jobs`.
		ins.capRHS[w] = float64(ins.jobs) / float64(ins.machines) * (1.2 + rng.Float64())
	}
	return ins
}

// build assembles a fresh Problem: one convexity row per job, one
// capacity row per machine.
func (ins *warmTestInstance) build(t *testing.T) *Problem {
	t.Helper()
	p := NewProblem(ins.jobs * ins.machines)
	if err := p.SetObjective(ins.obj); err != nil {
		t.Fatal(err)
	}
	idx := make([]int, ins.machines)
	ones := make([]float64, ins.machines)
	for m := range ones {
		ones[m] = 1
	}
	for j := 0; j < ins.jobs; j++ {
		for m := 0; m < ins.machines; m++ {
			idx[m] = j*ins.machines + m
		}
		if err := p.AddConstraint(idx, ones, EQ, 1); err != nil {
			t.Fatal(err)
		}
	}
	jidx := make([]int, ins.jobs)
	jones := make([]float64, ins.jobs)
	for j := range jones {
		jones[j] = 1
	}
	for m := 0; m < ins.machines; m++ {
		for j := 0; j < ins.jobs; j++ {
			jidx[j] = j*ins.machines + m
		}
		if err := p.AddConstraint(jidx, jones, LE, ins.capRHS[m]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// checkFeasible verifies x against the instance's constraints.
func (ins *warmTestInstance) checkFeasible(t *testing.T, x []float64) {
	t.Helper()
	const tol = 1e-6
	for _, v := range x {
		if v < -tol {
			t.Fatalf("negative variable %v", v)
		}
	}
	for j := 0; j < ins.jobs; j++ {
		sum := 0.0
		for m := 0; m < ins.machines; m++ {
			sum += x[j*ins.machines+m]
		}
		if math.Abs(sum-1) > tol {
			t.Fatalf("job %d convexity row sums to %v", j, sum)
		}
	}
	for m := 0; m < ins.machines; m++ {
		sum := 0.0
		for j := 0; j < ins.jobs; j++ {
			sum += x[j*ins.machines+m]
		}
		if sum > ins.capRHS[m]+tol {
			t.Fatalf("machine %d load %v exceeds capacity %v", m, sum, ins.capRHS[m])
		}
	}
}

func (ins *warmTestInstance) objective(x []float64) float64 {
	sum := 0.0
	for i, v := range x {
		sum += ins.obj[i] * v
	}
	return sum
}

// TestSolveWarmMatchesColdAcrossRHSPerturbations is the core warm-start
// property: across chains of randomized capacity perturbations, a
// warm-started re-solve must agree with an independent cold solve on
// feasibility and optimal objective (the vertices may differ on
// degenerate instances — both are optimal).
func TestSolveWarmMatchesColdAcrossRHSPerturbations(t *testing.T) {
	for _, pricing := range []Pricing{PricingDantzig, PricingPartial} {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			ins := newWarmTestInstance(rng, 6+rng.Intn(6), 4+rng.Intn(4))
			warm := ins.build(t)
			opts := Options{Pricing: pricing}
			sol, err := warm.SolveWith(opts)
			if err != nil {
				t.Fatalf("pricing %v trial %d: initial solve: %v", pricing, trial, err)
			}
			basis := sol.Basis
			for step := 0; step < 8; step++ {
				// Perturb capacities, occasionally hard enough to make the
				// problem infeasible.
				for m := range ins.capRHS {
					f := 0.5 + rng.Float64()
					if rng.Intn(12) == 0 {
						f = 0.05
					}
					ins.capRHS[m] = float64(ins.jobs) / float64(ins.machines) * f
					if err := warm.SetRHS(ins.jobs+m, ins.capRHS[m]); err != nil {
						t.Fatal(err)
					}
				}
				warmSol, warmErr := warm.SolveWarm(opts, basis)
				coldSol, coldErr := ins.build(t).SolveWith(Options{})
				if coldErr != nil {
					if !errors.Is(coldErr, ErrInfeasible) {
						t.Fatalf("pricing %v trial %d step %d: cold: %v", pricing, trial, step, coldErr)
					}
					if !errors.Is(warmErr, ErrInfeasible) {
						t.Fatalf("pricing %v trial %d step %d: cold infeasible but warm: %v",
							pricing, trial, step, warmErr)
					}
					continue // basis kept; next perturbation may be feasible again
				}
				if warmErr != nil {
					t.Fatalf("pricing %v trial %d step %d: warm: %v (cold solved fine)",
						pricing, trial, step, warmErr)
				}
				ins.checkFeasible(t, warmSol.X)
				if diff := math.Abs(warmSol.Objective - coldSol.Objective); diff > 1e-6 {
					t.Fatalf("pricing %v trial %d step %d: warm objective %v vs cold %v (diff %v)",
						pricing, trial, step, warmSol.Objective, coldSol.Objective, diff)
				}
				if got := ins.objective(warmSol.X); math.Abs(got-warmSol.Objective) > 1e-6 {
					t.Fatalf("reported objective %v does not match solution %v", warmSol.Objective, got)
				}
				basis = warmSol.Basis
			}
		}
	}
}

// TestSolveWarmNilBasisIsCold: a nil basis must behave exactly like
// SolveWith.
func TestSolveWarmNilBasisIsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ins := newWarmTestInstance(rng, 5, 4)
	a, err := ins.build(t).SolveWarm(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ins.build(t).SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("nil-basis warm objective %v != cold %v", a.Objective, b.Objective)
	}
	for i := range a.X {
		if math.Abs(a.X[i]-b.X[i]) > 1e-9 {
			t.Fatalf("x[%d]: %v != %v", i, a.X[i], b.X[i])
		}
	}
}

// TestSolveWarmBogusBasisFallsBack: malformed bases (wrong length,
// duplicates, out-of-range or artificial indices) must fall back to a
// correct cold solve rather than fail.
func TestSolveWarmBogusBasisFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ins := newWarmTestInstance(rng, 5, 4)
	want, err := ins.build(t).SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	nRows := ins.jobs + ins.machines
	bogus := []Basis{
		{},                 // wrong length
		make(Basis, nRows), // all zeros: duplicates
		func() Basis { // out of range
			b := append(Basis(nil), want.Basis...)
			b[0] = -1
			return b
		}(),
		func() Basis { // far out of range (artificial territory)
			b := append(Basis(nil), want.Basis...)
			b[0] = 1 << 20
			return b
		}(),
	}
	for i, basis := range bogus {
		sol, err := ins.build(t).SolveWarm(Options{}, basis)
		if err != nil {
			t.Fatalf("bogus basis %d: %v", i, err)
		}
		if math.Abs(sol.Objective-want.Objective) > 1e-6 {
			t.Fatalf("bogus basis %d: objective %v, want %v", i, sol.Objective, want.Objective)
		}
		ins.checkFeasible(t, sol.X)
	}
}

// TestSolveWarmAfterStructuralChange: adding a row after capturing a
// basis invalidates the workspace; SolveWarm must still return correct
// results via the cold fallback.
func TestSolveWarmAfterStructuralChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ins := newWarmTestInstance(rng, 5, 4)
	p := ins.build(t)
	sol, err := p.SolveWith(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Pin one variable to zero; the old basis no longer matches the row
	// count and must be rejected.
	if err := p.AddConstraint([]int{0}, []float64{1}, LE, 0); err != nil {
		t.Fatal(err)
	}
	warm, err := p.SolveWarm(Options{}, sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.X[0] > 1e-9 {
		t.Fatalf("x[0] = %v, want 0 after pinning", warm.X[0])
	}
}

// TestSetRHSValidation covers SetRHS's error and sign-flip paths.
func TestSetRHSValidation(t *testing.T) {
	p := NewProblem(2)
	if err := p.AddConstraint([]int{0, 1}, []float64{1, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRHS(-1, 0); err == nil {
		t.Error("SetRHS(-1) succeeded")
	}
	if err := p.SetRHS(1, 0); err == nil {
		t.Error("SetRHS out of range succeeded")
	}
	if err := p.SetRHS(0, math.NaN()); err == nil {
		t.Error("SetRHS(NaN) succeeded")
	}
	if err := p.SetRHS(0, math.Inf(1)); err == nil {
		t.Error("SetRHS(+Inf) succeeded")
	}
	if got := p.RHS(0); got != 1 {
		t.Errorf("RHS = %v, want 1", got)
	}
	if _, err := p.Solve(); err != nil {
		t.Fatal(err)
	}
	// Sign flip forces a workspace rebuild; x ≥ 0 satisfies Σx ≥ -1
	// trivially, so the optimum of min x0+x1 drops to 0.
	if err := p.SetObjective([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetRHS(0, -1); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 1e-9 {
		t.Errorf("objective %v after sign flip, want 0", sol.Objective)
	}
}

// TestRHSOnlyResolveReusesWorkspace: re-solving after SetRHS must give
// the same answer as building the problem from scratch (this is the
// skeleton-reuse path capacity sweeps rely on), for both cold and warm
// re-solves.
func TestRHSOnlyResolveReusesWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		ins := newWarmTestInstance(rng, 6, 5)
		reused := ins.build(t)
		if _, err := reused.SolveWith(Options{}); err != nil {
			t.Fatal(err)
		}
		for m := range ins.capRHS {
			ins.capRHS[m] *= 0.9 + 0.4*rng.Float64()
			if err := reused.SetRHS(ins.jobs+m, ins.capRHS[m]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := reused.SolveWith(Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ins.build(t).SolveWith(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: reused workspace objective %v, fresh build %v", trial, got.Objective, want.Objective)
		}
		for i := range got.X {
			if math.Abs(got.X[i]-want.X[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] %v != %v", trial, i, got.X[i], want.X[i])
			}
		}
	}
}
