package deploy

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// sameOutcome asserts two snapshots describe the same deployment state:
// identical placement, measures, demand model, and per-site capacities.
// Versions are allowed to differ (that is the point of the batching
// tests: same state, different publish counts).
func sameOutcome(t *testing.T, label string, a, b *plan.Snapshot) {
	t.Helper()
	if a.Response != b.Response || a.NetDelay != b.NetDelay || a.MaxLoad != b.MaxLoad {
		t.Errorf("%s: measures differ: (%v %v %v) vs (%v %v %v)",
			label, a.Response, a.NetDelay, a.MaxLoad, b.Response, b.NetDelay, b.MaxLoad)
	}
	if !reflect.DeepEqual(a.Placement.Targets(), b.Placement.Targets()) {
		t.Errorf("%s: placements differ: %v vs %v", label, a.Placement.Targets(), b.Placement.Targets())
	}
	if a.Demand != b.Demand || !reflect.DeepEqual(a.Weights, b.Weights) {
		t.Errorf("%s: demand model differs", label)
	}
	if a.Topology.Size() != b.Topology.Size() {
		t.Fatalf("%s: topology sizes differ: %d vs %d", label, a.Topology.Size(), b.Topology.Size())
	}
	for i := 0; i < a.Topology.Size(); i++ {
		if a.Topology.Site(i).Name != b.Topology.Site(i).Name {
			t.Fatalf("%s: site %d differs: %q vs %q", label, i, a.Topology.Site(i).Name, b.Topology.Site(i).Name)
		}
		if a.Topology.Capacity(i) != b.Topology.Capacity(i) {
			t.Errorf("%s: capacity of %q differs: %v vs %v",
				label, a.Topology.Site(i).Name, a.Topology.Capacity(i), b.Topology.Capacity(i))
		}
		for j := i + 1; j < a.Topology.Size(); j++ {
			if a.Topology.RTT(i, j) != b.Topology.RTT(i, j) {
				t.Errorf("%s: rtt(%d,%d) differs: %v vs %v", label, i, j, a.Topology.RTT(i, j), b.Topology.RTT(i, j))
			}
		}
	}
}

// TestCoalesceBatchEquivalentToSequential is the Coalesce correctness
// proof the coalescing rules promise: for interleaved uniform-capacity /
// per-site capacity chains (the suspected-buggy case) and randomized
// mixed-kind chains, applying the whole chain as one coalesced batch
// ends in exactly the state of applying each delta as its own batch.
// The load-bearing properties are (a) a later uniform-capacity delta
// supersedes earlier per-site deltas (the special case in supersedes),
// and (b) a later delta never moves before a surviving earlier one, so
// a per-site override issued after a uniform reset survives in order.
func TestCoalesceBatchEquivalentToSequential(t *testing.T) {
	topo := deployTopo(t)
	s := func(i int) string { return topo.Site(i).Name }
	chains := map[string][]Delta{
		"uniform-supersedes-stale-per-site": {
			{Kind: KindCapacity, Site: s(0), Value: 2},
			{Kind: KindCapacity, Site: s(1), Value: 3},
			{Kind: KindUniformCapacity, Value: 5},
		},
		"per-site-override-after-uniform": {
			{Kind: KindUniformCapacity, Value: 5},
			{Kind: KindCapacity, Site: s(0), Value: 2},
		},
		"interleaved-chain": {
			{Kind: KindCapacity, Site: s(0), Value: 2},
			{Kind: KindUniformCapacity, Value: 5},
			{Kind: KindCapacity, Site: s(0), Value: 3},
			{Kind: KindCapacity, Site: s(1), Value: 4},
			{Kind: KindUniformCapacity, Value: 2},
			{Kind: KindCapacity, Site: s(2), Value: 6},
		},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		chain := make([]Delta, 0, 40)
		for i := 0; i < 40; i++ {
			switch rng.Intn(5) {
			case 0:
				chain = append(chain, Delta{Kind: KindCapacity, Site: s(rng.Intn(topo.Size())), Value: 1 + rng.Float64()*4})
			case 1:
				chain = append(chain, Delta{Kind: KindUniformCapacity, Value: 1 + rng.Float64()*4})
			case 2:
				u := rng.Intn(topo.Size())
				v := (u + 1 + rng.Intn(topo.Size()-1)) % topo.Size()
				chain = append(chain, Delta{Kind: KindRTT, A: s(u), B: s(v), Value: 5 + rng.Float64()*100})
			case 3:
				chain = append(chain, Delta{Kind: KindDemand, Value: 1000 + rng.Float64()*20000})
			case 4:
				chain = append(chain, Delta{Kind: KindWeights, Weights: map[string]float64{
					s(rng.Intn(topo.Size())): 0.5 + rng.Float64()*3,
					s(rng.Intn(topo.Size())): 0.5 + rng.Float64()*3,
				}})
			}
		}
		chains["randomized-"+string(rune('a'+trial))] = chain
	}

	for name, chain := range chains {
		t.Run(name, func(t *testing.T) {
			seq := newManager(t, Config{})
			batch := newManager(t, Config{})
			for i, d := range chain {
				if _, err := seq.Apply([]Delta{d}); err != nil {
					t.Fatalf("sequential apply %d: %v", i, err)
				}
			}
			if _, err := batch.Apply(chain); err != nil {
				t.Fatalf("batch apply: %v", err)
			}
			sameOutcome(t, name, seq.Current().Snapshot, batch.Current().Snapshot)
		})
	}
}

// TestApplyContinuousSmallBatches documents the cost and the
// equivalence of continuous small-batch ingestion (what a probe mesh
// produces) versus client-side batching: 1k single-delta batches end in
// exactly the state of one coalesced 1k-delta batch, but publish 1000
// versions where the coalesced batch publishes 1. This is why the probe
// batcher coalesces locally and posts on a cadence.
func TestApplyContinuousSmallBatches(t *testing.T) {
	topo := deployTopo(t)
	s := func(i int) string { return topo.Site(i).Name }
	rng := rand.New(rand.NewSource(20070625))
	const n = 1000
	deltas := make([]Delta, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			u := rng.Intn(topo.Size())
			v := (u + 1 + rng.Intn(topo.Size()-1)) % topo.Size()
			deltas = append(deltas, Delta{Kind: KindRTT, A: s(u), B: s(v), Value: 5 + rng.Float64()*120})
		case 1:
			deltas = append(deltas, Delta{Kind: KindCapacity, Site: s(rng.Intn(topo.Size())), Value: 1 + rng.Float64()*4})
		case 2:
			deltas = append(deltas, Delta{Kind: KindUniformCapacity, Value: 1 + rng.Float64()*4})
		case 3:
			deltas = append(deltas, Delta{Kind: KindDemand, Value: 1000 + rng.Float64()*20000})
		case 4:
			deltas = append(deltas, Delta{Kind: KindWeights, Weights: map[string]float64{
				s(rng.Intn(topo.Size())): 0.5 + rng.Float64()*3,
			}})
		}
	}

	seq := newManager(t, Config{})
	for i, d := range deltas {
		if _, err := seq.Apply([]Delta{d}); err != nil {
			t.Fatalf("single-delta batch %d: %v", i, err)
		}
	}
	one := newManager(t, Config{})
	if _, err := one.Apply(deltas); err != nil {
		t.Fatalf("coalesced batch: %v", err)
	}

	sameOutcome(t, "1k-vs-coalesced", seq.Current().Snapshot, one.Current().Snapshot)
	// Every random continuous value changes the planner, so unbatched
	// ingestion pays one published version per delta; the coalesced batch
	// pays exactly one on top of the initial plan.
	if got := seq.Current().Snapshot.Version; got != n+1 {
		t.Errorf("sequential version %d, want %d", got, n+1)
	}
	if got := one.Current().Snapshot.Version; got != 2 {
		t.Errorf("coalesced version %d, want 2", got)
	}
	if seq.ApplyQueue() != 0 || one.ApplyQueue() != 0 {
		t.Errorf("idle ApplyQueue = %d / %d, want 0", seq.ApplyQueue(), one.ApplyQueue())
	}
}

// TestMembershipDeltas covers the add-site/remove-site wire kinds:
// churn round-trips through Apply, batches validate membership
// positionally, and membership deltas never coalesce away.
func TestMembershipDeltas(t *testing.T) {
	m := newManager(t, Config{})
	n := m.Current().Snapshot.Topology.Size()
	add := Delta{Kind: KindAddSite, Site: "probe-01", Region: "west", Lat: 39.5, Lon: -119.8, AccessMS: 3, Value: 2}

	e, err := m.Apply([]Delta{add})
	if err != nil {
		t.Fatal(err)
	}
	topo := e.Snapshot.Topology
	if topo.Size() != n+1 {
		t.Fatalf("size %d after add, want %d", topo.Size(), n+1)
	}
	idx := -1
	for i := 0; i < topo.Size(); i++ {
		if topo.Site(i).Name == "probe-01" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("added site missing from snapshot topology")
	}
	if got := topo.Capacity(idx); got != 2 {
		t.Fatalf("added site capacity %v, want 2", got)
	}
	if !strings.HasPrefix(e.Decision, "move") {
		t.Fatalf("add-site decision %q, want a placement re-plan", e.Decision)
	}

	// The synthesized RTTs must match EstimateRTT with the shared peer
	// access default — the same formula the scenario engine uses — up to
	// the metric closure (closure can only shorten paths).
	site := topology.Site{Name: "probe-01", Region: "west", Lat: 39.5, Lon: -119.8}
	for i := 0; i < topo.Size(); i++ {
		if i == idx {
			continue
		}
		est := topology.EstimateRTT(site, topo.Site(i), 0, 3, DefaultPeerAccessMS)
		if got := topo.RTT(idx, i); got > est {
			t.Fatalf("rtt(probe-01, %s) = %v, want <= estimate %v", topo.Site(i).Name, got, est)
		}
	}

	// Duplicate add and unknown remove are rejected atomically.
	if _, err := m.Apply([]Delta{add}); err == nil {
		t.Fatal("duplicate add-site accepted")
	}
	if _, err := m.Apply([]Delta{{Kind: KindRemoveSite, Site: "no-such"}}); err == nil {
		t.Fatal("remove of unknown site accepted")
	}
	// A batch adding the same site twice must fail exactly as the
	// sequential applies would — which is why membership never coalesces.
	if _, err := m.Apply([]Delta{
		{Kind: KindAddSite, Site: "probe-02", Lat: 1, Lon: 1},
		{Kind: KindAddSite, Site: "probe-02", Lat: 1, Lon: 1},
	}); err == nil {
		t.Fatal("batch with duplicate add-site accepted")
	}
	if m.Current().Snapshot.Topology.Size() != n+1 {
		t.Fatal("rejected membership batch partially applied")
	}

	// Add-then-remove in one batch round-trips through validation and
	// leaves the roster unchanged.
	if _, err := m.Apply([]Delta{
		{Kind: KindAddSite, Site: "probe-03", Lat: 10, Lon: 10},
		{Kind: KindCapacity, Site: "probe-03", Value: 4},
		{Kind: KindRemoveSite, Site: "probe-03"},
	}); err != nil {
		t.Fatalf("add/configure/remove batch: %v", err)
	}
	if m.Current().Snapshot.Topology.Size() != n+1 {
		t.Fatal("add+remove batch changed the roster")
	}

	// Remove the added site again; deltas referencing it afterwards fail.
	if _, err := m.Apply([]Delta{{Kind: KindRemoveSite, Site: "probe-01"}}); err != nil {
		t.Fatal(err)
	}
	if m.Current().Snapshot.Topology.Size() != n {
		t.Fatal("remove-site did not shrink the roster")
	}
	if _, err := m.Apply([]Delta{{Kind: KindCapacity, Site: "probe-01", Value: 1}}); err == nil {
		t.Fatal("delta for removed site accepted")
	}

	// Malformed membership deltas never reach the planner.
	for _, d := range []Delta{
		{Kind: KindAddSite},
		{Kind: KindAddSite, Site: "x", Lat: 91},
		{Kind: KindAddSite, Site: "x", Lon: -200},
		{Kind: KindAddSite, Site: "x", AccessMS: -1},
		{Kind: KindAddSite, Site: "x", Value: -2},
		{Kind: KindRemoveSite},
	} {
		if err := d.Validate(); err == nil {
			t.Errorf("invalid membership delta accepted: %+v", d)
		}
	}
}

// TestCoalesceKeepsMembershipOrder pins the coalescing rules around
// membership deltas: value deltas still coalesce across them, but
// add-site/remove-site themselves are never dropped or reordered.
func TestCoalesceKeepsMembershipOrder(t *testing.T) {
	in := []Delta{
		{Kind: KindRTT, A: "x", B: "y", Value: 5},
		{Kind: KindAddSite, Site: "z", Lat: 1, Lon: 1},
		{Kind: KindAddSite, Site: "z", Lat: 2, Lon: 2},
		{Kind: KindRemoveSite, Site: "z"},
		{Kind: KindRTT, A: "x", B: "y", Value: 7},
	}
	want := []Delta{
		{Kind: KindAddSite, Site: "z", Lat: 1, Lon: 1},
		{Kind: KindAddSite, Site: "z", Lat: 2, Lon: 2},
		{Kind: KindRemoveSite, Site: "z"},
		{Kind: KindRTT, A: "x", B: "y", Value: 7},
	}
	if got := Coalesce(in); !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %+v, want %+v", got, want)
	}
}

// TestApplyQueueGauge: the in-flight gauge the serving layer uses for
// backpressure counts queued Apply calls and drains back to zero.
func TestApplyQueueGauge(t *testing.T) {
	m := newManager(t, Config{})
	if got := m.ApplyQueue(); got != 0 {
		t.Fatalf("idle ApplyQueue = %d", got)
	}
	m.mu.Lock() // stall the apply loop
	done := make(chan error, 1)
	go func() {
		_, err := m.Apply([]Delta{{Kind: KindDemand, Value: 4000}})
		done <- err
	}()
	for m.ApplyQueue() != 1 {
		runtime.Gosched()
	}
	m.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := m.ApplyQueue(); got != 0 {
		t.Fatalf("ApplyQueue after drain = %d", got)
	}
	// A rejected batch must drain the gauge too.
	if _, err := m.Apply([]Delta{{Kind: "bogus"}}); err == nil {
		t.Fatal("bogus delta accepted")
	}
	if got := m.ApplyQueue(); got != 0 {
		t.Fatalf("ApplyQueue after rejection = %d", got)
	}
}

// TestReplanErrorIsErrReplan guards the 409-vs-400 split the serving
// layer relies on: a batch that applies but cannot be planned wraps
// ErrReplan; a malformed batch does not.
func TestReplanErrorIsErrReplan(t *testing.T) {
	m := newManager(t, Config{})
	if _, err := m.Apply([]Delta{{Kind: KindCapacity, Site: "nope", Value: 1}}); errors.Is(err, ErrReplan) {
		t.Fatal("validation error wraps ErrReplan")
	}
}
