package deploy

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// deployTopo builds a compact three-region WAN (18 sites) so manager
// tests stay fast even under the race detector.
func deployTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "deploy-test-18",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 6, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func deployPlanConfig() plan.Config {
	return plan.Config{
		System:       plan.SystemSpec{Family: "grid", Param: 3},
		Strategy:     plan.StratLP,
		Demand:       8000,
		Reproducible: true,
	}
}

func newManager(t testing.TB, cfg Config) *Manager {
	t.Helper()
	p, err := plan.New(deployTopo(t), deployPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// driftDeltas builds RTT deltas that make every link touching the
// current placement's support sites f times slower — a drift that makes
// the construction want to move the placement.
func driftDeltas(e *Entry, factor float64) []Delta {
	snap := e.Snapshot
	topo := snap.Topology
	inSupport := make(map[int]bool)
	for _, w := range snap.Placement.Targets() {
		inSupport[w] = true
	}
	var ds []Delta
	for u := 0; u < topo.Size(); u++ {
		for v := u + 1; v < topo.Size(); v++ {
			if !inSupport[u] && !inSupport[v] {
				continue
			}
			ds = append(ds, Delta{
				Kind:  KindRTT,
				A:     topo.Site(u).Name,
				B:     topo.Site(v).Name,
				Value: topo.RTT(u, v) * factor,
			})
		}
	}
	return ds
}

// TestDemandDeltaIsEvalOnly: demand telemetry must flow through the
// cheapest path — an eval-only incremental re-plan, never a cold plan.
func TestDemandDeltaIsEvalOnly(t *testing.T) {
	m := newManager(t, Config{MoveCost: 5})
	initial := m.Current()
	if initial.Snapshot.Version != 1 || initial.Decision != "initial" {
		t.Fatalf("initial entry: %+v", initial)
	}
	e, err := m.Apply([]Delta{{Kind: KindDemand, Value: 16000}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Snapshot.Version != 2 {
		t.Fatalf("version %d after one delta, want 2", e.Snapshot.Version)
	}
	if !e.Snapshot.Provenance.EvalOnly() {
		t.Fatalf("demand delta recomputed %v, want eval only", e.Snapshot.RecomputedNames())
	}
	if e.Decision != "adopt (eval-only)" {
		t.Fatalf("decision %q", e.Decision)
	}
	if !reflect.DeepEqual(e.Snapshot.Placement.Targets(), initial.Snapshot.Placement.Targets()) {
		t.Fatal("demand delta moved the placement")
	}
}

// TestHysteresis is the adaptation acceptance test: the same drift holds
// the placement under a high move cost (while the strategy re-optimizes
// for the new RTTs) and moves it under a low one.
func TestHysteresis(t *testing.T) {
	hold := newManager(t, Config{MoveCost: 1e9})
	move := newManager(t, Config{MoveCost: 1e-9})
	initial := hold.Current()
	drift := driftDeltas(initial, 8)

	me, err := move.Apply(drift)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(me.Decision, "move (gain ") {
		t.Fatalf("low-cost manager decided %q, want a gain-driven move", me.Decision)
	}
	moved := me.Snapshot.Placement.Targets()
	if reflect.DeepEqual(moved, initial.Snapshot.Placement.Targets()) {
		t.Fatal("drift did not actually move the placement; the hold test below would be vacuous")
	}

	he, err := hold.Apply(drift)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(he.Decision, "hold (gain ") {
		t.Fatalf("high-cost manager decided %q, want hold", he.Decision)
	}
	if !reflect.DeepEqual(he.Snapshot.Placement.Targets(), initial.Snapshot.Placement.Targets()) {
		t.Fatal("hold decision changed the placement")
	}
	if !he.Snapshot.Provenance.Pinned {
		t.Error("held snapshot not flagged as pinned")
	}
	recomputed := he.Snapshot.RecomputedNames()
	found := false
	for _, s := range recomputed {
		if s == "strategy" {
			found = true
		}
	}
	if !found {
		t.Errorf("hold re-plan recomputed %v; the strategy must re-optimize for the new RTTs", recomputed)
	}
	// The held plan pays for keeping its placement: it can never beat
	// the moved plan under identical conditions.
	if he.Snapshot.Response < me.Snapshot.Response-1e-9 {
		t.Errorf("held response %.3f beats moved response %.3f", he.Snapshot.Response, me.Snapshot.Response)
	}

	// The hold persists across later free re-plans.
	he2, err := hold.Apply([]Delta{{Kind: KindDemand, Value: 12000}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(he2.Decision, "adopt") || !he2.Snapshot.Provenance.Pinned {
		t.Fatalf("post-hold demand delta: decision %q pinned %v", he2.Decision, he2.Snapshot.Provenance.Pinned)
	}
	if !reflect.DeepEqual(he2.Snapshot.Placement.Targets(), initial.Snapshot.Placement.Targets()) {
		t.Fatal("pinned placement drifted on a demand re-plan")
	}
}

// TestCoalesce pins the batch-collapsing rules.
func TestCoalesce(t *testing.T) {
	cases := []struct {
		name string
		in   []Delta
		want []Delta
	}{
		{
			name: "last demand wins",
			in:   []Delta{{Kind: KindDemand, Value: 1}, {Kind: KindDemand, Value: 2}},
			want: []Delta{{Kind: KindDemand, Value: 2}},
		},
		{
			name: "rtt pair is unordered",
			in:   []Delta{{Kind: KindRTT, A: "x", B: "y", Value: 10}, {Kind: KindRTT, A: "y", B: "x", Value: 20}},
			want: []Delta{{Kind: KindRTT, A: "y", B: "x", Value: 20}},
		},
		{
			name: "uniform capacity subsumes per-site",
			in:   []Delta{{Kind: KindCapacity, Site: "x", Value: 2}, {Kind: KindUniformCapacity, Value: 5}},
			want: []Delta{{Kind: KindUniformCapacity, Value: 5}},
		},
		{
			name: "per-site after uniform survives in order",
			in:   []Delta{{Kind: KindUniformCapacity, Value: 5}, {Kind: KindCapacity, Site: "x", Value: 2}},
			want: []Delta{{Kind: KindUniformCapacity, Value: 5}, {Kind: KindCapacity, Site: "x", Value: 2}},
		},
		{
			name: "distinct sites kept",
			in:   []Delta{{Kind: KindCapacity, Site: "x", Value: 2}, {Kind: KindCapacity, Site: "y", Value: 3}},
			want: []Delta{{Kind: KindCapacity, Site: "x", Value: 2}, {Kind: KindCapacity, Site: "y", Value: 3}},
		},
	}
	for _, tc := range cases {
		if got := Coalesce(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Coalesce = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestDeltaValidation rejects malformed deltas before they touch a
// deployment.
func TestDeltaValidation(t *testing.T) {
	bad := []Delta{
		{},
		{Kind: "frobnicate"},
		{Kind: KindRTT, A: "x"},
		{Kind: KindRTT, A: "x", B: "x", Value: 10},
		{Kind: KindRTT, A: "x", B: "y", Value: 0},
		{Kind: KindRTT, A: "x", B: "y", Value: -3},
		{Kind: KindCapacity, Value: 1},
		{Kind: KindCapacity, Site: "x", Value: 0},
		{Kind: KindUniformCapacity, Value: -1},
		{Kind: KindDemand, Value: -1},
		{Kind: KindWeights, Weights: map[string]float64{"x": 0}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("invalid delta %d (%+v) accepted", i, d)
		}
	}
	good := []Delta{
		{Kind: KindRTT, A: "x", B: "y", Value: 10},
		{Kind: KindCapacity, Site: "x", Value: 1},
		{Kind: KindUniformCapacity, Value: 0.8},
		{Kind: KindDemand, Value: 0},
		{Kind: KindWeights},
		{Kind: KindWeights, Weights: map[string]float64{"x": 2}},
	}
	for i, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("valid delta %d rejected: %v", i, err)
		}
	}

	// Unknown site names are caught at apply time, atomically: the batch
	// is rejected before any delta lands.
	m := newManager(t, Config{})
	before := m.Current().Snapshot.Version
	_, err := m.Apply([]Delta{
		{Kind: KindDemand, Value: 999},
		{Kind: KindCapacity, Site: "no-such-site", Value: 1},
	})
	if err == nil {
		t.Fatal("unknown site accepted")
	}
	if got := m.Current().Snapshot.Version; got != before {
		t.Fatalf("rejected batch still published version %d", got)
	}
	if m.Current().Snapshot.Demand == 999 {
		t.Fatal("rejected batch partially applied")
	}
}

// TestWait exercises the long-poll path: a waiter blocks until the next
// publish, and a cancelled context returns the current entry.
func TestWait(t *testing.T) {
	m := newManager(t, Config{})
	cur := m.Current().Snapshot.Version

	type result struct {
		e   *Entry
		err error
	}
	done := make(chan result, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e, err := m.Wait(ctx, cur)
		done <- result{e, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, err := m.Apply([]Delta{{Kind: KindDemand, Value: 4000}}); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.e.Snapshot.Version != cur+1 {
		t.Fatalf("wait returned version %d, want %d", r.e.Snapshot.Version, cur+1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	e, err := m.Wait(ctx, r.e.Snapshot.Version)
	if err == nil {
		t.Fatal("expired wait returned without error")
	}
	if e.Snapshot.Version != r.e.Snapshot.Version {
		t.Fatalf("expired wait served version %d, want current %d", e.Snapshot.Version, r.e.Snapshot.Version)
	}
}

// TestNotify exercises the epoch-broadcast park protocol the serving
// layer builds on: fetch the channel, re-check, park — one publish
// closes the fetched channel and wakes every parked receiver, and a
// channel fetched after the publish is a fresh (open) epoch.
func TestNotify(t *testing.T) {
	m := newManager(t, Config{})
	ch := m.Notify()
	if ch2 := m.Notify(); ch != ch2 {
		t.Fatal("Notify returned distinct channels with no publish in between")
	}
	select {
	case <-ch:
		t.Fatal("epoch channel closed before any publish")
	default:
	}

	const parked = 8
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	if _, err := m.Apply([]Delta{{Kind: KindDemand, Value: 4000}}); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // the single close woke all of them
	select {
	case <-ch:
	default:
		t.Fatal("pre-publish channel not closed by the publish")
	}
	if next := m.Notify(); next == ch {
		t.Fatal("post-publish Notify returned the closed epoch")
	}
}

// TestManagerConcurrent hammers a manager with concurrent delta posts
// and snapshot reads (run it with -race): versions must be monotonic
// from every reader's point of view, and every published snapshot must
// equal a cold plan of the applied-delta prefix it corresponds to.
func TestManagerConcurrent(t *testing.T) {
	topo := deployTopo(t)
	p, err := plan.New(topo, deployPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, Config{MoveCost: 0, RecordDeltas: true, HistoryLimit: 4096})
	if err != nil {
		t.Fatal(err)
	}
	siteName := func(i int) string { return topo.Site(i).Name }

	const appliers = 4
	const batches = 5
	var stop atomic.Bool
	var wgRead, wgApply sync.WaitGroup

	// Readers: versions never go backwards; Current never blocks.
	readerErr := make(chan error, 8)
	for r := 0; r < 3; r++ {
		wgRead.Add(1)
		go func() {
			defer wgRead.Done()
			last := uint64(0)
			for !stop.Load() {
				v := m.Current().Snapshot.Version
				if v < last {
					readerErr <- fmt.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	// A long-poll reader rides the notification path.
	wgRead.Add(1)
	go func() {
		defer wgRead.Done()
		after := uint64(0)
		for !stop.Load() {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			e, _ := m.Wait(ctx, after)
			cancel()
			if e.Snapshot.Version < after {
				readerErr <- fmt.Errorf("wait went backwards: %d after %d", e.Snapshot.Version, after)
				return
			}
			after = e.Snapshot.Version
		}
	}()

	// Appliers: concurrent batches of valid deltas.
	applyErr := make(chan error, appliers)
	for a := 0; a < appliers; a++ {
		wgApply.Add(1)
		go func(seed int64) {
			defer wgApply.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < batches; i++ {
				var batch []Delta
				switch rng.Intn(3) {
				case 0:
					batch = append(batch, Delta{Kind: KindDemand, Value: float64(rng.Intn(5)) * 4000})
				case 1:
					batch = append(batch, Delta{
						Kind: KindCapacity, Site: siteName(rng.Intn(topo.Size())),
						Value: 0.7 + rng.Float64()*0.3,
					})
				default:
					u := rng.Intn(topo.Size())
					v := (u + 1 + rng.Intn(topo.Size()-1)) % topo.Size()
					batch = append(batch, Delta{
						Kind: KindRTT, A: siteName(u), B: siteName(v),
						Value: 5 + rng.Float64()*295,
					})
				}
				if _, err := m.Apply(batch); err != nil {
					applyErr <- err
					return
				}
			}
		}(int64(a) * 1237)
	}

	doneApply := make(chan struct{})
	go func() {
		wgApply.Wait()
		close(doneApply)
	}()
	select {
	case err := <-applyErr:
		t.Fatal(err)
	case <-time.After(2 * time.Minute):
		t.Fatal("concurrent test wedged")
	case <-doneApply:
	}
	stop.Store(true)
	wgRead.Wait()
	select {
	case err := <-applyErr:
		t.Fatal(err)
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// Verification: versions strictly increase through history, and each
	// entry reproduces a cold plan of its applied-delta prefix.
	entries := m.History()
	log := m.DeltaLog()
	if len(log) != appliers*batches {
		t.Fatalf("delta log has %d entries, want %d", len(log), appliers*batches)
	}
	last := uint64(0)
	for _, e := range entries {
		if e.Snapshot.Version <= last && last != 0 {
			t.Fatalf("history versions not strictly increasing: %d after %d", e.Snapshot.Version, last)
		}
		last = e.Snapshot.Version
	}
	for _, e := range entries {
		cold, err := plan.New(topo, deployPlanConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range log[:e.Applied] {
			if err := d.ApplyTo(cold); err != nil {
				t.Fatal(err)
			}
		}
		ref, err := cold.Plan()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Placement.Targets(), e.Snapshot.Placement.Targets()) {
			t.Fatalf("version %d placement diverged from cold plan of its %d-delta prefix", e.Snapshot.Version, e.Applied)
		}
		if ref.Response != e.Snapshot.Response || ref.NetDelay != e.Snapshot.NetDelay {
			t.Fatalf("version %d measures (%v, %v) != cold (%v, %v) at prefix %d",
				e.Snapshot.Version, e.Snapshot.Response, e.Snapshot.NetDelay, ref.Response, ref.NetDelay, e.Applied)
		}
	}
}

// TestHoldProvenanceCarriesBatchDeltas: a hold decision publishes the
// holdover snapshot, but its provenance must describe the user deltas
// that drove the re-plan, not the manager's internal pin bookkeeping.
func TestHoldProvenanceCarriesBatchDeltas(t *testing.T) {
	m := newManager(t, Config{MoveCost: 1e9})
	drift := driftDeltas(m.Current(), 8)
	e, err := m.Apply(drift)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(e.Decision, "hold") {
		t.Skipf("drift did not trigger a hold (%q); covered by TestHysteresis", e.Decision)
	}
	ds := e.Snapshot.Provenance.Deltas
	if len(ds) == 0 {
		t.Fatal("hold snapshot has no provenance deltas")
	}
	sawRTT := false
	for _, d := range ds {
		if strings.HasPrefix(d, "rtt ") {
			sawRTT = true
		}
		if d == "pin-placement" {
			t.Errorf("hold provenance leaks internal pin note: %v", ds)
		}
	}
	if !sawRTT {
		t.Errorf("hold provenance lost the batch's rtt deltas: %v", ds)
	}
}

// TestNoSpuriousVersionAfterMove: the planner is intentionally left
// dirty after a move decision (the candidate placement reconstructs
// lazily); a following no-op batch must not publish a new version for
// that leftover.
func TestNoSpuriousVersionAfterMove(t *testing.T) {
	m := newManager(t, Config{MoveCost: 1e-9})
	drift := driftDeltas(m.Current(), 8)
	e, err := m.Apply(drift)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(e.Decision, "move") {
		t.Fatalf("drift decided %q, want move", e.Decision)
	}
	v := e.Snapshot.Version
	// Value no-op: demand equals the current demand.
	e2, err := m.Apply([]Delta{{Kind: KindDemand, Value: e.Snapshot.Demand}})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Snapshot.Version != v {
		t.Fatalf("no-op batch published version %d after %d", e2.Snapshot.Version, v)
	}
	// A real delta after the move still publishes, and its snapshot
	// keeps the moved placement.
	e3, err := m.Apply([]Delta{{Kind: KindDemand, Value: 2 * e.Snapshot.Demand}})
	if err != nil {
		t.Fatal(err)
	}
	if e3.Snapshot.Version <= v {
		t.Fatalf("real delta after move did not publish (version %d)", e3.Snapshot.Version)
	}
	if !reflect.DeepEqual(e3.Snapshot.Placement.Targets(), e.Snapshot.Placement.Targets()) {
		t.Fatal("post-move re-plan changed the placement without a placement delta")
	}
}
