package deploy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"

	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/plan"
)

// Journal record types. The journal is a commit log of the deployment's
// applied delta batches: replaying it through a planner rebuilt with the
// same inputs reproduces the exact snapshot version and decision
// sequence, because the whole planning pipeline is deterministic.
const (
	jTypeHeader = "header"
	jTypeBatch  = "batch"
)

// journalRecord is one line of the deployment journal.
type journalRecord struct {
	Type string `json:"type"`

	// Header fields: the identity of the deployment the journal belongs
	// to. Recover refuses to replay a journal against a manager built
	// from different inputs — replay would silently diverge.
	Sites           int     `json:"sites,omitempty"`
	System          string  `json:"system,omitempty"`
	InitialResponse float64 `json:"initial_response,omitempty"`

	// Batch fields: the coalesced batch as applied, and the outcome the
	// replay must reproduce.
	Deltas []Delta `json:"deltas,omitempty"`
	// Version is the published snapshot version after the batch (the
	// standing version when the batch did not publish).
	Version uint64 `json:"version"`
	// Published is false for batches that dirtied nothing new.
	Published bool `json:"published"`
	// Decision is the adaptation decision of a published batch.
	Decision string `json:"decision,omitempty"`
	// Error records a re-plan failure (ErrReplan): the batch mutated the
	// deployment but produced no snapshot, and replay must fail the same
	// way.
	Error string `json:"error,omitempty"`
	// Applied is the cumulative applied-delta count after the batch.
	Applied int `json:"applied"`
}

// journalBatch appends the batch outcome to the journal, if one is
// attached. Called with mu held, after the batch took effect — the
// journal is a commit log, so a record's presence means the batch IS in
// force. A failed append is reported to the caller (the world and the
// journal have diverged; the operator must not trust the journal for
// recovery), but the batch itself stands.
func (m *Manager) journalBatch(rec journalRecord) error {
	if m.journal == nil {
		return nil
	}
	rec.Type = jTypeBatch
	if err := m.journal.AppendSync(rec); err != nil {
		return fmt.Errorf("deploy: batch applied but journal append failed (journal no longer replayable): %w", err)
	}
	return nil
}

// Recover builds a Manager whose applied batches are durable in a
// journal at path, replaying any batches already recorded there.
//
// The planner must be constructed exactly as it was for the journal's
// original manager (same topology, system, strategy, demand — i.e. the
// daemon restarted with the same flags): the journal stores only the
// delta batches, and determinism of the planning pipeline does the
// rest. A fresh path starts a new journal; an existing one is verified
// against the rebuilt deployment (site count, system, initial plan
// response) and replayed batch by batch, asserting that every re-plan
// reproduces the recorded version and decision. After a successful
// replay the manager's snapshot history — versions, decisions, ETags —
// is identical to the pre-crash manager's, and the journal is reopened
// for appending (a torn final line, the artifact of a crash mid-append,
// is discarded: its batch never committed).
//
// The returned int is the number of batches replayed (0 for a fresh
// journal).
func Recover(p *plan.Planner, cfg Config, path string) (*Manager, int, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, 0, err
	}
	cur := m.Current().Snapshot
	header := journalRecord{
		Type:            jTypeHeader,
		Sites:           cur.Topology.Size(),
		System:          cur.System.Name(),
		InitialResponse: cur.Response,
	}

	records, _, err := journal.ReadAll(path)
	if errors.Is(err, fs.ErrNotExist) {
		// Fresh journal: create it, stamp the identity header.
		w, cerr := journal.Create(path)
		if cerr != nil {
			return nil, 0, fmt.Errorf("deploy: create journal: %w", cerr)
		}
		if aerr := w.AppendSync(header); aerr != nil {
			w.Close()
			return nil, 0, fmt.Errorf("deploy: write journal header: %w", aerr)
		}
		m.journal = w
		return m, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("deploy: read journal: %w", err)
	}
	if len(records) == 0 {
		return nil, 0, fmt.Errorf("deploy: journal %s has no intact header record", path)
	}

	var got journalRecord
	if err := json.Unmarshal(records[0], &got); err != nil {
		return nil, 0, fmt.Errorf("deploy: journal header: %w", err)
	}
	if got.Type != jTypeHeader {
		return nil, 0, fmt.Errorf("deploy: journal %s starts with %q record, want header", path, got.Type)
	}
	if got.Sites != header.Sites || got.System != header.System || got.InitialResponse != header.InitialResponse {
		return nil, 0, fmt.Errorf(
			"deploy: journal belongs to a different deployment (journal: %d sites, system %s, initial response %.6g; rebuilt: %d sites, system %s, initial response %.6g) — restart with the original flags",
			got.Sites, got.System, got.InitialResponse, header.Sites, header.System, header.InitialResponse)
	}

	replayed := 0
	for i, raw := range records[1:] {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, 0, fmt.Errorf("deploy: journal record %d: %w", i+2, err)
		}
		if rec.Type != jTypeBatch {
			return nil, 0, fmt.Errorf("deploy: journal record %d: unexpected type %q", i+2, rec.Type)
		}
		diverged := func(format string, args ...interface{}) error {
			return fmt.Errorf("deploy: journal replay diverged at record %d: %s", i+2, fmt.Sprintf(format, args...))
		}
		entry, err := m.Apply(rec.Deltas) // m.journal is nil: replay does not re-journal
		switch {
		case rec.Error != "":
			if err == nil {
				return nil, 0, diverged("journal records re-plan failure %q but replay published version %d", rec.Error, entry.Snapshot.Version)
			}
			if !errors.Is(err, ErrReplan) {
				return nil, 0, diverged("journal records re-plan failure but replay failed differently: %v", err)
			}
		case err != nil:
			return nil, 0, diverged("journal records success at version %d but replay failed: %v", rec.Version, err)
		default:
			if entry.Snapshot.Version != rec.Version {
				return nil, 0, diverged("version %d, journal records %d", entry.Snapshot.Version, rec.Version)
			}
			if rec.Published && entry.Decision != rec.Decision {
				return nil, 0, diverged("decision %q, journal records %q", entry.Decision, rec.Decision)
			}
		}
		if m.applied != rec.Applied {
			return nil, 0, diverged("applied count %d, journal records %d", m.applied, rec.Applied)
		}
		replayed++
	}

	// Reopen for appending; Open truncates any torn tail the crash left.
	w, err := journal.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("deploy: reopen journal: %w", err)
	}
	m.journal = w
	return m, replayed, nil
}

// CloseJournal syncs and closes the journal, if one is attached. The
// manager keeps working afterwards, just without durability.
func (m *Manager) CloseJournal() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	err := m.journal.Close()
	m.journal = nil
	return err
}
