// Package deploy is the online-adaptation layer between the staged
// planner and the serving layer: a Manager owns one plan.Planner,
// serializes delta ingestion (RTT probes, capacity changes, demand
// telemetry, per-site demand weights) through a single apply loop, and
// publishes each re-plan as an immutable plan.Snapshot behind an atomic
// pointer, so readers are never blocked by an in-flight re-plan.
//
// Strategy- and evaluation-only re-plans are always taken — they are
// free in the real world (clients just pick quorums differently). A
// placement move is not: elements must migrate state across the WAN. The
// manager therefore gates placement changes behind a migration cost
// model: when a delta batch dirties the placement stage, it computes
// both the candidate re-placement and the holdover (the previous
// placement pinned on the new conditions, strategy re-optimized) and
// moves only when the predicted response-time gain is at least
// Config.MoveCost milliseconds. A held placement stays pinned on the
// planner, so subsequent re-plans keep honoring the hold until a later
// drift justifies the move.
package deploy

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Delta kinds accepted by the manager.
const (
	// KindRTT updates the raw round-trip time of one site pair (an RTT
	// probe result): fields A, B, Value (ms).
	KindRTT = "rtt"
	// KindCapacity updates one site's capacity: fields Site, Value.
	KindCapacity = "capacity"
	// KindUniformCapacity sets every site's capacity: field Value.
	KindUniformCapacity = "uniform-capacity"
	// KindDemand re-targets the per-client demand: field Value.
	KindDemand = "demand"
	// KindWeights re-targets per-site demand weights (demand telemetry):
	// field Weights, site name → relative weight, unlisted sites weigh 1;
	// an empty map restores uniform demand.
	KindWeights = "weights"
	// KindAddSite splices a new site into the deployment: fields Site
	// (name), Region, Lat, Lon, AccessMS, and Value (capacity; 0 means
	// the default capacity 1). RTTs to every existing site are
	// synthesized with topology.EstimateRTT until probes measure them.
	KindAddSite = "add-site"
	// KindRemoveSite removes a site (outage, decommission): field Site.
	KindRemoveSite = "remove-site"
)

// DefaultPeerAccessMS is the access-link delay assumed for the far end
// when an add-site delta synthesizes RTTs to existing sites: existing
// sites' access delays were folded into the pairwise metric at
// generation time and are no longer individually known, so churn
// tooling and the scenario engine share this nominal value.
const DefaultPeerAccessMS = 2.0

// Delta is one typed world change posted to the deployment. Exactly the
// fields its Kind documents are meaningful; Validate rejects anything
// malformed before the apply loop touches the planner.
type Delta struct {
	Kind string `json:"kind"`
	// A, B name the site pair of an "rtt" delta.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Site names the site of a "capacity" delta.
	Site string `json:"site,omitempty"`
	// Value carries the milliseconds ("rtt"), capacity ("capacity",
	// "uniform-capacity", "add-site"), or per-client demand ("demand").
	Value float64 `json:"value,omitempty"`
	// Weights carries the per-site weights of a "weights" delta.
	Weights map[string]float64 `json:"weights,omitempty"`
	// Region, Lat, Lon, and AccessMS describe the new site of an
	// "add-site" delta (see topology.Site and topology.EstimateRTT).
	Region   string  `json:"region,omitempty"`
	Lat      float64 `json:"lat,omitempty"`
	Lon      float64 `json:"lon,omitempty"`
	AccessMS float64 `json:"access_ms,omitempty"`
}

// Validate checks the delta's shape (kind and values); site names are
// resolved against the deployment at apply time.
func (d Delta) Validate() error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("deploy: %s delta: %s", d.Kind, fmt.Sprintf(format, args...))
	}
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch d.Kind {
	case KindRTT:
		if d.A == "" || d.B == "" {
			return bad("needs both site names a and b")
		}
		if d.A == d.B {
			return bad("self-RTT for site %q", d.A)
		}
		if d.Value <= 0 || !finite(d.Value) {
			return bad("invalid RTT %v ms", d.Value)
		}
	case KindCapacity:
		if d.Site == "" {
			return bad("needs a site name")
		}
		if d.Value <= 0 || !finite(d.Value) {
			return bad("invalid capacity %v", d.Value)
		}
	case KindUniformCapacity:
		if d.Value <= 0 || !finite(d.Value) {
			return bad("invalid capacity %v", d.Value)
		}
	case KindDemand:
		if d.Value < 0 || !finite(d.Value) {
			return bad("invalid demand %v", d.Value)
		}
	case KindWeights:
		for site, w := range d.Weights {
			if w <= 0 || !finite(w) {
				return bad("invalid weight %v for site %q", w, site)
			}
		}
	case KindAddSite:
		if d.Site == "" {
			return bad("needs a site name")
		}
		if !finite(d.Lat) || d.Lat < -90 || d.Lat > 90 {
			return bad("invalid latitude %v", d.Lat)
		}
		if !finite(d.Lon) || d.Lon < -180 || d.Lon > 180 {
			return bad("invalid longitude %v", d.Lon)
		}
		if d.AccessMS < 0 || !finite(d.AccessMS) {
			return bad("invalid access delay %v ms", d.AccessMS)
		}
		if d.Value < 0 || !finite(d.Value) {
			return bad("invalid capacity %v", d.Value)
		}
	case KindRemoveSite:
		if d.Site == "" {
			return bad("needs a site name")
		}
	case "":
		return fmt.Errorf("deploy: delta kind missing")
	default:
		return fmt.Errorf("deploy: unknown delta kind %q", d.Kind)
	}
	return nil
}

// key identifies the state a delta overwrites, for coalescing.
func (d Delta) key() string {
	switch d.Kind {
	case KindRTT:
		a, b := d.A, d.B
		if a > b {
			a, b = b, a
		}
		return "rtt:" + a + "|" + b
	case KindCapacity:
		return "cap:" + d.Site
	default:
		return d.Kind
	}
}

// supersedes reports whether applying d after e makes e's effect
// unobservable, so e can be dropped from a batch. Membership deltas
// (add-site/remove-site) never coalesce in either direction: their
// validity depends on batch position ([add x, add x] must fail exactly
// as it would applied sequentially), and they reset planner state
// (weights, pins) that value deltas do not.
func (d Delta) supersedes(e Delta) bool {
	if d.membership() || e.membership() {
		return false
	}
	if d.Kind == KindUniformCapacity && (e.Kind == KindCapacity || e.Kind == KindUniformCapacity) {
		return true
	}
	return d.key() == e.key()
}

func (d Delta) membership() bool {
	return d.Kind == KindAddSite || d.Kind == KindRemoveSite
}

// Coalesce collapses a batch: each delta drops any earlier delta it
// supersedes (same site pair's RTT, same site's capacity, the
// deployment-wide demand/weights/uniform-capacity), preserving the order
// — and therefore the final state — of the survivors.
func Coalesce(ds []Delta) []Delta {
	out := make([]Delta, 0, len(ds))
	for _, d := range ds {
		kept := out[:0]
		for _, e := range out {
			if !d.supersedes(e) {
				kept = append(kept, e)
			}
		}
		out = append(kept, d)
	}
	return out
}

// Config tunes a Manager.
type Config struct {
	// MoveCost is the hysteresis threshold in milliseconds of predicted
	// average response time: a placement move is taken only when it is
	// predicted to win at least this much over keeping the old placement.
	// Zero (or negative) disables hysteresis — every re-place is taken.
	MoveCost float64
	// HistoryLimit bounds the snapshot history ring (default 32).
	HistoryLimit int
	// RecordDeltas keeps the full applied-delta log in memory (DeltaLog),
	// letting auditors replay any prefix; off by default because the log
	// grows without bound on a long-lived deployment.
	RecordDeltas bool
}

func (c Config) historyLimit() int {
	if c.HistoryLimit <= 0 {
		return 32
	}
	return c.HistoryLimit
}

// Entry is one published re-plan: the snapshot plus the manager-level
// adaptation decision that produced it.
type Entry struct {
	// Snapshot is the immutable plan.
	Snapshot *plan.Snapshot
	// Decision records the adaptation outcome: "initial", "adopt (…)" for
	// strategy/eval-only re-plans, "move (…)" or "hold (…)" for placement
	// decisions.
	Decision string
	// Applied is the cumulative number of deltas applied when this entry
	// was published (the prefix length of the delta log it corresponds
	// to).
	Applied int
}

// Manager owns one deployment: a planner, its published snapshot, and a
// bounded history. All mutation is serialized through Apply; Current and
// History never block on an in-flight re-plan.
type Manager struct {
	cfg Config

	mu       sync.Mutex // serializes the apply loop (planner access)
	p        *plan.Planner
	applied  int
	deltaLog []Delta
	journal  *journal.Writer // optional durable batch log (see Recover)

	// queued counts Apply calls in flight (holding or waiting on mu);
	// see ApplyQueue.
	queued atomic.Int64

	cur atomic.Pointer[Entry]

	hmu     sync.Mutex // guards history and the notify channel
	history []*Entry
	notify  chan struct{}
}

// New wraps a planner (which must not be used elsewhere afterwards),
// runs the initial plan, and publishes it as version 1.
func New(p *plan.Planner, cfg Config) (*Manager, error) {
	if p == nil {
		return nil, fmt.Errorf("deploy: nil planner")
	}
	m := &Manager{cfg: cfg, p: p, notify: make(chan struct{})}
	snap, err := p.Plan()
	if err != nil {
		return nil, fmt.Errorf("deploy: initial plan: %w", err)
	}
	m.publish(&Entry{Snapshot: snap, Decision: "initial"})
	return m, nil
}

// Current returns the latest published entry without blocking: an
// in-flight Apply keeps serving the previous snapshot until its re-plan
// commits.
func (m *Manager) Current() *Entry { return m.cur.Load() }

// History returns the retained entries, oldest first (bounded by
// Config.HistoryLimit). The slice is a copy; entries are immutable.
func (m *Manager) History() []*Entry {
	m.hmu.Lock()
	defer m.hmu.Unlock()
	return append([]*Entry(nil), m.history...)
}

// DeltaLog returns a copy of the applied-delta log (empty unless
// Config.RecordDeltas). Entry.Applied indexes prefixes of this log.
func (m *Manager) DeltaLog() []Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Delta(nil), m.deltaLog...)
}

// Wait blocks until an entry with version greater than after is
// published, then returns it. On context cancellation it returns the
// current entry and the context's error — a long-poll timeout serves
// whatever is current.
func (m *Manager) Wait(ctx context.Context, after uint64) (*Entry, error) {
	for {
		e := m.Current()
		if e.Snapshot.Version > after {
			return e, nil
		}
		ch := m.Notify()
		// Re-check: a publish may have landed between the load and the
		// channel fetch; the freshly fetched channel only signals
		// publishes after it was installed.
		if e2 := m.Current(); e2.Snapshot.Version > after {
			return e2, nil
		}
		select {
		case <-ctx.Done():
			return m.Current(), ctx.Err()
		case <-ch:
		}
	}
}

// Notify returns the epoch channel closed at the next publish: every
// parked receiver is woken by that single close, so fan-out cost is
// independent of the watcher count. The protocol for a lost-wakeup-free
// park is fetch-then-recheck: fetch the channel, re-check Current, and
// only then park — a publish that lands after the fetch closes exactly
// the fetched channel. A receiver that wakes must re-fetch before
// parking again (the closed channel stays closed).
func (m *Manager) Notify() <-chan struct{} {
	m.hmu.Lock()
	ch := m.notify
	m.hmu.Unlock()
	return ch
}

// publish stores the entry, pushes it onto the history ring, and wakes
// every waiter.
func (m *Manager) publish(e *Entry) {
	m.cur.Store(e)
	m.hmu.Lock()
	m.history = append(m.history, e)
	if limit := m.cfg.historyLimit(); len(m.history) > limit {
		m.history = append(m.history[:0:0], m.history[len(m.history)-limit:]...)
	}
	close(m.notify)
	m.notify = make(chan struct{})
	m.hmu.Unlock()
}

// ErrReplan marks an Apply error raised after the batch was applied:
// the deltas are in force (the world changed), but no feasible plan
// exists for them yet — e.g. the strategy LP went infeasible under the
// new capacities. The previous snapshot keeps being served until a
// later batch re-plans successfully.
var ErrReplan = fmt.Errorf("deploy: re-plan failed")

// Apply coalesces and applies one batch of deltas, re-plans, and
// publishes the resulting snapshot. The batch is validated up front
// (shape and site names), so a malformed batch is rejected without
// touching the deployment; an error wrapping ErrReplan means the batch
// WAS applied but planning it failed. A batch that dirties nothing new
// returns the current entry without publishing a new version.
func (m *Manager) Apply(deltas []Delta) (*Entry, error) {
	m.queued.Add(1)
	defer m.queued.Add(-1)
	m.mu.Lock()
	defer m.mu.Unlock()

	batch := Coalesce(deltas)
	if err := m.validateBatch(batch); err != nil {
		return nil, err
	}
	before := m.p.PendingDeltas()
	for _, d := range batch {
		if err := d.ApplyTo(m.p); err != nil {
			return nil, fmt.Errorf("deploy: applying %s delta: %w", d.Kind, err)
		}
	}
	m.applied += len(batch)
	if m.cfg.RecordDeltas {
		m.deltaLog = append(m.deltaLog, batch...)
	}

	// Publish only when the batch changed something. Leftover dirt from
	// a previous move decision (the planner lazily reconstructs the
	// already-published candidate placement) does not warrant a version,
	// so the planner's effective-mutation count — not its dirty flags —
	// is the signal.
	if m.p.PendingDeltas() == before {
		cur := m.Current()
		if jerr := m.journalBatch(journalRecord{
			Deltas:  batch,
			Version: cur.Snapshot.Version,
			Applied: m.applied,
		}); jerr != nil {
			return cur, jerr
		}
		return cur, nil
	}
	entry, err := m.replan()
	if err != nil {
		err = fmt.Errorf("%w: %s", ErrReplan, err)
		// A failed re-plan still mutated the deployment; the journal must
		// carry the batch or replay would skip it and diverge.
		if jerr := m.journalBatch(journalRecord{
			Deltas:  batch,
			Version: m.Current().Snapshot.Version,
			Error:   err.Error(),
			Applied: m.applied,
		}); jerr != nil {
			return nil, jerr
		}
		return nil, err
	}
	entry.Applied = m.applied
	m.publish(entry)
	if jerr := m.journalBatch(journalRecord{
		Deltas:    batch,
		Version:   entry.Snapshot.Version,
		Published: true,
		Decision:  entry.Decision,
		Applied:   m.applied,
	}); jerr != nil {
		return entry, jerr
	}
	return entry, nil
}

// validateBatch checks every delta's shape and resolves site names
// against the deployment, tracking the membership changes the batch
// itself makes so an add-site'd site is referenceable later in the same
// batch (and a removed one is not). A batch that fails here is rejected
// without touching the planner. Called with mu held.
func (m *Manager) validateBatch(batch []Delta) error {
	members := make(map[string]bool, m.p.Size())
	for i := 0; i < m.p.Size(); i++ {
		members[m.p.Site(i).Name] = true
	}
	for _, d := range batch {
		if err := d.Validate(); err != nil {
			return err
		}
		switch d.Kind {
		case KindAddSite:
			if members[d.Site] {
				return fmt.Errorf("deploy: add-site delta: site %q already exists", d.Site)
			}
			members[d.Site] = true
		case KindRemoveSite:
			if !members[d.Site] {
				return fmt.Errorf("deploy: remove-site delta: no site named %q", d.Site)
			}
			if len(members) <= 2 {
				// Mirror the planner's membership floor up front so the
				// whole batch is rejected untouched.
				return fmt.Errorf("deploy: remove-site delta: cannot remove %q: only %d sites left", d.Site, len(members))
			}
			delete(members, d.Site)
		default:
			for _, site := range d.sites() {
				if !members[site] {
					return fmt.Errorf("deploy: %s delta: no site named %q", d.Kind, site)
				}
			}
		}
	}
	return nil
}

// ApplyQueue reports the number of Apply calls currently in flight:
// the one holding the apply loop plus any queued behind it. Serving
// layers use it as the backpressure signal for delta ingestion.
func (m *Manager) ApplyQueue() int { return int(m.queued.Load()) }

// replan runs the adaptation policy: free re-plans pass straight
// through; placement-dirtying batches run the move-vs-hold comparison.
// Called with mu held.
func (m *Manager) replan() (*Entry, error) {
	prev := m.Current().Snapshot

	if !m.p.Dirty(plan.StagePlacement) {
		// Strategy/eval-only: always taken. A pinned hold stays pinned.
		snap, err := m.p.Plan()
		if err != nil {
			return nil, err
		}
		return &Entry{Snapshot: snap, Decision: "adopt (" + snap.Provenance.Summary() + ")"}, nil
	}

	// The batch dirtied the placement. Compute the candidate
	// re-placement first (clearing any standing hold so the construction
	// actually runs).
	m.p.ClearPlacementPin()
	cand, err := m.p.Plan()
	if err != nil {
		return nil, err
	}
	if m.cfg.MoveCost <= 0 {
		return &Entry{Snapshot: cand, Decision: "move (no hysteresis)"}, nil
	}
	prevTargets, ok := mapTargets(prev, m.p)
	if !ok {
		return &Entry{Snapshot: cand, Decision: "move (forced: previous placement lost a site)"}, nil
	}
	if slices.Equal(cand.Placement.Targets(), prevTargets) {
		return &Entry{Snapshot: cand, Decision: "adopt (placement unchanged)"}, nil
	}

	// Holdover: previous placement pinned on the new conditions, with
	// the strategy re-optimized for it.
	if err := m.p.PinPlacement(prevTargets); err != nil {
		return &Entry{Snapshot: cand, Decision: "move (forced: " + err.Error() + ")"}, nil
	}
	hold, err := m.p.Plan()
	if err != nil {
		// The old placement is no longer feasible (e.g. the strategy LP
		// went infeasible under it): the move is forced.
		m.p.ClearPlacementPin()
		if _, rerr := m.p.Plan(); rerr != nil {
			return nil, rerr
		}
		return &Entry{Snapshot: cand, Decision: "move (forced: holdover infeasible)"}, nil
	}
	gain := hold.Response - cand.Response
	if gain >= m.cfg.MoveCost {
		// Unpin; the next Plan lazily reconstructs the candidate
		// placement (the construction is deterministic).
		m.p.ClearPlacementPin()
		return &Entry{
			Snapshot: cand,
			Decision: fmt.Sprintf("move (gain %.2fms >= cost %.2fms)", gain, m.cfg.MoveCost),
		}, nil
	}
	// The candidate plan consumed the batch's provenance deltas; the
	// published hold must carry them (its own plan only saw the
	// internal pin), so publish a copy with the candidate's delta log.
	hs := *hold
	hs.Provenance.Deltas = cand.Provenance.Deltas
	return &Entry{
		Snapshot: &hs,
		Decision: fmt.Sprintf("hold (gain %.2fms < cost %.2fms)", gain, m.cfg.MoveCost),
	}, nil
}

// mapTargets translates a snapshot's placement into the planner's
// current site indices by site name; ok is false when a hosting site no
// longer exists.
func mapTargets(snap *plan.Snapshot, p *plan.Planner) ([]int, bool) {
	targets := snap.Placement.Targets()
	out := make([]int, len(targets))
	for u, w := range targets {
		idx := p.SiteIndex(snap.Topology.Site(w).Name)
		if idx < 0 {
			return nil, false
		}
		out[u] = idx
	}
	return out, true
}

// sites lists the site names a non-membership delta references (for
// validation; membership kinds are handled positionally by
// validateBatch).
func (d Delta) sites() []string {
	switch d.Kind {
	case KindRTT:
		return []string{d.A, d.B}
	case KindCapacity:
		return []string{d.Site}
	case KindWeights:
		names := make([]string, 0, len(d.Weights))
		for site := range d.Weights {
			names = append(names, site)
		}
		sort.Strings(names)
		return names
	}
	return nil
}

// ApplyTo mutates the planner with the (already validated) delta. It is
// the single translation from wire deltas to planner mutations, used by
// the manager's apply loop and by telemetry tooling (scenario streaming,
// quorumgen) that mirrors a deployment on a local planner.
func (d Delta) ApplyTo(p *plan.Planner) error {
	switch d.Kind {
	case KindRTT:
		return p.SetRTT(p.SiteIndex(d.A), p.SiteIndex(d.B), d.Value)
	case KindCapacity:
		return p.SetSiteCapacity(p.SiteIndex(d.Site), d.Value)
	case KindUniformCapacity:
		return p.SetUniformCapacity(d.Value)
	case KindDemand:
		return p.SetDemand(d.Value)
	case KindWeights:
		if len(d.Weights) == 0 {
			return p.SetClientWeights(nil)
		}
		w := make([]float64, p.Size())
		for i := range w {
			w[i] = 1
		}
		for site, weight := range d.Weights {
			w[p.SiteIndex(site)] = weight
		}
		return p.SetClientWeights(w)
	case KindAddSite:
		site := topology.Site{Name: d.Site, Region: d.Region, Lat: d.Lat, Lon: d.Lon}
		rtts := make([]float64, p.Size())
		for i := range rtts {
			rtts[i] = topology.EstimateRTT(site, p.Site(i), 0, d.AccessMS, DefaultPeerAccessMS)
		}
		capacity := d.Value
		if capacity == 0 {
			capacity = 1
		}
		return p.AddSite(site, rtts, capacity)
	case KindRemoveSite:
		return p.RemoveSite(d.Site)
	default:
		return fmt.Errorf("unknown kind %q", d.Kind)
	}
}
