package deploy

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/quorumnet/quorumnet/internal/journal"
	"github.com/quorumnet/quorumnet/internal/plan"
)

// recoverManager builds a fresh planner from the shared fixtures and
// Recovers a manager from path — exactly what a restarted quorumd does.
func recoverManager(t *testing.T, cfg Config, path string) (*Manager, int) {
	t.Helper()
	p, err := plan.New(deployTopo(t), deployPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, n, err := Recover(p, cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	return m, n
}

// journalBatches drives a journaled manager through every batch outcome
// the journal must reproduce: published re-plans (eval-only and
// placement-dirtying), a no-publish batch, and a failed re-plan whose
// deltas are nevertheless in force.
func journalBatches(t *testing.T, m *Manager) {
	t.Helper()
	site := m.Current().Snapshot.Topology.Site(0).Name
	mustApply := func(ds []Delta) {
		t.Helper()
		if _, err := m.Apply(ds); err != nil {
			t.Fatal(err)
		}
	}
	mustApply([]Delta{{Kind: KindDemand, Value: 9000}})
	mustApply([]Delta{{Kind: KindWeights, Weights: map[string]float64{site: 3}}})
	mustApply([]Delta{{Kind: KindCapacity, Site: site, Value: 2.5}})
	// Same demand again: alpha unchanged, nothing dirtied, no publish.
	if _, err := m.Apply([]Delta{{Kind: KindDemand, Value: 9000}}); err != nil {
		t.Fatal(err)
	}
	// Starve every site: the strategy LP goes infeasible, the batch is in
	// force but unplannable.
	if _, err := m.Apply([]Delta{{Kind: KindUniformCapacity, Value: 1e-9}}); !errors.Is(err, ErrReplan) {
		t.Fatalf("starvation batch: %v, want ErrReplan", err)
	}
	// Recovery batch: capacity restored, planning resumes.
	mustApply([]Delta{{Kind: KindUniformCapacity, Value: 2}})
}

type historyRow struct {
	Version  uint64
	Decision string
	Applied  int
	Response float64
}

func historyRows(m *Manager) []historyRow {
	var rows []historyRow
	for _, e := range m.History() {
		rows = append(rows, historyRow{e.Snapshot.Version, e.Decision, e.Applied, e.Snapshot.Response})
	}
	return rows
}

// TestRecoverFreshJournal: a new path starts a journal with an identity
// header, and applied batches land in it durably.
func TestRecoverFreshJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	m, n := recoverManager(t, Config{}, path)
	if n != 0 {
		t.Fatalf("fresh journal replayed %d batches", n)
	}
	site := m.Current().Snapshot.Topology.Site(0).Name
	if _, err := m.Apply([]Delta{{Kind: KindCapacity, Site: site, Value: 3}}); err != nil {
		t.Fatal(err)
	}
	// Every append is synced; the records are durable without a Close.
	records, torn, err := journal.ReadAll(path)
	if err != nil || torn {
		t.Fatalf("journal: torn=%v err=%v", torn, err)
	}
	if len(records) != 2 {
		t.Fatalf("journal has %d records, want header + 1 batch", len(records))
	}
	var header journalRecord
	if err := json.Unmarshal(records[0], &header); err != nil {
		t.Fatal(err)
	}
	if header.Type != jTypeHeader || header.Sites != 18 || header.System == "" {
		t.Fatalf("header %+v", header)
	}
	if err := m.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverReplaysIdenticalHistory is the crash/restart acceptance
// test at the manager level: a journaled manager applies every batch
// outcome, the process "dies" (the manager is simply abandoned — each
// record was fsynced at apply time), and a second Recover with an
// identically-built planner replays to the exact same version, decision,
// response, and applied-count history. The restarted manager keeps
// journaling: its next batch publishes the next version.
func TestRecoverReplaysIdenticalHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	m1, _ := recoverManager(t, Config{}, path)
	journalBatches(t, m1)
	want := historyRows(m1)
	// m1 is abandoned un-closed: the crash.

	m2, n := recoverManager(t, Config{}, path)
	if n != 6 {
		t.Fatalf("replayed %d batches, want 6", n)
	}
	got := historyRows(m2)
	if len(got) != len(want) {
		t.Fatalf("history length %d after recovery, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("history[%d] = %+v after recovery, want %+v", i, got[i], want[i])
		}
	}

	// The recovered manager appends where the dead one left off.
	before := m2.Current().Snapshot.Version
	if _, err := m2.Apply([]Delta{{Kind: KindDemand, Value: 12000}}); err != nil {
		t.Fatal(err)
	}
	if v := m2.Current().Snapshot.Version; v <= before {
		t.Fatalf("post-recovery apply went from version %d to %d", before, v)
	}
	records, _, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1+6+1 {
		t.Fatalf("journal has %d records, want header + 7 batches", len(records))
	}
}

// TestRecoverTornTailDiscarded: a crash mid-append leaves a torn final
// line; its batch never committed (the append happens before Apply
// returns), so recovery discards it and replays the intact prefix.
func TestRecoverTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	m1, _ := recoverManager(t, Config{}, path)
	journalBatches(t, m1)

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"batch","deltas":[{"kind":"demand","va`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, n := recoverManager(t, Config{}, path)
	if n != 6 {
		t.Fatalf("replayed %d batches, want the 6 intact ones", n)
	}
	// The reopened journal truncated the torn tail: a new batch appends a
	// clean record.
	if _, err := m2.Apply([]Delta{{Kind: KindDemand, Value: 12000}}); err != nil {
		t.Fatal(err)
	}
	if records, torn, err := journal.ReadAll(path); err != nil || torn || len(records) != 8 {
		t.Fatalf("post-recovery journal: %d records torn=%v err=%v, want 8 clean", len(records), torn, err)
	}
}

// TestRecoverRejectsForeignDeployment: a journal replayed against a
// deployment rebuilt with different flags is refused at the header.
func TestRecoverRejectsForeignDeployment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	m, _ := recoverManager(t, Config{}, path)
	journalBatches(t, m)

	cfg := deployPlanConfig()
	cfg.Demand = 4000 // restarted with the wrong -demand flag
	p, err := plan.New(deployTopo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(p, Config{}, path); err == nil || !strings.Contains(err.Error(), "different deployment") {
		t.Fatalf("foreign journal accepted: %v", err)
	}
}

// TestRecoverDetectsDivergedReplay: a tampered batch record (its
// recorded version no longer matches what deterministic replay
// produces) fails recovery loudly instead of serving a silently wrong
// history.
func TestRecoverDetectsDivergedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.journal")
	m, _ := recoverManager(t, Config{}, path)
	journalBatches(t, m)

	records, _, err := journal.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i, raw := range records {
		if i == 1 { // the first batch record
			var rec journalRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				t.Fatal(err)
			}
			rec.Version += 7
			raw, err = json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
		}
		lines = append(lines, string(raw))
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	p, err := plan.New(deployTopo(t), deployPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(p, Config{}, path); err == nil || !strings.Contains(err.Error(), "replay diverged") {
		t.Fatalf("tampered journal accepted: %v", err)
	}
}
