// Package journal is the shared append-only JSON-lines log both
// control planes persist their state transitions to: the fleet
// coordinator's run journal (internal/fleet/journal) and the deployment
// manager's delta journal (internal/deploy). One record is one JSON
// object on one line; a record is durable once its line — written with
// a single write call so concurrent appenders never interleave — has
// been fsynced.
//
// Recovery reads the journal back tolerating exactly the failure the
// format invites: a crash mid-append leaves a torn final line (no
// terminating newline), which ReadAll discards and Open truncates
// before appending resumes. Anything else malformed — an invalid JSON
// object on a terminated line — is corruption, not a crash artifact,
// and is reported as an error rather than silently skipped.
//
// Fsync policy is the caller's: Append leaves the line in the OS page
// cache (cheap, batchable), AppendSync forces it to disk, and Sync
// flushes everything appended so far. Writers put the records whose
// loss merely costs recomputation (dispatch, lease renewals) through
// Append and the ones that carry results (completed partials, published
// versions) through AppendSync.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Writer appends JSON-line records to one journal file. Safe for
// concurrent use.
type Writer struct {
	mu    sync.Mutex
	f     *os.File
	dirty bool // appended since the last fsync
}

// Create makes a new journal at path, failing if the file already
// exists — a journal records one history; overwriting one is never
// recovery, always data loss.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	return &Writer{f: f}, nil
}

// Open reopens an existing journal for appending. A torn final line —
// the mark of a crash mid-append — is truncated away first, so the next
// Append starts a well-formed record instead of gluing onto the torn
// one.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	keep := int64(len(data))
	if cut := bytes.LastIndexByte(data, '\n'); cut < len(data)-1 {
		keep = int64(cut + 1) // cut == -1 (no newline at all) keeps 0
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{f: f}, nil
}

// Append marshals v and appends it as one line with a single write
// call. The line reaches the OS but not necessarily the disk; use
// AppendSync or Sync for durability barriers.
func (w *Writer) Append(v interface{}) error {
	return w.append(v, false)
}

// AppendSync appends like Append and then fsyncs, so the record — and
// every batched record before it — is durable when it returns.
func (w *Writer) AppendSync(v interface{}) error {
	return w.append(v, true)
}

func (w *Writer) append(v interface{}, sync bool) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: marshaling record: %w", err)
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer closed")
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("journal: appending record: %w", err)
	}
	w.dirty = true
	if sync {
		return w.syncLocked()
	}
	return nil
}

// Sync fsyncs every record appended so far.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: writer closed")
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.dirty = false
	return nil
}

// Close syncs and closes the journal.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReadAll reads a journal's records in order. A torn final line — bytes
// after the last newline, the signature of a crash mid-append — is
// discarded and reported through torn; the records before it are intact
// by the append protocol. A terminated line that is not a JSON object
// cannot be produced by a torn append and is an error.
func ReadAll(path string) (records []json.RawMessage, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("journal: read %s: %w", path, err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return records, true, nil // torn final line: discard
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			return nil, false, fmt.Errorf("journal: %s: record %d is blank", path, len(records))
		}
		if !json.Valid(line) {
			return nil, false, fmt.Errorf("journal: %s: record %d is not valid JSON (corrupt journal, not a torn tail)", path, len(records))
		}
		records = append(records, json.RawMessage(append([]byte(nil), line...)))
	}
	return records, false, nil
}
