package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
}

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "j.journal")
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if i%2 == 0 {
			err = w.AppendSync(rec{Kind: "even", N: i})
		} else {
			err = w.Append(rec{Kind: "odd", N: i})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	records, torn, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean journal reported torn")
	}
	if len(records) != 5 {
		t.Fatalf("got %d records, want 5", len(records))
	}
	for i, raw := range records {
		var r rec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if r.N != i {
			t.Fatalf("record %d has n=%d", i, r.N)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(path); err == nil {
		t.Fatal("Create over an existing journal succeeded; want error")
	}
}

// TestTornTailDiscarded: a crash mid-append leaves an unterminated
// final line; ReadAll discards exactly that line, at every byte offset
// of the final record including offset 0 (which leaves a clean file).
func TestTornTailDiscarded(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(rec{Kind: "r", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	prefix := lines[0] + lines[1]
	final := lines[2] + "\n"

	for cut := 0; cut < len(final); cut++ { // cut == len(final)-1 drops only the newline
		torn := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(torn, []byte(prefix+final[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		records, wasTorn, err := ReadAll(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if cut == 0 {
			if wasTorn {
				t.Fatalf("cut 0: clean two-record file reported torn")
			}
		} else if !wasTorn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(records) != 2 {
			t.Fatalf("cut %d: %d records survive, want 2", cut, len(records))
		}
	}
}

// TestOpenTruncatesTornTail: appending through Open after a torn write
// must not glue the new record onto the torn fragment.
func TestOpenTruncatesTornTail(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendSync(rec{Kind: "keep", N: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"torn","n`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendSync(rec{Kind: "after", N: 2}); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	records, torn, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("journal torn after Open repaired it")
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	var r rec
	if err := json.Unmarshal(records[1], &r); err != nil {
		t.Fatal(err)
	}
	if r.Kind != "after" {
		t.Fatalf("final record kind %q, want %q", r.Kind, "after")
	}
}

// TestCorruptionIsAnError: invalid JSON on a terminated line cannot be
// a torn append and must not be silently skipped.
func TestCorruptionIsAnError(t *testing.T) {
	path := tmpJournal(t)
	if err := os.WriteFile(path, []byte("{\"kind\":\"ok\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(path); err == nil {
		t.Fatal("corrupt record read back without error")
	}
	path2 := filepath.Join(t.TempDir(), "blank.journal")
	if err := os.WriteFile(path2, []byte("{\"kind\":\"ok\"}\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(path2); err == nil {
		t.Fatal("blank record read back without error")
	}
}

func TestWriterClosedRejectsAppends(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rec{}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestConcurrentAppends: many goroutines appending concurrently never
// interleave lines — every record reads back as valid JSON.
func TestConcurrentAppends(t *testing.T) {
	path := tmpJournal(t)
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	done := make(chan error, writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				if err := w.Append(rec{Kind: "c", N: g*per + i}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < writers; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	records, torn, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn || len(records) != writers*per {
		t.Fatalf("torn=%v records=%d, want %d clean", torn, len(records), writers*per)
	}
	seen := make(map[int]bool)
	for _, raw := range records {
		var r rec
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		if seen[r.N] {
			t.Fatalf("n=%d appended twice", r.N)
		}
		seen[r.N] = true
	}
}
