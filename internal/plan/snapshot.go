package plan

import (
	"strings"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Snapshot is the immutable, versioned output of one Plan call: the stage
// artifacts, the evaluation measures, and the provenance of the re-plan.
// Snapshots never change after Plan returns — the Topology is a deep copy
// and the planner's later deltas build new artifacts — so a snapshot may
// be published to concurrent readers (an HTTP serving layer, a history
// ring) without locking, and two snapshots can be compared side by side.
type Snapshot struct {
	// Version increases by one on every Plan call of the producing
	// planner, starting at 1. It identifies the snapshot (ETag, long-poll
	// cursors) and orders re-plans.
	Version uint64

	// Topology is a deep copy of the planned WAN (metric closure applied,
	// capacities current as of this plan).
	Topology *topology.Topology
	// System is the quorum system in force.
	System quorum.System
	// Placement maps the system's elements onto topology sites.
	Placement core.Placement
	// Strategy is the access strategy in force.
	Strategy core.Strategy
	// LP carries the access-strategy LP solution when the planner's
	// strategy kind is "lp" (nil otherwise).
	LP *strategy.Result

	// Alpha is the load-to-delay factor the measures below used; Demand is
	// the per-client demand it derives from.
	Alpha  float64
	Demand float64
	// Weights are the per-site client demand weights (nil = uniform),
	// positionally aligned with the topology's sites.
	Weights []float64

	// Response is avg_v Δ_f(v) with Alpha; NetDelay the same with α = 0;
	// MaxLoad the largest per-node load under the strategy.
	Response float64
	NetDelay float64
	MaxLoad  float64

	// Provenance records which stages this plan re-ran and why.
	Provenance Provenance
}

// Provenance explains a snapshot: the pipeline stages the producing Plan
// call actually re-ran (in pipeline order) and the deltas applied since
// the previous snapshot.
type Provenance struct {
	// Recomputed lists the stages that re-ran — empty when nothing was
	// dirty.
	Recomputed []Stage
	// Deltas describes the planner mutations since the previous Plan, in
	// application order (capped; a trailing "… (+N more)" marks overflow).
	Deltas []string
	// Pinned reports that the placement stage was forced to pinned
	// targets rather than run its construction algorithm (see
	// Planner.PinPlacement) — the deployment layer's hysteresis hold.
	Pinned bool
}

// Cold reports a from-scratch plan: every stage ran.
func (p Provenance) Cold() bool { return len(p.Recomputed) == int(numStages) }

// EvalOnly reports that only the evaluation stage re-ran — the cheapest
// possible re-plan (demand-only deltas).
func (p Provenance) EvalOnly() bool {
	return len(p.Recomputed) == 1 && p.Recomputed[0] == StageEval
}

// Summary compresses the recomputed stages into a stable label for
// tables, logs, and the serving layer: "cold", "eval-only", "none", or
// the comma-joined stage names.
func (p Provenance) Summary() string {
	switch {
	case len(p.Recomputed) == 0:
		return "none"
	case p.Cold():
		return "cold"
	case p.EvalOnly():
		return "eval-only"
	}
	names := make([]string, len(p.Recomputed))
	for i, s := range p.Recomputed {
		names[i] = s.String()
	}
	return strings.Join(names, ",")
}

// RecomputedNames returns the recomputed stage names (for tables/logs).
func (s *Snapshot) RecomputedNames() []string {
	out := make([]string, len(s.Provenance.Recomputed))
	for i, st := range s.Provenance.Recomputed {
		out[i] = st.String()
	}
	return out
}
