package plan

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/topology"
)

// benchConfig is the §7 workhorse: a 5×5 Grid on PlanetLab-50 with
// LP-optimized strategies at high demand.
func benchConfig() Config {
	return Config{
		System:   SystemSpec{Family: "grid", Param: 5},
		Strategy: StratLP,
		Demand:   16000,
	}
}

// BenchmarkColdPlan measures the full pipeline: topology closure, system
// construction, the one-to-one anchor search, a cold strategy LP solve,
// and evaluation.
func BenchmarkColdPlan(b *testing.B) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(topo, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanDemandDelta measures the incremental path after a
// demand-only delta: only the evaluation stage re-runs (the acceptance
// bar for the staged planner is ≥ 5× over BenchmarkColdPlan; in practice
// the gap is orders of magnitude).
func BenchmarkReplanDemandDelta(b *testing.B) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	p, err := New(topo, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		b.Fatal(err)
	}
	demands := []float64{4000, 16000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SetDemand(demands[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanCapacityDelta measures the warm-start path after a
// capacity-only delta: the LP skeleton is reused, the capacity right-hand
// sides are rewritten, and the solve warm-starts from the previous
// optimal basis.
func BenchmarkReplanCapacityDelta(b *testing.B) {
	topo := topology.PlanetLab50(topology.DefaultSeed)
	p, err := New(topo, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		b.Fatal(err)
	}
	caps := []float64{0.68, 0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.SetUniformCapacity(caps[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := p.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReplanDemandDeltaSpeedup pins the acceptance bar as a test: an
// incremental re-plan after a demand-only delta must be at least 5×
// faster than a cold end-to-end plan. The real ratio is ~1000×; 5× leaves
// enormous headroom for noisy CI machines.
func TestReplanDemandDeltaSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	topo := topology.PlanetLab50(topology.DefaultSeed)

	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := New(topo, benchConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})

	p, err := New(topo, benchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
	demands := []float64{4000, 16000}
	warm := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := p.SetDemand(demands[i%2]); err != nil {
				b.Fatal(err)
			}
			if _, err := p.Plan(); err != nil {
				b.Fatal(err)
			}
		}
	})

	coldNs := float64(cold.NsPerOp())
	warmNs := float64(warm.NsPerOp())
	if warmNs <= 0 {
		t.Fatalf("degenerate timing: warm %v ns/op", warmNs)
	}
	ratio := coldNs / warmNs
	t.Logf("cold plan %.2fms, demand-delta re-plan %.4fms: %.0fx", coldNs/1e6, warmNs/1e6, ratio)
	if ratio < 5 {
		t.Fatalf("incremental demand-delta re-plan only %.1fx faster than cold plan, want >= 5x", ratio)
	}
}
