package plan

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestPlannerColgenWeightDeltas drives a colgen-solver planner and a
// dense-solver planner through the same sequence of SetClientWeights
// deltas (which rebuild the LP skeleton, hence re-aggregate) and asserts
// the plans agree on the LP objective at every step. This is the
// aggregation-correctness property end to end: colgen aggregates clients
// by delay signature, dense never aggregates, and the results must be
// identical anyway.
func TestPlannerColgenWeightDeltas(t *testing.T) {
	topo := smallTopo(t)
	mk := func(solver string) *Planner {
		p, err := New(topo, Config{
			System:   SystemSpec{Family: "grid", Param: 3},
			Strategy: StratLP,
			Solver:   solver,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cg, dn := mk("colgen"), mk("dense")
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 6; step++ {
		switch {
		case step == 5:
			// Restore uniform demand.
			if err := cg.SetClientWeights(nil); err != nil {
				t.Fatal(err)
			}
			if err := dn.SetClientWeights(nil); err != nil {
				t.Fatal(err)
			}
		case step > 0:
			w := make([]float64, topo.Size())
			for i := range w {
				w[i] = 0.2 + rng.Float64()*3
			}
			if err := cg.SetClientWeights(w); err != nil {
				t.Fatal(err)
			}
			if err := dn.SetClientWeights(w); err != nil {
				t.Fatal(err)
			}
		}
		cs, ds := mustPlan(t, cg), mustPlan(t, dn)
		if cs.LP == nil || ds.LP == nil {
			t.Fatalf("step %d: missing LP result", step)
		}
		diff := math.Abs(cs.LP.AvgNetDelay - ds.LP.AvgNetDelay)
		if diff > 1e-9*(1+math.Abs(ds.LP.AvgNetDelay)) {
			t.Fatalf("step %d: colgen %v, dense %v (diff %g)", step, cs.LP.AvgNetDelay, ds.LP.AvgNetDelay, diff)
		}
		if !strings.HasPrefix(cs.LP.LPMethod, "colgen-") || cs.LP.Colgen == nil {
			t.Fatalf("step %d: colgen snapshot lacks colgen provenance: method %q, stats %v",
				step, cs.LP.LPMethod, cs.LP.Colgen)
		}
		if strings.HasPrefix(ds.LP.LPMethod, "colgen-") || ds.LP.Colgen != nil {
			t.Fatalf("step %d: dense snapshot carries colgen provenance: method %q", step, ds.LP.LPMethod)
		}
	}
}

// TestPlannerSolverValidation: unknown solver names are rejected at
// construction, and Reproducible pins the dense path even when colgen is
// requested.
func TestPlannerSolverValidation(t *testing.T) {
	topo := smallTopo(t)
	if _, err := New(topo, Config{System: SystemSpec{Family: "grid", Param: 3}, Solver: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown solver")
	}
	p, err := New(topo, Config{
		System:       SystemSpec{Family: "grid", Param: 3},
		Strategy:     StratLP,
		Solver:       "colgen",
		Reproducible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := mustPlan(t, p)
	if snap.LP == nil || snap.LP.LPMethod != "cold" || snap.LP.Colgen != nil {
		t.Fatalf("Reproducible did not pin the dense cold path: %+v", snap.LP)
	}
}
