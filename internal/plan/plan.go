// Package plan turns the paper's one-shot pipeline — topology → quorum
// system → placement → access strategy → evaluation — into a staged
// planner with explicit artifacts and dirty-tracking. A Planner owns
// mutable inputs (the raw RTT matrix, per-site capacities, client demand,
// the system/placement/strategy configuration) and memoizes each stage's
// output; deltas such as SetRTT, SetSiteCapacity, or SetDemand mark only
// the stages they actually invalidate, so a re-plan after a demand-only
// delta re-runs just the evaluation stage and a capacity-only delta
// re-solves the access-strategy LP warm-started from the previous optimal
// basis (a handful of pivots) instead of recomputing placement and
// strategy from scratch.
//
// Invalidation rules (each stage also invalidates everything after it):
//
//	SetRTT, AddSite, RemoveSite → topology (matrix re-closed from raw)
//	SetSystem                   → system
//	SetSiteCapacity             → placement only if a site crosses the
//	                              one-to-one eligibility threshold
//	                              (always for many-to-one); otherwise
//	                              strategy (warm, RHS-only re-solve)
//	SetClientWeights            → strategy (LP skeleton rebuild)
//	SetDemand                   → evaluation only
//
// The Planner keeps the *raw* distance matrix as the source of truth and
// re-derives the metric closure in the topology stage, so any sequence of
// deltas followed by Plan is equivalent to a cold plan of the final
// inputs — a property the package's tests assert for random delta
// sequences at every worker count.
//
// Each Plan call publishes an immutable, versioned Snapshot: deep-copied
// artifacts, the evaluation measures, and a Provenance recording which
// stages re-ran and which deltas drove them. Snapshots are what the
// deployment-manager and serving layers (internal/deploy,
// internal/serve) hand to concurrent readers. PinPlacement forces the
// placement stage to explicit targets — the hook the deployment layer's
// migration hysteresis uses to hold a placement whose replacement is not
// worth its move cost.
package plan

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/quorum"
)

// Stage identifies one pipeline stage.
type Stage int

// Pipeline stages in dependency order: dirtying a stage dirties every
// later one.
const (
	StageTopology Stage = iota
	StageSystem
	StagePlacement
	StageStrategy
	StageEval
	numStages
)

// String returns the stage's name as used in diagnostics and tables.
func (s Stage) String() string {
	switch s {
	case StageTopology:
		return "topology"
	case StageSystem:
		return "system"
	case StagePlacement:
		return "placement"
	case StageStrategy:
		return "strategy"
	case StageEval:
		return "eval"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Algorithm selects the placement construction the planner runs.
type Algorithm string

// Placement algorithms. The iterative algorithm of §4.2 is deliberately
// not a planner stage: it fuses placement and strategy into one fixpoint
// computation, so it has nothing to reuse across deltas; run it through
// placement.Iterate (or a scenario of kind "iterate") instead.
const (
	AlgoOneToOne  Algorithm = "one-to-one"
	AlgoSingleton Algorithm = "singleton"
	AlgoManyToOne Algorithm = "many-to-one"
)

// StrategyKind selects the access-strategy stage.
type StrategyKind string

// Access strategies: the paper's closest and balanced strategies need no
// optimization; "lp" solves the access-strategy LP (4.3)–(4.6) under the
// planner's current capacities.
const (
	StratClosest  StrategyKind = "closest"
	StratBalanced StrategyKind = "balanced"
	StratLP       StrategyKind = "lp"
)

// SystemSpec names a quorum-system family and its parameter.
type SystemSpec struct {
	// Family is one of "majority" ((t+1, 2t+1)), "bmajority"
	// ((2t+1, 3t+1)), "qumajority" ((4t+1, 5t+1)), "threshold" (explicit
	// (Q, N)), "grid" (k×k), or "singleton".
	Family string `json:"family"`
	// Param is t for the majority families and k for grids; ignored for
	// "threshold" and "singleton".
	Param int `json:"param,omitempty"`
	// Q, N parameterize the "threshold" family.
	Q int `json:"q,omitempty"`
	N int `json:"n,omitempty"`
}

// Build constructs the quorum system the spec names.
func (s SystemSpec) Build() (quorum.System, error) {
	switch s.Family {
	case "majority":
		return quorum.SimpleMajority(s.Param)
	case "bmajority":
		return quorum.ByzantineMajority(s.Param)
	case "qumajority":
		return quorum.QUMajority(s.Param)
	case "threshold":
		return quorum.NewThreshold(s.Q, s.N)
	case "grid":
		return quorum.NewGrid(s.Param)
	case "singleton":
		return quorum.Singleton{}, nil
	default:
		return nil, fmt.Errorf("plan: unknown system family %q", s.Family)
	}
}

// Config fixes the planner's pipeline shape. The zero value is not
// usable; System and (implicitly) Algorithm/Strategy must name valid
// choices.
type Config struct {
	// System names the quorum-system family and parameter.
	System SystemSpec `json:"system"`
	// Algorithm selects the placement construction (default one-to-one).
	Algorithm Algorithm `json:"algorithm,omitempty"`
	// Strategy selects the access-strategy stage (default closest; "lp"
	// requires an enumerable system).
	Strategy StrategyKind `json:"strategy,omitempty"`
	// Demand is the per-client demand in requests; the evaluation's alpha
	// is OpServiceTimeMS × Demand (§7). Zero evaluates pure network delay.
	Demand float64 `json:"demand,omitempty"`
	// Reproducible forces cold, Dantzig-priced LP solves so repeated plans
	// are bit-identical to a cold pipeline; the default re-solves the
	// strategy LP warm-started with partial pricing (same optima, possibly
	// a different optimal vertex on degenerate instances).
	Reproducible bool `json:"reproducible,omitempty"`
	// Workers bounds the placement anchor search's worker pool
	// (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Candidates restricts placement anchor nodes (nil tries every site).
	Candidates []int `json:"candidates,omitempty"`
	// Solver selects the access-LP algorithm for the "lp" strategy:
	// "auto" (default: dense at paper scale, column generation above
	// strategy.DefaultColgenThreshold client×quorum variables), "dense",
	// or "colgen". Reproducible pins the dense path regardless, since the
	// byte-reproducibility contract is defined by the dense pivot
	// sequence.
	Solver string `json:"solver,omitempty"`
}

func (c Config) algorithm() Algorithm {
	if c.Algorithm == "" {
		return AlgoOneToOne
	}
	return c.Algorithm
}

func (c Config) strategy() StrategyKind {
	if c.Strategy == "" {
		return StratClosest
	}
	return c.Strategy
}

// lpOptions translates the reproducibility setting into solver options.
func (c Config) lpOptions() lp.Options {
	if c.Reproducible {
		return lp.Options{}
	}
	return lp.Options{Pricing: lp.PricingPartial}
}
