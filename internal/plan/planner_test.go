package plan

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// smallTopo builds a compact three-region WAN so the property tests stay
// fast even under the race detector.
func smallTopo(t testing.TB) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Name:      "plan-test-18",
		Inflation: 1.4,
		Regions: []topology.RegionSpec{
			{Name: "west", Count: 6, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
			{Name: "east", Count: 6, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
			{Name: "eu", Count: 6, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
		},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func mustPlan(t *testing.T, p *Planner) *Snapshot {
	t.Helper()
	res, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func stageNames(res *Snapshot) string { return fmt.Sprint(res.RecomputedNames()) }

// tryPlan plans, tolerating LP infeasibility (a legitimate outcome of a
// random capacity sequence) and failing the test on any other error.
func tryPlan(t *testing.T, p *Planner) (*Snapshot, error) {
	t.Helper()
	res, err := p.Plan()
	if err != nil && !errors.Is(err, lp.ErrInfeasible) {
		t.Fatal(err)
	}
	return res, err
}

// TestDirtyTracking pins the invalidation rules: each delta recomputes
// exactly the stages its documentation promises.
func TestDirtyTracking(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{
		System:       SystemSpec{Family: "grid", Param: 3},
		Strategy:     StratLP,
		Demand:       4000,
		Reproducible: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mustPlan(t, p)
	if got, want := stageNames(res), "[topology system placement strategy eval]"; got != want {
		t.Fatalf("first plan recomputed %v, want %v", got, want)
	}

	res = mustPlan(t, p)
	if len(res.Provenance.Recomputed) != 0 {
		t.Fatalf("no-delta plan recomputed %v, want nothing", stageNames(res))
	}

	if err := p.SetDemand(16000); err != nil {
		t.Fatal(err)
	}
	res = mustPlan(t, p)
	if got, want := stageNames(res), "[eval]"; got != want {
		t.Fatalf("demand delta recomputed %v, want %v", got, want)
	}

	// A capacity tweak that stays on the eligible side of the one-to-one
	// threshold re-solves the LP but keeps the placement.
	if err := p.SetSiteCapacity(0, 0.9); err != nil {
		t.Fatal(err)
	}
	res = mustPlan(t, p)
	if got, want := stageNames(res), "[strategy eval]"; got != want {
		t.Fatalf("capacity delta recomputed %v, want %v", got, want)
	}

	// Dropping a site below the per-element load crosses the eligibility
	// threshold, so the placement must be reconsidered.
	minCap := res.System.UniformElementLoad()
	if err := p.SetSiteCapacity(0, minCap/2); err != nil {
		t.Fatal(err)
	}
	res = mustPlan(t, p)
	if got, want := stageNames(res), "[placement strategy eval]"; got != want {
		t.Fatalf("threshold-crossing capacity delta recomputed %v, want %v", got, want)
	}

	if err := p.SetRTT(0, 1, 250); err != nil {
		t.Fatal(err)
	}
	res = mustPlan(t, p)
	if got, want := stageNames(res), "[topology placement strategy eval]"; got != want {
		t.Fatalf("RTT delta recomputed %v, want %v", got, want)
	}

	if err := p.SetSystem(SystemSpec{Family: "grid", Param: 4}); err != nil {
		t.Fatal(err)
	}
	res = mustPlan(t, p)
	if got, want := stageNames(res), "[system placement strategy eval]"; got != want {
		t.Fatalf("system delta recomputed %v, want %v", got, want)
	}
}

// applyRandomDelta mutates the planner with one random delta, returning a
// description for failure messages. The generator only produces valid
// deltas, so every call must succeed.
func applyRandomDelta(t *testing.T, rng *rand.Rand, p *Planner, churn bool) string {
	t.Helper()
	n := p.Size()
	for {
		switch op := rng.Intn(7); op {
		case 0, 1: // RTT edit
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			ms := 5 + rng.Float64()*295
			if err := p.SetRTT(u, v, ms); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("SetRTT(%d,%d,%.2f)", u, v, ms)
		case 2, 3: // capacity edit (kept above typical optimal loads so the
			// strategy LP stays feasible throughout the sequence)
			v := rng.Intn(n)
			c := 0.6 + rng.Float64()*0.4
			if err := p.SetSiteCapacity(v, c); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("SetSiteCapacity(%d,%.3f)", v, c)
		case 4: // demand edit
			d := float64(rng.Intn(5)) * 4000
			if err := p.SetDemand(d); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("SetDemand(%.0f)", d)
		case 5: // add a site
			if !churn {
				continue
			}
			name := fmt.Sprintf("new-%d", rng.Int63())
			rtts := make([]float64, n)
			for i := range rtts {
				rtts[i] = 10 + rng.Float64()*200
			}
			site := topology.Site{Name: name, Region: "new", Lat: 10, Lon: 10}
			if err := p.AddSite(site, rtts, 1); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("AddSite(%s)", name)
		default: // remove a site
			if !churn || n <= 14 {
				continue
			}
			name := p.Site(rng.Intn(n)).Name
			if err := p.RemoveSite(name); err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("RemoveSite(%s)", name)
		}
	}
}

// TestReplanEquivalence is the package's core property: any sequence of
// deltas with Plan() interleaved after each one ends in exactly the state
// a cold plan of the final inputs produces — for every placement
// algorithm, strategy kind, and worker count.
func TestReplanEquivalence(t *testing.T) {
	topo := smallTopo(t)
	cases := []struct {
		name  string
		cfg   Config
		churn bool
	}{
		{name: "one-to-one/lp", cfg: Config{System: SystemSpec{Family: "grid", Param: 3}, Strategy: StratLP, Demand: 16000, Reproducible: true}, churn: true},
		{name: "one-to-one/closest", cfg: Config{System: SystemSpec{Family: "majority", Param: 3}, Strategy: StratClosest, Demand: 4000, Reproducible: true}, churn: true},
		{name: "many-to-one/lp", cfg: Config{System: SystemSpec{Family: "grid", Param: 3}, Algorithm: AlgoManyToOne, Strategy: StratLP, Demand: 16000, Reproducible: true}, churn: false},
		{name: "singleton/balanced", cfg: Config{System: SystemSpec{Family: "singleton"}, Algorithm: AlgoSingleton, Strategy: StratBalanced, Reproducible: true}, churn: true},
	}
	workerCounts := []int{1, 2, 3, 8}
	const deltas = 8
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range workerCounts {
				cfg := tc.cfg
				cfg.Workers = workers
				rng := rand.New(rand.NewSource(int64(workers) * 977))

				inc, err := New(topo, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := New(topo, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := inc.Plan(); err != nil {
					t.Fatal(err)
				}

				var trace []string
				rngCold := rand.New(rand.NewSource(int64(workers) * 977))
				var incRes *Snapshot
				var incErr error
				for i := 0; i < deltas; i++ {
					trace = append(trace, applyRandomDelta(t, rng, inc, tc.churn))
					applyRandomDelta(t, rngCold, cold, tc.churn)
					incRes, incErr = tryPlan(t, inc)
				}
				coldRes, coldErr := tryPlan(t, cold)

				ctx := fmt.Sprintf("workers=%d trace=%v", workers, trace)
				if (incErr == nil) != (coldErr == nil) {
					t.Fatalf("%s: incremental err %v, cold err %v", ctx, incErr, coldErr)
				}
				if incErr != nil {
					continue // both infeasible at the final inputs: equivalent
				}
				if got, want := incRes.Placement.Targets(), coldRes.Placement.Targets(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: incremental placement %v != cold %v", ctx, got, want)
				}
				if incRes.Response != coldRes.Response {
					t.Fatalf("%s: response %v != cold %v", ctx, incRes.Response, coldRes.Response)
				}
				if incRes.NetDelay != coldRes.NetDelay {
					t.Fatalf("%s: net delay %v != cold %v", ctx, incRes.NetDelay, coldRes.NetDelay)
				}
				if incRes.MaxLoad != coldRes.MaxLoad {
					t.Fatalf("%s: max load %v != cold %v", ctx, incRes.MaxLoad, coldRes.MaxLoad)
				}
				if (incRes.LP == nil) != (coldRes.LP == nil) {
					t.Fatalf("%s: LP presence mismatch", ctx)
				}
				if incRes.LP != nil && !reflect.DeepEqual(incRes.LP.Strategy.Probs, coldRes.LP.Strategy.Probs) {
					t.Fatalf("%s: LP strategies differ", ctx)
				}
			}
		})
	}
}

// TestWarmReplanMatchesColdObjective checks the fast path: warm-started
// capacity re-solves reach the same LP optimum a cold reproducible solve
// finds (the vertex may differ on degenerate instances, the objective may
// not).
func TestWarmReplanMatchesColdObjective(t *testing.T) {
	topo := smallTopo(t)
	mk := func(repro bool) *Planner {
		p, err := New(topo, Config{
			System:       SystemSpec{Family: "grid", Param: 3},
			Strategy:     StratLP,
			Demand:       16000,
			Reproducible: repro,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	warm, cold := mk(false), mk(true)
	if _, err := warm.Plan(); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Plan(); err != nil {
		t.Fatal(err)
	}
	lopt := 5.0 / 9 // grid(3x3) optimal load (2k-1)/k²
	for i := 0; i < 6; i++ {
		c := lopt + float64(i+1)*(1-lopt)/7
		for _, p := range []*Planner{warm, cold} {
			if err := p.SetUniformCapacity(c); err != nil {
				t.Fatal(err)
			}
		}
		w := mustPlan(t, warm)
		cd := mustPlan(t, cold)
		if w.LP == nil || cd.LP == nil {
			t.Fatalf("cap %.3f: missing LP result", c)
		}
		if diff := math.Abs(w.LP.AvgNetDelay - cd.LP.AvgNetDelay); diff > 1e-6*(1+math.Abs(cd.LP.AvgNetDelay)) {
			t.Fatalf("cap %.3f: warm objective %v vs cold %v (diff %v)", c, w.LP.AvgNetDelay, cd.LP.AvgNetDelay, diff)
		}
	}
}

// TestCapacityTightenStaysWarm pins the dual warm re-solve wiring:
// capacity-only tightening deltas must re-solve the strategy LP from the
// retained skeleton — dual-simplex repair when the tightened right-hand
// sides break the previous basis, never a cold rebuild — while matching a
// reproducible (all-cold) planner fed the same deltas.
func TestCapacityTightenStaysWarm(t *testing.T) {
	topo := smallTopo(t)
	mk := func(repro bool) *Planner {
		p, err := New(topo, Config{
			System:       SystemSpec{Family: "grid", Param: 3},
			Strategy:     StratLP,
			Demand:       16000,
			Reproducible: repro,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	warm, cold := mk(false), mk(true)
	first := mustPlan(t, warm)
	mustPlan(t, cold)
	if first.LP.LPMethod != lp.MethodCold {
		t.Fatalf("first solve reported %q, want %q", first.LP.LPMethod, lp.MethodCold)
	}
	lopt := 5.0 / 9 // grid(3x3) optimal load (2k-1)/k²
	dualSeen := false
	// Walk capacities downward toward Lopt: each step tightens every RHS.
	for i := 5; i >= 0; i-- {
		c := lopt + float64(i+1)*(1-lopt)/8
		for _, p := range []*Planner{warm, cold} {
			if err := p.SetUniformCapacity(c); err != nil {
				t.Fatal(err)
			}
		}
		w, errW := tryPlan(t, warm)
		cd, errC := tryPlan(t, cold)
		if (errW == nil) != (errC == nil) {
			t.Fatalf("cap %.3f: warm err=%v, cold err=%v", c, errW, errC)
		}
		if errW != nil {
			continue
		}
		switch w.LP.LPMethod {
		case lp.MethodWarmDual:
			dualSeen = true
		case lp.MethodWarmPrimal:
		default:
			t.Errorf("cap %.3f: tightening re-solve reported %q, want a warm method", c, w.LP.LPMethod)
		}
		if diff := math.Abs(w.LP.AvgNetDelay - cd.LP.AvgNetDelay); diff > 1e-6*(1+math.Abs(cd.LP.AvgNetDelay)) {
			t.Fatalf("cap %.3f: warm objective %v vs cold %v (diff %v)", c, w.LP.AvgNetDelay, cd.LP.AvgNetDelay, diff)
		}
	}
	if !dualSeen {
		t.Error("no tightening step exercised the dual-simplex repair path")
	}
}

// TestMetricRawSkipsReclosure pins the closure-skip invariant: planners
// seeded from an already-metric topology must produce the same planned
// metric whether or not the topology stage re-runs the closure, and an
// RTT edit (which can break the triangle inequality) must bring the
// closure back.
func TestMetricRawSkipsReclosure(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{System: SystemSpec{Family: "grid", Param: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.rawMetric {
		t.Fatal("planner seeded from a Topology should trust its metric")
	}
	snap := mustPlan(t, p)
	for u := 0; u < topo.Size(); u++ {
		for v := 0; v < topo.Size(); v++ {
			if got, want := snap.Topology.RTT(u, v), topo.RTT(u, v); got != want {
				t.Fatalf("RTT(%d,%d): closure-skipped plan has %v, source metric %v", u, v, got, want)
			}
		}
	}
	// A drastic shortcut edit violates the triangle inequality in raw; the
	// closure must run again and ripple the shortcut through other pairs.
	if err := p.SetRTT(0, topo.Size()-1, 0.01); err != nil {
		t.Fatal(err)
	}
	if p.rawMetric {
		t.Fatal("SetRTT must clear the trusted-metric flag")
	}
	snap2 := mustPlan(t, p)
	if !snap2.Topology.Distances().IsMetric(1e-6) {
		t.Fatal("re-closed topology is not a metric")
	}
}

// TestPlannerValidation exercises input checking on the delta surface.
func TestPlannerValidation(t *testing.T) {
	topo := smallTopo(t)
	if _, err := New(topo, Config{System: SystemSpec{Family: "nope"}}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := New(topo, Config{System: SystemSpec{Family: "majority", Param: 30}, Strategy: StratLP}); err == nil {
		t.Error("LP over the non-enumerable majority(31,61) was accepted")
	}
	p, err := New(topo, Config{System: SystemSpec{Family: "grid", Param: 3}})
	if err != nil {
		t.Fatal(err)
	}
	bad := []error{
		p.SetRTT(0, 0, 10),
		p.SetRTT(0, 1, -1),
		p.SetRTT(0, 99, 10),
		p.SetSiteCapacity(0, 0),
		p.SetSiteCapacity(0, math.NaN()),
		p.SetDemand(-1),
		p.SetClientWeights([]float64{1}),
		p.AddSite(topology.Site{}, nil, 1),
		p.RemoveSite("no-such-site"),
	}
	for i, err := range bad {
		if err == nil {
			t.Errorf("invalid delta %d accepted", i)
		}
	}
	if res, err := p.Plan(); err != nil {
		t.Fatal(err)
	} else if len(res.Provenance.Recomputed) != 5 {
		t.Fatalf("first plan recomputed %v", res.RecomputedNames())
	}
}

// TestSnapshotVersioningAndProvenance checks the snapshot contract:
// versions increase by one per Plan, provenance records the deltas that
// drove the re-plan, and the summary labels match the stage sets.
func TestSnapshotVersioningAndProvenance(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{
		System:   SystemSpec{Family: "grid", Param: 3},
		Strategy: StratLP,
		Demand:   4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustPlan(t, p)
	if s1.Version != 1 || !s1.Provenance.Cold() || s1.Provenance.Summary() != "cold" {
		t.Fatalf("cold snapshot: version %d, provenance %+v", s1.Version, s1.Provenance)
	}
	if err := p.SetDemand(16000); err != nil {
		t.Fatal(err)
	}
	s2 := mustPlan(t, p)
	if s2.Version != 2 || !s2.Provenance.EvalOnly() || s2.Provenance.Summary() != "eval-only" {
		t.Fatalf("demand snapshot: version %d, provenance %+v", s2.Version, s2.Provenance)
	}
	if len(s2.Provenance.Deltas) != 1 || s2.Provenance.Deltas[0] != "demand=16000" {
		t.Fatalf("demand snapshot deltas %v", s2.Provenance.Deltas)
	}
	if s2.Demand != 16000 {
		t.Fatalf("snapshot demand %v, want 16000", s2.Demand)
	}
	s3 := mustPlan(t, p)
	if s3.Version != 3 || s3.Provenance.Summary() != "none" || len(s3.Provenance.Deltas) != 0 {
		t.Fatalf("no-op snapshot: version %d, provenance %+v", s3.Version, s3.Provenance)
	}
}

// TestSnapshotImmutable checks that later deltas do not reach into an
// already-published snapshot: its topology keeps the capacities and
// sites of its plan.
func TestSnapshotImmutable(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{System: SystemSpec{Family: "grid", Param: 3}})
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustPlan(t, p)
	oldCap := s1.Topology.Capacity(0)
	oldSize := s1.Topology.Size()
	if err := p.SetSiteCapacity(0, oldCap*2); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveSite(p.Site(p.Size() - 1).Name); err != nil {
		t.Fatal(err)
	}
	s2 := mustPlan(t, p)
	if s1.Topology.Capacity(0) != oldCap {
		t.Errorf("published snapshot capacity mutated: %v -> %v", oldCap, s1.Topology.Capacity(0))
	}
	if s1.Topology.Size() != oldSize {
		t.Errorf("published snapshot size mutated: %v -> %v", oldSize, s1.Topology.Size())
	}
	if s2.Topology.Size() != oldSize-1 || s2.Topology.Capacity(0) != oldCap*2 {
		t.Errorf("new snapshot missed the deltas: size %d cap %v", s2.Topology.Size(), s2.Topology.Capacity(0))
	}
}

// TestPinPlacement checks the deployment layer's hold primitive: a pin
// survives re-plans that would otherwise move the placement, pinned
// capacity deltas never dirty the placement stage, and clearing the pin
// re-runs the construction.
func TestPinPlacement(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{
		System:   SystemSpec{Family: "grid", Param: 3},
		Strategy: StratLP,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustPlan(t, p)
	pinned := s1.Placement.Targets()
	if err := p.PinPlacement(pinned); err != nil {
		t.Fatal(err)
	}

	// A drastic RTT change re-closes the topology; without the pin the
	// construction could move, but the pinned targets must hold.
	for v := 1; v < p.Size(); v++ {
		if err := p.SetRTT(0, v, p.RTT(0, v)*10); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustPlan(t, p)
	if !reflect.DeepEqual(s2.Placement.Targets(), pinned) {
		t.Fatalf("pinned placement moved: %v -> %v", pinned, s2.Placement.Targets())
	}
	if !s2.Provenance.Pinned {
		t.Error("pinned snapshot not flagged in provenance")
	}

	// Capacity deltas on a pinned planner can never dirty the placement.
	if err := p.SetSiteCapacity(pinned[0], 0.05); err != nil {
		t.Fatal(err)
	}
	if p.Dirty(StagePlacement) {
		t.Error("capacity delta dirtied a pinned placement")
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}

	// Clearing the pin re-runs the construction under the new metric —
	// the same result as a cold plan of the current inputs.
	p.ClearPlacementPin()
	s3, err3 := tryPlan(t, p)
	cold, err := New(topo, Config{
		System:   SystemSpec{Family: "grid", Param: 3},
		Strategy: StratLP,
		Demand:   8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < cold.Size(); v++ {
		if err := cold.SetRTT(0, v, cold.RTT(0, v)*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := cold.SetSiteCapacity(pinned[0], 0.05); err != nil {
		t.Fatal(err)
	}
	coldRes, coldErr := tryPlan(t, cold)
	if (err3 == nil) != (coldErr == nil) {
		t.Fatalf("unpinned err %v, cold err %v", err3, coldErr)
	}
	if err3 == nil && !reflect.DeepEqual(s3.Placement.Targets(), coldRes.Placement.Targets()) {
		t.Fatalf("unpinned placement %v != cold %v", s3.Placement.Targets(), coldRes.Placement.Targets())
	}

	// Membership changes drop the pin (targets index the old site set).
	if err := p.PinPlacement(s3.Placement.Targets()); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveSite(p.Site(p.Size() - 1).Name); err != nil {
		t.Fatal(err)
	}
	if p.PlacementPinned() {
		t.Error("pin survived a membership change")
	}

	// Pin validation.
	if err := p.PinPlacement(nil); err == nil {
		t.Error("empty pin accepted")
	}
	if err := p.PinPlacement([]int{-1, 0, 1, 2, 3, 4, 5, 6, 7}); err == nil {
		t.Error("out-of-range pin accepted")
	}
}

// TestProvenanceHygiene: rejected deltas never reach the provenance
// log, and overflow is summarized with a count.
func TestProvenanceHygiene(t *testing.T) {
	topo := smallTopo(t)
	p, err := New(topo, Config{System: SystemSpec{Family: "grid", Param: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Plan(); err != nil {
		t.Fatal(err)
	}
	if err := p.SetSiteCapacity(0, -5); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := p.SetUniformCapacity(math.NaN()); err == nil {
		t.Fatal("NaN capacity accepted")
	}
	if got := p.PendingDeltas(); got != 0 {
		t.Fatalf("rejected deltas logged: %d pending", got)
	}
	snap := mustPlan(t, p)
	if len(snap.Provenance.Deltas) != 0 {
		t.Fatalf("rejected deltas in provenance: %v", snap.Provenance.Deltas)
	}

	// Overflow: more than 64 effective deltas summarize as "+N more".
	for i := 0; i < 70; i++ {
		if err := p.SetRTT(0, 1, 100+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap = mustPlan(t, p)
	ds := snap.Provenance.Deltas
	if len(ds) != 65 {
		t.Fatalf("overflowed delta log has %d entries, want 64 + marker", len(ds))
	}
	if ds[64] != "… (+6 more)" {
		t.Fatalf("overflow marker %q, want \"… (+6 more)\"", ds[64])
	}
}
