package plan

import (
	"fmt"
	"math"
	"slices"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Planner owns the staged pipeline. It is not safe for concurrent use;
// a Planner is one logical deployment being re-tuned over time.
type Planner struct {
	cfg Config

	// Mutable inputs. raw is the pre-closure RTT matrix — the source of
	// truth the topology stage closes into a metric, so edits compose the
	// same way whether applied incrementally or all at once. rawMetric
	// records that raw is already a metric (true at New, since a
	// Topology's matrix is one; SetRTT and AddSite clear it, RemoveSite
	// preserves it — a principal submatrix of a metric is a metric), in
	// which case the topology stage skips the O(n³) closure entirely.
	name      string
	sites     []topology.Site
	raw       *graph.Matrix
	rawMetric bool
	caps      []float64
	alpha     float64
	weights   []float64 // nil = uniform client demand

	// pin forces the placement stage to these element→site targets
	// instead of running the construction algorithm (nil = construct).
	pin []int

	dirty [numStages]bool

	// version counts Plan calls; pending logs the deltas applied since
	// the last Plan for the next snapshot's provenance (pendingDropped
	// counts overflow past the note cap).
	version        uint64
	pending        []string
	pendingDropped int

	// Stage artifacts.
	topo  *topology.Topology
	sys   quorum.System
	f     core.Placement
	eval  *core.Eval
	opt   *strategy.Optimizer
	optOK bool // LP skeleton matches (topology, system, placement, weights)
	lpRes *strategy.Result
	strat core.Strategy
}

// New builds a planner over a starting topology. The topology is deep-
// copied (distances, sites, capacities), so later mutations of either side
// are independent.
func New(topo *topology.Topology, cfg Config) (*Planner, error) {
	if topo == nil {
		return nil, fmt.Errorf("plan: nil topology")
	}
	switch cfg.algorithm() {
	case AlgoOneToOne, AlgoSingleton, AlgoManyToOne:
	default:
		return nil, fmt.Errorf("plan: unknown placement algorithm %q", cfg.Algorithm)
	}
	switch cfg.strategy() {
	case StratClosest, StratBalanced, StratLP:
	default:
		return nil, fmt.Errorf("plan: unknown strategy kind %q", cfg.Strategy)
	}
	if cfg.Demand < 0 || math.IsNaN(cfg.Demand) || math.IsInf(cfg.Demand, 0) {
		return nil, fmt.Errorf("plan: invalid demand %v", cfg.Demand)
	}
	if _, err := strategy.ParseSolver(cfg.Solver); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	sys, err := cfg.System.Build()
	if err != nil {
		return nil, err
	}
	if cfg.strategy() == StratLP && !sys.Enumerable() {
		return nil, fmt.Errorf("plan: strategy %q needs an enumerable system, got %s", StratLP, sys.Name())
	}
	sites := make([]topology.Site, topo.Size())
	for i := range sites {
		sites[i] = topo.Site(i)
	}
	p := &Planner{
		cfg:       cfg,
		name:      topo.Name(),
		sites:     sites,
		raw:       topo.Distances().Clone(),
		rawMetric: true, // a Topology's matrix is a metric by construction
		caps:      topo.Capacities(),
		alpha:     core.AlphaForDemand(cfg.Demand),
	}
	for s := Stage(0); s < numStages; s++ {
		p.dirty[s] = true
	}
	return p, nil
}

// Size returns the current number of sites.
func (p *Planner) Size() int { return len(p.sites) }

// Site returns site i's metadata.
func (p *Planner) Site(i int) topology.Site { return p.sites[i] }

// SiteIndex returns the index of the named site, or -1.
func (p *Planner) SiteIndex(name string) int {
	for i, s := range p.sites {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// RTT returns the current raw (pre-closure) round-trip time between two
// sites. The planned topology's metric may be lower where the closure
// found a shorter path.
func (p *Planner) RTT(u, v int) float64 { return p.raw.At(u, v) }

// Capacity returns site v's capacity.
func (p *Planner) Capacity(v int) float64 { return p.caps[v] }

// Demand returns the current per-client demand.
func (p *Planner) Demand() float64 { return p.alpha / core.OpServiceTimeMS }

// SetRTT updates the raw round-trip time between two sites (both
// directions). The topology stage re-closes the metric on the next Plan,
// so other pairs may ride through the edited link if that is shorter.
func (p *Planner) SetRTT(u, v int, ms float64) error {
	if err := p.checkSite(u); err != nil {
		return err
	}
	if err := p.checkSite(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("plan: cannot set self-RTT of site %d", u)
	}
	if ms <= 0 || math.IsNaN(ms) || math.IsInf(ms, 0) {
		return fmt.Errorf("plan: invalid RTT %v for sites (%d,%d)", ms, u, v)
	}
	if p.raw.At(u, v) == ms {
		return nil
	}
	p.raw.Set(u, v, ms)
	p.rawMetric = false // the edit may break the triangle inequality
	p.note("rtt %s~%s=%.3gms", p.sites[u].Name, p.sites[v].Name, ms)
	p.invalidateTopology()
	return nil
}

// SetSiteCapacity updates one site's capacity. When the change cannot
// affect the placement (one-to-one constructions only consult the
// eligibility predicate cap ≥ per-element load; singleton ignores
// capacities), only the strategy and evaluation stages are invalidated,
// and the strategy LP re-solves with just the capacity right-hand sides
// changed — warm-started unless the planner is reproducible.
func (p *Planner) SetSiteCapacity(v int, c float64) error {
	if err := p.checkSite(v); err != nil {
		return err
	}
	old := p.caps[v]
	if err := p.setSiteCapacity(v, c); err != nil {
		return err
	}
	if old != c {
		p.note("capacity %s=%.3g", p.sites[v].Name, c)
	}
	return nil
}

// SetUniformCapacity sets every site's capacity to c.
func (p *Planner) SetUniformCapacity(c float64) error {
	changed := false
	for v := range p.caps {
		old := p.caps[v]
		if err := p.setSiteCapacity(v, c); err != nil {
			return err
		}
		if old != c {
			changed = true
		}
	}
	if changed {
		p.note("uniform-capacity=%.3g", c)
	}
	return nil
}

// setSiteCapacity is SetSiteCapacity without the provenance note.
func (p *Planner) setSiteCapacity(v int, c float64) error {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("plan: invalid capacity %v for site %d", c, v)
	}
	old := p.caps[v]
	if old == c {
		return nil
	}
	p.caps[v] = c
	if p.capacityAffectsPlacement(old, c) {
		p.invalidatePlacement()
	} else {
		p.invalidateStrategy(true)
	}
	return nil
}

// capacityAffectsPlacement reports whether a capacity change old→new at
// one site can alter the placement stage's output.
func (p *Planner) capacityAffectsPlacement(old, new float64) bool {
	if p.pin != nil {
		// A pinned placement is forced regardless of capacities.
		return false
	}
	switch p.cfg.algorithm() {
	case AlgoSingleton:
		// The median ignores capacities.
		return false
	case AlgoOneToOne:
		// One-to-one constructions use capacities only through the
		// eligibility predicate cap(w) ≥ per-element load (with the ball
		// search's tolerance); if the site stays on the same side, the
		// candidate balls — and hence the placement — are unchanged.
		if p.dirty[StageSystem] || p.sys == nil {
			return true // no trusted system to derive the threshold from
		}
		minCap := p.sys.UniformElementLoad() - 1e-12
		return (old >= minCap) != (new >= minCap)
	default:
		// Many-to-one feeds capacities into the GAP LP directly.
		return true
	}
}

// SetDemand updates the per-client demand; the evaluation's alpha becomes
// OpServiceTimeMS × demand. Only the evaluation stage is invalidated: the
// access-strategy LP minimizes network delay under capacity constraints
// and does not depend on alpha.
func (p *Planner) SetDemand(demand float64) error {
	if demand < 0 || math.IsNaN(demand) || math.IsInf(demand, 0) {
		return fmt.Errorf("plan: invalid demand %v", demand)
	}
	alpha := core.AlphaForDemand(demand)
	if alpha == p.alpha {
		return nil
	}
	p.alpha = alpha
	p.note("demand=%.6g", demand)
	p.invalidateEval()
	return nil
}

// SetClientWeights assigns relative demand weights to the sites (every
// site is a client, in index order). Weights scale both the response-time
// averages and the strategy LP's objective and load coefficients, so the
// LP skeleton is rebuilt. Pass nil to restore uniform demand.
func (p *Planner) SetClientWeights(weights []float64) error {
	if weights != nil {
		if len(weights) != len(p.sites) {
			return fmt.Errorf("plan: %d weights for %d sites", len(weights), len(p.sites))
		}
		for i, w := range weights {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("plan: invalid weight %v for site %d", w, i)
			}
		}
		weights = append([]float64(nil), weights...)
	}
	p.weights = weights
	if weights == nil {
		p.note("weights=uniform")
	} else {
		p.note("weights=per-site")
	}
	// Weights enter the LP coefficients, not just the RHS: drop the
	// skeleton.
	p.invalidateStrategy(false)
	return nil
}

// SetSystem swaps the quorum-system family or parameter, invalidating
// everything from the system stage down.
func (p *Planner) SetSystem(spec SystemSpec) error {
	sys, err := spec.Build()
	if err != nil {
		return err
	}
	if p.cfg.strategy() == StratLP && !sys.Enumerable() {
		return fmt.Errorf("plan: strategy %q needs an enumerable system, got %s", StratLP, sys.Name())
	}
	p.cfg.System = spec
	p.note("system=%s/%d", spec.Family, spec.Param)
	p.invalidateSystem()
	return nil
}

// AddSite appends a site with raw RTTs to every existing site (in index
// order) and the given capacity. Client weights reset to uniform.
func (p *Planner) AddSite(site topology.Site, rtts []float64, capacity float64) error {
	if p.cfg.Candidates != nil {
		return fmt.Errorf("plan: cannot change site membership with a fixed candidate list")
	}
	if site.Name == "" {
		return fmt.Errorf("plan: site needs a name")
	}
	if p.SiteIndex(site.Name) >= 0 {
		return fmt.Errorf("plan: duplicate site name %q", site.Name)
	}
	n := len(p.sites)
	if len(rtts) != n {
		return fmt.Errorf("plan: %d RTTs for %d existing sites", len(rtts), n)
	}
	for i, d := range rtts {
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("plan: invalid RTT %v to site %d", d, i)
		}
	}
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("plan: invalid capacity %v", capacity)
	}
	raw := graph.NewMatrix(n + 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			raw.Set(i, j, p.raw.At(i, j))
		}
		raw.Set(i, n, rtts[i])
	}
	p.raw = raw
	p.rawMetric = false // the new row's RTTs are arbitrary
	p.sites = append(p.sites, site)
	p.caps = append(p.caps, capacity)
	p.weights = nil
	p.pin = nil // pin targets index the old site set
	p.note("add-site %s", site.Name)
	p.invalidateTopology()
	return nil
}

// RemoveSite drops the named site — modeling decommissioning or a site
// lost to an outage the planner must re-plan around. At least two sites
// must remain.
func (p *Planner) RemoveSite(name string) error {
	if p.cfg.Candidates != nil {
		return fmt.Errorf("plan: cannot change site membership with a fixed candidate list")
	}
	v := p.SiteIndex(name)
	if v < 0 {
		return fmt.Errorf("plan: no site named %q", name)
	}
	n := len(p.sites)
	if n <= 2 {
		return fmt.Errorf("plan: cannot remove %q: only %d sites left", name, n)
	}
	raw := graph.NewMatrix(n - 1)
	for i, oi := 0, 0; oi < n; oi++ {
		if oi == v {
			continue
		}
		for j, oj := 0, 0; oj < n; oj++ {
			if oj == v {
				continue
			}
			if j > i {
				raw.Set(i, j, p.raw.At(oi, oj))
			}
			j++
		}
		i++
	}
	p.raw = raw
	p.sites = append(p.sites[:v:v], p.sites[v+1:]...)
	p.caps = append(p.caps[:v:v], p.caps[v+1:]...)
	p.weights = nil
	p.pin = nil // pin targets index the old site set
	p.note("remove-site %s", name)
	p.invalidateTopology()
	return nil
}

// PinPlacement forces the placement stage to the given element→site
// targets: the next Plan (and every one after, until the pin is cleared
// or site membership changes) skips the construction algorithm and
// evaluates this exact placement. The deployment layer uses pins to hold
// a placement in place when a re-place's predicted gain does not justify
// the migration cost. Targets are validated against the current site set
// here and against the system's universe at Plan time; capacity
// eligibility is deliberately not enforced — a pin is an override.
func (p *Planner) PinPlacement(targets []int) error {
	if len(targets) == 0 {
		return fmt.Errorf("plan: empty placement pin")
	}
	for _, w := range targets {
		if w < 0 || w >= len(p.sites) {
			return fmt.Errorf("plan: pin target %d out of range [0,%d)", w, len(p.sites))
		}
	}
	targets = append([]int(nil), targets...)
	if p.pin != nil && slices.Equal(p.pin, targets) {
		return nil
	}
	p.pin = targets
	p.note("pin-placement")
	p.invalidatePlacement()
	return nil
}

// ClearPlacementPin restores the construction algorithm; the next Plan
// re-places from scratch.
func (p *Planner) ClearPlacementPin() {
	if p.pin == nil {
		return
	}
	p.pin = nil
	p.note("unpin-placement")
	p.invalidatePlacement()
}

// PlacementPinned reports whether a pin is in force.
func (p *Planner) PlacementPinned() bool { return p.pin != nil }

// Dirty reports whether the stage would be recomputed by the next Plan.
func (p *Planner) Dirty(s Stage) bool { return p.dirty[s] }

// AnyDirty reports whether the next Plan would recompute anything.
func (p *Planner) AnyDirty() bool {
	for s := Stage(0); s < numStages; s++ {
		if p.dirty[s] {
			return true
		}
	}
	return false
}

// Version returns the version of the most recent Plan (0 before the
// first).
func (p *Planner) Version() uint64 { return p.version }

// PendingDeltas counts the effective mutations applied since the last
// Plan (value no-ops do not count) — the deployment layer's signal for
// whether a batch changed anything.
func (p *Planner) PendingDeltas() int { return len(p.pending) + p.pendingDropped }

// note logs one applied delta for the next snapshot's provenance,
// capping the log so an unbounded delta stream cannot grow a snapshot;
// overflow is summarized as a trailing "… (+N more)" at Plan time.
func (p *Planner) note(format string, args ...interface{}) {
	const maxNotes = 64
	if len(p.pending) >= maxNotes {
		p.pendingDropped++
		return
	}
	p.pending = append(p.pending, fmt.Sprintf(format, args...))
}

func (p *Planner) checkSite(v int) error {
	if v < 0 || v >= len(p.sites) {
		return fmt.Errorf("plan: site %d out of range [0,%d)", v, len(p.sites))
	}
	return nil
}

func (p *Planner) invalidateTopology() {
	p.dirty[StageTopology] = true
	p.invalidatePlacement()
}

func (p *Planner) invalidateSystem() {
	p.dirty[StageSystem] = true
	p.invalidatePlacement()
}

func (p *Planner) invalidatePlacement() {
	p.dirty[StagePlacement] = true
	p.optOK = false
	p.invalidateStrategy(true)
}

// invalidateStrategy marks the strategy stage dirty; keepSkeleton retains
// the LP workspace for an RHS-only warm re-solve.
func (p *Planner) invalidateStrategy(keepSkeleton bool) {
	p.dirty[StageStrategy] = true
	if !keepSkeleton {
		p.optOK = false
	}
	p.invalidateEval()
}

func (p *Planner) invalidateEval() { p.dirty[StageEval] = true }

// Plan brings every stage up to date, recomputing only what the deltas
// since the previous Plan invalidated, and publishes the result as an
// immutable, versioned Snapshot. The snapshot owns deep copies of
// everything the planner later mutates, so it can be handed to
// concurrent readers while the planner keeps absorbing deltas.
func (p *Planner) Plan() (*Snapshot, error) {
	var recomputed []Stage

	if p.dirty[StageTopology] {
		closed := p.raw.Clone()
		if !p.rawMetric {
			closed.MetricClosure()
		}
		// Either branch delivers a metric (raw was one, or the closure just
		// made it one), so the O(n³) IsMetric re-verification of
		// topology.New is skipped too.
		topo, err := topology.NewMetric(p.name, p.sites, closed)
		if err != nil {
			return nil, fmt.Errorf("plan: topology stage: %w", err)
		}
		p.topo = topo
		recomputed = append(recomputed, StageTopology)
	}
	// Capacities live on the topology artifact; sync them cheaply every
	// Plan so the placement and strategy stages read current values.
	for v, c := range p.caps {
		if err := p.topo.SetCapacity(v, c); err != nil {
			return nil, fmt.Errorf("plan: site %q: %w", p.sites[v].Name, err)
		}
	}

	if p.dirty[StageSystem] {
		sys, err := p.cfg.System.Build()
		if err != nil {
			return nil, fmt.Errorf("plan: system stage: %w", err)
		}
		p.sys = sys
		recomputed = append(recomputed, StageSystem)
	}

	if p.dirty[StagePlacement] {
		f, err := p.computePlacement()
		if err != nil {
			return nil, fmt.Errorf("plan: placement stage: %w", err)
		}
		p.f = f
		eval, err := core.NewEval(p.topo, p.sys, p.f, p.alpha)
		if err != nil {
			return nil, fmt.Errorf("plan: placement stage: %w", err)
		}
		p.eval = eval
		recomputed = append(recomputed, StagePlacement)
	}
	// Client weights live on the evaluator; sync them every Plan (they
	// may have changed without the placement stage re-running). Explicit
	// uniform weights normalize to exactly the nil-weight default.
	weights := p.weights
	if weights == nil {
		weights = make([]float64, len(p.sites))
		for i := range weights {
			weights[i] = 1
		}
	}
	if err := p.eval.SetClientWeights(weights); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}

	if p.dirty[StageStrategy] {
		if err := p.computeStrategy(); err != nil {
			return nil, fmt.Errorf("plan: strategy stage: %w", err)
		}
		recomputed = append(recomputed, StageStrategy)
	}

	if p.dirty[StageEval] {
		recomputed = append(recomputed, StageEval)
	}
	// The measures are cheap relative to the stages above; recompute them
	// whenever anything was dirty so the snapshot is always
	// self-consistent.
	p.eval.Alpha = p.alpha
	p.version++
	deltas := p.pending
	if p.pendingDropped > 0 {
		deltas = append(deltas, fmt.Sprintf("… (+%d more)", p.pendingDropped))
	}
	snap := &Snapshot{
		Version:   p.version,
		Topology:  p.topo.Clone(),
		System:    p.sys,
		Placement: p.f,
		Strategy:  p.strat,
		LP:        p.lpRes,
		Alpha:     p.alpha,
		Demand:    p.alpha / core.OpServiceTimeMS,
		Weights:   append([]float64(nil), p.weights...),
		Response:  p.eval.AvgResponseTime(p.strat),
		NetDelay:  p.eval.AvgNetworkDelay(p.strat),
		MaxLoad:   p.eval.MaxNodeLoad(p.strat),
		Provenance: Provenance{
			Recomputed: recomputed,
			Deltas:     deltas,
			Pinned:     p.pin != nil,
		},
	}
	if len(snap.Weights) == 0 {
		snap.Weights = nil
	}
	p.pending, p.pendingDropped = nil, 0
	for s := Stage(0); s < numStages; s++ {
		p.dirty[s] = false
	}
	return snap, nil
}

// Eval exposes the internal evaluator for read-only composition (e.g.
// fault injection via the faults package). It is only valid after a Plan
// call and is invalidated by the next delta.
func (p *Planner) Eval() *core.Eval { return p.eval }

func (p *Planner) computePlacement() (core.Placement, error) {
	if p.pin != nil {
		if len(p.pin) != p.sys.UniverseSize() {
			return core.Placement{}, fmt.Errorf("pinned placement covers %d elements but %s has %d",
				len(p.pin), p.sys.Name(), p.sys.UniverseSize())
		}
		return core.NewPlacement(p.pin, p.topo)
	}
	opts := placement.Options{Workers: p.cfg.Workers, Candidates: p.cfg.Candidates}
	switch p.cfg.algorithm() {
	case AlgoSingleton:
		return placement.Singleton(p.topo, p.sys.UniverseSize())
	case AlgoOneToOne:
		return placement.OneToOne(p.topo, p.sys, opts)
	case AlgoManyToOne:
		return placement.ManyToOne(p.topo, p.sys, placement.ManyToOneConfig{
			Candidates: p.cfg.Candidates,
			LP:         p.cfg.lpOptions(),
			Workers:    p.cfg.Workers,
		})
	default:
		return core.Placement{}, fmt.Errorf("unknown algorithm %q", p.cfg.Algorithm)
	}
}

func (p *Planner) computeStrategy() error {
	switch p.cfg.strategy() {
	case StratClosest:
		p.strat, p.lpRes = core.ClosestStrategy{}, nil
		return nil
	case StratBalanced:
		p.strat, p.lpRes = core.BalancedStrategy{}, nil
		return nil
	}
	// LP: rebuild the skeleton only when the topology, system, placement,
	// or client weights changed; capacity-only deltas reuse it and
	// re-solve with new right-hand sides, warm-started from the previous
	// optimal basis unless reproducibility is requested.
	if !p.optOK {
		solver, err := strategy.ParseSolver(p.cfg.Solver)
		if err != nil {
			return err
		}
		if p.cfg.Reproducible {
			// Byte-reproducibility is defined by the dense pivot sequence.
			solver = strategy.SolverDense
		}
		opt, err := strategy.NewOptimizer(p.eval, strategy.Config{
			LP:        p.cfg.lpOptions(),
			WarmStart: !p.cfg.Reproducible,
			Solver:    solver,
			Workers:   p.cfg.Workers,
		})
		if err != nil {
			return err
		}
		p.opt = opt
		p.optOK = true
	}
	res, err := p.opt.Optimize(p.caps)
	if err != nil {
		return err
	}
	p.lpRes = res
	p.strat = res.Strategy
	return nil
}
