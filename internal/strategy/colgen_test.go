package strategy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// randomEval builds a randomized evaluation: random metric topology,
// random small enumerable system, random (possibly colliding) placement,
// random client subset (possibly with duplicate sites), and sometimes
// non-uniform client weights.
func randomEval(t *testing.T, rng *rand.Rand) *core.Eval {
	t.Helper()
	n := 8 + rng.Intn(9)
	topo := testTopo(t, n, rng.Int63())

	var sys quorum.System
	switch rng.Intn(4) {
	case 0:
		g, err := quorum.NewGrid(2 + rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		sys = g
	case 1:
		th, err := quorum.NewThreshold(2, 3)
		if err != nil {
			t.Fatal(err)
		}
		sys = th
	case 2:
		th, err := quorum.NewThreshold(3, 5)
		if err != nil {
			t.Fatal(err)
		}
		sys = th
	default:
		th, err := quorum.NewThreshold(5, 8)
		if err != nil {
			t.Fatal(err)
		}
		sys = th
	}

	target := make([]int, sys.UniverseSize())
	for u := range target {
		target[u] = rng.Intn(n) // collisions exercise multiplicity loads
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}

	if rng.Intn(2) == 0 {
		k := 3 + rng.Intn(n)
		clients := make([]int, k)
		for i := range clients {
			clients[i] = rng.Intn(n) // duplicates likely
		}
		if err := e.SetClients(clients); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(2) == 0 {
		w := make([]float64, len(e.Clients))
		for i := range w {
			w[i] = 0.1 + rng.Float64()*4
		}
		if err := e.SetClientWeights(w); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// relDiff is |a−b| / (1+|b|).
func relDiff(a, b float64) float64 { return math.Abs(a-b) / (1 + math.Abs(b)) }

// TestColgenMatchesDenseRandom is the core equivalence property: on
// randomized topologies, systems, placements, client multisets, weights,
// and capacities — feasible and infeasible alike — the colgen solver and
// the dense simplex agree on feasibility and, when feasible, on the
// objective to ≤ 1e-9 relative, with or without aggregation.
func TestColgenMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20070625))
	capScales := []float64{0.4, 0.7, 1.0}
	farkasSeen := 0
	aggSeen := 0
	for trial := 0; trial < 40; trial++ {
		e := randomEval(t, rng)
		n := e.Topo.Size()
		caps := uniformCaps(n, capScales[trial%len(capScales)]*(0.5+rng.Float64()))

		dres, derr := Optimize(e, caps)

		ccfg := Config{Solver: SolverColgen, NoAggregate: trial%4 == 1}
		if trial%3 == 1 {
			ccfg.LP.Pricing = lp.PricingPartial
		}
		copt, err := NewOptimizer(e, ccfg)
		if err != nil {
			t.Fatalf("trial %d: NewOptimizer(colgen): %v", trial, err)
		}
		cres, cerr := copt.Optimize(caps)

		if derr != nil {
			if !errors.Is(derr, lp.ErrInfeasible) {
				t.Fatalf("trial %d: dense: %v", trial, derr)
			}
			if !errors.Is(cerr, lp.ErrInfeasible) {
				t.Fatalf("trial %d: dense infeasible but colgen said %v", trial, cerr)
			}
			continue
		}
		if cerr != nil {
			t.Fatalf("trial %d: dense feasible (obj %v) but colgen: %v", trial, dres.AvgNetDelay, cerr)
		}
		if d := relDiff(cres.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
			t.Fatalf("trial %d: colgen objective %v, dense %v (rel diff %g)",
				trial, cres.AvgNetDelay, dres.AvgNetDelay, d)
		}
		// The fanned-out strategy must actually achieve the objective.
		if got := e.AvgNetworkDelay(cres.Strategy); math.Abs(got-cres.AvgNetDelay) > 1e-6 {
			t.Fatalf("trial %d: colgen objective %v but evaluation says %v", trial, cres.AvgNetDelay, got)
		}
		if cres.Colgen == nil {
			t.Fatalf("trial %d: colgen result missing stats", trial)
		}
		if cres.Colgen.FarkasRounds > 0 {
			farkasSeen++
		}
		if cres.Colgen.SuperClients < len(e.Clients) {
			aggSeen++
		}
	}
	t.Logf("farkas recoveries in %d trials; aggregation collapsed clients in %d", farkasSeen, aggSeen)
}

// TestColgenBothPricingModes asserts colgen composes with both master
// pricing rules — Dantzig and the rotating-block partial pricing — and
// that both land on the dense objective.
func TestColgenBothPricingModes(t *testing.T) {
	e := gridEval(t, 14, 3, 99, 0)
	caps := uniformCaps(14, 0.6)
	dres, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, pricing := range []lp.Pricing{lp.PricingDantzig, lp.PricingPartial} {
		opt, err := NewOptimizer(e, Config{Solver: SolverColgen, LP: lp.Options{Pricing: pricing}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.Optimize(caps)
		if err != nil {
			t.Fatalf("pricing %d: %v", pricing, err)
		}
		if d := relDiff(res.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
			t.Errorf("pricing %d: objective %v, dense %v (rel diff %g)", pricing, res.AvgNetDelay, dres.AvgNetDelay, d)
		}
	}
}

// TestColgenDuplicateClientSitesDifferentWeights: duplicate client sites
// share one RTT signature, so aggregation must collapse them into one
// super-client whose weight is the members' sum — and the result must
// match both the dense solver and the unaggregated colgen run.
func TestColgenDuplicateClientSitesDifferentWeights(t *testing.T) {
	e := gridEval(t, 10, 3, 7, 0)
	clients := []int{0, 1, 2, 3, 1, 2, 2, 4}
	if err := e.SetClients(clients); err != nil {
		t.Fatal(err)
	}
	w := make([]float64, len(clients))
	for i := range w {
		w[i] = float64(i + 1) // positionally distinct weights
	}
	if err := e.SetClientWeights(w); err != nil {
		t.Fatal(err)
	}
	caps := uniformCaps(10, 0.8)

	dres, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewOptimizer(e, Config{Solver: SolverColgen})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := agg.Optimize(caps)
	if err != nil {
		t.Fatal(err)
	}
	noagg, err := NewOptimizer(e, Config{Solver: SolverColgen, NoAggregate: true})
	if err != nil {
		t.Fatal(err)
	}
	nres, err := noagg.Optimize(caps)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Colgen.SuperClients >= len(clients) {
		t.Errorf("aggregation did not collapse duplicate sites: %d super-clients for %d clients",
			ares.Colgen.SuperClients, len(clients))
	}
	if nres.Colgen.SuperClients != len(clients) {
		t.Errorf("NoAggregate produced %d super-clients, want %d", nres.Colgen.SuperClients, len(clients))
	}
	if d := relDiff(ares.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
		t.Errorf("aggregated objective %v, dense %v (rel diff %g)", ares.AvgNetDelay, dres.AvgNetDelay, d)
	}
	if d := relDiff(nres.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
		t.Errorf("unaggregated objective %v, dense %v (rel diff %g)", nres.AvgNetDelay, dres.AvgNetDelay, d)
	}
	// Duplicate positions of one site must fan out the same distribution.
	p := ares.Strategy.Probs
	for i := 0; i < len(p[1]); i++ {
		if p[1][i] != p[4][i] {
			t.Fatalf("duplicate site clients diverged at quorum %d: %v vs %v", i, p[1][i], p[4][i])
		}
	}
}

// TestZeroWeightClientsRejected documents the invariant aggregation (and
// the dense LP) rely on: client weights are strictly positive, enforced
// at SetClientWeights. A zero-weight client would make its convexity row
// vacuous in the objective while still loading capacity rows.
func TestZeroWeightClientsRejected(t *testing.T) {
	e := gridEval(t, 8, 2, 3, 0)
	w := make([]float64, len(e.Clients))
	for i := range w {
		w[i] = 1
	}
	w[2] = 0
	if err := e.SetClientWeights(w); err == nil {
		t.Fatal("SetClientWeights accepted a zero weight")
	}
	w[2] = -1
	if err := e.SetClientWeights(w); err == nil {
		t.Fatal("SetClientWeights accepted a negative weight")
	}
}

// TestColgenFarkasRecovery constructs a master whose seed columns (every
// client's closest quorum) overload one node at capacities the full LP
// can satisfy by spreading: the first master solve is infeasible, Farkas
// pricing must bring in relieving columns, and the final objective must
// match the dense solver.
func TestColgenFarkasRecovery(t *testing.T) {
	n := 5
	m := graph.NewMatrix(n)
	// Node 0 is near everything; 1 a bit further; 2 far. Every client's
	// closest majority-2-of-3 quorum is {0,1}.
	base := []float64{1, 5, 40, 3, 4}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, base[i]+base[j])
		}
	}
	m.MetricClosure()
	topo, err := topology.New("farkas", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := quorum.NewThreshold(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewPlacement([]int{0, 1, 2}, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Full LP: balancing the three quorums puts 2/3 load on each node, so
	// 0.75 is feasible — but the all-seeds master needs 1.0 on nodes 0,1.
	caps := uniformCaps(n, 0.75)

	dres, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(e, Config{Solver: SolverColgen})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Colgen.FarkasRounds == 0 {
		t.Errorf("expected Farkas recovery, stats %+v", *res.Colgen)
	}
	if d := relDiff(res.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
		t.Errorf("objective %v after Farkas recovery, dense %v (rel diff %g)", res.AvgNetDelay, dres.AvgNetDelay, d)
	}

	// And capacities no column set can satisfy must still report
	// infeasibility (certified by an empty Farkas round).
	_, err = opt.Optimize(uniformCaps(n, 0.5))
	if !errors.Is(err, lp.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestColgenWarmAcrossCapacities: with WarmStart, a second Optimize at
// tighter capacities must stay off the cold path (the carried basis is
// dual feasible — pricing terminated with every column ≥ −tol) and agree
// with dense at both points.
func TestColgenWarmAcrossCapacities(t *testing.T) {
	e := gridEval(t, 12, 3, 11, 0)
	opt, err := NewOptimizer(e, Config{Solver: SolverColgen, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range []float64{0.9, 0.8} {
		caps := uniformCaps(12, c)
		res, err := opt.Optimize(caps)
		if err != nil {
			t.Fatalf("cap %v: %v", c, err)
		}
		dres, err := Optimize(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		if d := relDiff(res.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
			t.Errorf("cap %v: colgen %v, dense %v (rel diff %g)", c, res.AvgNetDelay, dres.AvgNetDelay, d)
		}
		if i == 1 && res.LPMethod == "colgen-"+lp.MethodCold {
			t.Errorf("second solve fell back to cold: %q", res.LPMethod)
		}
		if res.Colgen.MasterSolves < 1 || res.Colgen.PricingRounds < 1 || res.Colgen.Columns < res.Colgen.SuperClients {
			t.Errorf("implausible stats %+v", *res.Colgen)
		}
	}
}

// TestColgenAggregationUnderWeightDeltas: after every SetClientWeights
// delta (and a rebuild, since weights are baked into the skeleton),
// aggregated and unaggregated colgen must agree with each other and with
// dense. Duplicate client sites keep the aggregation non-trivial across
// all weight assignments.
func TestColgenAggregationUnderWeightDeltas(t *testing.T) {
	e := gridEval(t, 12, 3, 21, 0)
	if err := e.SetClients([]int{0, 1, 2, 3, 4, 5, 2, 3}); err != nil {
		t.Fatal(err)
	}
	caps := uniformCaps(12, 0.7)
	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 5; step++ {
		if step > 0 {
			w := make([]float64, len(e.Clients))
			for i := range w {
				w[i] = 0.3 + rng.Float64()*2
			}
			if err := e.SetClientWeights(w); err != nil {
				t.Fatal(err)
			}
		}
		dres, err := Optimize(e, caps)
		if err != nil {
			t.Fatal(err)
		}
		for _, noagg := range []bool{false, true} {
			opt, err := NewOptimizer(e, Config{Solver: SolverColgen, NoAggregate: noagg})
			if err != nil {
				t.Fatal(err)
			}
			res, err := opt.Optimize(caps)
			if err != nil {
				t.Fatalf("step %d noagg=%v: %v", step, noagg, err)
			}
			if d := relDiff(res.AvgNetDelay, dres.AvgNetDelay); d > 1e-9 {
				t.Errorf("step %d noagg=%v: objective %v, dense %v (rel diff %g)",
					step, noagg, res.AvgNetDelay, dres.AvgNetDelay, d)
			}
		}
	}
}

// TestSolverSelection covers ParseSolver and the auto rule.
func TestSolverSelection(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Solver
		ok   bool
	}{
		{"", SolverAuto, true},
		{"auto", SolverAuto, true},
		{"dense", SolverDense, true},
		{"colgen", SolverColgen, true},
		{"simplex", "", false},
	} {
		got, err := ParseSolver(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSolver(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSolver(%q) accepted", c.in)
		}
	}
	if s, err := resolveSolver(SolverAuto, DefaultColgenThreshold-1); err != nil || s != SolverDense {
		t.Errorf("auto below threshold: %v, %v", s, err)
	}
	if s, err := resolveSolver(SolverAuto, DefaultColgenThreshold); err != nil || s != SolverColgen {
		t.Errorf("auto at threshold: %v, %v", s, err)
	}
	if _, err := resolveSolver(Solver("bogus"), 10); err == nil {
		t.Error("resolveSolver accepted bogus solver")
	}
	if _, err := NewOptimizer(gridEval(t, 8, 2, 5, 0), Config{Solver: Solver("bogus")}); err == nil {
		t.Error("NewOptimizer accepted bogus solver")
	}
	// Auto at paper scale must stay dense (no "colgen-" method prefix).
	e := gridEval(t, 8, 2, 5, 0)
	opt, err := NewOptimizer(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(uniformCaps(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.LPMethod != lp.MethodCold || res.Colgen != nil {
		t.Errorf("auto at paper scale: method %q, colgen stats %v; want plain dense cold", res.LPMethod, res.Colgen)
	}
}
