package strategy

import (
	"encoding/binary"
	"math"

	"github.com/quorumnet/quorumnet/internal/core"
)

// clientGroups is an exact aggregation of the evaluation's clients into
// weighted super-clients. Two clients land in the same group iff their
// RTT rows agree bit-for-bit on every support node of the placement.
// That signature determines everything the access LP knows about a
// client up to its weight:
//
//   - the delay coefficient δ_f(v, Q_i) = max_{u∈Q_i} RTT(v, f(u)) reads
//     only support-node RTTs, so grouped clients share every δ row; and
//   - both the objective and the capacity coefficients are linear in the
//     client's weight, so a group behaves exactly like one client whose
//     weight is the members' sum.
//
// Any per-group distribution therefore prices, loads, and costs exactly
// as the same distribution assigned to each member — the LP over groups
// and the LP over clients have identical optima, and fanning a group's
// optimal distribution back out to its members is an optimal (and
// feasible) solution of the original LP. No tolerance is involved: the
// signature compares exact float bits, never "close" RTTs.
type clientGroups struct {
	members [][]int   // members[g]: indices into e.Clients
	site    []int     // site[g]: a representative member's topology node
	weight  []float64 // weight[g]: Σ members' ClientWeight, scaled by nc
}

// groupClients builds the aggregation. With aggregate=false every client
// becomes its own singleton group (the diagnostic Config.NoAggregate
// path). Group order follows first appearance in e.Clients, so the
// construction is deterministic.
func groupClients(e *core.Eval, support []int, aggregate bool) *clientGroups {
	nc := len(e.Clients)
	g := &clientGroups{}
	add := func(k, v int) {
		g.members = append(g.members, []int{k})
		g.site = append(g.site, v)
		g.weight = append(g.weight, e.ClientWeight(v)*float64(nc))
	}
	if !aggregate {
		for k, v := range e.Clients {
			add(k, v)
		}
		return g
	}
	// Signature: the support-restricted RTT row, packed as raw float64
	// bits. Distinct clients at the same site trivially share it.
	key := make([]byte, 8*len(support))
	seen := make(map[string]int, nc)
	for k, v := range e.Clients {
		row := e.Topo.RTTRow(v)
		for si, w := range support {
			binary.LittleEndian.PutUint64(key[8*si:], math.Float64bits(row[w]))
		}
		if gi, ok := seen[string(key)]; ok {
			g.members[gi] = append(g.members[gi], k)
			g.weight[gi] += e.ClientWeight(v) * float64(nc)
			continue
		}
		seen[string(key)] = len(g.members)
		add(k, v)
	}
	return g
}
