package strategy_test

import (
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// BenchmarkOptimizePlanetLabGrid7 measures the paper's workhorse LP:
// 50 clients × 49 quorums on PlanetLab-50 (≈2.5k variables, ≈100 rows).
func BenchmarkOptimizePlanetLabGrid7(b *testing.B) {
	topo := topology.PlanetLab50(1)
	sys, err := quorum.NewGrid(7)
	if err != nil {
		b.Fatal(err)
	}
	f, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]float64, topo.Size())
	for w := range caps {
		caps[w] = 0.6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Optimize(e, caps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeDaxlistGrid12 measures the largest LP in the paper's
// experiment space: 161 clients × 144 quorums (≈23k variables, ≈300
// rows) — the instance class that bounded the authors' glpsol runs.
func BenchmarkOptimizeDaxlistGrid12(b *testing.B) {
	topo := topology.Daxlist161(1)
	sys, err := quorum.NewGrid(12)
	if err != nil {
		b.Fatal(err)
	}
	f, err := placement.GridOneToOne(topo, sys, placement.Options{})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, core.AlphaForDemand(16000))
	if err != nil {
		b.Fatal(err)
	}
	caps := make([]float64, topo.Size())
	for w := range caps {
		caps[w] = 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Optimize(e, caps); err != nil {
			b.Fatal(err)
		}
	}
}
