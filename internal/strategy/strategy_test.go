package strategy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/graph"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/topology"
)

func testTopo(t *testing.T, n int, seed int64) *topology.Topology {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1+rng.Float64()*99)
		}
	}
	m.MetricClosure()
	tp, err := topology.New("test", make([]topology.Site, n), m)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func gridEval(t *testing.T, n, k int, seed int64, alpha float64) *core.Eval {
	t.Helper()
	topo := testTopo(t, n, seed)
	sys, err := quorum.NewGrid(k)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, sys.UniverseSize())
	for u := range target {
		target[u] = u % n
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func uniformCaps(n int, c float64) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = c
	}
	return caps
}

func TestOptimizeUnconstrainedMatchesClosest(t *testing.T) {
	// With capacity 1 everywhere (no binding constraint), the LP should
	// route every client to its closest quorum.
	e := gridEval(t, 12, 3, 1, 0)
	res, err := Optimize(e, uniformCaps(12, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := e.AvgNetworkDelay(core.ClosestStrategy{})
	if math.Abs(res.AvgNetDelay-want) > 1e-6 {
		t.Errorf("LP delay %v, closest strategy %v", res.AvgNetDelay, want)
	}
	// And the reported objective must match re-evaluating the strategy.
	if got := e.AvgNetworkDelay(res.Strategy); math.Abs(got-res.AvgNetDelay) > 1e-6 {
		t.Errorf("objective %v but evaluation says %v", res.AvgNetDelay, got)
	}
}

func TestOptimizeRespectsCapacities(t *testing.T) {
	e := gridEval(t, 12, 3, 2, 0)
	lopt := e.Sys.OptimalLoad()
	caps := uniformCaps(12, lopt*1.2)
	res, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	loads := e.NodeLoads(res.Strategy)
	for w, l := range loads {
		if l > caps[w]+1e-6 {
			t.Errorf("node %d load %v exceeds cap %v", w, l, caps[w])
		}
	}
}

func TestOptimizeMonotoneInCapacity(t *testing.T) {
	e := gridEval(t, 12, 3, 3, 0)
	lopt := e.Sys.OptimalLoad()
	prev := math.Inf(1)
	for _, c := range []float64{lopt * 1.05, lopt * 1.5, lopt * 3, 1} {
		res, err := Optimize(e, uniformCaps(12, math.Min(c, 1)))
		if err != nil {
			t.Fatalf("cap %v: %v", c, err)
		}
		if res.AvgNetDelay > prev+1e-6 {
			t.Errorf("delay %v increased when capacity grew to %v (prev %v)", res.AvgNetDelay, c, prev)
		}
		prev = res.AvgNetDelay
	}
}

func TestOptimizeInfeasibleBelowOptimalLoad(t *testing.T) {
	e := gridEval(t, 12, 3, 4, 0)
	lopt := e.Sys.OptimalLoad()
	_, err := Optimize(e, uniformCaps(12, lopt*0.5))
	if !errors.Is(err, lp.ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestOptimizeRejectsNonEnumerable(t *testing.T) {
	topo := testTopo(t, 60, 5)
	sys, err := quorum.NewThreshold(26, 51)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, 51)
	for u := range target {
		target[u] = u % 60
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(e, uniformCaps(60, 1)); err == nil {
		t.Error("Optimize accepted non-enumerable system")
	}
}

func TestSweepValues(t *testing.T) {
	vals := SweepValues(0.5, 10)
	if len(vals) != 10 {
		t.Fatalf("len = %d, want 10", len(vals))
	}
	if math.Abs(vals[0]-0.55) > 1e-12 {
		t.Errorf("first = %v, want 0.55", vals[0])
	}
	if math.Abs(vals[9]-1.0) > 1e-12 {
		t.Errorf("last = %v, want 1.0", vals[9])
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Errorf("values not increasing at %d", i)
		}
	}
}

func TestUniformSweepShape(t *testing.T) {
	e := gridEval(t, 12, 3, 6, core.AlphaForDemand(16000))
	lopt := e.Sys.OptimalLoad()
	pts, err := UniformSweep(e, SweepValues(lopt, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	// Net delay is non-increasing in capacity among feasible points.
	prev := math.Inf(1)
	for _, p := range pts {
		if p.Infeasible {
			continue
		}
		if p.NetDelay > prev+1e-6 {
			t.Errorf("net delay %v increased at cap %v", p.NetDelay, p.Cap)
		}
		prev = p.NetDelay
		if p.Response < p.NetDelay-1e-6 {
			t.Errorf("response %v below net delay %v", p.Response, p.NetDelay)
		}
	}
}

func TestNonUniformCapsFormula(t *testing.T) {
	e := gridEval(t, 12, 3, 7, 0)
	beta, gamma := 0.3, 0.9
	caps, err := NonUniformCaps(e, beta, gamma)
	if err != nil {
		t.Fatal(err)
	}
	support := e.F.Support()
	// Identify the closest and farthest support nodes from the clients.
	closest, farthest := support[0], support[0]
	for _, w := range support {
		if AvgDistanceTo(e.Topo, e.Clients, w) < AvgDistanceTo(e.Topo, e.Clients, closest) {
			closest = w
		}
		if AvgDistanceTo(e.Topo, e.Clients, w) > AvgDistanceTo(e.Topo, e.Clients, farthest) {
			farthest = w
		}
	}
	if math.Abs(caps[closest]-gamma) > 1e-9 {
		t.Errorf("closest support node capacity %v, want gamma %v", caps[closest], gamma)
	}
	if math.Abs(caps[farthest]-beta) > 1e-9 {
		t.Errorf("farthest support node capacity %v, want beta %v", caps[farthest], beta)
	}
	for _, w := range support {
		if caps[w] < beta-1e-9 || caps[w] > gamma+1e-9 {
			t.Errorf("cap[%d] = %v outside [%v,%v]", w, caps[w], beta, gamma)
		}
	}
}

func TestNonUniformCapsValidation(t *testing.T) {
	e := gridEval(t, 12, 3, 8, 0)
	for _, iv := range [][2]float64{{0, 0.5}, {0.5, 0.4}, {0.5, 1.5}} {
		if _, err := NonUniformCaps(e, iv[0], iv[1]); err == nil {
			t.Errorf("interval %v accepted", iv)
		}
	}
}

func TestNonUniformSweepRuns(t *testing.T) {
	e := gridEval(t, 12, 3, 9, core.AlphaForDemand(16000))
	lopt := e.Sys.OptimalLoad()
	pts, err := NonUniformSweep(e, lopt, SweepValues(lopt, 4))
	if err != nil {
		t.Fatal(err)
	}
	feasible := 0
	for _, p := range pts {
		if !p.Infeasible {
			feasible++
		}
	}
	if feasible == 0 {
		t.Error("no feasible non-uniform sweep point")
	}
}

func TestBest(t *testing.T) {
	pts := []SweepPoint{
		{Cap: 0.3, Infeasible: true},
		{Cap: 0.5, Response: 90},
		{Cap: 0.7, Response: 70},
		{Cap: 0.9, Response: 85},
	}
	best, err := Best(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Cap != 0.7 {
		t.Errorf("best cap = %v, want 0.7", best.Cap)
	}
	if _, err := Best([]SweepPoint{{Infeasible: true}}); err == nil {
		t.Error("Best of all-infeasible succeeded")
	}
}

func TestOptimizeDedupMode(t *testing.T) {
	// Dedup load coefficients are pointwise ≤ multiplicity coefficients,
	// so any multiplicity-feasible strategy is dedup-feasible: at equal
	// capacities the dedup optimum can only be at least as good, and its
	// loads must respect the caps under the dedup accounting.
	topo := testTopo(t, 6, 10)
	sys, err := quorum.NewGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, 9)
	for u := range target {
		target[u] = u / 2 // nodes 0..4 host two elements each (4 hosts one)
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	caps := uniformCaps(6, 1.4) // feasible under multiplicity (loads ≤ ~2)

	e.Mode = core.LoadMultiplicity
	multRes, err := Optimize(e, caps)
	if err != nil {
		t.Fatalf("multiplicity optimize: %v", err)
	}

	e.Mode = core.LoadDedup
	dedupRes, err := Optimize(e, caps)
	if err != nil {
		t.Fatalf("dedup optimize: %v", err)
	}
	if dedupRes.AvgNetDelay > multRes.AvgNetDelay+1e-6 {
		t.Errorf("dedup optimum %v worse than multiplicity %v",
			dedupRes.AvgNetDelay, multRes.AvgNetDelay)
	}
	loads := e.NodeLoads(dedupRes.Strategy) // Mode is still LoadDedup
	for w, l := range loads {
		if l > caps[w]+1e-6 {
			t.Errorf("dedup load on node %d = %v exceeds cap %v", w, l, caps[w])
		}
	}
}

// TestOptimizeWeightedMatchesDuplicated: a client with weight 2 and the
// same client listed twice must give the same optimal network delay.
func TestOptimizeWeightedMatchesDuplicated(t *testing.T) {
	topo := testTopo(t, 10, 11)
	sys, err := quorum.NewGrid(3)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, 9)
	for u := range target {
		target[u] = u
	}
	f, err := core.NewPlacement(target, topo)
	if err != nil {
		t.Fatal(err)
	}
	caps := uniformCaps(10, 0.7)

	weighted, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := weighted.SetClients([]int{0, 5, 9}); err != nil {
		t.Fatal(err)
	}
	if err := weighted.SetClientWeights([]float64{2, 1, 1}); err != nil {
		t.Fatal(err)
	}
	rw, err := Optimize(weighted, caps)
	if err != nil {
		t.Fatal(err)
	}

	duplicated, err := core.NewEval(topo, sys, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := duplicated.SetClients([]int{0, 0, 5, 9}); err != nil {
		t.Fatal(err)
	}
	rd, err := Optimize(duplicated, caps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rw.AvgNetDelay-rd.AvgNetDelay) > 1e-6 {
		t.Errorf("weighted optimum %v != duplicated %v", rw.AvgNetDelay, rd.AvgNetDelay)
	}
}
