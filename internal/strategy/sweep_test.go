package strategy

import (
	"math"
	"reflect"
	"testing"

	"github.com/quorumnet/quorumnet/internal/lp"
)

// TestParallelSweepIdenticalToSerial: sweeps must produce byte-identical
// results at every worker count — both on the default warm path (chunk
// boundaries fix the warm-start chains) and in reproducible mode.
func TestParallelSweepIdenticalToSerial(t *testing.T) {
	e := gridEval(t, 12, 3, 42, 5)
	values := SweepValues(e.Sys.OptimalLoad(), 10)
	for _, repro := range []bool{false, true} {
		serial, err := UniformSweepCfg(e, values, SweepConfig{Workers: 1, Reproducible: repro})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := UniformSweepCfg(e, values, SweepConfig{Workers: workers, Reproducible: repro})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("reproducible=%v: %d-worker uniform sweep differs from serial", repro, workers)
			}
		}
		lopt := e.Sys.OptimalLoad()
		serialNU, err := NonUniformSweepCfg(e, lopt, values, SweepConfig{Workers: 1, Reproducible: repro})
		if err != nil {
			t.Fatal(err)
		}
		parNU, err := NonUniformSweepCfg(e, lopt, values, SweepConfig{Workers: 4, Reproducible: repro})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serialNU, parNU) {
			t.Fatalf("reproducible=%v: parallel non-uniform sweep differs from serial", repro)
		}
	}
}

// TestWarmSweepMatchesReproducibleObjectives: the fast path must find
// the same optima as the reproducible path at every sweep point — the
// LP objective (net delay) is vertex-independent, so the two modes must
// agree on it to high precision, and on feasibility exactly.
func TestWarmSweepMatchesReproducibleObjectives(t *testing.T) {
	e := gridEval(t, 12, 3, 7, 5)
	values := SweepValues(e.Sys.OptimalLoad(), 12)
	fast, err := UniformSweepCfg(e, values, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	repro, err := UniformSweepCfg(e, values, SweepConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		if fast[i].Infeasible != repro[i].Infeasible {
			t.Fatalf("point %d: fast infeasible=%v, reproducible=%v",
				i, fast[i].Infeasible, repro[i].Infeasible)
		}
		if fast[i].Infeasible {
			continue
		}
		if diff := math.Abs(fast[i].NetDelay - repro[i].NetDelay); diff > 1e-6 {
			t.Errorf("point %d: fast net delay %v vs reproducible %v (diff %v)",
				i, fast[i].NetDelay, repro[i].NetDelay, diff)
		}
	}
}

// TestOptimizerWarmChainMatchesCold: an Optimizer chaining warm starts
// across capacity settings must agree with fresh cold solves on
// objective and produce valid strategies throughout.
func TestOptimizerWarmChainMatchesCold(t *testing.T) {
	e := gridEval(t, 10, 3, 3, 5)
	warm, err := NewOptimizer(e, Config{LP: lp.Options{Pricing: lp.PricingPartial}, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range SweepValues(e.Sys.OptimalLoad(), 8) {
		caps := uniformCaps(e.Topo.Size(), c)
		wres, werr := warm.Optimize(caps)
		cres, cerr := Optimize(e, caps)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("cap %v: warm err %v, cold err %v", c, werr, cerr)
		}
		if werr != nil {
			if !isInfeasible(werr) || !isInfeasible(cerr) {
				t.Fatalf("cap %v: unexpected errors warm=%v cold=%v", c, werr, cerr)
			}
			continue
		}
		if diff := math.Abs(wres.AvgNetDelay - cres.AvgNetDelay); diff > 1e-6 {
			t.Errorf("cap %v: warm delay %v vs cold %v (diff %v)", c, wres.AvgNetDelay, cres.AvgNetDelay, diff)
		}
		if err := wres.Strategy.Validate(e); err != nil {
			t.Errorf("cap %v: warm strategy invalid: %v", c, err)
		}
	}
}

// TestOptimizeMatchesLegacySinglePoint: the Optimizer-backed Optimize
// must behave exactly like a standalone solve (guarding the skeleton
// construction against drift from the original row-by-row assembly).
func TestOptimizeMatchesLegacySinglePoint(t *testing.T) {
	e := gridEval(t, 12, 3, 9, 5)
	caps := uniformCaps(e.Topo.Size(), 0.9)
	a, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(e, caps)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgNetDelay != b.AvgNetDelay || a.Iterations != b.Iterations {
		t.Fatalf("repeated Optimize differs: (%v, %d) vs (%v, %d)",
			a.AvgNetDelay, a.Iterations, b.AvgNetDelay, b.Iterations)
	}
	if !reflect.DeepEqual(a.Strategy.Probs, b.Strategy.Probs) {
		t.Fatal("repeated Optimize returned different strategies")
	}
}
