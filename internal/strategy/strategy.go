// Package strategy implements §4.2's access-strategy optimization: the
// linear program (4.3)–(4.6) that, for a fixed placement, chooses each
// client's distribution over quorums to minimize average network delay
// subject to per-node capacity (load) constraints — plus the capacity
// sweep (7.7) and the non-uniform capacity heuristic of §7 built on it.
package strategy

import (
	"errors"
	"fmt"
	"math"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Result is an optimized set of client access strategies.
type Result struct {
	// Strategy holds the per-client quorum distributions.
	Strategy *core.ExplicitStrategy
	// AvgNetDelay is the LP objective: avg_v Σ_i p_vi · δ_f(v, Q_i).
	AvgNetDelay float64
	// Iterations is the simplex pivot count (diagnostics).
	Iterations int
}

// Optimize solves LP (4.3)–(4.6) for the evaluation's placement: find
// {p_v} minimizing average network delay such that the average load on
// each node w stays within caps[w]. caps must have length Topo.Size();
// nodes outside the placement's support never receive load, so their
// capacities are ignored. Returns lp.ErrInfeasible (wrapped) when the
// capacities cannot absorb one unit of demand per client.
//
// The load coefficients follow the evaluation's LoadMode: multiplicity
// (the paper's definition) charges a node once per hosted element in the
// accessed quorum; dedup charges it once per access.
func Optimize(e *core.Eval, caps []float64) (*Result, error) {
	if !e.Sys.Enumerable() {
		return nil, fmt.Errorf("strategy: %s is not enumerable; the LP needs explicit quorums", e.Sys.Name())
	}
	if len(caps) != e.Topo.Size() {
		return nil, fmt.Errorf("strategy: %d capacities for %d nodes", len(caps), e.Topo.Size())
	}
	m := e.Sys.NumQuorums()
	clients := e.Clients
	nc := len(clients)
	nVars := nc * m

	// Precompute, per quorum: its support nodes and per-node load
	// contribution (multiplicity or 0/1 dedup).
	type nodeLoad struct {
		node int
		load float64
	}
	quorumLoads := make([][]nodeLoad, m)
	quorumElems := make([][]int, m)
	for i := 0; i < m; i++ {
		elems := e.Sys.Quorum(i)
		quorumElems[i] = elems
		counts := map[int]float64{}
		for _, u := range elems {
			w := e.F.Node(u)
			if e.Mode == core.LoadDedup {
				counts[w] = 1
			} else {
				counts[w]++
			}
		}
		for w, l := range counts {
			quorumLoads[i] = append(quorumLoads[i], nodeLoad{node: w, load: l})
		}
	}

	// δ_f(v, Q_i) per client and quorum.
	delta := make([][]float64, nc)
	for k, v := range clients {
		row := e.Topo.RTTRow(v)
		delta[k] = make([]float64, m)
		for i := 0; i < m; i++ {
			maxD := 0.0
			for _, u := range quorumElems[i] {
				if d := row[e.F.Node(u)]; d > maxD {
					maxD = d
				}
			}
			delta[k][i] = maxD
		}
	}

	prob := lp.NewProblem(nVars)
	varOf := func(k, i int) int { return k*m + i }
	// Client weights scale both the objective contribution and the load a
	// client's accesses impose; with uniform weights this reduces to the
	// paper's 1/|V| averages (scaled through by |V|, which changes
	// neither the optimum nor the constraint set).
	weight := make([]float64, nc)
	for k, v := range clients {
		weight[k] = e.ClientWeight(v) * float64(nc)
	}
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			if err := prob.SetObjectiveCoeff(varOf(k, i), weight[k]*delta[k][i]); err != nil {
				return nil, err
			}
		}
	}
	// Convexity: Σ_i p_vi = 1 per client.
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	idxBuf := make([]int, m)
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			idxBuf[i] = varOf(k, i)
		}
		if err := prob.AddConstraint(idxBuf, ones, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	// Capacity: Σ_v weight_v Σ_i p_vi·mult(i, w) ≤ |clients|·cap(w) for
	// support nodes (both sides scaled by |clients| relative to (4.4)).
	support := e.F.Support()
	for _, w := range support {
		var idx []int
		var coef []float64
		for i := 0; i < m; i++ {
			var l float64
			for _, nl := range quorumLoads[i] {
				if nl.node == w {
					l = nl.load
					break
				}
			}
			if l == 0 {
				continue
			}
			for k := 0; k < nc; k++ {
				idx = append(idx, varOf(k, i))
				coef = append(coef, weight[k]*l)
			}
		}
		if len(idx) == 0 {
			continue
		}
		if err := prob.AddConstraint(idx, coef, lp.LE, float64(nc)*caps[w]); err != nil {
			return nil, err
		}
	}

	sol, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("strategy: access LP (%d vars, %d rows): %w", nVars, prob.NumConstraints(), err)
	}

	probs := make([][]float64, nc)
	for k := 0; k < nc; k++ {
		probs[k] = make([]float64, m)
		sum := 0.0
		for i := 0; i < m; i++ {
			p := sol.X[varOf(k, i)]
			if p < 0 {
				p = 0
			}
			probs[k][i] = p
			sum += p
		}
		// Renormalize away solver tolerance drift.
		if sum > 0 {
			for i := range probs[k] {
				probs[k][i] /= sum
			}
		}
	}
	st := &core.ExplicitStrategy{Probs: probs, Label: "lp-optimized"}
	if err := st.Validate(e); err != nil {
		return nil, fmt.Errorf("strategy: LP produced invalid strategy: %w", err)
	}
	// The objective was scaled by |clients|·weights; dividing by nc
	// recovers the weighted-average network delay.
	return &Result{
		Strategy:    st,
		AvgNetDelay: sol.Objective / float64(nc),
		Iterations:  sol.Iterations,
	}, nil
}

// SweepValues returns the paper's capacity grid (7.7):
// c_i = Lopt + i·(1−Lopt)/count for i = 1..count.
func SweepValues(lopt float64, count int) []float64 {
	if count <= 0 {
		panic(fmt.Sprintf("strategy: non-positive sweep count %d", count))
	}
	lambda := (1 - lopt) / float64(count)
	out := make([]float64, count)
	for i := 1; i <= count; i++ {
		out[i-1] = lopt + float64(i)*lambda
	}
	return out
}

// SweepPoint is one capacity setting's outcome.
type SweepPoint struct {
	// Cap is the uniform capacity value c_i (or the upper end γ of the
	// non-uniform interval).
	Cap float64
	// NetDelay is the optimized average network delay.
	NetDelay float64
	// Response is the average response time of the optimized strategy
	// under the evaluation's alpha.
	Response float64
	// Result carries the strategy.
	Result *Result
	// Infeasible marks capacity values the LP could not satisfy.
	Infeasible bool
}

// UniformSweep runs Optimize for each uniform capacity value and
// evaluates response time, reproducing the technique of Figure 7.6.
func UniformSweep(e *core.Eval, values []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(values))
	for _, c := range values {
		caps := make([]float64, e.Topo.Size())
		for w := range caps {
			caps[w] = c
		}
		pt, err := sweepPoint(e, c, caps)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// NonUniformCaps implements the §7 heuristic: capacities inversely
// proportional to each support node's average distance s_i from the
// clients, scaled into [beta, gamma]:
//
//	cap(v_i) = (1/s_i − le)/(re − le) · (γ − β) + β
//
// Nodes outside the support get capacity gamma (they carry no load).
func NonUniformCaps(e *core.Eval, beta, gamma float64) ([]float64, error) {
	if beta <= 0 || gamma < beta || gamma > 1 {
		return nil, fmt.Errorf("strategy: invalid capacity interval [%v, %v]", beta, gamma)
	}
	support := e.F.Support()
	inv := make([]float64, len(support))
	le, re := math.Inf(1), math.Inf(-1)
	for i, w := range support {
		s := 0.0
		for _, v := range e.Clients {
			s += e.Topo.RTT(v, w)
		}
		s /= float64(len(e.Clients))
		if s <= 0 {
			return nil, fmt.Errorf("strategy: support node %d has zero average client distance", w)
		}
		inv[i] = 1 / s
		le = math.Min(le, inv[i])
		re = math.Max(re, inv[i])
	}
	caps := make([]float64, e.Topo.Size())
	for w := range caps {
		caps[w] = gamma
	}
	for i, w := range support {
		if re == le {
			caps[w] = beta
			continue
		}
		caps[w] = (inv[i]-le)/(re-le)*(gamma-beta) + beta
	}
	return caps, nil
}

// NonUniformSweep mirrors UniformSweep but sets capacities with the
// non-uniform heuristic over intervals [β, γ] = [lopt, c] for each c,
// reproducing Figures 7.7/7.8.
func NonUniformSweep(e *core.Eval, lopt float64, values []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(values))
	for _, c := range values {
		caps, err := NonUniformCaps(e, lopt, c)
		if err != nil {
			return nil, err
		}
		pt, err := sweepPoint(e, c, caps)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func sweepPoint(e *core.Eval, c float64, caps []float64) (SweepPoint, error) {
	res, err := Optimize(e, caps)
	if err != nil {
		if isInfeasible(err) {
			return SweepPoint{Cap: c, Infeasible: true}, nil
		}
		return SweepPoint{}, err
	}
	return SweepPoint{
		Cap:      c,
		NetDelay: res.AvgNetDelay,
		Response: e.AvgResponseTime(res.Strategy),
		Result:   res,
	}, nil
}

// Best returns the feasible sweep point with the lowest response time, or
// an error if none is feasible. This is the paper's "pick the value c_i
// that minimizes the response time".
func Best(points []SweepPoint) (SweepPoint, error) {
	best := SweepPoint{Response: math.Inf(1), Infeasible: true}
	for _, p := range points {
		if !p.Infeasible && p.Response < best.Response {
			best = p
		}
	}
	if best.Infeasible {
		return SweepPoint{}, fmt.Errorf("strategy: no feasible capacity in sweep: %w", lp.ErrInfeasible)
	}
	return best, nil
}

func isInfeasible(err error) bool { return errors.Is(err, lp.ErrInfeasible) }

// AvgDistanceTo reports the average distance from the evaluation's
// clients to node w (the s_i of the non-uniform heuristic); exported for
// diagnostics and tests.
func AvgDistanceTo(topo *topology.Topology, clients []int, w int) float64 {
	s := 0.0
	for _, v := range clients {
		s += topo.RTT(v, w)
	}
	return s / float64(len(clients))
}
