// Package strategy implements §4.2's access-strategy optimization: the
// linear program (4.3)–(4.6) that, for a fixed placement, chooses each
// client's distribution over quorums to minimize average network delay
// subject to per-node capacity (load) constraints — plus the capacity
// sweep (7.7) and the non-uniform capacity heuristic of §7 built on it.
//
// The capacity sweeps re-solve a sequence of LPs that differ only in the
// capacity right-hand sides. An Optimizer builds the LP skeleton (delay
// coefficients, per-quorum node loads, constraint rows) once per
// evaluation and mutates only those right-hand sides between solves,
// optionally warm-starting each solve from the previous optimal basis.
// Sweeps additionally run independent capacity points on a bounded
// worker pool, chunked so results do not depend on the worker count.
package strategy

import (
	"errors"
	"fmt"
	"math"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/lp"
	"github.com/quorumnet/quorumnet/internal/par"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Result is an optimized set of client access strategies.
type Result struct {
	// Strategy holds the per-client quorum distributions.
	Strategy *core.ExplicitStrategy
	// AvgNetDelay is the LP objective: avg_v Σ_i p_vi · δ_f(v, Q_i).
	AvgNetDelay float64
	// Iterations is the simplex pivot count (diagnostics); on the colgen
	// path it sums the pivots of every master re-solve.
	Iterations int
	// LPMethod reports how the solver reached the optimum (lp.MethodCold,
	// lp.MethodWarmPrimal, or lp.MethodWarmDual) — the observable that
	// capacity sweeps and the planner use to confirm tightening deltas
	// stay on the warm path. Column-generation solves prefix it with
	// "colgen-", reporting the first master solve's method (the later
	// re-solves of one Optimize call are always warm).
	LPMethod string
	// Colgen carries column-generation diagnostics; nil on the dense path.
	Colgen *ColgenStats `json:"colgen,omitempty"`
}

// Solver selects the algorithm behind the access LP.
type Solver string

// Solver values for Config.Solver.
const (
	// SolverAuto (the zero value; "auto" parses to it too) picks dense
	// below DefaultColgenThreshold client×quorum variables and column
	// generation at or above it — every paper-scale problem stays on the
	// bit-reproducible dense path.
	SolverAuto Solver = ""
	// SolverDense always builds and solves the full nc·m-variable LP.
	SolverDense Solver = "dense"
	// SolverColgen always uses the column-generation path: exact client
	// aggregation plus a restricted master grown by per-client pricing.
	SolverColgen Solver = "colgen"
)

// DefaultColgenThreshold is the nc·m size at which SolverAuto switches
// from the dense simplex to column generation. All paper-scale LPs
// (≤ 161 clients × ≤ 200 quorums) fall well below it, so auto never
// changes existing outputs; the measured crossover on AS-graph
// topologies is around this size (see DESIGN.md §14).
const DefaultColgenThreshold = 200000

// ParseSolver normalizes a solver name ("", "auto", "dense", "colgen").
func ParseSolver(s string) (Solver, error) {
	switch s {
	case "", "auto":
		return SolverAuto, nil
	case "dense":
		return SolverDense, nil
	case "colgen":
		return SolverColgen, nil
	default:
		return "", fmt.Errorf("strategy: unknown solver %q (want auto, dense, or colgen)", s)
	}
}

// resolveSolver applies the auto rule for a problem of nc·m variables.
func resolveSolver(s Solver, size int) (Solver, error) {
	switch s {
	case SolverAuto, Solver("auto"):
		if size >= DefaultColgenThreshold {
			return SolverColgen, nil
		}
		return SolverDense, nil
	case SolverDense, SolverColgen:
		return s, nil
	default:
		return "", fmt.Errorf("strategy: unknown solver %q (want auto, dense, or colgen)", string(s))
	}
}

// Config tunes an Optimizer.
type Config struct {
	// LP passes solver options through (notably lp.Options.Pricing).
	// The zero value — cold Dantzig pricing — reproduces the original
	// solver's pivot sequence exactly.
	LP lp.Options
	// WarmStart re-starts each solve from the previous call's optimal
	// basis (falling back to a cold solve when it no longer applies).
	// Much faster across a capacity sweep; on degenerate problems it may
	// settle on a different — equally optimal — vertex than a cold
	// solve, so leave it off when bit-reproducibility matters. On the
	// colgen path it additionally carries the master basis (and the
	// generated columns, which persist regardless) across Optimize calls.
	WarmStart bool
	// Solver picks the LP algorithm; see SolverAuto.
	Solver Solver
	// Workers bounds the colgen pricing worker pool (0 = GOMAXPROCS).
	// The dense path ignores it.
	Workers int
	// NoAggregate disables exact client aggregation on the colgen path,
	// giving every client its own super-client. Diagnostic: aggregation
	// is provably exact, and tests use this knob to verify that.
	NoAggregate bool
}

// Optimizer solves the access-strategy LP repeatedly for one evaluation
// under varying capacities. It builds the expensive invariants — the
// per-client/per-quorum delay matrix δ_f(v, Q_i), the per-quorum node
// loads, and the LP skeleton — once, and re-solves after mutating only
// the capacity right-hand sides. An Optimizer is not safe for concurrent
// use; sweeps give each worker its own.
type Optimizer struct {
	e   *core.Eval
	cfg Config

	m  int // quorums
	nc int // clients

	prob *lp.Problem
	// capRows maps the capacity constraint rows to their nodes:
	// capRows[r] is the node whose capacity row is row nc+r.
	capRows []int

	basis lp.Basis // last optimal basis (warm start), nil until first solve

	// cg is the column-generation engine; non-nil iff the resolved solver
	// is SolverColgen, in which case the dense fields above stay unused.
	cg *colgen
}

// nodeLoad is one support node's load contribution per access of one
// quorum.
type nodeLoad struct {
	node int
	load float64
}

// quorumNodeLoads precomputes, per quorum, its distinct support nodes and
// each node's load contribution per access (multiplicity — the paper's
// definition — or 0/1 dedup, per the evaluation's LoadMode). Both LP
// solvers derive their capacity coefficients and delay maxima from it.
func quorumNodeLoads(e *core.Eval) [][]nodeLoad {
	m := e.Sys.NumQuorums()
	loads := make([][]nodeLoad, m)
	for i := 0; i < m; i++ {
		counts := map[int]float64{}
		for _, u := range e.Sys.Quorum(i) {
			w := e.F.Node(u)
			if e.Mode == core.LoadDedup {
				counts[w] = 1
			} else {
				counts[w]++
			}
		}
		for w, l := range counts {
			loads[i] = append(loads[i], nodeLoad{node: w, load: l})
		}
	}
	return loads
}

// NewOptimizer validates the evaluation and builds the LP skeleton (or,
// when the resolved solver is colgen, the restricted master's seed).
func NewOptimizer(e *core.Eval, cfg Config) (*Optimizer, error) {
	if !e.Sys.Enumerable() {
		return nil, fmt.Errorf("strategy: %s is not enumerable; the LP needs explicit quorums", e.Sys.Name())
	}
	m := e.Sys.NumQuorums()
	clients := e.Clients
	nc := len(clients)
	nVars := nc * m

	solver, err := resolveSolver(cfg.Solver, nVars)
	if err != nil {
		return nil, err
	}
	if solver == SolverColgen {
		cg, err := newColgen(e, cfg)
		if err != nil {
			return nil, err
		}
		return &Optimizer{e: e, cfg: cfg, m: m, nc: nc, cg: cg}, nil
	}

	o := &Optimizer{e: e, cfg: cfg, m: m, nc: nc}

	// Precompute, per quorum: its support nodes and per-node load
	// contribution (multiplicity or 0/1 dedup).
	quorumLoads := quorumNodeLoads(e)
	quorumElems := make([][]int, m)
	for i := 0; i < m; i++ {
		quorumElems[i] = e.Sys.Quorum(i)
	}

	// δ_f(v, Q_i) per client and quorum.
	delta := make([][]float64, nc)
	for k, v := range clients {
		row := e.Topo.RTTRow(v)
		delta[k] = make([]float64, m)
		for i := 0; i < m; i++ {
			maxD := 0.0
			for _, u := range quorumElems[i] {
				if d := row[e.F.Node(u)]; d > maxD {
					maxD = d
				}
			}
			delta[k][i] = maxD
		}
	}

	prob := lp.NewProblem(nVars)
	varOf := func(k, i int) int { return k*m + i }
	// Client weights scale both the objective contribution and the load a
	// client's accesses impose; with uniform weights this reduces to the
	// paper's 1/|V| averages (scaled through by |V|, which changes
	// neither the optimum nor the constraint set).
	weight := make([]float64, nc)
	for k, v := range clients {
		weight[k] = e.ClientWeight(v) * float64(nc)
	}
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			if err := prob.SetObjectiveCoeff(varOf(k, i), weight[k]*delta[k][i]); err != nil {
				return nil, err
			}
		}
	}
	// Convexity: Σ_i p_vi = 1 per client.
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	idxBuf := make([]int, m)
	for k := 0; k < nc; k++ {
		for i := 0; i < m; i++ {
			idxBuf[i] = varOf(k, i)
		}
		if err := prob.AddConstraint(idxBuf, ones, lp.EQ, 1); err != nil {
			return nil, err
		}
	}
	// Capacity: Σ_v weight_v Σ_i p_vi·mult(i, w) ≤ |clients|·cap(w) for
	// support nodes (both sides scaled by |clients| relative to (4.4)).
	// The rhs is a positive placeholder here; Optimize sets the actual
	// capacities before every solve.
	support := e.F.Support()
	for _, w := range support {
		var idx []int
		var coef []float64
		for i := 0; i < m; i++ {
			var l float64
			for _, nl := range quorumLoads[i] {
				if nl.node == w {
					l = nl.load
					break
				}
			}
			if l == 0 {
				continue
			}
			for k := 0; k < nc; k++ {
				idx = append(idx, varOf(k, i))
				coef = append(coef, weight[k]*l)
			}
		}
		if len(idx) == 0 {
			continue
		}
		if err := prob.AddConstraint(idx, coef, lp.LE, 1); err != nil {
			return nil, err
		}
		o.capRows = append(o.capRows, w)
	}
	o.prob = prob
	return o, nil
}

// Optimize solves the access-strategy LP for the given per-node
// capacities (length Topo.Size()), reusing the skeleton and — when
// configured — the previous solve's basis. Returns lp.ErrInfeasible
// (wrapped) when the capacities cannot absorb one unit of demand per
// client.
func (o *Optimizer) Optimize(caps []float64) (*Result, error) {
	e := o.e
	if len(caps) != e.Topo.Size() {
		return nil, fmt.Errorf("strategy: %d capacities for %d nodes", len(caps), e.Topo.Size())
	}
	if o.cg != nil {
		return o.cg.optimize(caps)
	}
	for r, w := range o.capRows {
		if err := o.prob.SetRHS(o.nc+r, float64(o.nc)*caps[w]); err != nil {
			return nil, err
		}
	}
	var sol *lp.Solution
	var err error
	if o.cfg.WarmStart && o.basis != nil {
		sol, err = o.prob.SolveWarm(o.cfg.LP, o.basis)
	} else {
		sol, err = o.prob.SolveWith(o.cfg.LP)
	}
	if err != nil {
		return nil, fmt.Errorf("strategy: access LP (%d vars, %d rows): %w",
			o.prob.NumVars(), o.prob.NumConstraints(), err)
	}
	if o.cfg.WarmStart {
		o.basis = sol.Basis
	}

	m, nc := o.m, o.nc
	probs := make([][]float64, nc)
	for k := 0; k < nc; k++ {
		probs[k] = make([]float64, m)
		sum := 0.0
		for i := 0; i < m; i++ {
			p := sol.X[k*m+i]
			if p < 0 {
				p = 0
			}
			probs[k][i] = p
			sum += p
		}
		// Renormalize away solver tolerance drift.
		if sum > 0 {
			for i := range probs[k] {
				probs[k][i] /= sum
			}
		}
	}
	st := &core.ExplicitStrategy{Probs: probs, Label: "lp-optimized"}
	if err := st.Validate(e); err != nil {
		return nil, fmt.Errorf("strategy: LP produced invalid strategy: %w", err)
	}
	// The objective was scaled by |clients|·weights; dividing by nc
	// recovers the weighted-average network delay.
	return &Result{
		Strategy:    st,
		AvgNetDelay: sol.Objective / float64(nc),
		Iterations:  sol.Iterations,
		LPMethod:    sol.Method,
	}, nil
}

// Optimize solves LP (4.3)–(4.6) for the evaluation's placement: find
// {p_v} minimizing average network delay such that the average load on
// each node w stays within caps[w]. caps must have length Topo.Size();
// nodes outside the placement's support never receive load, so their
// capacities are ignored. Returns lp.ErrInfeasible (wrapped) when the
// capacities cannot absorb one unit of demand per client.
//
// The load coefficients follow the evaluation's LoadMode: multiplicity
// (the paper's definition) charges a node once per hosted element in the
// accessed quorum; dedup charges it once per access.
//
// Optimize solves cold with the default (Dantzig) pricing, bit-for-bit
// reproducing the original solver at paper scale (the auto solver stays
// dense below DefaultColgenThreshold); build an Optimizer directly for
// warm-started, alternatively-priced, or explicitly colgen solves.
func Optimize(e *core.Eval, caps []float64) (*Result, error) {
	o, err := NewOptimizer(e, Config{})
	if err != nil {
		return nil, err
	}
	return o.Optimize(caps)
}

// SweepValues returns the paper's capacity grid (7.7):
// c_i = Lopt + i·(1−Lopt)/count for i = 1..count.
func SweepValues(lopt float64, count int) []float64 {
	if count <= 0 {
		panic(fmt.Sprintf("strategy: non-positive sweep count %d", count))
	}
	lambda := (1 - lopt) / float64(count)
	out := make([]float64, count)
	for i := 1; i <= count; i++ {
		out[i-1] = lopt + float64(i)*lambda
	}
	return out
}

// SweepPoint is one capacity setting's outcome.
type SweepPoint struct {
	// Cap is the uniform capacity value c_i (or the upper end γ of the
	// non-uniform interval).
	Cap float64
	// NetDelay is the optimized average network delay.
	NetDelay float64
	// Response is the average response time of the optimized strategy
	// under the evaluation's alpha.
	Response float64
	// Result carries the strategy.
	Result *Result
	// Infeasible marks capacity values the LP could not satisfy.
	Infeasible bool
}

// SweepConfig tunes sweep execution. The zero value is the fast path:
// warm-started partial-pricing solves on a GOMAXPROCS-bounded worker
// pool.
type SweepConfig struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS). Sweep points are
	// processed in fixed-size chunks whose boundaries depend only on the
	// number of points, so results are identical for every worker count.
	Workers int
	// Reproducible solves every point cold with Dantzig pricing,
	// bit-for-bit reproducing the original serial sweep (useful when
	// regenerating the paper's tables for comparison). The default warm
	// path reaches the same optima, but on degenerate LPs it may return
	// different optimal vertices, which can shift vertex-dependent
	// measures (response time) within the optimal face.
	Reproducible bool
}

// SweepChunkSize fixes the warm-start chain length. Chunk boundaries
// must not depend on worker count, or results would change with
// parallelism: each chunk always starts with a cold solve and
// warm-starts the points after it. The scenario engine partitions
// sweeps at these boundaries, so sharded execution reproduces the
// exact warm-start chains of an unsharded run.
const SweepChunkSize = 4

// ChunkBounds returns the half-open value range [lo, hi) of warm-start
// chunk ci in an n-value sweep — the single source of the boundary
// arithmetic the sweeps, the scenario partitioner, and the sharded
// executor must agree on for byte-identical output.
func ChunkBounds(ci, n int) (lo, hi int) {
	lo = ci * SweepChunkSize
	hi = lo + SweepChunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// UniformSweep runs Optimize for each uniform capacity value and
// evaluates response time, reproducing the technique of Figure 7.6,
// with the default SweepConfig.
func UniformSweep(e *core.Eval, values []float64) ([]SweepPoint, error) {
	return UniformSweepCfg(e, values, SweepConfig{})
}

// UniformSweepCfg is UniformSweep with explicit execution options.
func UniformSweepCfg(e *core.Eval, values []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return runSweep(e, values, cfg, func(c float64, caps []float64) ([]float64, error) {
		if caps == nil {
			caps = make([]float64, e.Topo.Size())
		}
		for w := range caps {
			caps[w] = c
		}
		return caps, nil
	})
}

// NonUniformCaps implements the §7 heuristic: capacities inversely
// proportional to each support node's average distance s_i from the
// clients, scaled into [beta, gamma]:
//
//	cap(v_i) = (1/s_i − le)/(re − le) · (γ − β) + β
//
// Nodes outside the support get capacity gamma (they carry no load).
func NonUniformCaps(e *core.Eval, beta, gamma float64) ([]float64, error) {
	if beta <= 0 || gamma < beta || gamma > 1 {
		return nil, fmt.Errorf("strategy: invalid capacity interval [%v, %v]", beta, gamma)
	}
	support := e.F.Support()
	inv := make([]float64, len(support))
	le, re := math.Inf(1), math.Inf(-1)
	for i, w := range support {
		s := 0.0
		for _, v := range e.Clients {
			s += e.Topo.RTT(v, w)
		}
		s /= float64(len(e.Clients))
		if s <= 0 {
			return nil, fmt.Errorf("strategy: support node %d has zero average client distance", w)
		}
		inv[i] = 1 / s
		le = math.Min(le, inv[i])
		re = math.Max(re, inv[i])
	}
	caps := make([]float64, e.Topo.Size())
	for w := range caps {
		caps[w] = gamma
	}
	for i, w := range support {
		if re == le {
			caps[w] = beta
			continue
		}
		caps[w] = (inv[i]-le)/(re-le)*(gamma-beta) + beta
	}
	return caps, nil
}

// NonUniformSweep mirrors UniformSweep but sets capacities with the
// non-uniform heuristic over intervals [β, γ] = [lopt, c] for each c,
// reproducing Figures 7.7/7.8, with the default SweepConfig.
func NonUniformSweep(e *core.Eval, lopt float64, values []float64) ([]SweepPoint, error) {
	return NonUniformSweepCfg(e, lopt, values, SweepConfig{})
}

// NonUniformSweepCfg is NonUniformSweep with explicit execution options.
func NonUniformSweepCfg(e *core.Eval, lopt float64, values []float64, cfg SweepConfig) ([]SweepPoint, error) {
	return runSweep(e, values, cfg, func(c float64, _ []float64) ([]float64, error) {
		return NonUniformCaps(e, lopt, c)
	})
}

// runSweep evaluates every capacity value on a bounded worker pool.
// capsFor produces the capacity vector for one value; it may reuse the
// scratch slice it is handed (which is nil on a chunk's first point).
// Points are partitioned into fixed chunks processed in any order by the
// workers; within a chunk one Optimizer carries warm-start state from
// point to point, so the outcome depends only on the chunk partition —
// never on scheduling — and parallel output is identical to serial.
func runSweep(e *core.Eval, values []float64, cfg SweepConfig,
	capsFor func(c float64, scratch []float64) ([]float64, error)) ([]SweepPoint, error) {
	n := len(values)
	out := make([]SweepPoint, n)
	if n == 0 {
		return out, nil
	}
	// Populate the evaluator's lazy caches before sharing it.
	e.Prewarm()

	nChunks := (n + SweepChunkSize - 1) / SweepChunkSize
	errs := make([]error, nChunks)
	par.For(nChunks, cfg.Workers, func(ci int) {
		lo, hi := ChunkBounds(ci, n)
		errs[ci] = sweepChunk(e, values[lo:hi], out[lo:hi], cfg, capsFor)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepChunk solves one contiguous run of sweep points with a dedicated
// Optimizer, chaining warm starts unless configured reproducible.
func sweepChunk(e *core.Eval, values []float64, out []SweepPoint, cfg SweepConfig,
	capsFor func(c float64, scratch []float64) ([]float64, error)) error {
	ocfg := Config{LP: lp.Options{Pricing: lp.PricingPartial}, WarmStart: true}
	if cfg.Reproducible {
		ocfg = Config{}
	}
	opt, err := NewOptimizer(e, ocfg)
	if err != nil {
		return err
	}
	var caps []float64
	for i, c := range values {
		caps, err = capsFor(c, caps)
		if err != nil {
			return err
		}
		res, err := opt.Optimize(caps)
		if err != nil {
			if isInfeasible(err) {
				out[i] = SweepPoint{Cap: c, Infeasible: true}
				continue
			}
			return err
		}
		out[i] = SweepPoint{
			Cap:      c,
			NetDelay: res.AvgNetDelay,
			Response: e.AvgResponseTime(res.Strategy),
			Result:   res,
		}
	}
	return nil
}

// Best returns the feasible sweep point with the lowest response time, or
// an error if none is feasible. This is the paper's "pick the value c_i
// that minimizes the response time".
func Best(points []SweepPoint) (SweepPoint, error) {
	best := SweepPoint{Response: math.Inf(1), Infeasible: true}
	for _, p := range points {
		if !p.Infeasible && p.Response < best.Response {
			best = p
		}
	}
	if best.Infeasible {
		return SweepPoint{}, fmt.Errorf("strategy: no feasible capacity in sweep: %w", lp.ErrInfeasible)
	}
	return best, nil
}

func isInfeasible(err error) bool { return errors.Is(err, lp.ErrInfeasible) }

// AvgDistanceTo reports the average distance from the evaluation's
// clients to node w (the s_i of the non-uniform heuristic); exported for
// diagnostics and tests.
func AvgDistanceTo(topo *topology.Topology, clients []int, w int) float64 {
	s := 0.0
	for _, v := range clients {
		s += topo.RTT(v, w)
	}
	return s / float64(len(clients))
}
