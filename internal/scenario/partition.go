package scenario

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Point is one self-describing unit of a spec's point-space: the
// smallest schedulable piece of a scenario run. Points are enumerated in
// a deterministic order; the merge layer places every row it produced by
// (Ordinal, Seq), so shards can execute and complete in any order.
type Point struct {
	// Ordinal is the point's position in the unsharded enumeration.
	Ordinal int `json:"ordinal"`
	// Label describes the unit for progress logs and error messages.
	Label string `json:"label"`
	// SeedIdx selects the seed sub-space the point belongs to (an index
	// into Spec.Seeds; always 0 without a seeds axis).
	SeedIdx int `json:"seed,omitempty"`
	// Index addresses the unit within its kind's axes: the expanded
	// system (eval), the system of a sweep chunk (sweep), the capacity
	// value (iterate), the flattened (t, per-site) cell (protocol). A
	// timeline has one point per seed sub-space, with Index 0.
	Index int `json:"index"`
	// Sub is the warm-start chunk index within the system (sweep only).
	Sub int `json:"sub,omitempty"`
}

// seedSpace is one seed's slice of a Space: the topology generated for
// that seed and the system axes expanded against it. A spec without a
// seeds axis has exactly one.
type seedSpace struct {
	// seed is the axis value (the run seed when there is no axis).
	seed    int64
	topo    *topology.Topology
	systems []systemPoint
}

// Space is the enumerated point-space of a spec: the deterministic,
// ordered list of work units an unsharded run executes, plus the derived
// output schema. Partitions, execution, and merging all hang off one
// Space so every shard agrees on ordinals and columns. A seeds axis
// concatenates one sub-space per seed, each independently partition-able
// (points deal round-robin across the whole enumeration).
type Space struct {
	spec   *Spec
	cfg    RunConfig
	subs   []*seedSpace
	points []Point
	// derived is the column set the spec's kind produces before any
	// explicit Columns override.
	derived []string
}

// NewSpace validates the spec, builds its topologies (one per seed),
// and enumerates its point-space. The enumeration depends only on the
// spec and the RunConfig seed — never on worker counts or scheduling —
// so every shard of a fleet recomputes the identical ordering. Scale
// multipliers are folded in here, once, for the same reason.
func NewSpace(spec *Spec, cfg RunConfig) (*Space, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.effective()
	s := &Space{spec: spec, cfg: cfg}
	seeds := []int64{0}
	if spec.seeded() {
		seeds = spec.Seeds
	}
	for si, seed := range seeds {
		ts := spec.Topology
		if spec.seeded() {
			ts.Seed = seed
		}
		topo, err := buildTopology(ts, cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: seed %d: %w", spec.Name, seed, err)
		}
		sub := &seedSpace{seed: seed, topo: topo, systems: expandSystems(spec.Systems, topo.Size())}
		s.subs = append(s.subs, sub)
		if err := s.enumerate(si, sub); err != nil {
			return nil, err
		}
	}
	s.derived = deriveColumns(spec)
	if len(spec.Columns) > 0 && len(spec.Columns) != len(s.derived) {
		return nil, fmt.Errorf("scenario %q: %d explicit columns for %d derived (%v)",
			spec.Name, len(spec.Columns), len(s.derived), s.derived)
	}
	return s, nil
}

// enumerate appends the points of one seed sub-space, labeled and
// seed-tagged, continuing the global ordinal sequence.
func (s *Space) enumerate(si int, sub *seedSpace) error {
	spec := s.spec
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %q: %s", spec.Name, fmt.Sprintf(format, args...))
	}
	add := func(index, chunk int, label string) {
		if spec.seeded() {
			label = fmt.Sprintf("seed %d: %s", sub.seed, label)
		}
		s.points = append(s.points, Point{
			Ordinal: len(s.points),
			Label:   label,
			SeedIdx: si,
			Index:   index,
			Sub:     chunk,
		})
	}
	switch spec.Kind {
	case KindEval:
		if len(sub.systems) == 0 {
			return fail("system axes expand to no systems")
		}
		for i, pt := range sub.systems {
			add(i, 0, fmt.Sprintf("eval %s/%d", pt.spec.Family, pt.spec.Param))
		}
	case KindSweep:
		if len(sub.systems) == 0 {
			return fail("system axes expand to no systems")
		}
		// One point per (system, warm-start chunk), at the exact chunk
		// boundaries the strategy sweeps use: a sharded chunk re-runs the
		// same cold-then-warm solve chain as its slice of an unsharded
		// sweep, so even fast-mode output is identical.
		nVals := spec.Sweep.Points
		nChunks := (nVals + strategy.SweepChunkSize - 1) / strategy.SweepChunkSize
		for sysIdx, pt := range sub.systems {
			for ci := 0; ci < nChunks; ci++ {
				lo, hi := strategy.ChunkBounds(ci, nVals)
				add(sysIdx, ci, fmt.Sprintf("sweep %s/%d values %d..%d", pt.spec.Family, pt.spec.Param, lo, hi-1))
			}
		}
	case KindIterate:
		if len(sub.systems) != 1 {
			return fail("iterate scenario needs exactly one system, axes expand to %d", len(sub.systems))
		}
		for i := 0; i < spec.Iterate.Points; i++ {
			add(i, 0, fmt.Sprintf("iterate value %d/%d", i+1, spec.Iterate.Points))
		}
	case KindProtocol:
		ps := spec.Protocol
		for i := 0; i < len(ps.Ts)*len(ps.PerSite); i++ {
			t := ps.Ts[i/len(ps.PerSite)]
			per := ps.PerSite[i%len(ps.PerSite)]
			add(i, 0, fmt.Sprintf("protocol t=%d clients=%d", t, per*ps.clientSites()))
		}
	case KindTimeline:
		if len(sub.systems) != 1 {
			return fail("timeline scenario drives one planner; system axes expand to %d systems", len(sub.systems))
		}
		// A timeline is inherently sequential (each step re-plans the
		// previous step's state), so it is one indivisible point per seed.
		add(0, 0, fmt.Sprintf("timeline (%d steps)", len(spec.Timeline)))
	default:
		return fail("unknown kind %q", spec.Kind)
	}
	return nil
}

// Spec returns the spec the space was enumerated from.
func (s *Space) Spec() *Spec { return s.spec }

// NumPoints is the size of the point-space.
func (s *Space) NumPoints() int { return len(s.points) }

// Points returns a copy of the enumeration, in ordinal order.
func (s *Space) Points() []Point { return append([]Point(nil), s.points...) }

// Columns returns the output column names (after any explicit override).
func (s *Space) Columns() []string { return append([]string(nil), s.finalColumns()...) }

func (s *Space) finalColumns() []string {
	if len(s.spec.Columns) > 0 {
		return s.spec.Columns
	}
	return s.derived
}

// Shard returns the shard-th of shards partitions. Points are dealt
// round-robin by ordinal — shard i takes ordinals i, i+shards, … — so
// every point lands in exactly one shard and workloads stay balanced
// when later points are heavier (auto-expanded system axes grow).
// Shards beyond the point count come back empty; executing and merging
// them is valid and contributes no rows.
func (s *Space) Shard(shard, shards int) (*Partition, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("scenario %q: non-positive shard count %d", s.spec.Name, shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("scenario %q: shard %d outside [0, %d)", s.spec.Name, shard, shards)
	}
	p := &Partition{space: s, Shard: shard, Shards: shards}
	for i := shard; i < len(s.points); i += shards {
		p.Points = append(p.Points, s.points[i])
	}
	return p, nil
}

// Partition is one shard's slice of a point-space: the unit of work a
// fleet worker executes. Execute produces a Partial whose rows Merge
// places by ordinal.
type Partition struct {
	space *Space
	// Shard and Shards identify the slice (0 ≤ Shard < Shards).
	Shard  int
	Shards int
	// Points lists the work units, in ordinal order.
	Points []Point
}

// deriveColumns computes the column set a spec's run produces, before
// any explicit Columns override. It depends only on the spec, so
// partitioning, execution, and merging agree on the schema without
// executing anything. A seeds axis prepends a "seed" column.
func deriveColumns(spec *Spec) []string {
	cols := deriveKindColumns(spec)
	if spec.seeded() {
		cols = append([]string{"seed"}, cols...)
	}
	return cols
}

func deriveKindColumns(spec *Spec) []string {
	switch spec.Kind {
	case KindEval:
		cols := append([]string(nil), spec.rowColumnsOrDefault()...)
		for _, d := range spec.Demands {
			for _, st := range spec.Strategies {
				for _, m := range spec.Measures {
					name := measureName(m)
					if len(spec.Strategies) > 1 {
						name += "_" + st
					}
					if len(spec.Demands) > 1 {
						name += "_d" + trimFloat(d)
					}
					cols = append(cols, name)
				}
			}
		}
		return cols
	case KindSweep:
		rowCols := spec.RowColumns
		if rowCols == nil {
			rowCols = []string{"universe", "capacity"}
		}
		cols := append([]string(nil), rowCols...)
		variants := spec.Sweep.variants()
		for _, v := range variants {
			if len(variants) > 1 {
				cols = append(cols, "net_"+v, "resp_"+v)
			} else {
				cols = append(cols, "net_delay_ms", "response_ms")
			}
		}
		return cols
	case KindIterate:
		return []string{"capacity", "iter1_net_delay", "iter2_net_delay", "one_to_one"}
	case KindProtocol:
		rowCols := spec.RowColumns
		if rowCols == nil {
			rowCols = []string{"t", "universe", "clients"}
		}
		return append(append([]string(nil), rowCols...), "net_delay_ms", "response_ms")
	case KindTimeline:
		cols := []string{"step", "sites", "response_ms", "net_delay_ms", "max_load", "replanned"}
		if spec.CompareUnreplanned {
			cols = append(cols, "unreplanned_ms")
		}
		return cols
	}
	return nil
}
