package scenario

import (
	"reflect"
	"testing"

	"github.com/quorumnet/quorumnet/internal/deploy"
)

// TestTimelineStreamMatchesEngineTable is the exporter's contract: for
// every library timeline, replaying the streamed delta batches through
// a live deployment visits exactly the states the scenario engine's
// table records — same response time, network delay, max load, and
// site count per step, formatted cell for formatted cell.
func TestTimelineStreamMatchesEngineTable(t *testing.T) {
	for _, spec := range Library() {
		if spec.Kind != KindTimeline {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := RunConfig{Seed: 1, Reproducible: true}
			table, err := Run(&spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := TimelineStream(&spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(steps) != len(spec.Timeline) {
				t.Fatalf("streamed %d steps, want %d", len(steps), len(spec.Timeline))
			}

			p, err := TimelinePlanner(&spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := deploy.New(p, deploy.Config{})
			if err != nil {
				t.Fatal(err)
			}

			// Row 0 is the "initial" row; streamed step i corresponds to
			// row i+1.
			rows := table.Rows
			if len(rows) != len(steps)+1 {
				t.Fatalf("table has %d rows for %d steps", len(rows), len(steps))
			}
			assertRow := func(row []string, label string) {
				t.Helper()
				snap := m.Current().Snapshot
				got := []string{label, itoa(snap.Topology.Size()), f2(snap.Response), f2(snap.NetDelay), f3(snap.MaxLoad)}
				for i, cell := range got {
					if row[i] != cell {
						t.Fatalf("step %q column %d: deployment %q, table %q (row %v)", label, i, cell, row[i], row[:len(got)])
					}
				}
			}
			assertRow(rows[0], "initial")
			for i, step := range steps {
				if _, err := m.Apply(step.Deltas); err != nil {
					t.Fatalf("step %q: %v", step.Label, err)
				}
				assertRow(rows[i+1], step.Label)
			}
		})
	}
}

// TestTimelineStreamIsDeterministic pins the exporter's output: two
// exports of the same spec and config are deep-equal, batch for batch.
func TestTimelineStreamIsDeterministic(t *testing.T) {
	spec, err := LibraryByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Seed: 1, Reproducible: true}
	a, err := TimelineStream(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimelineStream(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("exports differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || len(a[i].Deltas) != len(b[i].Deltas) {
			t.Fatalf("step %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !reflect.DeepEqual(a[i].Deltas, b[i].Deltas) {
			t.Fatalf("step %d deltas differ:\n%+v\n%+v", i, a[i].Deltas, b[i].Deltas)
		}
	}
}

func TestTimelineStreamRejectsNonTimeline(t *testing.T) {
	spec, err := LibraryByName("seed-scale-study")
	if err != nil {
		// Library composition may change; any non-timeline spec works.
		for _, s := range Library() {
			if s.Kind != KindTimeline {
				spec = &s
				break
			}
		}
	}
	if spec == nil || spec.Kind == KindTimeline {
		t.Skip("no non-timeline library spec to test against")
	}
	if _, err := TimelineStream(spec, RunConfig{Seed: 1}); err == nil {
		t.Fatal("non-timeline spec exported a stream")
	}
}
