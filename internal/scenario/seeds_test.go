package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// seededSynth is smallSynth without the per-scenario seed override (a
// seeds axis and topology.seed are exclusive).
func seededSynth() TopologySpec {
	ts := smallSynth()
	ts.Seed = 0
	return ts
}

// seededSpecs covers every kind under a 3-value seeds axis.
func seededSpecs() []Spec {
	return []Spec{
		{
			Name:       "seeded-eval",
			Kind:       KindEval,
			Seeds:      []int64{11, 12, 13},
			Topology:   seededSynth(),
			Systems:    []SystemAxis{{Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1}}},
			Demands:    []float64{0, 4000},
			Strategies: []string{"closest", "lp"},
			Measures:   []string{"response"},
		},
		{
			Name:     "seeded-sweep-scaled",
			Kind:     KindSweep,
			Seeds:    []int64{11, 12},
			Scale:    &ScaleSpec{Sites: 1.5, Clients: 2},
			Topology: seededSynth(),
			Systems:  []SystemAxis{{Family: "grid", Params: []int{2, 3}}},
			Sweep:    &SweepSpec{Points: 4, Demand: 4000},
		},
		{
			Name:       "seeded-timeline",
			Kind:       KindTimeline,
			Seeds:      []int64{21, 22},
			Topology:   seededSynth(),
			Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
			Strategies: []string{"lp"},
			Demands:    []float64{8000},
			Timeline: []Step{
				{Label: "crowd", Weights: &WeightsStep{Regions: map[string]float64{"eu": 5}}},
				{Label: "uniform", Weights: &WeightsStep{Uniform: true}},
			},
		},
	}
}

// TestSeededShardedByteIdentical: seeded (and scaled) specs merge
// byte-identically to their unsharded runs at every shard count 1..8,
// with partials supplied in scrambled order — the exact-cover assertion
// inside Merge holds across the seed sub-space boundaries.
func TestSeededShardedByteIdentical(t *testing.T) {
	cfg := shardCfg()
	for _, spec := range seededSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			base, err := Run(&spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var baseText bytes.Buffer
			if err := base.Format(&baseText); err != nil {
				t.Fatal(err)
			}
			if base.Columns[0] != "seed" {
				t.Fatalf("seeded spec lacks leading seed column: %v", base.Columns)
			}
			for shards := 1; shards <= 8; shards++ {
				space, err := NewSpace(&spec, cfg)
				if err != nil {
					t.Fatal(err)
				}
				partials := make([]*Partial, shards)
				for si := 0; si < shards; si++ {
					part, err := space.Shard(si, shards)
					if err != nil {
						t.Fatal(err)
					}
					if partials[si], err = part.Execute(); err != nil {
						t.Fatalf("shard %d/%d: %v", si, shards, err)
					}
				}
				merged, err := space.Merge(scramble(partials, shards))
				if err != nil {
					t.Fatalf("merge %d shards: %v", shards, err)
				}
				var mergedText bytes.Buffer
				if err := merged.Format(&mergedText); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(baseText.Bytes(), mergedText.Bytes()) {
					t.Fatalf("%d shards: merged output differs from unsharded run:\n%s\nvs\n%s",
						shards, mergedText.String(), baseText.String())
				}
			}
		})
	}
}

// TestSeedSubSpacesScrambledMerge merges one partial per point, grouped
// by seed sub-space and supplied with the sub-spaces out of order (seed
// 13's partials first, then 11's, then 12's) — the merged table must
// still come out in enumeration order, every seed's rows leading with
// its seed value.
func TestSeedSubSpacesScrambledMerge(t *testing.T) {
	spec := seededSpecs()[0]
	cfg := shardCfg()
	base, err := Run(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpace(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := space.NumPoints()
	if n%3 != 0 {
		t.Fatalf("expected 3 equal seed sub-spaces, got %d points", n)
	}
	per := n / 3
	partials := make([]*Partial, n)
	for i := 0; i < n; i++ {
		part, err := space.Shard(i, n)
		if err != nil {
			t.Fatal(err)
		}
		if partials[i], err = part.Execute(); err != nil {
			t.Fatal(err)
		}
	}
	// Single-point shard i holds ordinal i, and ordinals run seed-major,
	// so [2per:3per) is seed 13's sub-space, etc.
	var scrambled []*Partial
	scrambled = append(scrambled, partials[2*per:]...)
	scrambled = append(scrambled, partials[:per]...)
	scrambled = append(scrambled, partials[per:2*per]...)
	merged, err := space.Merge(scrambled)
	if err != nil {
		t.Fatal(err)
	}
	var baseText, mergedText bytes.Buffer
	if err := base.Format(&baseText); err != nil {
		t.Fatal(err)
	}
	if err := merged.Format(&mergedText); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseText.Bytes(), mergedText.Bytes()) {
		t.Fatal("scrambled seed sub-space merge differs from unsharded run")
	}
	wantSeeds := []string{"11", "12", "13"}
	for ri, row := range merged.Rows {
		want := wantSeeds[ri/(len(merged.Rows)/3)]
		if row[0] != want {
			t.Fatalf("row %d seed cell %q, want %q", ri, row[0], want)
		}
	}
}

// TestDuplicatePartialRejected: a shard executed twice (two attempts of
// the same shard, as a fleet coordinator would see after a worker came
// back from the dead) is rejected by Merge — exactly one error naming
// the duplicated point.
func TestDuplicatePartialRejected(t *testing.T) {
	spec := seededSpecs()[0]
	cfg := shardCfg()
	space, err := NewSpace(&spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shard0, err := space.Shard(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := space.Shard(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	attempt1, err := shard0.Execute()
	if err != nil {
		t.Fatal(err)
	}
	attempt2, err := shard0.Execute()
	if err != nil {
		t.Fatal(err)
	}
	other, err := shard1.Execute()
	if err != nil {
		t.Fatal(err)
	}
	_, err = space.Merge([]*Partial{attempt1, other, attempt2})
	if err == nil {
		t.Fatal("duplicate partial merged without error")
	}
	if !strings.Contains(err.Error(), "executed 2 times") {
		t.Fatalf("duplicate error %q does not name the double execution", err)
	}
	// The duplicate rejected, the honest pair still merges.
	if _, err := space.Merge([]*Partial{other, attempt1}); err != nil {
		t.Fatalf("valid partials no longer merge: %v", err)
	}
}

// TestScaleMultipliers: scale.sites grows the synthetic topology (the
// auto-expanded system axis sees more sites) and scale.clients shows up
// in the derived demand column names.
func TestScaleMultipliers(t *testing.T) {
	base := Spec{
		Name:       "scale-probe",
		Kind:       KindEval,
		Topology:   seededSynth(),
		Systems:    []SystemAxis{{Family: "majority"}}, // auto-expand: 2p+1 <= sites-1
		Demands:    []float64{4000},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
	}
	cfg := shardCfg()
	unscaled, err := NewSpace(&base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scaled := base
	scaled.Scale = &ScaleSpec{Sites: 2, Clients: 2.5}
	scaledSpace, err := NewSpace(&scaled, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 15 sites -> 6 majority systems (2p+1 <= 14); 30 sites -> 14.
	if got, want := unscaled.NumPoints(), 6; got != want {
		t.Fatalf("unscaled point count %d, want %d", got, want)
	}
	if got, want := scaledSpace.NumPoints(), 14; got != want {
		t.Fatalf("scaled point count %d, want %d", got, want)
	}
	// One demand value never suffixes column names; scale a two-demand
	// spec to see the multiplied values in the schema.
	multi := scaled
	multi.Demands = []float64{4000, 8000}
	multiSpace, err := NewSpace(&multi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cols := strings.Join(multiSpace.Columns(), ",")
	if !strings.Contains(cols, "_d10000") || !strings.Contains(cols, "_d20000") {
		t.Fatalf("scaled demand columns missing from %v", multiSpace.Columns())
	}
	// The caller's spec is never mutated by scaling.
	if multi.Demands[0] != 4000 || multi.Topology.Synth.Regions[0].Count != 5 {
		t.Fatalf("scaling mutated the caller's spec: %+v", multi)
	}
}

// TestSeedsAndScaleValidation rejects the inconsistent axis
// combinations.
func TestSeedsAndScaleValidation(t *testing.T) {
	mk := func(mut func(*Spec)) *Spec {
		s := &Spec{
			Name:       "bad",
			Kind:       KindEval,
			Topology:   seededSynth(),
			Systems:    []SystemAxis{{Family: "grid", Params: []int{2}}},
			Demands:    []float64{0},
			Strategies: []string{"closest"},
			Measures:   []string{"response"},
		}
		mut(s)
		return s
	}
	cases := []struct {
		name string
		spec *Spec
		want string
	}{
		{"seeds-with-file", mk(func(s *Spec) {
			s.Seeds = []int64{1}
			s.Topology = TopologySpec{Source: "file", Path: "x.txt"}
		}), "seed-consuming"},
		{"seeds-with-topology-seed", mk(func(s *Spec) {
			s.Seeds = []int64{1}
			s.Topology.Seed = 7
		}), "exclusive"},
		{"duplicate-seed", mk(func(s *Spec) { s.Seeds = []int64{4, 4} }), "twice"},
		{"zero-seed", mk(func(s *Spec) { s.Seeds = []int64{0} }), "seed 0"},
		{"empty-scale", mk(func(s *Spec) { s.Scale = &ScaleSpec{} }), "multiplies nothing"},
		{"negative-sites", mk(func(s *Spec) { s.Scale = &ScaleSpec{Sites: -1} }), "invalid scale.sites"},
		{"negative-clients", mk(func(s *Spec) { s.Scale = &ScaleSpec{Clients: -2} }), "invalid scale.clients"},
		{"sites-on-measured", mk(func(s *Spec) {
			s.Scale = &ScaleSpec{Sites: 2}
			s.Topology = TopologySpec{Source: "planetlab50"}
		}), "scale.sites"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("invalid spec validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	// Scale on a protocol grid multiplies clients per site.
	ps := &Spec{
		Name:     "scaled-protocol",
		Kind:     KindProtocol,
		Topology: seededSynth(),
		Scale:    &ScaleSpec{Clients: 3},
		Protocol: &ProtocolSpec{Ts: []int{1}, PerSite: []int{2}, ClientSites: 5},
	}
	space, err := NewSpace(ps, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := space.Points()[0].Label; !strings.Contains(got, "clients=30") {
		t.Fatalf("scaled protocol label %q, want clients=30 (2*3 per site x 5 sites)", got)
	}
	if ps.Protocol.PerSite[0] != 2 {
		t.Fatal("scaling mutated the caller's protocol spec")
	}
}
