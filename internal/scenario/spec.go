// Package scenario is the declarative layer over the planner pipeline: a
// Spec names a topology source, quorum-system axes, a placement
// algorithm, demand and strategy axes, capacity sweeps, fault
// injections, protocol-simulation grids, or delta timelines — and the
// engine validates the spec, expands its axes into plan points, and
// executes them on the shared bounded worker pool, producing a Table.
//
// Every figure of the paper is a Spec (see internal/experiments), the
// built-in workload library (regional outage, diurnal demand shift, RTT
// drift, site churn, flash crowd, heterogeneous demand) is a set of
// Specs, and cmd/quorumbench loads further Specs from JSON files.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/quorumnet/quorumnet/internal/plan"
	"github.com/quorumnet/quorumnet/internal/strategy"
	"github.com/quorumnet/quorumnet/internal/topology"
)

// Kind selects the execution shape of a scenario.
type Kind string

// Scenario kinds.
const (
	// KindEval evaluates each (system, demand, strategy, measure) cell of
	// the axis product on a fixed placement per system.
	KindEval Kind = "eval"
	// KindSweep runs capacity sweeps with LP-optimized strategies per
	// system (§7).
	KindSweep Kind = "sweep"
	// KindIterate runs the §4.2 iterative algorithm across a capacity
	// sweep against the one-to-one baseline.
	KindIterate Kind = "iterate"
	// KindProtocol runs the §3 Q/U discrete-event simulations over a
	// (faults t × clients) grid.
	KindProtocol Kind = "protocol"
	// KindTimeline drives a plan.Planner through a sequence of deltas,
	// re-planning incrementally after each step.
	KindTimeline Kind = "timeline"
)

// Spec declares a scenario. Zero-valued optional fields take documented
// defaults; Validate reports anything inconsistent before execution.
type Spec struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	Kind  Kind   `json:"kind"`
	// Notes are printed under the table.
	Notes []string `json:"notes,omitempty"`
	// Columns overrides the derived column names (the count must match).
	Columns []string `json:"columns,omitempty"`

	Topology TopologySpec `json:"topology"`
	// Systems are the quorum-system axes, expanded in order into the
	// row-major system sequence.
	Systems []SystemAxis `json:"systems,omitempty"`
	// Placement selects the placement algorithm (default one-to-one).
	Placement PlacementSpec `json:"placement,omitempty"`

	// RowColumns picks the identifying prefix cells of each row, from
	// "system", "param", "universe" (eval kind), plus "capacity" (sweep),
	// "t", "clients" (protocol).
	RowColumns []string `json:"row_columns,omitempty"`
	// Demands lists client demand values (requests); alpha is
	// OpServiceTimeMS × demand, 0 evaluating pure network delay.
	Demands []float64 `json:"demands,omitempty"`
	// Strategies lists access strategies: "closest", "balanced", "lp".
	Strategies []string `json:"strategies,omitempty"`
	// Measures lists the evaluated quantities per (demand, strategy):
	// "response", "net", "maxload".
	Measures []string `json:"measures,omitempty"`
	// UniformCapacity is the per-site capacity the "lp" strategy solves
	// under in eval scenarios (default 1).
	UniformCapacity float64 `json:"uniform_capacity,omitempty"`
	// Solver selects the access-LP algorithm for the "lp" strategy and
	// timeline plans: "auto" (default), "dense", or "colgen". Reproducible
	// runs pin the dense path regardless — the byte-reproducibility
	// contract is defined by the dense pivot sequence.
	Solver string `json:"solver,omitempty"`
	// Faults injects failures/slowdowns before evaluation (eval kind).
	Faults *FaultSpec `json:"faults,omitempty"`

	// Seeds is the seed axis: the whole study repeats over one generated
	// topology per seed, each seed a separate partition-able sub-space of
	// the point-space, and every row gains a leading "seed" column. Seed
	// values pass to the topology source verbatim (so they need a
	// seed-consuming source — anything but "file") and exclude the
	// per-scenario topology.seed override.
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale multiplies study axes in place, so the ~100x parameter
	// studies sharding was built for live in one spec file instead of N
	// hand-edited copies.
	Scale *ScaleSpec `json:"scale,omitempty"`

	Sweep    *SweepSpec    `json:"sweep,omitempty"`
	Iterate  *IterateSpec  `json:"iterate,omitempty"`
	Protocol *ProtocolSpec `json:"protocol,omitempty"`
	Timeline []Step        `json:"timeline,omitempty"`
	// CompareUnreplanned (timeline kind) appends an "unreplanned_ms"
	// column: each step also evaluates the deployment that did NOT
	// re-plan — site-removal steps are replayed as failures against the
	// previous snapshot via internal/faults, demand/capacity/weight
	// steps evaluate the previous artifacts under the new conditions —
	// so the table shows the response-time value of re-planning side by
	// side. Steps with no previous-topology counterpart (scale_rtt,
	// add_sites) render "-"; a failure no quorum survives renders
	// "down".
	CompareUnreplanned bool `json:"compare_unreplanned,omitempty"`

	// Workers bounds the engine's point-level worker pool
	// (0 = GOMAXPROCS). Results never depend on the worker count.
	Workers int `json:"workers,omitempty"`
}

// TopologySpec names the WAN the scenario runs on.
type TopologySpec struct {
	// Source is "planetlab50", "daxlist161", "file" (Path, quorumnet text
	// format), or "synth" (Synth config).
	Source string `json:"source"`
	// Seed overrides the run seed for synthesis (0 = RunConfig.Seed).
	Seed int64  `json:"seed,omitempty"`
	Path string `json:"path,omitempty"`
	// Synth parameterizes the "synth" source.
	Synth *topology.GenConfig `json:"synth,omitempty"`
}

// SystemAxis expands into a sequence of concrete quorum systems: either
// the explicit Params, or every parameter whose universe fits under
// MaxUniverse (0 = topology size − 1), stepping by Step.
type SystemAxis struct {
	// Family is one of "majority", "bmajority", "qumajority", "grid",
	// "singleton" (see plan.SystemSpec).
	Family string `json:"family"`
	Params []int  `json:"params,omitempty"`
	// MaxUniverse bounds auto-expansion (0 = topology size − 1).
	MaxUniverse int `json:"max_universe,omitempty"`
	// Step strides auto-expansion (0/1 = every parameter).
	Step int `json:"step,omitempty"`
}

// DisplayName is the family label used in "system" row cells.
func (a SystemAxis) DisplayName() string {
	switch a.Family {
	case "majority":
		return "majority(t+1,2t+1)"
	case "bmajority":
		return "majority(2t+1,3t+1)"
	case "qumajority":
		return "majority(4t+1,5t+1)"
	default:
		return a.Family
	}
}

// expand yields the concrete system specs of the axis given the topology
// size.
func (a SystemAxis) expand(topoSize int) []plan.SystemSpec {
	if a.Family == "singleton" {
		return []plan.SystemSpec{{Family: "singleton"}}
	}
	if len(a.Params) > 0 {
		out := make([]plan.SystemSpec, len(a.Params))
		for i, p := range a.Params {
			out[i] = plan.SystemSpec{Family: a.Family, Param: p}
		}
		return out
	}
	bound := a.MaxUniverse
	if bound <= 0 {
		bound = topoSize - 1
	}
	step := a.Step
	if step <= 0 {
		step = 1
	}
	universeOf := func(p int) int {
		switch a.Family {
		case "majority":
			return 2*p + 1
		case "bmajority":
			return 3*p + 1
		case "qumajority":
			return 5*p + 1
		case "grid":
			return p * p
		default:
			return bound + 1 // unknown families expand to nothing
		}
	}
	start := 1
	if a.Family == "grid" {
		start = 2
	}
	var out []plan.SystemSpec
	for p := start; universeOf(p) <= bound; p += step {
		out = append(out, plan.SystemSpec{Family: a.Family, Param: p})
	}
	return out
}

// ScaleSpec multiplies study axes. Scaling happens once, when the
// point-space is enumerated, so every shard of a fleet derives the
// identical scaled study and merge stays byte-identical to an unsharded
// run of the same spec.
type ScaleSpec struct {
	// Sites multiplies every synthetic region's site count — or, in AS
	// mode, the AS count — rounded up. Requires the "synth" topology
	// source; the measured topologies have a fixed roster.
	Sites float64 `json:"sites,omitempty"`
	// Clients multiplies every demand-bearing knob: Demands, the sweep
	// and iterate demand, protocol clients per site (rounded up, at
	// least 1), and timeline demand steps.
	Clients float64 `json:"clients,omitempty"`
}

// seeded reports whether the spec carries an explicit seed axis.
func (s *Spec) seeded() bool { return len(s.Seeds) > 0 }

// effective returns the spec the engine actually enumerates and
// executes: the Scale multipliers folded into the axes they scale. It
// is a pure function of the spec, so partitioning, execution, and
// merging — on any process — derive the same scaled study.
func (s *Spec) effective() *Spec {
	if s.Scale == nil {
		return s
	}
	c := *s
	sc := *s.Scale
	c.Scale = nil
	if k := sc.Sites; k > 0 && c.Topology.Synth != nil {
		synth := *c.Topology.Synth
		synth.Regions = append([]topology.RegionSpec(nil), synth.Regions...)
		for i := range synth.Regions {
			synth.Regions[i].Count = int(math.Ceil(float64(synth.Regions[i].Count) * k))
		}
		if synth.AS != nil {
			as := *synth.AS
			as.Sites = int(math.Ceil(float64(as.Sites) * k))
			synth.AS = &as
		}
		c.Topology.Synth = &synth
	}
	if k := sc.Clients; k > 0 {
		if len(c.Demands) > 0 {
			d := make([]float64, len(c.Demands))
			for i, v := range c.Demands {
				d[i] = v * k
			}
			c.Demands = d
		}
		if c.Sweep != nil {
			sw := *c.Sweep
			sw.Demand *= k
			c.Sweep = &sw
		}
		if c.Iterate != nil {
			it := *c.Iterate
			it.Demand *= k
			c.Iterate = &it
		}
		if c.Protocol != nil {
			ps := *c.Protocol
			per := make([]int, len(ps.PerSite))
			for i, v := range ps.PerSite {
				per[i] = int(math.Ceil(float64(v) * k))
				if per[i] < 1 {
					per[i] = 1
				}
			}
			ps.PerSite = per
			c.Protocol = &ps
		}
		if len(c.Timeline) > 0 {
			steps := append([]Step(nil), c.Timeline...)
			for i := range steps {
				if steps[i].Demand != nil {
					v := *steps[i].Demand * k
					steps[i].Demand = &v
				}
			}
			c.Timeline = steps
		}
	}
	return &c
}

// PlacementSpec selects the placement construction.
type PlacementSpec struct {
	// Algorithm is "one-to-one" (default), "singleton", or "many-to-one".
	Algorithm string `json:"algorithm,omitempty"`
}

func (p PlacementSpec) algorithm() plan.Algorithm {
	if p.Algorithm == "" {
		return plan.AlgoOneToOne
	}
	return plan.Algorithm(p.Algorithm)
}

// SweepSpec parameterizes capacity sweeps (7.7).
type SweepSpec struct {
	// Points is the sweep resolution (the paper uses 10).
	Points int `json:"points"`
	// Demand sets alpha for the response-time measure.
	Demand float64 `json:"demand"`
	// Variants lists the capacity assignments swept: "uniform" and/or
	// "nonuniform" (default uniform only).
	Variants []string `json:"variants,omitempty"`
}

func (s *SweepSpec) variants() []string {
	if len(s.Variants) == 0 {
		return []string{"uniform"}
	}
	return s.Variants
}

// IterateSpec parameterizes the §4.2 iterative-algorithm sweep.
type IterateSpec struct {
	Points int     `json:"points"`
	Demand float64 `json:"demand,omitempty"`
	// MaxIterations bounds the iterative loop (default 2, as Figure 8.9
	// reports the first two iterations).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Candidates restricts anchor nodes (quick runs).
	Candidates []int `json:"candidates,omitempty"`
}

// ProtocolSpec parameterizes the §3 Q/U simulations. Systems axes are
// ignored: the protocol experiment is defined over the (4t+1, 5t+1)
// majority family.
type ProtocolSpec struct {
	// Ts lists the fault thresholds t (universe 5t+1).
	Ts []int `json:"ts"`
	// PerSite lists clients-per-client-site counts.
	PerSite []int `json:"per_site"`
	// ClientSites is the number of representative client locations
	// (default 10).
	ClientSites int `json:"client_sites,omitempty"`
	// ServiceTimeMS is per-request server processing time (default 1).
	ServiceTimeMS float64 `json:"service_time_ms,omitempty"`
	// LinkTxMS is the per-message access-link serialization time
	// (default 0.8).
	LinkTxMS float64 `json:"link_tx_ms,omitempty"`
}

func (p *ProtocolSpec) clientSites() int {
	if p.ClientSites <= 0 {
		return 10
	}
	return p.ClientSites
}

func (p *ProtocolSpec) serviceTime() float64 {
	if p.ServiceTimeMS <= 0 {
		return 1
	}
	return p.ServiceTimeMS
}

func (p *ProtocolSpec) linkTx() float64 {
	if p.LinkTxMS <= 0 {
		return 0.8
	}
	return p.LinkTxMS
}

// FaultSpec injects failures and slowdowns before evaluation. Slowdowns
// apply first (the metric re-closes around degraded nodes), then crash
// failures restrict the surviving system; when no quorum survives, the
// affected measures render as "down".
type FaultSpec struct {
	// WorstCase fails the f worst-case support nodes (most elements
	// hosted, closest to clients).
	WorstCase int `json:"worst_case,omitempty"`
	// Sites fails the named sites.
	Sites []string `json:"sites,omitempty"`
	// Region fails every site of the region.
	Region string `json:"region,omitempty"`
	// SlowFactor multiplies delays through SlowSites/SlowRegion (> 1).
	SlowFactor float64  `json:"slow_factor,omitempty"`
	SlowSites  []string `json:"slow_sites,omitempty"`
	SlowRegion string   `json:"slow_region,omitempty"`
}

func (f *FaultSpec) empty() bool {
	return f == nil || (f.WorstCase == 0 && len(f.Sites) == 0 && f.Region == "" &&
		f.SlowFactor == 0 && len(f.SlowSites) == 0 && f.SlowRegion == "")
}

// Step is one timeline entry: every set field is applied as a delta to
// the planner, then the scenario re-plans once and records the outcome —
// so a step models one atomic world change (an outage takes several
// sites at once).
type Step struct {
	Label string `json:"label"`
	// Demand re-targets the per-client demand.
	Demand *float64 `json:"demand,omitempty"`
	// UniformCapacity re-targets every site's capacity.
	UniformCapacity *float64 `json:"uniform_capacity,omitempty"`
	// SiteCapacity re-targets named sites' capacities.
	SiteCapacity map[string]float64 `json:"site_capacity,omitempty"`
	// ScaleRTT multiplies raw RTTs (drift, congestion, relief).
	ScaleRTT *ScaleRTTStep `json:"scale_rtt,omitempty"`
	// RemoveSites / RemoveRegion decommission sites (outage, churn).
	RemoveSites  []string `json:"remove_sites,omitempty"`
	RemoveRegion string   `json:"remove_region,omitempty"`
	// AddSites splices new sites in with synthesized RTTs (churn).
	AddSites []NewSiteStep `json:"add_sites,omitempty"`
	// Weights re-targets per-site client demand weights (flash crowds,
	// heterogeneous demand).
	Weights *WeightsStep `json:"weights,omitempty"`
}

// hasDelta reports whether the step changes anything; Validate rejects
// empty steps (a misspelled delta key is caught by the JSON decoder, a
// structurally empty step here).
func (s Step) hasDelta() bool {
	return s.Demand != nil || s.UniformCapacity != nil || len(s.SiteCapacity) > 0 ||
		s.ScaleRTT != nil || len(s.RemoveSites) > 0 || s.RemoveRegion != "" ||
		len(s.AddSites) > 0 || s.Weights != nil
}

// WeightsStep assigns relative demand weights to the sites: every site
// starts at Default (0 = 1), region entries override it, and site
// entries override both. Uniform restores uniform demand instead.
type WeightsStep struct {
	Uniform bool               `json:"uniform,omitempty"`
	Default float64            `json:"default,omitempty"`
	Regions map[string]float64 `json:"regions,omitempty"`
	Sites   map[string]float64 `json:"sites,omitempty"`
}

// ScaleRTTStep multiplies the raw RTT of links by Factor; when Region is
// set, only links with at least one endpoint in that region.
type ScaleRTTStep struct {
	Factor float64 `json:"factor"`
	Region string  `json:"region,omitempty"`
}

// NewSiteStep describes a site to splice into the topology. RTTs to the
// existing sites are synthesized from coordinates with
// topology.EstimateRTT.
type NewSiteStep struct {
	Name     string  `json:"name"`
	Region   string  `json:"region,omitempty"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	AccessMS float64 `json:"access_ms,omitempty"`
	Capacity float64 `json:"capacity,omitempty"`
}

// Load reads and validates a JSON scenario spec. Specs whose name
// collides with a built-in library scenario are rejected — quorumbench
// resolves names against the library first, so a colliding file could
// never be addressed unambiguously.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if IsLibraryName(s.Name) {
		return nil, fmt.Errorf("scenario: spec name %q collides with a built-in library scenario", s.Name)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

var validStrategies = map[string]bool{"closest": true, "balanced": true, "lp": true}
var validMeasures = map[string]bool{"response": true, "net": true, "maxload": true}

// Validate checks the spec for structural problems before execution.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	switch s.Topology.Source {
	case "planetlab50", "daxlist161":
	case "file":
		if s.Topology.Path == "" {
			return fail("topology source \"file\" needs a path")
		}
	case "synth":
		if s.Topology.Synth == nil {
			return fail("topology source \"synth\" needs a synth config")
		}
	case "":
		return fail("topology source missing")
	default:
		return fail("unknown topology source %q", s.Topology.Source)
	}
	switch s.Placement.algorithm() {
	case plan.AlgoOneToOne, plan.AlgoSingleton, plan.AlgoManyToOne:
	default:
		return fail("unknown placement algorithm %q", s.Placement.Algorithm)
	}
	for _, a := range s.Systems {
		switch a.Family {
		case "majority", "bmajority", "qumajority", "grid", "singleton":
		default:
			return fail("unknown system family %q", a.Family)
		}
	}
	if s.seeded() {
		if s.Topology.Source == "file" {
			return fail("seeds axis needs a seed-consuming topology source, not \"file\"")
		}
		if s.Topology.Seed != 0 {
			return fail("seeds axis and topology.seed are exclusive")
		}
		seen := map[int64]bool{}
		for _, seed := range s.Seeds {
			if seed == 0 {
				return fail("seed 0 means \"inherit the run seed\" elsewhere; use an explicit non-zero seed")
			}
			if seen[seed] {
				return fail("seed %d appears twice in the seeds axis", seed)
			}
			seen[seed] = true
		}
	}
	if sc := s.Scale; sc != nil {
		if sc.Sites == 0 && sc.Clients == 0 {
			return fail("scale multiplies nothing (set sites and/or clients)")
		}
		if sc.Sites < 0 || math.IsNaN(sc.Sites) || math.IsInf(sc.Sites, 0) {
			return fail("invalid scale.sites %v", sc.Sites)
		}
		if sc.Clients < 0 || math.IsNaN(sc.Clients) || math.IsInf(sc.Clients, 0) {
			return fail("invalid scale.clients %v", sc.Clients)
		}
		if sc.Sites > 0 && s.Topology.Source != "synth" {
			return fail("scale.sites multiplies synthetic region counts; topology source is %q", s.Topology.Source)
		}
	}
	for _, st := range s.Strategies {
		if !validStrategies[st] {
			return fail("unknown strategy %q", st)
		}
	}
	if _, err := strategy.ParseSolver(s.Solver); err != nil {
		return fail("unknown solver %q (want auto, dense, or colgen)", s.Solver)
	}
	for _, m := range s.Measures {
		if !validMeasures[m] {
			return fail("unknown measure %q", m)
		}
	}

	switch s.Kind {
	case KindEval:
		if len(s.Systems) == 0 {
			return fail("eval scenario needs at least one system axis")
		}
		if len(s.Demands) == 0 || len(s.Strategies) == 0 || len(s.Measures) == 0 {
			return fail("eval scenario needs demands, strategies, and measures")
		}
	case KindSweep:
		if s.Sweep == nil || s.Sweep.Points <= 0 {
			return fail("sweep scenario needs sweep.points > 0")
		}
		if len(s.Systems) == 0 {
			return fail("sweep scenario needs at least one system axis")
		}
		for _, v := range s.Sweep.variants() {
			if v != "uniform" && v != "nonuniform" {
				return fail("unknown sweep variant %q", v)
			}
		}
	case KindIterate:
		if s.Iterate == nil || s.Iterate.Points <= 0 {
			return fail("iterate scenario needs iterate.points > 0")
		}
		if len(s.Systems) == 0 {
			return fail("iterate scenario needs a system axis")
		}
	case KindProtocol:
		if s.Protocol == nil || len(s.Protocol.Ts) == 0 || len(s.Protocol.PerSite) == 0 {
			return fail("protocol scenario needs protocol.ts and protocol.per_site")
		}
	case KindTimeline:
		if len(s.Timeline) == 0 {
			return fail("timeline scenario needs steps")
		}
		if len(s.Systems) == 0 {
			return fail("timeline scenario needs a system axis")
		}
		// A timeline drives one planner; axes that only make sense as
		// cross products would be silently ignored.
		if len(s.Strategies) > 1 {
			return fail("timeline scenario takes at most one strategy, got %d", len(s.Strategies))
		}
		if len(s.Demands) > 1 {
			return fail("timeline scenario takes at most one starting demand, got %d (change demand with steps)", len(s.Demands))
		}
		if len(s.Measures) > 0 {
			return fail("timeline scenario reports fixed measures; drop the measures field")
		}
		for i, st := range s.Timeline {
			if st.Label == "" {
				return fail("timeline step %d needs a label", i)
			}
			if !st.hasDelta() {
				return fail("timeline step %q has no deltas", st.Label)
			}
			if st.ScaleRTT != nil && st.ScaleRTT.Factor <= 0 {
				return fail("timeline step %q: scale_rtt factor must be positive", st.Label)
			}
			if w := st.Weights; w != nil {
				if w.Uniform && (w.Default != 0 || len(w.Regions) > 0 || len(w.Sites) > 0) {
					return fail("timeline step %q: uniform weights exclude default/regions/sites", st.Label)
				}
				if !w.Uniform && w.Default == 0 && len(w.Regions) == 0 && len(w.Sites) == 0 {
					return fail("timeline step %q: weights step assigns nothing", st.Label)
				}
				if w.Default < 0 || math.IsNaN(w.Default) || math.IsInf(w.Default, 0) {
					return fail("timeline step %q: invalid default weight %v", st.Label, w.Default)
				}
				for name, v := range w.Regions {
					if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						return fail("timeline step %q: invalid weight %v for region %q", st.Label, v, name)
					}
				}
				for name, v := range w.Sites {
					if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
						return fail("timeline step %q: invalid weight %v for site %q", st.Label, v, name)
					}
				}
			}
		}
	case "":
		return fail("kind missing")
	default:
		return fail("unknown kind %q", s.Kind)
	}
	if s.CompareUnreplanned && s.Kind != KindTimeline {
		return fail("compare_unreplanned only applies to timeline scenarios")
	}
	return nil
}
