package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is the result of a scenario run (and of the figure regenerations
// built on it): rows of formatted cells under named columns.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records shape claims (e.g. what the paper says about the
	// figure) printed after the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("scenario: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// FormatMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) FormatMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteCSV writes the table as RFC-4180 CSV: a header of the column
// names, then the rows, in table order. Notes and the title are not
// part of the CSV surface — the cells are the machine-readable payload.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable wire shape of a Table. Columns and rows are
// arrays, so column order survives the round trip — the property the
// fleet protocol and the partition-merge invariants rely on.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// MarshalJSON encodes the table with a stable column order.
func (t *Table) MarshalJSON() ([]byte, error) {
	tj := tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
	if tj.Columns == nil {
		tj.Columns = []string{}
	}
	if tj.Rows == nil {
		tj.Rows = [][]string{}
	}
	return json.Marshal(tj)
}

// UnmarshalJSON decodes a table, rejecting rows whose cell count does
// not match the columns.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	for i, row := range tj.Rows {
		if len(row) != len(tj.Columns) {
			return fmt.Errorf("scenario: table %s row %d has %d cells for %d columns",
				tj.ID, i, len(row), len(tj.Columns))
		}
	}
	t.ID, t.Title, t.Columns, t.Rows, t.Notes = tj.ID, tj.Title, tj.Columns, tj.Rows, tj.Notes
	return nil
}

// Cell returns the numeric value of a cell (tests and shape checks).
func (t *Table) Cell(row, col int) (float64, error) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Columns) {
		return 0, fmt.Errorf("scenario: cell (%d,%d) out of range", row, col)
	}
	return strconv.ParseFloat(t.Rows[row][col], 64)
}

// Col returns the index of a named column.
func (t *Table) Col(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("scenario: table %s has no column %q", t.ID, name)
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string   { return strconv.Itoa(v) }
