package scenario

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Table is the result of a scenario run (and of the figure regenerations
// built on it): rows of formatted cells under named columns.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records shape claims (e.g. what the paper says about the
	// figure) printed after the table.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("scenario: row has %d cells, table %s has %d columns",
			len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	return nil
}

// FormatMarkdown writes the table as GitHub-flavored markdown.
func (t *Table) FormatMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "- %s\n", n)
	}
	fmt.Fprintln(w)
	return nil
}

// Cell returns the numeric value of a cell (tests and shape checks).
func (t *Table) Cell(row, col int) (float64, error) {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Columns) {
		return 0, fmt.Errorf("scenario: cell (%d,%d) out of range", row, col)
	}
	return strconv.ParseFloat(t.Rows[row][col], 64)
}

// Col returns the index of a named column.
func (t *Table) Col(name string) (int, error) {
	for i, c := range t.Columns {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("scenario: table %s has no column %q", t.ID, name)
}

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string   { return strconv.Itoa(v) }
