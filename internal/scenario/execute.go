package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/quorumnet/quorumnet/internal/core"
	"github.com/quorumnet/quorumnet/internal/par"
	"github.com/quorumnet/quorumnet/internal/placement"
	"github.com/quorumnet/quorumnet/internal/protocol"
	"github.com/quorumnet/quorumnet/internal/quorum"
	"github.com/quorumnet/quorumnet/internal/strategy"
)

// Progress is one execution progress event: a point of a partition
// finished. Handlers receive events concurrently from pool workers.
type Progress struct {
	Scenario string
	// Shard and Shards identify the partition being executed.
	Shard  int
	Shards int
	// Done of Total points of this partition have completed.
	Done  int
	Total int
	// Point is the work unit that just finished.
	Point Point
	// Elapsed is the time since the partition's execution started.
	Elapsed time.Duration
}

// RowTag places one partial row into the merged table: the ordinal of
// the point that produced it and the row's sequence within that point.
type RowTag struct {
	Point int `json:"point"`
	Seq   int `json:"seq"`
}

// Partial is the result of executing one partition: a table fragment
// whose rows are tagged for ordinal merge. It is the payload fleet
// workers return, serialized through Table's stable JSON encoding.
type Partial struct {
	// Scenario names the spec; Merge rejects partials of another spec.
	Scenario string `json:"scenario"`
	// Config records the settings the partition executed under; Merge
	// rejects partials from a different configuration.
	Config Settings `json:"config"`
	Shard  int      `json:"shard"`
	Shards int      `json:"shards"`
	// Points lists the executed ordinals; Merge asserts every ordinal of
	// the space appears exactly once across the merged partials.
	Points []int `json:"points"`
	// Tags holds one entry per Table row.
	Tags  []RowTag `json:"tags"`
	Table *Table   `json:"table"`
}

// Execute runs the partition's points on the spec's worker pool and
// returns the tagged partial table. Output depends only on the spec,
// the RunConfig, and the partition's point set — never on worker counts
// or scheduling — so merged shards reproduce an unsharded run exactly.
func (p *Partition) Execute() (*Partial, error) {
	s := p.space
	spec, cfg := s.spec, s.cfg
	start := time.Now()
	var done atomic.Int64
	report := func(i int) {
		n := int(done.Add(1))
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				Scenario: spec.Name,
				Shard:    p.Shard,
				Shards:   p.Shards,
				Done:     n,
				Total:    len(p.Points),
				Point:    p.Points[i],
				Elapsed:  time.Since(start),
			})
		}
	}

	rows := make([][][]string, len(p.Points))
	var err error
	switch spec.Kind {
	case KindEval:
		err = p.executeEval(rows, report)
	case KindSweep:
		err = p.executeSweep(rows, report)
	case KindIterate:
		err = p.executeIterate(rows, report)
	case KindProtocol:
		err = p.executeProtocol(rows, report)
	case KindTimeline:
		err = p.executeTimeline(rows, report)
	default:
		err = fmt.Errorf("unknown kind %q", spec.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}

	// A seeds axis owns the leading "seed" column; prepending here, once,
	// keeps every kind executor seed-agnostic.
	if spec.seeded() {
		for li, pt := range p.Points {
			cell := strconv.FormatInt(s.subs[pt.SeedIdx].seed, 10)
			for ri := range rows[li] {
				rows[li][ri] = append([]string{cell}, rows[li][ri]...)
			}
		}
	}

	out := &Partial{
		Scenario: spec.Name,
		Config:   cfg.Settings(),
		Shard:    p.Shard,
		Shards:   p.Shards,
		Points:   []int{},
		Tags:     []RowTag{},
		Table: &Table{
			ID:      spec.Name,
			Title:   spec.Title,
			Columns: append([]string(nil), s.finalColumns()...),
		},
	}
	for li, pt := range p.Points {
		out.Points = append(out.Points, pt.Ordinal)
		for j, row := range rows[li] {
			out.Tags = append(out.Tags, RowTag{Point: pt.Ordinal, Seq: j})
			out.Table.Rows = append(out.Table.Rows, row)
		}
	}
	return out, nil
}

// firstErr returns the first non-nil error in point order.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ----------------------------------------------------------------- eval

func (p *Partition) executeEval(rows [][][]string, report func(int)) error {
	s := p.space
	spec, cfg := s.spec, s.cfg
	n := len(p.Points)
	// Points fan out over the engine pool; when more than one runs at a
	// time, the per-row anchor searches go serial so the pools do not
	// multiply. Either way the output is identical.
	rowPool := poolWidth(spec.Workers, n)
	innerWorkers := spec.Workers
	if rowPool > 1 {
		innerWorkers = 1
	}
	errs := make([]error, n)
	par.For(n, spec.Workers, func(i int) {
		sub := s.subs[p.Points[i].SeedIdx]
		pt := sub.systems[p.Points[i].Index]
		row, err := evalRow(spec, cfg, sub.topo, pt, innerWorkers)
		if err != nil {
			errs[i] = fmt.Errorf("system %s/%d: %w", pt.spec.Family, pt.spec.Param, err)
			return
		}
		rows[i] = [][]string{row}
		report(i)
	})
	return firstErr(errs)
}

// ---------------------------------------------------------------- sweep

// sweepSetup is the per-system state sweep chunks share: the placed,
// prewarmed evaluation and the capacity grid.
type sweepSetup struct {
	sys    quorum.System
	e      *core.Eval
	lopt   float64
	values []float64
}

// setupKey addresses per-(seed sub-space, group) shared state: the
// system index for sweeps, the threshold index for protocol grids.
type setupKey struct{ seed, group int }

// sweepSetups builds setups for every (seed, system) the partition
// touches, in (seed, system) order (deterministic and serial: chunks of
// one system share the evaluation read-only afterwards).
func (p *Partition) sweepSetups() (map[setupKey]*sweepSetup, error) {
	s := p.space
	spec, cfg := s.spec, s.cfg
	setups := map[setupKey]*sweepSetup{}
	var order []setupKey
	for _, pt := range p.Points {
		k := setupKey{pt.SeedIdx, pt.Index}
		if _, ok := setups[k]; !ok {
			setups[k] = nil
			order = append(order, k)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].seed != order[b].seed {
			return order[a].seed < order[b].seed
		}
		return order[a].group < order[b].group
	})
	for _, k := range order {
		sub := s.subs[k.seed]
		pt := sub.systems[k.group]
		sys, err := pt.spec.Build()
		if err != nil {
			return nil, err
		}
		f, err := buildPlacement(spec, cfg, sub.topo, sys, spec.Workers)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEval(sub.topo, sys, f, core.AlphaForDemand(spec.Sweep.Demand))
		if err != nil {
			return nil, err
		}
		// Populate the evaluator's lazy caches before chunks share it.
		e.Prewarm()
		lopt := sys.OptimalLoad()
		setups[k] = &sweepSetup{sys: sys, e: e, lopt: lopt, values: strategy.SweepValues(lopt, spec.Sweep.Points)}
	}
	return setups, nil
}

func (p *Partition) executeSweep(rows [][][]string, report func(int)) error {
	s := p.space
	spec, cfg := s.spec, s.cfg
	variants := spec.Sweep.variants()
	rowCols := spec.RowColumns
	if rowCols == nil {
		rowCols = []string{"universe", "capacity"}
	}
	setups, err := p.sweepSetups()
	if err != nil {
		return err
	}
	// Each point is one warm-start chunk of one system's sweep; running
	// it alone reproduces the exact solve chain of the unsharded sweep,
	// whose chunk boundaries depend only on the point count.
	swCfg := strategy.SweepConfig{Reproducible: cfg.Reproducible, Workers: 1}
	n := len(p.Points)
	errs := make([]error, n)
	par.For(n, spec.Workers, func(i int) {
		pt := p.Points[i]
		su := setups[setupKey{pt.SeedIdx, pt.Index}]
		lo, hi := strategy.ChunkBounds(pt.Sub, len(su.values))
		chunk := su.values[lo:hi]
		results := make([][]strategy.SweepPoint, len(variants))
		for vi, v := range variants {
			var err error
			switch v {
			case "uniform":
				results[vi], err = strategy.UniformSweepCfg(su.e, chunk, swCfg)
			case "nonuniform":
				results[vi], err = strategy.NonUniformSweepCfg(su.e, su.lopt, chunk, swCfg)
			default:
				err = fmt.Errorf("unknown sweep variant %q", v)
			}
			if err != nil {
				errs[i] = err
				return
			}
		}
		out := make([][]string, 0, len(chunk))
		for j := range chunk {
			var row []string
			for _, rc := range rowCols {
				switch rc {
				case "universe":
					row = append(row, itoa(su.sys.UniverseSize()))
				case "capacity":
					row = append(row, f3(chunk[j]))
				default:
					errs[i] = fmt.Errorf("unknown row column %q for sweep scenario", rc)
					return
				}
			}
			for vi := range variants {
				row = append(row, sweepCells(results[vi][j])...)
			}
			out = append(out, row)
		}
		rows[i] = out
		report(i)
	})
	return firstErr(errs)
}

// -------------------------------------------------------------- iterate

// iterSetup is the per-seed state iterate points share: the system, the
// one-to-one baseline delay, and the capacity grid.
type iterSetup struct {
	sys      quorum.System
	otoDelay float64
	values   []float64
}

func (p *Partition) executeIterate(rows [][][]string, report func(int)) error {
	if len(p.Points) == 0 {
		return nil
	}
	s := p.space
	spec, cfg := s.spec, s.cfg

	// One setup per seed sub-space the partition touches, built serially
	// in seed order. The one-to-one baseline runs under the balanced
	// strategy (the iterative algorithm's uniform starting strategy);
	// every shard recomputes it — it is deterministic and cheap next to
	// one iterate point.
	setups := map[int]*iterSetup{}
	var order []int
	for _, pt := range p.Points {
		if _, ok := setups[pt.SeedIdx]; !ok {
			setups[pt.SeedIdx] = nil
			order = append(order, pt.SeedIdx)
		}
	}
	sort.Ints(order)
	maxIter := spec.Iterate.MaxIterations
	if maxIter <= 0 {
		maxIter = 2
	}
	alpha := core.AlphaForDemand(spec.Iterate.Demand)
	for _, si := range order {
		sub := s.subs[si]
		sys, err := sub.systems[0].spec.Build()
		if err != nil {
			return err
		}
		oto, err := buildPlacement(spec, cfg, sub.topo, sys, spec.Workers)
		if err != nil {
			return err
		}
		eOto, err := core.NewEval(sub.topo, sys, oto, 0)
		if err != nil {
			return err
		}
		setups[si] = &iterSetup{
			sys:      sys,
			otoDelay: eOto.AvgNetworkDelay(core.BalancedStrategy{}),
			values:   strategy.SweepValues(sys.OptimalLoad(), spec.Iterate.Points),
		}
	}

	// Each capacity value runs the full iterative algorithm independently
	// on its own topology clone.
	n := len(p.Points)
	errs := make([]error, n)
	par.For(n, spec.Workers, func(i int) {
		su := setups[p.Points[i].SeedIdx]
		sys, values, otoDelay := su.sys, su.values, su.otoDelay
		vi := p.Points[i].Index
		tp := s.subs[p.Points[i].SeedIdx].topo.Clone()
		if err := tp.SetUniformCapacity(values[vi]); err != nil {
			errs[i] = err
			return
		}
		res, err := placement.Iterate(tp, sys, placement.IterateConfig{
			Alpha:         alpha,
			MaxIterations: maxIter,
			Candidates:    spec.Iterate.Candidates,
			LP:            cfg.lpOptions(),
			// The capacity points already saturate the pool; nesting the
			// anchor search's pool would multiply live LP workspaces.
			Workers: 1,
		})
		if err != nil {
			errs[i] = err
			return
		}
		iter1 := res.History[0].Phase2NetDelay
		iter2 := iter1
		if len(res.History) > 1 {
			iter2 = res.History[1].Phase2NetDelay
		}
		rows[i] = [][]string{{f3(values[vi]), f2(iter1), f2(iter2), f2(otoDelay)}}
		report(i)
	})
	return firstErr(errs)
}

// ------------------------------------------------------------- protocol

// protocolSetup is the per-threshold state protocol cells share.
type protocolSetup struct {
	sys         quorum.Threshold
	serverSites []int
	clientSites []int
}

func (p *Partition) executeProtocol(rows [][][]string, report func(int)) error {
	s := p.space
	spec, cfg := s.spec, s.cfg
	ps := spec.Protocol
	rowCols := spec.RowColumns
	if rowCols == nil {
		rowCols = []string{"t", "universe", "clients"}
	}

	// Build the (placement, representative clients) setup for every
	// (seed, threshold) the partition touches, serially in (seed, t)
	// order.
	setups := map[setupKey]*protocolSetup{}
	var order []setupKey
	for _, pt := range p.Points {
		k := setupKey{pt.SeedIdx, pt.Index / len(ps.PerSite)}
		if _, ok := setups[k]; !ok {
			setups[k] = nil
			order = append(order, k)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].seed != order[b].seed {
			return order[a].seed < order[b].seed
		}
		return order[a].group < order[b].group
	})
	for _, k := range order {
		sub := s.subs[k.seed]
		sys, err := quorum.QUMajority(ps.Ts[k.group])
		if err != nil {
			return err
		}
		f, err := placement.MajorityOneToOne(sub.topo, sys, placement.Options{Workers: spec.Workers})
		if err != nil {
			return err
		}
		e, err := core.NewEval(sub.topo, sys, f, 0)
		if err != nil {
			return err
		}
		clients, err := RepresentativeClients(e, ps.clientSites())
		if err != nil {
			return err
		}
		setups[k] = &protocolSetup{sys: sys, serverSites: f.Targets(), clientSites: clients}
	}

	// The partition's cells fan out over the pool: each is an
	// independent, seeded simulation.
	n := len(p.Points)
	errs := make([]error, n)
	par.For(n, spec.Workers, func(i int) {
		cell := p.Points[i].Index
		su := setups[setupKey{p.Points[i].SeedIdx, cell / len(ps.PerSite)}]
		perSite := ps.PerSite[cell%len(ps.PerSite)]
		var clients []int
		for _, site := range su.clientSites {
			for c := 0; c < perSite; c++ {
				clients = append(clients, site)
			}
		}
		m, err := protocol.RunSimAveraged(protocol.Config{
			Topo:          s.subs[p.Points[i].SeedIdx].topo,
			ServerSites:   su.serverSites,
			QuorumSize:    su.sys.QuorumSize(),
			ClientSites:   clients,
			ServiceTimeMS: ps.serviceTime(),
			LinkTxMS:      ps.linkTx(),
			DurationMS:    cfg.quDuration(),
			Seed:          cfg.Seed,
		}, cfg.quRuns())
		if err != nil {
			errs[i] = err
			return
		}
		var row []string
		for _, rc := range rowCols {
			switch rc {
			case "t":
				row = append(row, itoa(ps.Ts[cell/len(ps.PerSite)]))
			case "universe":
				row = append(row, itoa(su.sys.UniverseSize()))
			case "clients":
				row = append(row, itoa(perSite*ps.clientSites()))
			default:
				errs[i] = fmt.Errorf("unknown row column %q for protocol scenario", rc)
				return
			}
		}
		row = append(row, f2(m.AvgNetDelayMS), f2(m.AvgResponseMS))
		rows[i] = [][]string{row}
		report(i)
	})
	return firstErr(errs)
}

// ------------------------------------------------------------- timeline

func (p *Partition) executeTimeline(rows [][][]string, report func(int)) error {
	s := p.space
	// One indivisible timeline per seed sub-space; each drives its own
	// planner over its own topology, serially (the engine pool belongs to
	// the planner stages inside each run).
	for li, pt := range p.Points {
		sub := s.subs[pt.SeedIdx]
		trows, err := runTimelineRows(s.spec, s.cfg, sub.topo, sub.systems)
		if err != nil {
			return err
		}
		rows[li] = trows
		report(li)
	}
	return nil
}
