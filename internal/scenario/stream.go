package scenario

import (
	"fmt"
	"sort"

	"github.com/quorumnet/quorumnet/internal/deploy"
	"github.com/quorumnet/quorumnet/internal/plan"
)

// StreamStep is one timeline step exported as a replayable delta batch:
// the deltas a live deployment must apply to undergo the same world
// change the scenario engine applies to its planner in applyStep.
type StreamStep struct {
	// Label is the timeline step's label.
	Label string `json:"label"`
	// Deltas is the step's batch, in applyStep order. Applying it to a
	// deployment seeded with TimelinePlanner reproduces the engine's
	// planner state after the step.
	Deltas []deploy.Delta `json:"deltas"`
}

// TimelinePlanner builds the planner a timeline scenario starts from —
// the exact plan.New call runTimelineRows makes — so a live deployment
// (deploy.New around it) begins in the same state the table's "initial"
// row reports.
func TimelinePlanner(spec *Spec, cfg RunConfig) (*plan.Planner, error) {
	if spec.Kind != KindTimeline {
		return nil, fmt.Errorf("scenario %q: not a timeline scenario", spec.Name)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eff := spec.effective()
	topo, err := buildTopology(eff.Topology, cfg)
	if err != nil {
		return nil, err
	}
	systems := expandSystems(eff.Systems, topo.Size())
	if len(systems) == 0 {
		return nil, fmt.Errorf("scenario %q: system axis expands to nothing", spec.Name)
	}
	strat := plan.StratClosest
	if len(eff.Strategies) > 0 {
		strat = plan.StrategyKind(eff.Strategies[0])
	}
	demand := 0.0
	if len(eff.Demands) > 0 {
		demand = eff.Demands[0]
	}
	return plan.New(topo, plan.Config{
		System:       systems[0].spec,
		Algorithm:    eff.Placement.algorithm(),
		Strategy:     strat,
		Demand:       demand,
		Reproducible: cfg.Reproducible,
		Workers:      eff.Workers,
		Solver:       eff.Solver,
	})
}

// TimelineStream exports a timeline scenario's steps as delta batches —
// the bridge between the scenario engine (which mutates a local planner
// in-process) and a live deployment (which consumes deploy.Delta
// batches over the wire). Feeding each step's batch through
// deploy.Manager.Apply against a TimelinePlanner deployment drives it
// through the same states the engine's table records, because every
// step compiles to deltas in applyStep's application order and
// value-producing steps (scale_rtt) are resolved against a tracking
// replica of the planner.
func TimelineStream(spec *Spec, cfg RunConfig) ([]StreamStep, error) {
	replica, err := TimelinePlanner(spec, cfg)
	if err != nil {
		return nil, err
	}
	eff := spec.effective()
	out := make([]StreamStep, 0, len(eff.Timeline))
	for _, step := range eff.Timeline {
		deltas, err := compileStep(replica, step)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: step %q: %w", spec.Name, step.Label, err)
		}
		// Advance the replica through the deployment-side apply path, so
		// the next step's value-producing deltas see the post-step world.
		for _, d := range deltas {
			if err := d.ApplyTo(replica); err != nil {
				return nil, fmt.Errorf("scenario %q: step %q: replica apply: %w", spec.Name, step.Label, err)
			}
		}
		out = append(out, StreamStep{Label: step.Label, Deltas: deltas})
	}
	return out, nil
}

// compileStep lowers one Step into deltas, mirroring applyStep's field
// order exactly: demand, uniform capacity, per-site capacities (sorted),
// weights, RTT scaling (pair loop), additions, removals, region
// removal. The replica planner supplies current RTTs (scale_rtt emits
// absolute values — the wire protocol has no relative deltas) and the
// site roster for weights and region expansion; it is read, not
// mutated.
func compileStep(p *plan.Planner, step Step) ([]deploy.Delta, error) {
	var out []deploy.Delta
	if step.Demand != nil {
		out = append(out, deploy.Delta{Kind: deploy.KindDemand, Value: *step.Demand})
	}
	if step.UniformCapacity != nil {
		out = append(out, deploy.Delta{Kind: deploy.KindUniformCapacity, Value: *step.UniformCapacity})
	}
	if len(step.SiteCapacity) > 0 {
		names := make([]string, 0, len(step.SiteCapacity))
		for name := range step.SiteCapacity {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if p.SiteIndex(name) < 0 {
				return nil, fmt.Errorf("no site named %q", name)
			}
			out = append(out, deploy.Delta{Kind: deploy.KindCapacity, Site: name, Value: step.SiteCapacity[name]})
		}
	}
	if step.Weights != nil {
		w, err := compileWeights(p, step.Weights)
		if err != nil {
			return nil, err
		}
		out = append(out, deploy.Delta{Kind: deploy.KindWeights, Weights: w})
	}
	if step.ScaleRTT != nil {
		factor, region := step.ScaleRTT.Factor, step.ScaleRTT.Region
		hit := false
		n := p.Size()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if region != "" && p.Site(u).Region != region && p.Site(v).Region != region {
					continue
				}
				hit = true
				out = append(out, deploy.Delta{
					Kind:  deploy.KindRTT,
					A:     p.Site(u).Name,
					B:     p.Site(v).Name,
					Value: p.RTT(u, v) * factor,
				})
			}
		}
		if !hit {
			return nil, fmt.Errorf("scale_rtt matched no links (region %q)", region)
		}
	}
	for _, ns := range step.AddSites {
		out = append(out, deploy.Delta{
			Kind:     deploy.KindAddSite,
			Site:     ns.Name,
			Region:   ns.Region,
			Lat:      ns.Lat,
			Lon:      ns.Lon,
			AccessMS: ns.AccessMS,
			Value:    ns.Capacity,
		})
	}
	for _, name := range step.RemoveSites {
		out = append(out, deploy.Delta{Kind: deploy.KindRemoveSite, Site: name})
	}
	if step.RemoveRegion != "" {
		found := false
		for i := 0; i < p.Size(); i++ {
			if p.Site(i).Region == step.RemoveRegion {
				out = append(out, deploy.Delta{Kind: deploy.KindRemoveSite, Site: p.Site(i).Name})
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("no sites in region %q", step.RemoveRegion)
		}
	}
	return out, nil
}

// compileWeights materializes a weights step into the per-site weight
// map of a weights delta, with applyWeights's exact semantics: Default
// (0 = 1) everywhere, region entries override it, site entries override
// both; Uniform compiles to the empty map (the wire encoding of
// "restore uniform demand").
func compileWeights(p *plan.Planner, ws *WeightsStep) (map[string]float64, error) {
	if ws.Uniform {
		return map[string]float64{}, nil
	}
	def := ws.Default
	if def == 0 {
		def = 1
	}
	w := make(map[string]float64, p.Size())
	regionHit := make(map[string]bool, len(ws.Regions))
	siteHit := make(map[string]bool, len(ws.Sites))
	for i := 0; i < p.Size(); i++ {
		site := p.Site(i)
		v := def
		if rw, ok := ws.Regions[site.Region]; ok {
			v = rw
			regionHit[site.Region] = true
		}
		if sw, ok := ws.Sites[site.Name]; ok {
			v = sw
			siteHit[site.Name] = true
		}
		w[site.Name] = v
	}
	for name := range ws.Regions {
		if !regionHit[name] {
			return nil, fmt.Errorf("weights step: no sites in region %q", name)
		}
	}
	for name := range ws.Sites {
		if !siteHit[name] {
			return nil, fmt.Errorf("weights step: no site named %q", name)
		}
	}
	return w, nil
}
