package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/quorumnet/quorumnet/internal/topology"
)

// smallSynth is a compact topology spec so engine tests stay fast.
func smallSynth() TopologySpec {
	return TopologySpec{
		Source: "synth",
		Seed:   7,
		Synth: &topology.GenConfig{
			Name:      "scenario-test-15",
			Inflation: 1.4,
			Regions: []topology.RegionSpec{
				{Name: "west", Count: 5, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
				{Name: "east", Count: 5, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
				{Name: "eu", Count: 5, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
			},
		},
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:       "t",
			Kind:       KindEval,
			Topology:   TopologySpec{Source: "planetlab50"},
			Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
			Demands:    []float64{0},
			Strategies: []string{"closest"},
			Measures:   []string{"response"},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"missing name", func(s *Spec) { s.Name = "" }},
		{"missing kind", func(s *Spec) { s.Kind = "" }},
		{"unknown kind", func(s *Spec) { s.Kind = "banana" }},
		{"missing topology", func(s *Spec) { s.Topology = TopologySpec{} }},
		{"unknown topology", func(s *Spec) { s.Topology.Source = "mars" }},
		{"file without path", func(s *Spec) { s.Topology = TopologySpec{Source: "file"} }},
		{"synth without config", func(s *Spec) { s.Topology = TopologySpec{Source: "synth"} }},
		{"unknown family", func(s *Spec) { s.Systems[0].Family = "hexagon" }},
		{"unknown strategy", func(s *Spec) { s.Strategies = []string{"psychic"} }},
		{"unknown measure", func(s *Spec) { s.Measures = []string{"vibes"} }},
		{"unknown algorithm", func(s *Spec) { s.Placement.Algorithm = "scatter" }},
		{"eval without demands", func(s *Spec) { s.Demands = nil }},
		{"eval without systems", func(s *Spec) { s.Systems = nil }},
		{"sweep without points", func(s *Spec) { s.Kind = KindSweep; s.Sweep = &SweepSpec{} }},
		{"sweep bad variant", func(s *Spec) {
			s.Kind = KindSweep
			s.Sweep = &SweepSpec{Points: 2, Variants: []string{"diagonal"}}
		}},
		{"iterate without spec", func(s *Spec) { s.Kind = KindIterate }},
		{"protocol without grid", func(s *Spec) { s.Kind = KindProtocol; s.Protocol = &ProtocolSpec{} }},
		{"timeline without steps", func(s *Spec) { s.Kind = KindTimeline }},
		{"timeline unlabeled step", func(s *Spec) {
			s.Kind = KindTimeline
			s.Timeline = []Step{{}}
		}},
		{"timeline bad factor", func(s *Spec) {
			s.Kind = KindTimeline
			s.Timeline = []Step{{Label: "x", ScaleRTT: &ScaleRTTStep{Factor: -1}}}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
	s := base()
	if err := s.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestLibraryJSONRoundTrip checks every built-in scenario survives the
// JSON encode → Load cycle unchanged — the same path quorumbench uses
// for user spec files.
func TestLibraryJSONRoundTrip(t *testing.T) {
	for _, spec := range Library() {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(*got, spec) {
			t.Errorf("%s: round trip changed the spec:\n  in  %+v\n  out %+v", spec.Name, spec, *got)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","kind":"eval","topology":{"source":"planetlab50"},"frobnicate":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestEvalWorkerIndependence runs the same eval spec serially and on the
// full pool; the tables must match byte for byte.
func TestEvalWorkerIndependence(t *testing.T) {
	mk := func(workers int) Spec {
		return Spec{
			Name:       "worker-independence",
			Kind:       KindEval,
			Topology:   smallSynth(),
			Systems:    []SystemAxis{{Family: "singleton"}, {Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1, 2}}},
			Demands:    []float64{0, 4000},
			Strategies: []string{"closest", "balanced"},
			Measures:   []string{"response"},
			Workers:    workers,
		}
	}
	var tables []*Table
	for _, w := range []int{1, 2, 0} {
		spec := mk(w)
		tb, err := Run(&spec, RunConfig{Reproducible: true})
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tb)
	}
	for i := 1; i < len(tables); i++ {
		if !reflect.DeepEqual(tables[0].Rows, tables[i].Rows) {
			t.Fatalf("worker count changed rows:\n%v\nvs\n%v", tables[0].Rows, tables[i].Rows)
		}
	}
	if len(tables[0].Rows) != 5 {
		t.Fatalf("expected 5 rows (singleton + 2 grids + 2 majorities), got %d", len(tables[0].Rows))
	}
}

// TestEvalFaults injects a regional failure: the singleton placed inside
// the region dies ("down") while the grid survives with degraded delay.
func TestEvalFaults(t *testing.T) {
	spec := Spec{
		Name:       "faults",
		Kind:       KindEval,
		Topology:   smallSynth(),
		Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
		Faults:     &FaultSpec{WorstCase: 1},
	}
	withFault, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = nil
	spec.Name = "no-faults"
	clean, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	vf, err := withFault.Cell(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := clean.Cell(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vf < vc {
		t.Errorf("worst-case failure improved response: %v < %v", vf, vc)
	}

	// Killing a whole region of a 15-site topology under a 3×3 grid can
	// still leave quorums; killing every region must not.
	spec.Faults = &FaultSpec{Region: "west"}
	spec.Name = "region-faults"
	if _, err := Run(&spec, RunConfig{Reproducible: true}); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineLibrary executes every built-in workload end to end and
// checks the replanned column matches each scenario's story.
func TestTimelineLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full timelines")
	}
	for _, spec := range Library() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tb, err := Run(&spec, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) != len(spec.Timeline)+1 {
				t.Fatalf("%d rows for %d steps", len(tb.Rows), len(spec.Timeline))
			}
			repCol, err := tb.Col("replanned")
			if err != nil {
				t.Fatal(err)
			}
			if got := tb.Rows[0][repCol]; got != "topology,system,placement,strategy,eval" {
				t.Errorf("initial plan recomputed %q", got)
			}
			if spec.Name == "diurnal-demand" {
				for i := 1; i < len(tb.Rows); i++ {
					if got := tb.Rows[i][repCol]; got != "eval" {
						t.Errorf("step %d: demand-only delta recomputed %q, want eval only", i, got)
					}
				}
			}
		})
	}
}
