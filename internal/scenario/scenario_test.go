package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"github.com/quorumnet/quorumnet/internal/topology"
)

// smallSynth is a compact topology spec so engine tests stay fast.
func smallSynth() TopologySpec {
	return TopologySpec{
		Source: "synth",
		Seed:   7,
		Synth: &topology.GenConfig{
			Name:      "scenario-test-15",
			Inflation: 1.4,
			Regions: []topology.RegionSpec{
				{Name: "west", Count: 5, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
				{Name: "east", Count: 5, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
				{Name: "eu", Count: 5, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
			},
		},
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:       "t",
			Kind:       KindEval,
			Topology:   TopologySpec{Source: "planetlab50"},
			Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
			Demands:    []float64{0},
			Strategies: []string{"closest"},
			Measures:   []string{"response"},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"missing name", func(s *Spec) { s.Name = "" }},
		{"missing kind", func(s *Spec) { s.Kind = "" }},
		{"unknown kind", func(s *Spec) { s.Kind = "banana" }},
		{"missing topology", func(s *Spec) { s.Topology = TopologySpec{} }},
		{"unknown topology", func(s *Spec) { s.Topology.Source = "mars" }},
		{"file without path", func(s *Spec) { s.Topology = TopologySpec{Source: "file"} }},
		{"synth without config", func(s *Spec) { s.Topology = TopologySpec{Source: "synth"} }},
		{"unknown family", func(s *Spec) { s.Systems[0].Family = "hexagon" }},
		{"unknown strategy", func(s *Spec) { s.Strategies = []string{"psychic"} }},
		{"unknown measure", func(s *Spec) { s.Measures = []string{"vibes"} }},
		{"unknown algorithm", func(s *Spec) { s.Placement.Algorithm = "scatter" }},
		{"eval without demands", func(s *Spec) { s.Demands = nil }},
		{"eval without systems", func(s *Spec) { s.Systems = nil }},
		{"sweep without points", func(s *Spec) { s.Kind = KindSweep; s.Sweep = &SweepSpec{} }},
		{"sweep bad variant", func(s *Spec) {
			s.Kind = KindSweep
			s.Sweep = &SweepSpec{Points: 2, Variants: []string{"diagonal"}}
		}},
		{"iterate without spec", func(s *Spec) { s.Kind = KindIterate }},
		{"protocol without grid", func(s *Spec) { s.Kind = KindProtocol; s.Protocol = &ProtocolSpec{} }},
		{"timeline without steps", func(s *Spec) { s.Kind = KindTimeline }},
		{"timeline unlabeled step", func(s *Spec) {
			s.Kind = KindTimeline
			s.Timeline = []Step{{}}
		}},
		{"timeline bad factor", func(s *Spec) {
			s.Kind = KindTimeline
			s.Timeline = []Step{{Label: "x", ScaleRTT: &ScaleRTTStep{Factor: -1}}}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
	s := base()
	if err := s.Validate(); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestLibraryJSONRoundTrip checks every built-in scenario survives the
// JSON encode → Load cycle unchanged — the same path quorumbench uses
// for user spec files.
func TestLibraryJSONRoundTrip(t *testing.T) {
	for _, spec := range Library() {
		// Load rejects names colliding with the library itself, so the
		// round trip travels under a fresh name.
		spec.Name += "-roundtrip"
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got, err := Load(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !reflect.DeepEqual(*got, spec) {
			t.Errorf("%s: round trip changed the spec:\n  in  %+v\n  out %+v", spec.Name, spec, *got)
		}
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","kind":"eval","topology":{"source":"planetlab50"},"frobnicate":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestEvalWorkerIndependence runs the same eval spec serially and on the
// full pool; the tables must match byte for byte.
func TestEvalWorkerIndependence(t *testing.T) {
	mk := func(workers int) Spec {
		return Spec{
			Name:       "worker-independence",
			Kind:       KindEval,
			Topology:   smallSynth(),
			Systems:    []SystemAxis{{Family: "singleton"}, {Family: "grid", Params: []int{2, 3}}, {Family: "majority", Params: []int{1, 2}}},
			Demands:    []float64{0, 4000},
			Strategies: []string{"closest", "balanced"},
			Measures:   []string{"response"},
			Workers:    workers,
		}
	}
	var tables []*Table
	for _, w := range []int{1, 2, 0} {
		spec := mk(w)
		tb, err := Run(&spec, RunConfig{Reproducible: true})
		if err != nil {
			t.Fatal(err)
		}
		tables = append(tables, tb)
	}
	for i := 1; i < len(tables); i++ {
		if !reflect.DeepEqual(tables[0].Rows, tables[i].Rows) {
			t.Fatalf("worker count changed rows:\n%v\nvs\n%v", tables[0].Rows, tables[i].Rows)
		}
	}
	if len(tables[0].Rows) != 5 {
		t.Fatalf("expected 5 rows (singleton + 2 grids + 2 majorities), got %d", len(tables[0].Rows))
	}
}

// TestEvalFaults injects a regional failure: the singleton placed inside
// the region dies ("down") while the grid survives with degraded delay.
func TestEvalFaults(t *testing.T) {
	spec := Spec{
		Name:       "faults",
		Kind:       KindEval,
		Topology:   smallSynth(),
		Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
		Demands:    []float64{0},
		Strategies: []string{"closest"},
		Measures:   []string{"response"},
		Faults:     &FaultSpec{WorstCase: 1},
	}
	withFault, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = nil
	spec.Name = "no-faults"
	clean, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	vf, err := withFault.Cell(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := clean.Cell(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vf < vc {
		t.Errorf("worst-case failure improved response: %v < %v", vf, vc)
	}

	// Killing a whole region of a 15-site topology under a 3×3 grid can
	// still leave quorums; killing every region must not.
	spec.Faults = &FaultSpec{Region: "west"}
	spec.Name = "region-faults"
	if _, err := Run(&spec, RunConfig{Reproducible: true}); err != nil {
		t.Fatal(err)
	}
}

// TestTimelineLibrary executes every built-in timeline workload end to
// end and checks the replanned column matches each scenario's story
// (the library's parameter studies have their own sharding tests).
func TestTimelineLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full timelines")
	}
	for _, spec := range Library() {
		if spec.Kind != KindTimeline {
			continue
		}
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tb, err := Run(&spec, RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) != len(spec.Timeline)+1 {
				t.Fatalf("%d rows for %d steps", len(tb.Rows), len(spec.Timeline))
			}
			repCol, err := tb.Col("replanned")
			if err != nil {
				t.Fatal(err)
			}
			if got := tb.Rows[0][repCol]; got != "topology,system,placement,strategy,eval" {
				t.Errorf("initial plan recomputed %q", got)
			}
			if spec.Name == "diurnal-demand" {
				for i := 1; i < len(tb.Rows); i++ {
					if got := tb.Rows[i][repCol]; got != "eval" {
						t.Errorf("step %d: demand-only delta recomputed %q, want eval only", i, got)
					}
				}
			}
		})
	}
}

// TestValidateRejectsNewFields covers the hardening added with the
// weights/compare_unreplanned steps: empty steps, malformed weights,
// and misplaced flags are caught before execution.
func TestValidateRejectsNewFields(t *testing.T) {
	timeline := func(steps ...Step) Spec {
		return Spec{
			Name:     "t",
			Kind:     KindTimeline,
			Topology: TopologySpec{Source: "planetlab50"},
			Systems:  []SystemAxis{{Family: "grid", Params: []int{3}}},
			Timeline: steps,
		}
	}
	cases := []struct {
		name string
		spec Spec
	}{
		{"step without deltas", timeline(Step{Label: "noop"})},
		{"uniform weights with regions", timeline(Step{Label: "w", Weights: &WeightsStep{Uniform: true, Regions: map[string]float64{"europe": 2}}})},
		{"weights assigning nothing", timeline(Step{Label: "w", Weights: &WeightsStep{}})},
		{"negative region weight", timeline(Step{Label: "w", Weights: &WeightsStep{Regions: map[string]float64{"europe": -1}}})},
		{"zero site weight", timeline(Step{Label: "w", Weights: &WeightsStep{Sites: map[string]float64{"x": 0}}})},
		{"negative default weight", timeline(Step{Label: "w", Weights: &WeightsStep{Default: -1, Regions: map[string]float64{"europe": 2}}})},
		{"compare_unreplanned on eval", Spec{
			Name: "t", Kind: KindEval, Topology: TopologySpec{Source: "planetlab50"},
			Systems: []SystemAxis{{Family: "grid", Params: []int{3}}},
			Demands: []float64{0}, Strategies: []string{"closest"}, Measures: []string{"response"},
			CompareUnreplanned: true,
		}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
	ok := timeline(Step{Label: "w", Weights: &WeightsStep{Regions: map[string]float64{"europe": 2}}})
	ok.CompareUnreplanned = true
	if err := ok.Validate(); err != nil {
		t.Errorf("valid weights timeline rejected: %v", err)
	}
}

// TestLoadHardening is the table-driven Load contract: duplicate library
// names and malformed delta steps are rejected at load time, mirroring
// topology.Load's hardening.
func TestLoadHardening(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string
	}{
		{
			name:    "library name collision",
			json:    `{"name":"diurnal-demand","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"x","demand":1}]}`,
			wantErr: "collides with a built-in library scenario",
		},
		{
			name:    "library name collision (new scenarios)",
			json:    `{"name":"flash-crowd","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"x","demand":1}]}`,
			wantErr: "collides with a built-in library scenario",
		},
		{
			name:    "unknown delta kind (misspelled key)",
			json:    `{"name":"x","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"s","scale_rttt":{"factor":2}}]}`,
			wantErr: "unknown field",
		},
		{
			name:    "step with no deltas",
			json:    `{"name":"x","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"s"}]}`,
			wantErr: "has no deltas",
		},
		{
			name:    "weights step assigning nothing",
			json:    `{"name":"x","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"s","weights":{}}]}`,
			wantErr: "assigns nothing",
		},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.json))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// A fresh name with well-formed deltas loads fine.
	good := `{"name":"my-workload","kind":"timeline","topology":{"source":"planetlab50"},"systems":[{"family":"grid","params":[3]}],"timeline":[{"label":"s","weights":{"regions":{"europe":2}}}]}`
	if _, err := Load(strings.NewReader(good)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestLibraryNamesUnique guards the loader's collision check: the
// library itself must never introduce a duplicate.
func TestLibraryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Library() {
		if seen[s.Name] {
			t.Errorf("duplicate built-in scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestTimelineWeights drives a weights step through a small timeline:
// skewing demand toward one region must change the LP strategy's
// response (the replanned column shows strategy,eval) and revert
// cleanly to the uniform baseline.
func TestTimelineWeights(t *testing.T) {
	spec := Spec{
		Name:       "weights-timeline",
		Kind:       KindTimeline,
		Topology:   smallSynth(),
		Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
		Strategies: []string{"lp"},
		Demands:    []float64{8000},
		Timeline: []Step{
			{Label: "eu-crowd", Weights: &WeightsStep{Regions: map[string]float64{"eu": 10}}},
			{Label: "uniform", Weights: &WeightsStep{Uniform: true}},
		},
	}
	tb, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	repCol, err := tb.Col("replanned")
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2} {
		if got := tb.Rows[i][repCol]; got != "strategy,eval" {
			t.Errorf("weights step %d recomputed %q, want strategy,eval", i, got)
		}
	}
	base, err := tb.Cell(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := tb.Cell(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := tb.Cell(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if skew == base {
		t.Errorf("regional skew left the response at %v; weights had no effect", base)
	}
	if rev != base {
		t.Errorf("uniform reset response %v != initial %v", rev, base)
	}

	// Unknown names surface as step errors.
	bad := spec
	bad.Name = "weights-bad"
	bad.Timeline = []Step{{Label: "x", Weights: &WeightsStep{Regions: map[string]float64{"atlantis": 2}}}}
	if _, err := Run(&bad, RunConfig{Reproducible: true}); err == nil {
		t.Error("unknown region accepted at run time")
	}
}

// TestTimelineCompareUnreplanned exercises the planner-level fault
// comparison: an outage step reports both the re-planned response and
// the response of the deployment that kept its old plan, and the old
// plan can never win.
func TestTimelineCompareUnreplanned(t *testing.T) {
	spec := Spec{
		Name:               "unreplanned-timeline",
		Kind:               KindTimeline,
		Topology:           smallSynth(),
		Systems:            []SystemAxis{{Family: "grid", Params: []int{3}}},
		Strategies:         []string{"lp"},
		Demands:            []float64{8000},
		CompareUnreplanned: true,
		Timeline: []Step{
			{Label: "demand-spike", Demand: fp(16000)},
			{Label: "eu-outage", RemoveRegion: "eu"},
			{Label: "rtt-shift", ScaleRTT: &ScaleRTTStep{Factor: 1.2}},
		},
	}
	tb, err := Run(&spec, RunConfig{Reproducible: true})
	if err != nil {
		t.Fatal(err)
	}
	col, err := tb.Col("unreplanned_ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Rows[0][col]; got != "-" {
		t.Errorf("initial row unreplanned cell %q, want -", got)
	}
	// Demand-only step: the LP strategy does not depend on alpha, so not
	// re-planning costs nothing — the cells must match.
	replanned, err := tb.Cell(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	unreplanned, err := tb.Cell(1, col)
	if err != nil {
		t.Fatal(err)
	}
	if replanned != unreplanned {
		t.Errorf("demand step: replanned %v != unreplanned %v (LP ignores alpha)", replanned, unreplanned)
	}
	// Outage step: both sides of the comparison are present — the
	// re-planned response on the surviving WAN and the response of the
	// deployment that kept its pre-failure plan (its strategy
	// renormalized over the surviving quorums). Neither side dominates
	// in general: the un-replanned deployment keeps the wider
	// pre-failure metric but a thinner quorum set.
	replanned, err = tb.Cell(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	unreplanned, err = tb.Cell(2, col)
	if err != nil {
		t.Fatal(err)
	}
	if replanned <= 0 || unreplanned <= 0 {
		t.Errorf("outage step: implausible responses (replanned %v, unreplanned %v)", replanned, unreplanned)
	}
	// Metric edits have no previous-topology counterpart.
	if got := tb.Rows[3][col]; got != "-" {
		t.Errorf("scale_rtt unreplanned cell %q, want -", got)
	}
}
