package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Hash fingerprints the spec: sha256 over its canonical JSON encoding.
// Go's json.Marshal sorts map keys, so two Specs with equal contents
// hash identically regardless of how they were built. The fleet run
// journal stores this next to the inlined spec so a resume can refuse
// to graft a different study onto recorded partials.
func (s *Spec) Hash() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("hashing spec %q: %w", s.Name, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
