package scenario

import (
	"fmt"

	"github.com/quorumnet/quorumnet/internal/topology"
)

func fp(v float64) *float64 { return &v }

// Library returns the built-in workload scenarios: the wide-area
// conditions a deployed quorum system re-plans around, plus the
// multi-seed scaled parameter study the sharded fleet was built for.
// Run them with Run or through `quorumbench -scenario <name>`.
func Library() []Spec {
	return []Spec{
		RegionalOutage(),
		DiurnalDemand(),
		RTTDrift(),
		SiteChurn(),
		FlashCrowd(),
		HeterogeneousDemand(),
		CorrelatedFailure(),
		SeedScaleStudy(),
		ScaleFrontier(),
		ScaleFrontierStrategy(),
	}
}

// LibraryByName finds a built-in scenario.
func LibraryByName(name string) (*Spec, error) {
	for _, s := range Library() {
		if s.Name == name {
			return &s, nil
		}
	}
	return nil, fmt.Errorf("scenario: no built-in scenario %q", name)
}

// IsLibraryName reports whether a name is taken by a built-in scenario;
// Load rejects spec files that collide.
func IsLibraryName(name string) bool {
	_, err := LibraryByName(name)
	return err == nil
}

// RegionalOutage loses all European sites at once, absorbs a demand
// spike while running on the survivors, then recovers partially through
// three replacement sites. The placement stage re-runs on every
// membership change; the planner re-places the grid on the surviving
// WAN.
func RegionalOutage() Spec {
	return Spec{
		Name:  "regional-outage",
		Title: "5x5 Grid on PlanetLab-50, LP strategies: losing and rebuilding a region",
		Kind:  KindTimeline,
		Notes: []string{
			"eu-outage removes every 'europe' site: the planner re-places the grid on the survivors",
			"demand-spike is an evaluation-only re-plan; recovery re-places onto the new sites",
			"unreplanned_ms evaluates the deployment that kept its pre-outage plan (faults.Unreplanned)",
		},
		Topology:           TopologySpec{Source: "planetlab50"},
		Systems:            []SystemAxis{{Family: "grid", Params: []int{5}}},
		Strategies:         []string{"lp"},
		Demands:            []float64{8000},
		CompareUnreplanned: true,
		Timeline: []Step{
			{Label: "eu-outage", RemoveRegion: "europe"},
			{Label: "demand-spike", Demand: fp(16000)},
			{Label: "eu-recovery", AddSites: []NewSiteStep{
				{Name: "eu-new-frankfurt", Region: "europe", Lat: 50.11, Lon: 8.68, AccessMS: 2},
				{Name: "eu-new-paris", Region: "europe", Lat: 48.86, Lon: 2.35, AccessMS: 2},
				{Name: "eu-new-london", Region: "europe", Lat: 51.51, Lon: -0.13, AccessMS: 2},
			}},
			{Label: "demand-normal", Demand: fp(8000)},
		},
	}
}

// DiurnalDemand follows a day of load on a fixed deployment. Every step
// is a demand-only delta, so each re-plan re-runs just the evaluation
// stage — the LP strategy and placement are reused untouched.
func DiurnalDemand() Spec {
	return Spec{
		Name:  "diurnal-demand",
		Title: "5x5 Grid on PlanetLab-50, LP strategies: a day of demand",
		Kind:  KindTimeline,
		Notes: []string{
			"demand-only deltas re-plan in the evaluation stage alone (replanned column: eval)",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{5}}},
		Strategies: []string{"lp"},
		Demands:    []float64{1000},
		Timeline: []Step{
			{Label: "morning", Demand: fp(4000)},
			{Label: "midday-peak", Demand: fp(16000)},
			{Label: "evening", Demand: fp(8000)},
			{Label: "night", Demand: fp(1000)},
		},
	}
}

// RTTDrift models transatlantic congestion: delays through Europe
// inflate, worsen, then mostly relax. RTT deltas re-close the metric and
// re-run placement, strategy, and evaluation.
func RTTDrift() Spec {
	return Spec{
		Name:  "rtt-drift",
		Title: "4x4 Grid on PlanetLab-50, LP strategies: congestion on European links",
		Kind:  KindTimeline,
		Notes: []string{
			"each drift step scales the raw RTT of every link touching 'europe' and re-plans end to end",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{4}}},
		Strategies: []string{"lp"},
		Demands:    []float64{8000},
		Timeline: []Step{
			{Label: "congestion-onset", ScaleRTT: &ScaleRTTStep{Factor: 1.3, Region: "europe"}},
			{Label: "congestion-peak", ScaleRTT: &ScaleRTTStep{Factor: 1.25, Region: "europe"}},
			{Label: "partial-relief", ScaleRTT: &ScaleRTTStep{Factor: 0.7, Region: "europe"}},
		},
	}
}

// FlashCrowd follows a regional demand spike: European clients surge to
// many times their share of the traffic, peak, and recede. Every step is
// a weights-only delta (SetClientWeights), so each re-plan rebuilds the
// strategy LP for the new demand mix while the placement stays put —
// the LP shifts quorum mass toward the crowded region.
func FlashCrowd() Spec {
	return Spec{
		Name:  "flash-crowd",
		Title: "4x4 Grid on PlanetLab-50, LP strategies: a European flash crowd",
		Kind:  KindTimeline,
		Notes: []string{
			"weights deltas rebuild the strategy LP (replanned column: strategy,eval); the placement never moves",
			"unlisted regions keep weight 1: a region entry scales that region's share of total demand",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{4}}},
		Strategies: []string{"lp"},
		Demands:    []float64{8000},
		Timeline: []Step{
			{Label: "crowd-onset", Weights: &WeightsStep{Regions: map[string]float64{"europe": 4}}},
			{Label: "crowd-peak", Weights: &WeightsStep{Regions: map[string]float64{"europe": 12}}},
			{Label: "crowd-decay", Weights: &WeightsStep{Regions: map[string]float64{"europe": 2}}},
			{Label: "back-to-uniform", Weights: &WeightsStep{Uniform: true}},
		},
	}
}

// HeterogeneousDemand models a deployment whose clients never were
// uniform: metro sites carry most of the traffic, remote regions a
// trickle. The initial skew arrives as a weights delta, deepens, and a
// demand spike rides on top of it — demonstrating that weight and
// demand deltas compose (the former rebuilds the strategy LP, the
// latter re-runs only the evaluation).
func HeterogeneousDemand() Spec {
	return Spec{
		Name:  "heterogeneous-demand",
		Title: "3x3 Grid on PlanetLab-50, LP strategies: metro-heavy client demand",
		Kind:  KindTimeline,
		Notes: []string{
			"site entries override region entries; the default weight covers everything else",
			"the demand-spike step is evaluation-only even under skewed weights",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
		Strategies: []string{"lp"},
		Demands:    []float64{4000},
		Timeline: []Step{
			{Label: "metro-skew", Weights: &WeightsStep{
				Regions: map[string]float64{"na-east": 3, "europe": 3},
				Sites:   map[string]float64{"na-east-00": 8, "europe-00": 8},
			}},
			{Label: "deepen-skew", Weights: &WeightsStep{
				Default: 0.5,
				Regions: map[string]float64{"na-east": 4, "europe": 4},
				Sites:   map[string]float64{"na-east-00": 12, "europe-00": 12},
			}},
			{Label: "demand-spike", Demand: fp(12000)},
		},
	}
}

// CorrelatedFailure models the failures that arrive together in real
// outages: a whole region goes down and — in the same epoch — the event
// that took it down (a backbone cut, a routing storm) degrades RTTs
// between the survivors. The first step carries both deltas at once, so
// the planner re-places and re-optimizes against the degraded WAN, not
// the pre-outage one; recovery relaxes the links before membership is
// rebuilt.
func CorrelatedFailure() Spec {
	return Spec{
		Name:  "correlated-failure",
		Title: "4x4 Grid on PlanetLab-50, LP strategies: region loss with correlated RTT degradation",
		Kind:  KindTimeline,
		Notes: []string{
			"backbone-event removes every 'europe' site AND inflates every surviving link 1.4x in one step",
			"one atomic step means one re-plan: the planner never sees the outage without the degradation",
			"links-recover relaxes the survivors' RTTs; eu-rebuild restores membership on the healed WAN",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{4}}},
		Strategies: []string{"lp"},
		Demands:    []float64{8000},
		Timeline: []Step{
			{
				Label:        "backbone-event",
				RemoveRegion: "europe",
				ScaleRTT:     &ScaleRTTStep{Factor: 1.4},
			},
			{Label: "links-recover", ScaleRTT: &ScaleRTTStep{Factor: 1 / 1.4}},
			{Label: "eu-rebuild", AddSites: []NewSiteStep{
				{Name: "eu-new-amsterdam", Region: "europe", Lat: 52.37, Lon: 4.90, AccessMS: 2},
				{Name: "eu-new-milan", Region: "europe", Lat: 45.46, Lon: 9.19, AccessMS: 2},
			}},
		},
	}
}

// SeedScaleStudy is the one-spec shape of the paper's parameter
// studies at fleet scale: the same capacity sweep repeated over three
// independently generated WANs (the seeds axis), with the topology
// doubled and the demand doubled by scale multipliers. Every (seed,
// system, warm-start chunk) is its own shardable point, so the study
// spreads over however many fleet workers are live — and merges
// byte-identically to a local run.
func SeedScaleStudy() Spec {
	return Spec{
		Name:  "seed-scale-study",
		Title: "Grid capacity sweep over 3 seeded synthetic WANs, sites x2, demand x2",
		Kind:  KindSweep,
		Notes: []string{
			"each seed generates an independent 16-site WAN (8 base sites x scale.sites 2)",
			"scale.clients 2 doubles the sweep demand; rows lead with the generating seed",
			"every (seed, system, chunk) point shards independently: run it with -fleet or -shards",
		},
		Seeds: []int64{101, 102, 103},
		Scale: &ScaleSpec{Sites: 2, Clients: 2},
		Topology: TopologySpec{
			Source: "synth",
			Synth: &topology.GenConfig{
				Name:      "seed-scale-8",
				Inflation: 1.4,
				Regions: []topology.RegionSpec{
					{Name: "na-west", Count: 2, LatMin: 34, LatMax: 46, LonMin: -122, LonMax: -115, AccessMin: 1, AccessMax: 4},
					{Name: "na-east", Count: 2, LatMin: 35, LatMax: 44, LonMin: -80, LonMax: -71, AccessMin: 1, AccessMax: 4},
					{Name: "europe", Count: 2, LatMin: 44, LatMax: 55, LonMin: -2, LonMax: 15, AccessMin: 1, AccessMax: 4},
					{Name: "asia", Count: 2, LatMin: 22, LatMax: 38, LonMin: 103, LonMax: 140, AccessMin: 2, AccessMax: 6},
				},
			},
		},
		Systems: []SystemAxis{{Family: "grid", Params: []int{2, 3}}},
		Sweep:   &SweepSpec{Points: 6, Demand: 4000},
	}
}

// ScaleFrontier is the internet-scale planning study: quorum placement
// and strategy evaluation on a 1000-AS power-law internet graph. It
// exercises every perf-path layer at once — the topology's metric comes
// from the parallel sparse closure (the dense O(n³) Floyd–Warshall never
// runs), the one-to-one placements go through the pruned anchor search,
// and the evaluation covers both strategy families at two demand levels.
// The LP strategy is deliberately absent: enumerable systems at this
// scale put millions of variables in the access LP; capacity studies
// belong on the per-anchor sweeps, not the full frontier.
func ScaleFrontier() Spec {
	return Spec{
		Name:  "scale-frontier",
		Title: "Majority and grid planning on a 1000-AS power-law internet graph",
		Kind:  KindEval,
		Notes: []string{
			"the AS metric comes from the parallel sparse closure; Floyd–Warshall never runs",
			"one-to-one placements use the pruned anchor search (output identical to exhaustive)",
			"scale.sites multiplies the AS count: 10 gives the 10k-site study in EXPERIMENTS.md",
		},
		Topology: TopologySpec{
			Source: "synth",
			Synth: &topology.GenConfig{
				Name: "as-frontier-1k",
				AS:   &topology.ASGraphSpec{Sites: 1000},
			},
		},
		Systems: []SystemAxis{
			{Family: "majority", Params: []int{7}},
			{Family: "grid", Params: []int{7}},
		},
		Strategies: []string{"closest", "balanced"},
		Demands:    []float64{0, 8000},
		Measures:   []string{"response", "net"},
	}
}

// ScaleFrontierStrategy is the scale-frontier variant the access LP used
// to be "deliberately out of range" for: the same 1000-AS graph, now
// planning the optimized "lp" strategy over all 1000 clients × 6435
// majority-8-of-15 quorums via the column-generation solver. The closest
// strategy rides along as the baseline the LP improves on.
func ScaleFrontierStrategy() Spec {
	return Spec{
		Name:  "scale-frontier-strategy",
		Title: "LP access strategy on a 1000-AS internet graph (column generation)",
		Kind:  KindEval,
		Notes: []string{
			"1000 clients x 6435 quorums = 6.4M LP variables: the dense simplex wall colgen breaks",
			"the colgen master only materializes priced columns; the optimum is certified for the full LP",
			"solver 'colgen' is explicit here; 'auto' picks it anyway above strategy.DefaultColgenThreshold",
			"capacity 0.6 binds, so the lp column is the capacity-feasible optimum the closest strategy violates",
		},
		Topology: TopologySpec{
			Source: "synth",
			Synth: &topology.GenConfig{
				Name: "as-frontier-1k",
				AS:   &topology.ASGraphSpec{Sites: 1000},
			},
		},
		Systems:         []SystemAxis{{Family: "majority", Params: []int{7}}},
		Strategies:      []string{"closest", "lp"},
		Demands:         []float64{0},
		Measures:        []string{"net"},
		Solver:          "colgen",
		UniformCapacity: 0.6,
	}
}

// SiteChurn decommissions sites and splices replacements in, the
// membership churn a long-lived deployment accumulates.
func SiteChurn() Spec {
	return Spec{
		Name:  "site-churn",
		Title: "3x3 Grid on PlanetLab-50, LP strategies: decommissioning and expansion",
		Kind:  KindTimeline,
		Notes: []string{
			"new sites get synthesized RTTs from their coordinates (topology.EstimateRTT)",
		},
		Topology:   TopologySpec{Source: "planetlab50"},
		Systems:    []SystemAxis{{Family: "grid", Params: []int{3}}},
		Strategies: []string{"lp"},
		Demands:    []float64{4000},
		Timeline: []Step{
			{Label: "decommission-na", RemoveSites: []string{"na-east-00", "na-west-01"}},
			{Label: "expand-chicago", AddSites: []NewSiteStep{
				{Name: "na-central-new-00", Region: "na-central", Lat: 41.88, Lon: -87.63, AccessMS: 2},
			}},
			{Label: "expand-saopaulo", AddSites: []NewSiteStep{
				{Name: "s-america-new-00", Region: "s-america", Lat: -23.55, Lon: -46.63, AccessMS: 4},
			}},
			{Label: "decommission-eu", RemoveSites: []string{"europe-02"}},
		},
	}
}
