package scenario

import "testing"

// TestSpecHashDeterministic: equal specs hash equal (including map
// fields, which json.Marshal canonicalizes by sorting keys), and any
// semantic change moves the hash.
func TestSpecHashDeterministic(t *testing.T) {
	for _, spec := range shardSpecs() {
		a := spec
		b := spec
		ha, err := a.Hash()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		hb, err := b.Hash()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if ha != hb {
			t.Fatalf("%s: equal specs hash %s vs %s", spec.Name, ha, hb)
		}
		if len(ha) != 64 {
			t.Fatalf("%s: hash %q is not sha256 hex", spec.Name, ha)
		}
		c := spec
		c.Demands = append([]float64{99999}, c.Demands...)
		hc, err := c.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if hc == ha {
			t.Fatalf("%s: changed spec kept hash %s", spec.Name, ha)
		}
	}
}

// TestSpecHashMapOrder: maps inside the spec (region weights) hash
// identically no matter the insertion order.
func TestSpecHashMapOrder(t *testing.T) {
	build := func(order []string) Spec {
		w := make(map[string]float64)
		for i, r := range order {
			w[r] = float64(i + 1)
		}
		// Reassign so both builds carry the same values per key.
		w["west"], w["east"], w["eu"] = 1, 2, 3
		return Spec{
			Name:     "hash-map-order",
			Kind:     KindTimeline,
			Topology: smallSynth(),
			Systems:  []SystemAxis{{Family: "grid", Params: []int{3}}},
			Timeline: []Step{{Label: "w", Weights: &WeightsStep{Regions: w}}},
		}
	}
	a := build([]string{"west", "east", "eu"})
	b := build([]string{"eu", "west", "east"})
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("map insertion order changed the hash: %s vs %s", ha, hb)
	}
}
